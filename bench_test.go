// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark measures the work that produces one artefact
// and prints the rendered artefact once (measured values next to the
// paper's, scaled to the corpus size), so `go test -bench=. -benchmem`
// doubles as the full experiment harness.
//
// Scales: the static corpus runs at 1/600 of the paper's population (the
// shape-carrying top SDKs all remain well-sampled); the dynamic studies
// run at the paper's own size (the top-1K apps, the 10 IABs, a 30-site
// crawl standing in for the 100-site one — bump -crawlsites to 100 to
// match exactly).
package repro

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/adb"
	"repro/internal/androzoo"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/crux"
	"repro/internal/faults"
	"repro/internal/pageload"
	"repro/internal/pipeline"
	"repro/internal/playstore"
	"repro/internal/report"
	"repro/internal/resultcache"
	"repro/internal/retry"
	"repro/internal/urlextract"
	"repro/internal/webviewlint"
)

var (
	staticScale = flag.Int("staticscale", 600, "corpus divisor for static benches")
	crawlSites  = flag.Int("crawlsites", 30, "sites crawled in the Figure 6 bench")
)

// --- shared fixtures -----------------------------------------------------

type staticFixture struct {
	corpus *corpus.Corpus
	repo   *androzoo.Client
	meta   *playstore.Client
	study  *core.StaticStudy
	result *core.StaticResult
	close  func()
}

var (
	staticOnce sync.Once
	staticFix  *staticFixture
)

// staticSetup builds the corpus, services and one canonical pipeline run.
func staticSetup(b *testing.B) *staticFixture {
	b.Helper()
	staticOnce.Do(func() {
		c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: *staticScale})
		if err != nil {
			panic(err)
		}
		azSrv := httptest.NewServer(androzoo.NewServer(c).Handler())
		psSrv := httptest.NewServer(playstore.NewServer(c).Handler())
		repo := androzoo.NewClient(azSrv.URL, azSrv.Client())
		meta := playstore.NewClient(psSrv.URL, psSrv.Client())
		study, err := core.NewStaticStudy(repo, meta, core.StaticConfig{})
		if err != nil {
			panic(err)
		}
		res, err := study.Run(context.Background())
		if err != nil {
			panic(err)
		}
		staticFix = &staticFixture{
			corpus: c,
			repo:   repo,
			meta:   meta,
			study:  study,
			result: res,
			close:  func() { azSrv.Close(); psSrv.Close() },
		}
	})
	return staticFix
}

var printOnce sync.Map

// emit prints a rendered artefact exactly once across all benchmarks.
func emit(key, artefact string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(artefact)
	}
}

// --- Table 2: dataset funnel --------------------------------------------

// BenchmarkTable2DatasetFunnel measures a full pipeline run — snapshot
// fetch, metadata filter, APK download, decompile, parse, call-graph
// traversal and labeling — the work behind Table 2.
func BenchmarkTable2DatasetFunnel(b *testing.B) {
	fix := staticSetup(b)
	emit("table2", report.Table2(fix.result.Funnel, *staticScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fix.study.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Funnel.Analyzed != fix.corpus.Counts.Analyzed {
			b.Fatalf("funnel drifted: %+v", res.Funnel)
		}
	}
}

// --- Tables 3/4/5/7, Figures 3/4: aggregation over the pipeline run ------

func benchAggregate(b *testing.B, key string, render func(*core.StaticResult) string) {
	fix := staticSetup(b)
	emit(key, render(fix.result))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := &pipeline.Result{Funnel: fix.result.Funnel, Apps: fix.result.Apps}
		ag := pipeline.Aggregate(raw)
		if ag.Analyzed == 0 {
			b.Fatal("empty aggregation")
		}
		_ = render(&core.StaticResult{Funnel: raw.Funnel, Apps: raw.Apps, Aggregates: ag})
	}
}

// BenchmarkTable3SDKTypeCounts regenerates the SDK matrix (Table 3).
func BenchmarkTable3SDKTypeCounts(b *testing.B) {
	benchAggregate(b, "table3", func(r *core.StaticResult) string {
		return report.Table3(r.Aggregates)
	})
}

// BenchmarkTable4TopWebViewSDKs regenerates the popular WebView SDKs table.
func BenchmarkTable4TopWebViewSDKs(b *testing.B) {
	benchAggregate(b, "table4", func(r *core.StaticResult) string {
		return report.TopSDKTable(r.Aggregates, false, *staticScale)
	})
}

// BenchmarkTable5TopCTSDKs regenerates the popular CT SDKs table.
func BenchmarkTable5TopCTSDKs(b *testing.B) {
	benchAggregate(b, "table5", func(r *core.StaticResult) string {
		return report.TopSDKTable(r.Aggregates, true, *staticScale)
	})
}

// BenchmarkTable7APIMethodUsage regenerates the API-method usage table.
func BenchmarkTable7APIMethodUsage(b *testing.B) {
	benchAggregate(b, "table7", func(r *core.StaticResult) string {
		return report.Table7(r.Aggregates, *staticScale)
	})
}

// BenchmarkFigure3CategoryUseCases regenerates the per-app-category SDK
// use-case distribution.
func BenchmarkFigure3CategoryUseCases(b *testing.B) {
	benchAggregate(b, "figure3", func(r *core.StaticResult) string {
		return report.Figure3(r.Aggregates)
	})
}

// BenchmarkFigure4MethodHeatmap regenerates the WebView API method heatmap.
func BenchmarkFigure4MethodHeatmap(b *testing.B) {
	benchAggregate(b, "figure4", func(r *core.StaticResult) string {
		return report.Figure4(r.Aggregates)
	})
}

// --- Pipeline performance: streaming + result cache -----------------------

// benchBackends pre-builds every APK image and metadata record so the
// pipeline benchmarks below measure pipeline work — filtering, digesting,
// decompiling, parsing, traversal — rather than corpus synthesis or
// loopback networking.
type benchBackends struct {
	c    *corpus.Corpus
	pkgs []string
	imgs map[string][]byte
	md   map[string]playstore.Metadata
}

func (r *benchBackends) List(ctx context.Context) ([]string, error) { return r.pkgs, nil }

func (r *benchBackends) Download(ctx context.Context, pkg string) ([]byte, error) {
	img, ok := r.imgs[pkg]
	if !ok {
		return nil, fmt.Errorf("bench repo: unknown package %s", pkg)
	}
	return img, nil
}

func (r *benchBackends) Metadata(ctx context.Context, pkg string) (playstore.Metadata, error) {
	md, ok := r.md[pkg]
	if !ok {
		return playstore.Metadata{}, playstore.ErrNotFound
	}
	return md, nil
}

var (
	benchPipeOnce sync.Once
	benchPipeFix  *benchBackends
)

func benchSetup(b *testing.B) *benchBackends {
	b.Helper()
	benchPipeOnce.Do(func() {
		c, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 2500})
		if err != nil {
			panic(err)
		}
		fix := &benchBackends{
			c:    c,
			imgs: make(map[string][]byte, len(c.Apps)),
			md:   make(map[string]playstore.Metadata, len(c.Apps)),
		}
		for _, s := range c.Apps {
			fix.pkgs = append(fix.pkgs, s.Package)
			img, err := corpus.BuildAPK(s)
			if err != nil {
				panic(err)
			}
			fix.imgs[s.Package] = img
			if s.OnPlayStore {
				fix.md[s.Package] = playstore.Metadata{
					Package: s.Package, Title: s.Title, Category: s.PlayCategory,
					Downloads: s.Downloads, LastUpdated: s.LastUpdated,
				}
			}
		}
		benchPipeFix = fix
	})
	return benchPipeFix
}

func benchPipeline(b *testing.B, cache *resultcache.Cache[pipeline.Analysis]) *pipeline.Result {
	b.Helper()
	fix := benchSetup(b)
	p := pipeline.New(fix, fix, pipeline.Config{
		MinDownloads: corpus.MinDownloads,
		UpdatedAfter: corpus.UpdateCutoff,
		Cache:        cache,
	})
	res, err := p.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if res.Funnel.Analyzed != fix.c.Counts.Analyzed {
		b.Fatalf("funnel drifted: %+v", res.Funnel)
	}
	return res
}

// BenchmarkPipelineCold measures a full pipeline run with an empty result
// cache every iteration: list, filter, download, decompile, parse,
// call-graph traversal and SDK labeling for every selected APK.
func BenchmarkPipelineCold(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPipeline(b, resultcache.New[pipeline.Analysis](0))
	}
}

// BenchmarkPipelineWarmCache measures the same run against a pre-warmed
// cache: every APK's analysis is served by content digest and the
// decompile/parse/callgraph stages are skipped entirely.
func BenchmarkPipelineWarmCache(b *testing.B) {
	cache := resultcache.New[pipeline.Analysis](0)
	benchPipeline(b, cache) // warm it
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchPipeline(b, cache)
		if res.Stats.CacheHitRate() != 1.0 {
			b.Fatalf("warm run not fully cached: %+v", res.Stats)
		}
	}
}

// BenchmarkPipelineFaulted measures the cold pipeline under seeded fault
// injection (10% transient errors on every repository and metadata call)
// with retries absorbing the damage — the throughput cost of running
// degraded, against BenchmarkPipelineCold as the fault-free baseline.
// Backoff sleeps are a no-op so the benchmark measures retry work, not
// timer waits.
func BenchmarkPipelineFaulted(b *testing.B) {
	fix := benchSetup(b)
	fcfg := faults.Config{Seed: 7, ErrorRate: 0.1}
	repo := faults.NewRepository(fix, fcfg)
	meta := faults.NewMetadataSource(fix, fcfg)
	nop := func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	b.ReportAllocs()
	b.ResetTimer()
	var retries int64
	for i := 0; i < b.N; i++ {
		m := &retry.Metrics{}
		p := pipeline.New(repo, meta, pipeline.Config{
			MinDownloads: corpus.MinDownloads,
			UpdatedAfter: corpus.UpdateCutoff,
			Cache:        resultcache.New[pipeline.Analysis](0),
			Retry:        &retry.Policy{MaxAttempts: 8, Seed: 1, Metrics: m, Sleep: nop},
		})
		res, err := p.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Funnel.Analyzed != fix.c.Counts.Analyzed || len(res.Quarantined) != 0 {
			b.Fatalf("faulted run degraded: funnel %+v, %d quarantined", res.Funnel, len(res.Quarantined))
		}
		retries = res.Stats.Retries
	}
	b.ReportMetric(float64(retries), "retries/op")
}

// BenchmarkAnalyzeOneAllocs measures the per-APK analysis path alone —
// the unit of work the cache memoises — and tracks its allocations.
func BenchmarkAnalyzeOneAllocs(b *testing.B) {
	fix := benchSetup(b)
	img := fix.imgs[fix.c.Filtered()[0].Package]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := pipeline.AnalyzeImage(nil, img)
		if err != nil {
			b.Fatal(err)
		}
		if an.Broken {
			b.Fatal("fixture APK analysed as broken")
		}
	}
}

// --- Lint stage: WebView misconfiguration analysis -----------------------

func benchLintPipeline(b *testing.B, cache *resultcache.Cache[pipeline.Analysis]) *pipeline.Result {
	b.Helper()
	fix := benchSetup(b)
	lint, err := webviewlint.New(webviewlint.Config{})
	if err != nil {
		b.Fatal(err)
	}
	p := pipeline.New(fix, fix, pipeline.Config{
		MinDownloads: corpus.MinDownloads,
		UpdatedAfter: corpus.UpdateCutoff,
		Cache:        cache,
		Lint:         lint,
	})
	res, err := p.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if res.Funnel.Analyzed != fix.c.Counts.Analyzed {
		b.Fatalf("funnel drifted: %+v", res.Funnel)
	}
	return res
}

// BenchmarkPipelineLintCold measures the full pipeline with the lint stage
// enabled and an empty cache: the delta against BenchmarkPipelineCold is
// the end-to-end cost of the misconfiguration analysis. Reports findings/op.
func BenchmarkPipelineLintCold(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var findings int
	for i := 0; i < b.N; i++ {
		res := benchLintPipeline(b, resultcache.New[pipeline.Analysis](0))
		if res.Stats.LintFindings == 0 {
			b.Fatal("lint run produced no findings over the seeded corpus")
		}
		findings = res.Stats.LintFindings
	}
	b.ReportMetric(float64(findings), "findings/op")
}

// BenchmarkAnalyzeAndLintOne measures the per-APK analyze+lint path — the
// unit of work the cache memoises under a lint-bearing key. The delta
// against BenchmarkAnalyzeOneAllocs is the per-APK lint cost.
func BenchmarkAnalyzeAndLintOne(b *testing.B) {
	fix := benchSetup(b)
	lint, err := webviewlint.New(webviewlint.Config{})
	if err != nil {
		b.Fatal(err)
	}
	img := fix.imgs[fix.c.Filtered()[0].Package]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := pipeline.AnalyzeAndLint(nil, lint, img)
		if err != nil {
			b.Fatal(err)
		}
		if an.Broken {
			b.Fatal("fixture APK analysed as broken")
		}
	}
}

// --- URL-extraction stage: interprocedural endpoint dataflow --------------

func benchURLPipeline(b *testing.B, cache *resultcache.Cache[pipeline.Analysis]) *pipeline.Result {
	b.Helper()
	fix := benchSetup(b)
	p := pipeline.New(fix, fix, pipeline.Config{
		MinDownloads: corpus.MinDownloads,
		UpdatedAfter: corpus.UpdateCutoff,
		Cache:        cache,
		URLs:         urlextract.New(urlextract.Config{}),
	})
	res, err := p.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if res.Funnel.Analyzed != fix.c.Counts.Analyzed {
		b.Fatalf("funnel drifted: %+v", res.Funnel)
	}
	return res
}

// BenchmarkPipelineWithURLExtract measures the full pipeline with the URL
// stage enabled and an empty cache: the delta against BenchmarkPipelineCold
// is the end-to-end cost of the interprocedural string dataflow. Reports
// endpoints/op.
func BenchmarkPipelineWithURLExtract(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var endpoints int
	for i := 0; i < b.N; i++ {
		res := benchURLPipeline(b, resultcache.New[pipeline.Analysis](0))
		if res.Stats.URLEndpoints == 0 {
			b.Fatal("URL run extracted no endpoints over the seeded corpus")
		}
		endpoints = res.Stats.URLEndpoints
	}
	b.ReportMetric(float64(endpoints), "endpoints/op")
}

// BenchmarkPipelineURLExtractWarm measures the same run against a
// pre-warmed cache: endpoints ride inside the cached analyses, so the
// extraction stage must not run at all (its In counter stays zero).
func BenchmarkPipelineURLExtractWarm(b *testing.B) {
	cache := resultcache.New[pipeline.Analysis](0)
	benchURLPipeline(b, cache) // warm it
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchURLPipeline(b, cache)
		if res.Stats.CacheHitRate() != 1.0 {
			b.Fatalf("warm run not fully cached: %+v", res.Stats)
		}
		if res.Stats.URLs.In != 0 {
			b.Fatalf("warm run re-extracted %d apps, want stage skipped", res.Stats.URLs.In)
		}
	}
}

// --- Table 6: top-1K classification --------------------------------------

var (
	top1kOnce  sync.Once
	top1kSpecs []*corpus.Spec
)

func top1k(b *testing.B) []*corpus.Spec {
	b.Helper()
	top1kOnce.Do(func() {
		c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 100})
		if err != nil {
			panic(err)
		}
		top1kSpecs = c.Top(1000)
	})
	return top1kSpecs
}

// BenchmarkTable6Top1KClassification measures the full semi-manual walk:
// install, launch, find the UGC surface, post the probe link, click it and
// classify the result — for all 1000 top apps.
func BenchmarkTable6Top1KClassification(b *testing.B) {
	specs := top1k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study := core.NewDynamicStudy()
		t6, err := study.ClassifyTopApps(context.Background(), specs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			emit("table6", report.Table6(t6))
		}
		if t6.OpensWebView != 10 || t6.OpensCustomTab != 1 {
			b.Fatalf("classification drifted: %+v", t6)
		}
	}
}

// --- Tables 8/9: IAB deep probe -------------------------------------------

func namedIABSpecs() []*corpus.Spec {
	var specs []*corpus.Spec
	for i := range corpus.NamedApps {
		n := &corpus.NamedApps[i]
		specs = append(specs, &corpus.Spec{
			Package: n.Package, Title: n.Title, Downloads: n.Downloads,
			OnPlayStore: true, Dynamic: n.Dynamic,
		})
	}
	return specs
}

// BenchmarkTable8IABInjection measures instrumenting all ten WebView IABs
// against the controlled page: Frida hooks, navigation, injection
// execution and interaction recording.
func BenchmarkTable8IABInjection(b *testing.B) {
	specs := namedIABSpecs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study := core.NewDynamicStudy()
		rows, _, err := study.ProbeIABs(context.Background(), specs)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			emit("table8", report.Table8(rows))
		}
	}
}

// BenchmarkTable9WebAPIUsage measures the controlled page's Web-API
// interception for the Meta IAB (the heaviest injector).
func BenchmarkTable9WebAPIUsage(b *testing.B) {
	specs := namedIABSpecs()[:1] // Facebook
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study := core.NewDynamicStudy()
		rows, _, err := study.ProbeIABs(context.Background(), specs)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows[0].WebAPITraces) == 0 {
			b.Fatal("no traces")
		}
		if i == 0 {
			emit("table9", report.Table9(rows))
		}
	}
}

// --- Figure 6: top-site crawl ---------------------------------------------

// BenchmarkFigure6EndpointDistribution measures the ADB-driven crawl of
// the top sites with the LinkedIn and Kik IABs plus the baseline shell.
func BenchmarkFigure6EndpointDistribution(b *testing.B) {
	sites := crux.TopSites(*crawlSites)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		study := core.NewDynamicStudy()
		crux.RegisterAll(study.Net, sites)
		apps := []string{"com.linkedin.android", "kik.android", "org.chromium.webview_shell"}
		for _, spec := range []*corpus.Spec{
			{Package: "com.linkedin.android", Title: "LinkedIn", OnPlayStore: true,
				Dynamic: corpus.Dynamic{HasUserContent: true, LinkSurface: "Post",
					LinkOpens: corpus.LinkWebView, Injection: corpus.InjectRadar}},
			{Package: "kik.android", Title: "Kik", OnPlayStore: true,
				Dynamic: corpus.Dynamic{HasUserContent: true, LinkSurface: "DM",
					LinkOpens: corpus.LinkWebView, Injection: corpus.InjectAdsMulti}},
			core.BaselineShellSpec(),
		} {
			if _, err := study.Device.Install(spec); err != nil {
				b.Fatal(err)
			}
		}
		srv := adb.NewServer(study.Device)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		client, err := adb.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		cr := crawler.New(client, crawler.Config{
			Apps: apps, Sites: sites,
			OwnDomains: map[string][]string{"com.linkedin.android": {"linkedin.com", "licdn.com"}},
		})
		b.StartTimer()

		res, err := cr.Run()
		if err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		if len(res.Failures) != 0 {
			b.Fatalf("failures: %v", res.Failures)
		}
		if i == 0 {
			emit("figure6",
				report.Figure6(res, "com.linkedin.android", "LinkedIn")+
					report.Figure6(res, "kik.android", "Kik")+
					report.Figure6(res, "org.chromium.webview_shell", "System WebView Shell (baseline)"))
		}
		client.Close()
		srv.Close()
		b.StartTimer()
	}
}

// --- Figure 7: page load time ----------------------------------------------

// BenchmarkFigure7PageLoadTime measures the load-time model over the four
// rendering paths across page sizes.
func BenchmarkFigure7PageLoadTime(b *testing.B) {
	m := pageload.Default()
	emit("figure7", report.Figure7(m, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for requests := 1; requests <= 64; requests *= 2 {
			times := m.Compare(requests)
			if times[pageload.ModeCustomTab] >= times[pageload.ModeWebView] {
				b.Fatal("CT slower than WebView")
			}
		}
	}
}
