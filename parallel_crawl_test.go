package repro

import (
	"testing"

	"repro/internal/adb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/crux"
	"repro/internal/device"
	"repro/internal/internet"
	"repro/internal/report"
)

// figure6Crawl runs the Figure 6 crawl on a fresh rig with the given
// fan-out and renders the report tables.
func figure6Crawl(t *testing.T, devices, workers int) (string, *crawler.Result) {
	t.Helper()
	net := internet.New()
	sites := crux.TopSites(10)
	crux.RegisterAll(net, sites)
	fleet := device.NewFleet(net, devices)

	apps := []string{"com.linkedin.android", "kik.android", "org.chromium.webview_shell"}
	for _, spec := range []*corpus.Spec{
		{Package: "com.linkedin.android", Title: "LinkedIn", OnPlayStore: true,
			Dynamic: corpus.Dynamic{HasUserContent: true, LinkSurface: "Post",
				LinkOpens: corpus.LinkWebView, Injection: corpus.InjectRadar}},
		{Package: "kik.android", Title: "Kik", OnPlayStore: true,
			Dynamic: corpus.Dynamic{HasUserContent: true, LinkSurface: "DM",
				LinkOpens: corpus.LinkWebView, Injection: corpus.InjectAdsMulti}},
		core.BaselineShellSpec(),
	} {
		if err := fleet.Install(spec); err != nil {
			t.Fatal(err)
		}
	}

	farm, err := adb.StartFarm(fleet.Devices, adb.FarmConfig{
		RateLimits: map[string]int{"kik.android": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { farm.Close() })
	clients, err := farm.LaneClients(len(apps))
	if err != nil {
		t.Fatal(err)
	}

	cr := crawler.NewFleet(clients, crawler.Config{
		Apps: apps, Sites: sites,
		OwnDomains: map[string][]string{"com.linkedin.android": {"linkedin.com", "licdn.com"}},
		Workers:    workers,
	})
	res, err := cr.Run()
	if err != nil {
		t.Fatal(err)
	}
	tables := report.Figure6(res, "com.linkedin.android", "LinkedIn") +
		report.Figure6(res, "kik.android", "Kik") +
		report.Figure6(res, "org.chromium.webview_shell", "System WebView Shell (baseline)")
	return tables, res
}

// TestParallelCrawlReportByteIdentical is the PR's acceptance check: the
// rendered Figure 6 tables from a parallel crawl (4 workers, 2 devices)
// must be byte-identical to the sequential single-device run's.
func TestParallelCrawlReportByteIdentical(t *testing.T) {
	seqTables, seqRes := figure6Crawl(t, 1, 1)
	parTables, parRes := figure6Crawl(t, 2, 4)

	if seqTables != parTables {
		t.Errorf("report tables diverge:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqTables, parTables)
	}
	if len(seqRes.Failures) != len(parRes.Failures) {
		t.Errorf("failures diverge: seq %v, par %v", seqRes.Failures, parRes.Failures)
	}
	if seqRes.AccountResets["kik.android"] != parRes.AccountResets["kik.android"] {
		t.Errorf("account resets diverge: seq %v, par %v", seqRes.AccountResets, parRes.AccountResets)
	}
	if seqRes.AccountResets["kik.android"] == 0 {
		t.Error("rate limit never triggered; the determinism check lost its teeth")
	}
}
