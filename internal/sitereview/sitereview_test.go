package sitereview

import "testing"

func TestClassifyKnownEndpoints(t *testing.T) {
	cases := []struct {
		host string
		own  []string
		want Kind
	}{
		{"a.cedexis-radar.net", nil, Tracker},
		{"radar.cedexis.com", nil, Tracker},
		{"beacon.imp-track.net", nil, Tracker},
		{"ads.mopub.com", nil, AdNetwork},
		{"supply.inmobicdn.net", nil, AdNetwork},
		{"googleads.g.doubleclick.net", nil, AdNetwork},
		{"rtb.supply-side.net", nil, AdNetwork},
		{"d2mxb7.cloudfront.net", nil, CDN},
		{"img-cdn.licdn.com", []string{"licdn.com"}, OwnService},
		{"perf.linkedin.com", []string{"linkedin.com", "licdn.com"}, OwnService},
		{"px.ads.linkedin.com", []string{"linkedin.com"}, OwnService},
		{"perf.linkedin.com", nil, Tracker}, // without own-domain knowledge
		{"www.google.com", nil, SearchEngine},
		{"news-site-01.example", nil, Content},
	}
	for _, c := range cases {
		if got := Classify(c.host, c.own); got != c.want {
			t.Errorf("Classify(%q, %v) = %s, want %s", c.host, c.own, got, c.want)
		}
	}
}

func TestOwnDomainsTrumpHeuristics(t *testing.T) {
	// A tracker-looking host under the app's own domain is OwnService.
	if got := Classify("metrics.myapp.com", []string{"myapp.com"}); got != OwnService {
		t.Errorf("got %s", got)
	}
}

func TestHistogram(t *testing.T) {
	hosts := []string{
		"ads.mopub.com", "supply.inmobicdn.net", "a.cedexis-radar.net",
		"d2mxb7.cloudfront.net", "plain-content.example",
	}
	h := Histogram(hosts, nil)
	if h[AdNetwork] != 2 || h[Tracker] != 1 || h[CDN] != 1 || h[Content] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestClassifyCaseInsensitive(t *testing.T) {
	if got := Classify("ADS.MoPub.COM", nil); got != AdNetwork {
		t.Errorf("got %s", got)
	}
}
