// Package sitereview classifies network endpoints by kind, standing in for
// the Symantec Sitereview domain-classification service the paper uses to
// type the endpoints its IAB crawls contacted (Figure 6, [93]).
package sitereview

import "strings"

// Kind is an endpoint class.
type Kind string

// Endpoint kinds distinguished in Figure 6.
const (
	Tracker      Kind = "Tracker"       // measurement/telemetry collectors
	AdNetwork    Kind = "Ad Network"    // bidding, serving, impression endpoints
	CDN          Kind = "CDN"           // content delivery
	OwnService   Kind = "Own Service"   // the embedding app's own backend
	SearchEngine Kind = "Search Engine" //
	Content      Kind = "Content"       // ordinary web content
)

// trackerMarkers and adMarkers are keyword heuristics over host names, the
// same granularity a domain-classification service provides.
var trackerMarkers = []string{
	"radar", "cedexis", "beacon", "pixel", "metrics", "collector",
	"telemetry", "perf.", "px.", "analytics", "cookie-sync", "imp-track",
}

var adMarkers = []string{
	"ads.", "adx.", "doubleclick", "mopub", "inmobi", "bid", "rtb",
	"vast", "banner", "pop.", "supply", "dsp", "ssp", "openbidder",
	"header-wrap", "preroll", "fill-rate", "video-mediate", "adnet",
	"cross-bid", "fallback-fill", "pagead",
}

var cdnMarkers = []string{
	"cdn", "cloudfront", "akamai", "fastly", "edgecast", "static.",
}

var searchMarkers = []string{"search", "google.com", "bing.com"}

// Classify types one endpoint host. ownDomains lists the embedding app's
// own domains (e.g. linkedin.com, licdn.com for LinkedIn): endpoints under
// them classify as OwnService even when they would otherwise look like
// trackers (perf.linkedin.com is LinkedIn's own performance monitoring).
func Classify(host string, ownDomains []string) Kind {
	h := strings.ToLower(host)
	for _, own := range ownDomains {
		if h == own || strings.HasSuffix(h, "."+own) {
			return OwnService
		}
	}
	for _, m := range trackerMarkers {
		if strings.Contains(h, m) {
			return Tracker
		}
	}
	for _, m := range adMarkers {
		if strings.Contains(h, m) {
			return AdNetwork
		}
	}
	for _, m := range cdnMarkers {
		if strings.Contains(h, m) {
			return CDN
		}
	}
	for _, m := range searchMarkers {
		if strings.Contains(h, m) {
			return SearchEngine
		}
	}
	return Content
}

// Histogram counts hosts per kind.
func Histogram(hosts []string, ownDomains []string) map[Kind]int {
	out := make(map[Kind]int)
	for _, h := range hosts {
		out[Classify(h, ownDomains)]++
	}
	return out
}
