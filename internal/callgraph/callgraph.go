// Package callgraph builds call graphs from sdex bytecode and traverses
// them from Android entry points, playing the role Androguard plays in the
// paper's pipeline (steps 4–5 of Figure 1).
//
// An Android app has no main function; the graph is therefore rooted at
// every component lifecycle method and GUI callback (§3.1.3). Traversal
// records each reachable call to a WebView API method and each Custom Tabs
// initialisation, together with the calling class — the raw material for
// SDK attribution (§3.1.4).
package callgraph

import (
	"sort"
	"strings"

	"repro/internal/android"
	"repro/internal/dalvik"
	"repro/internal/intern"
)

// Graph is a call graph over one sdex file. A Graph is not safe for
// concurrent use: hierarchy queries memoise their results.
type Graph struct {
	dex     *dalvik.File
	classes map[string]*dalvik.Class
	// defined maps every in-file method to its definition.
	defined map[dalvik.MethodRef]*dalvik.Method
	// webview / component memoise the superclass-chain walks, which
	// AnalyzeUsage would otherwise repeat for every invoke instruction.
	webview   map[string]bool
	component map[string]bool
}

// Build constructs the graph. It never fails: unresolved targets are simply
// external edges.
func Build(dex *dalvik.File) *Graph {
	g := &Graph{
		dex:     dex,
		classes: make(map[string]*dalvik.Class, len(dex.Classes)),
		defined: make(map[dalvik.MethodRef]*dalvik.Method, dex.MethodCount()),
	}
	for i := range dex.Classes {
		c := &dex.Classes[i]
		g.classes[c.Name] = c
		for j := range c.Methods {
			m := &c.Methods[j]
			g.defined[m.Ref(c.Name)] = m
		}
	}
	return g
}

// Class returns the in-file class definition, or nil for external types.
func (g *Graph) Class(name string) *dalvik.Class { return g.classes[name] }

// IsSubclassOf walks the in-file superclass chain of name and reports
// whether it reaches root (which may be an external framework class).
func (g *Graph) IsSubclassOf(name, root string) bool {
	seen := 0
	for name != "" {
		if name == root {
			return true
		}
		c := g.classes[name]
		if c == nil {
			return false // chain left the file without hitting root
		}
		name = c.SuperName
		if seen++; seen > 1000 {
			return false // defensive: cyclic hierarchy in corrupt input
		}
	}
	return false
}

// IsWebViewClass reports whether name is android.webkit.WebView or an
// in-file subclass of it (a "custom WebView", §3.1.2).
func (g *Graph) IsWebViewClass(name string) bool {
	if v, ok := g.webview[name]; ok {
		return v
	}
	v := g.IsSubclassOf(name, android.WebViewClass)
	if g.webview == nil {
		g.webview = make(map[string]bool, 16)
	}
	g.webview[name] = v
	return v
}

// WebViewSubclasses lists the in-file classes that extend WebView,
// directly or transitively, sorted by name. Names are interned: subclass
// lists are retained in analysis results long after the dex is dropped.
func (g *Graph) WebViewSubclasses() []string {
	var out []string
	for name := range g.classes {
		if name != android.WebViewClass && g.IsWebViewClass(name) {
			out = append(out, intern.String(name))
		}
	}
	sort.Strings(out)
	return out
}

// componentRoots are the framework classes whose subclasses are app
// components and therefore entry-point hosts.
var componentRoots = []string{
	android.ActivityClass,
	android.ServiceClass,
	android.BroadcastReceiverClass,
	android.ContentProviderClass,
}

// isComponent reports whether the class transitively extends one of the
// four Android component base classes.
func (g *Graph) isComponent(name string) bool {
	if v, ok := g.component[name]; ok {
		return v
	}
	v := false
	for _, root := range componentRoots {
		if g.IsSubclassOf(name, root) {
			v = true
			break
		}
	}
	if g.component == nil {
		g.component = make(map[string]bool, 8)
	}
	g.component[name] = v
	return v
}

var entryPointNames = func() map[string]bool {
	m := make(map[string]bool, len(android.LifecycleEntryPoints))
	for _, n := range android.LifecycleEntryPoints {
		m[n] = true
	}
	return m
}()

// EntryPoints enumerates the traversal roots: every lifecycle or callback
// method on every component class, plus every method on classes that
// implement a listener-style interface (onClick etc. on any class).
func (g *Graph) EntryPoints() []dalvik.MethodRef {
	var eps []dalvik.MethodRef
	for i := range g.dex.Classes {
		c := &g.dex.Classes[i]
		comp := g.isComponent(c.Name)
		for j := range c.Methods {
			m := &c.Methods[j]
			if !entryPointNames[m.Name] {
				continue
			}
			// Lifecycle methods count on components; GUI callbacks
			// (onClick and friends) count on any class, because listeners
			// are registered dynamically and the registration is invisible
			// to a static scan.
			if comp || strings.HasPrefix(m.Name, "on") {
				eps = append(eps, m.Ref(c.Name))
			}
		}
	}
	sort.Slice(eps, func(i, j int) bool { return refLess(eps[i], eps[j]) })
	return eps
}

func refLess(a, b dalvik.MethodRef) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Signature < b.Signature
}

// resolve finds the definition a call to ref would dispatch to: the method
// on ref.Class or the nearest in-file superclass defining it. Returns the
// resolved ref and true, or false for external targets.
func (g *Graph) resolve(ref dalvik.MethodRef) (dalvik.MethodRef, bool) {
	name := ref.Class
	for name != "" {
		cand := dalvik.MethodRef{Class: name, Name: ref.Name, Signature: ref.Signature}
		if _, ok := g.defined[cand]; ok {
			return cand, true
		}
		c := g.classes[name]
		if c == nil {
			return dalvik.MethodRef{}, false
		}
		name = c.SuperName
	}
	return dalvik.MethodRef{}, false
}

// Dex exposes the underlying bytecode file so dataflow passes built on
// top of the graph (internal/urlextract) can walk method bodies without
// re-parsing the APK.
func (g *Graph) Dex() *dalvik.File { return g.dex }

// Resolve is the exported form of resolve, for dataflow engines that need
// the same dispatch semantics the graph's own traversals use.
func (g *Graph) Resolve(ref dalvik.MethodRef) (dalvik.MethodRef, bool) {
	return g.resolve(ref)
}

// Callees returns the in-file methods any overload of class.method
// invokes, resolved through the in-file superclass chain, in first-call
// order without duplicates. External targets are omitted. This is the edge
// set interprocedural lint rules (unsafe-load-url) follow; like the
// hierarchy queries it is not safe for concurrent use.
func (g *Graph) Callees(class, method string) []dalvik.MethodRef {
	c := g.classes[class]
	if c == nil {
		return nil
	}
	var out []dalvik.MethodRef
	var seen map[dalvik.MethodRef]bool
	for j := range c.Methods {
		m := &c.Methods[j]
		if m.Name != method {
			continue
		}
		for _, ins := range m.Code {
			if !ins.Op.IsInvoke() {
				continue
			}
			res, ok := g.resolve(ins.Target)
			if !ok || seen[res] {
				continue
			}
			if seen == nil {
				seen = make(map[dalvik.MethodRef]bool, 4)
			}
			seen[res] = true
			out = append(out, res)
		}
	}
	return out
}

// Reachable computes the set of defined methods reachable from the given
// roots (defaulting to EntryPoints when none are passed).
func (g *Graph) Reachable(roots ...dalvik.MethodRef) map[dalvik.MethodRef]bool {
	if len(roots) == 0 {
		roots = g.EntryPoints()
	}
	seen := make(map[dalvik.MethodRef]bool, len(g.defined))
	stack := make([]dalvik.MethodRef, 0, len(roots))
	push := func(r dalvik.MethodRef) {
		if res, ok := g.resolve(r); ok && !seen[res] {
			seen[res] = true
			stack = append(stack, res)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m := g.defined[cur]
		for _, ins := range m.Code {
			if ins.Op.IsInvoke() {
				push(ins.Target)
			}
		}
	}
	return seen
}

// APICall is one recorded call of interest: a WebView API method call or a
// Custom Tabs initialisation, attributed to its calling method.
type APICall struct {
	Caller dalvik.MethodRef // the method containing the call site
	Target dalvik.MethodRef // the invoked framework method
	// URLHint is the nearest preceding string constant in the caller —
	// usually the URL passed to loadUrl/launchUrl.
	URLHint string
}

// CallerPackage returns the Java package of the calling class, used for
// SDK attribution.
func (c APICall) CallerPackage() string { return dalvik.PackageOf(c.Caller.Class) }

// Usage is the per-app result of the static WebView/CT measurement.
type Usage struct {
	// WebViewCalls holds every reachable call to a measured WebView API
	// method (on WebView itself or a custom subclass).
	WebViewCalls []APICall
	// CTCalls holds every reachable Custom Tabs initialisation or launch.
	CTCalls []APICall
	// WebViewSubclasses lists in-file custom WebView classes.
	WebViewSubclasses []string
}

// UsesWebView reports whether any WebView API call was reachable.
func (u *Usage) UsesWebView() bool { return len(u.WebViewCalls) > 0 }

// UsesCT reports whether any Custom Tabs use was reachable.
func (u *Usage) UsesCT() bool { return len(u.CTCalls) > 0 }

// MethodsCalled returns the distinct WebView method names called, sorted.
// Names are interned: they outlive the dex file in analysis results.
func (u *Usage) MethodsCalled() []string {
	set := make(map[string]bool, 8)
	for _, c := range u.WebViewCalls {
		set[c.Target.Name] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, intern.String(m))
	}
	sort.Strings(out)
	return out
}

func isCustomTabsClass(name string) bool {
	return name == android.CustomTabsIntentClass ||
		name == android.CustomTabsIntentBuilderClass ||
		name == android.CustomTabsCallbackClass ||
		strings.HasPrefix(name, "androidx.browser.customtabs.")
}

// AnalyzeUsage traverses the graph from its entry points and records every
// reachable WebView API call and CT initialisation. excludeClasses removes
// call sites hosted in the named classes (the pipeline passes deep-link
// activities here, §3.1.3).
func (g *Graph) AnalyzeUsage(excludeClasses map[string]bool) *Usage {
	u := &Usage{WebViewSubclasses: g.WebViewSubclasses()}
	reach := g.Reachable()
	// Deterministic order: iterate classes/methods in file order and check
	// membership, rather than ranging over the map.
	for i := range g.dex.Classes {
		c := &g.dex.Classes[i]
		if excludeClasses[c.Name] {
			continue
		}
		for j := range c.Methods {
			m := &c.Methods[j]
			ref := m.Ref(c.Name)
			if !reach[ref] {
				continue
			}
			lastStr := ""
			for _, ins := range m.Code {
				switch {
				case ins.Op == dalvik.OpConstString:
					lastStr = ins.Str
				case ins.Op == dalvik.OpNewInstance && isCustomTabsClass(ins.Type):
					u.CTCalls = append(u.CTCalls, APICall{
						Caller: ref,
						Target: dalvik.MethodRef{Class: ins.Type, Name: "<init>", Signature: "()void"},
					})
				case ins.Op.IsInvoke():
					t := ins.Target
					switch {
					case g.IsWebViewClass(t.Class) && android.IsWebViewMethod(t.Name):
						// Normalise custom-subclass receivers to the
						// framework class so consumers see one API surface.
						norm := t
						norm.Class = android.WebViewClass
						u.WebViewCalls = append(u.WebViewCalls, APICall{Caller: ref, Target: norm, URLHint: lastStr})
					case isCustomTabsClass(t.Class):
						u.CTCalls = append(u.CTCalls, APICall{Caller: ref, Target: t, URLHint: lastStr})
					}
				}
			}
		}
	}
	return u
}
