package callgraph

import (
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/dalvik"
)

// appDex builds a small app exercising every traversal feature:
//
//	MainActivity.onCreate -> Helper.show -> WebView.loadUrl
//	MainActivity.onClick  -> CustomTabsIntent.launchUrl
//	DeadCode.unreachable  -> WebView.evaluateJavascript (never reached)
//	CustomWeb extends WebView; Feed.onCreate -> CustomWeb.addJavascriptInterface
func appDex(t *testing.T) *dalvik.File {
	t.Helper()
	b := dalvik.NewBuilder()
	b.Class("com.app.MainActivity", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.InvokeStatic("com.app.Helper", "show", "()void"),
		).
		VoidMethod("onClick",
			dalvik.NewInstance(android.CustomTabsIntentBuilderClass),
			dalvik.InvokeDirect(android.CustomTabsIntentBuilderClass, "<init>", "()void"),
			dalvik.InvokeVirtual(android.CustomTabsIntentBuilderClass, "build", "()CustomTabsIntent"),
			dalvik.ConstString("https://third.party"),
			dalvik.InvokeVirtual(android.CustomTabsIntentClass, android.MethodLaunchURL, "(Context,Uri)void"),
		)
	b.Class("com.app.Helper", android.ObjectClass, dalvik.AccPublic).
		Method("show", "()void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.ConstString("https://example.com"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			dalvik.Return(),
		)
	b.Class("com.app.DeadCode", android.ObjectClass, dalvik.AccPublic).
		VoidMethod("unreachable",
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodEvaluateJavascript, "(String,Callback)void"),
		)
	b.Class("com.app.CustomWeb", android.WebViewClass, dalvik.AccPublic).
		VoidMethod("setup")
	b.Class("com.app.Feed", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.InvokeVirtual("com.app.CustomWeb", android.MethodAddJavascriptInterface, "(Object,String)void"),
		)
	return b.MustBuild()
}

func TestCallees(t *testing.T) {
	g := Build(appDex(t))
	got := g.Callees("com.app.MainActivity", "onCreate")
	want := []dalvik.MethodRef{{Class: "com.app.Helper", Name: "show", Signature: "()void"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Callees(onCreate) = %v, want %v", got, want)
	}
	// Helper.show only calls the external WebView method: no in-file edges.
	if c := g.Callees("com.app.Helper", "show"); c != nil {
		t.Errorf("Callees(Helper.show) = %v, want nil", c)
	}
	if c := g.Callees("com.app.Missing", "x"); c != nil {
		t.Errorf("Callees(missing class) = %v, want nil", c)
	}
}

func TestEntryPoints(t *testing.T) {
	g := Build(appDex(t))
	eps := g.EntryPoints()
	var names []string
	for _, e := range eps {
		names = append(names, e.Class+"."+e.Name)
	}
	want := []string{
		"com.app.Feed.onCreate",
		"com.app.MainActivity.onClick",
		"com.app.MainActivity.onCreate",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("entry points = %v, want %v", names, want)
	}
}

func TestReachability(t *testing.T) {
	g := Build(appDex(t))
	reach := g.Reachable()
	if !reach[dalvik.MethodRef{Class: "com.app.Helper", Name: "show", Signature: "()void"}] {
		t.Error("Helper.show not reachable")
	}
	if reach[dalvik.MethodRef{Class: "com.app.DeadCode", Name: "unreachable", Signature: "()void"}] {
		t.Error("DeadCode.unreachable wrongly reachable")
	}
}

func TestAnalyzeUsage(t *testing.T) {
	g := Build(appDex(t))
	u := g.AnalyzeUsage(nil)

	if !u.UsesWebView() || !u.UsesCT() {
		t.Fatalf("UsesWebView=%v UsesCT=%v", u.UsesWebView(), u.UsesCT())
	}
	methods := u.MethodsCalled()
	want := []string{android.MethodAddJavascriptInterface, android.MethodLoadURL}
	if !reflect.DeepEqual(methods, want) {
		t.Errorf("MethodsCalled = %v, want %v", methods, want)
	}
	// evaluateJavascript lives in dead code and must not appear.
	for _, c := range u.WebViewCalls {
		if c.Target.Name == android.MethodEvaluateJavascript {
			t.Error("dead-code call recorded")
		}
	}
	// The loadUrl call must carry its URL hint and caller package.
	var loadURL *APICall
	for i := range u.WebViewCalls {
		if u.WebViewCalls[i].Target.Name == android.MethodLoadURL {
			loadURL = &u.WebViewCalls[i]
		}
	}
	if loadURL == nil {
		t.Fatal("loadUrl call not recorded")
	}
	if loadURL.URLHint != "https://example.com" {
		t.Errorf("URLHint = %q", loadURL.URLHint)
	}
	if loadURL.CallerPackage() != "com.app" {
		t.Errorf("CallerPackage = %q", loadURL.CallerPackage())
	}
	// Custom subclass calls are normalised to the framework class.
	var addJS *APICall
	for i := range u.WebViewCalls {
		if u.WebViewCalls[i].Target.Name == android.MethodAddJavascriptInterface {
			addJS = &u.WebViewCalls[i]
		}
	}
	if addJS == nil || addJS.Target.Class != android.WebViewClass {
		t.Errorf("addJavascriptInterface target = %+v", addJS)
	}
}

func TestAnalyzeUsageCT(t *testing.T) {
	g := Build(appDex(t))
	u := g.AnalyzeUsage(nil)
	var launch, ctor bool
	for _, c := range u.CTCalls {
		switch c.Target.Name {
		case android.MethodLaunchURL:
			launch = true
			if c.URLHint != "https://third.party" {
				t.Errorf("launchUrl hint = %q", c.URLHint)
			}
		case "<init>":
			ctor = true
		}
	}
	if !launch || !ctor {
		t.Errorf("CT calls incomplete: launch=%v ctor=%v (%+v)", launch, ctor, u.CTCalls)
	}
}

func TestExcludeClasses(t *testing.T) {
	g := Build(appDex(t))
	u := g.AnalyzeUsage(map[string]bool{"com.app.Helper": true})
	for _, c := range u.WebViewCalls {
		if c.Caller.Class == "com.app.Helper" {
			t.Error("excluded class still attributed")
		}
	}
}

func TestWebViewSubclasses(t *testing.T) {
	g := Build(appDex(t))
	got := g.WebViewSubclasses()
	if !reflect.DeepEqual(got, []string{"com.app.CustomWeb"}) {
		t.Errorf("WebViewSubclasses = %v", got)
	}
}

func TestIsSubclassOfTransitive(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("a.Base", android.WebViewClass, dalvik.AccPublic)
	b.Class("a.Mid", "a.Base", dalvik.AccPublic)
	b.Class("a.Leaf", "a.Mid", dalvik.AccPublic)
	g := Build(b.MustBuild())
	if !g.IsWebViewClass("a.Leaf") {
		t.Error("transitive subclass not detected")
	}
	if g.IsWebViewClass("a.Unknown") {
		t.Error("unknown class detected as WebView")
	}
}

func TestIsSubclassOfCycleSafe(t *testing.T) {
	// Corrupt input can contain hierarchy cycles; detection must terminate.
	f := &dalvik.File{Classes: []dalvik.Class{
		{Name: "a.A", SuperName: "a.B"},
		{Name: "a.B", SuperName: "a.A"},
	}}
	g := Build(f)
	if g.IsWebViewClass("a.A") {
		t.Error("cyclic hierarchy classified as WebView")
	}
}

func TestVirtualDispatchThroughSuper(t *testing.T) {
	// Calling Leaf.helper() where helper is defined on Base must resolve.
	b := dalvik.NewBuilder()
	b.Class("a.Base", android.ObjectClass, dalvik.AccPublic).
		VoidMethod("helper",
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadData, "(String,String,String)void"),
		)
	b.Class("a.Leaf", "a.Base", dalvik.AccPublic)
	b.Class("a.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.InvokeVirtual("a.Leaf", "helper", "()void"),
		)
	g := Build(b.MustBuild())
	u := g.AnalyzeUsage(nil)
	if !u.UsesWebView() {
		t.Error("call through inherited method not reached")
	}
}

func TestGuardedCallStillDetected(t *testing.T) {
	// Static analysis sees through runtime guards — the paper's stated
	// false-positive source. A call inside an if-z region must be recorded.
	b := dalvik.NewBuilder()
	b.Class("a.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.Instruction{Op: dalvik.OpIfZ, Int: 2},
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
		)
	g := Build(b.MustBuild())
	if !g.AnalyzeUsage(nil).UsesWebView() {
		t.Error("guarded call not detected (static analysis should over-approximate)")
	}
}

func TestNoEntryPointsNoUsage(t *testing.T) {
	// A library-only dex with no components yields no reachable usage.
	b := dalvik.NewBuilder()
	b.Class("lib.Util", android.ObjectClass, dalvik.AccPublic).
		VoidMethod("render",
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
		)
	g := Build(b.MustBuild())
	u := g.AnalyzeUsage(nil)
	if u.UsesWebView() {
		t.Error("usage recorded with no entry points")
	}
}
