package browsersim

import (
	"strings"

	"repro/internal/dom"
	"repro/internal/jsvm"
)

// installBindings exposes document, window, console, navigator and network
// primitives to page scripts. Every DOM method records an APICall, exactly
// as the controlled page's Trace.js wraps the Web APIs (§3.2.2).
func (p *Page) installBindings() {
	g := p.VM.Global

	console := jsvm.NewObject()
	console.SetFunc("log", func(c jsvm.Call) (jsvm.Value, error) {
		parts := make([]string, len(c.Args))
		for i, a := range c.Args {
			parts[i] = a.StringValue()
		}
		p.mu.Lock()
		p.Console = append(p.Console, strings.Join(parts, " "))
		p.mu.Unlock()
		return jsvm.Undefined(), nil
	})
	console.Set("error", console.Get("log"))
	console.Set("warn", console.Get("log"))
	console.Set("info", console.Get("log"))
	g.Set("console", jsvm.ObjectValue(console))

	g.Set("document", jsvm.ObjectValue(p.documentObject()))

	// window IS the global object, as in browsers: window.x = 1 creates a
	// global, and bare globals are readable as window properties.
	window := g
	location := jsvm.NewObject()
	location.Set("href", jsvm.String(p.URL))
	if i := strings.Index(p.URL, "://"); i > 0 {
		rest := p.URL[i+3:]
		host := rest
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			host = rest[:j]
		}
		location.Set("host", jsvm.String(host))
		location.Set("hostname", jsvm.String(host))
	}
	window.Set("location", jsvm.ObjectValue(location))
	window.Set("window", jsvm.ObjectValue(window))
	window.SetFunc("addEventListener", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Window", "addEventListener")
		return jsvm.Undefined(), nil
	})
	// Timers run synchronously: the harness has no event loop and the
	// measured scripts only use them to defer work.
	window.SetFunc("setTimeout", func(c jsvm.Call) (jsvm.Value, error) {
		if fn := c.Arg(0); fn.Object() != nil && fn.Object().IsCallable() {
			if _, err := c.VM.CallFunction(fn, jsvm.Undefined()); err != nil {
				return jsvm.Undefined(), err
			}
		}
		return jsvm.Number(1), nil
	})

	navigator := jsvm.NewObject()
	ua := p.loader.UserAgent
	if ua == "" {
		ua = "Mozilla/5.0 (Linux; Android 12; Pixel 3) BrowserSim/1.0"
	}
	navigator.Set("userAgent", jsvm.String(ua))
	navigator.SetFunc("sendBeacon", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Navigator", "sendBeacon")
		p.FetchFromScript(c.Arg(0).StringValue())
		return jsvm.Bool(true), nil
	})
	g.Set("navigator", jsvm.ObjectValue(navigator))

	p.installProbeAPIs(g, navigator)

	// XMLHttpRequest: synchronous single-shot GET, enough for beacons and
	// measurement pings.
	g.Set("XMLHttpRequest", jsvm.ObjectValue(jsvm.NewHostFunc("XMLHttpRequest", func(c jsvm.Call) (jsvm.Value, error) {
		xhr := c.This.Object()
		if xhr == nil {
			xhr = jsvm.NewObject()
		}
		var reqURL string
		xhr.SetFunc("open", func(cc jsvm.Call) (jsvm.Value, error) {
			p.recordAPI("XMLHttpRequest", "open")
			reqURL = cc.Arg(1).StringValue()
			return jsvm.Undefined(), nil
		})
		xhr.SetFunc("send", func(cc jsvm.Call) (jsvm.Value, error) {
			p.recordAPI("XMLHttpRequest", "send")
			body, status := p.FetchFromScript(reqURL)
			xhr.Set("status", jsvm.Number(float64(status)))
			xhr.Set("responseText", jsvm.String(body))
			xhr.Set("readyState", jsvm.Number(4))
			if cb := xhr.Get("onreadystatechange"); cb.Object() != nil && cb.Object().IsCallable() {
				if _, err := cc.VM.CallFunction(cb, jsvm.ObjectValue(xhr)); err != nil {
					return jsvm.Undefined(), err
				}
			}
			return jsvm.Undefined(), nil
		})
		xhr.SetFunc("setRequestHeader", func(cc jsvm.Call) (jsvm.Value, error) {
			return jsvm.Undefined(), nil
		})
		return jsvm.ObjectValue(xhr), nil
	})))

	// fetch(): resolves synchronously, returning a pseudo-promise whose
	// then-callback receives {status, text}.
	g.Set("fetch", jsvm.ObjectValue(jsvm.NewHostFunc("fetch", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Window", "fetch")
		body, status := p.FetchFromScript(c.Arg(0).StringValue())
		resp := jsvm.NewObject()
		resp.Set("status", jsvm.Number(float64(status)))
		resp.Set("ok", jsvm.Bool(status >= 200 && status < 300))
		resp.SetFunc("text", func(cc jsvm.Call) (jsvm.Value, error) {
			return jsvm.String(body), nil
		})
		promise := jsvm.NewObject()
		promise.SetFunc("then", func(cc jsvm.Call) (jsvm.Value, error) {
			if fn := cc.Arg(0); fn.Object() != nil && fn.Object().IsCallable() {
				if _, err := cc.VM.CallFunction(fn, jsvm.Undefined(), jsvm.ObjectValue(resp)); err != nil {
					return jsvm.Undefined(), err
				}
			}
			return jsvm.ObjectValue(promise), nil
		})
		promise.SetFunc("catch", func(cc jsvm.Call) (jsvm.Value, error) {
			return jsvm.ObjectValue(promise), nil
		})
		return jsvm.ObjectValue(promise), nil
	})))

	g.Set("performance", jsvm.ObjectValue(p.performanceObject()))
}

// resolvedPromise returns a fetch-style pseudo-promise already resolved
// with v: then-callbacks run synchronously, catch is a no-op.
func (p *Page) resolvedPromise(v jsvm.Value) *jsvm.Object {
	promise := jsvm.NewObject()
	promise.SetFunc("then", func(c jsvm.Call) (jsvm.Value, error) {
		if fn := c.Arg(0); fn.Object() != nil && fn.Object().IsCallable() {
			if _, err := c.VM.CallFunction(fn, jsvm.Undefined(), v); err != nil {
				return jsvm.Undefined(), err
			}
		}
		return jsvm.ObjectValue(promise), nil
	})
	promise.SetFunc("catch", func(c jsvm.Call) (jsvm.Value, error) {
		return jsvm.ObjectValue(promise), nil
	})
	return promise
}

// installProbeAPIs exposes the sensor, storage and clipboard surfaces
// the IAB test page probes (the read-only rows of Table 9; sensor and
// clipboard coverage follows the Web-API security literature's probe
// set). Everything is deterministic and records interception like every
// other binding.
func (p *Page) installProbeAPIs(g, navigator *jsvm.Object) {
	// localStorage: in-memory, with a deterministic quota so storage-probe
	// scripts observe a browser-like QuotaExceededError instead of
	// unbounded success.
	const storageQuota = 5120 // bytes of key+value across the store
	store := map[string]string{}
	used := 0
	ls := jsvm.NewObject()
	ls.SetFunc("getItem", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Storage", "getItem")
		if v, ok := store[c.Arg(0).StringValue()]; ok {
			return jsvm.String(v), nil
		}
		return jsvm.Null(), nil
	})
	ls.SetFunc("setItem", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Storage", "setItem")
		k, v := c.Arg(0).StringValue(), c.Arg(1).StringValue()
		delta := len(k) + len(v) - len(store[k])
		if _, ok := store[k]; !ok {
			delta = len(k) + len(v)
		}
		if used+delta > storageQuota {
			e := jsvm.NewObject()
			e.Set("name", jsvm.String("QuotaExceededError"))
			e.Set("message", jsvm.String("exceeded the quota"))
			return jsvm.Undefined(), &jsvm.Error{Value: jsvm.ObjectValue(e)}
		}
		store[k] = v
		used += delta
		return jsvm.Undefined(), nil
	})
	ls.SetFunc("removeItem", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Storage", "removeItem")
		k := c.Arg(0).StringValue()
		if v, ok := store[k]; ok {
			used -= len(k) + len(v)
			delete(store, k)
		}
		return jsvm.Undefined(), nil
	})
	ls.SetFunc("clear", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Storage", "clear")
		store = map[string]string{}
		used = 0
		return jsvm.Undefined(), nil
	})
	g.Set("localStorage", jsvm.ObjectValue(ls))

	// DeviceMotionEvent: constructible, with the iOS-style static
	// requestPermission probe ad scripts use to detect sensor access.
	dme := jsvm.NewHostFunc("DeviceMotionEvent", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("DeviceMotionEvent", "constructor")
		ev := c.This.Object()
		if ev == nil {
			ev = jsvm.NewObject()
		}
		ev.Set("type", c.Arg(0))
		accel := jsvm.NewObject()
		accel.Set("x", jsvm.Number(0))
		accel.Set("y", jsvm.Number(0))
		accel.Set("z", jsvm.Number(0))
		ev.Set("acceleration", jsvm.ObjectValue(accel))
		ev.Set("interval", jsvm.Number(16))
		return jsvm.ObjectValue(ev), nil
	})
	dme.SetFunc("requestPermission", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("DeviceMotionEvent", "requestPermission")
		return jsvm.ObjectValue(p.resolvedPromise(jsvm.String("granted"))), nil
	})
	g.Set("DeviceMotionEvent", jsvm.ObjectValue(dme))

	// navigator.clipboard: async read/write stubs over one deterministic
	// in-page buffer.
	var clipText string
	clip := jsvm.NewObject()
	clip.SetFunc("writeText", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Clipboard", "writeText")
		clipText = c.Arg(0).StringValue()
		return jsvm.ObjectValue(p.resolvedPromise(jsvm.Undefined())), nil
	})
	clip.SetFunc("readText", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI("Clipboard", "readText")
		return jsvm.ObjectValue(p.resolvedPromise(jsvm.String(clipText))), nil
	})
	navigator.Set("clipboard", jsvm.ObjectValue(clip))
}

func (p *Page) performanceObject() *jsvm.Object {
	perf := jsvm.NewObject()
	var t float64 = 120 // deterministic "DOMContentLoaded at 120ms"
	perf.SetFunc("now", func(c jsvm.Call) (jsvm.Value, error) {
		t += 16
		return jsvm.Number(t), nil
	})
	timing := jsvm.NewObject()
	timing.Set("navigationStart", jsvm.Number(0))
	timing.Set("domContentLoadedEventEnd", jsvm.Number(120))
	timing.Set("loadEventEnd", jsvm.Number(480))
	perf.Set("timing", jsvm.ObjectValue(timing))
	return perf
}

// documentObject wraps the page DOM. Nodes are wrapped once and cached so
// identity comparisons in script behave.
func (p *Page) documentObject() *jsvm.Object {
	doc := jsvm.NewObject()
	record := func(method string) { p.recordAPI("Document", method) }

	doc.SetFunc("getElementById", func(c jsvm.Call) (jsvm.Value, error) {
		record("getElementById")
		n := p.Doc.GetElementByID(c.Arg(0).StringValue())
		if n == nil {
			return jsvm.Null(), nil
		}
		return jsvm.ObjectValue(p.wrapNode(n)), nil
	})
	doc.SetFunc("getElementsByTagName", func(c jsvm.Call) (jsvm.Value, error) {
		record("getElementsByTagName")
		return jsvm.ObjectValue(p.wrapNodeList(p.Doc.GetElementsByTagName(c.Arg(0).StringValue()), "HTMLCollection")), nil
	})
	doc.SetFunc("querySelectorAll", func(c jsvm.Call) (jsvm.Value, error) {
		record("querySelectorAll")
		return jsvm.ObjectValue(p.wrapNodeList(p.Doc.QuerySelectorAll(c.Arg(0).StringValue()), "NodeList")), nil
	})
	doc.SetFunc("querySelector", func(c jsvm.Call) (jsvm.Value, error) {
		record("querySelector")
		nodes := p.Doc.QuerySelectorAll(c.Arg(0).StringValue())
		if len(nodes) == 0 {
			return jsvm.Null(), nil
		}
		return jsvm.ObjectValue(p.wrapNode(nodes[0])), nil
	})
	doc.SetFunc("createElement", func(c jsvm.Call) (jsvm.Value, error) {
		record("createElement")
		return jsvm.ObjectValue(p.wrapNode(p.Doc.CreateElement(c.Arg(0).StringValue()))), nil
	})
	doc.SetFunc("addEventListener", func(c jsvm.Call) (jsvm.Value, error) {
		record("addEventListener")
		return jsvm.Undefined(), nil
	})
	doc.SetFunc("removeEventListener", func(c jsvm.Call) (jsvm.Value, error) {
		record("removeEventListener")
		return jsvm.Undefined(), nil
	})
	doc.Set("title", jsvm.String(p.Doc.Title))
	if body := p.Doc.Body(); body != nil {
		doc.Set("body", jsvm.ObjectValue(p.wrapNode(body)))
	}
	if head := p.Doc.Head(); head != nil {
		doc.Set("head", jsvm.ObjectValue(p.wrapNode(head)))
	}
	doc.Set("URL", jsvm.String(p.URL))
	return doc
}

// wrapNodeList exposes a node list; iface names it for API recording
// (HTMLCollection for tag queries, NodeList for selector queries).
func (p *Page) wrapNodeList(nodes []*dom.Node, iface string) *jsvm.Object {
	arr := jsvm.NewArray()
	for _, n := range nodes {
		arr.Append(jsvm.ObjectValue(p.wrapNode(n)))
	}
	arr.SetFunc("item", func(c jsvm.Call) (jsvm.Value, error) {
		p.recordAPI(iface, "item")
		return arr.Index(int(c.Arg(0).NumberValue())), nil
	})
	return arr
}

// wrapNode exposes one DOM node to script.
func (p *Page) wrapNode(n *dom.Node) *jsvm.Object {
	p.mu.Lock()
	if o, ok := p.nodeWraps[n]; ok {
		p.mu.Unlock()
		return o
	}
	o := jsvm.NewObject()
	p.nodeWraps[n] = o
	p.mu.Unlock()

	o.Host = n
	iface := interfaceFor(n)
	rec := func(m string) { p.recordAPI(iface, m) }

	o.Set("tagName", jsvm.String(strings.ToUpper(n.Tag)))
	o.Set("id", jsvm.String(n.ID()))
	o.Set("textContent", jsvm.String(n.Text()))
	o.SetFunc("getAttribute", func(c jsvm.Call) (jsvm.Value, error) {
		rec("getAttribute")
		name := c.Arg(0).StringValue()
		if n.Attr(name) == "" {
			return jsvm.Null(), nil
		}
		return jsvm.String(n.Attr(name)), nil
	})
	o.SetFunc("setAttribute", func(c jsvm.Call) (jsvm.Value, error) {
		rec("setAttribute")
		n.SetAttr(c.Arg(0).StringValue(), c.Arg(1).StringValue())
		return jsvm.Undefined(), nil
	})
	o.SetFunc("hasAttribute", func(c jsvm.Call) (jsvm.Value, error) {
		rec("hasAttribute")
		return jsvm.Bool(n.Attr(c.Arg(0).StringValue()) != ""), nil
	})
	o.SetFunc("getElementsByTagName", func(c jsvm.Call) (jsvm.Value, error) {
		rec("getElementsByTagName")
		tag := strings.ToLower(c.Arg(0).StringValue())
		var out []*dom.Node
		n.Walk(func(m *dom.Node) bool {
			if m != n && m.Type == dom.ElementNode && (tag == "*" || m.Tag == tag) {
				out = append(out, m)
			}
			return true
		})
		return jsvm.ObjectValue(p.wrapNodeList(out, "HTMLCollection")), nil
	})
	o.SetFunc("appendChild", func(c jsvm.Call) (jsvm.Value, error) {
		rec("appendChild")
		if child := hostNode(c.Arg(0)); child != nil {
			n.AppendChild(child)
			p.syncAttrs(c.Arg(0).Object(), child)
		}
		return c.Arg(0), nil
	})
	o.SetFunc("insertBefore", func(c jsvm.Call) (jsvm.Value, error) {
		rec("insertBefore")
		child := hostNode(c.Arg(0))
		ref := hostNode(c.Arg(1))
		if child != nil {
			n.InsertBefore(child, ref)
			p.syncAttrs(c.Arg(0).Object(), child)
		}
		return c.Arg(0), nil
	})
	o.SetFunc("removeChild", func(c jsvm.Call) (jsvm.Value, error) {
		rec("removeChild")
		if child := hostNode(c.Arg(0)); child != nil && child.Parent == n {
			child.Detach()
		}
		return c.Arg(0), nil
	})
	o.SetFunc("addEventListener", func(c jsvm.Call) (jsvm.Value, error) {
		rec("addEventListener")
		return jsvm.Undefined(), nil
	})
	if n.Parent != nil {
		o.Set("parentNode", jsvm.ObjectValue(p.wrapNode(n.Parent)))
	}
	return o
}

// syncAttrs copies the script-set id/src/href properties back onto the DOM
// node when it is attached (scripts set `js.src = url` before insertion).
func (p *Page) syncAttrs(wrapper *jsvm.Object, n *dom.Node) {
	if wrapper == nil {
		return
	}
	for _, attr := range [...]string{"id", "src", "href", "class"} {
		if v := wrapper.Get(attr); !v.IsUndefined() && v.StringValue() != "" {
			n.SetAttr(attr, v.StringValue())
		}
	}
	// An inserted <script src=…> triggers a (injection-initiated) fetch,
	// the behaviour the FB/IG autofill injector relies on.
	if n.Tag == "script" {
		if src := n.Attr("src"); src != "" {
			p.FetchFromScript(src)
		}
	}
}

func hostNode(v jsvm.Value) *dom.Node {
	o := v.Object()
	if o == nil {
		return nil
	}
	n, _ := o.Host.(*dom.Node)
	return n
}

func interfaceFor(n *dom.Node) string {
	switch n.Tag {
	case "body":
		return "HTMLBodyElement"
	case "meta":
		return "HTMLMetaElement"
	case "script":
		return "HTMLScriptElement"
	default:
		return "Element"
	}
}
