// Package browsersim loads and renders web pages for the measurement
// harness: it fetches a page over HTTP, parses it into a DOM, loads its
// subresources (logging every request to a netlog), and executes its
// scripts — and any injected scripts — in a jsvm with document/window
// host bindings. Every Web-API call made by script is recorded, which is
// how the controlled test page "overrides all methods of all Web APIs and
// submits the intercepted requests back to our server" (§3.2.2, Table 9).
package browsersim

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"repro/internal/dom"
	"repro/internal/jsvm"
	"repro/internal/netlog"
)

// APICall is one recorded Web-API invocation (Table 9 rows).
type APICall struct {
	Interface string // e.g. "Document", "Element"
	Method    string // e.g. "getElementsByTagName"
}

// Page is a loaded page with its live DOM and script VM.
type Page struct {
	URL     string
	Doc     *dom.Document
	VM      *jsvm.VM
	Console []string

	loader   *Loader
	mu       sync.Mutex
	apiCalls []APICall
	// initiator labels requests triggered by currently-running script.
	initiator string
	nodeWraps map[*dom.Node]*jsvm.Object
}

// APICalls returns the recorded Web-API invocations in call order.
func (p *Page) APICalls() []APICall {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]APICall(nil), p.apiCalls...)
}

func (p *Page) recordAPI(iface, method string) {
	p.mu.Lock()
	p.apiCalls = append(p.apiCalls, APICall{iface, method})
	p.mu.Unlock()
}

// Loader fetches and renders pages within one browsing context.
type Loader struct {
	// Client issues all requests; tests inject httptest clients.
	Client *http.Client
	// Log receives one event per request; nil disables logging.
	Log *netlog.Log
	// Context names the browsing context in the netlog (one WebView
	// instance, one CT session).
	Context string
	// Headers are added to every request (WebViews stamp
	// X-Requested-With with the app package).
	Headers map[string]string
	// UserAgent is sent when non-empty.
	UserAgent string
	// MaxSubresources bounds fetches per page (0 = 64).
	MaxSubresources int
	// ExecuteScripts controls whether page <script> elements run.
	ExecuteScripts bool
	// Globals are host objects pre-seeded into every page's VM before any
	// page script runs (WebView JS bridges are visible to page code from
	// the first script, as on Android).
	Globals map[string]*jsvm.Object
}

func (l *Loader) client() *http.Client {
	if l.Client != nil {
		return l.Client
	}
	return http.DefaultClient
}

// LoadWithScripts is Load with the script-execution flag overridden per
// visit (WebViews flip it with their JavaScriptEnabled setting).
func (l *Loader) LoadWithScripts(ctx context.Context, pageURL string, scripts bool) (*Page, error) {
	shallow := *l
	shallow.ExecuteScripts = scripts
	return shallow.Load(ctx, pageURL)
}

// NewLocalPage renders in-memory HTML as if it had been fetched from
// baseURL (the loadData / loadDataWithBaseURL path). No network fetch is
// made for the document itself; subresources and scripts still resolve
// against baseURL.
func NewLocalPage(l *Loader, baseURL, html string, scripts bool) *Page {
	doc := dom.Parse(html)
	doc.URL = baseURL
	page := &Page{
		URL:       baseURL,
		Doc:       doc,
		VM:        jsvm.New(),
		loader:    l,
		initiator: "page",
		nodeWraps: make(map[*dom.Node]*jsvm.Object),
	}
	page.installBindings()
	for name, obj := range l.Globals {
		page.VM.Global.Set(name, jsvm.ObjectValue(obj))
	}
	if scripts {
		for _, script := range doc.Scripts() {
			if script.Attr("src") != "" {
				continue // external scripts of local data need a real base
			}
			page.runPageScript(script.Text())
		}
	}
	return page
}

// runPageScript compiles code through the shared program cache and runs it
// best-effort. Identical scripts (SDK snippets, per-visit injections) parse
// once per process instead of once per page.
func (p *Page) runPageScript(code string) {
	prog, err := jsvm.CompileCached(code)
	if err == nil {
		_, err = p.VM.RunProgram(prog)
	}
	if err != nil {
		p.Console = append(p.Console, "script error: "+err.Error())
	}
}

// Load fetches pageURL, parses it, fetches subresources, and (when
// ExecuteScripts) runs page scripts. The returned Page stays live:
// injected scripts can keep mutating it via Execute.
func (l *Loader) Load(ctx context.Context, pageURL string) (*Page, error) {
	body, status, err := l.fetch(ctx, pageURL, "page")
	if err != nil {
		return nil, fmt.Errorf("browsersim: load %s: %w", pageURL, err)
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("browsersim: load %s: status %d", pageURL, status)
	}
	doc := dom.Parse(string(body))
	doc.URL = pageURL
	page := &Page{
		URL:       pageURL,
		Doc:       doc,
		VM:        jsvm.New(),
		loader:    l,
		initiator: "page",
		nodeWraps: make(map[*dom.Node]*jsvm.Object),
	}
	page.installBindings()
	for name, obj := range l.Globals {
		page.VM.Global.Set(name, jsvm.ObjectValue(obj))
	}

	// Subresources.
	max := l.MaxSubresources
	if max == 0 {
		max = 64
	}
	base, _ := url.Parse(pageURL)
	for i, sub := range doc.SubresourceURLs() {
		if i >= max {
			break
		}
		abs := resolveRef(base, sub)
		if abs == "" {
			continue
		}
		// Best-effort: subresource failures don't fail the page. The body
		// is drained through a pooled buffer — only the netlog entry
		// matters, so no per-fetch allocation is kept.
		l.fetchDiscard(ctx, abs, "subresource")
	}

	if l.ExecuteScripts {
		for _, script := range doc.Scripts() {
			src := script.Attr("src")
			var code string
			if src != "" {
				abs := resolveRef(base, src)
				body, status, err := l.fetch(ctx, abs, "subresource")
				if err != nil || status != http.StatusOK {
					continue
				}
				code = string(body)
			} else {
				code = script.Text()
			}
			// Page scripts are best-effort: real pages contain JS beyond
			// the interpreter subset, and a page script error must not
			// abort the visit.
			page.runPageScript(code)
		}
	}
	return page, nil
}

// Execute runs injected JavaScript against the live page, tagging any
// network requests it triggers as injection-initiated. It returns the
// script's completion value rendered as a string (the evaluateJavascript
// callback contract).
func (p *Page) Execute(code string) (string, error) {
	p.mu.Lock()
	prev := p.initiator
	p.initiator = "injection"
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.initiator = prev
		p.mu.Unlock()
	}()
	prog, err := jsvm.CompileCached(code)
	if err != nil {
		return "", err
	}
	v, err := p.VM.RunProgram(prog)
	if err != nil {
		return "", err
	}
	return v.StringValue(), nil
}

// ExecuteProgram is Execute for a pre-parsed program: callers probing many
// pages with the same injected script compile it once and skip even the
// cache lookup on the hot path.
func (p *Page) ExecuteProgram(prog *jsvm.Program) (string, error) {
	p.mu.Lock()
	prev := p.initiator
	p.initiator = "injection"
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.initiator = prev
		p.mu.Unlock()
	}()
	v, err := p.VM.RunProgram(prog)
	if err != nil {
		return "", err
	}
	return v.StringValue(), nil
}

// FetchFromScript issues a network request on behalf of running script
// (XMLHttpRequest/fetch/beacon host bindings call this).
func (p *Page) FetchFromScript(rawURL string) (string, int) {
	base, _ := url.Parse(p.URL)
	abs := resolveRef(base, rawURL)
	if abs == "" {
		return "", 0
	}
	p.mu.Lock()
	init := p.initiator
	p.mu.Unlock()
	body, status, err := p.loader.fetch(context.Background(), abs, init)
	if err != nil {
		return "", 0
	}
	return string(body), status
}

// copyBufs pools the scratch buffers subresource drains copy through, so a
// crawl visiting thousands of pages reuses a handful of 32 KiB slabs
// instead of allocating one per fetch.
var copyBufs = sync.Pool{
	New: func() any { b := make([]byte, 32<<10); return &b },
}

// fetchDiscard issues a request whose body is drained and thrown away:
// the netlog event is the point, not the bytes. Errors are deliberately
// swallowed (subresources are best-effort); the event is still logged.
func (l *Loader) fetchDiscard(ctx context.Context, rawURL, initiator string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return
	}
	for k, v := range l.Headers {
		req.Header.Set(k, v)
	}
	if l.UserAgent != "" {
		req.Header.Set("User-Agent", l.UserAgent)
	}
	resp, err := l.client().Do(req)
	if err != nil {
		l.logEvent(rawURL, 0, initiator)
		return
	}
	defer resp.Body.Close()
	buf := copyBufs.Get().(*[]byte)
	lr := io.LimitReader(resp.Body, 8<<20)
	for {
		if _, err := lr.Read(*buf); err != nil {
			break
		}
	}
	copyBufs.Put(buf)
	l.logEvent(rawURL, resp.StatusCode, initiator)
}

func (l *Loader) fetch(ctx context.Context, rawURL, initiator string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, 0, err
	}
	for k, v := range l.Headers {
		req.Header.Set(k, v)
	}
	if l.UserAgent != "" {
		req.Header.Set("User-Agent", l.UserAgent)
	}
	resp, err := l.client().Do(req)
	if err != nil {
		l.logEvent(rawURL, 0, initiator)
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	l.logEvent(rawURL, resp.StatusCode, initiator)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

func (l *Loader) logEvent(rawURL string, status int, initiator string) {
	if l.Log == nil {
		return
	}
	hdr := make(map[string]string, len(l.Headers))
	for k, v := range l.Headers {
		hdr[k] = v
	}
	l.Log.Record(netlog.Event{
		Context:   l.Context,
		URL:       rawURL,
		Method:    http.MethodGet,
		Status:    status,
		Header:    hdr,
		Initiator: initiator,
	})
}

func resolveRef(base *url.URL, ref string) string {
	if strings.HasPrefix(ref, "//") && base != nil {
		ref = base.Scheme + ":" + ref
	}
	u, err := url.Parse(ref)
	if err != nil {
		return ""
	}
	if base != nil {
		u = base.ResolveReference(u)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return ""
	}
	return u.String()
}
