package browsersim

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jsvm"
	"repro/internal/netlog"
)

func bindingsSite(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>B</title><meta name="k" content="v"></head>
<body id="top"><div id="a"><span id="b">x</span></div></body></html>`))
	})
	mux.HandleFunc("/beacon", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func loadB(t *testing.T, srv *httptest.Server, log *netlog.Log) *Page {
	t.Helper()
	l := &Loader{Client: srv.Client(), Log: log, Context: "b", ExecuteScripts: true}
	page, err := l.Load(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	return page
}

func TestWindowAndNavigatorBindings(t *testing.T) {
	srv := bindingsSite(t)
	log := netlog.New()
	page := loadB(t, srv, log)
	out, err := page.Execute(`
window.addEventListener("load", function(){});
var ua = navigator.userAgent;
navigator.sendBeacon("/beacon");
var ran = 0;
setTimeout(function(){ ran = 1; }, 100);
location.host + "|" + (ua.length > 0) + "|" + ran;`)
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(out, "|")
	if len(parts) != 3 || parts[1] != "true" || parts[2] != "1" {
		t.Errorf("out = %q", out)
	}
	// Beacon hit the network with injection attribution.
	found := false
	for _, e := range log.Events() {
		if strings.HasSuffix(e.URL, "/beacon") && e.Initiator == "injection" {
			found = true
		}
	}
	if !found {
		t.Error("sendBeacon not logged")
	}
}

func TestElementMutationBindings(t *testing.T) {
	srv := bindingsSite(t)
	page := loadB(t, srv, nil)
	out, err := page.Execute(`
var a = document.getElementById("a");
var b = document.getElementById("b");
a.setAttribute("data-x", "1");
var had = a.hasAttribute("data-x");
var attr = a.getAttribute("data-x");
var missing = a.getAttribute("nope");
a.removeChild(b);
var gone = document.getElementById("b") === null;
var q = document.querySelector("#a");
var qn = document.querySelector(".does-not-exist");
had + "|" + attr + "|" + (missing === null) + "|" + gone + "|" + (q !== null) + "|" + (qn === null);`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "true|1|true|true|true|true" {
		t.Errorf("out = %q", out)
	}
}

func TestDocumentTitleAndURL(t *testing.T) {
	srv := bindingsSite(t)
	page := loadB(t, srv, nil)
	out, err := page.Execute(`document.title + "|" + (document.URL === location.href)`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "B|true" {
		t.Errorf("out = %q", out)
	}
}

func TestXHRReadyStateCallback(t *testing.T) {
	srv := bindingsSite(t)
	page := loadB(t, srv, nil)
	out, err := page.Execute(`
var states = [];
var xhr = new XMLHttpRequest();
xhr.onreadystatechange = function() { states.push(this.readyState + ":" + this.status); };
xhr.open("GET", "/beacon");
xhr.setRequestHeader("X-Extra", "1");
xhr.send();
states.join(",");`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "4:204" {
		t.Errorf("states = %q", out)
	}
}

func TestFetchCatchChain(t *testing.T) {
	srv := bindingsSite(t)
	page := loadB(t, srv, nil)
	out, err := page.Execute(`
var status = 0;
fetch("/missing").then(function(r){ status = r.status; }).catch(function(){ status = -1; });
status + "";`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "404" {
		t.Errorf("fetch status = %q", out)
	}
}

func TestPerformanceBindings(t *testing.T) {
	srv := bindingsSite(t)
	page := loadB(t, srv, nil)
	out, err := page.Execute(`
var t1 = performance.now();
var t2 = performance.now();
(t2 > t1) + "|" + performance.timing.domContentLoadedEventEnd;`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "true|120" {
		t.Errorf("out = %q", out)
	}
}

func TestConsoleVariants(t *testing.T) {
	srv := bindingsSite(t)
	page := loadB(t, srv, nil)
	if _, err := page.Execute(`console.error("e"); console.warn("w"); console.info("i");`); err != nil {
		t.Fatal(err)
	}
	if len(page.Console) != 3 {
		t.Errorf("console = %v", page.Console)
	}
}

func TestSubresourceLimit(t *testing.T) {
	mux := http.NewServeMux()
	var hits int
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			hits++
			w.Write([]byte("x"))
			return
		}
		page := "<html><body>"
		for i := 0; i < 20; i++ {
			page += `<img src="/img-` + string(rune('a'+i)) + `.png">`
		}
		page += "</body></html>"
		w.Write([]byte(page))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	l := &Loader{Client: srv.Client(), MaxSubresources: 5}
	if _, err := l.Load(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if hits != 5 {
		t.Errorf("subresource fetches = %d, want 5", hits)
	}
}

// probeAPIScript exercises the sensor, storage and clipboard surfaces
// the IAB test page probes with the bytecode engine's speed budget.
const probeAPIScript = `
var out = [];
localStorage.setItem("k", "v");
out.push(localStorage.getItem("k"));
out.push(localStorage.getItem("missing") === null);
var quota = "no";
try {
    var big = "x";
    while (big.length < 9000) { big = big + big; }
    localStorage.setItem("big", big);
} catch (e) { quota = e.name; }
out.push(quota);
localStorage.removeItem("k");
out.push(localStorage.getItem("k") === null);
localStorage.clear();
var ev = new DeviceMotionEvent("devicemotion");
out.push(ev.type + ":" + ev.acceleration.x);
var perm = "";
DeviceMotionEvent.requestPermission().then(function(p) { perm = p; });
out.push(perm);
var clip = "";
navigator.clipboard.writeText("copied").then(function() {
    navigator.clipboard.readText().then(function(s) { clip = s; });
});
out.push(clip);
out.join("|");`

// probeAPIWant are the interception rows the probe script must produce,
// in call order — the fixture the Figure 6 / Table 9 reporting consumes.
var probeAPIWant = []APICall{
	{Interface: "Storage", Method: "setItem"},
	{Interface: "Storage", Method: "getItem"},
	{Interface: "Storage", Method: "getItem"},
	{Interface: "Storage", Method: "setItem"},
	{Interface: "Storage", Method: "removeItem"},
	{Interface: "Storage", Method: "getItem"},
	{Interface: "Storage", Method: "clear"},
	{Interface: "DeviceMotionEvent", Method: "constructor"},
	{Interface: "DeviceMotionEvent", Method: "requestPermission"},
	{Interface: "Clipboard", Method: "writeText"},
	{Interface: "Clipboard", Method: "readText"},
}

const probeAPIWantOut = "v|true|QuotaExceededError|true|devicemotion:0|granted|copied"

func runProbeAPIs(t *testing.T, eng jsvm.Engine) []APICall {
	t.Helper()
	srv := bindingsSite(t)
	page := loadB(t, srv, nil)
	page.VM.Engine = eng
	out, err := page.Execute(probeAPIScript)
	if err != nil {
		t.Fatalf("engine %v: %v", eng, err)
	}
	if out != probeAPIWantOut {
		t.Errorf("engine %v: out = %q, want %q", eng, out, probeAPIWantOut)
	}
	return page.APICalls()
}

// TestProbeAPIInterception asserts the new Web-API surfaces are
// intercepted per call, row for row.
func TestProbeAPIInterception(t *testing.T) {
	got := runProbeAPIs(t, jsvm.EngineDefault)
	if len(got) != len(probeAPIWant) {
		t.Fatalf("api calls = %+v, want %+v", got, probeAPIWant)
	}
	for i, w := range probeAPIWant {
		if got[i] != w {
			t.Errorf("api call %d = %+v, want %+v", i, got[i], w)
		}
	}
}

// TestProbeAPIDifferentialParity runs the probe on both jsvm engines and
// asserts the recorded interception rows are identical — the
// telemetry-visible side effects the differential harness guarantees.
func TestProbeAPIDifferentialParity(t *testing.T) {
	ast := runProbeAPIs(t, jsvm.EngineAST)
	bc := runProbeAPIs(t, jsvm.EngineBytecode)
	if len(ast) != len(bc) {
		t.Fatalf("row count: ast=%d bytecode=%d (%+v vs %+v)", len(ast), len(bc), ast, bc)
	}
	for i := range ast {
		if ast[i] != bc[i] {
			t.Errorf("row %d: ast=%+v bytecode=%+v", i, ast[i], bc[i])
		}
	}
}
