package browsersim

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/netlog"
)

func testSite(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.Write([]byte(`<!DOCTYPE html>
<html><head><title>Landing</title>
<link rel="stylesheet" href="/style.css">
<script src="/app.js"></script>
</head>
<body>
<h1 id="title">Welcome</h1>
<img src="/logo.png">
<script>
console.log("inline ran, title=" + document.title);
window.__marker = document.getElementById("title").tagName;
</script>
</body></html>`))
	})
	mux.HandleFunc("/style.css", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("body{}"))
	})
	mux.HandleFunc("/app.js", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`window.__external = 40 + 2;`))
	})
	mux.HandleFunc("/logo.png", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("PNG"))
	})
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pong"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func load(t *testing.T, srv *httptest.Server, log *netlog.Log) *Page {
	t.Helper()
	l := &Loader{
		Client:         srv.Client(),
		Log:            log,
		Context:        "wv-1",
		ExecuteScripts: true,
		Headers:        map[string]string{"X-Requested-With": "com.example.app"},
	}
	page, err := l.Load(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return page
}

func TestLoadParsesAndExecutes(t *testing.T) {
	srv := testSite(t)
	page := load(t, srv, nil)
	if page.Doc.Title != "Landing" {
		t.Errorf("title = %q", page.Doc.Title)
	}
	if len(page.Console) == 0 || !strings.Contains(page.Console[0], "title=Landing") {
		t.Errorf("console = %v", page.Console)
	}
	if got := page.VM.Global.Get("__marker").StringValue(); got != "H1" {
		t.Errorf("__marker = %q", got)
	}
	if got := page.VM.Global.Get("__external").NumberValue(); got != 42 {
		t.Errorf("__external = %v (external script did not run)", got)
	}
}

func TestNetlogRecordsAllRequests(t *testing.T) {
	srv := testSite(t)
	log := netlog.New()
	load(t, srv, log)
	events := log.Events()
	// page + style.css + app.js (subresource) + logo.png + app.js (script
	// execution refetch) — at least the four distinct URLs.
	urls := map[string]bool{}
	for _, e := range events {
		urls[e.URL] = true
		if e.Header["X-Requested-With"] != "com.example.app" {
			t.Errorf("event %s missing X-Requested-With", e.URL)
		}
		if e.Context != "wv-1" {
			t.Errorf("event context = %q", e.Context)
		}
	}
	for _, want := range []string{"/", "/style.css", "/app.js", "/logo.png"} {
		if !urls[srv.URL+want] {
			t.Errorf("missing request for %s (have %v)", want, urls)
		}
	}
	var pageInit int
	for _, e := range events {
		if e.Initiator == "page" {
			pageInit++
		}
	}
	if pageInit != 1 {
		t.Errorf("page-initiated events = %d, want 1", pageInit)
	}
}

func TestExecuteInjectedScript(t *testing.T) {
	srv := testSite(t)
	log := netlog.New()
	page := load(t, srv, log)

	out, err := page.Execute(`
(function() {
    var counts = {};
    var all = document.getElementsByTagName("*");
    for (var i = 0; i < all.length; i++) {
        var tag = all[i].tagName;
        counts[tag] = (counts[tag] || 0) + 1;
    }
    return JSON.stringify(counts);
})();`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !strings.Contains(out, `"H1":1`) || !strings.Contains(out, `"SCRIPT":2`) {
		t.Errorf("tag counts = %s", out)
	}
}

func TestInjectionInitiatedRequests(t *testing.T) {
	srv := testSite(t)
	log := netlog.New()
	page := load(t, srv, log)
	if _, err := page.Execute(`
var xhr = new XMLHttpRequest();
xhr.open("GET", "/ping");
xhr.send();
xhr.responseText;`); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	var injected []string
	for _, e := range log.Events() {
		if e.Initiator == "injection" {
			injected = append(injected, e.URL)
		}
	}
	if len(injected) != 1 || !strings.HasSuffix(injected[0], "/ping") {
		t.Errorf("injection events = %v", injected)
	}
}

func TestAPICallRecording(t *testing.T) {
	srv := testSite(t)
	page := load(t, srv, nil)
	if _, err := page.Execute(`
document.createElement("div");
document.querySelectorAll("h1");
var els = document.getElementsByTagName("img");
els[0].getAttribute("src");`); err != nil {
		t.Fatal(err)
	}
	want := map[APICall]bool{
		{"Document", "createElement"}:        false,
		{"Document", "querySelectorAll"}:     false,
		{"Document", "getElementsByTagName"}: false,
		{"Element", "getAttribute"}:          false,
	}
	for _, c := range page.APICalls() {
		if _, ok := want[c]; ok {
			want[c] = true
		}
	}
	for c, seen := range want {
		if !seen {
			t.Errorf("API call %v not recorded", c)
		}
	}
}

func TestScriptInsertionTriggersFetch(t *testing.T) {
	srv := testSite(t)
	log := netlog.New()
	page := load(t, srv, log)
	// The FB/IG Listing-1 pattern: create a script element, set src,
	// insert it — the load must appear as an injection-initiated request.
	if _, err := page.Execute(`
(function(d, s, id){
    var js, fjs = d.getElementsByTagName(s)[0];
    if (d.getElementById(id)) { return; }
    js = d.createElement(s);
    js.id = id;
    js.src = "/app.js";
    fjs.parentNode.insertBefore(js, fjs);
}(document, 'script', 'autofill-sdk'));`); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range log.Events() {
		if e.Initiator == "injection" && strings.HasSuffix(e.URL, "/app.js") {
			found = true
		}
	}
	if !found {
		t.Error("inserted script src not fetched as injection")
	}
	if page.Doc.GetElementByID("autofill-sdk") == nil {
		t.Error("inserted script element not attached to DOM")
	}
}

func TestDOMMutationVisibleAcrossExecutes(t *testing.T) {
	srv := testSite(t)
	page := load(t, srv, nil)
	if _, err := page.Execute(`
var div = document.createElement("div");
div.id = "injected";
document.body.appendChild(div);`); err != nil {
		t.Fatal(err)
	}
	out, err := page.Execute(`document.getElementById("injected") ? "present" : "absent"`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "present" {
		t.Errorf("mutation lost: %s", out)
	}
}

func TestLoadErrors(t *testing.T) {
	l := &Loader{}
	if _, err := l.Load(context.Background(), "http://127.0.0.1:1/x"); err == nil {
		t.Error("unreachable host did not fail")
	}
	srv404 := httptest.NewServer(http.NotFoundHandler())
	defer srv404.Close()
	l2 := &Loader{Client: srv404.Client()}
	if _, err := l2.Load(context.Background(), srv404.URL+"/missing"); err == nil {
		t.Error("404 page did not fail")
	}
}

func TestPageScriptErrorsAreTolerated(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><body><script>this is not valid js %%%</script>
<script>window.__ok = 1;</script></body></html>`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	l := &Loader{Client: srv.Client(), ExecuteScripts: true}
	page, err := l.Load(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := page.VM.Global.Get("__ok").NumberValue(); got != 1 {
		t.Error("later script did not run after a broken one")
	}
	if len(page.Console) == 0 {
		t.Error("script error not surfaced on console")
	}
}

func TestFetchBinding(t *testing.T) {
	srv := testSite(t)
	page := load(t, srv, nil)
	out, err := page.Execute(`
var got = "";
fetch("/ping").then(function(resp) { got = resp.text() + ":" + resp.status; });
got;`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "pong:200" {
		t.Errorf("fetch result = %q", out)
	}
}
