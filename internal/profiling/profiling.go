// Package profiling wires the standard pprof profiles into the command
// binaries so pipeline hot spots (APK parsing, jsvm execution, the crawl
// scheduler) can be measured rather than guessed at.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the -cpuprofile/-memprofile destinations.
type Flags struct {
	CPU string
	Mem string

	cpuFile *os.File
}

// Register installs the standard profiling flags on a flag set (the
// default set when fs is nil).
func (f *Flags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling when requested. Call after flag parsing.
func (f *Flags) Start() error {
	if f.CPU == "" {
		return nil
	}
	file, err := os.Create(f.CPU)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and writes the heap profile. Safe to call
// unconditionally (defer it right after Start).
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		err := f.cpuFile.Close()
		f.cpuFile = nil
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
	}
	if f.Mem != "" {
		file, err := os.Create(f.Mem)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer file.Close()
		runtime.GC() // get up-to-date live-heap statistics
		if err := pprof.WriteHeapProfile(file); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
	}
	return nil
}
