// Package webgate implements the website-side countermeasures the paper
// recommends (§5): every request a WebView makes carries an
// X-Requested-With header with the embedding app's package name (and a
// "; wv" user-agent marker), so sites can detect in-app WebView sessions
// and warn or refuse sensitive actions — the way Facebook disables login
// from WebViews (Figure 5) while the same flow works in a Custom Tab.
package webgate

import (
	"net/http"
	"strings"

	"repro/internal/android"
)

// Detection describes how a request's browsing context was identified.
type Detection struct {
	IsWebView  bool
	AppPackage string // from X-Requested-With, when present
	ViaUA      bool   // the "; wv" user-agent marker matched
}

// Detect classifies one request.
func Detect(r *http.Request) Detection {
	d := Detection{AppPackage: r.Header.Get(android.XRequestedWithHeader)}
	if d.AppPackage != "" {
		d.IsWebView = true
	}
	if strings.Contains(r.UserAgent(), "; wv") {
		d.IsWebView = true
		d.ViaUA = true
	}
	return d
}

// Policy selects the countermeasure.
type Policy int

// Policies, in escalating strictness (§5's range from prompting to
// Facebook's outright block).
const (
	// Allow serves WebView sessions normally.
	Allow Policy = iota
	// Warn serves the page with an interstitial notice.
	Warn
	// Block refuses the action for WebView sessions (Figure 5).
	Block
)

// Gate wraps sensitive handlers with WebView detection.
type Gate struct {
	Policy Policy
	// BlockedHTML is served on Block; empty uses the Figure 5-style page.
	BlockedHTML string
	// OnDetect observes every detection (for telemetry/tests).
	OnDetect func(Detection)
}

// DefaultBlockedHTML mirrors Facebook's "Log in Disabled" interstitial.
const DefaultBlockedHTML = `<!DOCTYPE html>
<html><head><title>Log in Disabled</title></head><body>
<h1>For your account security, logging in within embedded browsers is disabled.</h1>
<p>Open this page in your browser to continue.</p>
</body></html>`

// Middleware wraps next with the gate.
func (g *Gate) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := Detect(r)
		if g.OnDetect != nil {
			g.OnDetect(d)
		}
		if !d.IsWebView || g.Policy == Allow {
			next.ServeHTTP(w, r)
			return
		}
		switch g.Policy {
		case Warn:
			w.Header().Set("X-WebView-Warning", "embedded-browser-session")
			next.ServeHTTP(w, r)
		default: // Block
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			w.WriteHeader(http.StatusForbidden)
			html := g.BlockedHTML
			if html == "" {
				html = DefaultBlockedHTML
			}
			w.Write([]byte(html))
		}
	})
}
