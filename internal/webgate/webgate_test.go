package webgate

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/customtabs"
	"repro/internal/internet"
	"repro/internal/webview"
)

// loginSite wires facebook.example with a gated login page.
func loginSite(policy Policy) (*internet.Internet, *[]Detection) {
	var detections []Detection
	gate := &Gate{Policy: policy, OnDetect: func(d Detection) { detections = append(detections, d) }}
	login := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>Log in</title></head><body><form id="login"><input name="email"></form></body></html>`))
	})
	net := internet.New()
	net.Register("facebook.example", gate.Middleware(login))
	return net, &detections
}

// Figure 5: login from a WebView is refused; the same URL in a Custom Tab
// works.
func TestFigure5LoginDisabledInWebView(t *testing.T) {
	net, detections := loginSite(Block)

	wv := webview.New(webview.Config{ID: "wv", AppPackage: "com.some.app", Client: net.Client()})
	wv.GetSettings().JavaScriptEnabled = true
	if err := wv.LoadURL(context.Background(), "https://facebook.example/login"); err == nil {
		t.Fatal("blocked login page loaded without error")
	} else if !strings.Contains(err.Error(), "403") {
		t.Fatalf("err = %v, want 403", err)
	}

	b := customtabs.NewBrowser("chrome", nil)
	b.Client.Transport = net
	sess, err := b.LaunchURL(context.Background(), customtabs.Intent{}, "https://facebook.example/login")
	if err != nil {
		t.Fatalf("CT login failed: %v", err)
	}
	if sess.Title != "Log in" {
		t.Errorf("CT login title = %q", sess.Title)
	}

	// The site detected the WebView via the header WebViews cannot remove.
	var sawWV, sawCT bool
	for _, d := range *detections {
		if d.IsWebView && d.AppPackage == "com.some.app" {
			sawWV = true
		}
		if !d.IsWebView {
			sawCT = true
		}
	}
	if !sawWV || !sawCT {
		t.Errorf("detections = %+v", *detections)
	}
}

func TestDetectViaUserAgentOnly(t *testing.T) {
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	req.Header.Set("User-Agent", "Mozilla/5.0 (Linux; Android 12) Chrome/110.0 Mobile Safari/537.36; wv")
	d := Detect(req)
	if !d.IsWebView || !d.ViaUA {
		t.Errorf("detection = %+v", d)
	}
	req2, _ := http.NewRequest("GET", "https://x.example/", nil)
	req2.Header.Set("User-Agent", "Mozilla/5.0 Chrome/110.0")
	if Detect(req2).IsWebView {
		t.Error("plain browser detected as WebView")
	}
}

func TestWarnPolicyServesWithHeader(t *testing.T) {
	net, _ := loginSite(Warn)
	wv := webview.New(webview.Config{ID: "wv", AppPackage: "com.some.app", Client: net.Client()})
	if err := wv.LoadURL(context.Background(), "https://facebook.example/login"); err != nil {
		t.Fatalf("warn policy blocked the load: %v", err)
	}
	if wv.Page().Doc.Title != "Log in" {
		t.Errorf("title = %q", wv.Page().Doc.Title)
	}
	// Direct check of the warning header.
	resp, err := net.Client().Do(mustReq(t, "https://facebook.example/login", "com.some.app"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.Header.Get("X-WebView-Warning") == "" {
		t.Error("warning header missing")
	}
}

func TestAllowPolicy(t *testing.T) {
	net, _ := loginSite(Allow)
	wv := webview.New(webview.Config{ID: "wv", AppPackage: "com.some.app", Client: net.Client()})
	if err := wv.LoadURL(context.Background(), "https://facebook.example/login"); err != nil {
		t.Fatalf("allow policy failed: %v", err)
	}
}

func TestBlockedPageContent(t *testing.T) {
	net, _ := loginSite(Block)
	resp, err := net.Client().Do(mustReq(t, "https://facebook.example/login", "com.app"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "Log in Disabled") {
		t.Errorf("body = %s", body)
	}
}

func mustReq(t *testing.T, url, app string) *http.Request {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Requested-With", app)
	return req
}
