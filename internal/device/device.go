// Package device simulates the measurement handset — a rooted Pixel 3
// running a userdebug image (§3.2.2): installable apps from the corpus, a
// default browser with Custom Tab support, Web-URI intent resolution, a
// logcat buffer and a device-wide network log readable per browsing
// context (the Chrome-NetLog property the paper relies on).
package device

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"sync"

	"repro/internal/corpus"
	"repro/internal/customtabs"
	"repro/internal/iab"
	"repro/internal/intent"
	"repro/internal/internet"
	"repro/internal/netlog"
	"repro/internal/webview"
)

// Installation / interaction errors, mirroring Table 6's unclassifiable
// categories.
var (
	ErrIncompatible  = errors.New("device: app incompatible with this device")
	ErrNeedsPhone    = errors.New("device: app requires a phone number to proceed")
	ErrPaidOnly      = errors.New("device: app requires a paid account")
	ErrNotInstalled  = errors.New("device: app not installed")
	ErrNoUserContent = errors.New("device: app has no user-generated content surface")
)

// Device is the simulated handset.
type Device struct {
	// Internet routes all network traffic (see package internet).
	Internet *internet.Internet
	// NetLog records every request by browsing context.
	NetLog *netlog.Log
	// Browser is the default browser (CT provider).
	Browser *customtabs.Browser
	// Logcat is the device log buffer.
	Logcat *Logcat

	mu     sync.Mutex
	apps   map[string]*App
	ctxSeq map[string]int
}

// New boots a device attached to the given internet.
func New(net *internet.Internet) *Device {
	log := netlog.New()
	browser := customtabs.NewBrowser("com.android.chrome", log)
	browser.Client.Transport = net
	return &Device{
		Internet: net,
		NetLog:   log,
		Browser:  browser,
		Logcat:   NewLogcat(),
		apps:     make(map[string]*App),
	}
}

// Install installs an app from its corpus spec. Incompatible apps fail
// here, exactly like the 22 apps the paper could not run.
func (d *Device) Install(spec *corpus.Spec) (*App, error) {
	if spec.Dynamic.Incompatible {
		d.Logcat.Printf("PackageManager", "INSTALL_FAILED_NO_MATCHING_ABIS: %s", spec.Package)
		return nil, fmt.Errorf("%w: %s", ErrIncompatible, spec.Package)
	}
	app := &App{Spec: spec, device: d}
	d.mu.Lock()
	d.apps[spec.Package] = app
	d.mu.Unlock()
	d.Logcat.Printf("PackageManager", "Installed %s", spec.Package)
	return app, nil
}

// App returns an installed app.
func (d *Device) App(pkg string) (*App, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if a, ok := d.apps[pkg]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotInstalled, pkg)
}

// newContextID issues a unique browsing-context name. The counter is
// per (kind, package), so an app's n-th context gets the same name no
// matter how other apps' visits interleave on the device — the property
// that keeps parallel crawl results byte-identical to sequential ones.
func (d *Device) newContextID(kind, pkg string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ctxSeq == nil {
		d.ctxSeq = make(map[string]int)
	}
	key := kind + "-" + pkg
	d.ctxSeq[key]++
	return fmt.Sprintf("%s-%d", key, d.ctxSeq[key])
}

// App is one installed app.
type App struct {
	Spec   *corpus.Spec
	device *Device
}

// Launch opens the app, creating a UI session. Account gates surface here
// (phone-number or paid-account requirements).
func (a *App) Launch() (*Session, error) {
	d := a.Spec.Dynamic
	switch {
	case d.RequiresPhone:
		return nil, fmt.Errorf("%w: %s", ErrNeedsPhone, a.Spec.Package)
	case d.PaidOnly:
		return nil, fmt.Errorf("%w: %s", ErrPaidOnly, a.Spec.Package)
	}
	a.device.Logcat.Printf("ActivityManager", "START u0 {cmp=%s/.MainActivity}", a.Spec.Package)
	return &Session{app: a}, nil
}

// Session is a running app's UI.
type Session struct {
	app *App
	// posted holds links the (dummy) user submitted to the UGC surface.
	posted []string
}

// HasUserContent reports whether the app has a surface where users can
// post links (§3.2.1).
func (s *Session) HasUserContent() bool { return s.app.Spec.Dynamic.HasUserContent }

// LinkSurface names where links appear (Post, DM, Story, Bio, Profile).
func (s *Session) LinkSurface() string { return s.app.Spec.Dynamic.LinkSurface }

// PostLink submits a link as user content.
func (s *Session) PostLink(url string) error {
	if !s.HasUserContent() {
		return fmt.Errorf("%w: %s", ErrNoUserContent, s.app.Spec.Package)
	}
	s.posted = append(s.posted, url)
	return nil
}

// ClickResult describes what happened when the user tapped a link.
type ClickResult struct {
	OpenedIn corpus.LinkBehavior
	// Context is the netlog browsing-context of the resulting page load.
	Context string
	// WebView is the IAB instance (LinkWebView only); Behavior its
	// configured injection behaviour.
	WebView  *webview.WebView
	Behavior iab.Behavior
	// CTSession is set for LinkCustomTab.
	CTSession *customtabs.Session
	// BrowserPackage is set when a Web URI intent was raised and resolved.
	BrowserPackage string
	// VisitedURL is the URL the page context actually requested first
	// (redirector-wrapped for the apps that track clicks).
	VisitedURL string
}

// IsBrowser reports whether the app is itself a browser (nine of the top
// 1K apps are, Table 6).
func (s *Session) IsBrowser() bool { return s.app.Spec.Dynamic.IsBrowser }

// ClickLink simulates the user tapping a posted link. Depending on the
// app, this raises a Web URI intent (the platform default), opens a
// WebView-based IAB with the app's injection behaviour, or launches a
// Custom Tab.
func (s *Session) ClickLink(ctx context.Context, url string) (*ClickResult, error) {
	return s.ClickLinkInstrumented(ctx, url, nil)
}

// ClickLinkInstrumented is ClickLink with a pre-navigation hook: when the
// click opens a WebView IAB, instrument runs on the fresh WebView before
// the app configures it, so dynamic instrumentation (package frida)
// observes every API call including bridge injection.
func (s *Session) ClickLinkInstrumented(ctx context.Context, url string, instrument func(*webview.WebView)) (*ClickResult, error) {
	found := false
	for _, p := range s.posted {
		if p == url {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("device: link %q was not posted", url)
	}
	d := s.app.device
	spec := s.app.Spec

	switch spec.Dynamic.LinkOpens {
	case corpus.LinkWebView:
		// The app disguises the URL as a button and opens its own IAB: no
		// intent is raised (observable in logcat by its absence).
		behavior := iab.For(spec.Dynamic.Injection, spec.Package, spec.Dynamic.UsesRedirector)
		id := d.newContextID("wv", spec.Package)
		jar, _ := cookiejar.New(nil)
		wv := webview.New(webview.Config{
			ID:         id,
			AppPackage: spec.Package,
			Client:     &http.Client{Jar: jar, Transport: d.Internet},
			Log:        d.NetLog,
		})
		wv.GetSettings().JavaScriptEnabled = true
		if instrument != nil {
			instrument(wv)
		}
		behavior.Configure(wv)
		visit := behavior.WrapURL(url)
		d.Logcat.Printf(spec.Package, "IAB open url=%s", visit)
		if err := wv.LoadURL(ctx, visit); err != nil {
			return nil, err
		}
		if err := behavior.OnPageLoaded(wv); err != nil {
			return nil, err
		}
		// The app's own networking stack fires its startup telemetry while
		// the IAB is in the foreground; the rooted device's NetLog sees that
		// traffic alongside the page's (§3.2.2). These are the endpoints the
		// static extractor recovers from the APK, so the static↔dynamic
		// cross-validation has real overlap to measure.
		for _, pe := range spec.Endpoints {
			reqURL := pe.URL
			if pe.Kind == "prefix" {
				reqURL += "r1" // dynamic tail the static side cannot know
			}
			d.NetLog.Record(netlog.Event{
				Context: id, URL: reqURL, Method: "GET", Status: 204,
				Initiator: "app",
			})
		}
		return &ClickResult{
			OpenedIn:   corpus.LinkWebView,
			Context:    id,
			WebView:    wv,
			Behavior:   behavior,
			VisitedURL: visit,
		}, nil

	case corpus.LinkCustomTab:
		ctIntent := customtabs.NewBuilder().
			SetShowTitle(true).
			SetAppPackage(spec.Package).
			Build()
		sess, err := d.Browser.LaunchURL(ctx, ctIntent, url)
		if err != nil {
			return nil, err
		}
		d.Logcat.Printf(spec.Package, "CustomTabsIntent launchUrl url=%s", url)
		return &ClickResult{
			OpenedIn:   corpus.LinkCustomTab,
			CTSession:  sess,
			VisitedURL: url,
		}, nil

	default:
		// Platform default: raise a Web URI intent; the default browser
		// (or a verified app-link handler) takes it.
		in := intent.NewWebURI(url)
		res, ok := intent.Resolve(in, nil, d.Browser.Name)
		if !ok {
			return nil, fmt.Errorf("device: no handler for %s", url)
		}
		d.Logcat.Printf("ActivityManager", "START u0 {act=android.intent.action.VIEW dat=%s pkg=%s}", url, res.Package)
		id := d.newContextID("browser", res.Package)
		loader := newBrowserLoader(d, id)
		if _, err := loader.Load(ctx, url); err != nil {
			return nil, err
		}
		return &ClickResult{
			OpenedIn:       corpus.LinkBrowser,
			Context:        id,
			BrowserPackage: res.Package,
			VisitedURL:     url,
		}, nil
	}
}
