package device

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/internet"
)

// Fleet is a set of identically provisioned simulated handsets attached to
// one internet — the multi-device rig the parallel crawl fans out over.
// Each device has its own network log, logcat and browser state, so visits
// running on different devices cannot observe each other; the shared
// internet means every device sees the same sites.
type Fleet struct {
	Devices []*Device
}

// NewFleet boots n devices (n < 1 is treated as 1) on the given internet.
func NewFleet(net *internet.Internet, n int) *Fleet {
	if n < 1 {
		n = 1
	}
	f := &Fleet{Devices: make([]*Device, n)}
	for i := range f.Devices {
		f.Devices[i] = New(net)
	}
	return f
}

// Size reports the number of devices.
func (f *Fleet) Size() int { return len(f.Devices) }

// Install installs an app on every device, mirroring how the measurement
// rig provisions each handset with the same corpus before a crawl. The
// first failure aborts (a spec that cannot install on one simulated device
// cannot install on any).
func (f *Fleet) Install(spec *corpus.Spec) error {
	for i, d := range f.Devices {
		if _, err := d.Install(spec); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	return nil
}

// Device returns the i-th device, wrapping around — the pinning rule that
// assigns crawl lanes to handsets.
func (f *Fleet) Device(i int) *Device {
	return f.Devices[i%len(f.Devices)]
}
