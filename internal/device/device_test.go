package device

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/internet"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	net := internet.New()
	net.RegisterFunc("example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>Example</title></head><body><p>Hello</p></body></html>`))
	})
	// Redirectors log the click and 302 to the intended target.
	net.RegisterFunc("lm.facebook.com", func(w http.ResponseWriter, r *http.Request) {
		target := r.URL.Query().Get("u")
		if target == "" {
			http.Error(w, "missing target", http.StatusBadRequest)
			return
		}
		http.Redirect(w, r, target, http.StatusFound)
	})
	return New(net)
}

func spec(d corpus.Dynamic) *corpus.Spec {
	return &corpus.Spec{Package: "com.test.app", OnPlayStore: true, Dynamic: d}
}

func TestInstallAndLaunch(t *testing.T) {
	dev := testDevice(t)
	app, err := dev.Install(spec(corpus.Dynamic{HasUserContent: true, LinkOpens: corpus.LinkBrowser}))
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	sess, err := app.Launch()
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if !sess.HasUserContent() {
		t.Error("UGC surface missing")
	}
	if _, err := dev.App("com.test.app"); err != nil {
		t.Errorf("App lookup: %v", err)
	}
	if _, err := dev.App("com.absent"); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("absent app err = %v", err)
	}
}

func TestInstallFailuresAndGates(t *testing.T) {
	dev := testDevice(t)
	if _, err := dev.Install(spec(corpus.Dynamic{Incompatible: true})); !errors.Is(err, ErrIncompatible) {
		t.Errorf("incompatible err = %v", err)
	}
	app, _ := dev.Install(spec(corpus.Dynamic{RequiresPhone: true}))
	if _, err := app.Launch(); !errors.Is(err, ErrNeedsPhone) {
		t.Errorf("phone gate err = %v", err)
	}
	app2, _ := dev.Install(spec(corpus.Dynamic{PaidOnly: true}))
	if _, err := app2.Launch(); !errors.Is(err, ErrPaidOnly) {
		t.Errorf("paid gate err = %v", err)
	}
}

func TestPostLinkRequiresUGC(t *testing.T) {
	dev := testDevice(t)
	app, _ := dev.Install(spec(corpus.Dynamic{}))
	sess, err := app.Launch()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.PostLink("https://example.com/"); !errors.Is(err, ErrNoUserContent) {
		t.Errorf("PostLink err = %v", err)
	}
}

func TestClickOpensBrowser(t *testing.T) {
	dev := testDevice(t)
	app, _ := dev.Install(spec(corpus.Dynamic{HasUserContent: true, LinkOpens: corpus.LinkBrowser}))
	sess, _ := app.Launch()
	if err := sess.PostLink("https://example.com/"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.ClickLink(context.Background(), "https://example.com/")
	if err != nil {
		t.Fatalf("ClickLink: %v", err)
	}
	if res.OpenedIn != corpus.LinkBrowser || res.BrowserPackage != "com.android.chrome" {
		t.Errorf("result = %+v", res)
	}
	// A Web URI intent must appear in logcat — the default behaviour.
	if got := dev.Logcat.Grep("android.intent.action.VIEW"); len(got) != 1 {
		t.Errorf("intent log = %v", got)
	}
}

func TestClickOpensWebViewIAB(t *testing.T) {
	dev := testDevice(t)
	app, _ := dev.Install(spec(corpus.Dynamic{
		HasUserContent: true,
		LinkOpens:      corpus.LinkWebView,
		Injection:      corpus.InjectMetaCommerce,
		UsesRedirector: "lm.facebook.com/l.php",
	}))
	sess, _ := app.Launch()
	_ = sess.PostLink("https://example.com/")
	res, err := sess.ClickLink(context.Background(), "https://example.com/")
	if err != nil {
		t.Fatalf("ClickLink: %v", err)
	}
	if res.OpenedIn != corpus.LinkWebView || res.WebView == nil {
		t.Fatalf("result = %+v", res)
	}
	// The visit went through the redirector.
	if !strings.HasPrefix(res.VisitedURL, "https://lm.facebook.com/l.php?") {
		t.Errorf("visited = %s", res.VisitedURL)
	}
	// NO Web URI intent was raised — the key misbehaviour of §4.2.
	if got := dev.Logcat.Grep("android.intent.action.VIEW"); len(got) != 0 {
		t.Errorf("IAB raised an intent: %v", got)
	}
	// Bridges were injected.
	if len(res.WebView.Bridges()) == 0 {
		t.Error("IAB exposed no bridges")
	}
	// Network events are attributable to the IAB's context.
	if len(dev.NetLog.ByContext(res.Context)) == 0 {
		t.Error("no netlog events for IAB context")
	}
}

func TestClickOpensCustomTab(t *testing.T) {
	dev := testDevice(t)
	app, _ := dev.Install(spec(corpus.Dynamic{HasUserContent: true, LinkOpens: corpus.LinkCustomTab}))
	sess, _ := app.Launch()
	_ = sess.PostLink("https://example.com/")
	res, err := sess.ClickLink(context.Background(), "https://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if res.OpenedIn != corpus.LinkCustomTab || res.CTSession == nil {
		t.Fatalf("result = %+v", res)
	}
	if res.CTSession.Title != "Example" {
		t.Errorf("CT title = %q", res.CTSession.Title)
	}
}

func TestClickUnpostedLink(t *testing.T) {
	dev := testDevice(t)
	app, _ := dev.Install(spec(corpus.Dynamic{HasUserContent: true, LinkOpens: corpus.LinkBrowser}))
	sess, _ := app.Launch()
	if _, err := sess.ClickLink(context.Background(), "https://never.posted/"); err == nil {
		t.Error("clicking an unposted link succeeded")
	}
}

func TestLogcat(t *testing.T) {
	lc := NewLogcat()
	lc.Printf("TagA", "hello %d", 1)
	lc.Printf("TagB", "world")
	if len(lc.Lines()) != 2 {
		t.Errorf("lines = %v", lc.Lines())
	}
	if got := lc.Grep("hello"); len(got) != 1 || !strings.HasPrefix(got[0], "TagA:") {
		t.Errorf("Grep = %v", got)
	}
	lc.Clear()
	if len(lc.Lines()) != 0 {
		t.Error("Clear failed")
	}
}
