package device

import (
	"fmt"
	"strings"
	"sync"
)

// Logcat is the device log buffer the manual analysis reads (§4.2: "we
// manually analyzed the logcat logs when a user clicks on a URL").
type Logcat struct {
	mu    sync.Mutex
	lines []string
}

// NewLogcat returns an empty buffer.
func NewLogcat() *Logcat { return &Logcat{} }

// Printf appends a tagged log line.
func (l *Logcat) Printf(tag, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, tag+": "+fmt.Sprintf(format, args...))
}

// Lines returns a copy of the buffer.
func (l *Logcat) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

// Grep returns the lines containing the substring.
func (l *Logcat) Grep(substr string) []string {
	var out []string
	for _, line := range l.Lines() {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return out
}

// Clear empties the buffer (the crawler purges logs between visits).
func (l *Logcat) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = nil
}
