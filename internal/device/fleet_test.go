package device

import (
	"errors"
	"testing"

	"repro/internal/corpus"
	"repro/internal/internet"
)

func TestFleetProvisionsIdentically(t *testing.T) {
	net := internet.New()
	f := NewFleet(net, 3)
	if f.Size() != 3 {
		t.Fatalf("Size = %d, want 3", f.Size())
	}
	spec := &corpus.Spec{
		Package: "com.app.a", OnPlayStore: true,
		Dynamic: corpus.Dynamic{HasUserContent: true, LinkOpens: corpus.LinkBrowser},
	}
	if err := f.Install(spec); err != nil {
		t.Fatal(err)
	}
	for i, d := range f.Devices {
		if _, err := d.App("com.app.a"); err != nil {
			t.Errorf("device %d missing app: %v", i, err)
		}
		if d.Internet != net {
			t.Errorf("device %d on a different internet", i)
		}
	}
	// Devices are distinct handsets with separate logs.
	if f.Devices[0].NetLog == f.Devices[1].NetLog {
		t.Error("devices share a netlog")
	}
}

func TestFleetDevicePinningWrapsAround(t *testing.T) {
	f := NewFleet(internet.New(), 2)
	if f.Device(0) != f.Devices[0] || f.Device(1) != f.Devices[1] {
		t.Error("direct pinning broken")
	}
	if f.Device(2) != f.Devices[0] || f.Device(5) != f.Devices[1] {
		t.Error("wrap-around pinning broken")
	}
}

func TestFleetMinimumSize(t *testing.T) {
	if got := NewFleet(internet.New(), 0).Size(); got != 1 {
		t.Errorf("Size = %d, want 1", got)
	}
}

func TestFleetInstallPropagatesFailure(t *testing.T) {
	f := NewFleet(internet.New(), 2)
	err := f.Install(&corpus.Spec{
		Package: "com.bad", Dynamic: corpus.Dynamic{Incompatible: true},
	})
	if !errors.Is(err, ErrIncompatible) {
		t.Errorf("err = %v, want ErrIncompatible", err)
	}
}
