package device

import (
	"repro/internal/browsersim"
)

// newBrowserLoader builds a page loader running in the default browser's
// context: shared cookie jar, browser user agent, no app-controlled
// headers.
func newBrowserLoader(d *Device, contextID string) *browsersim.Loader {
	return &browsersim.Loader{
		Client:         d.Browser.Client,
		Log:            d.NetLog,
		Context:        contextID,
		ExecuteScripts: true,
		UserAgent: "Mozilla/5.0 (Linux; Android 12; Pixel 3) AppleWebKit/537.36 " +
			"(KHTML, like Gecko) Chrome/110.0 Mobile Safari/537.36",
	}
}
