package serving

import (
	"sort"
	"sync"

	"repro/internal/measure"
)

// Aggregator is the flat-memory Sink: it folds beacons into per-(app,
// interface, method) counts as the workers stream them in, so resident
// memory is O(distinct triples) no matter how many beacons pass through —
// the property that lets one collector absorb a million-user replay.
//
// Aggregation is commutative, so a concurrent multi-worker drain produces
// byte-identical snapshots to a sequential one.
type Aggregator struct {
	mu      sync.Mutex
	counts  map[measure.Trace]int64
	beacons int64
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{counts: make(map[measure.Trace]int64)}
}

// Accept implements Sink: beacons missing their own App take the batch
// attribution, mirroring measure.Server.Accept.
func (a *Aggregator) Accept(app string, batch []measure.Trace) error {
	for _, tr := range batch {
		if tr.Interface == "" && tr.Method == "" {
			return measure.ErrEmptyTrace
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, tr := range batch {
		if tr.App == "" {
			tr.App = app
		}
		a.counts[tr]++
		a.beacons++
	}
	return nil
}

// Beacons returns the total beacons aggregated.
func (a *Aggregator) Beacons() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.beacons
}

// Row is one aggregated cell.
type Row struct {
	App       string `json:"app"`
	Interface string `json:"interface"`
	Method    string `json:"method"`
	Count     int64  `json:"count"`
}

// Rows snapshots the aggregate in canonical order (app, interface,
// method) — equal traffic yields byte-equal marshalled output regardless
// of ingest interleaving.
func (a *Aggregator) Rows() []Row {
	a.mu.Lock()
	out := make([]Row, 0, len(a.counts))
	for tr, n := range a.counts {
		out = append(out, Row{App: tr.App, Interface: tr.Interface, Method: tr.Method, Count: n})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		if out[i].Interface != out[j].Interface {
			return out[i].Interface < out[j].Interface
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// ForApp returns the distinct (interface, method) pairs recorded for one
// app, sorted — the same Table 9 shape measure.Server.ForApp produces.
func (a *Aggregator) ForApp(app string) []measure.Trace {
	var out []measure.Trace
	for _, row := range a.Rows() {
		if row.App != app {
			continue
		}
		pair := measure.Trace{Interface: row.Interface, Method: row.Method}
		if n := len(out); n > 0 && out[n-1] == pair {
			continue
		}
		out = append(out, pair)
	}
	return out
}
