package serving

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/measure"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// startPlane boots a full serving plane on a loopback socket and returns
// the service, its sink and the collect URL.
func startPlane(t *testing.T, cfg Config) (*Service, *Aggregator, string) {
	t.Helper()
	agg := NewAggregator()
	cfg.Sink = agg
	svc := NewService(cfg)
	ep, err := Listen("127.0.0.1:0", svc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ep.Close()
		svc.Close()
	})
	return svc, agg, "http://" + ep.Addr + "/collect"
}

func TestLoadRunLosslessUnderComfortableCapacity(t *testing.T) {
	svc, agg, url := startPlane(t, Config{QueueDepth: 1024, Workers: 2, MaxConcurrent: 128})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL: url, Users: 8, BatchesPerUser: 10, BeaconsPerBatch: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 80 || res.Accepted != 80 || res.Shed != 0 || res.Errored != 0 {
		t.Fatalf("outcomes = %+v; want all 80 accepted", res)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := res.Reconcile(svc.Stats()); err != nil {
		t.Fatal(err)
	}
	if got := agg.Beacons(); got != res.BeaconsAccepted {
		t.Errorf("aggregated %d beacons, client counted %d", got, res.BeaconsAccepted)
	}
	if res.P99 <= 0 || res.P50 > res.P99 {
		t.Errorf("latency profile broken: p50 %v p99 %v", res.P50, res.P99)
	}
}

// TestLoadRunLosslessUnderSaturation is the overload acceptance test:
// a tiny queue, one slow worker and starved quotas force heavy shedding,
// and every single batch must still be accounted for — accepted or
// answered 429/503 — with the serving_ingest_total/serving_shed_total
// telemetry counters reconciling exactly against client observations.
func TestLoadRunLosslessUnderSaturation(t *testing.T) {
	hub := telemetry.New(telemetry.Options{Timing: telemetry.SeededTiming{Seed: 3}})
	svc, _, url := startPlane(t, Config{
		QueueDepth: 1, Workers: 1, MaxConcurrent: 4,
		TenantRate: 40, TenantBurst: 10,
		RetryAfter: time.Second,
		Hub:        hub,
	})
	res, err := RunLoad(context.Background(), LoadConfig{
		URL: url, Users: 16, BatchesPerUser: 8, BeaconsPerBatch: 6, Seed: 2,
		MaxAttempts: 2, MaxDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("saturation run shed nothing; the test exerted no pressure")
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if err := res.Reconcile(st); err != nil {
		t.Fatal(err)
	}
	// The telemetry counters carry the same truth as the Stats atomics.
	var ingest, shedTotal int64
	svc.tenants.Range(func(k, v any) bool {
		tc := v.(*tenantCounters)
		ingest += tc.ingest.Value()
		for _, c := range tc.shed {
			shedTotal += c.Value()
		}
		return true
	})
	if ingest != st.IngestRequests || shedTotal != st.ShedTotal() {
		t.Errorf("telemetry says ingest %d shed %d, stats say %d / %d",
			ingest, shedTotal, st.IngestRequests, st.ShedTotal())
	}
	if ingest+shedTotal != res.Attempts-res.BreakerOpens {
		t.Errorf("server saw %d requests, client made %d attempts (%d breaker-rejected): silent drop",
			ingest+shedTotal, res.Attempts, res.BreakerOpens)
	}
}

// TestQuotaIsolationUnderFlood is the per-tenant isolation acceptance
// test: one flooding tenant saturates its own quota while a quiet tenant
// on the same plane keeps its service level — zero sheds and a p99 within
// budget.
func TestQuotaIsolationUnderFlood(t *testing.T) {
	svc, _, url := startPlane(t, Config{
		QueueDepth: 512, Workers: 2, MaxConcurrent: 64,
		TenantRate: 50, TenantBurst: 100,
	})

	floodDone := make(chan *LoadResult, 1)
	go func() {
		// Many users sharing ONE tenant app, pushing far beyond 50/s.
		res, _ := RunLoad(context.Background(), LoadConfig{
			URL: url, Users: 8, Apps: 1, BatchesPerUser: 30, BeaconsPerBatch: 8,
			Seed: 5, MaxAttempts: 1,
		})
		floodDone <- res
	}()

	// The quiet tenant sends 30 single-beacon requests concurrently with
	// the flood — inside its own 100-beacon burst, so its bucket never
	// empties no matter what the flooder does.
	client := &http.Client{}
	var quietShed, quietSent int
	var quietLat []time.Duration
	for i := 0; i < 30; i++ {
		req, _ := http.NewRequest(http.MethodPost, url,
			strings.NewReader(`[{"interface":"Document","method":"createElement"}]`))
		req.Header.Set(android.XRequestedWithHeader, "com.quiet")
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		quietLat = append(quietLat, time.Since(t0))
		resp.Body.Close()
		quietSent++
		if resp.StatusCode != http.StatusNoContent {
			quietShed++
		}
		time.Sleep(2 * time.Millisecond)
	}
	flood := <-floodDone

	if flood.Shed == 0 {
		t.Fatal("flooding tenant was never shed; quota exerted no pressure")
	}
	if quietShed != 0 {
		t.Errorf("quiet tenant shed %d/%d requests despite staying under quota", quietShed, quietSent)
	}
	_, p99, _ := percentiles(quietLat)
	if budget := 250 * time.Millisecond; p99 > budget {
		t.Errorf("quiet tenant p99 = %v, beyond the %v budget", p99, budget)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureReportGoesThroughServingPlane(t *testing.T) {
	// End-to-end: the measure client helper, with a retry policy, against
	// the hardened plane under a tiny queue — it must succeed via retries.
	ms := measure.NewServer()
	svc := NewService(Config{Sink: ms, QueueDepth: 64, Pages: ms.Handler()})
	ep, err := Listen("127.0.0.1:0", svc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { ep.Close(); svc.Close() }()

	policy := &retry.Policy{MaxAttempts: 5, Seed: 2, MaxDelay: 10 * time.Millisecond}
	err = measure.ReportAPICalls(context.Background(), &http.Client{}, policy,
		"http://"+ep.Addr+"/collect", "com.e2e", nil)
	if err != nil {
		t.Fatalf("empty report: %v", err)
	}
	svc.Flush()
}
