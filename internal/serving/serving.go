// Package serving is the hardened front door of the measurement plane: it
// turns the toy beacon collector (internal/measure) into a multi-tenant
// ingest service shaped like production infrastructure. Requests from
// simulated WebViews — attributed per app by the X-Requested-With header —
// pass an admission-control concurrency limiter, a body-size cap, a
// per-tenant token-bucket quota and a bounded ingest queue before a worker
// pool streams them into a pluggable Sink.
//
// Overload is always explicit, never silent: a full queue or an exhausted
// quota answers 429 with a Retry-After hint, admission saturation and
// drain answer 503, malformed input answers 400/413 — so every beacon a
// client sends is either ingested or visibly shed, and the
// serving_ingest_total / serving_shed_total counters reconcile exactly
// with client-side accounting. Graceful drain (Drain) stops accepting,
// flushes every in-flight batch, and only then lets the workers exit, so
// accepted beacons are never lost to shutdown.
package serving

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/android"
	"repro/internal/measure"
	"repro/internal/telemetry"
)

// Sink consumes accepted beacon batches. Implementations must be safe for
// concurrent use; both *measure.Server and *Aggregator qualify.
type Sink interface {
	Accept(app string, batch []measure.Trace) error
}

// Shed reasons, the values of the serving_shed_total{reason} label and the
// keys of Stats.Shed.
const (
	ShedQueueFull = "queue_full" // bounded ingest queue was full → 429
	ShedQuota     = "quota"      // tenant token bucket exhausted → 429
	ShedAdmission = "admission"  // concurrency limiter saturated → 503
	ShedDraining  = "draining"   // drain started, no longer accepting → 503
)

var shedReasons = []string{ShedQueueFull, ShedQuota, ShedAdmission, ShedDraining}

// DefaultTenant attributes beacons whose request carries no
// X-Requested-With header.
const DefaultTenant = "unattributed"

// Config parameterises a Service. The zero value of every field has a
// serviceable default; only Sink is required.
type Config struct {
	// Sink receives accepted batches from the drain workers.
	Sink Sink
	// QueueDepth bounds the ingest queue in batches; <= 0 means 256.
	QueueDepth int
	// Workers is the number of queue-drain goroutines; <= 0 means 1.
	Workers int
	// MaxBodyBytes caps one POST body; <= 0 means measure.MaxCollectBody.
	MaxBodyBytes int64
	// MaxConcurrent bounds concurrently admitted /collect requests; <= 0
	// means 64.
	MaxConcurrent int
	// TenantRate is the per-tenant sustained quota in beacons/second;
	// <= 0 means unlimited (no quota enforcement).
	TenantRate float64
	// TenantBurst is the token-bucket capacity in beacons; <= 0 derives
	// max(1, 2*TenantRate).
	TenantBurst float64
	// RetryAfter is the delay advised on queue-full/admission/drain sheds;
	// <= 0 means 1s. Quota sheds advise the bucket's actual refill time.
	RetryAfter time.Duration
	// Hub mirrors ingest/shed/queue metrics into telemetry (nil = off).
	Hub *telemetry.Hub
	// Now is the quota clock; nil means time.Now. Injectable for tests.
	Now func() time.Time
	// Pages serves every path other than /collect (the controlled test
	// page and its assets); nil answers 404.
	Pages http.Handler
}

// Stats is a consistent-enough snapshot of the service's own atomic
// accounting (kept independent of telemetry so reconciliation works even
// with a nil Hub). Units are requests unless stated otherwise.
type Stats struct {
	IngestRequests int64            // requests accepted into the queue
	IngestBeacons  int64            // beacons inside those requests
	Shed           map[string]int64 // visibly refused requests, by reason
	Rejected       int64            // malformed/oversized requests (400/413)
	FlushedBatches int64            // batches delivered to the sink
	SinkErrors     int64            // batches the sink refused
}

// ShedTotal sums sheds across reasons.
func (s Stats) ShedTotal() int64 {
	var n int64
	for _, v := range s.Shed {
		n += v
	}
	return n
}

type job struct {
	app   string
	batch []measure.Trace
}

// Service is a running ingest plane. Create with NewService, expose with
// Handler, stop with Drain (or Close).
type Service struct {
	cfg     Config
	queue   chan job
	quotas  *quotaSet
	limiter *limiter

	mu       sync.Mutex // guards draining and queue sends vs. close(queue)
	draining bool

	wg sync.WaitGroup // drain workers

	// Flush accounting: pending = accepted-but-not-yet-sunk batches.
	fmu     sync.Mutex
	fcond   *sync.Cond
	pending int64

	ingestRequests atomic.Int64
	ingestBeacons  atomic.Int64
	shed           map[string]*atomic.Int64
	rejected       atomic.Int64
	flushed        atomic.Int64
	sinkErrors     atomic.Int64

	// telemetry handles (nil-safe when cfg.Hub is nil)
	queueDepth *telemetry.Gauge
	inflight   *telemetry.Gauge
	latency    *telemetry.Histogram
	tenants    sync.Map // tenant → *tenantCounters
}

type tenantCounters struct {
	ingest  *telemetry.Counter
	beacons *telemetry.Counter
	shed    map[string]*telemetry.Counter
}

// NewService builds and starts the ingest plane: the queue is allocated
// and the drain workers are running on return.
func NewService(cfg Config) *Service {
	if cfg.Sink == nil {
		panic("serving: Config.Sink is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = measure.MaxCollectBody
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Service{
		cfg:     cfg,
		queue:   make(chan job, cfg.QueueDepth),
		quotas:  newQuotaSet(cfg.TenantRate, cfg.TenantBurst, cfg.Now),
		limiter: newLimiter(cfg.MaxConcurrent),
		shed:    make(map[string]*atomic.Int64, len(shedReasons)),
	}
	for _, reason := range shedReasons {
		s.shed[reason] = &atomic.Int64{}
	}
	s.fcond = sync.NewCond(&s.fmu)
	if h := cfg.Hub; h != nil {
		s.queueDepth = h.Gauge("serving_queue_depth", "batches waiting in the bounded ingest queue")
		s.inflight = h.Gauge("serving_inflight_requests", "collect requests past admission control")
		s.latency = h.Histogram("serving_ingest_latency_seconds", "collect request handling latency", nil)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// tenant returns (creating on first use) the telemetry handles for one
// tenant; all-nil handles when telemetry is off.
func (s *Service) tenant(app string) *tenantCounters {
	if v, ok := s.tenants.Load(app); ok {
		return v.(*tenantCounters)
	}
	tc := &tenantCounters{shed: make(map[string]*telemetry.Counter, len(shedReasons))}
	if h := s.cfg.Hub; h != nil {
		tc.ingest = h.Counter("serving_ingest_total", "collect requests accepted into the ingest queue", "tenant", app)
		tc.beacons = h.Counter("serving_ingest_beacons_total", "beacons accepted into the ingest queue", "tenant", app)
		for _, reason := range shedReasons {
			tc.shed[reason] = h.Counter("serving_shed_total", "collect requests visibly refused (429/503)", "tenant", app, "reason", reason)
		}
	}
	actual, _ := s.tenants.LoadOrStore(app, tc)
	return actual.(*tenantCounters)
}

// Handler returns the HTTP surface: /collect via the hardened ingest path
// (GET single-beacon and POST batch), every other path via cfg.Pages.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/collect", s.handleCollect)
	if s.cfg.Pages != nil {
		mux.Handle("/", s.cfg.Pages)
	}
	return mux
}

func (s *Service) handleCollect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	app := r.Header.Get(android.XRequestedWithHeader)
	if app == "" {
		app = DefaultTenant
	}
	timer := s.cfg.Hub.Timer("serving", "ingest")

	// Admission control: bound the requests decoding bodies concurrently
	// before they can pile onto the queue lock.
	if !s.limiter.tryAcquire() {
		s.refuse(w, app, ShedAdmission, http.StatusServiceUnavailable, s.cfg.RetryAfter)
		return
	}
	defer s.limiter.release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// Fast-path drain check; enqueue re-checks under the lock.
	if s.isDraining() {
		s.refuse(w, app, ShedDraining, http.StatusServiceUnavailable, s.cfg.RetryAfter)
		return
	}

	// Bounded decode: the stricter of the configured cap and the measure
	// package's own applies.
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	batch, err := measure.DecodeCollect(w, r)
	if err != nil {
		s.rejected.Add(1)
		measure.WriteCollectError(w, err)
		return
	}
	for _, tr := range batch {
		if tr.Interface == "" && tr.Method == "" {
			s.rejected.Add(1)
			http.Error(w, measure.ErrEmptyTrace.Error(), http.StatusBadRequest)
			return
		}
	}

	// Per-tenant quota: one token per beacon, advising the bucket's actual
	// refill horizon on refusal so a chatty tenant self-paces.
	if wait, ok := s.quotas.take(app, len(batch)); !ok {
		s.refuse(w, app, ShedQuota, http.StatusTooManyRequests, wait)
		return
	}

	switch s.enqueue(job{app: app, batch: batch}) {
	case "":
		s.ingestRequests.Add(1)
		s.ingestBeacons.Add(int64(len(batch)))
		tc := s.tenant(app)
		tc.ingest.Inc()
		tc.beacons.Add(int64(len(batch)))
		timer.ObserveInto(s.latency)
		w.WriteHeader(http.StatusNoContent)
	case ShedDraining:
		s.refuse(w, app, ShedDraining, http.StatusServiceUnavailable, s.cfg.RetryAfter)
	default:
		s.refuse(w, app, ShedQueueFull, http.StatusTooManyRequests, s.cfg.RetryAfter)
	}
}

// refuse sheds one request: counted, never silent, always carrying a
// Retry-After hint so well-behaved clients back off exactly as asked.
func (s *Service) refuse(w http.ResponseWriter, app, reason string, status int, retryAfter time.Duration) {
	s.shed[reason].Add(1)
	s.tenant(app).shed[reason].Inc()
	secs := int64(retryAfter / time.Second)
	if retryAfter%time.Second != 0 || secs == 0 {
		secs++ // Retry-After is integer seconds; round up, never advise 0
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	if reason == ShedDraining {
		w.Header().Set("Connection", "close")
	}
	http.Error(w, "overloaded: "+reason, status)
}

// enqueue places a job on the bounded queue. It returns "" on success,
// ShedDraining after drain start, ShedQueueFull when the queue is full.
func (s *Service) enqueue(j job) string {
	s.fmu.Lock()
	s.pending++
	s.fmu.Unlock()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.unpend()
		return ShedDraining
	}
	select {
	case s.queue <- j:
		s.queueDepth.Set(int64(len(s.queue)))
		s.mu.Unlock()
		return ""
	default:
		s.mu.Unlock()
		s.unpend()
		return ShedQueueFull
	}
}

func (s *Service) unpend() {
	s.fmu.Lock()
	s.pending--
	if s.pending == 0 {
		s.fcond.Broadcast()
	}
	s.fmu.Unlock()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if err := s.cfg.Sink.Accept(j.app, j.batch); err != nil {
			s.sinkErrors.Add(1)
		}
		s.flushed.Add(1)
		s.queueDepth.Set(int64(len(s.queue)))
		s.unpend()
	}
}

func (s *Service) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Flush blocks until every batch accepted so far has been delivered to the
// sink — the read-your-writes barrier callers need before inspecting the
// sink (e.g. building a Table 9 row right after a probe's beacons landed).
func (s *Service) Flush() {
	s.fmu.Lock()
	for s.pending > 0 {
		s.fcond.Wait()
	}
	s.fmu.Unlock()
}

// Drain gracefully stops the service: new requests are refused with 503
// (reason "draining"), every batch already accepted is flushed to the
// sink, and the workers exit. Idempotent; bounded by ctx.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serving: drain: %w", ctx.Err())
	}
}

// Close is Drain without a deadline.
func (s *Service) Close() error { return s.Drain(context.Background()) }

// Stats snapshots the service's own accounting.
func (s *Service) Stats() Stats {
	st := Stats{
		IngestRequests: s.ingestRequests.Load(),
		IngestBeacons:  s.ingestBeacons.Load(),
		Shed:           make(map[string]int64, len(shedReasons)),
		Rejected:       s.rejected.Load(),
		FlushedBatches: s.flushed.Load(),
		SinkErrors:     s.sinkErrors.Load(),
	}
	for reason, c := range s.shed {
		st.Shed[reason] = c.Load()
	}
	return st
}
