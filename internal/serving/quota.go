package serving

import (
	"sync"
	"time"
)

// quotaSet holds one token bucket per tenant: rate tokens/second refill up
// to a burst capacity, one token per beacon. Tenants are isolated by
// construction — a flooding app drains only its own bucket, so its
// neighbours' traffic admits unimpeded.
type quotaSet struct {
	rate  float64 // tokens per second; <= 0 disables quotas
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaSet(rate, burst float64, now func() time.Time) *quotaSet {
	if burst <= 0 {
		burst = 2 * rate
		if burst < 1 {
			burst = 1
		}
	}
	return &quotaSet{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// take attempts to spend n tokens for tenant. On refusal it returns the
// duration until the spend would succeed — the Retry-After hint. A batch
// larger than the burst is charged the full burst rather than being
// unsatisfiable forever.
func (q *quotaSet) take(tenant string, n int) (time.Duration, bool) {
	if q.rate <= 0 {
		return 0, true
	}
	cost := float64(n)
	if cost > q.burst {
		cost = q.burst
	}
	if cost < 1 {
		cost = 1
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
	}
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return 0, true
	}
	wait := time.Duration((cost - b.tokens) / q.rate * float64(time.Second))
	return wait, false
}
