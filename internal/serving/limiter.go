package serving

// limiter is the admission-control concurrency bound: a non-blocking
// semaphore. Requests beyond the cap are refused immediately (503 +
// Retry-After) instead of queueing invisible work in the HTTP stack.
type limiter struct{ slots chan struct{} }

func newLimiter(n int) *limiter {
	return &limiter{slots: make(chan struct{}, n)}
}

func (l *limiter) tryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (l *limiter) release() { <-l.slots }
