package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/android"
	"repro/internal/measure"
	"repro/internal/retry"
)

// LoadConfig parameterises RunLoad, the closed-loop load generator: each
// simulated user posts seeded crawl-shaped beacon batches to the collect
// endpoint and does not send the next until the previous reached a
// terminal outcome (accepted, shed, or errored) — the closed loop that
// makes backpressure visible as latency instead of unbounded queueing.
type LoadConfig struct {
	// URL is the collect endpoint (http://host:port/collect).
	URL string
	// Client issues the requests; nil uses a dedicated pooled transport.
	Client *http.Client
	// Users is the number of concurrent simulated users (>= 1).
	Users int
	// BatchesPerUser is how many batches each user pushes; <= 0 means 10.
	BatchesPerUser int
	// BeaconsPerBatch sizes batches (jittered ±50% per batch); <= 0 means 5.
	BeaconsPerBatch int
	// Apps is the tenant pool size users are assigned to round-robin;
	// <= 0 means min(Users, 8).
	Apps int
	// Seed drives batch shapes and the retry jitter.
	Seed int64
	// MaxAttempts bounds retries per batch; <= 0 means 4.
	MaxAttempts int
	// MaxDelay clamps backoff and server-advised Retry-After waits so a
	// bench finishes; <= 0 means 50ms.
	MaxDelay time.Duration
	// BreakerThreshold trips the per-user circuit breaker after that many
	// consecutive failures; <= 0 means 1000 (an outage guard, not a
	// throttle — quota sheds are expected traffic here).
	BreakerThreshold int
}

// LoadResult is one closed-loop run's accounting and latency profile.
// Batch outcomes are terminal (after retries); response counts are
// per-attempt and reconcile exactly against the server's Stats.
type LoadResult struct {
	Users int `json:"users"`

	// Terminal batch outcomes: Sent == Accepted + Shed + Errored.
	Sent     int64 `json:"sent_batches"`
	Accepted int64 `json:"accepted_batches"`
	Shed     int64 `json:"shed_batches"`
	Errored  int64 `json:"errored_batches"`

	// Per-attempt response accounting.
	Attempts      int64 `json:"attempts"`
	OKResponses   int64 `json:"ok_responses"`
	ShedResponses int64 `json:"shed_responses"`
	BreakerOpens  int64 `json:"breaker_opens"`

	// Beacon-level accounting for the accepted path.
	BeaconsSent     int64 `json:"beacons_sent"`
	BeaconsAccepted int64 `json:"beacons_accepted"`

	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	Max        time.Duration `json:"max_ns"`
	Wall       time.Duration `json:"wall_ns"`
	Throughput float64       `json:"accepted_beacons_per_sec"`
	ShedRate   float64       `json:"shed_rate"`
}

// crawl-shaped beacon population: the interfaces and methods the
// controlled page's Trace.js and the element-level batch upload actually
// emit during IAB probes, weighted toward the document APIs injected code
// leans on (paper Table 9).
var loadBeaconPool = []measure.Trace{
	{Interface: "Document", Method: "getElementById"},
	{Interface: "Document", Method: "getElementById"},
	{Interface: "Document", Method: "createElement"},
	{Interface: "Document", Method: "createElement"},
	{Interface: "Document", Method: "querySelectorAll"},
	{Interface: "Document", Method: "querySelector"},
	{Interface: "Document", Method: "getElementsByTagName"},
	{Interface: "Document", Method: "addEventListener"},
	{Interface: "Navigator", Method: "sendBeacon"},
	{Interface: "HTMLInputElement", Method: "setAttribute"},
	{Interface: "HTMLMetaElement", Method: "getAttribute"},
	{Interface: "HTMLFormElement", Method: "addEventListener"},
}

// RunLoad replays closed-loop beacon traffic against cfg.URL and returns
// the run's accounting. Every batch reaches a terminal outcome; nothing
// is silently dropped on the client side either.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.URL == "" {
		return nil, errors.New("serving: LoadConfig.URL is required")
	}
	if cfg.Users <= 0 {
		cfg.Users = 1
	}
	if cfg.BatchesPerUser <= 0 {
		cfg.BatchesPerUser = 10
	}
	if cfg.BeaconsPerBatch <= 0 {
		cfg.BeaconsPerBatch = 5
	}
	if cfg.Apps <= 0 {
		cfg.Apps = cfg.Users
		if cfg.Apps > 8 {
			cfg.Apps = 8
		}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 1000
	}
	client := cfg.Client
	if client == nil {
		tr := &http.Transport{MaxIdleConns: cfg.Users, MaxIdleConnsPerHost: cfg.Users}
		client = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	res := &LoadResult{Users: cfg.Users}
	var (
		sent, accepted, shed, errored atomic.Int64
		okResp, shedResp              atomic.Int64
		beaconsSent, beaconsAccepted  atomic.Int64
		latMu                         sync.Mutex
		latencies                     []time.Duration
	)
	metrics := &retry.Metrics{}

	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			app := fmt.Sprintf("com.load.app%02d", u%cfg.Apps)
			rng := rand.New(rand.NewSource(cfg.Seed*1315423911 + int64(u)))
			breaker := retry.NewBreaker(cfg.BreakerThreshold, time.Second)
			policy := &retry.Policy{
				MaxAttempts: cfg.MaxAttempts,
				BaseDelay:   time.Millisecond,
				MaxDelay:    cfg.MaxDelay,
				Seed:        cfg.Seed + int64(u) + 1,
				Metrics:     metrics,
				Breaker:     breaker,
			}
			userLat := make([]time.Duration, 0, cfg.BatchesPerUser*2)

			for b := 0; b < cfg.BatchesPerUser; b++ {
				if ctx.Err() != nil {
					return
				}
				batch := makeBatch(rng, cfg.BeaconsPerBatch)
				body, _ := json.Marshal(batch)
				sent.Add(1)
				beaconsSent.Add(int64(len(batch)))
				var lastStatus int
				_, err := retry.Do(ctx, policy, func(ctx context.Context) (struct{}, error) {
					req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL, bytes.NewReader(body))
					if err != nil {
						return struct{}{}, retry.Permanent(err)
					}
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set(android.XRequestedWithHeader, app)
					t0 := time.Now()
					resp, err := client.Do(req)
					if err != nil {
						return struct{}{}, retry.Transient(err)
					}
					userLat = append(userLat, time.Since(t0))
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					lastStatus = resp.StatusCode
					if resp.StatusCode >= 200 && resp.StatusCode < 300 {
						okResp.Add(1)
					} else if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
						shedResp.Add(1)
					}
					return struct{}{}, retry.ClassifyHTTPResponse(resp)
				})
				switch {
				case err == nil:
					accepted.Add(1)
					beaconsAccepted.Add(int64(len(batch)))
				case lastStatus == http.StatusTooManyRequests || lastStatus == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					errored.Add(1)
				}
			}
			latMu.Lock()
			latencies = append(latencies, userLat...)
			latMu.Unlock()
		}(u)
	}
	wg.Wait()
	res.Wall = time.Since(start)

	res.Sent = sent.Load()
	res.Accepted = accepted.Load()
	res.Shed = shed.Load()
	res.Errored = errored.Load()
	res.Attempts = metrics.Attempts.Load()
	res.OKResponses = okResp.Load()
	res.ShedResponses = shedResp.Load()
	res.BreakerOpens = metrics.BreakerRejects.Load()
	res.BeaconsSent = beaconsSent.Load()
	res.BeaconsAccepted = beaconsAccepted.Load()
	res.P50, res.P99, res.Max = percentiles(latencies)
	if secs := res.Wall.Seconds(); secs > 0 {
		res.Throughput = float64(res.BeaconsAccepted) / secs
	}
	if res.Sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Sent)
	}
	return res, ctx.Err()
}

// makeBatch draws a crawl-shaped batch: size jittered around the mean,
// beacons drawn from the Trace.js population.
func makeBatch(rng *rand.Rand, mean int) []measure.Trace {
	n := mean/2 + rng.Intn(mean+1) // in [mean/2, mean/2+mean]
	if n < 1 {
		n = 1
	}
	batch := make([]measure.Trace, n)
	for i := range batch {
		batch[i] = loadBeaconPool[rng.Intn(len(loadBeaconPool))]
	}
	return batch
}

func percentiles(lat []time.Duration) (p50, p99, max time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := func(q float64) time.Duration {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return idx(0.50), idx(0.99), lat[len(lat)-1]
}

// Reconcile cross-checks a load run against the server's own accounting
// and returns a descriptive error on the first discrepancy. With the
// generator as the service's only client, every count must match exactly:
// a mismatch means a silently dropped or double-counted beacon.
func (r *LoadResult) Reconcile(st Stats) error {
	if r.Sent != r.Accepted+r.Shed+r.Errored {
		return fmt.Errorf("serving: client accounting leak: sent %d != accepted %d + shed %d + errored %d",
			r.Sent, r.Accepted, r.Shed, r.Errored)
	}
	if r.Errored != 0 {
		return fmt.Errorf("serving: %d batches ended in transport errors", r.Errored)
	}
	if r.OKResponses != st.IngestRequests {
		return fmt.Errorf("serving: client saw %d acceptances, server ingested %d", r.OKResponses, st.IngestRequests)
	}
	if r.BeaconsAccepted != st.IngestBeacons {
		return fmt.Errorf("serving: client counted %d accepted beacons, server %d", r.BeaconsAccepted, st.IngestBeacons)
	}
	if r.ShedResponses != st.ShedTotal() {
		return fmt.Errorf("serving: client saw %d sheds, server shed %d", r.ShedResponses, st.ShedTotal())
	}
	if st.FlushedBatches != st.IngestRequests {
		return fmt.Errorf("serving: %d accepted batches but only %d flushed to the sink",
			st.IngestRequests, st.FlushedBatches)
	}
	if st.SinkErrors != 0 {
		return fmt.Errorf("serving: sink refused %d batches", st.SinkErrors)
	}
	return nil
}
