package serving

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/measure"
)

func TestDrainFlushesInFlightThenRefuses(t *testing.T) {
	gs := newGateSink()
	svc := NewService(Config{Sink: gs, QueueDepth: 16, Workers: 2})
	h := svc.Handler()

	const accepted = 5
	for i := 0; i < accepted; i++ {
		if rec := postBatch(t, h, "com.a", beacons(2, "com.a")); rec.Code != http.StatusNoContent {
			t.Fatalf("POST %d = %d", i, rec.Code)
		}
	}

	drained := make(chan error, 1)
	go func() { drained <- svc.Drain(context.Background()) }()

	// New traffic after drain start is visibly refused with 503. Probes
	// racing the drain flag may still be accepted; they are counted, never
	// dropped.
	deadline := time.Now().Add(5 * time.Second)
	probeAccepted := 0
	for {
		rec := postBatch(t, h, "com.b", beacons(1, "com.b"))
		if rec.Code == http.StatusServiceUnavailable {
			if rec.Header().Get("Retry-After") == "" {
				t.Error("drain refusal missing Retry-After")
			}
			break
		}
		if rec.Code == http.StatusNoContent {
			probeAccepted++
		}
		if time.Now().After(deadline) {
			t.Fatal("drain refusal never observed")
		}
		time.Sleep(time.Millisecond)
	}

	// The gate still holds the workers: drain must not have completed.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v while batches were still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(gs.gate)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never completed after the sink unblocked")
	}

	// Every beacon accepted before drain start was flushed and counted.
	wantBeacons := int64(accepted*2 + probeAccepted)
	if got := gs.agg.Beacons(); got != wantBeacons {
		t.Errorf("flushed beacons = %d, want %d", got, wantBeacons)
	}
	st := svc.Stats()
	if want := int64(accepted + probeAccepted); st.FlushedBatches != want || st.IngestRequests != want {
		t.Errorf("stats = %+v; want %d flushed == ingested", st, want)
	}
	if st.Shed[ShedDraining] == 0 {
		t.Error("draining sheds not counted")
	}
}

func TestDrainIsIdempotent(t *testing.T) {
	svc := NewService(Config{Sink: NewAggregator()})
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainHonorsContext(t *testing.T) {
	gs := newGateSink()
	svc := NewService(Config{Sink: gs, Workers: 1})
	if rec := postBatch(t, svc.Handler(), "com.a", beacons(1, "com.a")); rec.Code != http.StatusNoContent {
		t.Fatal("seed POST failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err == nil {
		t.Error("Drain with a blocked sink and expired context returned nil")
	}
	close(gs.gate)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointShutdownRefusesNewConnections(t *testing.T) {
	ms := measure.NewServer()
	svc := NewService(Config{Sink: ms, Pages: ms.Handler()})
	ep, err := Listen("127.0.0.1:0", svc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+ep.Addr+"/collect", "application/json",
		strings.NewReader(`[{"interface":"I","method":"m"}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("live POST = %d", resp.StatusCode)
	}
	if err := ep.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// After shutdown, the socket refuses outright: connection-level, not 503.
	if conn, err := net.DialTimeout("tcp", ep.Addr, time.Second); err == nil {
		conn.Close()
		t.Error("dial succeeded after Shutdown")
	}
	// And the beacon accepted before shutdown was flushed, not lost.
	if got := len(ms.Traces()); got != 1 {
		t.Errorf("traces after drain = %d, want 1", got)
	}
}

func TestEndpointIsHardened(t *testing.T) {
	srv := NewHTTPServer(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 ||
		srv.IdleTimeout <= 0 || srv.MaxHeaderBytes <= 0 {
		t.Errorf("NewHTTPServer missing limits: %+v", srv)
	}
}
