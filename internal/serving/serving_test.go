package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/android"
	"repro/internal/measure"
	"repro/internal/telemetry"
)

// gateSink blocks Accept until released, then forwards to an Aggregator —
// the tool for holding batches "in flight" inside the drain workers.
type gateSink struct {
	gate chan struct{}
	agg  *Aggregator
}

func newGateSink() *gateSink {
	return &gateSink{gate: make(chan struct{}), agg: NewAggregator()}
}

func (g *gateSink) Accept(app string, batch []measure.Trace) error {
	<-g.gate
	return g.agg.Accept(app, batch)
}

func postBatch(t *testing.T, h http.Handler, app string, batch []measure.Trace) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/collect", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(android.XRequestedWithHeader, app)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func beacons(n int, app string) []measure.Trace {
	out := make([]measure.Trace, n)
	for i := range out {
		out[i] = measure.Trace{App: app, Interface: "Document", Method: fmt.Sprintf("method%d", i)}
	}
	return out
}

func TestIngestHappyPath(t *testing.T) {
	agg := NewAggregator()
	svc := NewService(Config{Sink: agg})
	defer svc.Close()
	h := svc.Handler()

	if rec := postBatch(t, h, "com.a", beacons(3, "com.a")); rec.Code != http.StatusNoContent {
		t.Fatalf("POST = %d, want 204: %s", rec.Code, rec.Body)
	}
	// GET single-beacon channel rides the same hardened path.
	req := httptest.NewRequest(http.MethodGet, "/collect?iface=Navigator&method=sendBeacon", nil)
	req.Header.Set(android.XRequestedWithHeader, "com.a")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("GET = %d, want 204", rec.Code)
	}
	svc.Flush()
	if got := agg.Beacons(); got != 4 {
		t.Errorf("aggregated beacons = %d, want 4", got)
	}
	st := svc.Stats()
	if st.IngestRequests != 2 || st.IngestBeacons != 4 || st.ShedTotal() != 0 || st.FlushedBatches != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueFullShedsWith429AndRetryAfter(t *testing.T) {
	gs := newGateSink()
	svc := NewService(Config{Sink: gs, QueueDepth: 2, Workers: 1, RetryAfter: 2 * time.Second})
	defer func() { close(gs.gate); svc.Close() }()
	h := svc.Handler()

	// Worker pulls one job and blocks in the sink; two more fill the queue.
	sent, accepted, shed := 0, 0, 0
	deadline := time.Now().Add(5 * time.Second)
	for shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		rec := postBatch(t, h, "com.a", beacons(1, "com.a"))
		sent++
		switch rec.Code {
		case http.StatusNoContent:
			accepted++
		case http.StatusTooManyRequests:
			shed++
			if got := rec.Header().Get("Retry-After"); got != "2" {
				t.Errorf("Retry-After = %q, want \"2\"", got)
			}
		default:
			t.Fatalf("unexpected status %d: %s", rec.Code, rec.Body)
		}
	}
	st := svc.Stats()
	if int(st.IngestRequests)+int(st.ShedTotal()) != sent {
		t.Errorf("accounting leak: ingest %d + shed %d != sent %d", st.IngestRequests, st.ShedTotal(), sent)
	}
	if st.Shed[ShedQueueFull] != int64(shed) {
		t.Errorf("shed[queue_full] = %d, want %d", st.Shed[ShedQueueFull], shed)
	}
	if accepted == 0 {
		t.Error("nothing accepted before the queue filled")
	}
}

func TestMalformedInputRejectedNotShed(t *testing.T) {
	svc := NewService(Config{Sink: NewAggregator(), MaxBodyBytes: 1 << 10})
	defer svc.Close()
	h := svc.Handler()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage", "{nope", http.StatusBadRequest},
		{"empty beacon", `[{"app":"com.a"}]`, http.StatusBadRequest},
		{"oversized", `[{"interface":"I","method":"` + strings.Repeat("m", 2<<10) + `"}]`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/collect", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, rec.Code, tc.want)
		}
	}
	st := svc.Stats()
	if st.Rejected != 3 || st.ShedTotal() != 0 || st.IngestRequests != 0 {
		t.Errorf("stats = %+v; want 3 rejected, 0 shed, 0 ingested", st)
	}
}

func TestAdmissionLimiterRefusesExcessConcurrency(t *testing.T) {
	svc := NewService(Config{Sink: NewAggregator(), MaxConcurrent: 1})
	defer svc.Close()
	h := svc.Handler()

	// Park one request inside the handler by stalling its body mid-decode.
	pr, pw := io.Pipe()
	parked := make(chan struct{})
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/collect", pr)
		req.Header.Set(android.XRequestedWithHeader, "com.slow")
		h.ServeHTTP(httptest.NewRecorder(), req)
		close(parked)
	}()
	// Wait until the parked request holds the only admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for svc.limiter.tryAcquire() {
		svc.limiter.release()
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the limiter")
		}
		time.Sleep(time.Millisecond)
	}
	rec := postBatch(t, h, "com.b", beacons(1, "com.b"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-admission POST = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("admission shed missing Retry-After")
	}
	pw.Write([]byte(`[{"interface":"I","method":"m"}]`))
	pw.Close()
	<-parked
	st := svc.Stats()
	if st.Shed[ShedAdmission] != 1 || st.IngestRequests != 1 {
		t.Errorf("stats = %+v; want 1 admission shed, 1 ingested", st)
	}
}

func TestTelemetryCountersReconcileWithStats(t *testing.T) {
	hub := telemetry.New(telemetry.Options{Timing: telemetry.SeededTiming{Seed: 9}})
	gs := newGateSink()
	svc := NewService(Config{Sink: gs, QueueDepth: 1, Workers: 1, Hub: hub})
	defer func() { close(gs.gate); svc.Close() }()
	h := svc.Handler()

	sent := 0
	for i := 0; i < 40; i++ {
		postBatch(t, h, fmt.Sprintf("com.app%d", i%3), beacons(2, ""))
		sent++
	}
	st := svc.Stats()
	var ingest, shedTotal int64
	for i := 0; i < 3; i++ {
		app := fmt.Sprintf("com.app%d", i)
		ingest += hub.Counter("serving_ingest_total", "", "tenant", app).Value()
		for _, reason := range shedReasons {
			shedTotal += hub.Counter("serving_shed_total", "", "tenant", app, "reason", reason).Value()
		}
	}
	if ingest != st.IngestRequests {
		t.Errorf("serving_ingest_total = %d, stats say %d", ingest, st.IngestRequests)
	}
	if shedTotal != st.ShedTotal() {
		t.Errorf("serving_shed_total = %d, stats say %d", shedTotal, st.ShedTotal())
	}
	if ingest+shedTotal != int64(sent) {
		t.Errorf("ingest %d + shed %d != sent %d: silent drop", ingest, shedTotal, sent)
	}
}

func TestConcurrentAggregationMatchesSequential(t *testing.T) {
	run := func(workers, clients int) []Row {
		agg := NewAggregator()
		svc := NewService(Config{Sink: agg, QueueDepth: 4096, Workers: workers})
		h := svc.Handler()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c) + 7))
				for i := 0; i < 50; i++ {
					app := fmt.Sprintf("com.app%d", rng.Intn(4))
					batch := []measure.Trace{{
						Interface: fmt.Sprintf("Iface%d", rng.Intn(3)),
						Method:    fmt.Sprintf("m%d", rng.Intn(5)),
					}}
					if rec := postBatch(t, h, app, batch); rec.Code != http.StatusNoContent {
						t.Errorf("POST = %d", rec.Code)
					}
				}
			}(c)
		}
		wg.Wait()
		if err := svc.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return agg.Rows()
	}
	seq := run(1, 1)
	// Same seeded traffic, one client: concurrency only in the drain pool.
	conc := run(4, 1)
	if !reflect.DeepEqual(seq, conc) {
		t.Errorf("concurrent drain diverged from sequential:\nseq  %+v\nconc %+v", seq, conc)
	}
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(conc)
	if string(a) != string(b) {
		t.Error("marshalled aggregates not byte-identical")
	}
}

func TestPagesServedAroundCollect(t *testing.T) {
	ms := measure.NewServer()
	svc := NewService(Config{Sink: ms, Pages: ms.Handler()})
	defer svc.Close()
	h := svc.Handler()

	req := httptest.NewRequest(http.MethodGet, "/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "HTML5 Test Page") {
		t.Errorf("GET / = %d, body %q", rec.Code, rec.Body.String()[:60])
	}
	req = httptest.NewRequest(http.MethodGet, "/trace.js", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "__traceInstalled") {
		t.Errorf("GET /trace.js = %d", rec.Code)
	}
	// /collect is intercepted by the hardened path, not measure's own mux.
	if rec := postBatch(t, h, "com.a", beacons(1, "com.a")); rec.Code != http.StatusNoContent {
		t.Fatalf("POST /collect = %d", rec.Code)
	}
	svc.Flush()
	if got := ms.ForApp("com.a"); len(got) != 1 {
		t.Errorf("measure sink traces = %+v", got)
	}
}
