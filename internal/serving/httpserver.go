package serving

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// NewHTTPServer wraps h in a production-shaped http.Server: header, read,
// write and idle timeouts plus a header-size cap, so a slow-loris or
// hostile client cannot wedge the accept loop or hold goroutines hostage.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    16 << 10,
	}
}

// Endpoint is a hardened HTTP listener serving a handler over real
// sockets. Unlike a bare `go srv.Serve(ln)`, the accept-loop error is
// captured and surfaced through Err and Shutdown.
type Endpoint struct {
	Addr string // bound address (useful with ":0")
	srv  *http.Server
	ln   net.Listener

	mu       sync.Mutex
	serveErr error
	done     chan struct{}
}

// Listen binds addr and serves h until Shutdown or Close.
func Listen(addr string, h http.Handler) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serving: %w", err)
	}
	e := &Endpoint{Addr: ln.Addr().String(), ln: ln, srv: NewHTTPServer(h), done: make(chan struct{})}
	go func() {
		defer close(e.done)
		if err := e.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			e.mu.Lock()
			e.serveErr = err
			e.mu.Unlock()
		}
	}()
	return e, nil
}

// Err reports an accept-loop failure (nil while healthy or after an
// orderly shutdown).
func (e *Endpoint) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.serveErr
}

// Shutdown stops accepting new connections — subsequent dials are refused
// at the socket — and waits (bounded by ctx) for in-flight requests.
func (e *Endpoint) Shutdown(ctx context.Context) error {
	if e == nil {
		return nil
	}
	shutErr := e.srv.Shutdown(ctx)
	if shutErr != nil {
		e.srv.Close()
	}
	<-e.done
	if err := e.Err(); err != nil {
		return err
	}
	return shutErr
}

// Close is Shutdown with a 5-second drain budget.
func (e *Endpoint) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return e.Shutdown(ctx)
}
