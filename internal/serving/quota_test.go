package serving

import (
	"net/http"
	"testing"
	"time"
)

// fakeClock is an injectable quota clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestQuotaBucketRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newQuotaSet(10, 20, clk.now) // 10 beacons/s, burst 20

	if wait, ok := q.take("com.a", 20); !ok || wait != 0 {
		t.Fatalf("full-burst take = %v, %v", wait, ok)
	}
	wait, ok := q.take("com.a", 5)
	if ok {
		t.Fatal("empty bucket admitted a batch")
	}
	if wait != 500*time.Millisecond {
		t.Errorf("refill hint = %v, want 500ms (5 tokens at 10/s)", wait)
	}
	clk.advance(time.Second) // +10 tokens
	if _, ok := q.take("com.a", 10); !ok {
		t.Error("refilled bucket refused an affordable batch")
	}
	if _, ok := q.take("com.a", 1); ok {
		t.Error("bucket admitted beyond its refill")
	}
}

func TestQuotaTenantsAreIsolated(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newQuotaSet(5, 5, clk.now)
	if _, ok := q.take("com.flood", 5); !ok {
		t.Fatal("initial burst refused")
	}
	if _, ok := q.take("com.flood", 1); ok {
		t.Fatal("flooding tenant not limited")
	}
	// The quiet tenant's bucket is untouched by the flood.
	if _, ok := q.take("com.quiet", 5); !ok {
		t.Error("quiet tenant starved by the flooding tenant")
	}
}

func TestQuotaOversizedBatchChargedAtBurst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newQuotaSet(10, 10, clk.now)
	// A batch larger than the burst is not unsatisfiable forever.
	if _, ok := q.take("com.a", 1000); !ok {
		t.Fatal("burst-sized charge refused on a full bucket")
	}
	clk.advance(time.Second)
	if _, ok := q.take("com.a", 1000); !ok {
		t.Error("oversized batch never admitted again")
	}
}

func TestQuotaDisabledWhenRateZero(t *testing.T) {
	q := newQuotaSet(0, 0, time.Now)
	for i := 0; i < 1000; i++ {
		if _, ok := q.take("com.a", 100); !ok {
			t.Fatal("disabled quota refused traffic")
		}
	}
}

func TestServiceQuotaShedsWithRefillHint(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	svc := NewService(Config{
		Sink:       NewAggregator(),
		TenantRate: 4, TenantBurst: 4,
		Now: clk.now,
	})
	defer svc.Close()
	h := svc.Handler()

	if rec := postBatch(t, h, "com.flood", beacons(4, "com.flood")); rec.Code != http.StatusNoContent {
		t.Fatalf("burst POST = %d", rec.Code)
	}
	rec := postBatch(t, h, "com.flood", beacons(4, "com.flood"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota POST = %d, want 429", rec.Code)
	}
	// 4 tokens at 4/s = 1s, advised as integer seconds.
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	// The other tenant admits while the flooder is shed.
	if rec := postBatch(t, h, "com.quiet", beacons(2, "com.quiet")); rec.Code != http.StatusNoContent {
		t.Errorf("quiet tenant POST = %d, want 204", rec.Code)
	}
	st := svc.Stats()
	if st.Shed[ShedQuota] != 1 {
		t.Errorf("shed[quota] = %d, want 1", st.Shed[ShedQuota])
	}
	clk.advance(time.Second)
	if rec := postBatch(t, h, "com.flood", beacons(4, "com.flood")); rec.Code != http.StatusNoContent {
		t.Errorf("post-refill POST = %d, want 204", rec.Code)
	}
}
