// Package androzoo simulates the AndroZoo APK repository [39]: a snapshot
// listing of every known Play Store app and per-app APK download. APK
// images are synthesised on demand from the corpus specs (deterministically,
// so repeated downloads are byte-identical) and served with their digest,
// the way AndroZoo indexes APKs by hash.
package androzoo

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/corpus"
)

// Server serves a corpus as an APK repository.
type Server struct {
	c     *corpus.Corpus
	byPkg map[string]*corpus.Spec
}

// NewServer indexes the corpus.
func NewServer(c *corpus.Corpus) *Server {
	s := &Server{c: c, byPkg: make(map[string]*corpus.Spec, len(c.Apps))}
	for _, app := range c.Apps {
		s.byPkg[app.Package] = app
	}
	return s
}

// Handler returns the repository API:
//
//	GET /snapshot          newline-separated package list
//	GET /apk/{package}     the APK image
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /apk/", s.handleAPK)
	return mux
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bw := bufio.NewWriter(w)
	for _, app := range s.c.Apps {
		bw.WriteString(app.Package)
		bw.WriteByte('\n')
	}
	bw.Flush()
}

func (s *Server) handleAPK(w http.ResponseWriter, r *http.Request) {
	pkg := strings.TrimPrefix(r.URL.Path, "/apk/")
	spec, ok := s.byPkg[pkg]
	if !ok {
		http.Error(w, "unknown apk", http.StatusNotFound)
		return
	}
	img, err := corpus.BuildAPK(spec)
	if err != nil {
		http.Error(w, "build failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/vnd.android.package-archive")
	w.Header().Set("Content-Length", fmt.Sprint(len(img)))
	w.Write(img)
}

// Client talks to a repository server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the repository at baseURL.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// List streams the snapshot package list.
func (c *Client) List(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("androzoo: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("androzoo: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("androzoo: snapshot: unexpected status %s", resp.Status)
	}
	var pkgs []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			pkgs = append(pkgs, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("androzoo: snapshot: %w", err)
	}
	return pkgs, nil
}

// Download fetches one APK image.
func (c *Client) Download(ctx context.Context, pkg string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/apk/"+pkg, nil)
	if err != nil {
		return nil, fmt.Errorf("androzoo: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("androzoo: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("androzoo: %s: unexpected status %s", pkg, resp.Status)
	}
	img, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("androzoo: %s: %w", pkg, err)
	}
	return img, nil
}
