// Package androzoo simulates the AndroZoo APK repository [39]: a snapshot
// listing of every known Play Store app and per-app APK download. APK
// images are synthesised on demand from the corpus specs (deterministically,
// so repeated downloads are byte-identical) and served with their digest,
// the way AndroZoo indexes APKs by hash.
//
// The client verifies every download against the server-sent payload
// digest and Content-Length, surfacing truncated or corrupted bodies as
// retryable errors, and can wrap all its requests in a retry policy
// (WithRetry) with backoff and per-endpoint circuit breaking.
package androzoo

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/retry"
)

// DigestHeader carries the hex SHA-256 of the response payload, the
// repository's equivalent of AndroZoo's per-APK hash index. Clients use
// it to detect corrupted downloads without trusting the APK's own
// internal digest entry.
const DigestHeader = "X-Payload-Sha256"

// Server serves a corpus as an APK repository.
type Server struct {
	src corpus.Source
	// build synthesises one APK image; a test hook (defaults to
	// corpus.BuildAPK) so handler failure paths are coverable.
	build func(*corpus.Spec) ([]byte, error)
}

// NewServer serves the materialized corpus.
func NewServer(c *corpus.Corpus) *Server {
	return NewServerFrom(c)
}

// NewServerFrom serves any corpus source — a materialized *corpus.Corpus
// or a bounded-memory *corpus.Snapshot, which lets a single process serve
// the full paper-scale repository (6.5M snapshot entries) without holding
// it in memory.
func NewServerFrom(src corpus.Source) *Server {
	return &Server{src: src, build: corpus.BuildAPK}
}

// Handler returns the repository API:
//
//	GET /snapshot          newline-separated package list
//	GET /apk/{package}     the APK image (digest in X-Payload-Sha256)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /apk/", s.handleAPK)
	return mux
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bw := bufio.NewWriter(w)
	s.src.Each(func(app *corpus.Spec) error {
		bw.WriteString(app.Package)
		bw.WriteByte('\n')
		return nil
	})
	bw.Flush()
}

func (s *Server) handleAPK(w http.ResponseWriter, r *http.Request) {
	pkg := strings.TrimPrefix(r.URL.Path, "/apk/")
	spec := s.src.ByPackage(pkg)
	if spec == nil {
		http.Error(w, "unknown apk", http.StatusNotFound)
		return
	}
	img, err := s.build(spec)
	if err != nil {
		// Nothing has been written yet, so the status is authoritative and
		// no digest header is set — the client must not mistake the error
		// body for an APK.
		http.Error(w, "build failed", http.StatusInternalServerError)
		return
	}
	sum := sha256.Sum256(img)
	w.Header().Set("Content-Type", "application/vnd.android.package-archive")
	w.Header().Set(DigestHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Length", fmt.Sprint(len(img)))
	w.Write(img)
}

// Client talks to a repository server.
type Client struct {
	base  string
	hc    *http.Client
	retry *retry.Policy
}

// NewClient returns a client for the repository at baseURL.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// WithRetry wraps every List and Download call in the given retry policy
// (nil disables retrying) and returns the client.
func (c *Client) WithRetry(p *retry.Policy) *Client {
	c.retry = p
	return c
}

// List streams the snapshot package list.
func (c *Client) List(ctx context.Context) ([]string, error) {
	return retry.Do(ctx, c.retry, c.list)
}

func (c *Client) list(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/snapshot", nil)
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("androzoo: %w", err))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Connection-level failures (refused, reset, timeout) are the
		// textbook transient class.
		return nil, retry.Transient(fmt.Errorf("androzoo: %w", err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, classifyStatus(resp.StatusCode, fmt.Errorf("androzoo: snapshot: unexpected status %s", resp.Status))
	}
	var pkgs []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			pkgs = append(pkgs, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, retry.Transient(fmt.Errorf("androzoo: snapshot: %w", err))
	}
	return pkgs, nil
}

// Download fetches one APK image, verifying it against the server-sent
// Content-Length and payload digest: a truncated or corrupted body is a
// retryable error, never a silently corrupt image.
func (c *Client) Download(ctx context.Context, pkg string) ([]byte, error) {
	return retry.Do(ctx, c.retry, func(ctx context.Context) ([]byte, error) {
		return c.download(ctx, pkg)
	})
}

func (c *Client) download(ctx context.Context, pkg string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/apk/"+pkg, nil)
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("androzoo: %w", err))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, retry.Transient(fmt.Errorf("androzoo: %s: %w", pkg, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, classifyStatus(resp.StatusCode, fmt.Errorf("androzoo: %s: unexpected status %s", pkg, resp.Status))
	}
	img, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, retry.Transient(fmt.Errorf("androzoo: %s: truncated body: %w", pkg, err))
	}
	if cl := resp.ContentLength; cl >= 0 && int64(len(img)) != cl {
		return nil, retry.Transient(fmt.Errorf("androzoo: %s: truncated body: got %d of %d bytes", pkg, len(img), cl))
	}
	if want := resp.Header.Get(DigestHeader); want != "" {
		sum := sha256.Sum256(img)
		if got := hex.EncodeToString(sum[:]); got != want {
			return nil, retry.Transient(fmt.Errorf("androzoo: %s: payload digest mismatch: got %s, want %s", pkg, got, want))
		}
	}
	return img, nil
}

// classifyStatus marks 5xx responses transient (the server may recover)
// and everything else permanent (the request itself is wrong).
func classifyStatus(code int, err error) error {
	if code >= 500 {
		return retry.Transient(err)
	}
	return retry.Permanent(err)
}
