package androzoo

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/apk"
	"repro/internal/corpus"
)

func testSetup(t *testing.T) (*Client, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(c).Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, srv.Client()), c
}

func TestListReturnsWholeSnapshot(t *testing.T) {
	client, c := testSetup(t)
	pkgs, err := client.List(context.Background())
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(pkgs) != len(c.Apps) {
		t.Errorf("snapshot = %d packages, want %d", len(pkgs), len(c.Apps))
	}
	if pkgs[0] != c.Apps[0].Package {
		t.Errorf("first package = %q, want %q", pkgs[0], c.Apps[0].Package)
	}
}

func TestDownloadParsesAsAPK(t *testing.T) {
	client, c := testSetup(t)
	var target *corpus.Spec
	for _, s := range c.Filtered() {
		if !s.Broken {
			target = s
			break
		}
	}
	img, err := client.Download(context.Background(), target.Package)
	if err != nil {
		t.Fatalf("Download: %v", err)
	}
	a, err := apk.Open(img)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if a.Package() != target.Package {
		t.Errorf("package = %q", a.Package())
	}
}

func TestDownloadDeterministic(t *testing.T) {
	client, c := testSetup(t)
	pkg := c.Filtered()[0].Package
	a, err := client.Download(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Download(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("repeated downloads differ")
	}
}

func TestDownloadUnknown(t *testing.T) {
	client, _ := testSetup(t)
	if _, err := client.Download(context.Background(), "com.unknown.app"); err == nil {
		t.Error("unknown package did not fail")
	}
}

func TestDownloadBrokenAPKStillServed(t *testing.T) {
	client, c := testSetup(t)
	var broken *corpus.Spec
	for _, s := range c.Filtered() {
		if s.Broken {
			broken = s
			break
		}
	}
	if broken == nil {
		t.Skip("no broken APKs at this scale")
	}
	img, err := client.Download(context.Background(), broken.Package)
	if err != nil {
		t.Fatalf("Download: %v", err)
	}
	if _, err := apk.Open(img); !errors.Is(err, apk.ErrBroken) {
		t.Errorf("broken APK parsed: %v", err)
	}
}

func TestListContextCancel(t *testing.T) {
	client, _ := testSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.List(ctx); err == nil {
		t.Error("cancelled context did not fail")
	}
}
