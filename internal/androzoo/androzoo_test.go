package androzoo

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apk"
	"repro/internal/corpus"
	"repro/internal/retry"
)

func testSetup(t *testing.T) (*Client, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(c).Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, srv.Client()), c
}

func TestListReturnsWholeSnapshot(t *testing.T) {
	client, c := testSetup(t)
	pkgs, err := client.List(context.Background())
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(pkgs) != len(c.Apps) {
		t.Errorf("snapshot = %d packages, want %d", len(pkgs), len(c.Apps))
	}
	if pkgs[0] != c.Apps[0].Package {
		t.Errorf("first package = %q, want %q", pkgs[0], c.Apps[0].Package)
	}
}

func TestDownloadParsesAsAPK(t *testing.T) {
	client, c := testSetup(t)
	var target *corpus.Spec
	for _, s := range c.Filtered() {
		if !s.Broken {
			target = s
			break
		}
	}
	img, err := client.Download(context.Background(), target.Package)
	if err != nil {
		t.Fatalf("Download: %v", err)
	}
	a, err := apk.Open(img)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if a.Package() != target.Package {
		t.Errorf("package = %q", a.Package())
	}
}

func TestDownloadDeterministic(t *testing.T) {
	client, c := testSetup(t)
	pkg := c.Filtered()[0].Package
	a, err := client.Download(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Download(context.Background(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("repeated downloads differ")
	}
}

func TestDownloadUnknown(t *testing.T) {
	client, _ := testSetup(t)
	if _, err := client.Download(context.Background(), "com.unknown.app"); err == nil {
		t.Error("unknown package did not fail")
	}
}

func TestDownloadBrokenAPKStillServed(t *testing.T) {
	client, c := testSetup(t)
	var broken *corpus.Spec
	for _, s := range c.Filtered() {
		if s.Broken {
			broken = s
			break
		}
	}
	if broken == nil {
		t.Skip("no broken APKs at this scale")
	}
	img, err := client.Download(context.Background(), broken.Package)
	if err != nil {
		t.Fatalf("Download: %v", err)
	}
	if _, err := apk.Open(img); !errors.Is(err, apk.ErrBroken) {
		t.Errorf("broken APK parsed: %v", err)
	}
}

func TestListContextCancel(t *testing.T) {
	client, _ := testSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.List(ctx); err == nil {
		t.Error("cancelled context did not fail")
	}
}

// --- server handler paths (404 / 500 / digest / truncation) --------------

func TestHandleAPKSetsDigestHeader(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(c).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/apk/" + c.Apps[0].Package)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(body)
	if got, want := resp.Header.Get(DigestHeader), hex.EncodeToString(sum[:]); got != want {
		t.Errorf("%s = %q, want payload digest %q", DigestHeader, got, want)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(body)) {
		t.Errorf("Content-Length = %q for %d body bytes", cl, len(body))
	}
}

func TestHandleAPKUnknownPackage404(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 5000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(c).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/apk/com.not.a.real.app")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %s, want 404", resp.Status)
	}
}

func TestHandleAPKBuildFailure500(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 5000})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(c)
	s.build = func(*corpus.Spec) ([]byte, error) { return nil, errors.New("synthetic build explosion") }
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/apk/" + c.Apps[0].Package)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %s, want 500", resp.Status)
	}
	if resp.Header.Get(DigestHeader) != "" {
		t.Error("error response carries a payload digest header")
	}
	// The client must refuse the error body rather than hand it on as an
	// APK image; a 5xx is retryable.
	client := NewClient(srv.URL, srv.Client())
	_, derr := client.Download(context.Background(), c.Apps[0].Package)
	if derr == nil {
		t.Fatal("Download of a 500 succeeded")
	}
	if !retry.IsRetryable(derr) {
		t.Errorf("5xx error %v is not retryable", derr)
	}
}

// flakyAPKHandler serves a wrong or truncated payload for the first n
// requests per path, then behaves.
type flakyAPKHandler struct {
	mu       sync.Mutex
	failures map[string]int
	n        int
	payload  []byte
	mode     string // "truncate", "corrupt" or "status"
}

func (h *flakyAPKHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.failures[r.URL.Path]++
	misbehave := h.failures[r.URL.Path] <= h.n
	h.mu.Unlock()
	sum := sha256.Sum256(h.payload)
	if misbehave && h.mode == "status" {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set(DigestHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Length", fmt.Sprint(len(h.payload)))
	switch {
	case misbehave && h.mode == "truncate":
		w.(http.Flusher).Flush()
		w.Write(h.payload[:len(h.payload)/2])
		panic(http.ErrAbortHandler) // cut the connection mid-body
	case misbehave && h.mode == "corrupt":
		bad := append([]byte(nil), h.payload...)
		bad[0] ^= 0xff
		w.Write(bad)
	default:
		w.Write(h.payload)
	}
}

func flakyServer(t *testing.T, mode string, n int) (*Client, *retry.Metrics) {
	t.Helper()
	h := &flakyAPKHandler{failures: make(map[string]int), n: n, payload: bytes.Repeat([]byte("apk!"), 1024), mode: mode}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	m := &retry.Metrics{}
	p := &retry.Policy{
		MaxAttempts: 4, Seed: 1, Metrics: m,
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
	return NewClient(srv.URL, srv.Client()).WithRetry(p), m
}

func TestDownloadTruncationDetectedAndRetried(t *testing.T) {
	client, m := flakyServer(t, "truncate", 2)
	img, err := client.Download(context.Background(), "com.truncated.app")
	if err != nil {
		t.Fatalf("Download did not recover from truncation: %v", err)
	}
	if len(img) != 4096 {
		t.Errorf("recovered image is %d bytes, want 4096", len(img))
	}
	if m.Retries.Load() != 2 {
		t.Errorf("retries = %d, want 2", m.Retries.Load())
	}
}

func TestDownloadDigestMismatchDetectedAndRetried(t *testing.T) {
	client, m := flakyServer(t, "corrupt", 1)
	img, err := client.Download(context.Background(), "com.corrupt.app")
	if err != nil {
		t.Fatalf("Download did not recover from corruption: %v", err)
	}
	if img[0] != 'a' {
		t.Error("recovered image still corrupt")
	}
	if m.Retries.Load() != 1 {
		t.Errorf("retries = %d, want 1", m.Retries.Load())
	}
}

func TestDownloadServerErrorRetried(t *testing.T) {
	client, m := flakyServer(t, "status", 3)
	if _, err := client.Download(context.Background(), "com.unsteady.app"); err != nil {
		t.Fatalf("Download did not outlast 3 consecutive 503s: %v", err)
	}
	if m.Retries.Load() != 3 {
		t.Errorf("retries = %d, want 3", m.Retries.Load())
	}
}

func TestDownloadTruncationWithoutRetryIsRetryableError(t *testing.T) {
	h := &flakyAPKHandler{failures: make(map[string]int), n: 1000, payload: bytes.Repeat([]byte("apk!"), 1024), mode: "corrupt"}
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client()) // no retry policy
	_, err := client.Download(context.Background(), "com.x")
	if err == nil {
		t.Fatal("corrupted download succeeded")
	}
	if !strings.Contains(err.Error(), "digest mismatch") {
		t.Errorf("err = %v, want a digest mismatch", err)
	}
	if !retry.IsRetryable(err) {
		t.Error("digest mismatch not classified retryable")
	}
}
