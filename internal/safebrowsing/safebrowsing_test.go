package safebrowsing

import "testing"

func TestListLookup(t *testing.T) {
	l := NewList()
	l.Add("evil.example", Malware)
	l.Add("phish.example", SocialEngineering)
	cases := []struct {
		url  string
		want Verdict
	}{
		{"https://evil.example/landing", Malware},
		{"https://sub.deep.evil.example/x", Malware}, // subdomain coverage
		{"https://phish.example/", SocialEngineering},
		{"https://good.example/", Safe},
		{"http://EVIL.example/", Malware}, // case-insensitive
		{"::not a url::", Safe},
	}
	for _, c := range cases {
		if got := l.Check(c.url); got != c.want {
			t.Errorf("Check(%q) = %s, want %s", c.url, got, c.want)
		}
	}
	l.Remove("evil.example")
	if l.Check("https://evil.example/") != Safe {
		t.Error("Remove had no effect")
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		Safe: "SAFE", Malware: "MALWARE",
		SocialEngineering: "SOCIAL_ENGINEERING", UnwantedSoftware: "UNWANTED_SOFTWARE",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %s", v, v.String())
		}
	}
	if Safe.Blocked() || !Malware.Blocked() {
		t.Error("Blocked() wrong")
	}
}
