// Package safebrowsing models Google Safe Browsing (§4.1.1): real-time
// threat intelligence that browsers — and therefore Custom Tabs — always
// consult, but that WebViews can have disabled by the embedding app. The
// paper argues this asymmetry is one reason ad SDKs' WebView use exposes
// users: malicious ad landing pages that a browser would block load
// silently in a WebView with Safe Browsing turned off.
package safebrowsing

import (
	"net/url"
	"strings"
	"sync"
)

// Verdict is a Safe Browsing lookup result.
type Verdict int

// Verdicts.
const (
	Safe Verdict = iota
	Malware
	SocialEngineering // phishing
	UnwantedSoftware
)

func (v Verdict) String() string {
	switch v {
	case Malware:
		return "MALWARE"
	case SocialEngineering:
		return "SOCIAL_ENGINEERING"
	case UnwantedSoftware:
		return "UNWANTED_SOFTWARE"
	default:
		return "SAFE"
	}
}

// List is a threat list: host (or host-suffix) → verdict. Lookups are
// concurrency-safe; updates mirror the incremental list updates the real
// service pushes.
type List struct {
	mu      sync.RWMutex
	entries map[string]Verdict
}

// NewList returns an empty threat list.
func NewList() *List {
	return &List{entries: make(map[string]Verdict)}
}

// Add flags a host (and its subdomains) with a verdict.
func (l *List) Add(host string, v Verdict) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[strings.ToLower(host)] = v
}

// Remove clears a host's entry.
func (l *List) Remove(host string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.entries, strings.ToLower(host))
}

// Check looks up a URL. Unknown hosts are Safe; flagged hosts cover their
// subdomains, as real list matching does.
func (l *List) Check(rawURL string) Verdict {
	u, err := url.Parse(rawURL)
	if err != nil {
		return Safe
	}
	host := strings.ToLower(u.Hostname())
	l.mu.RLock()
	defer l.mu.RUnlock()
	for host != "" {
		if v, ok := l.entries[host]; ok {
			return v
		}
		dot := strings.IndexByte(host, '.')
		if dot < 0 {
			return Safe
		}
		host = host[dot+1:]
	}
	return Safe
}

// Blocked reports whether a verdict warrants an interstitial.
func (v Verdict) Blocked() bool { return v != Safe }

// BlockedError is returned by navigation layers when Safe Browsing
// intercepts a load.
type BlockedError struct {
	URL     string
	Verdict Verdict
}

func (e *BlockedError) Error() string {
	return "safebrowsing: blocked " + e.URL + " (" + e.Verdict.String() + ")"
}
