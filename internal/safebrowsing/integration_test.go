package safebrowsing_test

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"repro/internal/customtabs"
	"repro/internal/internet"
	"repro/internal/safebrowsing"
	"repro/internal/webview"
)

// maliciousAdNet builds an internet hosting a malicious ad landing page
// (the Liu et al. scenario of §4.1.1).
func maliciousAdNet() (*internet.Internet, *safebrowsing.List) {
	net := internet.New()
	net.RegisterFunc("malicious-ads.example", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html><head><title>You won!</title></head><body>install this apk</body></html>"))
	})
	list := safebrowsing.NewList()
	list.Add("malicious-ads.example", safebrowsing.Malware)
	return net, list
}

// The paper's asymmetry: a Custom Tab always blocks listed URLs; an ad
// SDK's WebView can turn Safe Browsing off and load them.
func TestCustomTabAlwaysBlocks(t *testing.T) {
	net, list := maliciousAdNet()
	b := customtabs.NewBrowser("chrome", nil)
	b.Client.Transport = net
	b.SafeBrowsing = list
	var blocked *safebrowsing.BlockedError
	_, err := b.LaunchURL(context.Background(), customtabs.Intent{}, "https://malicious-ads.example/win")
	if !errors.As(err, &blocked) {
		t.Fatalf("CT loaded a listed URL: %v", err)
	}
	if blocked.Verdict != safebrowsing.Malware {
		t.Errorf("verdict = %s", blocked.Verdict)
	}
}

func TestWebViewBlocksOnlyWhileEnabled(t *testing.T) {
	net, list := maliciousAdNet()
	wv := webview.New(webview.Config{
		ID: "wv", AppPackage: "com.adhost.app",
		Client: net.Client(), SafeBrowsing: list,
	})
	wv.GetSettings().JavaScriptEnabled = true

	// Default: Safe Browsing on -> blocked.
	var blocked *safebrowsing.BlockedError
	err := wv.LoadURL(context.Background(), "https://malicious-ads.example/win")
	if !errors.As(err, &blocked) {
		t.Fatalf("WebView with SB on loaded a listed URL: %v", err)
	}

	// The ad SDK disables Safe Browsing -> the page loads.
	wv.GetSettings().SafeBrowsingEnabled = false
	if err := wv.LoadURL(context.Background(), "https://malicious-ads.example/win"); err != nil {
		t.Fatalf("WebView with SB off failed: %v", err)
	}
	if wv.Page().Doc.Title != "You won!" {
		t.Errorf("title = %q", wv.Page().Doc.Title)
	}
}
