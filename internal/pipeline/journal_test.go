package pipeline

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind("cfg-1"); err != nil {
		t.Fatal(err)
	}
	a1 := Analysis{UsesWebView: true, Methods: []string{"loadUrl"}}
	a2 := Analysis{Broken: true}
	if err := j.Record("com.a", a1); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("com.b", a2); err != nil {
		t.Fatal(err)
	}
	// Recording the same package again is a no-op, not a duplicate line.
	if err := j.Record("com.a", Analysis{}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Bind("cfg-1"); err != nil {
		t.Fatalf("rebinding the same key: %v", err)
	}
	if j2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", j2.Len())
	}
	if an, ok := j2.Lookup("com.a"); !ok || !reflect.DeepEqual(an, a1) {
		t.Errorf("com.a = %+v, %v", an, ok)
	}
	if an, ok := j2.Lookup("com.b"); !ok || !an.Broken {
		t.Errorf("com.b = %+v, %v", an, ok)
	}
	pkgs := j2.Packages()
	sort.Strings(pkgs)
	if !reflect.DeepEqual(pkgs, []string{"com.a", "com.b"}) {
		t.Errorf("Packages = %v", pkgs)
	}
}

func TestJournalBindRefusesDifferentKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Bind("cfg-1"); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Bind("cfg-2"); err == nil {
		t.Fatal("journal rebound across configurations")
	}
}

func TestJournalToleratesPartialTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	content := `{"v":1,"key":"cfg"}` + "\n" +
		`{"pkg":"com.done","an":{"UsesWebView":true,"UsesCT":false,"Methods":null,"MethodsViaSDK":null,"WebViewSDKs":null,"CTSDKs":null,"Subclasses":null,"UnlabeledWebViewPackages":0}}` + "\n" +
		`{"pkg":"com.cut","an":{"UsesWebV` // killed mid-append
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("partial trailing line rejected: %v", err)
	}
	defer j.Close()
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (the torn entry must not count)", j.Len())
	}
	if _, ok := j.Lookup("com.cut"); ok {
		t.Error("torn entry was loaded")
	}
	// The torn entry's package can be re-recorded after resuming.
	if err := j.Bind("cfg"); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("com.cut", Analysis{}); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRejectsGarbageInTheMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	content := `{"v":1,"key":"cfg"}` + "\n" +
		"this is not json\n" +
		`{"pkg":"com.a","an":{}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

func TestJournalRejectsBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	// A file whose first line is an entry, not a header: refuse it rather
	// than replaying entries of unknown provenance. Two lines, so the
	// first is judged strictly.
	content := `{"pkg":"com.a","an":{}}` + "\n" + `{"pkg":"com.b","an":{}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenJournal(path)
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("err = %v, want a bad-header complaint", err)
	}
}
