// Telemetry determinism: with seed-derived timings, the pipeline's metrics
// snapshot and span trace are pure functions of (corpus, config, seeds) —
// independent of worker count, goroutine scheduling, and even of injected
// faults being retried away. These are the invariants the CI smoke job and
// the -metrics-out/-trace-out flags rely on.
package pipeline_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// telemetryRun executes one pipeline run over the chaos corpus with a
// fresh hub and returns the canonical metrics JSON and trace JSONL it
// emitted. With faulted, the backends inject 10% transient errors
// (absorbed by retries; no breaker — breaker transitions are
// scheduling-dependent and excluded from determinism guarantees).
func telemetryRun(t *testing.T, c *corpus.Corpus, workers int, faulted bool) (hub *telemetry.Hub, metrics, trace string) {
	t.Helper()
	hub = telemetry.New(telemetry.Options{Timing: telemetry.SeededTiming{Seed: 11}, Tracing: true})
	var repo pipeline.Repository = newChaosRepo(c)
	var meta pipeline.MetadataSource = &chaosMeta{c: c}
	cfg := pipeline.Config{
		MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
		Workers: workers, Telemetry: hub,
	}
	if faulted {
		fcfg := faults.Config{Seed: 7, ErrorRate: 0.1, Telemetry: hub}
		repo = faults.NewRepository(repo, fcfg)
		meta = faults.NewMetadataSource(meta, fcfg)
		cfg.Retry = chaosPolicy(&retry.Metrics{})
	}
	p := pipeline.New(repo, meta, cfg)
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatalf("run (workers=%d faulted=%v): %v", workers, faulted, err)
	}
	var mb, tb bytes.Buffer
	if err := hub.Registry().WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	if err := hub.Tracer().WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	return hub, mb.String(), tb.String()
}

// TestTelemetrySnapshotScheduleIndependent runs the same corpus
// sequentially and with 4 workers: the metrics snapshot and the trace
// must be byte-identical — worker count and goroutine interleaving leave
// no residue in the telemetry.
func TestTelemetrySnapshotScheduleIndependent(t *testing.T) {
	c := chaosCorpus(t)
	_, seqMetrics, seqTrace := telemetryRun(t, c, 1, false)
	_, parMetrics, parTrace := telemetryRun(t, c, 4, false)
	if seqMetrics != parMetrics {
		t.Errorf("metrics diverge between workers=1 and workers=4:\n--- seq ---\n%s\n--- par ---\n%s", seqMetrics, parMetrics)
	}
	if seqTrace != parTrace {
		t.Errorf("traces diverge between workers=1 and workers=4")
	}
	if seqMetrics == "" || seqTrace == "" {
		t.Fatal("telemetry outputs empty — instrumentation did not fire")
	}
}

// TestTelemetryFaultedRunDeterministic repeats a faulted run (PR 3 chaos
// harness: seeded transient errors on both backends, retries absorbing
// them) and asserts byte-identical telemetry, proving fault draws, retry
// counts and injected-fault counters are all schedule-free functions of
// their seeds.
func TestTelemetryFaultedRunDeterministic(t *testing.T) {
	c := chaosCorpus(t)
	hub, m1, t1 := telemetryRun(t, c, 4, true)
	_, m2, t2 := telemetryRun(t, c, 4, true)
	if m1 != m2 {
		t.Errorf("faulted metrics diverge across identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", m1, m2)
	}
	if t1 != t2 {
		t.Errorf("faulted traces diverge across identical runs")
	}

	// The faults must actually have fired and been retried away.
	snap := hub.Registry().Snapshot()
	if n := snap.Family("faults_injected_total").Total(); n == 0 {
		t.Error("faults_injected_total = 0 — injection never fired")
	}
	if n := snap.Family("retry_retries_total").Total(); n == 0 {
		t.Error("retry_retries_total = 0 — retries never mirrored into the registry")
	}
	if got, want := snap.Family("retry_attempts_total").Total(),
		snap.Family("retry_retries_total").Total(); got <= want {
		t.Errorf("retry_attempts_total = %d, want > retries (%d)", got, want)
	}
}
