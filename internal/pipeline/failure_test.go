package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/playstore"
)

// flakyRepo wraps in-memory corpus data with injectable failures.
type flakyRepo struct {
	c *corpus.Corpus
	// failEveryNth makes every n-th download fail (0 = never).
	failEveryNth int64
	calls        atomic.Int64
	listErr      error
}

func (r *flakyRepo) List(ctx context.Context) ([]string, error) {
	if r.listErr != nil {
		return nil, r.listErr
	}
	var out []string
	for _, s := range r.c.Apps {
		out = append(out, s.Package)
	}
	return out, nil
}

func (r *flakyRepo) Download(ctx context.Context, pkg string) ([]byte, error) {
	n := r.calls.Add(1)
	if r.failEveryNth > 0 && n%r.failEveryNth == 0 {
		return nil, fmt.Errorf("flaky: transient download failure for %s", pkg)
	}
	spec := r.c.AppByPackage(pkg)
	if spec == nil {
		return nil, fmt.Errorf("flaky: unknown %s", pkg)
	}
	return corpus.BuildAPK(spec)
}

// memMeta serves metadata straight from specs.
type memMeta struct {
	c       *corpus.Corpus
	failPkg string
}

func (m *memMeta) Metadata(ctx context.Context, pkg string) (playstore.Metadata, error) {
	if pkg == m.failPkg {
		return playstore.Metadata{}, fmt.Errorf("metadata backend exploded for %s", pkg)
	}
	spec := m.c.AppByPackage(pkg)
	if spec == nil || !spec.OnPlayStore {
		return playstore.Metadata{}, fmt.Errorf("%w: %s", playstore.ErrNotFound, pkg)
	}
	return playstore.Metadata{
		Package: spec.Package, Title: spec.Title, Category: spec.PlayCategory,
		Downloads: spec.Downloads, LastUpdated: spec.LastUpdated,
	}, nil
}

func failureCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 2500})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPipelineInMemoryBackends(t *testing.T) {
	c := failureCorpus(t)
	p := New(&flakyRepo{c: c}, &memMeta{c: c},
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff})
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Funnel.Analyzed != c.Counts.Analyzed {
		t.Errorf("analyzed = %d, want %d", res.Funnel.Analyzed, c.Counts.Analyzed)
	}
}

func TestPipelinePropagatesDownloadFailure(t *testing.T) {
	c := failureCorpus(t)
	p := New(&flakyRepo{c: c, failEveryNth: 5}, &memMeta{c: c},
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Workers: 3})
	_, err := p.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "transient download failure") {
		t.Errorf("err = %v, want transient download failure", err)
	}
}

func TestPipelinePropagatesListFailure(t *testing.T) {
	c := failureCorpus(t)
	p := New(&flakyRepo{c: c, listErr: errors.New("snapshot unavailable")}, &memMeta{c: c},
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff})
	if _, err := p.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "snapshot unavailable") {
		t.Errorf("err = %v", err)
	}
}

func TestPipelinePropagatesMetadataBackendFailure(t *testing.T) {
	c := failureCorpus(t)
	// Pick a real package so the failure hits mid-stream; ErrNotFound is
	// tolerated but other errors must abort.
	victim := c.Apps[len(c.Apps)/2].Package
	p := New(&flakyRepo{c: c}, &memMeta{c: c, failPkg: victim},
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Workers: 2})
	if _, err := p.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Errorf("err = %v", err)
	}
}

func TestPipelineContextTimeout(t *testing.T) {
	c := failureCorpus(t)
	p := New(&flakyRepo{c: c}, &slowMeta{c: c},
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Run(ctx); err == nil {
		t.Error("timed-out run succeeded")
	}
}

type slowMeta struct{ c *corpus.Corpus }

func (m *slowMeta) Metadata(ctx context.Context, pkg string) (playstore.Metadata, error) {
	select {
	case <-time.After(2 * time.Millisecond):
	case <-ctx.Done():
		return playstore.Metadata{}, ctx.Err()
	}
	return (&memMeta{c: m.c}).Metadata(ctx, pkg)
}

// The concurrent pipeline must be deterministic: two runs over the same
// corpus yield identical sorted per-app results regardless of worker
// scheduling.
func TestPipelineDeterministicUnderConcurrency(t *testing.T) {
	c := failureCorpus(t)
	run := func(workers int) *Result {
		p := New(&flakyRepo{c: c}, &memMeta{c: c},
			Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Workers: workers})
		res, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(8)
	if len(a.Apps) != len(b.Apps) {
		t.Fatalf("app counts differ: %d vs %d", len(a.Apps), len(b.Apps))
	}
	for i := range a.Apps {
		x, y := a.Apps[i], b.Apps[i]
		if x.Package != y.Package || x.UsesWebView != y.UsesWebView || x.UsesCT != y.UsesCT ||
			len(x.WebViewSDKs) != len(y.WebViewSDKs) || len(x.Methods) != len(y.Methods) {
			t.Fatalf("app %d differs between worker counts:\n1: %+v\n8: %+v", i, x, y)
		}
	}
}
