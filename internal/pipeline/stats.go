package pipeline

import (
	"fmt"
	"strings"
	"time"
)

// StageStats describes one streaming stage of a run.
type StageStats struct {
	// Wall is the time from pipeline start until the stage drained — with
	// overlapping stages the differences between stages, not the sum,
	// describe the run.
	Wall time.Duration
	// In counts items entering the stage, Out items it passed downstream
	// (or, for Analyze, completed successfully).
	In  int
	Out int
	// Quarantined counts packages this stage abandoned after retries;
	// they appear in Result.Quarantined rather than aborting the run.
	Quarantined int
}

// Stats instruments a pipeline run: per-stage wall time and item counts,
// cache traffic, and the high-water mark of APK bytes held in memory. It
// is how the streaming pipeline's behaviour is observed rather than
// asserted.
type Stats struct {
	// List covers the snapshot fetch (serial, before streaming starts).
	List StageStats
	// Metadata covers store-metadata fetch + selection filtering.
	Metadata StageStats
	// Download covers APK fetch and cache lookup. Out counts images handed
	// to analysis, i.e. cache misses; hits skip the Analyze stage.
	Download StageStats
	// Analyze covers decompile → parse → call graph → attribution. In is
	// the number of cache misses analysed; Out excludes broken APKs.
	Analyze StageStats
	// Lint covers the WebView misconfiguration stage over the retained
	// parsed sources (all zero when linting is off or every app hit the
	// cache).
	Lint StageStats
	// LintFindings counts the findings produced by the lint stage this run
	// (cache hits excluded: their findings were produced by an earlier run).
	LintFindings int
	// URLs covers the URL-extraction stage over the retained call graph
	// (all zero when the stage is off or every app hit the cache).
	URLs StageStats
	// URLEndpoints counts the endpoints extracted by the URL stage this run
	// (cache hits excluded, as with LintFindings).
	URLEndpoints int
	// Total is the end-to-end wall time of Run.
	Total time.Duration

	// CacheHits / CacheMisses count content-addressed result-cache
	// lookups (both zero when no cache is configured).
	CacheHits   int
	CacheMisses int

	// Retries counts backoff re-attempts performed during this run by the
	// configured retry policy (zero when Config.Retry or its Metrics are
	// unset).
	Retries int64
	// JournalSkips counts packages replayed from the checkpoint journal
	// instead of being downloaded and analysed; JournalErrors counts
	// best-effort journal appends that failed (the run continues).
	JournalSkips  int
	JournalErrors int

	// PeakInFlightBytes is the high-water mark of APK image bytes held by
	// the download and analyze stages simultaneously — bounded by the
	// Workers largest images, not the corpus size.
	PeakInFlightBytes int64
}

// QuarantinedTotal sums the per-stage quarantine counters.
func (s *Stats) QuarantinedTotal() int {
	return s.Metadata.Quarantined + s.Download.Quarantined + s.Analyze.Quarantined
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (s *Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders the stats as a compact multi-line summary.
func (s *Stats) String() string {
	var sb strings.Builder
	row := func(name string, st StageStats) {
		fmt.Fprintf(&sb, "  %-8s wall=%-12v in=%-6d out=%d", name, st.Wall.Round(time.Microsecond), st.In, st.Out)
		if st.Quarantined > 0 {
			fmt.Fprintf(&sb, " quarantined=%d", st.Quarantined)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "pipeline stats (total %v):\n", s.Total.Round(time.Microsecond))
	row("list", s.List)
	row("metadata", s.Metadata)
	row("download", s.Download)
	row("analyze", s.Analyze)
	if s.Lint.In > 0 || s.Lint.Wall > 0 {
		row("lint", s.Lint)
		fmt.Fprintf(&sb, "  lint     findings=%d\n", s.LintFindings)
	}
	if s.URLs.In > 0 || s.URLs.Wall > 0 {
		row("urls", s.URLs)
		fmt.Fprintf(&sb, "  urls     endpoints=%d\n", s.URLEndpoints)
	}
	fmt.Fprintf(&sb, "  cache    hits=%d misses=%d rate=%.1f%%\n",
		s.CacheHits, s.CacheMisses, 100*s.CacheHitRate())
	if s.Retries > 0 || s.QuarantinedTotal() > 0 || s.JournalSkips > 0 || s.JournalErrors > 0 {
		fmt.Fprintf(&sb, "  faults   retries=%d quarantined=%d journal-skips=%d journal-errors=%d\n",
			s.Retries, s.QuarantinedTotal(), s.JournalSkips, s.JournalErrors)
	}
	fmt.Fprintf(&sb, "  memory   peak in-flight APK bytes=%d\n", s.PeakInFlightBytes)
	return sb.String()
}
