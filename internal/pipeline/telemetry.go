package pipeline

import (
	"sync/atomic"

	"repro/internal/resultcache"
	"repro/internal/retry"
	"repro/internal/telemetry"
)

// Metric families the pipeline maintains. Every counter here is updated
// with one lock-free atomic add on the hot path; Stats is derived from
// them when Run finishes, so the bespoke mutex-guarded stat plumbing the
// streaming stages used to carry is gone and a live /metrics scrape and
// the end-of-run Stats always agree.
const (
	famStageItems   = "pipeline_stage_items_total"
	famStageQuar    = "pipeline_stage_quarantined_total"
	famStageLatency = "pipeline_stage_latency_seconds"
	famAPKBytes     = "pipeline_apk_bytes"
	famInFlight     = "pipeline_inflight_bytes"
	famCache        = "pipeline_cache_total"
	famJournal      = "pipeline_journal_total"
	famLintFindings = "pipeline_lint_findings_total"
	famURLEndpoints = "pipeline_url_endpoints_total"
)

// runMetrics resolves every handle one Run updates. The hub may be shared
// across runs (and with the crawler), so Stats deltas are computed against
// the counter values captured at Run start.
type runMetrics struct {
	hub *telemetry.Hub
	// tracePrefix namespaces per-APK trace ids (Config.TracePrefix).
	tracePrefix string

	metaIn, metaOut *telemetry.Counter
	dlIn, dlOut     *telemetry.Counter
	anIn, anOut     *telemetry.Counter
	lintIn, lintOut *telemetry.Counter
	urlsIn, urlsOut *telemetry.Counter

	quarMeta, quarDL, quarAn *telemetry.Counter

	cacheHits, cacheMisses      *telemetry.Counter
	journalSkips, journalErrors *telemetry.Counter
	lintFindings                *telemetry.Counter
	urlEndpoints                *telemetry.Counter

	metaLat, dlLat, anLat, lintLat, urlsLat *telemetry.Histogram
	apkBytes                                *telemetry.Histogram

	inflight *telemetry.Gauge
	// peak is the in-flight high-water mark. It is scheduling-dependent —
	// which downloads overlap varies run to run — so it lives in Stats
	// only, never in the registry, keeping deterministic-mode snapshots
	// byte-identical across runs.
	peak atomic.Int64

	start statsBase
}

// statsBase is the counter baseline captured at Run start.
type statsBase struct {
	metaIn, metaOut, dlIn, dlOut, anIn, anOut, lintIn, lintOut int64
	urlsIn, urlsOut                                            int64
	quarMeta, quarDL, quarAn                                   int64
	cacheHits, cacheMisses                                     int64
	journalSkips, journalErrors                                int64
	lintFindings                                               int64
	urlEndpoints                                               int64
}

// newRunMetrics builds the handle set against hub, or against a fresh
// private hub when the run has no telemetry configured — the stages then
// update real counters either way and never branch on instrumentation.
func newRunMetrics(hub *telemetry.Hub, tracePrefix string) *runMetrics {
	if hub == nil {
		hub = telemetry.New(telemetry.Options{})
	}
	items := func(stage, dir string) *telemetry.Counter {
		return hub.Counter(famStageItems, "items entering (in) and leaving (out) each streaming stage", "stage", stage, "dir", dir)
	}
	quar := func(stage string) *telemetry.Counter {
		return hub.Counter(famStageQuar, "packages abandoned after retries, by failing stage", "stage", stage)
	}
	lat := func(stage string) *telemetry.Histogram {
		return hub.Histogram(famStageLatency, "per-item stage latency in seconds", nil, "stage", stage)
	}
	cache := func(result string) *telemetry.Counter {
		return hub.Counter(famCache, "content-addressed result-cache lookups by outcome", "result", result)
	}
	journal := func(event string) *telemetry.Counter {
		return hub.Counter(famJournal, "checkpoint-journal events (skip = package replayed, error = append failed)", "event", event)
	}
	m := &runMetrics{
		hub:         hub,
		tracePrefix: tracePrefix,
		metaIn:      items("metadata", "in"),
		metaOut:     items("metadata", "out"),
		dlIn:        items("download", "in"),
		dlOut:       items("download", "out"),
		anIn:        items("analyze", "in"),
		anOut:       items("analyze", "out"),
		lintIn:      items("lint", "in"),
		lintOut:     items("lint", "out"),
		urlsIn:      items("urls", "in"),
		urlsOut:     items("urls", "out"),

		quarMeta: quar("metadata"),
		quarDL:   quar("download"),
		quarAn:   quar("analyze"),

		cacheHits:     cache("hit"),
		cacheMisses:   cache("miss"),
		journalSkips:  journal("skip"),
		journalErrors: journal("error"),
		lintFindings:  hub.Counter(famLintFindings, "lint findings produced this run (cache hits excluded)"),
		urlEndpoints:  hub.Counter(famURLEndpoints, "URL endpoints extracted this run (cache hits excluded)"),

		metaLat:  lat("metadata"),
		dlLat:    lat("download"),
		anLat:    lat("analyze"),
		lintLat:  lat("lint"),
		urlsLat:  lat("urls"),
		apkBytes: hub.Histogram(famAPKBytes, "downloaded APK image sizes in bytes", telemetry.DefaultSizeBuckets),

		inflight: hub.Gauge(famInFlight, "APK image bytes currently held by the download and analyze stages"),
	}
	m.start = m.base()
	return m
}

func (m *runMetrics) base() statsBase {
	return statsBase{
		metaIn: m.metaIn.Value(), metaOut: m.metaOut.Value(),
		dlIn: m.dlIn.Value(), dlOut: m.dlOut.Value(),
		anIn: m.anIn.Value(), anOut: m.anOut.Value(),
		lintIn: m.lintIn.Value(), lintOut: m.lintOut.Value(),
		urlsIn: m.urlsIn.Value(), urlsOut: m.urlsOut.Value(),
		quarMeta: m.quarMeta.Value(), quarDL: m.quarDL.Value(), quarAn: m.quarAn.Value(),
		cacheHits: m.cacheHits.Value(), cacheMisses: m.cacheMisses.Value(),
		journalSkips: m.journalSkips.Value(), journalErrors: m.journalErrors.Value(),
		lintFindings: m.lintFindings.Value(),
		urlEndpoints: m.urlEndpoints.Value(),
	}
}

// trace resolves the per-APK trace for a package, under the run's trace
// namespace. Nil (a no-op trace) when tracing is off.
func (m *runMetrics) trace(pkg string) *telemetry.Trace {
	return m.hub.Trace(m.tracePrefix + "apk:" + pkg)
}

// quarantined returns the counter for one stage's quarantine events.
func (m *runMetrics) quarantined(stage string) *telemetry.Counter {
	switch stage {
	case "metadata":
		return m.quarMeta
	case "download":
		return m.quarDL
	default:
		return m.quarAn
	}
}

// addInFlight moves the in-flight gauge by n bytes and maintains the
// run-local high-water mark.
func (m *runMetrics) addInFlight(n int64) {
	v := m.inflight.Add(n)
	for {
		p := m.peak.Load()
		if v <= p || m.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// fill derives the run's Stats counters as deltas against the baseline.
// Wall times and Retries are set by Run directly.
func (m *runMetrics) fill(s *Stats) {
	end, start := m.base(), m.start
	s.Metadata.Out = int(end.metaOut - start.metaOut)
	s.Download.In = int(end.dlIn - start.dlIn)
	s.Download.Out = int(end.dlOut - start.dlOut)
	s.Download.Quarantined = int(end.quarDL - start.quarDL)
	s.Metadata.Quarantined = int(end.quarMeta - start.quarMeta)
	s.Analyze.In = int(end.anIn - start.anIn)
	s.Analyze.Out = int(end.anOut - start.anOut)
	s.Analyze.Quarantined = int(end.quarAn - start.quarAn)
	s.Lint.In = int(end.lintIn - start.lintIn)
	s.Lint.Out = int(end.lintOut - start.lintOut)
	s.LintFindings = int(end.lintFindings - start.lintFindings)
	s.URLs.In = int(end.urlsIn - start.urlsIn)
	s.URLs.Out = int(end.urlsOut - start.urlsOut)
	s.URLEndpoints = int(end.urlEndpoints - start.urlEndpoints)
	s.CacheHits = int(end.cacheHits - start.cacheHits)
	s.CacheMisses = int(end.cacheMisses - start.cacheMisses)
	s.JournalSkips = int(end.journalSkips - start.journalSkips)
	s.JournalErrors = int(end.journalErrors - start.journalErrors)
	s.PeakInFlightBytes = m.peak.Load()
}

// instrumentShared mirrors the run's shared collaborators — result cache
// and retry metrics — into the externally provided hub, so a live scrape
// sees their traffic too. Only called with an external hub: wiring them to
// a private per-run hub would just be discarded work.
func (p *Pipeline) instrumentShared(hub *telemetry.Hub) {
	if c := p.cfg.Cache; c != nil {
		event := func(ev string) *telemetry.Counter {
			return hub.Counter("resultcache_events_total", "result-cache tier traffic by event", "event", ev)
		}
		c.SetHooks(resultcache.Hooks{
			Hits:      event("hit"),
			Misses:    event("miss"),
			MemHits:   event("mem_hit"),
			StoreHits: event("store_hit"),
			Evictions: event("evict"),
			Errors:    event("error"),
			Purged:    event("purge"),
		})
	}
	if p.cfg.Retry != nil && p.cfg.Retry.Metrics != nil {
		p.cfg.Retry.Metrics.Mirror = retry.Mirror{
			Attempts:       hub.Counter("retry_attempts_total", "operation invocations, first tries included"),
			Retries:        hub.Counter("retry_retries_total", "re-invocations after a retryable failure"),
			Failures:       hub.Counter("retry_failures_total", "operations that exhausted retries or hit a permanent error"),
			BreakerRejects: hub.Counter("retry_breaker_rejects_total", "calls refused by an open circuit breaker"),
		}
	}
}
