package pipeline

import (
	"sort"

	"repro/internal/android"
	"repro/internal/sdkindex"
)

// Aggregates condenses per-app results into the quantities the paper's
// tables and figures report.
type Aggregates struct {
	Analyzed int

	// App-level adoption (abstract, Table 7 head rows).
	WebViewApps int
	CTApps      int
	BothApps    int
	// ...and the subsets attributable to labeled ("top") SDKs.
	WebViewViaSDK int
	CTViaSDK      int
	BothViaSDK    int

	// Table 7 body: apps per WebView API method, total and via SDKs.
	MethodApps       map[string]int
	MethodViaSDKApps map[string]int

	// Table 3 measured: distinct SDKs observed using WebViews / CTs / both.
	SDKMatrix map[sdkindex.Category][3]int

	// Tables 4/5: per-SDK app counts and per-category unions.
	SDKWebViewApps map[string]int
	SDKCTApps      map[string]int
	SDKCategory    map[string]sdkindex.Category
	CategoryWVApps map[sdkindex.Category]int
	CategoryCTApps map[sdkindex.Category]int

	// Figure 3: per Play category, apps using an SDK of each type.
	PlayCategoryWV map[string]map[sdkindex.Category]int
	PlayCategoryCT map[string]map[sdkindex.Category]int
	PlayCategoryN  map[string]int

	// Figure 4: per SDK category and method, the number of apps whose SDK
	// of that category called the method (denominator: CategoryWVApps).
	HeatmapCounts map[sdkindex.Category]map[string]int

	// Custom WebView subclass statistics (§3.1.2).
	AppsWithSubclasses int

	// WebView misconfiguration prevalence (lint stage; all zero/empty when
	// linting was off).
	LintFindings     int            // total findings across all apps
	LintAppsFlagged  int            // apps with at least one finding
	LintRuleFindings map[string]int // findings per rule
	LintRuleApps     map[string]int // apps with ≥1 finding, per rule
	LintRuleViaSDK   map[string]int // findings attributed to SDK code, per rule
	LintSDKFindings  map[string]int // findings per SDK name
}

// Aggregate computes all report quantities from a pipeline result.
func Aggregate(res *Result) *Aggregates {
	ag := &Aggregates{
		Analyzed:         len(res.Apps),
		MethodApps:       make(map[string]int),
		MethodViaSDKApps: make(map[string]int),
		SDKMatrix:        make(map[sdkindex.Category][3]int),
		SDKWebViewApps:   make(map[string]int),
		SDKCTApps:        make(map[string]int),
		SDKCategory:      make(map[string]sdkindex.Category),
		CategoryWVApps:   make(map[sdkindex.Category]int),
		CategoryCTApps:   make(map[sdkindex.Category]int),
		PlayCategoryWV:   make(map[string]map[sdkindex.Category]int),
		PlayCategoryCT:   make(map[string]map[sdkindex.Category]int),
		PlayCategoryN:    make(map[string]int),
		HeatmapCounts:    make(map[sdkindex.Category]map[string]int),
		LintRuleFindings: make(map[string]int),
		LintRuleApps:     make(map[string]int),
		LintRuleViaSDK:   make(map[string]int),
		LintSDKFindings:  make(map[string]int),
	}

	sdkWV := make(map[string]bool)
	sdkCT := make(map[string]bool)

	for i := range res.Apps {
		app := &res.Apps[i]
		ag.PlayCategoryN[app.PlayCategory]++

		if app.UsesWebView {
			ag.WebViewApps++
		}
		if app.UsesCT {
			ag.CTApps++
		}
		if app.UsesWebView && app.UsesCT {
			ag.BothApps++
		}
		if len(app.WebViewSDKs) > 0 {
			ag.WebViewViaSDK++
		}
		if len(app.CTSDKs) > 0 {
			ag.CTViaSDK++
		}
		if len(app.WebViewSDKs) > 0 && len(app.CTSDKs) > 0 {
			ag.BothViaSDK++
		}
		if len(app.Subclasses) > 0 {
			ag.AppsWithSubclasses++
		}

		for _, m := range app.Methods {
			ag.MethodApps[m]++
		}
		for _, m := range app.MethodsViaSDK {
			ag.MethodViaSDKApps[m]++
		}

		if len(app.Lint) > 0 {
			ag.LintAppsFlagged++
			ag.LintFindings += len(app.Lint)
			appRules := make(map[string]bool, 4)
			for _, f := range app.Lint {
				ag.LintRuleFindings[f.Rule]++
				appRules[f.Rule] = true
				if f.SDK != "" {
					ag.LintRuleViaSDK[f.Rule]++
					ag.LintSDKFindings[f.SDK]++
				}
			}
			for r := range appRules {
				ag.LintRuleApps[r]++
			}
		}

		wvCats := make(map[sdkindex.Category]bool)
		// Per-app, per-category method sets: the Figure 4 heatmap counts an
		// app once per (category, method) no matter how many SDKs of that
		// category it embeds.
		catMethods := make(map[sdkindex.Category]map[string]bool)
		for _, hit := range app.WebViewSDKs {
			sdkWV[hit.SDK] = true
			ag.SDKCategory[hit.SDK] = hit.Category
			ag.SDKWebViewApps[hit.SDK]++
			if !wvCats[hit.Category] {
				wvCats[hit.Category] = true
				ag.CategoryWVApps[hit.Category]++
			}
			ms := catMethods[hit.Category]
			if ms == nil {
				ms = make(map[string]bool)
				catMethods[hit.Category] = ms
			}
			for _, m := range hit.Methods {
				ms[m] = true
			}
		}
		for cat, ms := range catMethods {
			hm := ag.HeatmapCounts[cat]
			if hm == nil {
				hm = make(map[string]int)
				ag.HeatmapCounts[cat] = hm
			}
			for m := range ms {
				hm[m]++
			}
		}
		ctCats := make(map[sdkindex.Category]bool)
		for _, hit := range app.CTSDKs {
			sdkCT[hit.SDK] = true
			ag.SDKCategory[hit.SDK] = hit.Category
			ag.SDKCTApps[hit.SDK]++
			if !ctCats[hit.Category] {
				ctCats[hit.Category] = true
				ag.CategoryCTApps[hit.Category]++
			}
		}

		for cat := range wvCats {
			inc2(ag.PlayCategoryWV, app.PlayCategory, cat)
		}
		for cat := range ctCats {
			inc2(ag.PlayCategoryCT, app.PlayCategory, cat)
		}
	}

	// Distinct-SDK matrix (Table 3 measured).
	for name := range sdkWV {
		cat := ag.SDKCategory[name]
		v := ag.SDKMatrix[cat]
		v[0]++
		if sdkCT[name] {
			v[2]++
		}
		ag.SDKMatrix[cat] = v
	}
	for name := range sdkCT {
		cat := ag.SDKCategory[name]
		v := ag.SDKMatrix[cat]
		v[1]++
		ag.SDKMatrix[cat] = v
	}
	return ag
}

func inc2(m map[string]map[sdkindex.Category]int, play string, cat sdkindex.Category) {
	inner := m[play]
	if inner == nil {
		inner = make(map[sdkindex.Category]int)
		m[play] = inner
	}
	inner[cat]++
}

// HeatmapRate returns the Figure 4 cell: the fraction of apps using an SDK
// of the category whose SDK code called the method.
func (ag *Aggregates) HeatmapRate(cat sdkindex.Category, method string) float64 {
	n := ag.CategoryWVApps[cat]
	if n == 0 {
		return 0
	}
	return float64(ag.HeatmapCounts[cat][method]) / float64(n)
}

// TopSDKs returns the category's SDKs ranked by app count on the given
// surface (ct=false: WebView, ct=true: CT), at most limit entries.
func (ag *Aggregates) TopSDKs(cat sdkindex.Category, ct bool, limit int) []struct {
	Name string
	Apps int
} {
	src := ag.SDKWebViewApps
	if ct {
		src = ag.SDKCTApps
	}
	type row struct {
		Name string
		Apps int
	}
	var rows []row
	for name, n := range src {
		if ag.SDKCategory[name] == cat {
			rows = append(rows, row{name, n})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Apps != rows[j].Apps {
			return rows[i].Apps > rows[j].Apps
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > limit {
		rows = rows[:limit]
	}
	out := make([]struct {
		Name string
		Apps int
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			Name string
			Apps int
		}{r.Name, r.Apps}
	}
	return out
}

// MethodOrder returns Table 7's method rows in the paper's order.
func MethodOrder() []string { return append([]string(nil), android.WebViewMethods...) }
