package pipeline

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/corpus"
)

// TestCancelMidRunNoGoroutineLeak cancels the context while the pipeline
// is mid-stream — metadata, download and analysis workers all live — and
// requires Run to return promptly with context.Canceled and every worker
// goroutine to unwind.
func TestCancelMidRunNoGoroutineLeak(t *testing.T) {
	c := failureCorpus(t)
	before := runtime.NumGoroutine()

	p := New(&flakyRepo{c: c}, &slowMeta{c: c},
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Long enough for all stages to be in flight (slowMeta throttles each
		// lookup by 2ms and there are ~2600), far shorter than a full run.
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	res, err := p.Run(ctx)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatalf("cancelled run succeeded: %+v", res.Funnel)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Run took %v to notice cancellation", elapsed)
	}

	// Workers unwind asynchronously after Run returns its error; give the
	// scheduler a moment before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
