// Chaos tests: seeded fault injection across the pipeline's layers, with
// the headline invariant that a faulted run (faults within the error
// budget, retries enabled) produces byte-identical report tables to a
// fault-free run. They live in the external test package so they can
// render through internal/report, which imports pipeline.
package pipeline_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/playstore"
	"repro/internal/report"
	"repro/internal/resultcache"
	"repro/internal/retry"
)

// chaosRepo serves APKs straight from corpus specs, recording which
// packages were downloaded.
type chaosRepo struct {
	c  *corpus.Corpus
	mu sync.Mutex
	dl map[string]int
}

func newChaosRepo(c *corpus.Corpus) *chaosRepo {
	return &chaosRepo{c: c, dl: make(map[string]int)}
}

func (r *chaosRepo) List(ctx context.Context) ([]string, error) {
	out := make([]string, 0, len(r.c.Apps))
	for _, s := range r.c.Apps {
		out = append(out, s.Package)
	}
	return out, nil
}

func (r *chaosRepo) Download(ctx context.Context, pkg string) ([]byte, error) {
	r.mu.Lock()
	r.dl[pkg]++
	r.mu.Unlock()
	spec := r.c.AppByPackage(pkg)
	if spec == nil {
		return nil, fmt.Errorf("chaos: unknown %s", pkg)
	}
	return corpus.BuildAPK(spec)
}

func (r *chaosRepo) downloaded() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.dl))
	for k, v := range r.dl {
		out[k] = v
	}
	return out
}

// chaosMeta serves metadata straight from corpus specs.
type chaosMeta struct{ c *corpus.Corpus }

func (m *chaosMeta) Metadata(ctx context.Context, pkg string) (playstore.Metadata, error) {
	spec := m.c.AppByPackage(pkg)
	if spec == nil || !spec.OnPlayStore {
		return playstore.Metadata{}, fmt.Errorf("%w: %s", playstore.ErrNotFound, pkg)
	}
	return playstore.Metadata{
		Package: spec.Package, Title: spec.Title, Category: spec.PlayCategory,
		Downloads: spec.Downloads, LastUpdated: spec.LastUpdated,
	}, nil
}

func chaosCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 2500})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func nopSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func chaosPolicy(m *retry.Metrics) *retry.Policy {
	// Enough attempts that a 10% per-call fault rate failing 8 times in a
	// row (p = 1e-8) cannot realistically quarantine anything.
	return &retry.Policy{MaxAttempts: 8, Seed: 1, Metrics: m, Sleep: nopSleep}
}

// renderTables renders every static-study table and figure — the
// byte-identical surface the chaos invariant is asserted over.
func renderTables(res *pipeline.Result) string {
	aggs := pipeline.Aggregate(res)
	var sb strings.Builder
	sb.WriteString(report.Table2(res.Funnel, 2500))
	sb.WriteString(report.Table3(aggs))
	sb.WriteString(report.TopSDKTable(aggs, false, 2500))
	sb.WriteString(report.TopSDKTable(aggs, true, 2500))
	sb.WriteString(report.Table7(aggs, 2500))
	sb.WriteString(report.Figure3(aggs))
	sb.WriteString(report.Figure4(aggs))
	return sb.String()
}

func cleanRun(t *testing.T, c *corpus.Corpus) *pipeline.Result {
	t.Helper()
	p := pipeline.New(newChaosRepo(c), &chaosMeta{c: c},
		pipeline.Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff})
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	return res
}

// TestChaosFaultedRunMatchesFaultFree is the headline invariant: a run
// over backends injecting 10% transient errors plus latency, with retry
// enabled, emits report tables byte-identical to a fault-free run — and
// proves the faults actually fired via nonzero retry counters.
func TestChaosFaultedRunMatchesFaultFree(t *testing.T) {
	c := chaosCorpus(t)
	want := renderTables(cleanRun(t, c))

	fcfg := faults.Config{
		Seed: 7, ErrorRate: 0.1,
		LatencyRate: 0.1, Latency: 200 * time.Microsecond,
	}
	m := &retry.Metrics{}
	p := pipeline.New(
		faults.NewRepository(newChaosRepo(c), fcfg),
		faults.NewMetadataSource(&chaosMeta{c: c}, fcfg),
		pipeline.Config{
			MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
			Retry: chaosPolicy(m),
		})
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	if res.Stats.Retries == 0 {
		t.Fatal("no retries recorded — the fault injection did not fire")
	}
	if len(res.Quarantined) != 0 {
		t.Errorf("retries should have absorbed every fault; quarantined: %+v", res.Quarantined)
	}
	if got := renderTables(res); got != want {
		t.Errorf("faulted run diverged from fault-free run:\n--- fault-free ---\n%s\n--- faulted ---\n%s", want, got)
	}
	t.Logf("recovered from %d transient faults via retries", res.Stats.Retries)
}

// TestChaosCacheCorruptionRecomputes aims fault injection at the
// persistent cache tier: every load is corrupted, the cache purges and
// recomputes, and the output still matches the fault-free run.
func TestChaosCacheCorruptionRecomputes(t *testing.T) {
	c := chaosCorpus(t)
	want := renderTables(cleanRun(t, c))

	blobs := resultcache.NewMemStore()
	warm := pipeline.New(newChaosRepo(c), &chaosMeta{c: c}, pipeline.Config{
		MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
		Cache: resultcache.NewPersistent[pipeline.Analysis](0, blobs, nil),
	})
	if _, err := warm.Run(context.Background()); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if blobs.Len() == 0 {
		t.Fatal("warm run stored nothing")
	}

	// Fresh LRU tier, same persistent blobs — but every load comes back
	// damaged. The cache must detect, purge and recompute every entry.
	cache := resultcache.NewPersistent[pipeline.Analysis](0,
		faults.NewStore(blobs, faults.Config{Seed: 7, CorruptRate: 1}), nil)
	cold := pipeline.New(newChaosRepo(c), &chaosMeta{c: c}, pipeline.Config{
		MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
		Cache: cache,
	})
	res, err := cold.Run(context.Background())
	if err != nil {
		t.Fatalf("corrupted-cache run: %v", err)
	}
	st := cache.Stats()
	if st.Purged == 0 {
		t.Error("no corrupt blobs purged — injection did not fire")
	}
	if st.Hits != 0 {
		t.Errorf("%d corrupted blobs served as hits", st.Hits)
	}
	if got := renderTables(res); got != want {
		t.Error("corrupted-cache run diverged from fault-free run")
	}
}

// TestChaosQuarantineKeepsRunAlive disables retries so injected faults
// land, and checks the error budget turns them into quarantined packages
// rather than a dead run — with the casualties accounted for exactly.
func TestChaosQuarantineKeepsRunAlive(t *testing.T) {
	c := chaosCorpus(t)
	fcfg := faults.Config{Seed: 11, ErrorRate: 0.05}
	p := pipeline.New(
		faults.NewRepository(newChaosRepo(c), fcfg),
		faults.NewMetadataSource(&chaosMeta{c: c}, fcfg),
		pipeline.Config{
			MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
			MaxFailureFrac: 0.2,
		})
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("run died despite a 20%% error budget: %v", err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("no quarantined packages — injection did not fire")
	}
	if got := res.Stats.QuarantinedTotal(); got != len(res.Quarantined) {
		t.Errorf("stage counters sum to %d, Quarantined holds %d", got, len(res.Quarantined))
	}
	inApps := make(map[string]bool, len(res.Apps))
	for _, a := range res.Apps {
		inApps[a.Package] = true
	}
	for _, q := range res.Quarantined {
		if q.Err == "" {
			t.Errorf("quarantine entry for %s has no error", q.Package)
		}
		if inApps[q.Package] {
			t.Errorf("%s is both quarantined and in Apps", q.Package)
		}
	}
	t.Logf("degraded-complete: %d quarantined of %d snapshot packages",
		len(res.Quarantined), res.Funnel.Snapshot)
}

// TestChaosBudgetExceededAborts: a fault rate far beyond the budget must
// abort the run with the budget violation spelled out.
func TestChaosBudgetExceededAborts(t *testing.T) {
	c := chaosCorpus(t)
	fcfg := faults.Config{Seed: 11, ErrorRate: 0.5}
	p := pipeline.New(
		faults.NewRepository(newChaosRepo(c), fcfg),
		faults.NewMetadataSource(&chaosMeta{c: c}, fcfg),
		pipeline.Config{
			MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
			MaxFailureFrac: 0.005,
		})
	_, err := p.Run(context.Background())
	if err == nil {
		t.Fatal("run survived a 50% fault rate on a 0.5% budget")
	}
	if !strings.Contains(err.Error(), "error budget exceeded") {
		t.Errorf("err = %v, want an error-budget violation", err)
	}
}

// killRepo cancels the run once the journal holds at least K completed
// packages, simulating a crash at a deterministic point of progress.
type killRepo struct {
	*chaosRepo
	j      *pipeline.Journal
	k      int
	cancel context.CancelFunc
}

func (r *killRepo) Download(ctx context.Context, pkg string) ([]byte, error) {
	if r.j.Len() >= r.k {
		r.cancel()
		return nil, ctx.Err()
	}
	return r.chaosRepo.Download(ctx, pkg)
}

// TestChaosJournalKillAndResume kills a journaled run mid-flight, resumes
// it, and checks the resumed run re-downloads zero completed packages
// while producing the same apps as an uninterrupted run.
func TestChaosJournalKillAndResume(t *testing.T) {
	c := chaosCorpus(t)
	want := cleanRun(t, c)
	path := filepath.Join(t.TempDir(), "run.journal")
	cfg := pipeline.Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff}

	// Phase 1: run until ~12 packages are journaled, then die.
	j1, err := pipeline.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	kr := &killRepo{chaosRepo: newChaosRepo(c), j: j1, k: 12, cancel: cancel}
	cfg1 := cfg
	cfg1.Journal = j1
	if _, err := pipeline.New(kr, &chaosMeta{c: c}, cfg1).Run(ctx); err == nil {
		t.Fatal("killed run reported success")
	}
	j1.Close()
	completed := j1.Len()
	if completed < 12 {
		t.Fatalf("only %d packages journaled before the kill", completed)
	}

	// Phase 2: resume over the same journal file.
	j2, err := pipeline.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != completed {
		t.Fatalf("reloaded journal holds %d packages, expected %d", j2.Len(), completed)
	}
	journaled := make(map[string]bool, completed)
	for _, pkg := range j2.Packages() {
		journaled[pkg] = true
	}
	repo2 := newChaosRepo(c)
	cfg2 := cfg
	cfg2.Journal = j2
	res, err := pipeline.New(repo2, &chaosMeta{c: c}, cfg2).Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	for pkg := range repo2.downloaded() {
		if journaled[pkg] {
			t.Errorf("resumed run re-downloaded journaled package %s", pkg)
		}
	}
	if res.Stats.JournalSkips != completed {
		t.Errorf("JournalSkips = %d, want %d", res.Stats.JournalSkips, completed)
	}
	if got, wantN := len(repo2.downloaded()), res.Funnel.Filtered-completed; got != wantN {
		t.Errorf("resumed run downloaded %d packages, want %d (filtered %d - journaled %d)",
			got, wantN, res.Funnel.Filtered, completed)
	}
	if res.Funnel != want.Funnel {
		t.Errorf("resumed funnel = %+v, want %+v", res.Funnel, want.Funnel)
	}
	if !reflect.DeepEqual(res.Apps, want.Apps) {
		t.Error("resumed run's apps differ from an uninterrupted run's")
	}
}

// TestChaosJournalRefusesForeignConfig: a journal written under one
// configuration must not be replayed under another.
func TestChaosJournalRefusesForeignConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	if err := os.WriteFile(path,
		[]byte(`{"v":1,"key":"someone-elses-fingerprint"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := pipeline.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	c := chaosCorpus(t)
	cfg := pipeline.Config{
		MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Journal: j,
	}
	if _, err := pipeline.New(newChaosRepo(c), &chaosMeta{c: c}, cfg).Run(context.Background()); err == nil {
		t.Fatal("run accepted a journal from a different configuration")
	}
}

// TestChaosJournalRefusesForeignPartition: in a sharded run the journal is
// bound to the shard partition spec too, so a worker must refuse to resume
// a journal written by a different shard — even under an identical
// analysis configuration — and a sharded run must refuse an unsharded
// journal (and vice versa).
func TestChaosJournalRefusesForeignPartition(t *testing.T) {
	c := chaosCorpus(t)
	run := func(journal *pipeline.Journal, partition string) error {
		cfg := pipeline.Config{
			MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
			Journal: journal, Partition: partition,
		}
		_, err := pipeline.New(newChaosRepo(c), &chaosMeta{c: c}, cfg).Run(context.Background())
		return err
	}

	// Write a journal as shard 0 of 4.
	path := filepath.Join(t.TempDir(), "shard.journal")
	j, err := pipeline.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(j, "0/4@deadbeef"); err != nil {
		t.Fatalf("shard 0/4 run: %v", err)
	}
	j.Close()

	cases := map[string]string{
		"different shard index":  "1/4@deadbeef",
		"different shard count":  "0/8@deadbeef",
		"different partition fn": "0/4@0ddba11",
		"unsharded run":          "",
	}
	for name, partition := range cases {
		j, err := pipeline.OpenJournal(path)
		if err != nil {
			t.Fatalf("%s: reopen: %v", name, err)
		}
		err = run(j, partition)
		j.Close()
		if err == nil {
			t.Fatalf("%s: run accepted another shard's journal", name)
		}
	}

	// Sanity: the owning shard itself still resumes cleanly.
	j2, err := pipeline.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := run(j2, "0/4@deadbeef"); err != nil {
		t.Fatalf("owning shard failed to resume its own journal: %v", err)
	}
}
