package pipeline

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/android"
	"repro/internal/androzoo"
	"repro/internal/corpus"
	"repro/internal/playstore"
	"repro/internal/sdkindex"
)

// runScale runs the full pipeline over a generated corpus served via real
// HTTP servers. Results are cached per scale: several tests share them.
var (
	runMu    sync.Mutex
	runCache = map[int]*Result{}
	genCache = map[int]*corpus.Corpus{}
)

func runPipeline(t *testing.T, scale int) (*Result, *corpus.Corpus) {
	t.Helper()
	runMu.Lock()
	defer runMu.Unlock()
	if r, ok := runCache[scale]; ok {
		return r, genCache[scale]
	}
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	azSrv := httptest.NewServer(androzoo.NewServer(c).Handler())
	t.Cleanup(azSrv.Close)
	psSrv := httptest.NewServer(playstore.NewServer(c).Handler())
	t.Cleanup(psSrv.Close)

	p := New(
		androzoo.NewClient(azSrv.URL, azSrv.Client()),
		playstore.NewClient(psSrv.URL, psSrv.Client()),
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff},
	)
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	runCache[scale] = res
	genCache[scale] = c
	return res, c
}

func TestFunnelMatchesCorpus(t *testing.T) {
	res, c := runPipeline(t, 600)
	want := c.Counts
	f := res.Funnel
	if f.Snapshot != want.Total || f.OnPlay != want.OnPlay || f.Popular != want.Popular ||
		f.Filtered != want.Filtered || f.Broken != want.Broken || f.Analyzed != want.Analyzed {
		t.Errorf("funnel = %+v, want %+v", f, want)
	}
}

func TestPerAppResultsMatchGroundTruth(t *testing.T) {
	res, c := runPipeline(t, 600)
	specs := make(map[string]*corpus.Spec)
	for _, s := range c.Filtered() {
		specs[s.Package] = s
	}
	if len(res.Apps) == 0 {
		t.Fatal("no apps analysed")
	}
	for i := range res.Apps {
		app := &res.Apps[i]
		spec := specs[app.Package]
		if spec == nil {
			t.Fatalf("analysed app %s not in ground truth", app.Package)
		}
		if app.UsesWebView != spec.UsesWebView() {
			t.Errorf("%s: UsesWebView = %v, truth %v", app.Package, app.UsesWebView, spec.UsesWebView())
		}
		if app.UsesCT != spec.UsesCT() {
			t.Errorf("%s: UsesCT = %v, truth %v", app.Package, app.UsesCT, spec.UsesCT())
		}
		if app.Downloads != spec.Downloads {
			t.Errorf("%s: downloads = %d, truth %d", app.Package, app.Downloads, spec.Downloads)
		}
	}
}

func TestSDKAttributionMatchesGroundTruth(t *testing.T) {
	res, c := runPipeline(t, 600)
	idx := sdkindex.Default()
	specs := make(map[string]*corpus.Spec)
	for _, s := range c.Filtered() {
		specs[s.Package] = s
	}
	checked := 0
	for i := range res.Apps {
		app := &res.Apps[i]
		spec := specs[app.Package]
		// Apps whose own package is an SDK prefix (e.g. Facebook's app vs
		// Facebook's SDK, both under com.facebook) legitimately attribute
		// first-party code to the vendor's SDK; skip the exact-match check.
		if _, selfMatch := idx.Lookup(app.Package); selfMatch {
			continue
		}
		// Ground-truth SDK names on the WebView side.
		want := make(map[string]bool)
		for _, u := range spec.SDKs {
			if len(u.WebViewMethods) == 0 {
				continue
			}
			if sdk, ok := idx.Lookup(u.Package); ok {
				want[sdk.Name] = true
			}
		}
		got := make(map[string]bool)
		for _, hit := range app.WebViewSDKs {
			got[hit.SDK] = true
		}
		for name := range want {
			if !got[name] {
				t.Errorf("%s: SDK %s planted but not attributed", app.Package, name)
			}
		}
		for name := range got {
			if !want[name] {
				t.Errorf("%s: SDK %s attributed but not planted", app.Package, name)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestSubclassesDetectedViaSource(t *testing.T) {
	res, _ := runPipeline(t, 600)
	ag := Aggregate(res)
	// Roughly half the SDK WebView integrations ship a custom subclass.
	if ag.AppsWithSubclasses == 0 {
		t.Error("no custom WebView subclasses detected")
	}
}

func TestAggregateAdoptionShape(t *testing.T) {
	res, _ := runPipeline(t, 600)
	ag := Aggregate(res)
	rate := func(n int) float64 { return float64(n) / float64(ag.Analyzed) }
	if r := rate(ag.WebViewApps); r < 0.45 || r > 0.65 {
		t.Errorf("WebView rate = %.3f, want ≈0.557", r)
	}
	if r := rate(ag.CTApps); r < 0.13 || r > 0.27 {
		t.Errorf("CT rate = %.3f, want ≈0.199", r)
	}
	// Table 7 ordering: loadUrl is the most common method.
	if ag.MethodApps[android.MethodLoadURL] < ag.MethodApps[android.MethodPostURL] {
		t.Error("loadUrl less common than postUrl")
	}
	// Advertising dominates the WebView SDK landscape.
	adApps := ag.CategoryWVApps[sdkindex.Advertising]
	for cat, n := range ag.CategoryWVApps {
		if cat != sdkindex.Advertising && n > adApps {
			t.Errorf("category %s (%d apps) exceeds Advertising (%d)", cat, n, adApps)
		}
	}
	// Social dominates CT usage.
	socApps := ag.CategoryCTApps[sdkindex.Social]
	for cat, n := range ag.CategoryCTApps {
		if cat != sdkindex.Social && n > socApps {
			t.Errorf("category %s (%d CT apps) exceeds Social (%d)", cat, n, socApps)
		}
	}
}

func TestHeatmapRates(t *testing.T) {
	res, _ := runPipeline(t, 600)
	ag := Aggregate(res)
	// Figure 4's headline: >45% of ad-SDK apps expose a JS bridge, >30%
	// inject JS (loose bands at reduced scale).
	if r := ag.HeatmapRate(sdkindex.Advertising, android.MethodAddJavascriptInterface); r < 0.30 || r > 0.65 {
		t.Errorf("ads addJavascriptInterface rate = %.2f", r)
	}
	// User-support SDKs always load local data.
	if r := ag.HeatmapRate(sdkindex.UserSupport, android.MethodLoadDataWithBaseURL); r < 0.9 {
		t.Errorf("user-support loadDataWithBaseURL rate = %.2f, want 1.0", r)
	}
	// Out-of-range queries are well-defined.
	if r := ag.HeatmapRate("Nonexistent", android.MethodLoadURL); r != 0 {
		t.Errorf("rate for unknown category = %v", r)
	}
}

func TestTopSDKsRanking(t *testing.T) {
	res, _ := runPipeline(t, 600)
	ag := Aggregate(res)
	top := ag.TopSDKs(sdkindex.Advertising, false, 5)
	if len(top) == 0 {
		t.Fatal("no advertising SDKs observed")
	}
	if top[0].Name != "AppLovin" {
		t.Errorf("top ad SDK = %s, want AppLovin", top[0].Name)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Apps > top[i-1].Apps {
			t.Error("TopSDKs not sorted")
		}
	}
	ct := ag.TopSDKs(sdkindex.Social, true, 3)
	if len(ct) == 0 || ct[0].Name != "Facebook" {
		t.Errorf("top social CT SDK = %+v, want Facebook", ct)
	}
}

func TestContextCancellation(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	azSrv := httptest.NewServer(androzoo.NewServer(c).Handler())
	defer azSrv.Close()
	psSrv := httptest.NewServer(playstore.NewServer(c).Handler())
	defer psSrv.Close()
	p := New(
		androzoo.NewClient(azSrv.URL, azSrv.Client()),
		playstore.NewClient(psSrv.URL, psSrv.Client()),
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Workers: 2},
	)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx); err == nil {
		t.Error("cancelled run succeeded")
	}
}
