package pipeline

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/corpus"
	"repro/internal/dalvik"
	"repro/internal/resultcache"
	"repro/internal/sdkindex"
)

// TestWarmCacheRunIdentical runs the pipeline twice over the same corpus
// sharing a result cache: the second run must hit the cache for every APK
// (broken ones included) and produce a deeply equal Result.
func TestWarmCacheRunIdentical(t *testing.T) {
	c := failureCorpus(t)
	cache := resultcache.New[Analysis](0)
	cfg := Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
		Workers: 4, Cache: cache}
	p := New(&flakyRepo{c: c}, &memMeta{c: c}, cfg)

	cold, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheHits != 0 {
		t.Errorf("cold run had %d cache hits", cold.Stats.CacheHits)
	}
	if cold.Stats.CacheMisses != cold.Funnel.Filtered {
		t.Errorf("cold misses = %d, want %d", cold.Stats.CacheMisses, cold.Funnel.Filtered)
	}

	warm, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheMisses != 0 || warm.Stats.CacheHits != warm.Funnel.Filtered {
		t.Errorf("warm run: hits=%d misses=%d, want hits=%d misses=0",
			warm.Stats.CacheHits, warm.Stats.CacheMisses, warm.Funnel.Filtered)
	}
	if rate := warm.Stats.CacheHitRate(); rate != 1.0 {
		t.Errorf("warm hit rate = %v, want 1.0", rate)
	}
	if warm.Stats.Analyze.In != 0 {
		t.Errorf("warm run analysed %d APKs, want 0", warm.Stats.Analyze.In)
	}
	if cold.Funnel != warm.Funnel {
		t.Errorf("funnels differ:\ncold %+v\nwarm %+v", cold.Funnel, warm.Funnel)
	}
	if !reflect.DeepEqual(cold.Apps, warm.Apps) {
		t.Error("warm-run apps differ from cold run")
	}
}

// TestWarmCachePersistentTier restarts the "process" (a fresh pipeline and
// LRU) over a shared persistent store and still expects a fully warm run.
func TestWarmCachePersistentTier(t *testing.T) {
	c := failureCorpus(t)
	store := resultcache.NewMemStore()
	cfg := Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Workers: 4}

	cfg.Cache = resultcache.NewPersistent[Analysis](0, store, nil)
	cold, err := New(&flakyRepo{c: c}, &memMeta{c: c}, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cfg.Cache = resultcache.NewPersistent[Analysis](0, store, nil) // empty LRU, warm store
	warm, err := New(&flakyRepo{c: c}, &memMeta{c: c}, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rate := warm.Stats.CacheHitRate(); rate != 1.0 {
		t.Errorf("warm-from-store hit rate = %v, want 1.0", rate)
	}
	if cs := cfg.Cache.Stats(); cs.StoreHits == 0 {
		t.Errorf("no persistent-tier hits: %+v", cs)
	}
	if cold.Funnel != warm.Funnel {
		t.Errorf("funnels differ:\ncold %+v\nwarm %+v", cold.Funnel, warm.Funnel)
	}
	if !reflect.DeepEqual(cold.Apps, warm.Apps) {
		t.Error("store-warm apps differ from cold run (JSON round trip not faithful)")
	}
}

// TestIndexChangeInvalidatesCache runs with one SDK index, then with a
// different one over the same cache: the second run must not serve
// attributions computed under the old catalog.
func TestIndexChangeInvalidatesCache(t *testing.T) {
	c := failureCorpus(t)
	cache := resultcache.New[Analysis](0)
	base := Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
		Workers: 4, Cache: cache}

	if _, err := New(&flakyRepo{c: c}, &memMeta{c: c}, base).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	alt := base
	alt.Index = sdkindex.NewIndex(sdkindex.Catalog()[:10])
	res, err := New(&flakyRepo{c: c}, &memMeta{c: c}, alt).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 {
		t.Errorf("run under a different index hit the old cache %d times", res.Stats.CacheHits)
	}
}

// TestStreamingBoundsInFlightImages checks the Stats invariant behind the
// memory bound: with Workers=2, no more than 2 APK images are ever held at
// once, however large the corpus.
func TestStreamingBoundsInFlightImages(t *testing.T) {
	c := failureCorpus(t)
	var maxImg int64
	for _, s := range c.Filtered() {
		img, err := corpus.BuildAPK(s)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(img)) > maxImg {
			maxImg = int64(len(img))
		}
	}
	p := New(&flakyRepo{c: c}, &memMeta{c: c},
		Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff, Workers: 2})
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PeakInFlightBytes == 0 {
		t.Fatal("peak in-flight bytes not recorded")
	}
	if res.Stats.PeakInFlightBytes > 2*maxImg {
		t.Errorf("peak in-flight bytes = %d, exceeds 2 workers × max image %d",
			res.Stats.PeakInFlightBytes, maxImg)
	}
}

// TestExcludedPackagesNotCountedUnlabeled pins the Table-3 derived stats:
// a caller from an Excluded index entry (com.google.android) is neither an
// SDK hit nor an unlabeled package, while a genuinely unknown package is
// counted unlabeled — the two must not be conflated.
func TestExcludedPackagesNotCountedUnlabeled(t *testing.T) {
	idx := sdkindex.Default()
	if sdk, ok := idx.Lookup("com.google.android.gms"); !ok || !sdk.Excluded {
		t.Fatal("fixture assumption: com.google.android must be an Excluded entry")
	}
	call := func(caller, method string) callgraph.APICall {
		return callgraph.APICall{
			Caller: dalvik.MethodRef{Class: caller + ".Widget", Name: "show", Signature: "()void"},
			Target: dalvik.MethodRef{Class: "android.webkit.WebView", Name: method, Signature: "(String)void"},
		}
	}
	usage := &callgraph.Usage{WebViewCalls: []callgraph.APICall{
		call("com.applovin.adview", "loadUrl"),    // labeled SDK
		call("com.google.android.gms", "loadUrl"), // excluded: counted nowhere
		call("com.example.mystery", "loadUrl"),    // unlabeled
		call("com.example.mystery", "evaluateJavascript"),
	}}

	an := &Analysis{}
	attributeSDKs(idx, an, usage)

	if got := an.UnlabeledWebViewPackages; got != 1 {
		t.Errorf("UnlabeledWebViewPackages = %d, want 1 (excluded must not count)", got)
	}
	if len(an.WebViewSDKs) != 1 || an.WebViewSDKs[0].SDK != "AppLovin" {
		t.Errorf("WebViewSDKs = %+v, want exactly AppLovin", an.WebViewSDKs)
	}
}
