// Package pipeline implements the paper's large-scale static-analysis
// pipeline (Figure 1): fetch the AndroZoo snapshot, collect Play Store
// metadata, filter to popular actively-maintained apps, download each APK,
// decompile it, parse the Java source for custom WebView subclasses, build
// the call graph, traverse it from every entry point recording WebView and
// Custom Tabs usage, exclude deep-link-hosted first-party content, and
// label the calling packages with the SDK index.
//
// The pipeline is concurrent: a bounded worker pool analyses APKs in
// parallel, one app per task, and the collector aggregates results
// deterministically (sorted by package) regardless of completion order.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/decompiler"
	"repro/internal/javaparser"
	"repro/internal/playstore"
	"repro/internal/sdkindex"

	"repro/internal/android"
)

// Repository is the APK source (AndroZoo).
type Repository interface {
	List(ctx context.Context) ([]string, error)
	Download(ctx context.Context, pkg string) ([]byte, error)
}

// MetadataSource is the app-store metadata service (Play Store).
type MetadataSource interface {
	Metadata(ctx context.Context, pkg string) (playstore.Metadata, error)
}

// Config parameterises a run.
type Config struct {
	// MinDownloads and UpdatedAfter are the selection filter (§3.1.1).
	MinDownloads int64
	UpdatedAfter time.Time
	// Workers bounds analysis concurrency; 0 means GOMAXPROCS.
	Workers int
	// Index labels calling packages; nil uses the default catalog.
	Index *sdkindex.Index
}

// Pipeline wires the stages together.
type Pipeline struct {
	repo Repository
	meta MetadataSource
	cfg  Config
}

// New constructs a pipeline over the given services.
func New(repo Repository, meta MetadataSource, cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Index == nil {
		cfg.Index = sdkindex.Default()
	}
	return &Pipeline{repo: repo, meta: meta, cfg: cfg}
}

// SDKHit is one SDK observed driving a surface in one app.
type SDKHit struct {
	SDK      string
	Category sdkindex.Category
	// Methods are the WebView API methods this SDK's code called in this
	// app (empty for pure CT hits).
	Methods []string
	CT      bool
}

// AppResult is the per-app outcome of static analysis.
type AppResult struct {
	Package      string
	Title        string
	PlayCategory string
	Downloads    int64
	Broken       bool

	UsesWebView bool
	UsesCT      bool
	// Methods are the distinct WebView API methods reachable anywhere in
	// the app (SDK or first-party), after deep-link exclusion.
	Methods []string
	// MethodsViaSDK are the methods called from labeled SDK packages.
	MethodsViaSDK []string
	// WebViewSDKs / CTSDKs name the labeled SDKs driving each surface.
	WebViewSDKs []SDKHit
	CTSDKs      []SDKHit
	// Subclasses are custom WebView classes found by decompiling and
	// parsing the Java source (§3.1.2).
	Subclasses []string
	// UnlabeledWebViewPackages counts calling packages no SDK-index entry
	// matched (first-party app code or unknown libraries).
	UnlabeledWebViewPackages int
}

// Funnel is the measured dataset funnel (Table 2).
type Funnel struct {
	Snapshot int // packages in the repository snapshot
	OnPlay   int // found on the Play Store
	Popular  int // download threshold passed
	Filtered int // update filter passed
	Broken   int // APKs that failed to parse
	Analyzed int // successfully analysed
}

// Result is the aggregate outcome.
type Result struct {
	Funnel Funnel
	Apps   []AppResult // analysed apps (excluding broken), sorted by package
}

// Run executes the full pipeline.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	pkgs, err := p.repo.List(ctx)
	if err != nil {
		return nil, fmt.Errorf("pipeline: list: %w", err)
	}

	res := &Result{}
	res.Funnel.Snapshot = len(pkgs)

	// Stage 1-2: metadata collection and filtering. Metadata fetches are
	// parallelised with the same worker bound as analysis.
	type metaOut struct {
		pkg string
		md  playstore.Metadata
		ok  bool
	}
	metas := make([]metaOut, len(pkgs))
	if err := p.forEach(ctx, len(pkgs), func(i int) error {
		md, err := p.meta.Metadata(ctx, pkgs[i])
		switch {
		case err == nil:
			metas[i] = metaOut{pkg: pkgs[i], md: md, ok: true}
		case errors.Is(err, playstore.ErrNotFound):
			metas[i] = metaOut{pkg: pkgs[i]}
		default:
			return err
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("pipeline: metadata: %w", err)
	}

	var selected []metaOut
	for _, m := range metas {
		if !m.ok {
			continue
		}
		res.Funnel.OnPlay++
		if m.md.Downloads < p.cfg.MinDownloads {
			continue
		}
		res.Funnel.Popular++
		if !m.md.LastUpdated.After(p.cfg.UpdatedAfter) {
			continue
		}
		res.Funnel.Filtered++
		selected = append(selected, m)
	}

	// Stage 3-5: download + analyse, bounded concurrency.
	results := make([]*AppResult, len(selected))
	var brokenCount sync.Map
	if err := p.forEach(ctx, len(selected), func(i int) error {
		m := selected[i]
		img, err := p.repo.Download(ctx, m.pkg)
		if err != nil {
			return err
		}
		ar, err := p.analyzeOne(m, img)
		if err != nil {
			if errors.Is(err, apk.ErrBroken) {
				brokenCount.Store(m.pkg, true)
				return nil
			}
			return err
		}
		results[i] = ar
		return nil
	}); err != nil {
		return nil, fmt.Errorf("pipeline: analyze: %w", err)
	}

	brokenCount.Range(func(_, _ any) bool { res.Funnel.Broken++; return true })
	for _, ar := range results {
		if ar != nil {
			res.Apps = append(res.Apps, *ar)
		}
	}
	sort.Slice(res.Apps, func(i, j int) bool { return res.Apps[i].Package < res.Apps[j].Package })
	res.Funnel.Analyzed = len(res.Apps)
	return res, nil
}

// forEach runs fn(i) for i in [0,n) on the worker pool, stopping at the
// first error or context cancellation.
func (p *Pipeline) forEach(ctx context.Context, n int, fn func(int) error) error {
	if n == 0 {
		return nil
	}
	workers := p.cfg.Workers
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		case err := <-errc:
			close(idx)
			wg.Wait()
			return err
		}
	}
	close(idx)
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
	}
	return ctx.Err()
}

// analyzeOne performs the per-APK static analysis.
func (p *Pipeline) analyzeOne(m struct {
	pkg string
	md  playstore.Metadata
	ok  bool
}, img []byte) (*AppResult, error) {
	a, err := apk.Open(img)
	if err != nil {
		return nil, err
	}

	// Decompile-and-parse round trip: custom WebView subclasses are found
	// from the reconstructed Java source, as the paper does with JADX +
	// javalang (§3.1.2).
	var subclasses []string
	for _, unit := range decompiler.Decompile(a.Dex) {
		cu, err := javaparser.Parse(unit.Source)
		if err != nil {
			// A decompilation the parser cannot read counts as broken.
			return nil, fmt.Errorf("%w: %s: %v", apk.ErrBroken, unit.Path, err)
		}
		for _, td := range cu.Types {
			if td.Extends != "" && cu.Resolve(td.Extends) == android.WebViewClass {
				subclasses = append(subclasses, cu.Resolve(td.Name))
			}
		}
	}
	sort.Strings(subclasses)

	// Call-graph traversal with deep-link exclusion (§3.1.3).
	excl := make(map[string]bool)
	for _, dl := range a.Manifest.DeepLinkActivities() {
		excl[dl] = true
	}
	g := callgraph.Build(a.Dex)
	usage := g.AnalyzeUsage(excl)

	ar := &AppResult{
		Package:      m.md.Package,
		Title:        m.md.Title,
		PlayCategory: m.md.Category,
		Downloads:    m.md.Downloads,
		UsesWebView:  usage.UsesWebView(),
		UsesCT:       usage.UsesCT(),
		Methods:      usage.MethodsCalled(),
		Subclasses:   subclasses,
	}
	p.attributeSDKs(ar, usage)
	return ar, nil
}

// attributeSDKs labels call sites with the SDK index (§3.1.4). WebView
// attribution follows the paper: the package owning the class that calls a
// content-populating method (loadUrl/loadData/loadDataWithBaseURL) is the
// WebView's driver; its other method calls ride along. CT attribution keys
// on launchUrl and CustomTabsIntent construction.
func (p *Pipeline) attributeSDKs(ar *AppResult, usage *callgraph.Usage) {
	type agg struct {
		sdk     *sdkindex.SDK
		methods map[string]bool
		loads   bool
		ct      bool
	}
	bySDK := make(map[string]*agg)
	unlabeled := make(map[string]bool)
	viaSDKMethods := make(map[string]bool)

	for _, call := range usage.WebViewCalls {
		pkg := call.CallerPackage()
		sdk, ok := p.cfg.Index.Lookup(pkg)
		if !ok || sdk.Excluded {
			unlabeled[pkg] = true
			continue
		}
		a := bySDK[sdk.Name]
		if a == nil {
			a = &agg{sdk: sdk, methods: make(map[string]bool)}
			bySDK[sdk.Name] = a
		}
		a.methods[call.Target.Name] = true
		viaSDKMethods[call.Target.Name] = true
		if android.IsLoadMethod(call.Target.Name) {
			a.loads = true
		}
	}
	for _, call := range usage.CTCalls {
		pkg := call.CallerPackage()
		sdk, ok := p.cfg.Index.Lookup(pkg)
		if !ok || sdk.Excluded {
			continue
		}
		if call.Target.Name == android.MethodLaunchURL || call.Target.Name == "<init>" || call.Target.Name == "build" {
			a := bySDK[sdk.Name]
			if a == nil {
				a = &agg{sdk: sdk, methods: make(map[string]bool)}
				bySDK[sdk.Name] = a
			}
			a.ct = true
		}
	}

	names := make([]string, 0, len(bySDK))
	for name := range bySDK {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := bySDK[name]
		if a.loads {
			hit := SDKHit{SDK: name, Category: a.sdk.Category, Methods: sortedKeys(a.methods)}
			ar.WebViewSDKs = append(ar.WebViewSDKs, hit)
		}
		if a.ct {
			ar.CTSDKs = append(ar.CTSDKs, SDKHit{SDK: name, Category: a.sdk.Category, CT: true})
		}
	}
	ar.MethodsViaSDK = sortedKeys(viaSDKMethods)
	ar.UnlabeledWebViewPackages = len(unlabeled)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
