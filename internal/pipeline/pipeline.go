// Package pipeline implements the paper's large-scale static-analysis
// pipeline (Figure 1): fetch the AndroZoo snapshot, collect Play Store
// metadata, filter to popular actively-maintained apps, download each APK,
// decompile it, parse the Java source for custom WebView subclasses, build
// the call graph, traverse it from every entry point recording WebView and
// Custom Tabs usage, exclude deep-link-hosted first-party content, and
// label the calling packages with the SDK index.
//
// The pipeline streams: metadata fetch, APK download and CPU-bound
// analysis run as overlapping bounded-channel stages, so peak memory is
// bounded by Config.Workers in-flight APK images rather than the corpus
// size, and the slowest stage — not the sum of stages — sets the wall
// time. Results are still aggregated deterministically (sorted by package)
// regardless of completion order.
//
// An optional content-addressed result cache (internal/resultcache), keyed
// by the APK payload digest plus the SDK-index fingerprint, lets a warm
// re-run over an unchanged snapshot skip the analysis stage entirely and
// an incremental snapshot re-analyse only changed APKs. Run instruments
// itself via Stats (per-stage wall time, cache traffic, peak in-flight
// bytes) threaded into the Result.
//
// At corpus scale transient failures are the norm, so the pipeline
// degrades gracefully instead of dying on the first error: network edges
// are wrapped in retries with backoff (Config.Retry), a package whose
// retries are exhausted is quarantined into Result.Quarantined while the
// run continues, and an error budget (Config.MaxFailureFrac) bounds how
// much degradation is acceptable before the run hard-aborts. An optional
// JSONL journal (Config.Journal) checkpoints completed packages so an
// interrupted run resumes without re-downloading finished work.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/decompiler"
	"repro/internal/intern"
	"repro/internal/javaparser"
	"repro/internal/playstore"
	"repro/internal/resultcache"
	"repro/internal/retry"
	"repro/internal/sdkindex"
	"repro/internal/telemetry"
	"repro/internal/urlextract"
	"repro/internal/webviewlint"

	"repro/internal/android"
)

// Repository is the APK source (AndroZoo).
type Repository interface {
	List(ctx context.Context) ([]string, error)
	Download(ctx context.Context, pkg string) ([]byte, error)
}

// MetadataSource is the app-store metadata service (Play Store).
type MetadataSource interface {
	Metadata(ctx context.Context, pkg string) (playstore.Metadata, error)
}

// Config parameterises a run.
type Config struct {
	// MinDownloads and UpdatedAfter are the selection filter (§3.1.1).
	MinDownloads int64
	UpdatedAfter time.Time
	// Workers bounds per-stage concurrency and the number of APK images
	// held in memory at once; 0 means GOMAXPROCS.
	Workers int
	// Index labels calling packages; nil uses the default catalog.
	Index *sdkindex.Index
	// Cache, when non-nil, memoises per-APK analysis results keyed by
	// content digest; a warm run over unchanged APKs skips analysis.
	Cache *resultcache.Cache[Analysis]
	// Lint, when non-nil, runs the WebView misconfiguration linter as an
	// extra streaming stage after analysis. Its rule-config fingerprint is
	// mixed into cache keys, so changing the lint configuration invalidates
	// cached results while leaving pure-analysis caches of lint-off runs
	// untouched.
	Lint *webviewlint.Analyzer
	// URLs, when non-nil, runs the interprocedural URL-extraction engine as
	// a further streaming stage over the retained call graph, recording the
	// endpoints each app's reachable code can construct. Its engine
	// fingerprint is mixed into cache keys, so a warm run over unchanged
	// APKs serves endpoints without re-extracting and an engine change
	// invalidates exactly the URL-bearing entries.
	URLs *urlextract.Extractor
	// Retry, when non-nil, wraps the snapshot listing, metadata fetches
	// and APK downloads in retries with backoff; retryable failures are
	// re-attempted before a package is quarantined.
	Retry *retry.Policy
	// MaxFailureFrac is the error budget: the fraction of snapshot
	// packages that may be quarantined (after retries) before the run
	// hard-aborts. 0 — the default — keeps the historical behaviour of
	// failing the run on the first unrecovered error; a corpus-scale run
	// might set 0.01 to tolerate up to 1% casualties and still produce a
	// complete, quantified result.
	MaxFailureFrac float64
	// Journal, when non-nil, checkpoints each completed package to a JSONL
	// file; a resumed run over the same journal skips their download and
	// analysis entirely. The journal is bound to the index/lint
	// fingerprint at Run start and refuses to resume across config changes.
	Journal *Journal
	// Partition, when non-empty, names the shard partition this run scans
	// (e.g. "2/4@<partition-hash>" from the sharded scan plane). It is
	// mixed into the journal binding — never the content-addressed cache
	// key — so a worker refuses to resume another shard's journal while
	// all shards still share one blob-tier cache.
	Partition string
	// TracePrefix, when non-empty, is prepended to every per-APK trace id
	// (the sharded fleet plane passes "<fleet-trace-id>/", so traces
	// recorded by many worker processes stitch into one namespace). It
	// shapes trace ids only — never the analysis fingerprint, the journal
	// binding, or the cache keys.
	TracePrefix string
	// Telemetry, when non-nil, receives the run's metrics (per-stage item
	// and latency families, cache and journal traffic, in-flight bytes) and,
	// if the hub has tracing enabled, one trace per downloaded APK
	// reconstructing its download→analyze→lint path. When nil the stages
	// still update counters — against a private hub — and Stats is derived
	// from them, so instrumented and uninstrumented runs take the same code
	// path. The run also mirrors Cache and Retry.Metrics traffic into the
	// hub.
	Telemetry *telemetry.Hub
}

// Pipeline wires the stages together.
type Pipeline struct {
	repo    Repository
	meta    MetadataSource
	cfg     Config
	indexFP string // cache-key component: invalidates on catalog change
	lintFP  string // cache-key component: invalidates on lint-config change
	urlFP   string // cache-key component: invalidates on extractor change
}

// New constructs a pipeline over the given services.
func New(repo Repository, meta MetadataSource, cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Index == nil {
		cfg.Index = sdkindex.Default()
	}
	p := &Pipeline{repo: repo, meta: meta, cfg: cfg, indexFP: cfg.Index.Fingerprint()}
	if cfg.Lint != nil {
		p.lintFP = cfg.Lint.Fingerprint()
	}
	if cfg.URLs != nil {
		p.urlFP = cfg.URLs.Fingerprint()
	}
	return p
}

// SDKHit is one SDK observed driving a surface in one app.
type SDKHit struct {
	SDK      string
	Category sdkindex.Category
	// Methods are the WebView API methods this SDK's code called in this
	// app (empty for pure CT hits).
	Methods []string
	CT      bool
}

// Analysis is the content-addressed part of a per-app result: everything
// derived from the APK bytes and the SDK index, and nothing from store
// metadata. It is what the result cache stores — valid for as long as the
// APK digest and index fingerprint both match, however many runs later.
type Analysis struct {
	// Broken marks an APK that failed structural parsing; broken outcomes
	// are cached too, so a warm run re-counts them without re-parsing.
	Broken bool `json:",omitempty"`

	UsesWebView bool
	UsesCT      bool
	// Methods are the distinct WebView API methods reachable anywhere in
	// the app (SDK or first-party), after deep-link exclusion.
	Methods []string
	// MethodsViaSDK are the methods called from labeled SDK packages.
	MethodsViaSDK []string
	// WebViewSDKs / CTSDKs name the labeled SDKs driving each surface.
	WebViewSDKs []SDKHit
	CTSDKs      []SDKHit
	// Subclasses are custom WebView classes found by decompiling and
	// parsing the Java source (§3.1.2).
	Subclasses []string
	// UnlabeledWebViewPackages counts calling packages no SDK-index entry
	// matched (first-party app code or unknown libraries). Packages whose
	// entry is marked Excluded are labeled — just not reported — and are
	// counted in neither statistic.
	UnlabeledWebViewPackages int
	// Lint holds the WebView misconfiguration findings when the lint stage
	// is enabled (nil otherwise — and the cache key differs, so lint-on and
	// lint-off runs never share entries).
	Lint []webviewlint.Finding `json:",omitempty"`
	// Endpoints holds the statically extracted URL endpoints when the URL
	// stage is enabled (nil otherwise; the cache key differs there too).
	Endpoints []urlextract.Endpoint `json:",omitempty"`
}

// AppResult is the per-app outcome of static analysis.
type AppResult struct {
	Package      string
	Title        string
	PlayCategory string
	Downloads    int64
	Broken       bool

	UsesWebView bool
	UsesCT      bool
	// Methods are the distinct WebView API methods reachable anywhere in
	// the app (SDK or first-party), after deep-link exclusion.
	Methods []string
	// MethodsViaSDK are the methods called from labeled SDK packages.
	MethodsViaSDK []string
	// WebViewSDKs / CTSDKs name the labeled SDKs driving each surface.
	WebViewSDKs []SDKHit
	CTSDKs      []SDKHit
	// Subclasses are custom WebView classes found by decompiling and
	// parsing the Java source (§3.1.2).
	Subclasses []string
	// UnlabeledWebViewPackages counts calling packages no SDK-index entry
	// matched (first-party app code or unknown libraries).
	UnlabeledWebViewPackages int
	// Lint holds the app's WebView misconfiguration findings (lint stage
	// enabled only), sorted by (class, line, rule).
	Lint []webviewlint.Finding
	// Endpoints holds the app's statically extracted URL endpoints (URL
	// stage enabled only), sorted by (class, method, API, kind, URL).
	Endpoints []urlextract.Endpoint
}

// appResult joins store metadata with the content-addressed analysis.
func appResult(md playstore.Metadata, an *Analysis) AppResult {
	return AppResult{
		Package:                  md.Package,
		Title:                    md.Title,
		PlayCategory:             md.Category,
		Downloads:                md.Downloads,
		UsesWebView:              an.UsesWebView,
		UsesCT:                   an.UsesCT,
		Methods:                  an.Methods,
		MethodsViaSDK:            an.MethodsViaSDK,
		WebViewSDKs:              an.WebViewSDKs,
		CTSDKs:                   an.CTSDKs,
		Subclasses:               an.Subclasses,
		UnlabeledWebViewPackages: an.UnlabeledWebViewPackages,
		Lint:                     an.Lint,
		Endpoints:                an.Endpoints,
	}
}

// Funnel is the measured dataset funnel (Table 2).
type Funnel struct {
	Snapshot int // packages in the repository snapshot
	OnPlay   int // found on the Play Store
	Popular  int // download threshold passed
	Filtered int // update filter passed
	Broken   int // APKs that failed to parse
	Analyzed int // successfully analysed
}

// Quarantine records one package the pipeline gave up on: the stage that
// failed and the final error after retries. Quarantined packages are
// excluded from Apps and the Analyzed funnel count but do not abort the
// run while the error budget (Config.MaxFailureFrac) holds.
type Quarantine struct {
	Package string
	Stage   string // "metadata", "download" or "analyze"
	Err     string
}

// Result is the aggregate outcome.
type Result struct {
	Funnel Funnel
	Apps   []AppResult // analysed apps (excluding broken), sorted by package
	// Quarantined lists the packages abandoned after retries, sorted by
	// (package, stage); empty on a clean run.
	Quarantined []Quarantine
	Stats       Stats // run instrumentation (stage timings, cache traffic)
}

// Run executes the full pipeline as overlapping streaming stages.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	t0 := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	if p.cfg.Journal != nil {
		if err := p.cfg.Journal.Bind(p.journalKey()); err != nil {
			return nil, err
		}
	}
	m := newRunMetrics(p.cfg.Telemetry, p.cfg.TracePrefix)
	if p.cfg.Telemetry != nil {
		p.instrumentShared(p.cfg.Telemetry)
	}
	var retriesStart int64
	if p.cfg.Retry != nil && p.cfg.Retry.Metrics != nil {
		retriesStart = p.cfg.Retry.Metrics.Retries.Load()
	}

	res := &Result{}
	listStart := time.Now()
	pkgs, err := retry.Do(runCtx, p.listPolicy(), func(ctx context.Context) ([]string, error) {
		return p.repo.List(ctx)
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: list: %w", err)
	}
	res.Funnel.Snapshot = len(pkgs)
	res.Stats.List = StageStats{Wall: time.Since(listStart), In: len(pkgs), Out: len(pkgs)}
	res.Stats.Metadata.In = len(pkgs)
	m.metaIn.Add(int64(len(pkgs)))

	workers := p.cfg.Workers

	var (
		mu     sync.Mutex // guards funnel, apps, broken and the quarantine list
		apps   []AppResult
		broken int // plain counter: the keys of the old sync.Map were never read
	)
	var (
		errMu    sync.Mutex
		firstErr error
	)
	// fail records the first real failure and cancels the run. Errors that
	// merely reflect that cancellation (workers unwinding with a context
	// error) never reach here: callers check runCtx first.
	fail := func(stage string, err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("pipeline: %s: %w", stage, err)
			cancel()
		}
		errMu.Unlock()
	}

	// quarantine abandons one package instead of the whole run: the
	// failure is recorded in the Result and the stage moves on — unless
	// the error budget is spent, in which case the run degrades to the
	// historical abort-on-error behaviour. The budget is a fraction of
	// snapshot packages; the default 0 aborts on the first casualty.
	budget := int(p.cfg.MaxFailureFrac * float64(res.Funnel.Snapshot))
	quarantine := func(stage, pkg string, qerr error) {
		mu.Lock()
		res.Quarantined = append(res.Quarantined, Quarantine{Package: pkg, Stage: stage, Err: qerr.Error()})
		n := len(res.Quarantined)
		mu.Unlock()
		m.quarantined(stage).Inc()
		if n > budget {
			fail(stage, fmt.Errorf("error budget exceeded (%d quarantined > budget %d of %d packages): %w",
				n, budget, res.Funnel.Snapshot, qerr))
		}
	}

	// record checkpoints one completed package into the journal.
	record := func(pkg string, an *Analysis) {
		if p.cfg.Journal == nil {
			return
		}
		if err := p.cfg.Journal.Record(pkg, *an); err != nil {
			m.journalErrors.Inc()
		}
	}

	streamStart := time.Now()

	// sem bounds the number of APK images alive at once: a download worker
	// acquires a token before fetching and the consuming stage releases it
	// when the image is dropped. Whatever the corpus size, at most Workers
	// images are in flight.
	sem := make(chan struct{}, workers)

	type selected struct {
		pkg string // snapshot package name, used for download
		md  playstore.Metadata
	}
	type task struct {
		md  playstore.Metadata
		img []byte
		key string // content-address cache key ("" when caching is off)
	}
	// postTask carries a finished analysis plus the retained parsed sources
	// and call graph into the post-analysis stages (lint, URL extraction).
	// The APK image itself is already dropped: parsed units are a small
	// fraction of its size.
	type postTask struct {
		md     playstore.Metadata
		an     *Analysis
		parsed *parsedAPK
		key    string
	}
	// The snapshot is fed in chunks: per-package channel operations dominate
	// the metadata stage once the backend is fast (warm cache, local mirror),
	// and batching cuts them by two orders of magnitude.
	const feedChunk = 64
	pkgCh := make(chan []string)
	selCh := make(chan selected, workers)
	anCh := make(chan task)
	lintCh := make(chan postTask, workers)
	urlCh := make(chan postTask, workers)
	linting := p.cfg.Lint != nil
	extracting := p.cfg.URLs != nil
	keepParsed := linting || extracting

	// finish completes one package in whatever stage turned out to be last:
	// persist to the cache, checkpoint the journal, append the app result.
	finish := func(md playstore.Metadata, an *Analysis, key string) {
		an.normalize()
		if p.cfg.Cache != nil {
			p.cfg.Cache.Put(key, *an)
		}
		record(md.Package, an)
		mu.Lock()
		apps = append(apps, appResult(md, an))
		mu.Unlock()
	}

	// Feeder: snapshot packages into the metadata stage.
	go func() {
		defer close(pkgCh)
		for len(pkgs) > 0 {
			n := min(feedChunk, len(pkgs))
			select {
			case pkgCh <- pkgs[:n]:
				pkgs = pkgs[n:]
			case <-runCtx.Done():
				return
			}
		}
	}()

	// Stage 1-2: metadata collection and selection filtering (§3.1.1).
	// Funnel counters accumulate per worker and merge once on exit; the
	// counts are additive, so the result is identical to locking per item.
	var metaWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		metaWG.Add(1)
		go func() {
			defer metaWG.Done()
			var onPlay, popular, filtered int
			defer func() {
				mu.Lock()
				res.Funnel.OnPlay += onPlay
				res.Funnel.Popular += popular
				res.Funnel.Filtered += filtered
				mu.Unlock()
				m.metaOut.Add(int64(filtered))
			}()
			for chunk := range pkgCh {
				for _, pkg := range chunk {
					tm := m.hub.Timer(pkg, "metadata")
					md, err := retry.Do(runCtx, p.cfg.Retry, func(ctx context.Context) (playstore.Metadata, error) {
						md, err := p.meta.Metadata(ctx, pkg)
						if err != nil && errors.Is(err, playstore.ErrNotFound) {
							// Absence is a fact, not a fault: never retried.
							return md, retry.Permanent(err)
						}
						return md, err
					})
					tm.ObserveInto(m.metaLat)
					if err != nil {
						if errors.Is(err, playstore.ErrNotFound) {
							continue
						}
						if runCtx.Err() != nil {
							return
						}
						quarantine("metadata", pkg, err)
						continue
					}
					if md.Downloads < p.cfg.MinDownloads {
						onPlay++
						continue
					}
					if !md.LastUpdated.After(p.cfg.UpdatedAfter) {
						onPlay++
						popular++
						continue
					}
					onPlay++
					popular++
					filtered++
					select {
					case selCh <- selected{pkg: pkg, md: md}:
					case <-runCtx.Done():
						return
					}
				}
			}
		}()
	}

	// Stage 3: APK download + content-addressed cache lookup. Hits are
	// finished right here — the image is dropped and the analysis stage
	// never sees them.
	var dlWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		dlWG.Add(1)
		go func() {
			defer dlWG.Done()
			for sel := range selCh {
				// A journaled package already completed in an earlier
				// (interrupted) run: replay its analysis without spending a
				// download or an analysis slot on it.
				if p.cfg.Journal != nil {
					if an, ok := p.cfg.Journal.Lookup(sel.pkg); ok {
						m.journalSkips.Inc()
						mu.Lock()
						if an.Broken {
							broken++
						} else {
							apps = append(apps, appResult(sel.md, &an))
						}
						mu.Unlock()
						continue
					}
				}
				select {
				case sem <- struct{}{}:
				case <-runCtx.Done():
					return
				}
				tr := m.trace(sel.pkg)
				sp := tr.Start("download")
				tm := m.hub.Timer(sel.pkg, "download")
				img, err := retry.Do(runCtx, p.cfg.Retry, func(ctx context.Context) ([]byte, error) {
					return p.repo.Download(ctx, sel.pkg)
				})
				tm.ObserveInto(m.dlLat)
				if err != nil {
					sp.SetAttr("outcome", "quarantined")
					sp.End()
					<-sem
					if runCtx.Err() != nil {
						return
					}
					quarantine("download", sel.pkg, err)
					continue
				}
				sp.SetAttr("bytes", strconv.Itoa(len(img)))
				sp.End()
				m.dlIn.Inc()
				m.apkBytes.Observe(float64(len(img)))
				m.addInFlight(int64(len(img)))

				var key string
				if p.cfg.Cache != nil {
					key = p.contentKey(img)
					if an, ok := p.cfg.Cache.Get(key); ok {
						m.cacheHits.Inc()
						m.addInFlight(-int64(len(img)))
						tr.Start("cache", "result", "hit").End()
						mu.Lock()
						if an.Broken {
							broken++
						} else {
							apps = append(apps, appResult(sel.md, &an))
						}
						mu.Unlock()
						record(sel.pkg, &an)
						<-sem
						continue
					}
					m.cacheMisses.Inc()
					tr.Start("cache", "result", "miss").End()
				}
				select {
				case anCh <- task{md: sel.md, img: img, key: key}:
					m.dlOut.Inc()
				case <-runCtx.Done():
					m.addInFlight(-int64(len(img)))
					<-sem
					return
				}
			}
		}()
	}

	// Stage 4-6: decompile, parse, call-graph traversal, SDK attribution.
	// With linting on, non-broken analyses are forwarded to the lint stage
	// together with their parsed sources; broken ones finish (and cache)
	// here, since there is nothing to lint.
	var anWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		anWG.Add(1)
		go func() {
			defer anWG.Done()
			for t := range anCh {
				m.anIn.Inc()
				tr := m.trace(t.md.Package)
				sp := tr.Start("analyze")
				tm := m.hub.Timer(t.md.Package, "analyze")
				an, parsed, err := analyzeImage(p.cfg.Index, t.img, keepParsed, tr)
				tm.ObserveInto(m.anLat)
				n := int64(len(t.img))
				t.img = nil
				m.addInFlight(-n)
				<-sem
				if err != nil {
					sp.SetAttr("outcome", "quarantined")
					sp.End()
					if runCtx.Err() != nil {
						return
					}
					quarantine("analyze", t.md.Package, err)
					continue
				}
				if an.Broken {
					sp.SetAttr("outcome", "broken")
				}
				sp.End()
				if keepParsed && !an.Broken {
					m.anOut.Inc()
					next := urlCh
					if linting {
						next = lintCh
					}
					select {
					case next <- postTask{md: t.md, an: an, parsed: parsed, key: t.key}:
					case <-runCtx.Done():
						return
					}
					continue
				}
				if an.Broken {
					if p.cfg.Cache != nil {
						p.cfg.Cache.Put(t.key, *an)
					}
					record(t.md.Package, an)
					mu.Lock()
					broken++
					mu.Unlock()
					continue
				}
				finish(t.md, an, t.key)
				m.anOut.Inc()
			}
		}()
	}

	// Stage 7: WebView misconfiguration linting over the retained parsed
	// sources and call graph. When this is the final stage the completed
	// analysis (now including lint findings) is cached here, so a warm run
	// serves findings without re-linting — until the rule-config fingerprint
	// changes the key; otherwise the task flows on to URL extraction.
	var lintWG sync.WaitGroup
	if linting {
		for w := 0; w < workers; w++ {
			lintWG.Add(1)
			go func() {
				defer lintWG.Done()
				for t := range lintCh {
					m.lintIn.Inc()
					sp := m.trace(t.md.Package).Start("lint")
					tm := m.hub.Timer(t.md.Package, "lint")
					findings := p.cfg.Lint.Analyze(webviewlint.App{
						Units: t.parsed.units,
						Graph: t.parsed.graph,
						Index: p.cfg.Index,
					})
					tm.ObserveInto(m.lintLat)
					sp.SetAttr("findings", strconv.Itoa(len(findings)))
					sp.End()
					t.an.Lint = findings
					m.lintOut.Inc()
					m.lintFindings.Add(int64(len(findings)))
					if extracting {
						select {
						case urlCh <- t:
						case <-runCtx.Done():
							return
						}
						continue
					}
					finish(t.md, t.an, t.key)
				}
			}()
		}
	}

	// Stage 8: interprocedural URL extraction over the retained call graph,
	// with the same deep-link exclusion set the usage traversal applied. The
	// final analysis (endpoints included) is cached and journaled here.
	var urlWG sync.WaitGroup
	if extracting {
		for w := 0; w < workers; w++ {
			urlWG.Add(1)
			go func() {
				defer urlWG.Done()
				for t := range urlCh {
					m.urlsIn.Inc()
					sp := m.trace(t.md.Package).Start("urls")
					tm := m.hub.Timer(t.md.Package, "urls")
					eps := p.cfg.URLs.Extract(t.parsed.graph, t.parsed.excl, p.cfg.Index)
					tm.ObserveInto(m.urlsLat)
					sp.SetAttr("endpoints", strconv.Itoa(len(eps)))
					sp.End()
					t.an.Endpoints = eps
					m.urlsOut.Inc()
					m.urlEndpoints.Add(int64(len(eps)))
					finish(t.md, t.an, t.key)
				}
			}()
		}
	}

	// Drain the stages in order. Each close releases the next pool's range
	// loop; the waits overlap with downstream stages still working.
	metaWG.Wait()
	res.Stats.Metadata.Wall = time.Since(streamStart)
	close(selCh)
	dlWG.Wait()
	res.Stats.Download.Wall = time.Since(streamStart)
	close(anCh)
	anWG.Wait()
	res.Stats.Analyze.Wall = time.Since(streamStart)
	close(lintCh)
	lintWG.Wait()
	if linting {
		res.Stats.Lint.Wall = time.Since(streamStart)
	}
	close(urlCh)
	urlWG.Wait()
	if extracting {
		res.Stats.URLs.Wall = time.Since(streamStart)
	}
	res.Stats.Total = time.Since(t0)
	m.fill(&res.Stats)

	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}

	res.Funnel.Broken = broken
	sort.Slice(apps, func(i, j int) bool { return apps[i].Package < apps[j].Package })
	res.Apps = apps
	res.Funnel.Analyzed = len(apps)
	sort.Slice(res.Quarantined, func(i, j int) bool {
		a, b := res.Quarantined[i], res.Quarantined[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Stage < b.Stage
	})
	if p.cfg.Retry != nil && p.cfg.Retry.Metrics != nil {
		res.Stats.Retries = p.cfg.Retry.Metrics.Retries.Load() - retriesStart
	}
	return res, nil
}

// configKey fingerprints the analysis configuration (SDK index and,
// when linting, the rule set) — the part of the cache key that does not
// depend on APK content. The journal binds to it so resumed entries are
// only replayed under the configuration that produced them.
func (p *Pipeline) configKey() string {
	key := p.indexFP
	if p.lintFP != "" {
		key += "@lint:" + p.lintFP
	}
	if p.urlFP != "" {
		key += "@urls:" + p.urlFP
	}
	return key
}

// ConfigKey exposes the analysis-configuration fingerprint, so the shard
// coordinator can assert every worker runs the same configuration before
// accepting its results into a merged report.
func (p *Pipeline) ConfigKey() string { return p.configKey() }

// journalKey binds the journal to both the analysis configuration and, for
// sharded runs, the shard partition spec. The partition is deliberately
// absent from contentKey: the cache stays content-addressed and shared
// across shards (and across different shard counts), while the journal —
// which records which packages of *this* partition are complete — refuses
// to resume under a foreign partition.
// listPolicy is the retry policy for the snapshot listing: the same
// schedule, classifier and breaker as the per-package policy, but without
// the metrics sink. The listing runs once per pipeline run, so counting
// its attempt would make per-run metric deltas depend on how a corpus is
// partitioned across runs; the mirrored retry families (and Stats.Retries)
// carry per-package traffic only.
func (p *Pipeline) listPolicy() *retry.Policy {
	r := p.cfg.Retry
	if r == nil {
		return nil
	}
	return &retry.Policy{
		MaxAttempts: r.MaxAttempts,
		BaseDelay:   r.BaseDelay,
		MaxDelay:    r.MaxDelay,
		Multiplier:  r.Multiplier,
		Seed:        r.Seed,
		Sleep:       r.Sleep,
		Classify:    r.Classify,
		Breaker:     r.Breaker,
	}
}

func (p *Pipeline) journalKey() string {
	key := p.configKey()
	if p.cfg.Partition != "" {
		key += "@shard:" + p.cfg.Partition
	}
	return key
}

// contentKey derives the cache key for an APK image: the payload digest
// (recomputed from content, so a tampered DIGEST entry cannot poison
// another APK's slot) plus the SDK-index fingerprint, so changing the
// catalog invalidates all cached attributions. Images too broken to digest
// fall back to a hash of the raw bytes — still content-addressed, so even
// broken APKs hit the cache on a warm run. With linting enabled the
// rule-config fingerprint is appended too: cached entries then include lint
// findings, and editing the rule set (or toggling lint) moves to fresh keys
// instead of serving stale findings.
func (p *Pipeline) contentKey(img []byte) string {
	d, err := apk.ComputeDigest(img)
	if err != nil {
		sum := sha256.Sum256(img)
		d = "raw-" + hex.EncodeToString(sum[:])
	}
	return d + "@" + p.configKey()
}

// scratch holds per-APK temporaries reused across analyses via a pool.
type scratch struct {
	excl       map[string]bool
	subclasses []string
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{excl: make(map[string]bool, 4)}
}}

// parsedAPK is the per-APK intermediate the post-analysis stages consume:
// the parsed decompiled sources, the bytecode call graph and the deep-link
// exclusion set. All are produced by the analyze stage anyway; retaining
// them (only when a later stage exists) avoids a second decompile-and-parse
// pass. Handed from the analyze worker through at most one worker per
// stage, so the graph's non-concurrency-safe memoisation is fine.
type parsedAPK struct {
	units []*javaparser.CompilationUnit
	graph *callgraph.Graph
	excl  map[string]bool // deep-link classes excluded from attribution
}

// AnalyzeImage performs the per-APK static analysis — decompile, parse,
// call-graph traversal, SDK attribution — against the given index (nil
// uses the default catalog). A structurally broken APK yields
// Analysis{Broken: true}, not an error.
func AnalyzeImage(idx *sdkindex.Index, img []byte) (*Analysis, error) {
	if idx == nil {
		idx = sdkindex.Default()
	}
	an, _, err := analyzeImage(idx, img, false, nil)
	return an, err
}

// AnalyzeAndLint performs the per-APK static analysis and runs the lint
// engine over the retained parsed sources, exactly as the pipeline's
// analyze + lint stages do for one image.
func AnalyzeAndLint(idx *sdkindex.Index, lint *webviewlint.Analyzer, img []byte) (*Analysis, error) {
	if idx == nil {
		idx = sdkindex.Default()
	}
	an, parsed, err := analyzeImage(idx, img, true, nil)
	if err != nil || an.Broken {
		return an, err
	}
	an.Lint = lint.Analyze(webviewlint.App{Units: parsed.units, Graph: parsed.graph, Index: idx})
	an.normalize()
	return an, nil
}

// AnalyzeAndExtract performs the per-APK static analysis, optionally the
// lint stage (nil skips it), and the URL-extraction stage, exactly as the
// pipeline's streaming stages do for one image.
func AnalyzeAndExtract(idx *sdkindex.Index, lint *webviewlint.Analyzer, ex *urlextract.Extractor, img []byte) (*Analysis, error) {
	if idx == nil {
		idx = sdkindex.Default()
	}
	an, parsed, err := analyzeImage(idx, img, true, nil)
	if err != nil || an.Broken {
		return an, err
	}
	if lint != nil {
		an.Lint = lint.Analyze(webviewlint.App{Units: parsed.units, Graph: parsed.graph, Index: idx})
	}
	an.Endpoints = ex.Extract(parsed.graph, parsed.excl, idx)
	an.normalize()
	return an, nil
}

func analyzeImage(idx *sdkindex.Index, img []byte, keepParsed bool, tr *telemetry.Trace) (*Analysis, *parsedAPK, error) {
	a, err := apk.Open(img)
	if err != nil {
		if errors.Is(err, apk.ErrBroken) {
			return &Analysis{Broken: true}, nil, nil
		}
		return nil, nil, err
	}

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	// Decompile-and-parse round trip: custom WebView subclasses are found
	// from the reconstructed Java source, as the paper does with JADX +
	// javalang (§3.1.2).
	var parsed *parsedAPK
	if keepParsed {
		parsed = &parsedAPK{units: make([]*javaparser.CompilationUnit, 0, len(a.Dex.Classes))}
	}
	dp := tr.Child("analyze", "decompile-parse")
	subclasses := sc.subclasses[:0]
	for _, unit := range decompiler.Decompile(a.Dex) {
		cu, err := javaparser.Parse(unit.Source)
		if err != nil {
			// A decompilation the parser cannot read counts as broken.
			sc.subclasses = subclasses
			dp.SetAttr("outcome", "broken")
			dp.End()
			return &Analysis{Broken: true}, nil, nil
		}
		if keepParsed {
			parsed.units = append(parsed.units, cu)
		}
		for _, td := range cu.Types {
			if td.Extends != "" && cu.Resolve(td.Extends) == android.WebViewClass {
				subclasses = append(subclasses, intern.String(cu.Resolve(td.Name)))
			}
		}
	}
	dp.End()
	sort.Strings(subclasses)
	sc.subclasses = subclasses

	// Call-graph traversal with deep-link exclusion (§3.1.3).
	excl := sc.excl
	clear(excl)
	for _, dl := range a.Manifest.DeepLinkActivities() {
		excl[dl] = true
	}
	if keepParsed && len(excl) > 0 {
		// The scratch map is pooled; later stages need their own copy.
		parsed.excl = make(map[string]bool, len(excl))
		for k := range excl {
			parsed.excl[k] = true
		}
	}
	cg := tr.Child("analyze", "callgraph")
	g := callgraph.Build(a.Dex)
	if keepParsed {
		parsed.graph = g
	}
	usage := g.AnalyzeUsage(excl)
	cg.End()

	an := &Analysis{
		UsesWebView: usage.UsesWebView(),
		UsesCT:      usage.UsesCT(),
		Methods:     usage.MethodsCalled(),
	}
	if len(subclasses) > 0 {
		an.Subclasses = append([]string(nil), subclasses...)
	}
	attributeSDKs(idx, an, usage)
	an.normalize()
	return an, parsed, nil
}

// normalize maps empty slices to nil so that a fresh analysis and one
// decoded from a persistent cache blob (where JSON turns absent into nil)
// are deeply equal — warm and cold runs must produce identical Results.
func (an *Analysis) normalize() {
	if len(an.Methods) == 0 {
		an.Methods = nil
	}
	if len(an.MethodsViaSDK) == 0 {
		an.MethodsViaSDK = nil
	}
	if len(an.WebViewSDKs) == 0 {
		an.WebViewSDKs = nil
	}
	if len(an.CTSDKs) == 0 {
		an.CTSDKs = nil
	}
	if len(an.Subclasses) == 0 {
		an.Subclasses = nil
	}
	if len(an.Lint) == 0 {
		an.Lint = nil
	}
	if len(an.Endpoints) == 0 {
		an.Endpoints = nil
	}
}

// attributeSDKs labels call sites with the SDK index (§3.1.4). WebView
// attribution follows the paper: the package owning the class that calls a
// content-populating method (loadUrl/loadData/loadDataWithBaseURL) is the
// WebView's driver; its other method calls ride along. CT attribution keys
// on launchUrl and CustomTabsIntent construction. Excluded index entries
// (e.g. com.google.android) are labeled packages deliberately left out of
// SDK statistics — they count as neither an SDK hit nor an unlabeled
// package.
func attributeSDKs(idx *sdkindex.Index, an *Analysis, usage *callgraph.Usage) {
	type agg struct {
		sdk     *sdkindex.SDK
		methods map[string]bool
		loads   bool
		ct      bool
	}
	bySDK := make(map[string]*agg, 8)
	unlabeled := make(map[string]bool, 8)
	viaSDKMethods := make(map[string]bool, len(android.WebViewMethods))

	for _, call := range usage.WebViewCalls {
		pkg := call.CallerPackage()
		sdk, ok := idx.Lookup(pkg)
		if !ok {
			unlabeled[intern.String(pkg)] = true
			continue
		}
		if sdk.Excluded {
			continue
		}
		a := bySDK[sdk.Name]
		if a == nil {
			a = &agg{sdk: sdk, methods: make(map[string]bool, 4)}
			bySDK[sdk.Name] = a
		}
		name := intern.String(call.Target.Name)
		a.methods[name] = true
		viaSDKMethods[name] = true
		if android.IsLoadMethod(name) {
			a.loads = true
		}
	}
	for _, call := range usage.CTCalls {
		pkg := call.CallerPackage()
		sdk, ok := idx.Lookup(pkg)
		if !ok || sdk.Excluded {
			continue
		}
		if call.Target.Name == android.MethodLaunchURL || call.Target.Name == "<init>" || call.Target.Name == "build" {
			a := bySDK[sdk.Name]
			if a == nil {
				a = &agg{sdk: sdk, methods: make(map[string]bool, 4)}
				bySDK[sdk.Name] = a
			}
			a.ct = true
		}
	}

	names := make([]string, 0, len(bySDK))
	for name := range bySDK {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := bySDK[name]
		if a.loads {
			hit := SDKHit{SDK: name, Category: a.sdk.Category, Methods: sortedKeys(a.methods)}
			an.WebViewSDKs = append(an.WebViewSDKs, hit)
		}
		if a.ct {
			an.CTSDKs = append(an.CTSDKs, SDKHit{SDK: name, Category: a.sdk.Category, CT: true})
		}
	}
	an.MethodsViaSDK = sortedKeys(viaSDKMethods)
	an.UnlabeledWebViewPackages = len(unlabeled)
}

// sortedKeys returns the map's keys sorted, or nil for an empty map (so
// cache round trips through JSON stay deeply equal).
func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
