package pipeline

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/resultcache"
	"repro/internal/webviewlint"
)

func lintAnalyzer(t *testing.T, rules ...string) *webviewlint.Analyzer {
	t.Helper()
	var cfg webviewlint.Config
	if len(rules) > 0 {
		cfg.Rules = rules
	}
	a, err := webviewlint.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestLintStageEndToEnd runs the full streaming pipeline with the lint
// stage enabled and checks the stage accounting and the surfaced findings.
func TestLintStageEndToEnd(t *testing.T) {
	c := failureCorpus(t)
	cfg := Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
		Workers: 4, Lint: lintAnalyzer(t)}
	res, err := New(&flakyRepo{c: c}, &memMeta{c: c}, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if res.Stats.Lint.In != res.Stats.Analyze.Out {
		t.Errorf("lint in = %d, want analyze out %d", res.Stats.Lint.In, res.Stats.Analyze.Out)
	}
	if res.Stats.Lint.Out != res.Stats.Lint.In {
		t.Errorf("lint stage dropped items: in=%d out=%d", res.Stats.Lint.In, res.Stats.Lint.Out)
	}
	if res.Stats.Lint.Wall == 0 {
		t.Error("lint stage wall time not recorded")
	}

	total := 0
	for i := range res.Apps {
		total += len(res.Apps[i].Lint)
	}
	if total == 0 {
		t.Fatal("lint-enabled run produced no findings over the seeded corpus")
	}
	if res.Stats.LintFindings != total {
		t.Errorf("Stats.LintFindings = %d, apps carry %d", res.Stats.LintFindings, total)
	}

	ag := Aggregate(res)
	if ag.LintFindings != total || ag.LintAppsFlagged == 0 {
		t.Errorf("aggregates: findings=%d (want %d), flagged=%d", ag.LintFindings, total, ag.LintAppsFlagged)
	}
	if len(ag.LintRuleFindings) == 0 || len(ag.LintSDKFindings) == 0 {
		t.Errorf("aggregates missing rule/SDK breakdowns: %v / %v",
			ag.LintRuleFindings, ag.LintSDKFindings)
	}
}

// TestLintDeterministicUnderConcurrency: worker count must not change
// lint output or its ordering.
func TestLintDeterministicUnderConcurrency(t *testing.T) {
	c := failureCorpus(t)
	run := func(workers int) *Result {
		cfg := Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
			Workers: workers, Lint: lintAnalyzer(t)}
		res, err := New(&flakyRepo{c: c}, &memMeta{c: c}, cfg).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a.Apps, b.Apps) {
		t.Error("lint results differ between 1 and 8 workers")
	}
}

// TestWarmCacheWithLintIdentical: a second lint-enabled run over a shared
// cache must hit for every APK, skip both the analyze and lint stages, and
// still surface identical findings (they ride the cached Analysis).
func TestWarmCacheWithLintIdentical(t *testing.T) {
	c := failureCorpus(t)
	cache := resultcache.New[Analysis](0)
	cfg := Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
		Workers: 4, Cache: cache, Lint: lintAnalyzer(t)}
	p := New(&flakyRepo{c: c}, &memMeta{c: c}, cfg)

	cold, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheMisses != 0 || warm.Stats.CacheHits != warm.Funnel.Filtered {
		t.Errorf("warm run: hits=%d misses=%d, want hits=%d misses=0",
			warm.Stats.CacheHits, warm.Stats.CacheMisses, warm.Funnel.Filtered)
	}
	if warm.Stats.Lint.In != 0 || warm.Stats.LintFindings != 0 {
		t.Errorf("warm run re-linted: in=%d findings=%d", warm.Stats.Lint.In, warm.Stats.LintFindings)
	}
	if !reflect.DeepEqual(cold.Apps, warm.Apps) {
		t.Error("warm-run apps (incl. lint findings) differ from cold run")
	}
}

// TestLintConfigChangeInvalidatesCache pins the cache-key contract: the
// lint-rule configuration is part of the content key, so changing the rule
// set (or turning linting off) must miss every cached entry, while an
// unchanged configuration keeps hitting.
func TestLintConfigChangeInvalidatesCache(t *testing.T) {
	c := failureCorpus(t)
	cache := resultcache.New[Analysis](0)
	base := Config{MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
		Workers: 4, Cache: cache}

	full := base
	full.Lint = lintAnalyzer(t)
	if _, err := New(&flakyRepo{c: c}, &memMeta{c: c}, full).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Same rule set: every entry hits.
	again := base
	again.Lint = lintAnalyzer(t)
	res, err := New(&flakyRepo{c: c}, &memMeta{c: c}, again).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheMisses != 0 {
		t.Errorf("identical lint config missed the cache %d times", res.Stats.CacheMisses)
	}

	// Restricted rule set: different fingerprint, no stale hits.
	subset := base
	subset.Lint = lintAnalyzer(t, webviewlint.RuleJSEnabled, webviewlint.RuleJSInterface)
	res, err = New(&flakyRepo{c: c}, &memMeta{c: c}, subset).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 {
		t.Errorf("changed lint config hit the old cache %d times", res.Stats.CacheHits)
	}
	for i := range res.Apps {
		for _, f := range res.Apps[i].Lint {
			if f.Rule != webviewlint.RuleJSEnabled && f.Rule != webviewlint.RuleJSInterface {
				t.Fatalf("restricted run surfaced disabled rule %q", f.Rule)
			}
		}
	}

	// Lint off: keys drop the lint fingerprint entirely, so the lint-bearing
	// entries must not be served (they would leak findings into a non-lint run).
	plain := base
	res, err = New(&flakyRepo{c: c}, &memMeta{c: c}, plain).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 {
		t.Errorf("lint-off run hit lint-keyed cache entries %d times", res.Stats.CacheHits)
	}
	for i := range res.Apps {
		if len(res.Apps[i].Lint) != 0 {
			t.Fatalf("lint-off run surfaced findings for %s", res.Apps[i].Package)
		}
	}
}
