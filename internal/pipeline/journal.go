package pipeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is a JSONL checkpoint of completed per-package analyses. The
// pipeline appends one line as each package finishes (analysis, lint and
// cache-hit paths alike); a resumed run over the same journal skips the
// download and analysis of every recorded package and replays its
// Analysis instead, so an interrupted corpus-scale run loses only the
// packages that were in flight when it died.
//
// The first line is a header binding the journal to the pipeline
// configuration fingerprint (SDK index, lint rules): resuming with a
// different configuration is refused rather than silently mixing results.
// A partial trailing line — the signature of a killed writer — is
// ignored on load. Quarantined packages are never recorded, so a resumed
// run retries them.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	key       string // loaded or bound configuration fingerprint
	hasHeader bool
	done      map[string]Analysis
}

type journalHeader struct {
	V   int    `json:"v"`
	Key string `json:"key"`
}

type journalEntry struct {
	Pkg string   `json:"pkg"`
	An  Analysis `json:"an"`
}

// OpenJournal loads the journal at path (creating it if absent) and
// opens it for appending. Call Close when done.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{done: make(map[string]Analysis)}
	if b, err := os.ReadFile(path); err == nil {
		if err := j.load(b); err != nil {
			return nil, fmt.Errorf("pipeline: journal %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("pipeline: journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pipeline: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// load parses existing journal content: a header line then entries. A
// malformed final line is tolerated (the writer died mid-append);
// malformed content elsewhere is an error.
func (j *Journal) load(b []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineno := 0
	var pending string
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		// Defer judgment on each line until we know another follows: only
		// the last line may be garbage.
		if pending != "" {
			if err := j.consume(pending); err != nil {
				return err
			}
		}
		pending = line
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if pending != "" {
		// Ignore a final line that does not parse; it was cut off mid-write.
		_ = j.consume(pending)
	}
	return nil
}

func (j *Journal) consume(line string) error {
	if !j.hasHeader {
		var h journalHeader
		if err := json.Unmarshal([]byte(line), &h); err != nil || h.V != 1 {
			return fmt.Errorf("bad header line %q", line)
		}
		j.key = h.Key
		j.hasHeader = true
		return nil
	}
	var e journalEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		return fmt.Errorf("bad entry %q: %v", line, err)
	}
	j.done[e.Pkg] = e.An
	return nil
}

// Bind ties the journal to a configuration fingerprint. A fresh journal
// writes the header; an existing one must have been written under the
// same key, otherwise Bind fails (the journal describes a different
// index/lint configuration and its entries cannot be replayed).
func (j *Journal) Bind(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.hasHeader {
		if j.key != key {
			return fmt.Errorf("pipeline: journal written under configuration %q, current is %q", j.key, key)
		}
		return nil
	}
	b, err := json.Marshal(journalHeader{V: 1, Key: key})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("pipeline: journal: %w", err)
	}
	j.key = key
	j.hasHeader = true
	return nil
}

// Lookup returns the recorded analysis for pkg, if any.
func (j *Journal) Lookup(pkg string) (Analysis, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	an, ok := j.done[pkg]
	return an, ok
}

// Record appends pkg's completed analysis. Recording an already-journaled
// package is a no-op, so cache hits on resumed packages stay idempotent.
func (j *Journal) Record(pkg string, an Analysis) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.done[pkg]; ok {
		return nil
	}
	b, err := json.Marshal(journalEntry{Pkg: pkg, An: an})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("pipeline: journal: %w", err)
	}
	j.done[pkg] = an
	return nil
}

// Len reports how many completed packages the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Packages returns the recorded package names (unordered).
func (j *Journal) Packages() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.done))
	for pkg := range j.done {
		out = append(out, pkg)
	}
	return out
}

// Close releases the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
