// Package decompiler converts sdex bytecode into Java-like source text,
// playing the role JADX plays in the paper's pipeline (step 3 of Figure 1).
//
// The output is real, parseable Java-subset source: a package declaration,
// an import block, a class declaration with extends/implements clauses and
// method bodies reconstructed statement-by-statement from the instruction
// stream. Downstream, package javaparser re-parses this text to find custom
// WebView subclasses — exactly the decompile-then-parse round trip the
// paper performs, rather than a shortcut over the in-memory structures.
package decompiler

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dalvik"
)

// Unit is one decompiled class: its file name (mirroring JADX's output
// layout, package/Class.java) and source text.
type Unit struct {
	Path   string
	Source string
}

// Decompile renders every class in the file as a separate compilation
// unit, in encoding (name) order.
func Decompile(f *dalvik.File) []Unit {
	units := make([]Unit, 0, len(f.Classes))
	for i := range f.Classes {
		c := &f.Classes[i]
		units = append(units, Unit{
			Path:   strings.ReplaceAll(c.Name, ".", "/") + ".java",
			Source: DecompileClass(c),
		})
	}
	return units
}

// bufPool recycles the render buffer across classes: decompilation runs
// once per class per APK on the pipeline's hottest path, and reusing the
// grown buffer avoids re-paying the append-doubling allocations every time.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// DecompileClass renders a single class definition as Java-like source.
func DecompileClass(c *dalvik.Class) string {
	sb := bufPool.Get().(*bytes.Buffer)
	sb.Reset()
	defer bufPool.Put(sb)
	pkg := c.Package()
	simple := simpleName(c.Name)

	fmt.Fprintf(sb, "// Decompiled with sjadx from %s\n", sourceOf(c))
	if pkg != "" {
		fmt.Fprintf(sb, "package %s;\n\n", pkg)
	}

	imports := collectImports(c, pkg)
	for _, imp := range imports {
		fmt.Fprintf(sb, "import %s;\n", imp)
	}
	if len(imports) > 0 {
		sb.WriteByte('\n')
	}

	sb.WriteString(modifiers(c.Flags))
	if c.Flags&dalvik.AccInterface != 0 {
		sb.WriteString("interface ")
	} else {
		sb.WriteString("class ")
	}
	sb.WriteString(simple)
	if c.SuperName != "" && c.SuperName != "java.lang.Object" {
		sb.WriteString(" extends ")
		sb.WriteString(simpleName(c.SuperName))
	}
	if len(c.Interfaces) > 0 {
		sb.WriteString(" implements ")
		for i, it := range c.Interfaces {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(simpleName(it))
		}
	}
	sb.WriteString(" {\n")

	for _, fl := range c.Fields {
		fmt.Fprintf(sb, "    %s%s %s;\n", modifiers(fl.Flags), simpleName(fl.Type), fl.Name)
	}
	if len(c.Fields) > 0 && len(c.Methods) > 0 {
		sb.WriteByte('\n')
	}

	for i := range c.Methods {
		writeMethod(sb, &c.Methods[i])
		if i != len(c.Methods)-1 {
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String() // copies out of the pooled buffer
}

func sourceOf(c *dalvik.Class) string {
	if c.SourceFile != "" {
		return c.SourceFile
	}
	return "classes.sdex"
}

// collectImports gathers every type the class references outside its own
// package and java.lang, sorted.
func collectImports(c *dalvik.Class, pkg string) []string {
	set := make(map[string]bool)
	add := func(t string) {
		if t == "" {
			return
		}
		p := dalvik.PackageOf(t)
		if p == "" || p == pkg || p == "java.lang" {
			return
		}
		// Inner classes import their outer type.
		if i := strings.IndexByte(t, '$'); i >= 0 {
			t = t[:i]
		}
		set[t] = true
	}
	add(c.SuperName)
	for _, it := range c.Interfaces {
		add(it)
	}
	for _, fl := range c.Fields {
		add(fl.Type)
	}
	for i := range c.Methods {
		for _, ins := range c.Methods[i].Code {
			switch {
			case ins.Op == dalvik.OpNewInstance:
				add(ins.Type)
			case ins.Op.IsInvoke():
				add(ins.Target.Class)
			}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func writeMethod(sb *bytes.Buffer, m *dalvik.Method) {
	ret, params := splitSignature(m.Signature)
	fmt.Fprintf(sb, "    %s%s %s(%s) {\n", modifiers(m.Flags), ret, m.Name, params)
	writeBody(sb, m.Code)
	sb.WriteString("    }\n")
}

// operand is one value on the symbolic operand stack writeBody keeps while
// rendering: the expression text a later invoke can consume as an argument.
type operand struct {
	text  string
	isInt bool
	num   int64
}

// writeBody reconstructs statements from the instruction stream. Branch
// instructions open and close scopes so the output nests plausibly; an
// invoke following a new-instance of the same class renders as a
// constructor call.
//
// Constants and invoke results are additionally tracked on a symbolic
// operand stack: a preceding const-string/const-int feeds the trailing
// arguments of the next invoke, so the output reads
// setJavaScriptEnabled(true) or loadUrl("https://…") instead of opaque
// placeholders — the argument expressions the lint rules match on. The
// stack is cleared at branch boundaries: this linear reconstruction cannot
// prove a value flows across them.
func writeBody(sb *bytes.Buffer, code []dalvik.Instruction) {
	indent := 2
	depth := 0 // open if-blocks
	var pendingNew string
	var ops []operand
	emit := func(format string, args ...any) {
		sb.WriteString(strings.Repeat("    ", indent))
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}
	varN := 0
	lastVar := "this"
	closeBlocks := func() {
		for depth > 0 {
			depth--
			indent--
			emit("}")
		}
	}
	// finishInvoke renders a non-constructor invoke expression. A directly
	// following move-result becomes an assignment whose variable goes back
	// on the operand stack — that is how getIntent()/getDataString() chains
	// stay visible as def-use edges in the source.
	finishInvoke := func(i int, expr string) int {
		if i+1 < len(code) && code[i+1].Op == dalvik.OpMoveResult {
			varN++
			lastVar = fmt.Sprintf("v%d", varN)
			emit("Object %s = %s;", lastVar, expr)
			ops = append(ops, operand{text: lastVar})
			return i + 1
		}
		emit("%s;", expr)
		return i
	}
	for i := 0; i < len(code); i++ {
		ins := code[i]
		switch ins.Op {
		case dalvik.OpConstString:
			varN++
			emit("String s%d = %q;", varN, ins.Str)
			ops = append(ops, operand{text: fmt.Sprintf("%q", ins.Str)})
		case dalvik.OpConstInt:
			varN++
			emit("int i%d = %d;", varN, ins.Int)
			ops = append(ops, operand{text: fmt.Sprintf("%d", ins.Int), isInt: true, num: ins.Int})
		case dalvik.OpNewInstance:
			pendingNew = ins.Type
		case dalvik.OpInvokeDirect:
			if pendingNew == ins.Target.Class && ins.Target.Name == "<init>" {
				varN++
				lastVar = fmt.Sprintf("v%d", varN)
				// Constructor operands come from caller registers in the
				// builder idiom, not the tracked stack: keep placeholders so
				// a preceding URL constant stays available for the load call
				// it actually feeds.
				emit("%s %s = new %s(%s);", simpleName(pendingNew), lastVar, simpleName(pendingNew), argList(ins.Target.Signature))
				pendingNew = ""
				continue
			}
			i = finishInvoke(i, fmt.Sprintf("%s.%s(%s)", lastVar, ins.Target.Name, takeArgs(&ops, ins.Target.Signature)))
		case dalvik.OpInvokeVirtual, dalvik.OpInvokeInterface:
			i = finishInvoke(i, fmt.Sprintf("%s.%s(%s)", lastVar, ins.Target.Name, takeArgs(&ops, ins.Target.Signature)))
		case dalvik.OpInvokeStatic:
			i = finishInvoke(i, fmt.Sprintf("%s.%s(%s)", simpleName(ins.Target.Class), ins.Target.Name, takeArgs(&ops, ins.Target.Signature)))
		case dalvik.OpMoveResult:
			// Not directly after an invoke (corrupt or hand-built streams):
			// keep the legacy placeholder form.
			varN++
			lastVar = fmt.Sprintf("v%d", varN)
			emit("Object %s = __result;", lastVar)
			ops = append(ops, operand{text: lastVar})
		case dalvik.OpIfZ:
			emit("if (__cond != 0) {")
			indent++
			depth++
			ops = ops[:0]
		case dalvik.OpGoto:
			emit("// goto %+d", ins.Int)
			ops = ops[:0]
		case dalvik.OpReturnVoid:
			closeBlocks()
			emit("return;")
			ops = ops[:0]
		case dalvik.OpReturnValue:
			closeBlocks()
			emit("return %s;", lastVar)
			ops = ops[:0]
		case dalvik.OpThrow:
			emit("throw new RuntimeException();")
			ops = ops[:0]
		case dalvik.OpNop:
			// nothing
		}
	}
	closeBlocks()
}

// takeArgs renders an invoke's argument list, consuming up to nparams
// tracked operands for the trailing parameters (the most recent operand is
// the last argument) and placeholders for the rest. An int operand in a
// boolean slot renders as true/false, matching javac's encoding of boolean
// literals as const ints.
func takeArgs(ops *[]operand, sig string) string {
	types := paramTypes(sig)
	n := len(types)
	if n == 0 {
		return ""
	}
	take := len(*ops)
	if take > n {
		take = n
	}
	args := make([]string, n)
	for i := 0; i < n-take; i++ {
		args[i] = fmt.Sprintf("a%d", i)
	}
	popped := (*ops)[len(*ops)-take:]
	*ops = (*ops)[:len(*ops)-take]
	for i, op := range popped {
		s := op.text
		if op.isInt && types[n-take+i] == "boolean" {
			if op.num == 0 {
				s = "false"
			} else {
				s = "true"
			}
		}
		args[n-take+i] = s
	}
	return strings.Join(args, ", ")
}

// paramTypes returns the simple parameter type names of "(String,int)void".
func paramTypes(sig string) []string {
	open := strings.IndexByte(sig, '(')
	close := strings.LastIndexByte(sig, ')')
	if open < 0 || close < open || close == open+1 {
		return nil
	}
	parts := strings.Split(sig[open+1:close], ",")
	for i := range parts {
		parts[i] = simpleName(strings.TrimSpace(parts[i]))
	}
	return parts
}

// splitSignature turns "(String,int)void" into ("void", "String a0, int a1").
func splitSignature(sig string) (ret, params string) {
	open := strings.IndexByte(sig, '(')
	close := strings.LastIndexByte(sig, ')')
	if open < 0 || close < open {
		return "void", ""
	}
	ret = sig[close+1:]
	if ret == "" {
		ret = "void"
	}
	inner := sig[open+1 : close]
	if inner == "" {
		return ret, ""
	}
	parts := strings.Split(inner, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = fmt.Sprintf("%s a%d", simpleName(strings.TrimSpace(p)), i)
	}
	return ret, strings.Join(out, ", ")
}

func argList(sig string) string {
	open := strings.IndexByte(sig, '(')
	close := strings.LastIndexByte(sig, ')')
	if open < 0 || close < open || close == open+1 {
		return ""
	}
	n := strings.Count(sig[open+1:close], ",") + 1
	args := make([]string, n)
	for i := range args {
		args[i] = fmt.Sprintf("a%d", i)
	}
	return strings.Join(args, ", ")
}

func simpleName(fqn string) string {
	if i := strings.LastIndexByte(fqn, '.'); i >= 0 {
		fqn = fqn[i+1:]
	}
	return strings.ReplaceAll(fqn, "$", ".")
}

func modifiers(f dalvik.AccessFlag) string {
	var sb strings.Builder
	if f&dalvik.AccPublic != 0 {
		sb.WriteString("public ")
	}
	if f&dalvik.AccPrivate != 0 {
		sb.WriteString("private ")
	}
	if f&dalvik.AccProtected != 0 {
		sb.WriteString("protected ")
	}
	if f&dalvik.AccStatic != 0 {
		sb.WriteString("static ")
	}
	if f&dalvik.AccFinal != 0 {
		sb.WriteString("final ")
	}
	if f&dalvik.AccAbstract != 0 && f&dalvik.AccInterface == 0 {
		sb.WriteString("abstract ")
	}
	return sb.String()
}
