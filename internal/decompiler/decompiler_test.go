package decompiler

import (
	"strings"
	"testing"

	"repro/internal/android"
	"repro/internal/dalvik"
	"repro/internal/javaparser"
)

func sampleDex(t *testing.T) *dalvik.File {
	t.Helper()
	b := dalvik.NewBuilder()
	b.Class("com.app.ui.BrowserView", android.WebViewClass, dalvik.AccPublic).
		Source("BrowserView.java").
		VoidMethod("configure",
			dalvik.InvokeVirtual(android.WebViewClass, "getSettings", "()WebSettings"),
		)
	b.Class("com.app.MainActivity", android.ActivityClass, dalvik.AccPublic).
		Implements("java.lang.Runnable").
		Field("home", "java.lang.String", dalvik.AccPrivate).
		VoidMethod("onCreate",
			dalvik.NewInstance("com.app.ui.BrowserView"),
			dalvik.InvokeDirect("com.app.ui.BrowserView", "<init>", "(Context)void"),
			dalvik.ConstString("https://example.com"),
			dalvik.InvokeVirtual("com.app.ui.BrowserView", android.MethodLoadURL, "(String)void"),
			dalvik.Instruction{Op: dalvik.OpIfZ, Int: 2},
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodEvaluateJavascript, "(String,Callback)void"),
		)
	return b.MustBuild()
}

func unitByPath(t *testing.T, units []Unit, path string) Unit {
	t.Helper()
	for _, u := range units {
		if u.Path == path {
			return u
		}
	}
	t.Fatalf("no unit %q", path)
	return Unit{}
}

func TestDecompileLayout(t *testing.T) {
	units := Decompile(sampleDex(t))
	if len(units) != 2 {
		t.Fatalf("units = %d, want 2", len(units))
	}
	unitByPath(t, units, "com/app/MainActivity.java")
	unitByPath(t, units, "com/app/ui/BrowserView.java")
}

func TestDecompiledSourceShape(t *testing.T) {
	units := Decompile(sampleDex(t))
	src := unitByPath(t, units, "com/app/MainActivity.java").Source
	for _, want := range []string{
		"package com.app;",
		"import android.app.Activity;",
		"import android.webkit.WebView;",
		"import com.app.ui.BrowserView;",
		"public class MainActivity extends Activity implements Runnable",
		"private String home;",
		"public void onCreate() {",
		`String s2 = "https://example.com";`,
		"BrowserView v1 = new BrowserView(a0);",
		`v1.loadUrl("https://example.com");`,
		"if (__cond != 0) {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
	// java.lang must not be imported.
	if strings.Contains(src, "import java.lang") {
		t.Error("source imports java.lang")
	}
}

// The decompiler's output must be consumable by the project's own Java
// parser — that is the whole point of the decompile-then-parse pipeline.
func TestDecompiledSourceParses(t *testing.T) {
	for _, u := range Decompile(sampleDex(t)) {
		cu, err := javaparser.Parse(u.Source)
		if err != nil {
			t.Fatalf("parse %s: %v\n%s", u.Path, err, u.Source)
		}
		if len(cu.Types) != 1 {
			t.Errorf("%s: %d types", u.Path, len(cu.Types))
		}
	}
}

func TestWebViewSubclassDetectableAfterRoundTrip(t *testing.T) {
	units := Decompile(sampleDex(t))
	var found bool
	for _, u := range units {
		cu, err := javaparser.Parse(u.Source)
		if err != nil {
			t.Fatal(err)
		}
		for _, td := range cu.Types {
			if td.Extends != "" && cu.Resolve(td.Extends) == android.WebViewClass {
				found = true
				if got := cu.Resolve(td.Name); got != "com.app.ui.BrowserView" {
					t.Errorf("subclass resolved to %q", got)
				}
			}
		}
	}
	if !found {
		t.Error("WebView subclass not detectable from decompiled source")
	}
}

func TestDecompileInterface(t *testing.T) {
	f := dalvik.NewBuilder().
		Class("com.app.Listener", "", dalvik.AccPublic|dalvik.AccInterface).
		Method("onEvent", "()void", dalvik.AccPublic|dalvik.AccAbstract).
		MustBuild()
	src := DecompileClass(&f.Classes[0])
	if !strings.Contains(src, "public interface Listener {") {
		t.Errorf("interface rendering wrong:\n%s", src)
	}
	if _, err := javaparser.Parse(src); err != nil {
		t.Errorf("interface source does not parse: %v\n%s", err, src)
	}
}

func TestDecompileStaticCall(t *testing.T) {
	f := dalvik.NewBuilder().
		Class("com.app.S", "java.lang.Object", dalvik.AccPublic).
		VoidMethod("go",
			dalvik.InvokeStatic("com.other.Util", "ping", "()void"),
		).
		MustBuild()
	src := DecompileClass(&f.Classes[0])
	if !strings.Contains(src, "Util.ping();") {
		t.Errorf("static call rendering wrong:\n%s", src)
	}
	if !strings.Contains(src, "import com.other.Util;") {
		t.Errorf("missing import:\n%s", src)
	}
}

// Constants must surface as argument expressions: boolean parameters render
// int consts as true/false, and a move-result var feeds later calls — the
// def-use text the WebView lint rules match on.
func TestArgumentRendering(t *testing.T) {
	f := dalvik.NewBuilder().
		Class("com.app.P", "java.lang.Object", dalvik.AccPublic).
		VoidMethod("apply",
			dalvik.InvokeVirtual(android.WebViewClass, "getSettings", "()WebSettings"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.ConstInt(1),
			dalvik.InvokeVirtual("android.webkit.WebSettings", "setJavaScriptEnabled", "(boolean)void"),
			dalvik.ConstInt(0),
			dalvik.InvokeVirtual("android.webkit.WebSettings", "setMixedContentMode", "(int)void"),
			dalvik.Return(),
		).
		MustBuild()
	src := DecompileClass(&f.Classes[0])
	for _, want := range []string{
		"Object v1 = this.getSettings();",
		"v1.setJavaScriptEnabled(true);",
		"v1.setMixedContentMode(0);",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
	if _, err := javaparser.Parse(src); err != nil {
		t.Errorf("rendered source does not parse: %v\n%s", err, src)
	}
}

// Operands must not leak across branch boundaries: a constant pushed before
// an if cannot feed a call inside it.
func TestOperandStackClearedAtBranches(t *testing.T) {
	f := dalvik.NewBuilder().
		Class("com.app.B", "java.lang.Object", dalvik.AccPublic).
		VoidMethod("go",
			dalvik.ConstInt(1),
			dalvik.Instruction{Op: dalvik.OpIfZ, Int: 2},
			dalvik.InvokeVirtual("android.webkit.WebSettings", "setJavaScriptEnabled", "(boolean)void"),
		).
		MustBuild()
	src := DecompileClass(&f.Classes[0])
	if !strings.Contains(src, "setJavaScriptEnabled(a0);") {
		t.Errorf("stale operand crossed the branch:\n%s", src)
	}
}

func TestSplitSignature(t *testing.T) {
	cases := []struct{ sig, ret, params string }{
		{"()void", "void", ""},
		{"(String)void", "void", "String a0"},
		{"(String,int)boolean", "boolean", "String a0, int a1"},
		{"(android.content.Context)void", "void", "Context a0"},
		{"garbage", "void", ""},
	}
	for _, c := range cases {
		ret, params := splitSignature(c.sig)
		if ret != c.ret || params != c.params {
			t.Errorf("splitSignature(%q) = (%q, %q), want (%q, %q)", c.sig, ret, params, c.ret, c.params)
		}
	}
}
