package decompiler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dalvik"
	"repro/internal/javaparser"
)

// randomClass builds a structurally valid random class exercising the
// decompiler's statement emitters.
func randomClass(rng *rand.Rand, idx int) dalvik.Class {
	supers := []string{
		"java.lang.Object", "android.app.Activity",
		"android.webkit.WebView", "com.lib.Base",
	}
	c := dalvik.Class{
		Name:      pickName(rng, idx),
		SuperName: supers[rng.Intn(len(supers))],
		Flags:     dalvik.AccPublic,
	}
	if rng.Intn(3) == 0 {
		c.Interfaces = append(c.Interfaces, "java.lang.Runnable")
	}
	for f := 0; f < rng.Intn(3); f++ {
		c.Fields = append(c.Fields, dalvik.Field{
			Name:  fieldName(f),
			Type:  "java.lang.String",
			Flags: dalvik.AccPrivate,
		})
	}
	for m := 0; m < 1+rng.Intn(4); m++ {
		meth := dalvik.Method{
			Name:      methodName(m),
			Signature: "()void",
			Flags:     dalvik.AccPublic,
		}
		for k := 0; k < rng.Intn(8); k++ {
			switch rng.Intn(7) {
			case 0:
				meth.Code = append(meth.Code, dalvik.ConstString(randString(rng)))
			case 1:
				meth.Code = append(meth.Code, dalvik.ConstInt(rng.Int63n(1000)))
			case 2:
				meth.Code = append(meth.Code,
					dalvik.NewInstance("com.lib.Widget"),
					dalvik.InvokeDirect("com.lib.Widget", "<init>", "()void"))
			case 3:
				meth.Code = append(meth.Code, dalvik.InvokeVirtual("android.webkit.WebView", "loadUrl", "(String)void"))
			case 4:
				meth.Code = append(meth.Code, dalvik.InvokeStatic("com.lib.Util", "go", "(String,int)void"))
			case 5:
				meth.Code = append(meth.Code, dalvik.Instruction{Op: dalvik.OpIfZ, Int: 1})
			case 6:
				meth.Code = append(meth.Code, dalvik.Instruction{Op: dalvik.OpMoveResult})
			}
		}
		meth.Code = append(meth.Code, dalvik.Return())
		c.Methods = append(c.Methods, meth)
	}
	return c
}

func pickName(rng *rand.Rand, idx int) string {
	pkgs := []string{"com.a.b", "org.x", "io.pkg.sub", ""}
	p := pkgs[rng.Intn(len(pkgs))]
	name := "Cls" + string(rune('A'+idx%26))
	if p == "" {
		return name
	}
	return p + "." + name
}

func fieldName(i int) string  { return "field" + string(rune('a'+i)) }
func methodName(i int) string { return "method" + string(rune('A'+i)) }

func randString(rng *rand.Rand) string {
	// Strings with characters the emitter must escape.
	alphabet := []rune(`abc "\{};<>//*`)
	n := rng.Intn(10)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

// Property: whatever the decompiler emits, the project's Java parser can
// parse, and the type header survives (name, supertype, method count).
// This is the contract the pipeline's decompile-then-parse round trip
// rests on.
func TestQuickDecompiledSourceAlwaysParses(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomClass(rng, rng.Intn(26))
		src := DecompileClass(&c)
		cu, err := javaparser.Parse(src)
		if err != nil {
			t.Logf("parse error: %v\nsource:\n%s", err, src)
			return false
		}
		if len(cu.Types) != 1 {
			return false
		}
		td := cu.Types[0]
		if cu.Resolve(td.Name) != c.Name {
			t.Logf("name %q resolved to %q, want %q", td.Name, cu.Resolve(td.Name), c.Name)
			return false
		}
		if len(td.Methods) != len(c.Methods) {
			t.Logf("methods = %d, want %d\n%s", len(td.Methods), len(c.Methods), src)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: dalvik encode → decode → decompile equals direct decompile
// (the wire format does not perturb source reconstruction).
func TestQuickWireFormatTransparent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := &dalvik.File{Version: dalvik.FormatVersion}
		for i := 0; i < 1+rng.Intn(3); i++ {
			f.Classes = append(f.Classes, randomClass(rng, i))
		}
		direct := Decompile(f)
		data, err := dalvik.Encode(f)
		if err != nil {
			return true // duplicate random names: not this property's concern
		}
		decoded, err := dalvik.Decode(data)
		if err != nil {
			return false
		}
		viaWire := Decompile(decoded)
		if len(direct) != len(viaWire) {
			return false
		}
		bySrc := make(map[string]string, len(direct))
		for _, u := range direct {
			bySrc[u.Path] = u.Source
		}
		for _, u := range viaWire {
			if bySrc[u.Path] != u.Source {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
