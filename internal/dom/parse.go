package dom

import (
	"strings"
)

// voidElements never take children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow their content verbatim until the matching close
// tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// Parse builds a Document from HTML source. The parser is a pragmatic
// tokenizer: tolerant of unclosed tags and attribute-quoting styles, with
// implicit closing for the common cases (<p>, <li>), void-element handling
// and raw-text script/style bodies — enough fidelity for the measured
// pages, not a full HTML5 tree constructor.
func Parse(src string) *Document {
	doc := &Document{Root: &Node{Type: DocumentNode}}
	p := &htmlParser{src: src}
	stack := []*Node{doc.Root}
	top := func() *Node { return stack[len(stack)-1] }

	for {
		tok, ok := p.next()
		if !ok {
			break
		}
		switch tok.kind {
		case tokText:
			if strings.TrimSpace(tok.data) != "" || len(stack) > 1 {
				top().AppendChild(&Node{Type: TextNode, Data: tok.data})
			}
		case tokComment:
			top().AppendChild(&Node{Type: CommentNode, Data: tok.data})
		case tokOpen:
			n := &Node{Type: ElementNode, Tag: tok.tag, Attributes: tok.attrs}
			// Implicit closes: a new <p>/<li>/<tr>/<td> closes an open one.
			if implicitClose[tok.tag] {
				for len(stack) > 1 && top().Tag == tok.tag {
					stack = stack[:len(stack)-1]
				}
			}
			top().AppendChild(n)
			if tok.selfClose || voidElements[tok.tag] {
				break
			}
			if rawTextElements[tok.tag] {
				n.AppendChild(&Node{Type: TextNode, Data: p.rawUntil("</" + tok.tag)})
				break
			}
			stack = append(stack, n)
		case tokClose:
			// Pop to the nearest matching open element; ignore strays.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.tag {
					stack = stack[:i]
					break
				}
			}
		}
	}

	if t := doc.first("title"); t != nil {
		doc.Title = t.Text()
	}
	return doc
}

var implicitClose = map[string]bool{"p": true, "li": true, "tr": true, "td": true, "th": true, "option": true}

type htmlTokKind int

const (
	tokText htmlTokKind = iota
	tokOpen
	tokClose
	tokComment
)

type htmlToken struct {
	kind      htmlTokKind
	tag       string
	data      string
	attrs     map[string]string
	selfClose bool
}

type htmlParser struct {
	src string
	pos int
}

func (p *htmlParser) next() (htmlToken, bool) {
	if p.pos >= len(p.src) {
		return htmlToken{}, false
	}
	if p.src[p.pos] != '<' {
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '<' {
			p.pos++
		}
		return htmlToken{kind: tokText, data: p.src[start:p.pos]}, true
	}
	// Comment?
	if strings.HasPrefix(p.src[p.pos:], "<!--") {
		end := strings.Index(p.src[p.pos+4:], "-->")
		if end < 0 {
			data := p.src[p.pos+4:]
			p.pos = len(p.src)
			return htmlToken{kind: tokComment, data: data}, true
		}
		data := p.src[p.pos+4 : p.pos+4+end]
		p.pos += 4 + end + 3
		return htmlToken{kind: tokComment, data: data}, true
	}
	// Doctype / processing instruction: skip to '>'.
	if strings.HasPrefix(p.src[p.pos:], "<!") || strings.HasPrefix(p.src[p.pos:], "<?") {
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			p.pos = len(p.src)
		} else {
			p.pos += end + 1
		}
		return p.next()
	}
	// Close tag.
	if strings.HasPrefix(p.src[p.pos:], "</") {
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			p.pos = len(p.src)
			return htmlToken{}, false
		}
		tag := strings.ToLower(strings.TrimSpace(p.src[p.pos+2 : p.pos+end]))
		p.pos += end + 1
		return htmlToken{kind: tokClose, tag: tag}, true
	}
	// Open tag. A bare '<' not followed by a letter is text.
	if p.pos+1 >= len(p.src) || !isAlpha(p.src[p.pos+1]) {
		p.pos++
		return htmlToken{kind: tokText, data: "<"}, true
	}
	end := p.findTagEnd()
	raw := p.src[p.pos+1 : end]
	p.pos = end + 1
	selfClose := strings.HasSuffix(raw, "/")
	raw = strings.TrimSuffix(raw, "/")
	tag, attrs := parseTagBody(raw)
	return htmlToken{kind: tokOpen, tag: tag, attrs: attrs, selfClose: selfClose}, true
}

// findTagEnd locates the terminating '>' of the tag starting at p.pos,
// respecting quoted attribute values.
func (p *htmlParser) findTagEnd() int {
	inQuote := byte(0)
	for i := p.pos + 1; i < len(p.src); i++ {
		c := p.src[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '>':
			return i
		}
	}
	return len(p.src) - 1
}

// rawUntil consumes raw text up to (not including) the case-insensitive
// marker, leaving the parser positioned at the marker's close tag.
func (p *htmlParser) rawUntil(marker string) string {
	lower := strings.ToLower(p.src[p.pos:])
	idx := strings.Index(lower, strings.ToLower(marker))
	if idx < 0 {
		out := p.src[p.pos:]
		p.pos = len(p.src)
		return out
	}
	out := p.src[p.pos : p.pos+idx]
	p.pos += idx
	return out
}

func parseTagBody(raw string) (string, map[string]string) {
	i := 0
	for i < len(raw) && !isSpace(raw[i]) {
		i++
	}
	tag := strings.ToLower(raw[:i])
	attrs := make(map[string]string)
	for i < len(raw) {
		for i < len(raw) && isSpace(raw[i]) {
			i++
		}
		if i >= len(raw) {
			break
		}
		start := i
		for i < len(raw) && raw[i] != '=' && !isSpace(raw[i]) {
			i++
		}
		name := strings.ToLower(raw[start:i])
		if name == "" {
			i++
			continue
		}
		if i >= len(raw) || raw[i] != '=' {
			attrs[name] = "" // boolean attribute
			continue
		}
		i++ // '='
		if i < len(raw) && (raw[i] == '"' || raw[i] == '\'') {
			q := raw[i]
			i++
			vstart := i
			for i < len(raw) && raw[i] != q {
				i++
			}
			attrs[name] = raw[vstart:i]
			if i < len(raw) {
				i++
			}
		} else {
			vstart := i
			for i < len(raw) && !isSpace(raw[i]) {
				i++
			}
			attrs[name] = raw[vstart:i]
		}
	}
	return tag, attrs
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
