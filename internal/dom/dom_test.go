package dom

import (
	"reflect"
	"strings"
	"testing"
)

const page = `<!DOCTYPE html>
<html>
<head>
  <title>Test Page</title>
  <link rel="stylesheet" href="/style.css">
  <script src="/app.js"></script>
</head>
<body class="main dark">
  <h1 id="head">Hello</h1>
  <p>First<p>Second
  <ul>
    <li class="item">one
    <li class="item special">two
  </ul>
  <a href="https://example.com/x">link</a>
  <a href="/relative">rel</a>
  <img src="/logo.png">
  <script>var x = "<p>not a tag</p>";</script>
  <!-- a comment -->
  <div id="app"><span>inner</span></div>
</body>
</html>`

func TestParseBasicStructure(t *testing.T) {
	d := Parse(page)
	if d.Title != "Test Page" {
		t.Errorf("Title = %q", d.Title)
	}
	if d.Body() == nil || d.Head() == nil {
		t.Fatal("missing body or head")
	}
	if got := d.GetElementByID("head"); got == nil || got.Text() != "Hello" {
		t.Errorf("GetElementByID(head) = %+v", got)
	}
	if got := d.GetElementByID("nope"); got != nil {
		t.Errorf("GetElementByID(nope) = %+v", got)
	}
}

func TestImplicitClose(t *testing.T) {
	d := Parse(page)
	ps := d.GetElementsByTagName("p")
	if len(ps) != 2 {
		t.Fatalf("p count = %d, want 2", len(ps))
	}
	if ps[0].Text() != "First" || !strings.HasPrefix(ps[1].Text(), "Second") {
		t.Errorf("p texts = %q, %q", ps[0].Text(), ps[1].Text())
	}
	lis := d.GetElementsByTagName("li")
	if len(lis) != 2 {
		t.Errorf("li count = %d, want 2", len(lis))
	}
}

func TestScriptRawText(t *testing.T) {
	d := Parse(page)
	scripts := d.Scripts()
	if len(scripts) != 2 {
		t.Fatalf("script count = %d", len(scripts))
	}
	if !strings.Contains(scripts[1].Text(), "<p>not a tag</p>") {
		t.Errorf("script content parsed as markup: %q", scripts[1].Text())
	}
	// The fake tag inside the script must not become a p element.
	if n := len(d.GetElementsByTagName("p")); n != 2 {
		t.Errorf("p count with script tag = %d", n)
	}
}

func TestQuerySelectorAll(t *testing.T) {
	d := Parse(page)
	cases := []struct {
		sel  string
		want int
	}{
		{"li", 2},
		{".item", 2},
		{".special", 1},
		{"li.special", 1},
		{"#app", 1},
		{"a, img", 3},
		{"nothing", 0},
	}
	for _, c := range cases {
		if got := len(d.QuerySelectorAll(c.sel)); got != c.want {
			t.Errorf("QuerySelectorAll(%q) = %d, want %d", c.sel, got, c.want)
		}
	}
}

func TestTagCounts(t *testing.T) {
	d := Parse(page)
	counts := d.TagCounts()
	for tag, want := range map[string]int{"p": 2, "li": 2, "a": 2, "script": 2, "img": 1, "div": 1} {
		if counts[tag] != want {
			t.Errorf("TagCounts[%s] = %d, want %d", tag, counts[tag], want)
		}
	}
}

func TestLinksAndSubresources(t *testing.T) {
	d := Parse(page)
	if got := d.Links(); !reflect.DeepEqual(got, []string{"https://example.com/x", "/relative"}) {
		t.Errorf("Links = %v", got)
	}
	subs := d.SubresourceURLs()
	want := map[string]bool{"/style.css": true, "/app.js": true, "/logo.png": true}
	if len(subs) != len(want) {
		t.Fatalf("subresources = %v", subs)
	}
	for _, s := range subs {
		if !want[s] {
			t.Errorf("unexpected subresource %q", s)
		}
	}
}

func TestCreateInsertDetach(t *testing.T) {
	d := Parse(page)
	app := d.GetElementByID("app")
	span := app.Children[0]
	newEl := d.CreateElement("SCRIPT")
	if newEl.Tag != "script" {
		t.Errorf("CreateElement tag = %q", newEl.Tag)
	}
	app.InsertBefore(newEl, span)
	if app.Children[0] != newEl || newEl.Parent != app {
		t.Error("InsertBefore misplaced node")
	}
	newEl.Detach()
	if len(app.Children) != 1 || newEl.Parent != nil {
		t.Error("Detach failed")
	}
	// InsertBefore with nil ref appends.
	app.InsertBefore(newEl, nil)
	if app.Children[len(app.Children)-1] != newEl {
		t.Error("InsertBefore(nil) did not append")
	}
}

func TestAttributes(t *testing.T) {
	d := Parse(`<input type=checkbox checked value='a b'>`)
	in := d.GetElementsByTagName("input")[0]
	if in.Attr("type") != "checkbox" || in.Attr("value") != "a b" {
		t.Errorf("attrs = %+v", in.Attributes)
	}
	if _, ok := in.Attributes["checked"]; !ok {
		t.Error("boolean attribute lost")
	}
	in.SetAttr("Data-X", "1")
	if in.Attr("data-x") != "1" {
		t.Error("SetAttr case-insensitivity broken")
	}
}

func TestMalformedInputs(t *testing.T) {
	// None of these may panic; structure checks are best-effort.
	for _, src := range []string{
		"", "<", "<>", "</close-only>", "<div", "<div><span></div>",
		"<!-- unterminated", "<script>never closed", `<a href="unclosed>`,
		"text only", "<p></p></p></p>", "< notatag >",
	} {
		d := Parse(src)
		if d == nil || d.Root == nil {
			t.Errorf("Parse(%q) returned nil document", src)
		}
	}
}

func TestOuterHTMLRoundTrips(t *testing.T) {
	d := Parse(`<div id="x" class="y"><b>bold</b> text</div>`)
	out := OuterHTML(d.Root)
	for _, want := range []string{`<div`, `id="x"`, `class="y"`, `<b>bold</b>`, `text`} {
		if !strings.Contains(out, want) {
			t.Errorf("OuterHTML missing %q: %s", want, out)
		}
	}
	// Re-parsing the serialisation preserves the tag census.
	if !reflect.DeepEqual(Parse(out).TagCounts(), d.TagCounts()) {
		t.Error("serialise/parse round trip changed tag counts")
	}
}

func TestVoidElements(t *testing.T) {
	d := Parse(`<div><br><img src=x><hr>after</div>`)
	div := d.GetElementsByTagName("div")[0]
	if div.Text() != "after" {
		t.Errorf("void elements swallowed text: %q", div.Text())
	}
	if n := len(d.GetElementsByTagName("br")); n != 1 {
		t.Errorf("br count = %d", n)
	}
}
