// Package dom provides the HTML document model the browser simulation
// renders and injected JavaScript manipulates: a tokenising parser, an
// element tree, tag-frequency counts (Table 8's "DOM tag counts"
// injection), and the query operations the Web APIs of Table 9 rely on
// (getElementById, getElementsByTagName, querySelectorAll, createElement,
// insertBefore, …).
package dom

import (
	"fmt"
	"sort"
	"strings"
)

// NodeType distinguishes element and text nodes.
type NodeType int

// Node types.
const (
	ElementNode NodeType = iota
	TextNode
	CommentNode
	DocumentNode
)

// Node is one DOM node. Element nodes have a Tag and Attributes; text and
// comment nodes carry Data.
type Node struct {
	Type       NodeType
	Tag        string // lower-case element name
	Attributes map[string]string
	Data       string // text/comment content
	Parent     *Node
	Children   []*Node
}

// Attr returns an attribute value ("" when absent).
func (n *Node) Attr(name string) string {
	return n.Attributes[strings.ToLower(name)]
}

// SetAttr sets an attribute.
func (n *Node) SetAttr(name, value string) {
	if n.Attributes == nil {
		n.Attributes = make(map[string]string)
	}
	n.Attributes[strings.ToLower(name)] = value
}

// ID returns the element's id attribute.
func (n *Node) ID() string { return n.Attr("id") }

// AppendChild adds a child (re-parenting it if needed).
func (n *Node) AppendChild(c *Node) {
	c.Detach()
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertBefore inserts newChild before ref among n's children; when ref is
// nil or not a child, newChild is appended.
func (n *Node) InsertBefore(newChild, ref *Node) {
	newChild.Detach()
	newChild.Parent = n
	if ref != nil {
		for i, c := range n.Children {
			if c == ref {
				n.Children = append(n.Children[:i], append([]*Node{newChild}, n.Children[i:]...)...)
				return
			}
		}
	}
	n.Children = append(n.Children, newChild)
}

// Detach removes the node from its parent.
func (n *Node) Detach() {
	p := n.Parent
	if p == nil {
		return
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
}

// Walk visits n and its descendants in document order; returning false
// from f stops the walk.
func (n *Node) Walk(f func(*Node) bool) bool {
	if !f(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(f) {
			return false
		}
	}
	return true
}

// Text concatenates the text content of the subtree.
func (n *Node) Text() string {
	var sb strings.Builder
	n.Walk(func(m *Node) bool {
		if m.Type == TextNode {
			sb.WriteString(m.Data)
		}
		return true
	})
	return strings.TrimSpace(sb.String())
}

// Document is a parsed HTML document.
type Document struct {
	Root  *Node // the document node
	Title string
	URL   string
}

// Body returns the <body> element, or nil.
func (d *Document) Body() *Node { return d.first("body") }

// Head returns the <head> element, or nil.
func (d *Document) Head() *Node { return d.first("head") }

func (d *Document) first(tag string) *Node {
	var found *Node
	d.Root.Walk(func(n *Node) bool {
		if n.Type == ElementNode && n.Tag == tag {
			found = n
			return false
		}
		return true
	})
	return found
}

// GetElementByID implements document.getElementById.
func (d *Document) GetElementByID(id string) *Node {
	var found *Node
	d.Root.Walk(func(n *Node) bool {
		if n.Type == ElementNode && n.ID() == id {
			found = n
			return false
		}
		return true
	})
	return found
}

// GetElementsByTagName implements document.getElementsByTagName ("*"
// matches every element).
func (d *Document) GetElementsByTagName(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	d.Root.Walk(func(n *Node) bool {
		if n.Type == ElementNode && (tag == "*" || n.Tag == tag) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// QuerySelectorAll supports the selector subset the measured injections
// use: "tag", "#id", ".class", "tag.class" and comma lists.
func (d *Document) QuerySelectorAll(selector string) []*Node {
	var out []*Node
	seen := make(map[*Node]bool)
	for _, sel := range strings.Split(selector, ",") {
		sel = strings.TrimSpace(sel)
		if sel == "" {
			continue
		}
		d.Root.Walk(func(n *Node) bool {
			if n.Type == ElementNode && matches(n, sel) && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
			return true
		})
	}
	return out
}

func matches(n *Node, sel string) bool {
	switch {
	case sel == "*":
		return true
	case strings.HasPrefix(sel, "#"):
		return n.ID() == sel[1:]
	case strings.HasPrefix(sel, "."):
		return hasClass(n, sel[1:])
	case strings.Contains(sel, "."):
		parts := strings.SplitN(sel, ".", 2)
		return n.Tag == strings.ToLower(parts[0]) && hasClass(n, parts[1])
	default:
		return n.Tag == strings.ToLower(sel)
	}
}

func hasClass(n *Node, class string) bool {
	for _, c := range strings.Fields(n.Attr("class")) {
		if c == class {
			return true
		}
	}
	return false
}

// CreateElement implements document.createElement; the node is detached.
func (d *Document) CreateElement(tag string) *Node {
	return &Node{Type: ElementNode, Tag: strings.ToLower(tag), Attributes: map[string]string{}}
}

// TagCounts returns the frequency dictionary of element tags, the payload
// of the Facebook/Instagram DOM-count injection (Table 8).
func (d *Document) TagCounts() map[string]int {
	counts := make(map[string]int)
	d.Root.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			counts[n.Tag]++
		}
		return true
	})
	return counts
}

// Scripts returns the <script> elements in document order.
func (d *Document) Scripts() []*Node { return d.GetElementsByTagName("script") }

// Links returns the href values of <a> elements.
func (d *Document) Links() []string {
	var out []string
	for _, a := range d.GetElementsByTagName("a") {
		if href := a.Attr("href"); href != "" {
			out = append(out, href)
		}
	}
	return out
}

// SubresourceURLs returns the URLs of subresources the page loads:
// script[src], img[src], link[href rel=stylesheet], iframe[src],
// video/audio/source[src].
func (d *Document) SubresourceURLs() []string {
	var out []string
	d.Root.Walk(func(n *Node) bool {
		if n.Type != ElementNode {
			return true
		}
		switch n.Tag {
		case "script", "img", "iframe", "video", "audio", "source", "embed":
			if src := n.Attr("src"); src != "" {
				out = append(out, src)
			}
		case "link":
			rel := strings.ToLower(n.Attr("rel"))
			if (rel == "stylesheet" || rel == "icon") && n.Attr("href") != "" {
				out = append(out, n.Attr("href"))
			}
		}
		return true
	})
	return out
}

// OuterHTML serialises the subtree (for debugging and hashes).
func OuterHTML(n *Node) string {
	var sb strings.Builder
	writeHTML(&sb, n)
	return sb.String()
}

func writeHTML(sb *strings.Builder, n *Node) {
	switch n.Type {
	case TextNode:
		sb.WriteString(n.Data)
	case CommentNode:
		fmt.Fprintf(sb, "<!--%s-->", n.Data)
	case DocumentNode:
		for _, c := range n.Children {
			writeHTML(sb, c)
		}
	case ElementNode:
		sb.WriteByte('<')
		sb.WriteString(n.Tag)
		keys := make([]string, 0, len(n.Attributes))
		for k := range n.Attributes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(sb, " %s=%q", k, n.Attributes[k])
		}
		if voidElements[n.Tag] && len(n.Children) == 0 {
			sb.WriteString("/>")
			return
		}
		sb.WriteByte('>')
		for _, c := range n.Children {
			writeHTML(sb, c)
		}
		fmt.Fprintf(sb, "</%s>", n.Tag)
	}
}
