// Package jsvm is a small JavaScript interpreter sufficient to execute the
// scripts the paper observes apps injecting into WebViews: ES5-style
// function expressions and IIFEs, DOM manipulation through host objects,
// string/number arithmetic, control flow, and try/catch. It is the engine
// behind the browser simulation's <script> execution and the WebView
// runtime's evaluateJavascript.
//
// The interpreter is a tree walker over a hand-written parser. Host
// integrations (document, window, console, JS bridges) are provided as
// host objects with Go-function properties; see NewObject, HostFunc and
// VM.Global.
package jsvm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates JavaScript value kinds.
type Kind int

// Value kinds.
const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject // objects, arrays and functions
)

// kindUnset marks a frame slot whose binding has not executed its
// declaration yet (the tree walker models this as "absent from the scope
// map"). It never escapes the VM: every slot read goes through a lookup
// that skips unset slots.
const kindUnset Kind = -1

// Value is a JavaScript value. The zero Value is undefined.
type Value struct {
	kind Kind
	b    bool
	n    float64
	s    string
	o    *Object
}

// Constructors.

// Undefined returns the undefined value.
func Undefined() Value { return Value{} }

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Bool wraps a Go bool.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Number wraps a float64.
func Number(n float64) Value { return Value{kind: KindNumber, n: n} }

// String wraps a Go string.
func String(s string) Value { return Value{kind: KindString, s: s} }

// ObjectValue wraps an object.
func ObjectValue(o *Object) Value { return Value{kind: KindObject, o: o} }

// Accessors.

// Kind reports the value kind.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether the value is undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsNullish reports null or undefined.
func (v Value) IsNullish() bool { return v.kind == KindUndefined || v.kind == KindNull }

// Object returns the underlying object (nil for non-objects).
func (v Value) Object() *Object {
	if v.kind == KindObject {
		return v.o
	}
	return nil
}

// Truthy implements JavaScript boolean coercion.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindNumber:
		return v.n != 0 && !math.IsNaN(v.n)
	case KindString:
		return v.s != ""
	case KindObject:
		return true
	default:
		return false
	}
}

// NumberValue implements ToNumber coercion.
func (v Value) NumberValue() float64 {
	switch v.kind {
	case KindNumber:
		return v.n
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindString:
		s := strings.TrimSpace(v.s)
		if s == "" {
			return 0
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case KindNull:
		return 0
	default:
		return math.NaN()
	}
}

// StringValue implements ToString coercion.
func (v Value) StringValue() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindNumber:
		return formatNumber(v.n)
	case KindString:
		return v.s
	case KindObject:
		if v.o.IsArray() {
			parts := make([]string, len(v.o.elems))
			for i, e := range v.o.elems {
				if !e.IsNullish() {
					parts[i] = e.StringValue()
				}
			}
			return strings.Join(parts, ",")
		}
		if v.o.call {
			return "function " + v.o.name + "() { [code] }"
		}
		return "[object Object]"
	}
	return ""
}

func formatNumber(n float64) string {
	switch {
	case math.IsNaN(n):
		return "NaN"
	case math.IsInf(n, 1):
		return "Infinity"
	case math.IsInf(n, -1):
		return "-Infinity"
	case n == math.Trunc(n) && math.Abs(n) < 1e15:
		return strconv.FormatInt(int64(n), 10)
	default:
		return strconv.FormatFloat(n, 'g', -1, 64)
	}
}

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		if v.o.call {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// Call is the invocation context passed to host functions.
type Call struct {
	VM   *VM
	This Value
	Args []Value
}

// Arg returns the i-th argument or undefined.
func (c *Call) Arg(i int) Value {
	if i < len(c.Args) {
		return c.Args[i]
	}
	return Undefined()
}

// HostFunc is a Go function exposed to scripts.
type HostFunc func(Call) (Value, error)

// Object is a JavaScript object: a property map, optionally array
// elements, optionally callable (script function or host function), and
// an opaque Host slot host integrations use to attach Go state (e.g. a
// *dom.Node).
type Object struct {
	props map[string]Value
	elems []Value // non-nil marks an array
	array bool

	// Callable state: fn (AST script function), proto (bytecode script
	// function) or host.
	fn    *funcLit
	env   *scope
	proto *funcProto
	cells []*cell // captured bindings of a bytecode closure
	host  HostFunc
	call  bool // true when callable
	name  string

	// version counts property-map writes (Set/Delete). Inline caches in the
	// bytecode VM validate against it; wrap-around is harmless (a stale hit
	// needs 2^32 writes between two reads of the same site).
	version uint32

	// Host is arbitrary Go state attached by embedders.
	Host any
}

// NewObject returns an empty plain object.
func NewObject() *Object { return &Object{props: map[string]Value{}} }

// NewArray returns an array object with the given elements.
func NewArray(elems ...Value) *Object {
	return &Object{props: map[string]Value{}, elems: append([]Value{}, elems...), array: true}
}

// NewHostFunc wraps a Go function as a callable object.
func NewHostFunc(name string, f HostFunc) *Object {
	return &Object{props: map[string]Value{}, host: f, call: true, name: name}
}

// IsArray reports whether the object is an array.
func (o *Object) IsArray() bool { return o.array }

// IsCallable reports whether the object can be invoked.
func (o *Object) IsCallable() bool { return o.call }

// Name returns the function name ("" for plain objects).
func (o *Object) Name() string { return o.name }

// Elems returns the array elements (nil for non-arrays).
func (o *Object) Elems() []Value { return o.elems }

// Append adds elements to an array object.
func (o *Object) Append(vals ...Value) { o.elems = append(o.elems, vals...) }

// Get reads a property (own properties only; prototypes are not modelled).
func (o *Object) Get(name string) Value {
	if o.array && name == "length" {
		return Number(float64(len(o.elems)))
	}
	if v, ok := o.props[name]; ok {
		return v
	}
	return Undefined()
}

// Has reports whether the property exists.
func (o *Object) Has(name string) bool {
	_, ok := o.props[name]
	return ok
}

// Set writes a property.
func (o *Object) Set(name string, v Value) {
	if o.props == nil {
		o.props = map[string]Value{}
	}
	o.props[name] = v
	o.version++
}

// Delete removes a property (the delete operator).
func (o *Object) Delete(name string) {
	if o.props != nil {
		delete(o.props, name)
		o.version++
	}
}

// SetFunc attaches a host function property, a convenience for embedders.
func (o *Object) SetFunc(name string, f HostFunc) {
	o.Set(name, ObjectValue(NewHostFunc(name, f)))
}

// Keys returns the property names, sorted (for deterministic for-in).
func (o *Object) Keys() []string {
	out := make([]string, 0, len(o.props))
	for k := range o.props {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Index reads an array element (undefined when out of range).
func (o *Object) Index(i int) Value {
	if i >= 0 && i < len(o.elems) {
		return o.elems[i]
	}
	return Undefined()
}

// SetIndex writes an array element, growing the array as needed.
func (o *Object) SetIndex(i int, v Value) {
	for len(o.elems) <= i {
		o.elems = append(o.elems, Undefined())
	}
	o.elems[i] = v
}

// Error is a JavaScript runtime error carrying the thrown value.
type Error struct {
	Value Value
	Where string
}

func (e *Error) Error() string {
	msg := e.Value.StringValue()
	if o := e.Value.Object(); o != nil {
		if m := o.Get("message"); !m.IsUndefined() {
			msg = m.StringValue()
		}
	}
	if e.Where != "" {
		return fmt.Sprintf("jsvm: %s at %s", msg, e.Where)
	}
	return "jsvm: " + msg
}

// throwError builds a thrown error value.
func throwError(format string, args ...any) error {
	o := NewObject()
	o.Set("message", String(fmt.Sprintf(format, args...)))
	o.Set("name", String("Error"))
	return &Error{Value: ObjectValue(o)}
}
