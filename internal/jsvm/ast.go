package jsvm

// AST node types. The interpreter walks these directly; positions are
// line numbers for error reporting.

type node interface{ line() int }

type pos struct{ ln int }

func (p pos) line() int { return p.ln }

// Expressions.

type numberLit struct {
	pos
	val float64
}

type stringLit struct {
	pos
	val string
}

type boolLit struct {
	pos
	val bool
}

type nullLit struct{ pos }

type undefinedLit struct{ pos }

type thisExpr struct{ pos }

type identExpr struct {
	pos
	name string
}

type arrayLit struct {
	pos
	elems []node
}

type propPair struct {
	key string
	val node
}

type objectLit struct {
	pos
	props []propPair
}

type funcLit struct {
	pos
	name   string
	params []string
	body   []node
	// usesArgs marks bodies that may reference `arguments` (set
	// conservatively at parse time); when false, calls skip building the
	// arguments array.
	usesArgs bool
}

type memberExpr struct {
	pos
	obj      node
	prop     string // static property; "" when computed
	computed node   // index expression when computed
}

type callExpr struct {
	pos
	callee node
	args   []node
}

type newExpr struct {
	pos
	callee node
	args   []node
}

type unaryExpr struct {
	pos
	op   string // "!", "-", "+", "typeof", "void", "delete"
	expr node
}

type updateExpr struct {
	pos
	op     string // "++" or "--"
	target node
	prefix bool
}

type binaryExpr struct {
	pos
	op    string
	left  node
	right node
}

type logicalExpr struct {
	pos
	op    string // "&&" or "||"
	left  node
	right node
}

type condExpr struct {
	pos
	cond node
	then node
	alt  node
}

type assignExpr struct {
	pos
	op     string // "=", "+=", "-=", "*=", "/=", "%="
	target node   // identExpr or memberExpr
	value  node
}

type seqExpr struct {
	pos
	exprs []node
}

// Statements.

type varDecl struct {
	pos
	names  []string
	values []node // nil entries mean undefined
}

type exprStmt struct {
	pos
	expr node
}

type blockStmt struct {
	pos
	body []node
}

type ifStmt struct {
	pos
	cond node
	then node
	alt  node // may be nil
}

type forStmt struct {
	pos
	init node // statement or nil
	cond node // expression or nil
	post node // expression or nil
	body node
}

type forInStmt struct {
	pos
	varName string
	of      bool // for-of (iterates values) vs for-in (keys)
	obj     node
	body    node
}

type whileStmt struct {
	pos
	cond node
	body node
}

type returnStmt struct {
	pos
	value node // may be nil
}

type breakStmt struct{ pos }

type continueStmt struct{ pos }

type throwStmt struct {
	pos
	value node
}

type tryStmt struct {
	pos
	body      node
	catchVar  string
	catchBody node // may be nil
	finally   node // may be nil
}

type funcDecl struct {
	pos
	fn *funcLit
}
