package jsvm

import (
	"fmt"
	"strings"
	"testing"
)

// parseHeavySrc builds the kind of script the crawl executes thousands of
// times: a large SDK-style bundle (many function definitions) whose actual
// per-visit execution is small. Parsing dominates; caching the parse is
// the win the program cache exists for.
func parseHeavySrc() string {
	var b strings.Builder
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, `
			function handler%d(ev) {
				var payload = { kind: "event", seq: %d, data: ev };
				if (payload.seq %% 2 === 0) { payload.even = true }
				return payload.kind + ":" + payload.seq
			}
		`, i, i)
	}
	b.WriteString(`
		var out = [];
		for (var i = 0; i < 5; i++) { out.push(handler0(i)) }
		out.length
	`)
	return b.String()
}

// BenchmarkJSVMColdParse is the pre-cache behaviour: every execution
// re-parses the script from source.
func BenchmarkJSVMColdParse(b *testing.B) {
	src := parseHeavySrc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm := New()
		if _, err := vm.Run(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSVMCachedParse executes a pre-parsed program on a fresh VM
// per iteration — the hot path after the program cache warms up.
func BenchmarkJSVMCachedParse(b *testing.B) {
	src := parseHeavySrc()
	prog, err := Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := New()
		if _, err := vm.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSVMExecuteHot measures repeated execution inside one VM —
// where the scope and argument pooling shows up.
func BenchmarkJSVMExecuteHot(b *testing.B) {
	prog, err := Compile(`
		function work(n) {
			var t = 0;
			for (var i = 0; i < n; i++) { t += i }
			return t
		}
		work(50)
	`)
	if err != nil {
		b.Fatal(err)
	}
	vm := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSVMBytecodeExecute is BenchmarkJSVMExecuteHot pinned to the
// bytecode engine, with an AST-engine pair for same-binary comparison.
func BenchmarkJSVMBytecodeExecute(b *testing.B) {
	prog, err := Compile(`
		function work(n) {
			var t = 0;
			for (var i = 0; i < n; i++) { t += i }
			return t
		}
		work(50)
	`)
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []Engine{EngineBytecode, EngineAST} {
		b.Run(eng.String(), func(b *testing.B) {
			vm := New()
			vm.Engine = eng
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.RunProgram(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJSVMCompile measures the full compile pipeline (parse +
// bytecode lowering) on the 120-function bundle — the cost a program
// cache miss pays once per distinct script.
func BenchmarkJSVMCompile(b *testing.B) {
	src := parseHeavySrc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// TestICHitRate pins the inline caches actually engaging: on a hot
// property/global workload the steady-state hit rate must be high.
func TestICHitRate(t *testing.T) {
	prog, err := Compile(`
		var obj = {a: 1, b: 2};
		function read() { return obj.a + obj.b }
		var t = 0;
		for (var i = 0; i < 200; i++) { t += read() }
		t
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.main == nil {
		t.Fatal("program did not lower to bytecode")
	}
	vm := New()
	vm.Engine = EngineBytecode
	for i := 0; i < 5; i++ {
		if _, err := vm.RunProgram(prog); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := vm.ICStats()
	if hits+misses == 0 {
		t.Fatal("no inline-cache traffic recorded")
	}
	rate := float64(hits) / float64(hits+misses)
	if rate < 0.95 {
		t.Errorf("IC hit rate = %.3f (hits=%d misses=%d), want >= 0.95", rate, hits, misses)
	}
}
