package jsvm

import (
	"fmt"
	"strings"
	"testing"
)

// parseHeavySrc builds the kind of script the crawl executes thousands of
// times: a large SDK-style bundle (many function definitions) whose actual
// per-visit execution is small. Parsing dominates; caching the parse is
// the win the program cache exists for.
func parseHeavySrc() string {
	var b strings.Builder
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, `
			function handler%d(ev) {
				var payload = { kind: "event", seq: %d, data: ev };
				if (payload.seq %% 2 === 0) { payload.even = true }
				return payload.kind + ":" + payload.seq
			}
		`, i, i)
	}
	b.WriteString(`
		var out = [];
		for (var i = 0; i < 5; i++) { out.push(handler0(i)) }
		out.length
	`)
	return b.String()
}

// BenchmarkJSVMColdParse is the pre-cache behaviour: every execution
// re-parses the script from source.
func BenchmarkJSVMColdParse(b *testing.B) {
	src := parseHeavySrc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm := New()
		if _, err := vm.Run(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSVMCachedParse executes a pre-parsed program on a fresh VM
// per iteration — the hot path after the program cache warms up.
func BenchmarkJSVMCachedParse(b *testing.B) {
	src := parseHeavySrc()
	prog, err := Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := New()
		if _, err := vm.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSVMExecuteHot measures repeated execution inside one VM —
// where the scope and argument pooling shows up.
func BenchmarkJSVMExecuteHot(b *testing.B) {
	prog, err := Compile(`
		function work(n) {
			var t = 0;
			for (var i = 0; i < n; i++) { t += i }
			return t
		}
		work(50)
	`)
	if err != nil {
		b.Fatal(err)
	}
	vm := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}
