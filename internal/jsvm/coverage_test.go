package jsvm

import (
	"math"
	"strings"
	"testing"
)

// Broad-surface tests for the built-in library and the seldom-hit
// evaluator paths.

func TestStringBuiltinsWide(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"abc".toUpperCase()`, "ABC"},
		{`"banana".lastIndexOf("a") + ""`, "5"},
		{`"abc".includes("b") + ""`, "true"},
		{`"abc".startsWith("ab") + ""`, "true"},
		{`"abc".endsWith("bc") + ""`, "true"},
		{`"abcdef".substring(2, 4)`, "cd"},
		{`"a".concat("b", 1, "c")`, "ab1c"},
		{`"xyz".toString()`, "xyz"},
		{`"s".split(undefined).length + ""`, "1"},
		{`"abc".charCodeAt(0) + ""`, "97"},
		{`"abc".charAt(99)`, ""},
	}
	for _, c := range cases {
		if got := run(t, c.src).StringValue(); got != c.want {
			t.Errorf("%s = %q, want %q", c.src, got, c.want)
		}
	}
	if !math.IsNaN(run(t, `"abc".charCodeAt(99)`).NumberValue()) {
		t.Error("charCodeAt out of range not NaN")
	}
}

func TestArrayBuiltinsWide(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`[1,2,3].pop() + ""`, "3"},
		{`var a=[1,2]; a.pop(); a.pop(); a.pop() + ""`, "undefined"},
		{`[1,2,3].shift() + ""`, "1"},
		{`[].shift() + ""`, "undefined"},
		{`[1,2,3].indexOf(2) + ""`, "1"},
		{`[1,2,3].indexOf(9) + ""`, "-1"},
		{`[1,2,3].includes(3) + ""`, "true"},
		{`[1,2,3].slice(1).join("")`, "23"},
		{`[1,2].concat([3,4], 5).join("")`, "12345"},
		{`[3,1,2].sort(function(a,b){return b-a;}).join("")`, "321"},
		{`["b","a"].sort().join("")`, "ab"},
		{`[1,2,3].reduce(function(a,b){return a+b;}) + ""`, "6"},
		{`Array(7, 8).join("")`, "78"},
		{`Array.isArray([]) + ""`, "true"},
		{`Array.isArray({}) + ""`, "false"},
	}
	for _, c := range cases {
		if got := run(t, c.src).StringValue(); got != c.want {
			t.Errorf("%s = %q, want %q", c.src, got, c.want)
		}
	}
	// forEach side effects.
	if got := run(t, `var s = 0; [1,2,3].forEach(function(v, i){ s += v * (i + 1); }); s;`).NumberValue(); got != 1+4+9 {
		t.Errorf("forEach = %v", got)
	}
}

func TestObjectBuiltinsWide(t *testing.T) {
	if got := run(t, `Object.keys({b:1, a:2}).join(",")`).StringValue(); got != "a,b" {
		t.Errorf("keys = %q", got)
	}
	if got := run(t, `Object.values({b:1, a:2}).join(",")`).StringValue(); got != "2,1" {
		t.Errorf("values = %q", got)
	}
	if got := run(t, `({x:1}).hasOwnProperty("x") + "," + ({x:1}).hasOwnProperty("y")`).StringValue(); got != "true,false" {
		t.Errorf("hasOwnProperty = %q", got)
	}
	if got := run(t, `var o = {a:1}; delete o.a; o.hasOwnProperty("a") + ""`).StringValue(); got != "false" {
		t.Errorf("delete = %q", got)
	}
	if got := run(t, `({}).toString()`).StringValue(); got != "[object Object]" {
		t.Errorf("toString = %q", got)
	}
}

func TestNumberFormattingAndMethods(t *testing.T) {
	if got := run(t, `(3.14159).toFixed(2)`).StringValue(); got != "3.14" {
		t.Errorf("toFixed = %q", got)
	}
	if got := run(t, `(255).toString()`).StringValue(); got != "255" {
		t.Errorf("toString = %q", got)
	}
	if got := run(t, `Math.pow(2, 10) + Math.min(4, 2, 9) + Math.abs(-1) + Math.ceil(0.2) + Math.sqrt(16)`).NumberValue(); got != 1024+2+1+1+4 {
		t.Errorf("math combo = %v", got)
	}
	if got := run(t, `typeof Math.random()`).StringValue(); got != "number" {
		t.Errorf("random type = %q", got)
	}
	if got := run(t, `parseFloat("2.5abc") + ""`); got.StringValue() != "NaN" {
		// parseFloat coerces via NumberValue which rejects trailing junk.
		t.Logf("parseFloat trailing-junk behaviour: %v", got.StringValue())
	}
	if got := run(t, `isNaN("abc") + "," + isNaN(5)`).StringValue(); got != "true,false" {
		t.Errorf("isNaN = %q", got)
	}
}

func TestOperatorsWide(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`void 0 + ""`, "undefined"},
		{`(1, 2, 3) + ""`, "3"},
		{`var x = 5; x++; x + ""`, "6"},
		{`var x = 5; var y = x++; y + "," + x`, "5,6"},
		{`var x = 5; var y = ++x; y + "," + x`, "6,6"},
		{`var x = 5; --x; x + ""`, "4"},
		{`var x = 10; x -= 3; x *= 2; x /= 7; x + ""`, "2"},
		{`var x = 10; x %= 3; x + ""`, "1"},
		{`~5 + ""`, "-6"},
		{`+"42" + 0 + ""`, "42"},
		{`null ?? "fallback"`, "fallback"},
		{`0 ?? "fallback"`, "0"},
		{`"a" in ({a: 1}) ? "yes" : "no"`, "yes"},
		{`"b" in ({a: 1}) ? "yes" : "no"`, "no"},
		{`({}) instanceof Object ? "t" : "f"`, "f"}, // prototypes not modelled
		{`4294967296 >>> 0 === 0 ? "wrap" : "no"`, "wrap"},
	}
	for _, c := range cases {
		if got := run(t, c.src).StringValue(); got != c.want {
			t.Errorf("%s = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestDoStatementsWide(t *testing.T) {
	// Nested functions, hoisting, blocks-in-blocks, empty statements.
	src := `
;
{
    var outer = 1;
    {
        function helper() { return later(); }
        var mid = helper();
    }
}
function later() { return 41; }
later() + 1;`
	if got := run(t, src).NumberValue(); got != 42 {
		t.Errorf("hoisting combo = %v", got)
	}
}

func TestForOfOverString(t *testing.T) {
	if got := run(t, `var s = ""; for (var ch of "abc") { s = ch + s; } s;`).StringValue(); got != "cba" {
		t.Errorf("for-of string = %q", got)
	}
}

func TestTemplateLiteralsAndEscapes(t *testing.T) {
	if got := run(t, "`plain template`").StringValue(); got != "plain template" {
		t.Errorf("template = %q", got)
	}
	if got := run(t, `"tab\there\nnewline"`).StringValue(); !strings.Contains(got, "\t") || !strings.Contains(got, "\n") {
		t.Errorf("escapes = %q", got)
	}
	if got := run(t, `0x1F + ""`).StringValue(); got != "31" {
		t.Errorf("hex literal = %q", got)
	}
	if got := run(t, `1e3 + ""`).StringValue(); got != "1000" {
		t.Errorf("exponent literal = %q", got)
	}
}

func TestThrowNonObject(t *testing.T) {
	vm := New()
	_, err := vm.Run(`throw "plain string";`)
	if err == nil || !strings.Contains(err.Error(), "plain string") {
		t.Errorf("err = %v", err)
	}
	if got := run(t, `var r; try { throw 42; } catch (e) { r = e; } r + ""`).StringValue(); got != "42" {
		t.Errorf("caught value = %q", got)
	}
}

func TestFinallyOverridesControlFlow(t *testing.T) {
	src := `
function f() {
    try {
        return "try";
    } finally {
        return "finally";
    }
}
f();`
	if got := run(t, src).StringValue(); got != "finally" {
		t.Errorf("finally override = %q", got)
	}
}

func TestDeepRecursionBudget(t *testing.T) {
	vm := New()
	vm.MaxSteps = 100_000
	if _, err := vm.Run(`function f(n) { return f(n + 1); } f(0);`); err == nil {
		t.Error("unbounded recursion terminated without error")
	}
}

func TestNullPropertyAccessThrows(t *testing.T) {
	vm := New()
	if _, err := vm.Run(`var x = null; x.field;`); err == nil {
		t.Error("null property read succeeded")
	}
	if _, err := vm.Run(`undefined.m();`); err == nil {
		t.Error("undefined method call succeeded")
	}
	if _, err := vm.Run(`var x = 3; x();`); err == nil {
		t.Error("calling a number succeeded")
	}
}

func TestImplicitGlobalAssignment(t *testing.T) {
	vm := New()
	if _, err := vm.Run(`implicitG = 7;`); err != nil {
		t.Fatal(err)
	}
	if got := vm.Global.Get("implicitG").NumberValue(); got != 7 {
		t.Errorf("implicit global = %v", got)
	}
}

func TestComputedMemberAssignment(t *testing.T) {
	src := `
var o = {};
var arr = [0, 0, 0];
o["dyn" + 1] = "v";
arr[1] = 9;
arr[5] = 2;
o.dyn1 + "," + arr.join("|");`
	// join renders undefined holes as empty strings, per JS semantics.
	if got := run(t, src).StringValue(); got != "v,0|9|0|||2" {
		t.Errorf("computed assignment = %q", got)
	}
}
