package jsvm

import (
	"fmt"
	"sort"
	"strconv"
)

// This file is the stack VM executing the bytecode produced by
// compile.go. One frame per call lives on a shared value stack: parameter
// and local slots at the base, operands above. Closures capture heap
// cells; every other binding is a slot. The step budget is charged per
// instruction with a conversion factor keeping budgets calibrated for the
// tree walker valid (bytecode executes roughly as many instructions as
// the walker evaluates nodes, bounded by bcStepFactor).

// bcStepFactor converts an AST-node step budget to a bytecode
// instruction budget: effective limit = MaxSteps * bcStepFactor.
const bcStepFactor = 2

// cell is a heap-allocated binding captured by a closure. set mirrors the
// walker's execution-time declaration: an unset cell falls through to the
// next lookup candidate.
type cell struct {
	v   Value
	set bool
}

// unsetValue marks an undeclared slot.
var unsetValue = Value{kind: kindUnset}

// Execution status of a code segment.
const (
	stNormal uint8 = iota
	stReturn
	stBreak
	stContinue
)

// icEntry is one monomorphic inline-cache slot, private to a (VM,
// program) pair so programs stay immutable and shareable.
type icEntry struct {
	state uint8 // 0 empty, 1 global box, 2 global-object value, 3 property
	gen   uint32
	ver   uint32
	obj   *Object
	box   *Value
	val   Value
}

// frame is one bytecode activation.
type frame struct {
	proto   *funcProto
	base    int32
	cells   []*cell // own cells (fresh per block entry)
	upcells []*cell // captured from the defining frame
	this    Value
	args    []Value // only populated when the function uses `arguments`
	ics     []icEntry
}

// runBytecode executes a program's compiled main function.
func (vm *VM) runBytecode(p *Program) (Value, error) {
	vm.steps = 0
	vm.lastVal = Undefined()
	st, v, err := vm.execProto(p.main, nil, Undefined(), vm.sp, 0)
	vm.flushICTelemetry()
	if err != nil {
		return Undefined(), err
	}
	if st == stReturn {
		return v, nil
	}
	return vm.lastVal, nil
}

// callClosure invokes a bytecode closure with args originating outside
// the VM stack (Go callers, host builtins, the tree walker).
func (vm *VM) callClosure(o *Object, this Value, args []Value) (Value, error) {
	argStart := vm.sp
	vm.ensureStack(argStart + len(args))
	copy(vm.stack[argStart:], args)
	vm.sp = argStart + len(args)
	v, err := vm.callProtoAt(o, this, argStart, len(args))
	vm.sp = argStart
	return v, err
}

func (vm *VM) callProtoAt(o *Object, this Value, argStart, nargs int) (Value, error) {
	st, v, err := vm.execProto(o.proto, o.cells, this, argStart, nargs)
	if err != nil {
		return Undefined(), err
	}
	if st == stReturn {
		return v, nil
	}
	return Undefined(), nil
}

// execProto sets up a frame at argStart (whose nargs arguments are
// already on the stack) and runs the function body.
func (vm *VM) execProto(proto *funcProto, upcells []*cell, this Value, argStart, nargs int) (uint8, Value, error) {
	base := argStart
	np := proto.nparams
	var argsCopy []Value
	if proto.usesArgs && nargs > 0 {
		argsCopy = append([]Value(nil), vm.stack[base:base+nargs]...)
	}
	need := base + proto.nslots + proto.maxStack + 64
	vm.ensureStack(need)
	for i := nargs; i < np; i++ {
		vm.stack[base+i] = Undefined() // missing parameters are declared undefined
	}
	for i := np; i < proto.nslots; i++ {
		vm.stack[base+i] = unsetValue
	}
	vm.sp = base + proto.nslots
	var cells []*cell
	if proto.ncells > 0 {
		cells = make([]*cell, proto.ncells)
	}
	fr := frame{
		proto:   proto,
		base:    int32(base),
		cells:   cells,
		upcells: upcells,
		this:    this,
		args:    argsCopy,
		ics:     vm.icsFor(proto),
	}
	st, v, err := vm.runFrame(&fr, 0, int32(len(proto.code)))
	vm.sp = base
	return st, v, err
}

func (vm *VM) ensureStack(n int) {
	if n <= len(vm.stack) {
		return
	}
	grown := 2*len(vm.stack) + 64
	if grown < n {
		grown = n
	}
	ns := make([]Value, grown)
	copy(ns, vm.stack)
	vm.stack = ns
}

// icsFor returns the VM-local inline-cache slots for a proto, with a
// one-entry fast path for the repeated main/function alternation of a
// hot program.
func (vm *VM) icsFor(proto *funcProto) []icEntry {
	if vm.lastProto == proto {
		return vm.lastICs
	}
	var ics []icEntry
	if proto.nics > 0 {
		if vm.icTab == nil {
			vm.icTab = make(map[*funcProto][]icEntry)
		}
		ics = vm.icTab[proto]
		if ics == nil {
			ics = make([]icEntry, proto.nics)
			vm.icTab[proto] = ics
		}
	}
	vm.lastProto, vm.lastICs = proto, ics
	return ics
}

// ICStats reports inline-cache hits and misses accumulated by this VM.
func (vm *VM) ICStats() (hits, misses uint64) { return vm.icHits, vm.icMisses }

// flushICTelemetry mirrors IC traffic since the last flush into the
// package telemetry counters (deterministic: counts depend only on the
// executed programs).
func (vm *VM) flushICTelemetry() {
	if d := vm.icHits - vm.icFlushedH; d > 0 {
		icHitCounter.Load().Add(int64(d))
		vm.icFlushedH = vm.icHits
	}
	if d := vm.icMisses - vm.icFlushedM; d > 0 {
		icMissCounter.Load().Add(int64(d))
		vm.icFlushedM = vm.icMisses
	}
}

// runFrame executes code[pc:end] in fr. It returns how the segment
// completed; opTry recurses into it for body/catch/finally segments.
func (vm *VM) runFrame(fr *frame, pc, end int32) (uint8, Value, error) {
	proto := fr.proto
	code := proto.code
	lines := proto.lines
	limit := vm.MaxSteps
	if limit == 0 {
		limit = defaultMaxSteps
	}
	limit *= bcStepFactor
	base := fr.base
	for pc < end {
		vm.steps++
		if vm.steps > limit {
			stepBudgetCounter.Load().Inc()
			return stNormal, Undefined(), fmt.Errorf("jsvm: %w (line %d)", ErrStepBudget, lines[pc])
		}
		in := code[pc]
		pc++
		switch in.op {
		case opConst:
			vm.stack[vm.sp] = proto.consts[in.a]
			vm.sp++
		case opUndef:
			vm.stack[vm.sp] = Value{}
			vm.sp++
		case opNull:
			vm.stack[vm.sp] = Value{kind: KindNull}
			vm.sp++
		case opTrue:
			vm.stack[vm.sp] = Value{kind: KindBool, b: true}
			vm.sp++
		case opFalse:
			vm.stack[vm.sp] = Value{kind: KindBool}
			vm.sp++
		case opThis:
			vm.stack[vm.sp] = fr.this
			vm.sp++
		case opPop:
			vm.sp--
		case opDup:
			vm.stack[vm.sp] = vm.stack[vm.sp-1]
			vm.sp++
		case opGetLookup:
			v, err := vm.getLookup(fr, in, lines[pc-1])
			if err != nil {
				return stNormal, Undefined(), err
			}
			vm.stack[vm.sp] = v
			vm.sp++
		case opSetLookup:
			vm.setLookup(fr, in, vm.stack[vm.sp-1])
		case opTypeofLk:
			vm.stack[vm.sp] = vm.typeofLookup(fr, in)
			vm.sp++
		case opStoreSlot:
			vm.sp--
			vm.stack[base+in.a] = vm.stack[vm.sp]
		case opStoreCell:
			vm.sp--
			c := fr.cells[in.a]
			c.v = vm.stack[vm.sp]
			c.set = true
		case opDeclGlobal:
			vm.sp--
			vm.global.declare(proto.names[in.a], vm.stack[vm.sp])
		case opResetSlots:
			for i := in.a; i < in.b; i++ {
				vm.stack[base+i] = unsetValue
			}
		case opNewCells:
			for i := in.a; i < in.b; i++ {
				fr.cells[i] = &cell{}
			}
		case opParamToCell:
			c := fr.cells[in.b]
			c.v = vm.stack[base+in.a]
			c.set = true
		case opArguments:
			vm.stack[vm.sp] = ObjectValue(&Object{elems: fr.args, array: true})
			vm.sp++
		case opClosure:
			p := proto.protos[in.a]
			var cl []*cell
			if len(p.upvals) > 0 {
				cl = make([]*cell, len(p.upvals))
				for i, uv := range p.upvals {
					if uv.fromOwn {
						cl[i] = fr.cells[uv.idx]
					} else {
						cl[i] = fr.upcells[uv.idx]
					}
				}
			}
			vm.stack[vm.sp] = ObjectValue(&Object{proto: p, cells: cl, call: true, name: p.name})
			vm.sp++
		case opGetMember:
			vm.sp--
			obj := vm.stack[vm.sp]
			v, err := vm.getMemberIC(fr, obj, in, lines[pc-1])
			if err != nil {
				return stNormal, Undefined(), err
			}
			vm.stack[vm.sp] = v
			vm.sp++
		case opGetMemberDyn:
			vm.sp -= 2
			obj, idx := vm.stack[vm.sp], vm.stack[vm.sp+1]
			v, err := vm.getMemberDyn(obj, idx, lines[pc-1])
			if err != nil {
				return stNormal, Undefined(), err
			}
			vm.stack[vm.sp] = v
			vm.sp++
		case opGetMethod:
			obj := vm.stack[vm.sp-1]
			v, err := vm.getMemberIC(fr, obj, in, lines[pc-1])
			if err != nil {
				return stNormal, Undefined(), err
			}
			vm.stack[vm.sp] = v
			vm.sp++
		case opGetMethodDyn:
			obj, idx := vm.stack[vm.sp-2], vm.stack[vm.sp-1]
			v, err := vm.getMemberDyn(obj, idx, lines[pc-1])
			if err != nil {
				return stNormal, Undefined(), err
			}
			vm.stack[vm.sp-1] = v
		case opSetMember:
			vm.sp--
			obj := vm.stack[vm.sp]
			o := obj.Object()
			if o == nil {
				return stNormal, Undefined(), throwError("cannot set property of %s", obj.TypeOf())
			}
			o.Set(proto.names[in.a], vm.stack[vm.sp-1])
		case opSetMemberDyn:
			vm.sp -= 2
			obj, idx := vm.stack[vm.sp], vm.stack[vm.sp+1]
			o := obj.Object()
			if o == nil {
				return stNormal, Undefined(), throwError("cannot set property of %s", obj.TypeOf())
			}
			if o.IsArray() && idx.kind == KindNumber {
				o.SetIndex(int(idx.n), vm.stack[vm.sp-1])
			} else {
				o.Set(idx.StringValue(), vm.stack[vm.sp-1])
			}
		case opDelMember:
			vm.sp--
			if o := vm.stack[vm.sp].Object(); o != nil {
				o.Delete(proto.names[in.a])
			}
		case opCall:
			nargs := int(in.a)
			argStart := vm.sp - nargs
			fnV := vm.stack[argStart-1]
			recv := vm.stack[argStart-2]
			ret, err := vm.dispatchCall(fnV, recv, argStart, nargs, int(lines[pc-1]))
			if err != nil {
				return stNormal, Undefined(), err
			}
			vm.sp = argStart - 2
			vm.stack[vm.sp] = ret
			vm.sp++
		case opNew:
			nargs := int(in.a)
			argStart := vm.sp - nargs
			ctor := vm.stack[argStart-1]
			o := ctor.Object()
			if o == nil || !o.call {
				return stNormal, Undefined(), throwError("not a constructor")
			}
			inst := NewObject()
			ret, err := vm.dispatchCall(ctor, ObjectValue(inst), argStart, nargs, int(lines[pc-1]))
			if err != nil {
				return stNormal, Undefined(), err
			}
			if ret.Object() == nil {
				ret = ObjectValue(inst)
			}
			vm.sp = argStart - 1
			vm.stack[vm.sp] = ret
			vm.sp++
		case opReturn:
			vm.sp--
			return stReturn, vm.stack[vm.sp], nil
		case opReturnUndef:
			return stReturn, Undefined(), nil
		case opNewArray:
			n := int(in.a)
			vm.sp -= n
			elems := make([]Value, n)
			copy(elems, vm.stack[vm.sp:vm.sp+n])
			vm.stack[vm.sp] = ObjectValue(&Object{props: map[string]Value{}, elems: elems, array: true})
			vm.sp++
		case opNewObject:
			keys := proto.objLits[in.a]
			n := len(keys)
			vm.sp -= n
			o := NewObject()
			for i, k := range keys {
				o.Set(proto.names[k], vm.stack[vm.sp+i])
			}
			vm.stack[vm.sp] = ObjectValue(o)
			vm.sp++
		case opNot:
			vm.stack[vm.sp-1] = Bool(!vm.stack[vm.sp-1].Truthy())
		case opNeg:
			vm.stack[vm.sp-1] = Number(-vm.stack[vm.sp-1].NumberValue())
		case opToNum:
			vm.stack[vm.sp-1] = Number(vm.stack[vm.sp-1].NumberValue())
		case opBitNot:
			vm.stack[vm.sp-1] = Number(float64(^toInt32(vm.stack[vm.sp-1].NumberValue())))
		case opTypeofVal:
			vm.stack[vm.sp-1] = String(vm.stack[vm.sp-1].TypeOf())
		case opIncN:
			vm.stack[vm.sp-1] = Number(vm.stack[vm.sp-1].NumberValue() + float64(in.a))
		case opAdd:
			r, l := vm.stack[vm.sp-1], vm.stack[vm.sp-2]
			vm.sp--
			if l.kind == KindNumber && r.kind == KindNumber {
				vm.stack[vm.sp-1] = Value{kind: KindNumber, n: l.n + r.n}
			} else {
				v, err := binaryOp("+", l, r)
				if err != nil {
					return stNormal, Undefined(), err
				}
				vm.stack[vm.sp-1] = v
			}
		case opSub:
			r, l := vm.stack[vm.sp-1], vm.stack[vm.sp-2]
			vm.sp--
			vm.stack[vm.sp-1] = Number(l.NumberValue() - r.NumberValue())
		case opMul:
			r, l := vm.stack[vm.sp-1], vm.stack[vm.sp-2]
			vm.sp--
			vm.stack[vm.sp-1] = Number(l.NumberValue() * r.NumberValue())
		case opLt:
			r, l := vm.stack[vm.sp-1], vm.stack[vm.sp-2]
			vm.sp--
			if l.kind == KindNumber && r.kind == KindNumber {
				vm.stack[vm.sp-1] = Bool(l.n < r.n)
			} else {
				v, err := binaryOp("<", l, r)
				if err != nil {
					return stNormal, Undefined(), err
				}
				vm.stack[vm.sp-1] = v
			}
		case opGt:
			r, l := vm.stack[vm.sp-1], vm.stack[vm.sp-2]
			vm.sp--
			if l.kind == KindNumber && r.kind == KindNumber {
				vm.stack[vm.sp-1] = Bool(l.n > r.n)
			} else {
				v, err := binaryOp(">", l, r)
				if err != nil {
					return stNormal, Undefined(), err
				}
				vm.stack[vm.sp-1] = v
			}
		case opStrictEq:
			r, l := vm.stack[vm.sp-1], vm.stack[vm.sp-2]
			vm.sp--
			eq := looseEquals(l, r, true)
			if in.a == 1 {
				eq = !eq
			}
			vm.stack[vm.sp-1] = Bool(eq)
		case opBinary:
			r, l := vm.stack[vm.sp-1], vm.stack[vm.sp-2]
			vm.sp--
			v, err := binaryOp(proto.names[in.a], l, r)
			if err != nil {
				return stNormal, Undefined(), err
			}
			vm.stack[vm.sp-1] = v
		case opJump:
			pc = in.a
		case opJumpIfFalse:
			vm.sp--
			if !vm.stack[vm.sp].Truthy() {
				pc = in.a
			}
		case opJumpFalsy:
			if !vm.stack[vm.sp-1].Truthy() {
				pc = in.a
			}
		case opJumpTruthy:
			if vm.stack[vm.sp-1].Truthy() {
				pc = in.a
			}
		case opJumpNotNull:
			if !vm.stack[vm.sp-1].IsNullish() {
				pc = in.a
			}
		case opForPrep:
			vm.sp--
			obj := vm.stack[vm.sp]
			items := &Object{array: true}
			if o := obj.Object(); o != nil {
				if in.b == 1 {
					items.elems = append(items.elems, o.Elems()...)
				} else if o.IsArray() {
					for i := range o.Elems() {
						items.elems = append(items.elems, String(strconv.Itoa(i)))
					}
				} else {
					for _, k := range o.Keys() {
						items.elems = append(items.elems, String(k))
					}
				}
			} else if obj.Kind() == KindString && in.b == 1 {
				for _, r := range obj.StringValue() {
					items.elems = append(items.elems, String(string(r)))
				}
			}
			vm.stack[base+in.a] = ObjectValue(items)
			vm.stack[base+in.a+1] = Number(0)
		case opForNext:
			items := vm.stack[base+in.a].o.elems
			i := int(vm.stack[base+in.a+1].n)
			if i >= len(items) {
				pc = in.b
			} else {
				vm.stack[vm.sp] = items[i]
				vm.sp++
				vm.stack[base+in.a+1].n++
			}
		case opTry:
			var st uint8
			var v Value
			var err error
			d := &proto.trys[in.a]
			h := vm.sp
			st, v, err = vm.runFrame(fr, d.bodyStart, d.bodyEnd)
			vm.sp = h
			if err != nil {
				if jsErr, ok := err.(*Error); ok && d.catchStart >= 0 {
					vm.stack[vm.sp] = jsErr.Value
					vm.sp++
					st, v, err = vm.runFrame(fr, d.catchStart, d.catchEnd)
					vm.sp = h
				}
			}
			if d.finStart >= 0 {
				fst, fv, ferr := vm.runFrame(fr, d.finStart, d.finEnd)
				vm.sp = h
				if ferr != nil {
					return stNormal, Undefined(), ferr
				}
				if fst != stNormal {
					st, v, err = fst, fv, nil
				}
			}
			if err != nil {
				return stNormal, Undefined(), err
			}
			switch st {
			case stNormal:
				pc = d.end
			case stReturn:
				return stReturn, v, nil
			case stBreak:
				if d.breakPC >= 0 {
					pc = d.breakPC
				} else {
					return stBreak, Undefined(), nil
				}
			case stContinue:
				if d.continuePC >= 0 {
					pc = d.continuePC
				} else {
					return stContinue, Undefined(), nil
				}
			}
		case opThrow:
			vm.sp--
			return stNormal, Undefined(), &Error{
				Value: vm.stack[vm.sp],
				Where: fmt.Sprintf("line %d", lines[pc-1]),
			}
		case opBreak:
			return stBreak, Undefined(), nil
		case opContinue:
			return stContinue, Undefined(), nil
		case opStoreLast:
			vm.sp--
			vm.lastVal = vm.stack[vm.sp]
		case opBadAssign:
			return stNormal, Undefined(), throwError("invalid assignment target")
		default:
			return stNormal, Undefined(), fmt.Errorf("jsvm: line %d: unknown opcode %d", lines[pc-1], in.op)
		}
	}
	return stNormal, Undefined(), nil
}

// dispatchCall invokes the callable at the top of the stack layout
// [recv, fn, args...] from either engine: host functions get a fresh
// argument slice (they may retain it), bytecode closures run in place on
// the stack, and tree-walker closures route through invoke.
func (vm *VM) dispatchCall(fnV, recv Value, argStart, nargs, ln int) (Value, error) {
	o := fnV.Object()
	if o == nil || !o.call {
		return Undefined(), throwError("line %d: %s is not a function", ln, fnV.StringValue())
	}
	if o.host != nil {
		args := make([]Value, nargs)
		copy(args, vm.stack[argStart:argStart+nargs])
		return o.host(Call{VM: vm, This: recv, Args: args})
	}
	if o.proto != nil {
		np := o.proto.nparams
		if nargs < np {
			vm.ensureStack(argStart + np)
			for i := nargs; i < np; i++ {
				vm.stack[argStart+i] = Undefined()
			}
			vm.sp = argStart + np
		}
		return vm.callProtoAt(o, recv, argStart, nargs)
	}
	return vm.invoke(fnV, recv, vm.stack[argStart:argStart+nargs], ln)
}

// getLookup resolves a named read through its candidate chain; the
// terminal global candidate is inline-cached when the site is monomorphic
// (in.b >= 0).
func (vm *VM) getLookup(fr *frame, in instr, ln int32) (Value, error) {
	refs := fr.proto.lookups[in.a]
	for _, r := range refs {
		switch r.kind {
		case refSlot:
			if v := vm.stack[fr.base+r.idx]; v.kind != kindUnset {
				return v, nil
			}
		case refCell:
			if c := fr.cells[r.idx]; c != nil && c.set {
				return c.v, nil
			}
		case refUpcell:
			if c := fr.upcells[r.idx]; c != nil && c.set {
				return c.v, nil
			}
		case refGlobal:
			name := fr.proto.names[r.idx]
			if in.b >= 0 && fr.ics != nil {
				e := &fr.ics[in.b]
				switch e.state {
				case 1:
					if e.gen == vm.globalGen {
						vm.icHits++
						return *e.box, nil
					}
				case 2:
					if e.gen == vm.globalGen && e.ver == vm.Global.version {
						vm.icHits++
						return e.val, nil
					}
				}
				vm.icMisses++
				if box, ok := vm.global.vars[name]; ok {
					*e = icEntry{state: 1, gen: vm.globalGen, box: box}
					return *box, nil
				}
				if vm.Global.Has(name) {
					v := vm.Global.Get(name)
					*e = icEntry{state: 2, gen: vm.globalGen, ver: vm.Global.version, val: v}
					return v, nil
				}
				return Undefined(), throwError("%s is not defined", name)
			}
			if box, ok := vm.global.vars[name]; ok {
				return *box, nil
			}
			if vm.Global.Has(name) {
				return vm.Global.Get(name), nil
			}
			return Undefined(), throwError("%s is not defined", name)
		}
	}
	return Undefined(), fmt.Errorf("jsvm: line %d: lookup chain without terminal", ln)
}

// setLookup writes through the candidate chain: the first live binding
// receives the value. The global terminal replicates assignTo exactly:
// a global-scope box is written, a name living only on the Global object
// silently loses the write (the walker writes a copied box), and an
// unknown name becomes an implicit global on the Global object.
func (vm *VM) setLookup(fr *frame, in instr, v Value) {
	refs := fr.proto.lookups[in.a]
	for _, r := range refs {
		switch r.kind {
		case refSlot:
			if vm.stack[fr.base+r.idx].kind != kindUnset {
				vm.stack[fr.base+r.idx] = v
				return
			}
		case refCell:
			if c := fr.cells[r.idx]; c != nil && c.set {
				c.v = v
				return
			}
		case refUpcell:
			if c := fr.upcells[r.idx]; c != nil && c.set {
				c.v = v
				return
			}
		case refGlobal:
			name := fr.proto.names[r.idx]
			if box, ok := vm.global.vars[name]; ok {
				*box = v
				return
			}
			if vm.Global.Has(name) {
				return // lost write, as the walker's copied global box
			}
			vm.Global.Set(name, v)
			return
		}
	}
}

// typeofLookup is the non-throwing lookup behind `typeof ident`.
func (vm *VM) typeofLookup(fr *frame, in instr) Value {
	refs := fr.proto.lookups[in.a]
	for _, r := range refs {
		switch r.kind {
		case refSlot:
			if v := vm.stack[fr.base+r.idx]; v.kind != kindUnset {
				return String(v.TypeOf())
			}
		case refCell:
			if c := fr.cells[r.idx]; c != nil && c.set {
				return String(c.v.TypeOf())
			}
		case refUpcell:
			if c := fr.upcells[r.idx]; c != nil && c.set {
				return String(c.v.TypeOf())
			}
		case refGlobal:
			name := fr.proto.names[r.idx]
			if box, ok := vm.global.vars[name]; ok {
				return String(box.TypeOf())
			}
			if vm.Global.Has(name) {
				return String(vm.Global.Get(name).TypeOf())
			}
			return String("undefined")
		}
	}
	return String("undefined")
}

// getMemberIC reads a static property with a monomorphic inline cache
// for plain own properties of non-array objects. Fresh-closure members
// (array/object methods) are never cached, so their per-access identity
// matches the tree walker.
func (vm *VM) getMemberIC(fr *frame, obj Value, in instr, ln int32) (Value, error) {
	name := fr.proto.names[in.a]
	if o := obj.Object(); o != nil && !o.array && in.b >= 0 && fr.ics != nil {
		e := &fr.ics[in.b]
		if e.state == 3 && e.obj == o && e.ver == o.version {
			vm.icHits++
			return e.val, nil
		}
		vm.icMisses++
		if v, ok := o.props[name]; ok {
			*e = icEntry{state: 3, obj: o, ver: o.version, val: v}
			return v, nil
		}
	}
	return vm.getProp(obj, name, int(ln))
}

// getMemberDyn reads a computed member, mirroring getMember.
func (vm *VM) getMemberDyn(obj, idx Value, ln int32) (Value, error) {
	if o := obj.Object(); o != nil && o.IsArray() && idx.kind == KindNumber {
		return o.Index(int(idx.n)), nil
	}
	return vm.getProp(obj, idx.StringValue(), int(ln))
}

// sortKeys is referenced by opForPrep through Object.Keys; keep the
// import anchored.
var _ = sort.Strings
