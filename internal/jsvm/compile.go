package jsvm

import "fmt"

// This file lowers the parsed AST into compact bytecode executed by the
// stack VM in vm.go. The compiler resolves local and function-scope
// variables to frame slot indices (or heap cells when a nested function
// captures them), interns constants and property names, and allocates
// monomorphic inline-cache sites for global and static property lookups.
// Names it cannot resolve statically — top-level declarations and
// implicit globals — fall back to named lookup against the global scope,
// preserving the tree walker's observable semantics exactly (including
// its execution-time declaration quirks; see the lookup-chain comments).

// op is a bytecode opcode.
type op uint8

// Opcodes. Operands a and b are documented per op.
const (
	opConst        op = iota // push consts[a]
	opUndef                  // push undefined
	opNull                   // push null
	opTrue                   // push true
	opFalse                  // push false
	opThis                   // push the frame's this
	opPop                    // pop
	opDup                    // push a copy of the top of stack
	opGetLookup              // a=lookup idx, b=ic idx (-1 none); push resolved value
	opSetLookup              // a=lookup idx; peek value, write first live binding
	opTypeofLk               // a=lookup idx; push typeof without throwing
	opStoreSlot              // a=slot; pop into slot (marks it declared)
	opStoreCell              // a=own-cell idx; pop into cell (marks it set)
	opDeclGlobal             // a=name idx; pop, declare in the global scope
	opResetSlots             // slots [a,b) become unset (block entry)
	opNewCells               // own cells [a,b) become fresh cells (block entry)
	opParamToCell            // move slot a into own cell b (captured parameter)
	opArguments              // push the arguments array for this frame
	opClosure                // a=proto idx; push a closure over protos[a]
	opGetMember              // a=name idx, b=ic idx; pop obj, push obj.name
	opGetMemberDyn           // pop idx, obj; push obj[idx]
	opSetMember              // a=name idx; stack [val,obj] -> [val]
	opSetMemberDyn           // stack [val,obj,idx] -> [val]
	opDelMember              // a=name idx; pop obj, delete obj.name
	opGetMethod              // a=name idx, b=ic idx; stack [obj] -> [obj, obj.name]
	opGetMethodDyn           // stack [obj,idx] -> [obj, obj[idx]]
	opCall                   // a=nargs; stack [recv,fn,args...] -> [ret]
	opNew                    // a=nargs; stack [ctor,args...] -> [instance]
	opReturn                 // pop; return it from the function
	opReturnUndef            // return undefined from the function
	opNewArray               // a=n; pop n elements, push an array
	opNewObject              // a=objLits idx; pop len(keys) values, push object
	opNot                    // pop v, push !v
	opNeg                    // pop v, push -v
	opToNum                  // pop v, push ToNumber(v)
	opBitNot                 // pop v, push ~v
	opTypeofVal              // pop v, push typeof v
	opIncN                   // pop v, push Number(ToNumber(v)+a)
	opAdd                    // pop r,l push l+r
	opSub                    // pop r,l push l-r
	opMul                    // pop r,l push l*r
	opLt                     // pop r,l push l<r
	opGt                     // pop r,l push l>r
	opStrictEq               // pop r,l push l===r (a=1: !==)
	opBinary                 // a=name idx of the operator; pop r,l push l op r
	opJump                   // pc = a
	opJumpIfFalse            // pop; if falsy pc = a
	opJumpFalsy              // peek; if falsy pc = a
	opJumpTruthy             // peek; if truthy pc = a
	opJumpNotNull            // peek; if not nullish pc = a
	opForPrep                // pop obj; slots a,a+1 = iteration items, index (b=1: for-of)
	opForNext                // push next item, or pc = b when exhausted
	opTry                    // a=trys idx; run body/catch/finally segments
	opThrow                  // pop v; throw it
	opBreak                  // propagate break out of this segment
	opContinue               // propagate continue out of this segment
	opStoreLast              // pop into the program's last-value register
	opBadAssign              // throw "invalid assignment target"
)

// instr is one instruction. Lines are kept in a parallel array on the
// proto (only consulted for error reporting).
type instr struct {
	op   op
	a, b int32
}

// ref is one candidate binding for a named lookup. Because the tree
// walker declares variables at execution time (a read before the
// declaration executes falls through to an outer scope), a lookup is a
// chain of candidates walked until one is live; the terminal candidate is
// always the named global lookup.
type ref struct {
	kind uint8
	idx  int32
}

const (
	refSlot   uint8 = iota // frame slot idx (live when not unset)
	refCell                // own cell idx (live when set)
	refUpcell              // captured cell idx (live when set)
	refGlobal              // terminal: names[idx] against the global scope
)

// upvalRef describes where closure cell i comes from when the closure is
// created: the creating frame's own cells or its captured cells.
type upvalRef struct {
	fromOwn bool
	idx     int32
}

// tryDesc is the layout of one try statement's segments. breakPC and
// continuePC are the innermost enclosing loop's targets when that loop is
// in the same segment as the try; -1 propagates the signal to the next
// enclosing segment.
type tryDesc struct {
	bodyStart, bodyEnd   int32
	catchStart, catchEnd int32 // catchStart<0: no catch clause
	finStart, finEnd     int32 // finStart<0: no finally clause
	end                  int32
	breakPC, continuePC  int32
}

// funcProto is one compiled function: immutable after compilation and
// shared by every closure over it, across VMs and goroutines.
type funcProto struct {
	name     string
	nparams  int
	nslots   int
	ncells   int
	maxStack int
	usesArgs bool
	code     []instr
	lines    []int32
	consts   []Value
	names    []string
	protos   []*funcProto
	upvals   []upvalRef
	lookups  [][]ref
	trys     []tryDesc
	objLits  [][]int32
	nics     int
}

// binding is a compile-time variable binding.
type binding struct {
	name string
	ref  ref
	fn   *cfunc
}

// cscope is a compile-time lexical scope (function top scope or block).
type cscope struct {
	parent   *cscope
	fn       *cfunc
	bindings []*binding
}

func (sc *cscope) find(name string) *binding {
	for _, b := range sc.bindings {
		if b.name == name {
			return b
		}
	}
	return nil
}

// loopCtx tracks a loop being compiled for break/continue patching.
type loopCtx struct {
	segDepth   int
	contTarget int32
	breakSites []int
	contSites  []int
	tryDescs   []int // trys needing breakPC/continuePC patched to this loop
}

// cfunc is the per-function compiler state.
type cfunc struct {
	parent   *cfunc
	proto    *funcProto
	scope    *cscope // current scope
	top      *cscope // function top scope
	global   bool    // main program: top-scope declarations are dynamic globals
	captured map[string]bool
	upvalIdx map[*binding]int32
	constIdx map[constKey]int32
	nameIdx  map[string]int32
	loops    []*loopCtx
	segDepth int
	nslots   int
	ncells   int
	cur, max int
}

type constKey struct {
	k Kind
	n float64
	s string
}

type compileError struct{ err error }

// compileProgram lowers a parsed program to bytecode. Errors indicate an
// AST shape the compiler does not handle; callers fall back to the tree
// walker.
func compileProgram(p *Program) (mp *funcProto, err error) {
	defer func() {
		if r := recover(); r != nil {
			ce, ok := r.(compileError)
			if !ok {
				panic(r)
			}
			mp, err = nil, ce.err
		}
	}()
	var body []node
	for i := range p.decls {
		body = append(body, p.decls[i])
	}
	body = append(body, p.stmts...)

	f := newCFunc(nil, "(program)")
	f.global = true
	f.captured = capturedNames(body)
	// Hoisted top-level function declarations, then statements in source
	// order, mirroring RunProgram's tree-walking order. Each top-level
	// statement updates the last-value register (non-expression statements
	// reset it to undefined, as the walker's completion values do).
	for i := range p.decls {
		fd := &p.decls[i]
		idx := f.compileFuncLit(fd.fn)
		f.emit(opClosure, idx, 0, fd.line(), 1)
		f.emit(opDeclGlobal, f.nameOf(fd.fn.name), 0, fd.line(), -1)
	}
	for _, st := range p.stmts {
		if es, ok := st.(exprStmt); ok {
			f.expr(es.expr)
			f.emit(opStoreLast, 0, 0, es.line(), -1)
			continue
		}
		f.stmt(st)
		f.emit(opUndef, 0, 0, st.line(), 1)
		f.emit(opStoreLast, 0, 0, st.line(), -1)
	}
	f.finish()
	return f.proto, nil
}

func newCFunc(parent *cfunc, name string) *cfunc {
	f := &cfunc{
		parent:   parent,
		proto:    &funcProto{name: name},
		upvalIdx: map[*binding]int32{},
		constIdx: map[constKey]int32{},
		nameIdx:  map[string]int32{},
	}
	f.top = &cscope{fn: f}
	f.scope = f.top
	return f
}

func (f *cfunc) fail(format string, args ...any) {
	panic(compileError{fmt.Errorf("jsvm: compile: "+format, args...)})
}

func (f *cfunc) finish() {
	f.proto.nslots = f.nslots
	f.proto.ncells = f.ncells
	f.proto.maxStack = f.max
}

// emit appends an instruction; delta is its net operand-stack effect,
// tracked to size the frame's operand area.
func (f *cfunc) emit(o op, a, b int32, ln int, delta int) int {
	f.proto.code = append(f.proto.code, instr{op: o, a: a, b: b})
	f.proto.lines = append(f.proto.lines, int32(ln))
	f.adjust(delta)
	return len(f.proto.code) - 1
}

func (f *cfunc) adjust(delta int) {
	f.cur += delta
	if f.cur < 0 {
		f.cur = 0
	}
	if f.cur > f.max {
		f.max = f.cur
	}
}

func (f *cfunc) pc() int32 { return int32(len(f.proto.code)) }

func (f *cfunc) patch(site int, target int32) { f.proto.code[site].a = target }

func (f *cfunc) nameOf(name string) int32 {
	if i, ok := f.nameIdx[name]; ok {
		return i
	}
	i := int32(len(f.proto.names))
	f.proto.names = append(f.proto.names, name)
	f.nameIdx[name] = i
	return i
}

func (f *cfunc) constOf(v Value, ln int) {
	key := constKey{k: v.kind, n: v.n, s: v.s}
	i, ok := f.constIdx[key]
	if !ok {
		i = int32(len(f.proto.consts))
		f.proto.consts = append(f.proto.consts, v)
		f.constIdx[key] = i
	}
	f.emit(opConst, i, 0, ln, 1)
}

func (f *cfunc) allocSlot() int32 {
	i := f.nslots
	f.nslots++
	return int32(i)
}

func (f *cfunc) allocCell() int32 {
	i := f.ncells
	f.ncells++
	return int32(i)
}

// bind registers name in the current scope (dedup within the scope: the
// walker's repeated declares share one map entry) and returns its binding.
func (f *cfunc) bind(name string) *binding {
	if b := f.scope.find(name); b != nil {
		return b
	}
	var r ref
	if f.captured[name] {
		r = ref{kind: refCell, idx: f.allocCell()}
	} else {
		r = ref{kind: refSlot, idx: f.allocSlot()}
	}
	b := &binding{name: name, ref: r, fn: f}
	f.scope.bindings = append(f.scope.bindings, b)
	return b
}

// upvalFor threads a binding owned by an enclosing function into this
// function's captured cells, returning the upcell index.
func (f *cfunc) upvalFor(b *binding) int32 {
	if i, ok := f.upvalIdx[b]; ok {
		return i
	}
	var src upvalRef
	if b.fn == f.parent {
		if b.ref.kind != refCell {
			f.fail("captured binding %q is not a cell", b.name)
		}
		src = upvalRef{fromOwn: true, idx: b.ref.idx}
	} else {
		src = upvalRef{fromOwn: false, idx: f.parent.upvalFor(b)}
	}
	i := int32(len(f.proto.upvals))
	f.proto.upvals = append(f.proto.upvals, src)
	f.upvalIdx[b] = i
	return i
}

// lookupOf builds the candidate chain for a named access at the current
// scope. The chain lists every visible binding of the name from innermost
// out (execution-time declaration means an unset inner binding falls
// through to an outer one), terminated by the named global lookup. An
// inline-cache index is allocated only for pure global sites (single
// terminal candidate): those are the monomorphic, perf-relevant lookups.
func (f *cfunc) lookupOf(name string) (lookup, ic int32) {
	var refs []ref
	for sc := f.scope; sc != nil; sc = sc.parent {
		if b := sc.find(name); b != nil {
			if b.fn == f {
				refs = append(refs, b.ref)
			} else {
				refs = append(refs, ref{kind: refUpcell, idx: f.upvalFor(b)})
			}
		}
	}
	refs = append(refs, ref{kind: refGlobal, idx: f.nameOf(name)})
	lookup = int32(len(f.proto.lookups))
	f.proto.lookups = append(f.proto.lookups, refs)
	ic = -1
	if len(refs) == 1 {
		ic = int32(f.proto.nics)
		f.proto.nics++
	}
	return lookup, ic
}

// icSite allocates a property inline-cache slot.
func (f *cfunc) icSite() int32 {
	i := int32(f.proto.nics)
	f.proto.nics++
	return i
}

// scanDecls collects the var/function names a statement list declares
// directly into the current scope, recursing through statements that do
// not introduce a scope of their own (if branches, while/try bodies) and
// stopping at those that do (blocks, for loops, nested functions) —
// mirroring exactly which scope the walker's execution-time declare hits.
func scanDecls(stmts []node, names *[]string, seen map[string]bool) {
	for _, st := range stmts {
		scanDeclStmt(st, names, seen)
	}
}

func scanDeclStmt(st node, names *[]string, seen map[string]bool) {
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			*names = append(*names, n)
		}
	}
	switch s := st.(type) {
	case varDecl:
		for _, n := range s.names {
			add(n)
		}
	case funcDecl:
		add(s.fn.name)
	case ifStmt:
		scanDeclStmt(s.then, names, seen)
		if s.alt != nil {
			scanDeclStmt(s.alt, names, seen)
		}
	case whileStmt:
		scanDeclStmt(s.body, names, seen)
	case tryStmt:
		scanDeclStmt(s.body, names, seen)
		if s.finally != nil {
			scanDeclStmt(s.finally, names, seen)
		}
	}
}

// capturedNames returns every identifier referenced inside a function
// nested anywhere below body. Bindings of these names become heap cells
// (conservatively: a same-named local in the nested function also counts,
// which only costs a needless cell).
func capturedNames(body []node) map[string]bool {
	out := map[string]bool{}
	var walk func(n node, inFn bool)
	walk = func(n node, inFn bool) {
		switch x := n.(type) {
		case identExpr:
			if inFn {
				out[x.name] = true
			}
		case funcLit:
			for _, st := range x.body {
				walk(st, true)
			}
		case funcDecl:
			for _, st := range x.fn.body {
				walk(st, true)
			}
		default:
			eachChild(n, func(c node) { walk(c, inFn) })
		}
	}
	for _, st := range body {
		walk(st, false)
	}
	return out
}

// eachChild visits the direct child nodes of n.
func eachChild(n node, visit func(node)) {
	opt := func(c node) {
		if c != nil {
			visit(c)
		}
	}
	switch x := n.(type) {
	case arrayLit:
		for _, e := range x.elems {
			visit(e)
		}
	case objectLit:
		for _, p := range x.props {
			visit(p.val)
		}
	case memberExpr:
		visit(x.obj)
		opt(x.computed)
	case callExpr:
		visit(x.callee)
		for _, a := range x.args {
			visit(a)
		}
	case newExpr:
		visit(x.callee)
		for _, a := range x.args {
			visit(a)
		}
	case unaryExpr:
		visit(x.expr)
	case updateExpr:
		visit(x.target)
	case binaryExpr:
		visit(x.left)
		visit(x.right)
	case logicalExpr:
		visit(x.left)
		visit(x.right)
	case condExpr:
		visit(x.cond)
		visit(x.then)
		visit(x.alt)
	case assignExpr:
		visit(x.target)
		visit(x.value)
	case seqExpr:
		for _, e := range x.exprs {
			visit(e)
		}
	case varDecl:
		for _, v := range x.values {
			opt(v)
		}
	case exprStmt:
		visit(x.expr)
	case blockStmt:
		for _, s := range x.body {
			visit(s)
		}
	case ifStmt:
		visit(x.cond)
		visit(x.then)
		opt(x.alt)
	case forStmt:
		opt(x.init)
		opt(x.cond)
		opt(x.post)
		visit(x.body)
	case forInStmt:
		visit(x.obj)
		visit(x.body)
	case whileStmt:
		visit(x.cond)
		visit(x.body)
	case returnStmt:
		opt(x.value)
	case throwStmt:
		visit(x.value)
	case tryStmt:
		visit(x.body)
		opt(x.catchBody)
		opt(x.finally)
	}
}

// compileFuncLit compiles a nested function literal and returns its index
// in the current proto's protos table.
func (f *cfunc) compileFuncLit(fl *funcLit) int32 {
	child := newCFunc(f, fl.name)
	child.top.parent = f.scope
	child.scope = child.top
	child.proto.nparams = len(fl.params)
	child.proto.usesArgs = fl.usesArgs
	child.captured = capturedNames(fl.body)

	// Parameter landing slots are 0..nparams-1; captured parameters get a
	// cell and a prologue move out of the landing slot.
	child.nslots = len(fl.params)
	type pcell struct{ slot, cell int32 }
	var pcells []pcell
	for i, p := range fl.params {
		if b := child.scope.find(p); b != nil {
			continue // duplicate parameter name: first binding wins
		}
		var r ref
		if child.captured[p] {
			r = ref{kind: refCell, idx: child.allocCell()}
			pcells = append(pcells, pcell{slot: int32(i), cell: r.idx})
		} else {
			r = ref{kind: refSlot, idx: int32(i)}
		}
		child.scope.bindings = append(child.scope.bindings,
			&binding{name: p, ref: r, fn: child})
	}
	// Function-scope declarations (the walker declares vars directly into
	// the call scope; blocks get their own scopes below).
	var declNames []string
	seen := map[string]bool{}
	scanDecls(fl.body, &declNames, seen)
	for _, n := range declNames {
		child.bind(n)
	}
	var argsBind *binding
	if fl.usesArgs {
		argsBind = child.bind("arguments")
	}

	// Prologue: function-level cells, captured parameters, arguments,
	// hoisted function declarations.
	if child.ncells > 0 {
		child.emit(opNewCells, 0, int32(child.ncells), fl.line(), 0)
	}
	for _, pc := range pcells {
		child.emit(opParamToCell, pc.slot, pc.cell, fl.line(), 0)
	}
	if argsBind != nil {
		child.emit(opArguments, 0, 0, fl.line(), 1)
		child.emitStore(argsBind, fl.line())
	}
	for _, st := range fl.body {
		if fd, ok := st.(funcDecl); ok {
			idx := child.compileFuncLit(fd.fn)
			child.emit(opClosure, idx, 0, fd.line(), 1)
			child.emitStore(child.scope.find(fd.fn.name), fd.line())
		}
	}
	for _, st := range fl.body {
		if _, ok := st.(funcDecl); ok {
			continue
		}
		child.stmt(st)
	}
	child.finish()

	idx := int32(len(f.proto.protos))
	f.proto.protos = append(f.proto.protos, child.proto)
	return idx
}

// emitStore writes the top of stack into a binding, marking it declared.
func (f *cfunc) emitStore(b *binding, ln int) {
	if b == nil {
		f.fail("store to unregistered binding")
	}
	switch b.ref.kind {
	case refSlot:
		f.emit(opStoreSlot, b.ref.idx, 0, ln, -1)
	case refCell:
		f.emit(opStoreCell, b.ref.idx, 0, ln, -1)
	default:
		f.fail("store to non-local binding %q", b.name)
	}
}

// storeDecl emits the store for a var/function declaration executing in
// the current scope. At the program's top scope these are dynamic global
// declarations (they land in the VM's global scope map, visible to
// CallFunction and later runs).
func (f *cfunc) storeDecl(name string, ln int) {
	if f.global && f.scope == f.top {
		f.emit(opDeclGlobal, f.nameOf(name), 0, ln, -1)
		return
	}
	b := f.scope.find(name)
	if b == nil && f.scope.fn == f && f.scope == f.top {
		b = f.bind(name)
	}
	if b == nil {
		f.fail("declaration of %q missed by scope scan", name)
	}
	f.emitStore(b, ln)
}

// enterScope opens a block scope: registers its declarations and emits
// the slot-reset / fresh-cell prologue so re-entry (each loop iteration)
// gets fresh bindings, exactly as the walker's per-execution child scope.
func (f *cfunc) enterScope(declared []string, ln int) *cscope {
	f.scope = &cscope{fn: f, parent: f.scope}
	slotFrom, cellFrom := int32(f.nslots), int32(f.ncells)
	for _, n := range declared {
		f.bind(n)
	}
	slotTo, cellTo := int32(f.nslots), int32(f.ncells)
	if slotTo > slotFrom {
		f.emit(opResetSlots, slotFrom, slotTo, ln, 0)
	}
	if cellTo > cellFrom {
		f.emit(opNewCells, cellFrom, cellTo, ln, 0)
	}
	return f.scope
}

func (f *cfunc) exitScope() { f.scope = f.scope.parent }

func (f *cfunc) innerLoop() *loopCtx {
	if len(f.loops) == 0 {
		return nil
	}
	return f.loops[len(f.loops)-1]
}

// stmt compiles one statement.
func (f *cfunc) stmt(st node) {
	switch s := st.(type) {
	case blockStmt:
		var declared []string
		scanDecls(s.body, &declared, map[string]bool{})
		f.enterScope(declared, s.line())
		for _, sub := range s.body {
			if fd, ok := sub.(funcDecl); ok {
				idx := f.compileFuncLit(fd.fn)
				f.emit(opClosure, idx, 0, fd.line(), 1)
				f.emitStore(f.scope.find(fd.fn.name), fd.line())
			}
		}
		for _, sub := range s.body {
			if _, ok := sub.(funcDecl); ok {
				continue
			}
			f.stmt(sub)
		}
		f.exitScope()
	case varDecl:
		for i, name := range s.names {
			if s.values[i] != nil {
				f.expr(s.values[i])
			} else {
				f.emit(opUndef, 0, 0, s.line(), 1)
			}
			f.storeDecl(name, s.line())
		}
	case exprStmt:
		f.expr(s.expr)
		f.emit(opPop, 0, 0, s.line(), -1)
	case ifStmt:
		f.expr(s.cond)
		j1 := f.emit(opJumpIfFalse, 0, 0, s.line(), -1)
		f.stmt(s.then)
		if s.alt != nil {
			j2 := f.emit(opJump, 0, 0, s.line(), 0)
			f.patch(j1, f.pc())
			f.stmt(s.alt)
			f.patch(j2, f.pc())
		} else {
			f.patch(j1, f.pc())
		}
	case whileStmt:
		lp := &loopCtx{segDepth: f.segDepth}
		f.loops = append(f.loops, lp)
		top := f.pc()
		lp.contTarget = top
		f.expr(s.cond)
		jEnd := f.emit(opJumpIfFalse, 0, 0, s.line(), -1)
		f.stmt(s.body)
		f.emit(opJump, top, 0, s.line(), 0)
		f.endLoop(lp, jEnd)
	case forStmt:
		var declared []string
		seen := map[string]bool{}
		if s.init != nil {
			scanDeclStmt(s.init, &declared, seen)
		}
		scanDeclStmt(s.body, &declared, seen)
		f.enterScope(declared, s.line())
		if s.init != nil {
			f.stmt(s.init)
		}
		lp := &loopCtx{segDepth: f.segDepth}
		f.loops = append(f.loops, lp)
		top := f.pc()
		jEnd := -1
		if s.cond != nil {
			f.expr(s.cond)
			jEnd = f.emit(opJumpIfFalse, 0, 0, s.line(), -1)
		}
		f.stmt(s.body)
		lp.contTarget = f.pc()
		for _, site := range lp.contSites {
			f.patch(site, lp.contTarget)
		}
		if s.post != nil {
			f.expr(s.post)
			f.emit(opPop, 0, 0, s.line(), -1)
		}
		f.emit(opJump, top, 0, s.line(), 0)
		f.endLoop(lp, jEnd)
		f.exitScope()
	case forInStmt:
		f.expr(s.obj)
		var declared []string
		seen := map[string]bool{s.varName: true}
		declared = append(declared, s.varName)
		scanDeclStmt(s.body, &declared, seen)
		f.enterScope(declared, s.line())
		loopVar := f.scope.find(s.varName)
		// Declare the loop variable once; iterations share its binding (the
		// walker holds one slot pointer across the whole loop).
		f.emit(opUndef, 0, 0, s.line(), 1)
		f.emitStore(loopVar, s.line())
		itemsSlot := f.allocSlot()
		f.allocSlot() // index slot, itemsSlot+1
		kind := int32(0)
		if s.of {
			kind = 1
		}
		f.emit(opForPrep, itemsSlot, kind, s.line(), -1)
		lp := &loopCtx{segDepth: f.segDepth}
		f.loops = append(f.loops, lp)
		top := f.pc()
		lp.contTarget = top
		jNext := f.emit(opForNext, itemsSlot, 0, s.line(), 1)
		f.emitStore(loopVar, s.line())
		f.stmt(s.body)
		f.emit(opJump, top, 0, s.line(), 0)
		end := f.pc()
		f.proto.code[jNext].b = end
		f.endLoop(lp, -1)
		f.exitScope()
	case returnStmt:
		if s.value != nil {
			f.expr(s.value)
			f.emit(opReturn, 0, 0, s.line(), -1)
		} else {
			f.emit(opReturnUndef, 0, 0, s.line(), 0)
		}
	case breakStmt:
		lp := f.innerLoop()
		if lp != nil && lp.segDepth == f.segDepth {
			lp.breakSites = append(lp.breakSites, f.emit(opJump, 0, 0, s.line(), 0))
		} else {
			f.emit(opBreak, 0, 0, s.line(), 0)
		}
	case continueStmt:
		lp := f.innerLoop()
		if lp != nil && lp.segDepth == f.segDepth {
			lp.contSites = append(lp.contSites, f.emit(opJump, lp.contTarget, 0, s.line(), 0))
		} else {
			f.emit(opContinue, 0, 0, s.line(), 0)
		}
	case throwStmt:
		f.expr(s.value)
		f.emit(opThrow, 0, 0, s.line(), -1)
	case tryStmt:
		f.tryStmt(s)
	case funcDecl:
		// A function statement outside a block (e.g. an if branch) declares
		// at execution time, like the walker's execStmt default.
		idx := f.compileFuncLit(s.fn)
		f.emit(opClosure, idx, 0, s.line(), 1)
		f.storeDecl(s.fn.name, s.line())
	default:
		f.fail("unknown statement %T", st)
	}
}

// endLoop patches a loop's break sites (and registered try descriptors)
// to the loop end and pops the loop context. jEnd < 0 means no condition
// jump needs patching. Continue sites not already patched (while/for-in
// know their target up front) are patched by the caller.
func (f *cfunc) endLoop(lp *loopCtx, jEnd int) {
	end := f.pc()
	if jEnd >= 0 {
		f.patch(jEnd, end)
	}
	for _, site := range lp.breakSites {
		f.patch(site, end)
	}
	for _, site := range lp.contSites {
		f.patch(site, lp.contTarget)
	}
	for _, d := range lp.tryDescs {
		f.proto.trys[d].breakPC = end
		f.proto.trys[d].continuePC = lp.contTarget
	}
	f.loops = f.loops[:len(f.loops)-1]
}

// tryStmt compiles try/catch/finally as three code segments executed
// recursively by the VM, replicating the walker's completion semantics:
// only thrown *Error values reach catch, a finally error wins, and a
// finally control transfer overrides (and swallows) the pending outcome.
func (f *cfunc) tryStmt(s tryStmt) {
	descIdx := len(f.proto.trys)
	f.proto.trys = append(f.proto.trys, tryDesc{
		catchStart: -1, finStart: -1, breakPC: -1, continuePC: -1,
	})
	if lp := f.innerLoop(); lp != nil && lp.segDepth == f.segDepth {
		lp.tryDescs = append(lp.tryDescs, descIdx)
	}
	f.emit(opTry, int32(descIdx), 0, s.line(), 0)
	f.segDepth++
	bodyStart := f.pc()
	f.stmt(s.body)
	bodyEnd := f.pc()
	catchStart, catchEnd := int32(-1), int32(-1)
	if s.catchBody != nil {
		catchStart = f.pc()
		// The VM pushes the thrown value before entering this segment.
		f.adjust(1)
		var declared []string
		seen := map[string]bool{}
		if s.catchVar != "" {
			declared = append(declared, s.catchVar)
			seen[s.catchVar] = true
		}
		scanDeclStmt(s.catchBody, &declared, seen)
		f.enterScope(declared, s.line())
		if s.catchVar != "" {
			f.emitStore(f.scope.find(s.catchVar), s.line())
		} else {
			f.emit(opPop, 0, 0, s.line(), -1)
		}
		f.stmt(s.catchBody)
		f.exitScope()
		catchEnd = f.pc()
	}
	finStart, finEnd := int32(-1), int32(-1)
	if s.finally != nil {
		finStart = f.pc()
		f.stmt(s.finally)
		finEnd = f.pc()
	}
	f.segDepth--
	d := &f.proto.trys[descIdx]
	d.bodyStart, d.bodyEnd = bodyStart, bodyEnd
	d.catchStart, d.catchEnd = catchStart, catchEnd
	d.finStart, d.finEnd = finStart, finEnd
	d.end = f.pc()
}

// expr compiles one expression, leaving its value on the operand stack.
func (f *cfunc) expr(e node) {
	switch x := e.(type) {
	case numberLit:
		f.constOf(Number(x.val), x.line())
	case stringLit:
		f.constOf(String(x.val), x.line())
	case boolLit:
		if x.val {
			f.emit(opTrue, 0, 0, x.line(), 1)
		} else {
			f.emit(opFalse, 0, 0, x.line(), 1)
		}
	case nullLit:
		f.emit(opNull, 0, 0, x.line(), 1)
	case undefinedLit:
		f.emit(opUndef, 0, 0, x.line(), 1)
	case thisExpr:
		f.emit(opThis, 0, 0, x.line(), 1)
	case identExpr:
		lk, ic := f.lookupOf(x.name)
		f.emit(opGetLookup, lk, ic, x.line(), 1)
	case arrayLit:
		for _, el := range x.elems {
			f.expr(el)
		}
		f.emit(opNewArray, int32(len(x.elems)), 0, x.line(), 1-len(x.elems))
	case objectLit:
		keys := make([]int32, len(x.props))
		for i, p := range x.props {
			keys[i] = f.nameOf(p.key)
			f.expr(p.val)
		}
		idx := int32(len(f.proto.objLits))
		f.proto.objLits = append(f.proto.objLits, keys)
		f.emit(opNewObject, idx, 0, x.line(), 1-len(x.props))
	case funcLit:
		idx := f.compileFuncLit(&x)
		f.emit(opClosure, idx, 0, x.line(), 1)
	case memberExpr:
		f.member(x)
	case callExpr:
		f.call(x)
	case newExpr:
		f.expr(x.callee)
		for _, a := range x.args {
			f.expr(a)
		}
		f.emit(opNew, int32(len(x.args)), 0, x.line(), -len(x.args))
	case unaryExpr:
		f.unary(x)
	case updateExpr:
		f.update(x)
	case binaryExpr:
		f.expr(x.left)
		f.expr(x.right)
		f.binOp(x.op, x.line())
	case logicalExpr:
		f.expr(x.left)
		var j int
		switch x.op {
		case "&&":
			j = f.emit(opJumpFalsy, 0, 0, x.line(), 0)
		case "||":
			j = f.emit(opJumpTruthy, 0, 0, x.line(), 0)
		case "??":
			j = f.emit(opJumpNotNull, 0, 0, x.line(), 0)
		default:
			f.fail("unknown logical operator %q", x.op)
		}
		f.emit(opPop, 0, 0, x.line(), -1)
		f.expr(x.right)
		f.patch(j, f.pc())
	case condExpr:
		f.expr(x.cond)
		j1 := f.emit(opJumpIfFalse, 0, 0, x.line(), -1)
		f.expr(x.then)
		j2 := f.emit(opJump, 0, 0, x.line(), 0)
		f.patch(j1, f.pc())
		f.adjust(-1) // branches rejoin at the same height
		f.expr(x.alt)
		f.patch(j2, f.pc())
	case assignExpr:
		f.assign(x)
	case seqExpr:
		for i, sub := range x.exprs {
			f.expr(sub)
			if i < len(x.exprs)-1 {
				f.emit(opPop, 0, 0, x.line(), -1)
			}
		}
	default:
		f.fail("unknown expression %T", e)
	}
}

// member compiles a property read (the walker evaluates the object, then
// the computed index).
func (f *cfunc) member(x memberExpr) {
	f.expr(x.obj)
	if x.computed != nil {
		f.expr(x.computed)
		f.emit(opGetMemberDyn, 0, 0, x.line(), -1)
		return
	}
	f.emit(opGetMember, f.nameOf(x.prop), f.icSite(), x.line(), 0)
}

// call compiles a call; method calls evaluate the receiver once and bind
// it as this, exactly as evalCall does.
func (f *cfunc) call(x callExpr) {
	if m, ok := x.callee.(memberExpr); ok {
		f.expr(m.obj)
		if m.computed != nil {
			f.expr(m.computed)
			f.emit(opGetMethodDyn, 0, 0, m.line(), 0)
		} else {
			f.emit(opGetMethod, f.nameOf(m.prop), f.icSite(), m.line(), 1)
		}
	} else {
		f.emit(opUndef, 0, 0, x.line(), 1)
		f.expr(x.callee)
	}
	for _, a := range x.args {
		f.expr(a)
	}
	f.emit(opCall, int32(len(x.args)), 0, x.line(), -len(x.args)-1)
}

func (f *cfunc) binOp(op string, ln int) {
	switch op {
	case "+":
		f.emit(opAdd, 0, 0, ln, -1)
	case "-":
		f.emit(opSub, 0, 0, ln, -1)
	case "*":
		f.emit(opMul, 0, 0, ln, -1)
	case "<":
		f.emit(opLt, 0, 0, ln, -1)
	case ">":
		f.emit(opGt, 0, 0, ln, -1)
	case "===":
		f.emit(opStrictEq, 0, 0, ln, -1)
	case "!==":
		f.emit(opStrictEq, 1, 0, ln, -1)
	default:
		f.emit(opBinary, f.nameOf(op), 0, ln, -1)
	}
}

func (f *cfunc) unary(x unaryExpr) {
	ln := x.line()
	switch x.op {
	case "typeof":
		if id, ok := x.expr.(identExpr); ok {
			lk, _ := f.lookupOf(id.name)
			f.emit(opTypeofLk, lk, 0, ln, 1)
			return
		}
		f.expr(x.expr)
		f.emit(opTypeofVal, 0, 0, ln, 0)
	case "!":
		f.expr(x.expr)
		f.emit(opNot, 0, 0, ln, 0)
	case "-":
		f.expr(x.expr)
		f.emit(opNeg, 0, 0, ln, 0)
	case "+":
		f.expr(x.expr)
		f.emit(opToNum, 0, 0, ln, 0)
	case "~":
		f.expr(x.expr)
		f.emit(opBitNot, 0, 0, ln, 0)
	case "void":
		f.expr(x.expr)
		f.emit(opPop, 0, 0, ln, -1)
		f.emit(opUndef, 0, 0, ln, 1)
	case "delete":
		// The walker evaluates the full operand first (so a member read
		// that throws still throws), then re-evaluates the object and
		// deletes only static properties; the result is always true.
		f.expr(x.expr)
		f.emit(opPop, 0, 0, ln, -1)
		if m, ok := x.expr.(memberExpr); ok {
			f.expr(m.obj)
			if m.computed == nil {
				f.emit(opDelMember, f.nameOf(m.prop), 0, ln, -1)
			} else {
				f.emit(opPop, 0, 0, ln, -1)
			}
		}
		f.emit(opTrue, 0, 0, ln, 1)
	default:
		f.fail("unknown unary operator %q", x.op)
	}
}

func (f *cfunc) update(x updateExpr) {
	ln := x.line()
	delta := int32(1)
	if x.op == "--" {
		delta = -1
	}
	switch t := x.target.(type) {
	case identExpr:
		lk, ic := f.lookupOf(t.name)
		f.emit(opGetLookup, lk, ic, ln, 1)
		if x.prefix {
			f.emit(opIncN, delta, 0, ln, 0)
			slk, _ := f.lookupOf(t.name)
			f.emit(opSetLookup, slk, -1, ln, 0)
		} else {
			f.emit(opToNum, 0, 0, ln, 0)
			f.emit(opDup, 0, 0, ln, 1)
			f.emit(opIncN, delta, 0, ln, 0)
			slk, _ := f.lookupOf(t.name)
			f.emit(opSetLookup, slk, -1, ln, 0)
			f.emit(opPop, 0, 0, ln, -1)
		}
	case memberExpr:
		// Old value: full member read. Assignment re-evaluates the object
		// (and computed index), matching assignTo's double evaluation.
		f.member(t)
		if !x.prefix {
			f.emit(opToNum, 0, 0, ln, 0)
			f.emit(opDup, 0, 0, ln, 1)
		}
		f.emit(opIncN, delta, 0, ln, 0)
		f.storeMember(t, ln)
		if !x.prefix {
			f.emit(opPop, 0, 0, ln, -1)
		}
	default:
		f.expr(x.target)
		f.emit(opPop, 0, 0, ln, -1)
		f.emit(opBadAssign, 0, 0, ln, 1)
	}
}

// storeMember writes the top of stack into a member target, evaluating
// the object (and computed index) afresh; the value stays on the stack.
func (f *cfunc) storeMember(t memberExpr, ln int) {
	f.expr(t.obj)
	if t.computed != nil {
		f.expr(t.computed)
		f.emit(opSetMemberDyn, 0, 0, ln, -2)
		return
	}
	f.emit(opSetMember, f.nameOf(t.prop), 0, ln, -1)
}

func (f *cfunc) assign(x assignExpr) {
	ln := x.line()
	if x.op == "=" {
		switch t := x.target.(type) {
		case identExpr:
			f.expr(x.value)
			lk, _ := f.lookupOf(t.name)
			f.emit(opSetLookup, lk, -1, ln, 0)
		case memberExpr:
			f.expr(x.value)
			f.storeMember(t, ln)
		default:
			f.expr(x.value)
			f.emit(opPop, 0, 0, ln, -1)
			f.emit(opBadAssign, 0, 0, ln, 1)
		}
		return
	}
	op := x.op[:len(x.op)-1]
	switch t := x.target.(type) {
	case identExpr:
		lk, ic := f.lookupOf(t.name)
		f.emit(opGetLookup, lk, ic, ln, 1)
		f.expr(x.value)
		f.binOp(op, ln)
		slk, _ := f.lookupOf(t.name)
		f.emit(opSetLookup, slk, -1, ln, 0)
	case memberExpr:
		f.member(t)
		f.expr(x.value)
		f.binOp(op, ln)
		f.storeMember(t, ln)
	default:
		f.expr(x.value)
		f.emit(opPop, 0, 0, ln, -1)
		f.emit(opBadAssign, 0, 0, ln, 1)
	}
}
