package jsvm

import (
	"fmt"
)

type jsParser struct {
	lex  *jsLexer
	tok  jsToken
	prev jsToken
	// fnStack holds the functions whose bodies are being parsed; seeing an
	// `arguments` identifier marks them all (conservatively — a nested
	// mention keeps the outer arrays too, which is always safe).
	fnStack []*funcLit
}

// parseProgram parses a whole script into a statement list.
func parseProgram(src string) ([]node, error) {
	p := &jsParser{lex: newJSLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var body []node
	for p.tok.kind != tEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	return body, nil
}

func (p *jsParser) advance() error {
	p.prev = p.tok
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	if t.kind == tIdent && t.text == "arguments" {
		for _, fn := range p.fnStack {
			fn.usesArgs = true
		}
	}
	return nil
}

func (p *jsParser) isPunct(s string) bool { return p.tok.kind == tPunct && p.tok.text == s }

func (p *jsParser) isKeyword(s string) bool { return p.tok.kind == tKeyword && p.tok.text == s }

func (p *jsParser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return fmt.Errorf("jsvm: line %d: expected %q, found %q", p.tok.line, s, p.tok.text)
	}
	return p.advance()
}

// consumeSemicolon implements pragmatic ASI: an explicit ';', or a '}' /
// EOF / newline boundary.
func (p *jsParser) consumeSemicolon() error {
	if p.isPunct(";") {
		return p.advance()
	}
	if p.isPunct("}") || p.tok.kind == tEOF || p.tok.nlBefore {
		return nil
	}
	return fmt.Errorf("jsvm: line %d: expected ';', found %q", p.tok.line, p.tok.text)
}

func (p *jsParser) statement() (node, error) {
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.isPunct(";"):
		ln := p.tok.line
		return blockStmt{pos{ln}, nil}, p.advance()
	case p.isKeyword("var") || p.isKeyword("let") || p.isKeyword("const"):
		return p.varStatement()
	case p.isKeyword("function"):
		ln := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		fn, err := p.functionRest(true)
		if err != nil {
			return nil, err
		}
		return funcDecl{pos{ln}, fn}, nil
	case p.isKeyword("if"):
		return p.ifStatement()
	case p.isKeyword("for"):
		return p.forStatement()
	case p.isKeyword("while"):
		return p.whileStatement()
	case p.isKeyword("return"):
		ln := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct(";") || p.isPunct("}") || p.tok.kind == tEOF || p.tok.nlBefore {
			_ = p.consumeSemicolon()
			return returnStmt{pos{ln}, nil}, nil
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		return returnStmt{pos{ln}, v}, p.consumeSemicolon()
	case p.isKeyword("break"):
		ln := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		return breakStmt{pos{ln}}, p.consumeSemicolon()
	case p.isKeyword("continue"):
		ln := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		return continueStmt{pos{ln}}, p.consumeSemicolon()
	case p.isKeyword("throw"):
		ln := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		return throwStmt{pos{ln}, v}, p.consumeSemicolon()
	case p.isKeyword("try"):
		return p.tryStatement()
	default:
		ln := p.tok.line
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return exprStmt{pos{ln}, e}, p.consumeSemicolon()
	}
}

func (p *jsParser) block() (node, error) {
	ln := p.tok.line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var body []node
	for !p.isPunct("}") {
		if p.tok.kind == tEOF {
			return nil, fmt.Errorf("jsvm: line %d: unterminated block", ln)
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	return blockStmt{pos{ln}, body}, p.advance()
}

func (p *jsParser) varStatement() (node, error) {
	decl, err := p.varDeclNoSemi()
	if err != nil {
		return nil, err
	}
	return decl, p.consumeSemicolon()
}

func (p *jsParser) varDeclNoSemi() (varDecl, error) {
	ln := p.tok.line
	if err := p.advance(); err != nil { // var/let/const
		return varDecl{}, err
	}
	d := varDecl{pos: pos{ln}}
	for {
		if p.tok.kind != tIdent {
			return d, fmt.Errorf("jsvm: line %d: expected identifier in declaration, found %q", p.tok.line, p.tok.text)
		}
		d.names = append(d.names, p.tok.text)
		if err := p.advance(); err != nil {
			return d, err
		}
		if p.isPunct("=") {
			if err := p.advance(); err != nil {
				return d, err
			}
			v, err := p.assignment()
			if err != nil {
				return d, err
			}
			d.values = append(d.values, v)
		} else {
			d.values = append(d.values, nil)
		}
		if !p.isPunct(",") {
			return d, nil
		}
		if err := p.advance(); err != nil {
			return d, err
		}
	}
}

func (p *jsParser) ifStatement() (node, error) {
	ln := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var alt node
	if p.isKeyword("else") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		alt, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return ifStmt{pos{ln}, cond, then, alt}, nil
}

func (p *jsParser) forStatement() (node, error) {
	ln := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}

	// for (var x in obj) / for (var x of arr)
	if p.isKeyword("var") || p.isKeyword("let") || p.isKeyword("const") {
		save := *p.lex
		saveTok, savePrev := p.tok, p.prev
		decl, err := p.varDeclNoSemi()
		if err != nil {
			return nil, err
		}
		if (p.isKeyword("in") || p.isKeyword("of")) && len(decl.names) == 1 {
			of := p.tok.text == "of"
			if err := p.advance(); err != nil {
				return nil, err
			}
			obj, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			return forInStmt{pos{ln}, decl.names[0], of, obj, body}, nil
		}
		// Classic loop with var init: rewind is unnecessary — we already
		// have the decl; continue from the ';'.
		_ = save
		_ = saveTok
		_ = savePrev
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return p.forRest(ln, decl)
	}

	var init node
	if !p.isPunct(";") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		init = exprStmt{pos{ln}, e}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return p.forRest(ln, init)
}

func (p *jsParser) forRest(ln int, init node) (node, error) {
	var cond, post node
	var err error
	if !p.isPunct(";") {
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return forStmt{pos{ln}, init, cond, post, body}, nil
}

func (p *jsParser) whileStatement() (node, error) {
	ln := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return whileStmt{pos{ln}, cond, body}, nil
}

func (p *jsParser) tryStatement() (node, error) {
	ln := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := tryStmt{pos: pos{ln}, body: body}
	if p.isKeyword("catch") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tIdent {
				return nil, fmt.Errorf("jsvm: line %d: expected catch parameter", p.tok.line)
			}
			st.catchVar = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		st.catchBody, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if p.isKeyword("finally") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		st.finally, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if st.catchBody == nil && st.finally == nil {
		return nil, fmt.Errorf("jsvm: line %d: try without catch or finally", ln)
	}
	return st, nil
}

// functionRest parses "name(params) { body }" after the function keyword.
func (p *jsParser) functionRest(needName bool) (*funcLit, error) {
	fn := &funcLit{pos: pos{p.tok.line}}
	if p.tok.kind == tIdent {
		fn.name = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if needName {
		return nil, fmt.Errorf("jsvm: line %d: function declaration needs a name", p.tok.line)
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		if p.tok.kind != tIdent {
			return nil, fmt.Errorf("jsvm: line %d: expected parameter name, found %q", p.tok.line, p.tok.text)
		}
		fn.params = append(fn.params, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // ')'
		return nil, err
	}
	p.fnStack = append(p.fnStack, fn)
	body, err := p.block()
	p.fnStack = p.fnStack[:len(p.fnStack)-1]
	if err != nil {
		return nil, err
	}
	fn.body = body.(blockStmt).body
	return fn, nil
}

// Expression parsing, precedence climbing.

func (p *jsParser) expression() (node, error) {
	e, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if !p.isPunct(",") {
		return e, nil
	}
	seq := seqExpr{pos{p.tok.line}, []node{e}}
	for p.isPunct(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.assignment()
		if err != nil {
			return nil, err
		}
		seq.exprs = append(seq.exprs, next)
	}
	return seq, nil
}

var assignOps = map[string]bool{"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true}

func (p *jsParser) assignment() (node, error) {
	left, err := p.conditional()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tPunct && assignOps[p.tok.text] {
		op := p.tok.text
		ln := p.tok.line
		switch left.(type) {
		case identExpr, memberExpr:
		default:
			return nil, fmt.Errorf("jsvm: line %d: invalid assignment target", ln)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.assignment()
		if err != nil {
			return nil, err
		}
		return assignExpr{pos{ln}, op, left, right}, nil
	}
	return left, nil
}

func (p *jsParser) conditional() (node, error) {
	cond, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	ln := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	alt, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return condExpr{pos{ln}, cond, then, alt}, nil
}

// binary operator precedence levels.
var binPrec = map[string]int{
	"||": 1, "??": 1,
	"&&": 2,
	"|":  3, "^": 3, "&": 3,
	"==": 4, "!=": 4, "===": 4, "!==": 4,
	"<": 5, ">": 5, "<=": 5, ">=": 5, "instanceof": 5, "in": 5,
	"<<": 6, ">>": 6, ">>>": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "%": 8,
}

func (p *jsParser) binary(minPrec int) (node, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.tok.text
		if p.tok.kind != tPunct && !(p.tok.kind == tKeyword && (op == "instanceof" || op == "in")) {
			return left, nil
		}
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return left, nil
		}
		ln := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		if op == "&&" || op == "||" || op == "??" {
			left = logicalExpr{pos{ln}, op, left, right}
		} else {
			left = binaryExpr{pos{ln}, op, left, right}
		}
	}
}

func (p *jsParser) unary() (node, error) {
	ln := p.tok.line
	switch {
	case p.isPunct("!") || p.isPunct("-") || p.isPunct("+") || p.isPunct("~"):
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{pos{ln}, op, e}, nil
	case p.isKeyword("typeof") || p.isKeyword("void") || p.isKeyword("delete"):
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{pos{ln}, op, e}, nil
	case p.isPunct("++") || p.isPunct("--"):
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return updateExpr{pos{ln}, op, e, true}, nil
	}
	return p.postfix()
}

func (p *jsParser) postfix() (node, error) {
	e, err := p.callMember()
	if err != nil {
		return nil, err
	}
	if (p.isPunct("++") || p.isPunct("--")) && !p.tok.nlBefore {
		op := p.tok.text
		ln := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		return updateExpr{pos{ln}, op, e, false}, nil
	}
	return e, nil
}

func (p *jsParser) callMember() (node, error) {
	var e node
	var err error
	if p.isKeyword("new") {
		ln := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		callee, err := p.callMemberNoCall()
		if err != nil {
			return nil, err
		}
		var args []node
		if p.isPunct("(") {
			args, err = p.arguments()
			if err != nil {
				return nil, err
			}
		}
		e = newExpr{pos{ln}, callee, args}
	} else {
		e, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	return p.memberChain(e, true)
}

// callMemberNoCall parses the callee of new: member accesses bind tighter
// than the construction call.
func (p *jsParser) callMemberNoCall() (node, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	return p.memberChain(e, false)
}

func (p *jsParser) memberChain(e node, allowCall bool) (node, error) {
	for {
		switch {
		case p.isPunct("."):
			ln := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tIdent && p.tok.kind != tKeyword {
				return nil, fmt.Errorf("jsvm: line %d: expected property name, found %q", p.tok.line, p.tok.text)
			}
			e = memberExpr{pos{ln}, e, p.tok.text, nil}
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.isPunct("["):
			ln := p.tok.line
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = memberExpr{pos{ln}, e, "", idx}
		case allowCall && p.isPunct("("):
			ln := p.tok.line
			args, err := p.arguments()
			if err != nil {
				return nil, err
			}
			e = callExpr{pos{ln}, e, args}
		default:
			return e, nil
		}
	}
}

func (p *jsParser) arguments() ([]node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []node
	for !p.isPunct(")") {
		a, err := p.assignment()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return args, p.advance()
}

func (p *jsParser) primary() (node, error) {
	ln := p.tok.line
	switch {
	case p.tok.kind == tNumber:
		v := p.tok.num
		return numberLit{pos{ln}, v}, p.advance()
	case p.tok.kind == tString:
		v := p.tok.text
		return stringLit{pos{ln}, v}, p.advance()
	case p.isKeyword("true"):
		return boolLit{pos{ln}, true}, p.advance()
	case p.isKeyword("false"):
		return boolLit{pos{ln}, false}, p.advance()
	case p.isKeyword("null"):
		return nullLit{pos{ln}}, p.advance()
	case p.isKeyword("undefined"):
		return undefinedLit{pos{ln}}, p.advance()
	case p.isKeyword("this"):
		return thisExpr{pos{ln}}, p.advance()
	case p.isKeyword("function"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		fn, err := p.functionRest(false)
		if err != nil {
			return nil, err
		}
		return *fn, nil
	case p.tok.kind == tIdent:
		name := p.tok.text
		return identExpr{pos{ln}, name}, p.advance()
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	case p.isPunct("["):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lit := arrayLit{pos: pos{ln}}
		for !p.isPunct("]") {
			e, err := p.assignment()
			if err != nil {
				return nil, err
			}
			lit.elems = append(lit.elems, e)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		return lit, p.advance()
	case p.isPunct("{"):
		return p.objectLiteral()
	default:
		return nil, fmt.Errorf("jsvm: line %d: unexpected token %q", ln, p.tok.text)
	}
}

func (p *jsParser) objectLiteral() (node, error) {
	ln := p.tok.line
	if err := p.advance(); err != nil { // '{'
		return nil, err
	}
	lit := objectLit{pos: pos{ln}}
	for !p.isPunct("}") {
		var key string
		switch {
		case p.tok.kind == tIdent || p.tok.kind == tKeyword:
			key = p.tok.text
		case p.tok.kind == tString:
			key = p.tok.text
		case p.tok.kind == tNumber:
			key = formatNumber(p.tok.num)
		default:
			return nil, fmt.Errorf("jsvm: line %d: bad object key %q", p.tok.line, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		v, err := p.assignment()
		if err != nil {
			return nil, err
		}
		lit.props = append(lit.props, propPair{key, v})
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return lit, p.advance()
}
