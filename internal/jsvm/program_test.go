package jsvm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCompileAndRunProgram(t *testing.T) {
	prog, err := Compile(`var x = 2; function double(n) { return n * 2 } double(x) + 1`)
	if err != nil {
		t.Fatal(err)
	}
	vm := New()
	v, err := vm.RunProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumberValue() != 5 {
		t.Errorf("result = %v, want 5", v.NumberValue())
	}
}

func TestProgramReusableAcrossVMs(t *testing.T) {
	prog, err := Compile(`var counter = 0; function inc() { counter++; return counter } inc(); inc()`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vm := New()
		v, err := vm.RunProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		// Each VM gets fresh globals: the counter restarts every time.
		if v.NumberValue() != 2 {
			t.Errorf("run %d: result = %v, want 2", i, v.NumberValue())
		}
	}
}

func TestProgramConcurrentVMs(t *testing.T) {
	// One immutable Program shared by many VMs running at once: the
	// -race job asserts the share is sound.
	prog, err := Compile(`
		var hosts = [];
		function track(h) { hosts.push(h) }
		for (var i = 0; i < 50; i++) { track("host" + i) }
		hosts.length
	`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				vm := New()
				v, err := vm.RunProgram(prog)
				if err != nil {
					errs[w] = err
					return
				}
				if v.NumberValue() != 50 {
					errs[w] = fmt.Errorf("result = %v, want 50", v.NumberValue())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	c := NewCache()
	p1, err := c.Compile(`1 + 1`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Compile(`1 + 1`)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical source compiled to distinct programs")
	}
	if _, err := c.Compile(`2 + 2`); err != nil {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 1 / 2", hits, misses)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheDoesNotCacheParseErrors(t *testing.T) {
	c := NewCache()
	if _, err := c.Compile(`function (`); err == nil {
		t.Fatal("bad source compiled")
	}
	if c.Len() != 0 {
		t.Errorf("parse failure was cached (Len = %d)", c.Len())
	}
}

func TestCompileCachedSharesDefaultCache(t *testing.T) {
	src := `"compile-cached-test-" + 1`
	p1, err := CompileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("CompileCached returned distinct programs for one source")
	}
}

func TestErrStepBudgetHaltsRunawayLoop(t *testing.T) {
	vm := New()
	vm.MaxSteps = 500
	_, err := vm.Run(`while (true) { var x = 1 }`)
	if err == nil {
		t.Fatal("runaway loop terminated without error")
	}
	if !errors.Is(err, ErrStepBudget) {
		t.Errorf("error %v is not ErrStepBudget", err)
	}
	if !strings.Contains(err.Error(), "step budget exhausted") {
		t.Errorf("error text %q lost the legacy message", err)
	}
}

func TestErrStepBudgetNotHitUnderBudget(t *testing.T) {
	vm := New()
	v, err := vm.Run(`var s = 0; for (var i = 0; i < 10; i++) { s += i } s`)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumberValue() != 45 {
		t.Errorf("result = %v, want 45", v.NumberValue())
	}
}

func TestArgumentsObjectStillWorks(t *testing.T) {
	// The arguments array is built only for functions that mention it;
	// make sure the parse-time detection keeps it working.
	vm := New()
	v, err := vm.Run(`
		function sum() {
			var t = 0;
			for (var i = 0; i < arguments.length; i++) { t += arguments[i] }
			return t
		}
		function noargs(a, b) { return a + b }
		sum(1, 2, 3, 4) + noargs(10, 20)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumberValue() != 40 {
		t.Errorf("result = %v, want 40", v.NumberValue())
	}
}

func TestClosureSurvivesScopePooling(t *testing.T) {
	// A closure created inside a block keeps its captured scope alive even
	// though non-escaping scopes are pooled.
	vm := New()
	v, err := vm.Run(`
		function makeCounter() {
			var n = 0;
			return function () { n++; return n }
		}
		var c1 = makeCounter();
		var c2 = makeCounter();
		c1(); c1(); c2();
		c1() * 10 + c2()
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumberValue() != 32 {
		t.Errorf("result = %v, want 32", v.NumberValue())
	}
}
