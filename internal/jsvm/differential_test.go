package jsvm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// differentialCorpus collects programs exercising every language feature
// the engines support, including the semantic quirks both must replicate
// (execution-time var declaration, lost writes to Global-object-backed
// names, finally overriding control flow). Every entry runs on both
// engines and must produce identical results, errors and host-visible
// side effects.
var differentialCorpus = []string{
	// Arithmetic, precedence, coercion.
	`1 + 2 * 3`,
	`(1 + 2) * 3 - 10 % 4`,
	`"n=" + 5 + 1`,
	`1 < 2 ? "a" : "b"`,
	`7 & 3 | 8 ^ 1`,
	`1 << 4 >> 2`,
	`4294967296 >>> 0`,
	`~5 + +"42" + -"3"`,
	`1 == "1"`,
	`1 === "1"`,
	`null == undefined`,
	`null === undefined`,
	`({}) === ({})`,
	`null ?? "fallback"`,
	`0 ?? "fallback"`,
	`0 || "x"`,
	`"y" && 0`,
	`"a" in ({a: 1})`,
	`"b" in ({a: 1})`,
	`({}) instanceof Object`,
	`typeof 1 + typeof "s" + typeof null + typeof undefined + typeof {} + typeof function(){}`,
	`(1, 2, 3)`,
	`void 0 + ""`,
	// Strings.
	`"a,b,c".split(",").join("-")`,
	`"abcdef".slice(1, 3) + "abcdef".slice(-2)`,
	`"hello".replace("l", "L") + "hello".replaceAll("l", "L")`,
	`"abc".charCodeAt(0) + "abc".indexOf("c") + "hello".length`,
	`"  x ".trim().toUpperCase()`,
	// Variables, scope, closures.
	`var x = 1; function outer() { var x = 2; function inner() { return x + 1 } return inner() } outer() + x`,
	`function counter() { var n = 0; return function() { n = n + 1; return n } } var c = counter(); c(); c(); c()`,
	`function mk(i) { return function() { return i } } var fns = []; for (var i = 0; i < 3; i++) { fns.push(mk(i)) } fns[0]() + fns[1]() + fns[2]()`,
	`var x = 5; var y = x++; y + "," + x`,
	`var x = 5; var y = ++x; y + "," + x`,
	`var x = 10; x -= 3; x *= 2; x /= 7; x %= 2; x`,
	// Execution-time var declaration: the assignment before the var
	// statement runs lands on the Global object as an implicit global.
	`function f() { x = 5; var x; return typeof x } f()`,
	`function g() { if (false) { var v = 1 } return typeof v } g()`,
	// Lost write: HOSTVAL is pre-seeded on the Global object by the
	// harness; writes through the scope chain reach only a copied box.
	`HOSTVAL = 9; HOSTVAL`,
	`typeof HOSTVAL`,
	// Control flow.
	`var sum = 0; for (var i = 0; i < 10; i++) { if (i % 2 === 0) { continue } if (i > 7) { break } sum += i } sum`,
	`var n = 0; while (n < 5) { n++ } n`,
	`var s = ""; for (var k in {b: 2, a: 1, c: 3}) { s += k } s`,
	`var t = 0; for (var v of [1, 2, 3]) { t += v } t`,
	`var s = ""; for (var ch of "abc") { s = ch + s } s`,
	`var s = ""; for (var ix in [9, 8, 7]) { s += ix } s`,
	`var out = ""; for (var a = 0; a < 3; a++) { for (var b = 0; b < 3; b++) { if (b > a) { continue } out += "" + a + b } } out`,
	`var r = ""; outerdone: for (var i = 0; i < 3; i++) { r += i } r`,
	// Objects and arrays.
	`var o = {name: "x", nested: {deep: [1, 2, 3]}}; o.nested.deep[1] + o.nested.deep.length`,
	`var a = []; a.push(1); a.push(2, 3); a.pop() + a.length`,
	`[3, 1, 2].sort().join("") + [3, 1, 2].sort(function(x, y) { return y - x }).join("")`,
	`[1, 2, 3, 4].filter(function(x) { return x % 2 === 0 }).map(function(x) { return x * 10 }).join(",")`,
	`[1, 2, 3].reduce(function(a, b) { return a + b }, 10)`,
	`var s = 0; [1, 2, 3].forEach(function(v, i) { s += v * (i + 1) }); s`,
	`Object.keys({b: 1, a: 2}).join(",") + "|" + Object.values({b: 1, a: 2}).join(",")`,
	`var o = {a: 1}; delete o.a; o.hasOwnProperty("a") + "," + ("a" in o)`,
	`var o = {}; o["k" + 1] = 7; o.k1`,
	`var a = [1]; a[3] = 9; a.length + "," + (a[2] + "")`,
	`var o = {n: 41, get: function() { return this.n + 1 }}; o.get()`,
	`function who() { return this.name } who.call({name: "called"}) + who.apply({name: "applied"})`,
	`function Point(x) { this.x = x } var p = new Point(3); p.x`,
	`function Ret() { this.a = 1; return {b: 2} } new Ret().b`,
	// Compound member assignment evaluates the object once per access.
	`var o = {n: 1}; o.n += 2; o.n++; o.n`,
	`var a = [5]; a[0] *= 3; --a[0]; a[0]`,
	// try/catch/finally.
	`var r = "none"; try { throw new Error("boom") } catch (e) { r = e.message } r`,
	`var log = []; try { log.push("t"); undefinedFunction() } catch (e) { log.push("c") } finally { log.push("f") } log.join("")`,
	`function f() { try { return "try" } finally { probe("fin") } } f()`,
	`function f() { try { return "try" } finally { return "fin" } } f()`,
	`var s = ""; for (var i = 0; i < 3; i++) { try { if (i === 1) { continue } s += i } finally { s += "f" } } s`,
	`var s = ""; for (var i = 0; i < 9; i++) { try { if (i === 1) { break } s += i } finally { s += "f" } } s`,
	`var r; try { try { throw new Error("inner") } finally { probe("f1") } } catch (e) { r = e.message } r`,
	`var r = ""; try { r += "a" } catch (e) { r += "c" } r`,
	// IIFE and functions as values.
	`(function(d, s, id) { return d + s + id }("a", "b", "c"))`,
	`function add(a, b) { return a + b } add(2)`,
	`function f() { return arguments.length + "," + arguments[1] } f(9, 8, 7)`,
	`var fn = function named() { return 1 }; fn()`,
	// Built-in globals.
	`JSON.stringify({b: 1, a: [true, null, "x"]})`,
	`JSON.parse('{"k": [1, 2.5], "s": "v"}').k[1]`,
	`Math.floor(3.7) + Math.max(1, 5, 2) + Math.pow(2, 5)`,
	`parseInt("42abc") + parseInt("ff", 16) + parseFloat("2.5x")`,
	`isNaN("abc") + "," + isNaN(5)`,
	`encodeURIComponent("a b&c") + decodeURIComponent("%20")`,
	`(3.14159).toFixed(2) + (255).toString()`,
	`String(12) + Number("3") + Boolean(0)`,
	// Host-visible side effects: the probe log must be identical.
	`probe("one"); probe(1 + 1); probe({k: "v"}); "done"`,
	`for (var i = 0; i < 3; i++) { probe("i" + i) } "ok"`,
	`function f(x) { probe(x); return x * 2 } f(f(2))`,
	`try { probe("t"); throw new Error("e") } catch (e) { probe("c:" + e.message) } "ok"`,
	// Errors must match exactly.
	`neverDeclared + 1`,
	`null.prop`,
	`undefined.x`,
	`var o; o.x`,
	`notAFunction()`,
	`var o = {}; o.missing()`,
	`new 5`,
	`throw new Error("fatal")`,
	`throw "bare string"`,
	// Dynamic member access.
	`var o = {ab: 1}; var k = "a"; o[k + "b"]`,
	`var a = [10, 20, 30]; var i = 1; a[i] + a[i + 1]`,
	`var o = {}; var k = "x"; o[k] = 5; delete o[k]; typeof o[k]`,
}

// diffOutcome is everything observable about one engine's execution.
type diffOutcome struct {
	val    string
	errStr string
	budget bool
	log    []string
}

// runEngineDiff executes src on a fresh VM pinned to one engine,
// capturing the result, error and host-call log.
func runEngineDiff(src string, eng Engine, maxSteps int) diffOutcome {
	vm := New()
	vm.Engine = eng
	vm.MaxSteps = maxSteps
	var out diffOutcome
	vm.Global.Set("HOSTVAL", Number(7))
	vm.Global.SetFunc("probe", func(c Call) (Value, error) {
		parts := make([]string, len(c.Args))
		for i, a := range c.Args {
			parts[i] = a.TypeOf() + ":" + a.StringValue()
		}
		out.log = append(out.log, strings.Join(parts, "|"))
		return Undefined(), nil
	})
	v, err := vm.Run(src)
	if err != nil {
		out.errStr = err.Error()
		out.budget = errors.Is(err, ErrStepBudget)
		return out
	}
	out.val = v.TypeOf() + ":" + v.StringValue()
	return out
}

// compareOutcomes asserts two engine runs are observably identical.
// Step-budget kills compare by class (the two engines count different
// units, so the reported line may differ); all other errors compare
// byte-for-byte.
func compareOutcomes(t *testing.T, src string, ast, bc diffOutcome) {
	t.Helper()
	if ast.budget || bc.budget {
		if ast.budget != bc.budget {
			t.Errorf("%q: budget kill mismatch: ast=%v bytecode=%v (errs %q vs %q)",
				src, ast.budget, bc.budget, ast.errStr, bc.errStr)
		}
		return
	}
	if ast.errStr != bc.errStr {
		t.Errorf("%q: error mismatch:\n  ast:      %q\n  bytecode: %q", src, ast.errStr, bc.errStr)
		return
	}
	if ast.val != bc.val {
		t.Errorf("%q: result mismatch:\n  ast:      %q\n  bytecode: %q", src, ast.val, bc.val)
	}
	if strings.Join(ast.log, "\n") != strings.Join(bc.log, "\n") {
		t.Errorf("%q: host-call log mismatch:\n  ast:      %v\n  bytecode: %v", src, ast.log, bc.log)
	}
}

func TestDifferentialCorpus(t *testing.T) {
	for _, src := range differentialCorpus {
		ast := runEngineDiff(src, EngineAST, 0)
		bc := runEngineDiff(src, EngineBytecode, 0)
		compareOutcomes(t, src, ast, bc)
	}
}

// TestDifferentialCorpusLowers pins that every corpus program actually
// takes the bytecode path (a silent fallback to the walker would make
// the differential comparison vacuous).
func TestDifferentialCorpusLowers(t *testing.T) {
	for _, src := range differentialCorpus {
		p, err := Compile(src)
		if err != nil {
			continue // parse-error entries exercise the error path instead
		}
		if p.main == nil {
			t.Errorf("%q: no bytecode form; differential run would be vacuous", src)
		}
	}
}

// TestDifferentialStepBudget runs budget-bounded programs on both
// engines and asserts both kill the script (the bytecode engine charges
// per instruction against MaxSteps*bcStepFactor, calibrated to fire at
// the same effective budget).
func TestDifferentialStepBudget(t *testing.T) {
	cases := []string{
		`while (true) { var x = 1; }`,
		`for (;;) {}`,
		`function f() { return f() } f()`,
		`var i = 0; while (true) { i += 1; probe(i > 1e9); }`,
	}
	for _, src := range cases {
		for _, budget := range []int{500, 50_000} {
			ast := runEngineDiff(src, EngineAST, budget)
			bc := runEngineDiff(src, EngineBytecode, budget)
			if !ast.budget {
				t.Errorf("%q (budget %d): ast engine did not hit the step budget: %q", src, budget, ast.errStr)
			}
			if !bc.budget {
				t.Errorf("%q (budget %d): bytecode engine did not hit the step budget: %q", src, budget, bc.errStr)
			}
		}
	}
}

// TestDifferentialBudgetSurvivors pins that the conversion factor does
// not make the bytecode engine stricter: programs sized well inside an
// AST budget also finish under the bytecode budget.
func TestDifferentialBudgetSurvivors(t *testing.T) {
	src := `var t = 0; for (var i = 0; i < 100; i++) { t += i } t`
	for _, eng := range []Engine{EngineAST, EngineBytecode} {
		out := runEngineDiff(src, eng, 50_000)
		if out.errStr != "" {
			t.Errorf("engine %v: %q", eng, out.errStr)
		}
		if out.val != "number:4950" {
			t.Errorf("engine %v: got %q", eng, out.val)
		}
	}
}

// genProgram deterministically generates a program from a seed using a
// splitmix-style PRNG. It only emits constructs both engines define
// identically (bounded loops, closures, member access, try/catch,
// string/number arithmetic) so any divergence is an engine bug.
type diffGen struct{ state uint64 }

func (g *diffGen) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *diffGen) intn(n int) int { return int(g.next() % uint64(n)) }

func (g *diffGen) expr(depth int) string {
	if depth <= 0 {
		switch g.intn(6) {
		case 0:
			return fmt.Sprintf("%d", g.intn(100))
		case 1:
			return fmt.Sprintf("%q", string(rune('a'+g.intn(26))))
		case 2:
			return "v" + fmt.Sprint(g.intn(3))
		case 3:
			return "true"
		case 4:
			return "null"
		default:
			return fmt.Sprintf("%d.%d", g.intn(10), g.intn(10))
		}
	}
	switch g.intn(10) {
	case 0:
		return "(" + g.expr(depth-1) + " + " + g.expr(depth-1) + ")"
	case 1:
		return "(" + g.expr(depth-1) + " * " + g.expr(depth-1) + ")"
	case 2:
		return "(" + g.expr(depth-1) + " < " + g.expr(depth-1) + ")"
	case 3:
		return "(" + g.expr(depth-1) + " === " + g.expr(depth-1) + ")"
	case 4:
		return "(" + g.expr(depth-1) + " ? " + g.expr(depth-1) + " : " + g.expr(depth-1) + ")"
	case 5:
		return "[" + g.expr(depth-1) + ", " + g.expr(depth-1) + "].join(\",\")"
	case 6:
		return "({k: " + g.expr(depth-1) + "}).k"
	case 7:
		return "(function(a) { return a + " + g.expr(depth-1) + " })(" + g.expr(depth-1) + ")"
	case 8:
		return "typeof " + g.expr(depth-1)
	default:
		return "(\"\" + " + g.expr(depth-1) + ").length"
	}
}

func (g *diffGen) stmt(depth int) string {
	switch g.intn(7) {
	case 0:
		return fmt.Sprintf("v%d = %s;", g.intn(3), g.expr(depth))
	case 1:
		return fmt.Sprintf("if (%s) { %s } else { %s }", g.expr(depth-1), g.stmt(depth-1), g.stmt(depth-1))
	case 2:
		n := g.intn(5) + 1
		return fmt.Sprintf("for (var i%d = 0; i%d < %d; i%d++) { %s }", depth, depth, n, depth, g.stmt(depth-1))
	case 3:
		return fmt.Sprintf("try { %s } catch (e) { probe(\"c\") }", g.stmt(depth-1))
	case 4:
		return "probe(" + g.expr(depth) + ");"
	case 5:
		return fmt.Sprintf("v%d = v%d + %s;", g.intn(3), g.intn(3), g.expr(depth-1))
	default:
		return fmt.Sprintf("arr.push(%s);", g.expr(depth-1))
	}
}

func (g *diffGen) program() string {
	var b strings.Builder
	b.WriteString("var v0 = 1, v1 = \"s\", v2 = 0; var arr = [];\n")
	for n := g.intn(6) + 2; n > 0; n-- {
		b.WriteString(g.stmt(2))
		b.WriteString("\n")
	}
	b.WriteString("probe(v0, v1, v2, arr.join(\"|\"));\n")
	b.WriteString("\"\" + v0 + v1 + v2 + arr.length")
	return b.String()
}

// TestDifferentialGenerated feeds a fixed block of generator seeds
// through both engines. Deterministic: failures reproduce by seed.
func TestDifferentialGenerated(t *testing.T) {
	for seed := uint64(1); seed <= 400; seed++ {
		g := &diffGen{state: seed * 0x9e3779b97f4a7c15}
		src := g.program()
		ast := runEngineDiff(src, EngineAST, 200_000)
		bc := runEngineDiff(src, EngineBytecode, 200_000)
		compareOutcomes(t, fmt.Sprintf("seed %d: %s", seed, src), ast, bc)
	}
}

// FuzzDifferentialEngines is the open-ended form: the fuzzer explores
// generator seeds, each expanded into a safe random program executed on
// both engines.
func FuzzDifferentialEngines(f *testing.F) {
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g := &diffGen{state: seed*0x9e3779b97f4a7c15 + 1}
		src := g.program()
		ast := runEngineDiff(src, EngineAST, 200_000)
		bc := runEngineDiff(src, EngineBytecode, 200_000)
		compareOutcomes(t, src, ast, bc)
	})
}
