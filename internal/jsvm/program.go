package jsvm

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Program is a parsed script ready for repeated execution. A Program is
// immutable after Compile: the interpreter never mutates AST nodes, so one
// Program may be executed concurrently by any number of VMs (one VM per
// goroutine — the VM itself is not goroutine-safe). This is what lets the
// parallel crawl parse each injected script once and run it on every
// (app, site) visit.
type Program struct {
	src string
	// stmts are the non-declaration statements in source order; decls are
	// the hoisted top-level function declarations. Splitting at compile
	// time removes the two hoisting passes Run used to make per execution.
	stmts []node
	decls []funcDecl
	// main is the bytecode form (compile.go). nil when bytecode
	// compilation declined the program; such programs always run on the
	// tree walker regardless of the selected engine.
	main *funcProto
}

// Engine selects how RunProgram executes a compiled program.
type Engine int

// Engines.
const (
	EngineDefault  Engine = iota // package default (SetDefaultEngine)
	EngineBytecode               // compile.go stack VM
	EngineAST                    // tree-walking interpreter
)

func (e Engine) String() string {
	switch e {
	case EngineBytecode:
		return "bytecode"
	case EngineAST:
		return "ast"
	default:
		return "default"
	}
}

// defaultEngine is the process-wide engine used when VM.Engine is
// EngineDefault. Stored atomically so flag parsing may race with worker
// startup without a data race.
var defaultEngine atomic.Int32

func init() { defaultEngine.Store(int32(EngineBytecode)) }

// SetDefaultEngine selects the process-wide default execution engine
// (the -jsvm-engine flag).
func SetDefaultEngine(e Engine) {
	if e == EngineDefault {
		e = EngineBytecode
	}
	defaultEngine.Store(int32(e))
}

// DefaultEngine reports the process-wide default execution engine.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// ParseEngine parses a -jsvm-engine flag value.
func ParseEngine(s string) (Engine, bool) {
	switch s {
	case "bytecode", "":
		return EngineBytecode, true
	case "ast":
		return EngineAST, true
	default:
		return EngineDefault, false
	}
}

// Src returns the source the program was compiled from.
func (p *Program) Src() string { return p.src }

// HasBytecode reports whether the program carries a bytecode form.
func (p *Program) HasBytecode() bool { return p.main != nil }

// Compile parses src into an executable Program.
func Compile(src string) (*Program, error) {
	body, err := parseProgram(src)
	if err != nil {
		return nil, err
	}
	p := &Program{src: src}
	for _, st := range body {
		if fd, ok := st.(funcDecl); ok {
			p.decls = append(p.decls, fd)
		} else {
			p.stmts = append(p.stmts, st)
		}
	}
	// Lower to bytecode. A compile error is not a program error: the AST
	// form stays authoritative and the walker executes it.
	if main, cerr := compileProgram(p); cerr == nil {
		p.main = main
		compileCounter.Load().Inc()
	}
	return p, nil
}

// Cache is a content-keyed program cache: identical sources parse once and
// share one immutable Program. It is safe for concurrent use, so worker
// VMs executing the same injected scripts (the measurement page's payloads
// are byte-identical across all visits) all hit the same entry.
type Cache struct {
	mu     sync.RWMutex
	m      map[string]*Program
	hits   atomic.Uint64
	misses atomic.Uint64
	// hitC/missC mirror the counters into a telemetry registry; nil (the
	// default) is a no-op. The split is deterministic even under compile
	// races: the race loser counts a hit, so misses always equals the
	// number of distinct sources.
	hitC, missC *telemetry.Counter
}

// Instrument mirrors the cache's hit/miss traffic into telemetry counters.
// Call before the cache is shared across goroutines.
func (c *Cache) Instrument(hits, misses *telemetry.Counter) {
	c.mu.Lock()
	c.hitC, c.missC = hits, misses
	c.mu.Unlock()
}

// NewCache returns an empty program cache.
func NewCache() *Cache { return &Cache{m: make(map[string]*Program)} }

// cacheKeyVersion prefixes cache keys with the bytecode format
// generation. Bumping it on instruction-set changes guarantees entries
// persisted or shared by an older binary never alias a newer program
// (the NUL cannot occur at that position in a raw source key).
const cacheKeyVersion = "jsvm-bc1\x00"

// Compile returns the cached Program for src, parsing and storing it on
// first sight. Parse failures are returned but never cached.
func (c *Cache) Compile(src string) (*Program, error) {
	key := cacheKeyVersion + src
	c.mu.RLock()
	p, ok := c.m[key]
	hitC := c.hitC
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		hitC.Inc()
		return p, nil
	}
	compiled, err := Compile(src)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[key]; ok { // lost a race: keep the first entry
		c.hits.Add(1)
		c.hitC.Inc()
		return p, nil
	}
	c.misses.Add(1)
	c.missC.Inc()
	c.m[key] = compiled
	return compiled, nil
}

// Len reports the number of cached programs.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats reports cache hits and misses since creation.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// defaultCache backs CompileCached: one process-wide parse per distinct
// script source.
var defaultCache = NewCache()

// CompileCached compiles src through the process-wide program cache. The
// browser simulation routes page scripts and injected scripts through this,
// so a crawl parses each distinct script exactly once no matter how many
// visits execute it.
func CompileCached(src string) (*Program, error) {
	return defaultCache.Compile(src)
}

// DefaultCacheStats exposes the process-wide cache counters (for stats
// lines and tests).
func DefaultCacheStats() (hits, misses uint64) { return defaultCache.Stats() }

// stepBudgetCounter counts scripts halted by the step budget; set through
// Instrument, read lock-free on the (rare) exhaustion path. The remaining
// counters instrument the bytecode engine: programs lowered to bytecode,
// program executions, and inline-cache traffic. All are deterministic
// functions of the executed workload, so same-seed runs stay
// byte-identical.
var (
	stepBudgetCounter atomic.Pointer[telemetry.Counter]
	compileCounter    atomic.Pointer[telemetry.Counter]
	executeCounter    atomic.Pointer[telemetry.Counter]
	icHitCounter      atomic.Pointer[telemetry.Counter]
	icMissCounter     atomic.Pointer[telemetry.Counter]
)

// Instrument wires the package's process-wide observability into hub: the
// default program cache's hit/miss traffic
// (jsvm_program_cache_total{result}), the count of scripts killed by the
// step budget (jsvm_step_budget_exhausted_total), bytecode compilations
// (jsvm_bytecode_compile_total), program executions
// (jsvm_execute_total) and inline-cache traffic
// (jsvm_inline_cache_total{result}).
func Instrument(hub *telemetry.Hub) {
	defaultCache.Instrument(
		hub.Counter("jsvm_program_cache_total", "program-cache lookups by result", "result", "hit"),
		hub.Counter("jsvm_program_cache_total", "program-cache lookups by result", "result", "miss"),
	)
	stepBudgetCounter.Store(hub.Counter("jsvm_step_budget_exhausted_total", "scripts halted by the interpreter step budget"))
	compileCounter.Store(hub.Counter("jsvm_bytecode_compile_total", "programs lowered to bytecode"))
	executeCounter.Store(hub.Counter("jsvm_execute_total", "program executions (both engines)"))
	icHitCounter.Store(hub.Counter("jsvm_inline_cache_total", "bytecode inline-cache lookups by result", "result", "hit"))
	icMissCounter.Store(hub.Counter("jsvm_inline_cache_total", "bytecode inline-cache lookups by result", "result", "miss"))
}
