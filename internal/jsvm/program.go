package jsvm

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Program is a parsed script ready for repeated execution. A Program is
// immutable after Compile: the interpreter never mutates AST nodes, so one
// Program may be executed concurrently by any number of VMs (one VM per
// goroutine — the VM itself is not goroutine-safe). This is what lets the
// parallel crawl parse each injected script once and run it on every
// (app, site) visit.
type Program struct {
	src string
	// stmts are the non-declaration statements in source order; decls are
	// the hoisted top-level function declarations. Splitting at compile
	// time removes the two hoisting passes Run used to make per execution.
	stmts []node
	decls []funcDecl
}

// Src returns the source the program was compiled from.
func (p *Program) Src() string { return p.src }

// Compile parses src into an executable Program.
func Compile(src string) (*Program, error) {
	body, err := parseProgram(src)
	if err != nil {
		return nil, err
	}
	p := &Program{src: src}
	for _, st := range body {
		if fd, ok := st.(funcDecl); ok {
			p.decls = append(p.decls, fd)
		} else {
			p.stmts = append(p.stmts, st)
		}
	}
	return p, nil
}

// Cache is a content-keyed program cache: identical sources parse once and
// share one immutable Program. It is safe for concurrent use, so worker
// VMs executing the same injected scripts (the measurement page's payloads
// are byte-identical across all visits) all hit the same entry.
type Cache struct {
	mu     sync.RWMutex
	m      map[string]*Program
	hits   atomic.Uint64
	misses atomic.Uint64
	// hitC/missC mirror the counters into a telemetry registry; nil (the
	// default) is a no-op. The split is deterministic even under compile
	// races: the race loser counts a hit, so misses always equals the
	// number of distinct sources.
	hitC, missC *telemetry.Counter
}

// Instrument mirrors the cache's hit/miss traffic into telemetry counters.
// Call before the cache is shared across goroutines.
func (c *Cache) Instrument(hits, misses *telemetry.Counter) {
	c.mu.Lock()
	c.hitC, c.missC = hits, misses
	c.mu.Unlock()
}

// NewCache returns an empty program cache.
func NewCache() *Cache { return &Cache{m: make(map[string]*Program)} }

// Compile returns the cached Program for src, parsing and storing it on
// first sight. Parse failures are returned but never cached.
func (c *Cache) Compile(src string) (*Program, error) {
	c.mu.RLock()
	p, ok := c.m[src]
	hitC := c.hitC
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		hitC.Inc()
		return p, nil
	}
	compiled, err := Compile(src)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[src]; ok { // lost a race: keep the first entry
		c.hits.Add(1)
		c.hitC.Inc()
		return p, nil
	}
	c.misses.Add(1)
	c.missC.Inc()
	c.m[src] = compiled
	return compiled, nil
}

// Len reports the number of cached programs.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats reports cache hits and misses since creation.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// defaultCache backs CompileCached: one process-wide parse per distinct
// script source.
var defaultCache = NewCache()

// CompileCached compiles src through the process-wide program cache. The
// browser simulation routes page scripts and injected scripts through this,
// so a crawl parses each distinct script exactly once no matter how many
// visits execute it.
func CompileCached(src string) (*Program, error) {
	return defaultCache.Compile(src)
}

// DefaultCacheStats exposes the process-wide cache counters (for stats
// lines and tests).
func DefaultCacheStats() (hits, misses uint64) { return defaultCache.Stats() }

// stepBudgetCounter counts scripts halted by the step budget; set through
// Instrument, read lock-free on the (rare) exhaustion path.
var stepBudgetCounter atomic.Pointer[telemetry.Counter]

// Instrument wires the package's process-wide observability into hub: the
// default program cache's hit/miss traffic
// (jsvm_program_cache_total{result}) and the count of scripts killed by
// the interpreter step budget (jsvm_step_budget_exhausted_total).
func Instrument(hub *telemetry.Hub) {
	defaultCache.Instrument(
		hub.Counter("jsvm_program_cache_total", "program-cache lookups by result", "result", "hit"),
		hub.Counter("jsvm_program_cache_total", "program-cache lookups by result", "result", "miss"),
	)
	stepBudgetCounter.Store(hub.Counter("jsvm_step_budget_exhausted_total", "scripts halted by the interpreter step budget"))
}
