package jsvm

import (
	"sync"
	"sync/atomic"
)

// Program is a parsed script ready for repeated execution. A Program is
// immutable after Compile: the interpreter never mutates AST nodes, so one
// Program may be executed concurrently by any number of VMs (one VM per
// goroutine — the VM itself is not goroutine-safe). This is what lets the
// parallel crawl parse each injected script once and run it on every
// (app, site) visit.
type Program struct {
	src string
	// stmts are the non-declaration statements in source order; decls are
	// the hoisted top-level function declarations. Splitting at compile
	// time removes the two hoisting passes Run used to make per execution.
	stmts []node
	decls []funcDecl
}

// Src returns the source the program was compiled from.
func (p *Program) Src() string { return p.src }

// Compile parses src into an executable Program.
func Compile(src string) (*Program, error) {
	body, err := parseProgram(src)
	if err != nil {
		return nil, err
	}
	p := &Program{src: src}
	for _, st := range body {
		if fd, ok := st.(funcDecl); ok {
			p.decls = append(p.decls, fd)
		} else {
			p.stmts = append(p.stmts, st)
		}
	}
	return p, nil
}

// Cache is a content-keyed program cache: identical sources parse once and
// share one immutable Program. It is safe for concurrent use, so worker
// VMs executing the same injected scripts (the measurement page's payloads
// are byte-identical across all visits) all hit the same entry.
type Cache struct {
	mu     sync.RWMutex
	m      map[string]*Program
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewCache returns an empty program cache.
func NewCache() *Cache { return &Cache{m: make(map[string]*Program)} }

// Compile returns the cached Program for src, parsing and storing it on
// first sight. Parse failures are returned but never cached.
func (c *Cache) Compile(src string) (*Program, error) {
	c.mu.RLock()
	p, ok := c.m[src]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return p, nil
	}
	compiled, err := Compile(src)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[src]; ok { // lost a race: keep the first entry
		c.hits.Add(1)
		return p, nil
	}
	c.misses.Add(1)
	c.m[src] = compiled
	return compiled, nil
}

// Len reports the number of cached programs.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats reports cache hits and misses since creation.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// defaultCache backs CompileCached: one process-wide parse per distinct
// script source.
var defaultCache = NewCache()

// CompileCached compiles src through the process-wide program cache. The
// browser simulation routes page scripts and injected scripts through this,
// so a crawl parses each distinct script exactly once no matter how many
// visits execute it.
func CompileCached(src string) (*Program, error) {
	return defaultCache.Compile(src)
}

// DefaultCacheStats exposes the process-wide cache counters (for stats
// lines and tests).
func DefaultCacheStats() (hits, misses uint64) { return defaultCache.Stats() }
