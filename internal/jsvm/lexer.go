package jsvm

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/intern"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tKeyword
	tNumber
	tString
	tPunct
)

var keywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true, "return": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"break": true, "continue": true, "new": true, "delete": true,
	"typeof": true, "instanceof": true, "in": true, "of": true,
	"try": true, "catch": true, "finally": true, "throw": true,
	"true": true, "false": true, "null": true, "undefined": true,
	"this": true, "switch": true, "case": true, "default": true, "void": true,
}

type jsToken struct {
	kind tokKind
	text string
	num  float64
	line int
	// nlBefore marks a newline between the previous token and this one
	// (used for restricted productions like return).
	nlBefore bool
}

type jsLexer struct {
	src  string
	pos  int
	line int
}

func newJSLexer(src string) *jsLexer { return &jsLexer{src: src, line: 1} }

// punctuators, longest first per leading byte.
var punct3 = []string{"===", "!==", ">>>", "**=", "..."}
var punct2 = []string{
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "=>", "<<", ">>", "??",
}

func (l *jsLexer) next() (jsToken, error) {
	nl := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			nl = true
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return jsToken{}, fmt.Errorf("line %d: unterminated comment", l.line)
			}
			seg := l.src[l.pos : l.pos+2+end+2]
			l.line += strings.Count(seg, "\n")
			if strings.Contains(seg, "\n") {
				nl = true
			}
			l.pos += len(seg)
		default:
			tok, err := l.lexToken()
			tok.nlBefore = nl
			return tok, err
		}
	}
	return jsToken{kind: tEOF, line: l.line, nlBefore: nl}, nil
}

func (l *jsLexer) lexToken() (jsToken, error) {
	c := l.src[l.pos]
	switch {
	case isJSIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			if !isJSIdentPart(r) {
				break
			}
			l.pos += size
		}
		text := l.src[start:l.pos]
		kind := tIdent
		if keywords[text] {
			kind = tKeyword
		}
		// Interning collapses every occurrence of an identifier to one
		// shared string and unpins the (much larger) source text from
		// long-lived cached Programs.
		return jsToken{kind: kind, text: intern.String(text), line: l.line}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		return l.lexNumber()
	case c == '"' || c == '\'':
		return l.lexString(c)
	case c == '`':
		return l.lexTemplate()
	default:
		for _, p := range punct3 {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += 3
				return jsToken{kind: tPunct, text: p, line: l.line}, nil
			}
		}
		for _, p := range punct2 {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += 2
				return jsToken{kind: tPunct, text: p, line: l.line}, nil
			}
		}
		l.pos++
		return jsToken{kind: tPunct, text: string(c), line: l.line}, nil
	}
}

func (l *jsLexer) lexNumber() (jsToken, error) {
	start := l.pos
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.pos++
		}
		n, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return jsToken{}, fmt.Errorf("line %d: bad hex literal %q", l.line, l.src[start:l.pos])
		}
		return jsToken{kind: tNumber, num: float64(n), text: l.src[start:l.pos], line: l.line}, nil
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return jsToken{}, fmt.Errorf("line %d: bad number %q", l.line, text)
	}
	return jsToken{kind: tNumber, num: n, text: text, line: l.line}, nil
}

func (l *jsLexer) lexString(quote byte) (jsToken, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return jsToken{kind: tString, text: sb.String(), line: l.line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return jsToken{}, fmt.Errorf("line %d: unterminated string", l.line)
			}
			sb.WriteString(unescape(l.src[l.pos]))
			l.pos++
		case '\n':
			return jsToken{}, fmt.Errorf("line %d: newline in string", l.line)
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return jsToken{}, fmt.Errorf("line %d: unterminated string", l.line)
}

// lexTemplate handles backtick strings without ${} interpolation (enough
// for the measured scripts).
func (l *jsLexer) lexTemplate() (jsToken, error) {
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '`':
			l.pos++
			return jsToken{kind: tString, text: sb.String(), line: l.line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return jsToken{}, fmt.Errorf("line %d: unterminated template", l.line)
			}
			sb.WriteString(unescape(l.src[l.pos]))
			l.pos++
		case '\n':
			l.line++
			sb.WriteByte(c)
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return jsToken{}, fmt.Errorf("line %d: unterminated template", l.line)
}

func unescape(c byte) string {
	switch c {
	case 'n':
		return "\n"
	case 't':
		return "\t"
	case 'r':
		return "\r"
	case '0':
		return "\x00"
	default:
		return string(c)
	}
}

func isJSIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isJSIdentPart(r rune) bool { return isJSIdentStart(r) || unicode.IsDigit(r) }

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
