package jsvm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string) Value {
	t.Helper()
	vm := New()
	v, err := vm.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return v
}

func TestArithmeticAndPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 % 3", 1},
		{"2 * 3 + 4 * 5", 26},
		{"-3 + 1", -2},
		{"1 < 2 ? 10 : 20", 10},
		{"7 & 3", 3},
		{"1 << 4", 16},
		{"255 >> 4", 15},
		{"5 ^ 1", 4},
	}
	for _, c := range cases {
		if got := run(t, c.src).NumberValue(); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestStringOps(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"a" + "b"`, "ab"},
		{`"n=" + 5`, "n=5"},
		{`"Hello".toLowerCase()`, "hello"},
		{`"a,b,c".split(",").join("-")`, "a-b-c"},
		{`"  x ".trim()`, "x"},
		{`"abcdef".slice(1, 3)`, "bc"},
		{`"abcdef".slice(-2)`, "ef"},
		{`"hello".replace("l", "L")`, "heLlo"},
		{`"hello".replaceAll("l", "L")`, "heLLo"},
		{`"abc".charAt(1)`, "b"},
		{`typeof "x"`, "string"},
	}
	for _, c := range cases {
		if got := run(t, c.src).StringValue(); got != c.want {
			t.Errorf("%s = %q, want %q", c.src, got, c.want)
		}
	}
	if got := run(t, `"abc".indexOf("c")`).NumberValue(); got != 2 {
		t.Errorf("indexOf = %v", got)
	}
	if got := run(t, `"hello".length`).NumberValue(); got != 5 {
		t.Errorf("length = %v", got)
	}
}

func TestVariablesAndScope(t *testing.T) {
	src := `
var x = 1;
function outer() {
    var x = 2;
    function inner() { return x + 1; }
    return inner();
}
outer() + x;`
	if got := run(t, src).NumberValue(); got != 4 {
		t.Errorf("closure result = %v, want 4", got)
	}
}

func TestClosuresCaptureByReference(t *testing.T) {
	src := `
function counter() {
    var n = 0;
    return function() { n = n + 1; return n; };
}
var c = counter();
c(); c(); c();`
	if got := run(t, src).NumberValue(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
var sum = 0;
for (var i = 0; i < 10; i++) {
    if (i % 2 === 0) { continue; }
    if (i > 7) { break; }
    sum += i;
}
sum;`
	if got := run(t, src).NumberValue(); got != 1+3+5+7 {
		t.Errorf("loop sum = %v", got)
	}
	if got := run(t, `var n = 0; while (n < 5) { n++; } n;`).NumberValue(); got != 5 {
		t.Errorf("while = %v", got)
	}
}

func TestForInAndForOf(t *testing.T) {
	src := `
var o = {b: 2, a: 1, c: 3};
var keys = [];
for (var k in o) { keys.push(k); }
keys.join(",");`
	if got := run(t, src).StringValue(); got != "a,b,c" {
		t.Errorf("for-in keys = %q", got)
	}
	src2 := `
var total = 0;
for (var v of [1, 2, 3]) { total += v; }
total;`
	if got := run(t, src2).NumberValue(); got != 6 {
		t.Errorf("for-of = %v", got)
	}
}

func TestObjectsAndArrays(t *testing.T) {
	src := `
var o = {name: "x", nested: {deep: [1, 2, 3]}};
o.nested.deep[1] + o.nested.deep.length;`
	if got := run(t, src).NumberValue(); got != 5 {
		t.Errorf("nested access = %v", got)
	}
	if got := run(t, `var a = []; a.push(1); a.push(2, 3); a.length;`).NumberValue(); got != 3 {
		t.Errorf("push = %v", got)
	}
	if got := run(t, `[3, 1, 2].sort().join("")`).StringValue(); got != "123" {
		t.Errorf("sort = %q", got)
	}
	if got := run(t, `[1,2,3,4].filter(function(x){return x % 2 === 0;}).map(function(x){return x * 10;}).join(",")`).StringValue(); got != "20,40" {
		t.Errorf("filter/map = %q", got)
	}
	if got := run(t, `[1,2,3].reduce(function(a,b){return a+b;}, 10)`).NumberValue(); got != 16 {
		t.Errorf("reduce = %v", got)
	}
}

func TestIIFE(t *testing.T) {
	src := `
(function(d, s, id) {
    return d + s + id;
}("a", "b", "c"));`
	if got := run(t, src).StringValue(); got != "abc" {
		t.Errorf("IIFE = %q", got)
	}
}

// The paper's Listing 1: the Facebook/Instagram autofill SDK injector,
// executed against a host document object.
func TestListing1AutofillInjection(t *testing.T) {
	vm := New()
	var inserted []string
	scriptEl := NewObject()
	doc := NewObject()
	doc.SetFunc("getElementsByTagName", func(c Call) (Value, error) {
		el := NewObject()
		parent := NewObject()
		parent.SetFunc("insertBefore", func(cc Call) (Value, error) {
			if o := cc.Arg(0).Object(); o != nil {
				inserted = append(inserted, o.Get("src").StringValue())
			}
			return cc.Arg(0), nil
		})
		el.Set("parentNode", ObjectValue(parent))
		arr := NewArray(ObjectValue(el))
		return ObjectValue(arr), nil
	})
	doc.SetFunc("getElementById", func(c Call) (Value, error) {
		return Null(), nil
	})
	doc.SetFunc("createElement", func(c Call) (Value, error) {
		return ObjectValue(scriptEl), nil
	})
	vm.Global.Set("document", ObjectValue(doc))

	src := `
(function(d, s, id){
    var sdkURL = "//connect.facebook.net/en_US/iab.autofill.enhanced.js";
    var js, fjs = d.getElementsByTagName(s)[0];
    if (d.getElementById(id)) {
        return;
    }
    js = d.createElement(s);
    js.id = id;
    js.src = sdkURL;
    fjs.parentNode.insertBefore(js, fjs);
}(document, 'script', 'instagram-autofill-sdk'));`
	if _, err := vm.Run(src); err != nil {
		t.Fatalf("Listing 1: %v", err)
	}
	if len(inserted) != 1 || !strings.Contains(inserted[0], "iab.autofill.enhanced.js") {
		t.Errorf("inserted = %v", inserted)
	}
	if scriptEl.Get("id").StringValue() != "instagram-autofill-sdk" {
		t.Errorf("script id = %q", scriptEl.Get("id").StringValue())
	}
}

func TestTryCatchThrow(t *testing.T) {
	src := `
var result = "none";
try {
    throw new Error("boom");
} catch (e) {
    result = e.message;
}
result;`
	if got := run(t, src).StringValue(); got != "boom" {
		t.Errorf("catch = %q", got)
	}
	src2 := `
var log = [];
try {
    log.push("t");
    undefinedFunction();
    log.push("unreached");
} catch (e) {
    log.push("c");
} finally {
    log.push("f");
}
log.join("");`
	if got := run(t, src2).StringValue(); got != "tcf" {
		t.Errorf("try/catch/finally = %q", got)
	}
}

func TestUncaughtThrowSurfacesAsError(t *testing.T) {
	vm := New()
	_, err := vm.Run(`throw new Error("fatal");`)
	if err == nil {
		t.Fatal("uncaught throw returned nil error")
	}
	if !strings.Contains(err.Error(), "fatal") {
		t.Errorf("err = %v", err)
	}
}

func TestJSON(t *testing.T) {
	if got := run(t, `JSON.stringify({b: 1, a: [true, null, "x"]})`).StringValue(); got != `{"a":[true,null,"x"],"b":1}` {
		t.Errorf("stringify = %q", got)
	}
	if got := run(t, `JSON.parse('{"k": [1, 2.5], "s": "v"}').k[1]`).NumberValue(); got != 2.5 {
		t.Errorf("parse = %v", got)
	}
	if got := run(t, `JSON.parse('"uniA"')`).StringValue(); got != "uniA" {
		t.Errorf("unicode escape = %q", got)
	}
	vm := New()
	if _, err := vm.Run(`JSON.parse("{bad json")`); err == nil {
		t.Error("bad JSON parse succeeded")
	}
}

func TestMathAndGlobals(t *testing.T) {
	if got := run(t, `Math.floor(3.7) + Math.max(1, 5, 2)`).NumberValue(); got != 8 {
		t.Errorf("math = %v", got)
	}
	if got := run(t, `parseInt("42abc")`).NumberValue(); got != 42 {
		t.Errorf("parseInt = %v", got)
	}
	if got := run(t, `parseInt("ff", 16)`).NumberValue(); got != 255 {
		t.Errorf("parseInt hex = %v", got)
	}
	if !math.IsNaN(run(t, `parseInt("zz")`).NumberValue()) {
		t.Error("parseInt(zz) not NaN")
	}
	if got := run(t, `encodeURIComponent("a b&c")`).StringValue(); got != "a%20b%26c" {
		t.Errorf("encodeURIComponent = %q", got)
	}
	if got := run(t, `decodeURIComponent("a%20b%26c")`).StringValue(); got != "a b&c" {
		t.Errorf("decodeURIComponent = %q", got)
	}
	if got := run(t, `typeof Date.now()`).StringValue(); got != "number" {
		t.Errorf("Date.now type = %q", got)
	}
}

func TestEqualitySemantics(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`1 == "1"`, true},
		{`1 === "1"`, false},
		{`null == undefined`, true},
		{`null === undefined`, false},
		{`"a" === "a"`, true},
		{`({}) === ({})`, false},
	}
	for _, c := range cases {
		if got := run(t, c.src).Truthy(); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestHostFunctionsAndBridges(t *testing.T) {
	vm := New()
	var received []string
	bridge := NewObject()
	bridge.SetFunc("postMessage", func(c Call) (Value, error) {
		received = append(received, c.Arg(0).StringValue())
		return Undefined(), nil
	})
	vm.Global.Set("NativeBridge", ObjectValue(bridge))
	if _, err := vm.Run(`NativeBridge.postMessage(JSON.stringify({event: "ready", n: 1}));`); err != nil {
		t.Fatal(err)
	}
	if len(received) != 1 || received[0] != `{"event":"ready","n":1}` {
		t.Errorf("received = %v", received)
	}
}

func TestCallFunctionFromGo(t *testing.T) {
	vm := New()
	if _, err := vm.Run(`function add(a, b) { return a + b; }`); err != nil {
		t.Fatal(err)
	}
	fn := vm.Global.Get("add")
	if fn.IsUndefined() {
		// Function declarations at top level land in the global scope; expose
		// them via a second Run.
		v, err := vm.Run(`add`)
		if err != nil {
			t.Fatal(err)
		}
		fn = v
	}
	got, err := vm.CallFunction(fn, Undefined(), Number(2), Number(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumberValue() != 5 {
		t.Errorf("add(2,3) = %v", got.NumberValue())
	}
}

func TestStepBudgetStopsInfiniteLoop(t *testing.T) {
	vm := New()
	vm.MaxSteps = 50_000
	if _, err := vm.Run(`while (true) { var x = 1; }`); err == nil {
		t.Error("infinite loop terminated without error")
	}
}

func TestThisBinding(t *testing.T) {
	src := `
var obj = {
    n: 41,
    get: function() { return this.n + 1; }
};
obj.get();`
	if got := run(t, src).NumberValue(); got != 42 {
		t.Errorf("this binding = %v", got)
	}
}

func TestCallAndApply(t *testing.T) {
	src := `
function who() { return this.name; }
who.call({name: "called"});`
	if got := run(t, src).StringValue(); got != "called" {
		t.Errorf("call = %q", got)
	}
	src2 := `
function sum(a, b) { return a + b; }
sum.apply(null, [4, 5]);`
	if got := run(t, src2).NumberValue(); got != 9 {
		t.Errorf("apply = %v", got)
	}
}

func TestTypeofUndeclared(t *testing.T) {
	if got := run(t, `typeof neverDeclared`).StringValue(); got != "undefined" {
		t.Errorf("typeof undeclared = %q", got)
	}
	vm := New()
	if _, err := vm.Run(`neverDeclared + 1`); err == nil {
		t.Error("use of undeclared variable succeeded")
	}
}

func TestParseErrors(t *testing.T) {
	vm := New()
	for _, src := range []string{
		`function (`, `var = 3`, `if (x`, `{`, `"unterminated`,
		`for (;;`, `1 +`, `a.`, `try {}`,
	} {
		if _, err := vm.Run(src); err == nil {
			t.Errorf("Run(%q) unexpectedly succeeded", src)
		}
	}
}

func TestSwitchLikeChains(t *testing.T) {
	// else-if chains substitute for switch in measured scripts.
	src := `
function classify(n) {
    if (n < 10) { return "small"; }
    else if (n < 100) { return "medium"; }
    else { return "large"; }
}
classify(5) + classify(50) + classify(500);`
	if got := run(t, src).StringValue(); got != "smallmediumlarge" {
		t.Errorf("chain = %q", got)
	}
}

// Property: number formatting round-trips through string coercion for
// integers in the safe range.
func TestQuickNumberRoundTrip(t *testing.T) {
	vm := New()
	prop := func(n int32) bool {
		v, err := vm.Run("(" + Number(float64(n)).StringValue() + ")")
		if err != nil {
			return false
		}
		return v.NumberValue() == float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: JSON.stringify output re-parses to an equal structure for
// string maps.
func TestQuickJSONRoundTrip(t *testing.T) {
	prop := func(keys []string, vals []int16) bool {
		o := NewObject()
		for i, k := range keys {
			if i >= len(vals) {
				break
			}
			o.Set(k, Number(float64(vals[i])))
		}
		s := jsonStringify(ObjectValue(o))
		v, err := jsonParse(s)
		if err != nil {
			return false
		}
		back := v.Object()
		if back == nil || len(back.Keys()) != len(o.Keys()) {
			return false
		}
		for _, k := range o.Keys() {
			if back.Get(k).NumberValue() != o.Get(k).NumberValue() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
