package jsvm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// installBuiltins seeds the global object with the standard library subset
// the measured scripts use: Math, JSON, Object.keys, Array.isArray,
// String(), Number(), parseInt/parseFloat, isNaN, Date.now (deterministic
// counter) and Error.
func installBuiltins(vm *VM) {
	g := vm.Global

	mathObj := NewObject()
	mathObj.SetFunc("floor", math1(math.Floor))
	mathObj.SetFunc("ceil", math1(math.Ceil))
	mathObj.SetFunc("round", math1(math.Round))
	mathObj.SetFunc("abs", math1(math.Abs))
	mathObj.SetFunc("sqrt", math1(math.Sqrt))
	mathObj.SetFunc("max", func(c Call) (Value, error) {
		out := math.Inf(-1)
		for _, a := range c.Args {
			out = math.Max(out, a.NumberValue())
		}
		return Number(out), nil
	})
	mathObj.SetFunc("min", func(c Call) (Value, error) {
		out := math.Inf(1)
		for _, a := range c.Args {
			out = math.Min(out, a.NumberValue())
		}
		return Number(out), nil
	})
	mathObj.SetFunc("pow", func(c Call) (Value, error) {
		return Number(math.Pow(c.Arg(0).NumberValue(), c.Arg(1).NumberValue())), nil
	})
	// Deterministic "random": an LCG so injected code behaves reproducibly.
	var lcg uint64 = 0x2545F4914F6CDD1D
	mathObj.SetFunc("random", func(c Call) (Value, error) {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return Number(float64(lcg>>11) / float64(1<<53)), nil
	})
	g.Set("Math", ObjectValue(mathObj))

	jsonObj := NewObject()
	jsonObj.SetFunc("stringify", func(c Call) (Value, error) {
		return String(jsonStringify(c.Arg(0))), nil
	})
	jsonObj.SetFunc("parse", func(c Call) (Value, error) {
		v, err := jsonParse(c.Arg(0).StringValue())
		if err != nil {
			return Undefined(), throwError("JSON.parse: %v", err)
		}
		return v, nil
	})
	g.Set("JSON", ObjectValue(jsonObj))

	objectCtor := NewHostFunc("Object", func(c Call) (Value, error) {
		return ObjectValue(NewObject()), nil
	})
	objectCtor.SetFunc("keys", func(c Call) (Value, error) {
		arr := NewArray()
		if o := c.Arg(0).Object(); o != nil {
			for _, k := range o.Keys() {
				arr.Append(String(k))
			}
		}
		return ObjectValue(arr), nil
	})
	objectCtor.SetFunc("values", func(c Call) (Value, error) {
		arr := NewArray()
		if o := c.Arg(0).Object(); o != nil {
			for _, k := range o.Keys() {
				arr.Append(o.Get(k))
			}
		}
		return ObjectValue(arr), nil
	})
	g.Set("Object", ObjectValue(objectCtor))

	arrayCtor := NewHostFunc("Array", func(c Call) (Value, error) {
		return ObjectValue(NewArray(c.Args...)), nil
	})
	arrayCtor.SetFunc("isArray", func(c Call) (Value, error) {
		o := c.Arg(0).Object()
		return Bool(o != nil && o.IsArray()), nil
	})
	g.Set("Array", ObjectValue(arrayCtor))

	g.Set("String", ObjectValue(NewHostFunc("String", func(c Call) (Value, error) {
		return String(c.Arg(0).StringValue()), nil
	})))
	g.Set("Number", ObjectValue(NewHostFunc("Number", func(c Call) (Value, error) {
		return Number(c.Arg(0).NumberValue()), nil
	})))
	g.Set("Boolean", ObjectValue(NewHostFunc("Boolean", func(c Call) (Value, error) {
		return Bool(c.Arg(0).Truthy()), nil
	})))
	g.Set("parseInt", ObjectValue(NewHostFunc("parseInt", func(c Call) (Value, error) {
		s := strings.TrimSpace(c.Arg(0).StringValue())
		base := 10
		if b := c.Arg(1); !b.IsUndefined() && b.NumberValue() != 0 {
			base = int(b.NumberValue())
		}
		end := 0
		neg := false
		if end < len(s) && (s[end] == '+' || s[end] == '-') {
			neg = s[end] == '-'
			end++
		}
		start := end
		for end < len(s) && digitVal(s[end]) >= 0 && digitVal(s[end]) < base {
			end++
		}
		if start == end {
			return Number(math.NaN()), nil
		}
		n, err := strconv.ParseInt(s[start:end], base, 64)
		if err != nil {
			return Number(math.NaN()), nil
		}
		if neg {
			n = -n
		}
		return Number(float64(n)), nil
	})))
	g.Set("parseFloat", ObjectValue(NewHostFunc("parseFloat", func(c Call) (Value, error) {
		return Number(c.Arg(0).NumberValue()), nil
	})))
	g.Set("isNaN", ObjectValue(NewHostFunc("isNaN", func(c Call) (Value, error) {
		return Bool(math.IsNaN(c.Arg(0).NumberValue())), nil
	})))
	g.Set("NaN", Number(math.NaN()))
	g.Set("Infinity", Number(math.Inf(1)))

	g.Set("Error", ObjectValue(NewHostFunc("Error", func(c Call) (Value, error) {
		o := NewObject()
		o.Set("name", String("Error"))
		o.Set("message", c.Arg(0))
		if t := c.This.Object(); t != nil {
			t.Set("name", String("Error"))
			t.Set("message", c.Arg(0))
		}
		return ObjectValue(o), nil
	})))

	g.Set("encodeURIComponent", ObjectValue(NewHostFunc("encodeURIComponent", func(c Call) (Value, error) {
		return String(uriEscape(c.Arg(0).StringValue())), nil
	})))
	g.Set("decodeURIComponent", ObjectValue(NewHostFunc("decodeURIComponent", func(c Call) (Value, error) {
		s, err := uriUnescape(c.Arg(0).StringValue())
		if err != nil {
			return Undefined(), throwError("URI malformed")
		}
		return String(s), nil
	})))

	// Date.now: a deterministic monotone counter (wall clocks would break
	// reproducibility of injected-script output).
	var now float64 = 1_700_000_000_000
	dateCtor := NewHostFunc("Date", func(c Call) (Value, error) {
		o := NewObject()
		o.Set("__ms", Number(now))
		o.SetFunc("getTime", func(cc Call) (Value, error) { return Number(now), nil })
		return ObjectValue(o), nil
	})
	dateCtor.SetFunc("now", func(c Call) (Value, error) {
		now += 16 // one frame per call
		return Number(now), nil
	})
	g.Set("Date", ObjectValue(dateCtor))
}

func math1(f func(float64) float64) HostFunc {
	return func(c Call) (Value, error) { return Number(f(c.Arg(0).NumberValue())), nil }
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	default:
		return -1
	}
}

func uriEscape(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			strings.IndexByte("-_.!~*'()", c) >= 0 {
			sb.WriteByte(c)
		} else {
			fmt.Fprintf(&sb, "%%%02X", c)
		}
	}
	return sb.String()
}

func uriUnescape(s string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' {
			if i+2 >= len(s) {
				return "", fmt.Errorf("truncated escape")
			}
			n, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
			if err != nil {
				return "", err
			}
			sb.WriteByte(byte(n))
			i += 2
		} else {
			sb.WriteByte(s[i])
		}
	}
	return sb.String(), nil
}

// String members.

func stringMember(s, name string) (Value, error) {
	switch name {
	case "length":
		return Number(float64(len(s))), nil
	case "charAt":
		return hostFn(name, func(c Call) (Value, error) {
			i := int(c.Arg(0).NumberValue())
			if i < 0 || i >= len(s) {
				return String(""), nil
			}
			return String(string(s[i])), nil
		}), nil
	case "charCodeAt":
		return hostFn(name, func(c Call) (Value, error) {
			i := int(c.Arg(0).NumberValue())
			if i < 0 || i >= len(s) {
				return Number(math.NaN()), nil
			}
			return Number(float64(s[i])), nil
		}), nil
	case "indexOf":
		return hostFn(name, func(c Call) (Value, error) {
			return Number(float64(strings.Index(s, c.Arg(0).StringValue()))), nil
		}), nil
	case "lastIndexOf":
		return hostFn(name, func(c Call) (Value, error) {
			return Number(float64(strings.LastIndex(s, c.Arg(0).StringValue()))), nil
		}), nil
	case "includes":
		return hostFn(name, func(c Call) (Value, error) {
			return Bool(strings.Contains(s, c.Arg(0).StringValue())), nil
		}), nil
	case "startsWith":
		return hostFn(name, func(c Call) (Value, error) {
			return Bool(strings.HasPrefix(s, c.Arg(0).StringValue())), nil
		}), nil
	case "endsWith":
		return hostFn(name, func(c Call) (Value, error) {
			return Bool(strings.HasSuffix(s, c.Arg(0).StringValue())), nil
		}), nil
	case "slice", "substring":
		return hostFn(name, func(c Call) (Value, error) {
			start, end := sliceBounds(len(s), c.Arg(0), c.Arg(1), name == "slice")
			return String(s[start:end]), nil
		}), nil
	case "toLowerCase":
		return hostFn(name, func(c Call) (Value, error) { return String(strings.ToLower(s)), nil }), nil
	case "toUpperCase":
		return hostFn(name, func(c Call) (Value, error) { return String(strings.ToUpper(s)), nil }), nil
	case "trim":
		return hostFn(name, func(c Call) (Value, error) { return String(strings.TrimSpace(s)), nil }), nil
	case "split":
		return hostFn(name, func(c Call) (Value, error) {
			arr := NewArray()
			sep := c.Arg(0)
			if sep.IsUndefined() {
				arr.Append(String(s))
			} else {
				for _, part := range strings.Split(s, sep.StringValue()) {
					arr.Append(String(part))
				}
			}
			return ObjectValue(arr), nil
		}), nil
	case "replace":
		return hostFn(name, func(c Call) (Value, error) {
			return String(strings.Replace(s, c.Arg(0).StringValue(), c.Arg(1).StringValue(), 1)), nil
		}), nil
	case "replaceAll":
		return hostFn(name, func(c Call) (Value, error) {
			return String(strings.ReplaceAll(s, c.Arg(0).StringValue(), c.Arg(1).StringValue())), nil
		}), nil
	case "concat":
		return hostFn(name, func(c Call) (Value, error) {
			out := s
			for _, a := range c.Args {
				out += a.StringValue()
			}
			return String(out), nil
		}), nil
	case "toString":
		return hostFn(name, func(c Call) (Value, error) { return String(s), nil }), nil
	default:
		return Undefined(), nil
	}
}

func sliceBounds(n int, a, b Value, negOK bool) (int, int) {
	start, end := 0, n
	if !a.IsUndefined() {
		start = int(a.NumberValue())
	}
	if !b.IsUndefined() {
		end = int(b.NumberValue())
	}
	if negOK {
		if start < 0 {
			start += n
		}
		if end < 0 {
			end += n
		}
	}
	start = clamp(start, 0, n)
	end = clamp(end, 0, n)
	if start > end {
		return end, end
	}
	return start, end
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func hostFn(name string, f HostFunc) Value { return ObjectValue(NewHostFunc(name, f)) }

// Array methods.

func arrayMethod(o *Object, name string) (Value, bool) {
	switch name {
	case "push":
		return hostFn(name, func(c Call) (Value, error) {
			o.Append(c.Args...)
			return Number(float64(len(o.elems))), nil
		}), true
	case "pop":
		return hostFn(name, func(c Call) (Value, error) {
			if len(o.elems) == 0 {
				return Undefined(), nil
			}
			v := o.elems[len(o.elems)-1]
			o.elems = o.elems[:len(o.elems)-1]
			return v, nil
		}), true
	case "shift":
		return hostFn(name, func(c Call) (Value, error) {
			if len(o.elems) == 0 {
				return Undefined(), nil
			}
			v := o.elems[0]
			o.elems = o.elems[1:]
			return v, nil
		}), true
	case "indexOf":
		return hostFn(name, func(c Call) (Value, error) {
			for i, e := range o.elems {
				if looseEquals(e, c.Arg(0), true) {
					return Number(float64(i)), nil
				}
			}
			return Number(-1), nil
		}), true
	case "includes":
		return hostFn(name, func(c Call) (Value, error) {
			for _, e := range o.elems {
				if looseEquals(e, c.Arg(0), true) {
					return Bool(true), nil
				}
			}
			return Bool(false), nil
		}), true
	case "join":
		return hostFn(name, func(c Call) (Value, error) {
			sep := ","
			if !c.Arg(0).IsUndefined() {
				sep = c.Arg(0).StringValue()
			}
			parts := make([]string, len(o.elems))
			for i, e := range o.elems {
				if !e.IsNullish() {
					parts[i] = e.StringValue()
				}
			}
			return String(strings.Join(parts, sep)), nil
		}), true
	case "slice":
		return hostFn(name, func(c Call) (Value, error) {
			start, end := sliceBounds(len(o.elems), c.Arg(0), c.Arg(1), true)
			return ObjectValue(NewArray(o.elems[start:end]...)), nil
		}), true
	case "concat":
		return hostFn(name, func(c Call) (Value, error) {
			out := NewArray(o.elems...)
			for _, a := range c.Args {
				if ao := a.Object(); ao != nil && ao.IsArray() {
					out.Append(ao.elems...)
				} else {
					out.Append(a)
				}
			}
			return ObjectValue(out), nil
		}), true
	case "forEach":
		return hostFn(name, func(c Call) (Value, error) {
			for i, e := range o.elems {
				if _, err := c.VM.invoke(c.Arg(0), Undefined(), []Value{e, Number(float64(i))}, 0); err != nil {
					return Undefined(), err
				}
			}
			return Undefined(), nil
		}), true
	case "map":
		return hostFn(name, func(c Call) (Value, error) {
			out := NewArray()
			for i, e := range o.elems {
				v, err := c.VM.invoke(c.Arg(0), Undefined(), []Value{e, Number(float64(i))}, 0)
				if err != nil {
					return Undefined(), err
				}
				out.Append(v)
			}
			return ObjectValue(out), nil
		}), true
	case "filter":
		return hostFn(name, func(c Call) (Value, error) {
			out := NewArray()
			for i, e := range o.elems {
				v, err := c.VM.invoke(c.Arg(0), Undefined(), []Value{e, Number(float64(i))}, 0)
				if err != nil {
					return Undefined(), err
				}
				if v.Truthy() {
					out.Append(e)
				}
			}
			return ObjectValue(out), nil
		}), true
	case "reduce":
		return hostFn(name, func(c Call) (Value, error) {
			acc := c.Arg(1)
			start := 0
			if acc.IsUndefined() && len(o.elems) > 0 {
				acc = o.elems[0]
				start = 1
			}
			for i := start; i < len(o.elems); i++ {
				v, err := c.VM.invoke(c.Arg(0), Undefined(), []Value{acc, o.elems[i], Number(float64(i))}, 0)
				if err != nil {
					return Undefined(), err
				}
				acc = v
			}
			return acc, nil
		}), true
	case "sort":
		return hostFn(name, func(c Call) (Value, error) {
			cmp := c.Arg(0)
			var sortErr error
			sort.SliceStable(o.elems, func(i, j int) bool {
				if sortErr != nil {
					return false
				}
				if cmp.IsUndefined() {
					return o.elems[i].StringValue() < o.elems[j].StringValue()
				}
				v, err := c.VM.invoke(cmp, Undefined(), []Value{o.elems[i], o.elems[j]}, 0)
				if err != nil {
					sortErr = err
					return false
				}
				return v.NumberValue() < 0
			})
			if sortErr != nil {
				return Undefined(), sortErr
			}
			return ObjectValue(o), nil
		}), true
	default:
		return Undefined(), false
	}
}

// objectMethod provides the few Object.prototype members scripts use.
func objectMethod(o *Object, name string) (Value, bool) {
	switch name {
	case "hasOwnProperty":
		return hostFn(name, func(c Call) (Value, error) {
			return Bool(o.Has(c.Arg(0).StringValue())), nil
		}), true
	case "toString":
		return hostFn(name, func(c Call) (Value, error) {
			return String(ObjectValue(o).StringValue()), nil
		}), true
	case "call":
		if o.IsCallable() {
			return hostFn(name, func(c Call) (Value, error) {
				var rest []Value
				if len(c.Args) > 1 {
					rest = c.Args[1:]
				}
				return c.VM.invoke(ObjectValue(o), c.Arg(0), rest, 0)
			}), true
		}
	case "apply":
		if o.IsCallable() {
			return hostFn(name, func(c Call) (Value, error) {
				var rest []Value
				if arr := c.Arg(1).Object(); arr != nil && arr.IsArray() {
					rest = arr.Elems()
				}
				return c.VM.invoke(ObjectValue(o), c.Arg(0), rest, 0)
			}), true
		}
	}
	return Undefined(), false
}

// JSON support.

func jsonStringify(v Value) string {
	var sb strings.Builder
	writeJSON(&sb, v, 0)
	return sb.String()
}

func writeJSON(sb *strings.Builder, v Value, depth int) {
	if depth > 32 {
		sb.WriteString("null")
		return
	}
	switch v.Kind() {
	case KindUndefined, KindNull:
		sb.WriteString("null")
	case KindBool, KindNumber:
		sb.WriteString(v.StringValue())
	case KindString:
		quoteJSON(sb, v.StringValue())
	case KindObject:
		o := v.Object()
		if o.IsCallable() {
			sb.WriteString("null")
			return
		}
		if o.IsArray() {
			sb.WriteByte('[')
			for i, e := range o.Elems() {
				if i > 0 {
					sb.WriteByte(',')
				}
				writeJSON(sb, e, depth+1)
			}
			sb.WriteByte(']')
			return
		}
		sb.WriteByte('{')
		for i, k := range o.Keys() {
			if i > 0 {
				sb.WriteByte(',')
			}
			quoteJSON(sb, k)
			sb.WriteByte(':')
			writeJSON(sb, o.Get(k), depth+1)
		}
		sb.WriteByte('}')
	}
}

// quoteJSON writes a JSON string literal: raw UTF-8 with only the
// mandatory escapes (quotes, backslash, control characters).
func quoteJSON(sb *strings.Builder, s string) {
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			sb.WriteString(`\"`)
		case c == '\\':
			sb.WriteString(`\\`)
		case c == '\n':
			sb.WriteString(`\n`)
		case c == '\t':
			sb.WriteString(`\t`)
		case c == '\r':
			sb.WriteString(`\r`)
		case c < 0x20:
			fmt.Fprintf(sb, `\u%04x`, c)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
}

func jsonParse(s string) (Value, error) {
	p := &jsonParser{src: s}
	v, err := p.value()
	if err != nil {
		return Undefined(), err
	}
	p.ws()
	if p.pos != len(p.src) {
		return Undefined(), fmt.Errorf("trailing data at %d", p.pos)
	}
	return v, nil
}

type jsonParser struct {
	src string
	pos int
}

func (p *jsonParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *jsonParser) value() (Value, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return Undefined(), fmt.Errorf("unexpected end")
	}
	switch c := p.src[p.pos]; {
	case c == '{':
		p.pos++
		o := NewObject()
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == '}' {
			p.pos++
			return ObjectValue(o), nil
		}
		for {
			p.ws()
			k, err := p.str()
			if err != nil {
				return Undefined(), err
			}
			p.ws()
			if p.pos >= len(p.src) || p.src[p.pos] != ':' {
				return Undefined(), fmt.Errorf("expected ':' at %d", p.pos)
			}
			p.pos++
			v, err := p.value()
			if err != nil {
				return Undefined(), err
			}
			o.Set(k, v)
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.pos < len(p.src) && p.src[p.pos] == '}' {
				p.pos++
				return ObjectValue(o), nil
			}
			return Undefined(), fmt.Errorf("expected ',' or '}' at %d", p.pos)
		}
	case c == '[':
		p.pos++
		arr := NewArray()
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == ']' {
			p.pos++
			return ObjectValue(arr), nil
		}
		for {
			v, err := p.value()
			if err != nil {
				return Undefined(), err
			}
			arr.Append(v)
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.pos < len(p.src) && p.src[p.pos] == ']' {
				p.pos++
				return ObjectValue(arr), nil
			}
			return Undefined(), fmt.Errorf("expected ',' or ']' at %d", p.pos)
		}
	case c == '"':
		s, err := p.str()
		return String(s), err
	case strings.HasPrefix(p.src[p.pos:], "true"):
		p.pos += 4
		return Bool(true), nil
	case strings.HasPrefix(p.src[p.pos:], "false"):
		p.pos += 5
		return Bool(false), nil
	case strings.HasPrefix(p.src[p.pos:], "null"):
		p.pos += 4
		return Null(), nil
	default:
		start := p.pos
		if c == '-' {
			p.pos++
		}
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' ||
			p.src[p.pos] == '.' || p.src[p.pos] == 'e' || p.src[p.pos] == 'E' ||
			p.src[p.pos] == '+' || p.src[p.pos] == '-') {
			p.pos++
		}
		n, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return Undefined(), fmt.Errorf("bad number at %d", start)
		}
		return Number(n), nil
	}
}

func (p *jsonParser) str() (string, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '"' {
		return "", fmt.Errorf("expected string at %d", p.pos)
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '"':
			p.pos++
			return sb.String(), nil
		case '\\':
			p.pos++
			if p.pos >= len(p.src) {
				return "", fmt.Errorf("truncated escape")
			}
			switch p.src[p.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case 'u':
				if p.pos+4 >= len(p.src) {
					return "", fmt.Errorf("truncated unicode escape")
				}
				n, err := strconv.ParseUint(p.src[p.pos+1:p.pos+5], 16, 32)
				if err != nil {
					return "", err
				}
				sb.WriteRune(rune(n))
				p.pos += 4
			default:
				sb.WriteByte(p.src[p.pos])
			}
			p.pos++
		default:
			sb.WriteByte(c)
			p.pos++
		}
	}
	return "", fmt.Errorf("unterminated string")
}
