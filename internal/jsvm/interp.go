package jsvm

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrStepBudget reports that a script exceeded its step budget. Callers
// check it with errors.Is to distinguish a runaway injected script from a
// genuine script error.
var ErrStepBudget = errors.New("step budget exhausted")

// VM executes parsed programs against a global object. A step budget
// bounds runaway scripts (injected code is untrusted by definition).
//
// A VM is single-goroutine: use one VM per worker. Programs (see Compile)
// are immutable and may be shared between VMs running concurrently.
type VM struct {
	Global *Object
	global *scope
	// MaxSteps bounds evaluated AST nodes per Run; 0 means the default.
	// The bytecode engine charges per instruction against
	// MaxSteps*bcStepFactor, keeping budgets calibrated for the walker
	// valid.
	MaxSteps int
	steps    int

	// Engine selects the execution strategy for RunProgram; the zero value
	// means the package default (bytecode, unless SetDefaultEngine changed
	// it). Programs whose bytecode compilation failed always fall back to
	// the tree walker.
	Engine Engine

	// scopeFree recycles call/block scopes that no closure captured;
	// argFree recycles argument slabs for script-function calls. Both cut
	// the dominant allocations on the injected-script hot path.
	scopeFree []*scope
	argFree   [][]Value

	// Bytecode engine state: the shared value stack, the last-expression
	// register, per-program inline caches and their hit counters.
	stack      []Value
	sp         int
	lastVal    Value
	globalGen  uint32 // bumped on global-scope declare; validates global ICs
	icTab      map[*funcProto][]icEntry
	lastProto  *funcProto
	lastICs    []icEntry
	icHits     uint64
	icMisses   uint64
	icFlushedH uint64
	icFlushedM uint64
}

const defaultMaxSteps = 2_000_000

// New creates a VM with the standard built-ins installed on its global
// object (console is left to embedders).
func New() *VM {
	g := NewObject()
	vm := &VM{Global: g}
	// The global scope is permanently "escaped": it is never recycled, and
	// marking it stops the escape walk in makeFunction.
	vm.global = &scope{vars: map[string]*Value{}, vm: vm, escaped: true}
	installBuiltins(vm)
	return vm
}

// scope is a lexical environment.
type scope struct {
	vars   map[string]*Value
	parent *scope
	vm     *VM
	// escaped is set when a closure captures this scope (or an ancestor
	// walk marked it); escaped scopes are never returned to the pool.
	escaped bool
}

func (s *scope) child() *scope {
	vm := s.vm
	if n := len(vm.scopeFree); n > 0 {
		sc := vm.scopeFree[n-1]
		vm.scopeFree = vm.scopeFree[:n-1]
		sc.parent = s
		return sc
	}
	return &scope{vars: make(map[string]*Value, 4), parent: s, vm: s.vm}
}

// release returns a scope to the pool unless a closure captured it. Only
// call when every reference into the scope (lookup slots) is dead.
func (s *scope) release() {
	if s.escaped {
		return
	}
	clear(s.vars)
	s.parent = nil
	s.vm.scopeFree = append(s.vm.scopeFree, s)
}

// takeArgs returns a reusable argument slab for a script-function call.
// Script calls copy every argument into the callee scope (and, when used,
// into a fresh `arguments` array), so the slab can be reclaimed as soon as
// the call returns. Host calls keep allocating: a host function may retain
// its Args slice.
func (vm *VM) takeArgs(n int) []Value {
	if k := len(vm.argFree); k > 0 {
		s := vm.argFree[k-1]
		if cap(s) >= n {
			vm.argFree = vm.argFree[:k-1]
			return s[:n]
		}
	}
	if n < 8 {
		return make([]Value, n, 8)
	}
	return make([]Value, n)
}

func (vm *VM) putArgs(s []Value) {
	if cap(s) == 0 {
		return
	}
	clear(s[:cap(s)])
	vm.argFree = append(vm.argFree, s[:0])
}

func (s *scope) lookup(name string) (*Value, bool) {
	for e := s; e != nil; e = e.parent {
		if v, ok := e.vars[name]; ok {
			return v, true
		}
	}
	// Globals live on the global object so hosts can pre-seed them.
	if s.vm.Global.Has(name) {
		v := s.vm.Global.Get(name)
		return &v, true
	}
	return nil, false
}

func (s *scope) declare(name string, v Value) {
	val := v
	s.vars[name] = &val
	if s.vm != nil && s == s.vm.global {
		s.vm.globalGen++ // invalidate global-lookup inline caches
	}
}

// control-flow signals.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

type completion struct {
	ctrl ctrl
	val  Value
}

// Run parses and executes src in the global scope, returning the value of
// the last expression statement (mirroring evaluateJavascript semantics).
// Callers executing the same source repeatedly should Compile (or
// CompileCached) once and use RunProgram.
func (vm *VM) Run(src string) (Value, error) {
	prog, err := Compile(src)
	if err != nil {
		return Undefined(), err
	}
	return vm.RunProgram(prog)
}

// RunProgram executes a compiled program in the global scope. The program
// is not mutated and may be shared with other VMs running concurrently.
func (vm *VM) RunProgram(p *Program) (Value, error) {
	eng := vm.Engine
	if eng == EngineDefault {
		eng = DefaultEngine()
	}
	if eng == EngineBytecode && p.main != nil {
		executeCounter.Load().Inc()
		return vm.runBytecode(p)
	}
	executeCounter.Load().Inc()
	vm.steps = 0
	// Hoisted function declarations (split out at compile time).
	for i := range p.decls {
		fd := &p.decls[i]
		vm.global.declare(fd.fn.name, vm.makeFunction(fd.fn, vm.global))
	}
	var last Value
	for _, st := range p.stmts {
		comp, v, err := vm.execStmt(st, vm.global, Undefined())
		if err != nil {
			return Undefined(), err
		}
		if comp.ctrl == ctrlReturn {
			return comp.val, nil
		}
		last = v
	}
	return last, nil
}

// CallFunction invokes a callable value from Go.
func (vm *VM) CallFunction(fn Value, this Value, args ...Value) (Value, error) {
	return vm.invoke(fn, this, args, 0)
}

func (vm *VM) step(ln int) error {
	vm.steps++
	limit := vm.MaxSteps
	if limit == 0 {
		limit = defaultMaxSteps
	}
	if vm.steps > limit {
		stepBudgetCounter.Load().Inc()
		return fmt.Errorf("jsvm: %w (line %d)", ErrStepBudget, ln)
	}
	return nil
}

func (vm *VM) makeFunction(fn *funcLit, env *scope) Value {
	// The closure keeps its defining scope chain alive: none of those
	// scopes may be recycled. The walk stops at the first already-escaped
	// scope because marking always covers the full chain above it.
	for e := env; e != nil && !e.escaped; e = e.parent {
		e.escaped = true
	}
	return ObjectValue(&Object{
		props: map[string]Value{},
		fn:    fn,
		env:   env,
		call:  true,
		name:  fn.name,
	})
}

// execStmt executes one statement. The second return carries the value of
// expression statements (for REPL-style Run results).
func (vm *VM) execStmt(st node, env *scope, this Value) (completion, Value, error) {
	if err := vm.step(st.line()); err != nil {
		return completion{}, Undefined(), err
	}
	switch s := st.(type) {
	case blockStmt:
		inner := env.child()
		defer inner.release()
		for _, sub := range s.body {
			if fd, ok := sub.(funcDecl); ok {
				inner.declare(fd.fn.name, vm.makeFunction(fd.fn, inner))
			}
		}
		for _, sub := range s.body {
			if _, ok := sub.(funcDecl); ok {
				continue
			}
			comp, _, err := vm.execStmt(sub, inner, this)
			if err != nil || comp.ctrl != ctrlNone {
				return comp, Undefined(), err
			}
		}
		return completion{}, Undefined(), nil
	case varDecl:
		for i, name := range s.names {
			var v Value
			if s.values[i] != nil {
				var err error
				v, err = vm.eval(s.values[i], env, this)
				if err != nil {
					return completion{}, Undefined(), err
				}
			}
			env.declare(name, v)
		}
		return completion{}, Undefined(), nil
	case exprStmt:
		v, err := vm.eval(s.expr, env, this)
		return completion{}, v, err
	case ifStmt:
		cond, err := vm.eval(s.cond, env, this)
		if err != nil {
			return completion{}, Undefined(), err
		}
		if cond.Truthy() {
			comp, _, err := vm.execStmt(s.then, env, this)
			return comp, Undefined(), err
		}
		if s.alt != nil {
			comp, _, err := vm.execStmt(s.alt, env, this)
			return comp, Undefined(), err
		}
		return completion{}, Undefined(), nil
	case forStmt:
		inner := env.child()
		defer inner.release()
		if s.init != nil {
			if comp, _, err := vm.execStmt(s.init, inner, this); err != nil || comp.ctrl != ctrlNone {
				return comp, Undefined(), err
			}
		}
		for {
			if s.cond != nil {
				c, err := vm.eval(s.cond, inner, this)
				if err != nil {
					return completion{}, Undefined(), err
				}
				if !c.Truthy() {
					break
				}
			}
			comp, _, err := vm.execStmt(s.body, inner, this)
			if err != nil {
				return completion{}, Undefined(), err
			}
			if comp.ctrl == ctrlBreak {
				break
			}
			if comp.ctrl == ctrlReturn {
				return comp, Undefined(), nil
			}
			if s.post != nil {
				if _, err := vm.eval(s.post, inner, this); err != nil {
					return completion{}, Undefined(), err
				}
			}
			if err := vm.step(s.line()); err != nil {
				return completion{}, Undefined(), err
			}
		}
		return completion{}, Undefined(), nil
	case forInStmt:
		obj, err := vm.eval(s.obj, env, this)
		if err != nil {
			return completion{}, Undefined(), err
		}
		inner := env.child()
		defer inner.release()
		inner.declare(s.varName, Undefined())
		slot, _ := inner.lookup(s.varName)
		var items []Value
		if o := obj.Object(); o != nil {
			if s.of {
				items = append(items, o.Elems()...)
			} else if o.IsArray() {
				for i := range o.Elems() {
					items = append(items, String(strconv.Itoa(i)))
				}
			} else {
				for _, k := range o.Keys() {
					items = append(items, String(k))
				}
			}
		} else if obj.Kind() == KindString && s.of {
			for _, r := range obj.StringValue() {
				items = append(items, String(string(r)))
			}
		}
		for _, it := range items {
			*slot = it
			comp, _, err := vm.execStmt(s.body, inner, this)
			if err != nil {
				return completion{}, Undefined(), err
			}
			if comp.ctrl == ctrlBreak {
				break
			}
			if comp.ctrl == ctrlReturn {
				return comp, Undefined(), nil
			}
		}
		return completion{}, Undefined(), nil
	case whileStmt:
		for {
			c, err := vm.eval(s.cond, env, this)
			if err != nil {
				return completion{}, Undefined(), err
			}
			if !c.Truthy() {
				break
			}
			comp, _, err := vm.execStmt(s.body, env, this)
			if err != nil {
				return completion{}, Undefined(), err
			}
			if comp.ctrl == ctrlBreak {
				break
			}
			if comp.ctrl == ctrlReturn {
				return comp, Undefined(), nil
			}
			if err := vm.step(s.line()); err != nil {
				return completion{}, Undefined(), err
			}
		}
		return completion{}, Undefined(), nil
	case returnStmt:
		var v Value
		if s.value != nil {
			var err error
			v, err = vm.eval(s.value, env, this)
			if err != nil {
				return completion{}, Undefined(), err
			}
		}
		return completion{ctrl: ctrlReturn, val: v}, Undefined(), nil
	case breakStmt:
		return completion{ctrl: ctrlBreak}, Undefined(), nil
	case continueStmt:
		return completion{ctrl: ctrlContinue}, Undefined(), nil
	case throwStmt:
		v, err := vm.eval(s.value, env, this)
		if err != nil {
			return completion{}, Undefined(), err
		}
		return completion{}, Undefined(), &Error{Value: v, Where: fmt.Sprintf("line %d", s.line())}
	case tryStmt:
		comp, _, err := vm.execStmt(s.body, env, this)
		if err != nil {
			if jsErr, ok := err.(*Error); ok && s.catchBody != nil {
				inner := env.child()
				if s.catchVar != "" {
					inner.declare(s.catchVar, jsErr.Value)
				}
				comp, _, err = vm.execStmt(s.catchBody, inner, this)
				inner.release()
			}
		}
		if s.finally != nil {
			fcomp, _, ferr := vm.execStmt(s.finally, env, this)
			if ferr != nil {
				return completion{}, Undefined(), ferr
			}
			if fcomp.ctrl != ctrlNone {
				return fcomp, Undefined(), nil
			}
		}
		return comp, Undefined(), err
	case funcDecl:
		env.declare(s.fn.name, vm.makeFunction(s.fn, env))
		return completion{}, Undefined(), nil
	default:
		return completion{}, Undefined(), fmt.Errorf("jsvm: line %d: unknown statement %T", st.line(), st)
	}
}

func (vm *VM) eval(e node, env *scope, this Value) (Value, error) {
	if err := vm.step(e.line()); err != nil {
		return Undefined(), err
	}
	switch x := e.(type) {
	case numberLit:
		return Number(x.val), nil
	case stringLit:
		return String(x.val), nil
	case boolLit:
		return Bool(x.val), nil
	case nullLit:
		return Null(), nil
	case undefinedLit:
		return Undefined(), nil
	case thisExpr:
		return this, nil
	case identExpr:
		if v, ok := env.lookup(x.name); ok {
			return *v, nil
		}
		return Undefined(), throwError("%s is not defined", x.name)
	case arrayLit:
		arr := NewArray()
		for _, el := range x.elems {
			v, err := vm.eval(el, env, this)
			if err != nil {
				return Undefined(), err
			}
			arr.Append(v)
		}
		return ObjectValue(arr), nil
	case objectLit:
		o := NewObject()
		for _, p := range x.props {
			v, err := vm.eval(p.val, env, this)
			if err != nil {
				return Undefined(), err
			}
			o.Set(p.key, v)
		}
		return ObjectValue(o), nil
	case funcLit:
		return vm.makeFunction(&x, env), nil
	case memberExpr:
		obj, err := vm.eval(x.obj, env, this)
		if err != nil {
			return Undefined(), err
		}
		return vm.getMember(obj, x, env, this)
	case callExpr:
		return vm.evalCall(x, env, this)
	case newExpr:
		callee, err := vm.eval(x.callee, env, this)
		if err != nil {
			return Undefined(), err
		}
		args, err := vm.evalArgs(x.args, env, this)
		if err != nil {
			return Undefined(), err
		}
		o := callee.Object()
		if o == nil || !o.IsCallable() {
			return Undefined(), throwError("not a constructor")
		}
		inst := NewObject()
		ret, err := vm.invoke(callee, ObjectValue(inst), args, x.line())
		if err != nil {
			return Undefined(), err
		}
		if ret.Object() != nil {
			return ret, nil
		}
		return ObjectValue(inst), nil
	case unaryExpr:
		if x.op == "typeof" {
			// typeof tolerates undefined identifiers.
			if id, ok := x.expr.(identExpr); ok {
				if v, found := env.lookup(id.name); found {
					return String(v.TypeOf()), nil
				}
				return String("undefined"), nil
			}
		}
		v, err := vm.eval(x.expr, env, this)
		if err != nil {
			return Undefined(), err
		}
		switch x.op {
		case "!":
			return Bool(!v.Truthy()), nil
		case "-":
			return Number(-v.NumberValue()), nil
		case "+":
			return Number(v.NumberValue()), nil
		case "~":
			return Number(float64(^toInt32(v.NumberValue()))), nil
		case "typeof":
			return String(v.TypeOf()), nil
		case "void":
			return Undefined(), nil
		case "delete":
			if m, ok := x.expr.(memberExpr); ok {
				obj, err := vm.eval(m.obj, env, this)
				if err != nil {
					return Undefined(), err
				}
				if o := obj.Object(); o != nil && m.prop != "" {
					o.Delete(m.prop)
				}
			}
			return Bool(true), nil
		}
		return Undefined(), throwError("unknown unary %s", x.op)
	case updateExpr:
		old, err := vm.eval(x.target, env, this)
		if err != nil {
			return Undefined(), err
		}
		delta := 1.0
		if x.op == "--" {
			delta = -1
		}
		nv := Number(old.NumberValue() + delta)
		if err := vm.assignTo(x.target, nv, env, this); err != nil {
			return Undefined(), err
		}
		if x.prefix {
			return nv, nil
		}
		return Number(old.NumberValue()), nil
	case binaryExpr:
		l, err := vm.eval(x.left, env, this)
		if err != nil {
			return Undefined(), err
		}
		r, err := vm.eval(x.right, env, this)
		if err != nil {
			return Undefined(), err
		}
		return binaryOp(x.op, l, r)
	case logicalExpr:
		l, err := vm.eval(x.left, env, this)
		if err != nil {
			return Undefined(), err
		}
		switch x.op {
		case "&&":
			if !l.Truthy() {
				return l, nil
			}
		case "||":
			if l.Truthy() {
				return l, nil
			}
		case "??":
			if !l.IsNullish() {
				return l, nil
			}
		}
		return vm.eval(x.right, env, this)
	case condExpr:
		c, err := vm.eval(x.cond, env, this)
		if err != nil {
			return Undefined(), err
		}
		if c.Truthy() {
			return vm.eval(x.then, env, this)
		}
		return vm.eval(x.alt, env, this)
	case assignExpr:
		var v Value
		var err error
		if x.op == "=" {
			v, err = vm.eval(x.value, env, this)
		} else {
			var old, rhs Value
			old, err = vm.eval(x.target, env, this)
			if err != nil {
				return Undefined(), err
			}
			rhs, err = vm.eval(x.value, env, this)
			if err != nil {
				return Undefined(), err
			}
			v, err = binaryOp(strings.TrimSuffix(x.op, "="), old, rhs)
		}
		if err != nil {
			return Undefined(), err
		}
		if err := vm.assignTo(x.target, v, env, this); err != nil {
			return Undefined(), err
		}
		return v, nil
	case seqExpr:
		var last Value
		for _, sub := range x.exprs {
			v, err := vm.eval(sub, env, this)
			if err != nil {
				return Undefined(), err
			}
			last = v
		}
		return last, nil
	default:
		return Undefined(), fmt.Errorf("jsvm: line %d: unknown expression %T", e.line(), e)
	}
}

func (vm *VM) assignTo(target node, v Value, env *scope, this Value) error {
	switch t := target.(type) {
	case identExpr:
		if slot, ok := env.lookup(t.name); ok {
			*slot = v
			return nil
		}
		// Implicit global.
		vm.Global.Set(t.name, v)
		return nil
	case memberExpr:
		obj, err := vm.eval(t.obj, env, this)
		if err != nil {
			return err
		}
		o := obj.Object()
		if o == nil {
			return throwError("cannot set property of %s", obj.TypeOf())
		}
		if t.computed != nil {
			idx, err := vm.eval(t.computed, env, this)
			if err != nil {
				return err
			}
			if o.IsArray() && idx.Kind() == KindNumber {
				o.SetIndex(int(idx.NumberValue()), v)
				return nil
			}
			o.Set(idx.StringValue(), v)
			return nil
		}
		o.Set(t.prop, v)
		return nil
	default:
		return throwError("invalid assignment target")
	}
}

func (vm *VM) evalArgs(args []node, env *scope, this Value) ([]Value, error) {
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := vm.eval(a, env, this)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (vm *VM) evalCall(x callExpr, env *scope, this Value) (Value, error) {
	// Method calls bind `this` to the receiver.
	if m, ok := x.callee.(memberExpr); ok {
		recv, err := vm.eval(m.obj, env, this)
		if err != nil {
			return Undefined(), err
		}
		fn, err := vm.getMember(recv, m, env, this)
		if err != nil {
			return Undefined(), err
		}
		return vm.callWith(fn, recv, x, env, this)
	}
	fn, err := vm.eval(x.callee, env, this)
	if err != nil {
		return Undefined(), err
	}
	return vm.callWith(fn, Undefined(), x, env, this)
}

// callWith evaluates the call's arguments and invokes fn. Script-function
// calls draw their argument slab from the VM pool: invoke copies every
// argument out before running the body, so the slab is reclaimed on
// return. Host functions get a freshly allocated slice (they may retain
// it).
func (vm *VM) callWith(fn, recv Value, x callExpr, env *scope, this Value) (Value, error) {
	script := false
	if o := fn.Object(); o != nil && o.IsCallable() && o.host == nil {
		script = true
	}
	var args []Value
	var err error
	if script {
		args = vm.takeArgs(len(x.args))
		for i, a := range x.args {
			if args[i], err = vm.eval(a, env, this); err != nil {
				vm.putArgs(args)
				return Undefined(), err
			}
		}
	} else if args, err = vm.evalArgs(x.args, env, this); err != nil {
		return Undefined(), err
	}
	ret, err := vm.invoke(fn, recv, args, x.line())
	if script {
		vm.putArgs(args)
	}
	return ret, err
}

func (vm *VM) invoke(fn Value, this Value, args []Value, ln int) (Value, error) {
	o := fn.Object()
	if o == nil || !o.IsCallable() {
		return Undefined(), throwError("line %d: %s is not a function", ln, fn.StringValue())
	}
	if o.host != nil {
		return o.host(Call{VM: vm, This: this, Args: args})
	}
	if o.proto != nil {
		// Bytecode closure invoked from Go or from walker-evaluated code.
		return vm.callClosure(o, this, args)
	}
	env := o.env.child()
	defer env.release()
	for i, p := range o.fn.params {
		if i < len(args) {
			env.declare(p, args[i])
		} else {
			env.declare(p, Undefined())
		}
	}
	if o.fn.usesArgs {
		// Only materialise `arguments` for bodies that can mention it
		// (detected at parse time) — the common injected script never does.
		env.declare("arguments", ObjectValue(NewArray(args...)))
	}
	// Hoist inner function declarations.
	for _, st := range o.fn.body {
		if fd, ok := st.(funcDecl); ok {
			env.declare(fd.fn.name, vm.makeFunction(fd.fn, env))
		}
	}
	for _, st := range o.fn.body {
		if _, ok := st.(funcDecl); ok {
			continue
		}
		comp, _, err := vm.execStmt(st, env, this)
		if err != nil {
			return Undefined(), err
		}
		if comp.ctrl == ctrlReturn {
			return comp.val, nil
		}
	}
	return Undefined(), nil
}

// getMember reads obj.prop or obj[idx], including string/array built-in
// members.
func (vm *VM) getMember(obj Value, m memberExpr, env *scope, this Value) (Value, error) {
	name := m.prop
	if m.computed != nil {
		idx, err := vm.eval(m.computed, env, this)
		if err != nil {
			return Undefined(), err
		}
		if o := obj.Object(); o != nil && o.IsArray() && idx.Kind() == KindNumber {
			return o.Index(int(idx.NumberValue())), nil
		}
		name = idx.StringValue()
	}
	return vm.getProp(obj, name, m.line())
}

func (vm *VM) getProp(obj Value, name string, ln int) (Value, error) {
	switch obj.Kind() {
	case KindObject:
		o := obj.Object()
		if o.IsArray() {
			if v, ok := arrayMethod(o, name); ok {
				return v, nil
			}
		}
		if o.Has(name) {
			return o.Get(name), nil
		}
		if o.IsArray() && name == "length" {
			return Number(float64(len(o.elems))), nil
		}
		if fn, ok := objectMethod(o, name); ok {
			return fn, nil
		}
		return Undefined(), nil
	case KindString:
		return stringMember(obj.StringValue(), name)
	case KindNumber:
		if name == "toFixed" {
			n := obj.NumberValue()
			return ObjectValue(NewHostFunc("toFixed", func(c Call) (Value, error) {
				digits := int(c.Arg(0).NumberValue())
				return String(strconv.FormatFloat(n, 'f', digits, 64)), nil
			})), nil
		}
		if name == "toString" {
			n := obj.NumberValue()
			return ObjectValue(NewHostFunc("toString", func(c Call) (Value, error) {
				return String(formatNumber(n)), nil
			})), nil
		}
		return Undefined(), nil
	case KindUndefined, KindNull:
		return Undefined(), throwError("line %d: cannot read property %q of %s", ln, name, obj.StringValue())
	default:
		return Undefined(), nil
	}
}

func binaryOp(op string, l, r Value) (Value, error) {
	switch op {
	case "+":
		if l.Kind() == KindString || r.Kind() == KindString ||
			(l.Kind() == KindObject && !l.IsNullish()) || (r.Kind() == KindObject && !r.IsNullish()) {
			return String(l.StringValue() + r.StringValue()), nil
		}
		return Number(l.NumberValue() + r.NumberValue()), nil
	case "-":
		return Number(l.NumberValue() - r.NumberValue()), nil
	case "*":
		return Number(l.NumberValue() * r.NumberValue()), nil
	case "/":
		return Number(l.NumberValue() / r.NumberValue()), nil
	case "%":
		return Number(math.Mod(l.NumberValue(), r.NumberValue())), nil
	case "==", "===":
		return Bool(looseEquals(l, r, op == "===")), nil
	case "!=", "!==":
		return Bool(!looseEquals(l, r, op == "!==")), nil
	case "<", "<=", ">", ">=":
		if l.Kind() == KindString && r.Kind() == KindString {
			a, b := l.StringValue(), r.StringValue()
			switch op {
			case "<":
				return Bool(a < b), nil
			case "<=":
				return Bool(a <= b), nil
			case ">":
				return Bool(a > b), nil
			default:
				return Bool(a >= b), nil
			}
		}
		a, b := l.NumberValue(), r.NumberValue()
		switch op {
		case "<":
			return Bool(a < b), nil
		case "<=":
			return Bool(a <= b), nil
		case ">":
			return Bool(a > b), nil
		default:
			return Bool(a >= b), nil
		}
	case "&":
		return Number(float64(toInt32(l.NumberValue()) & toInt32(r.NumberValue()))), nil
	case "|":
		return Number(float64(toInt32(l.NumberValue()) | toInt32(r.NumberValue()))), nil
	case "^":
		return Number(float64(toInt32(l.NumberValue()) ^ toInt32(r.NumberValue()))), nil
	case "<<":
		return Number(float64(toInt32(l.NumberValue()) << (uint32(toInt32(r.NumberValue())) & 31))), nil
	case ">>":
		return Number(float64(toInt32(l.NumberValue()) >> (uint32(toInt32(r.NumberValue())) & 31))), nil
	case ">>>":
		return Number(float64(uint32(toInt32(l.NumberValue())) >> (uint32(toInt32(r.NumberValue())) & 31))), nil
	case "in":
		if o := r.Object(); o != nil {
			return Bool(o.Has(l.StringValue())), nil
		}
		return Bool(false), nil
	case "instanceof":
		return Bool(false), nil // prototypes are not modelled
	default:
		return Undefined(), throwError("unknown operator %q", op)
	}
}

func looseEquals(l, r Value, strict bool) bool {
	if l.Kind() == r.Kind() {
		switch l.Kind() {
		case KindUndefined, KindNull:
			return true
		case KindBool:
			return l.b == r.b
		case KindNumber:
			return l.n == r.n
		case KindString:
			return l.s == r.s
		case KindObject:
			return l.o == r.o
		}
	}
	if strict {
		return false
	}
	// Loose cross-kind cases.
	if l.IsNullish() && r.IsNullish() {
		return true
	}
	if l.IsNullish() || r.IsNullish() {
		return false
	}
	return l.NumberValue() == r.NumberValue()
}

func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(int64(f))
}
