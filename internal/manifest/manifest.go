// Package manifest models AndroidManifest.xml: the app's package identity,
// its components (activities, services, receivers, providers) and their
// intent filters. The pipeline uses it to find deep-link ("BROWSABLE")
// activities that host first-party content (§3.1.3 of the paper), and the
// device simulator uses it for intent resolution.
//
// The on-disk form inside an APK is plain XML (Android's binary-XML
// packing is an encoding detail the analyses never depend on), parsed and
// emitted with encoding/xml.
package manifest

import (
	"encoding/xml"
	"fmt"

	"repro/internal/android"
)

// ComponentKind distinguishes the four Android component types.
type ComponentKind string

// Component kinds.
const (
	KindActivity ComponentKind = "activity"
	KindService  ComponentKind = "service"
	KindReceiver ComponentKind = "receiver"
	KindProvider ComponentKind = "provider"
)

// DataSpec is the <data> element of an intent filter: the scheme/host the
// filter accepts.
type DataSpec struct {
	Scheme string `xml:"scheme,attr,omitempty"`
	Host   string `xml:"host,attr,omitempty"`
}

// IntentFilter is an <intent-filter> block.
type IntentFilter struct {
	Actions    []string   `xml:"action>name"`
	Categories []string   `xml:"category>name"`
	Data       []DataSpec `xml:"data"`
}

// HasAction reports whether the filter declares the action.
func (f *IntentFilter) HasAction(action string) bool {
	for _, a := range f.Actions {
		if a == action {
			return true
		}
	}
	return false
}

// HasCategory reports whether the filter declares the category.
func (f *IntentFilter) HasCategory(cat string) bool {
	for _, c := range f.Categories {
		if c == cat {
			return true
		}
	}
	return false
}

// AcceptsWebScheme reports whether any <data> element accepts http or https.
func (f *IntentFilter) AcceptsWebScheme() bool {
	for _, d := range f.Data {
		if d.Scheme == "http" || d.Scheme == "https" {
			return true
		}
	}
	return false
}

// Component is one app component declaration.
type Component struct {
	Kind     ComponentKind  `xml:"-"`
	Name     string         `xml:"name,attr"` // dotted class name
	Exported bool           `xml:"exported,attr"`
	Filters  []IntentFilter `xml:"intent-filter"`
}

// IsDeepLinkHandler reports whether the component is an exported activity
// with a BROWSABLE+VIEW filter accepting http(s) — i.e. a deep link to
// (first-party) app content, which the pipeline excludes from third-party
// WebView attribution (§3.1.3).
func (c *Component) IsDeepLinkHandler() bool {
	if c.Kind != KindActivity || !c.Exported {
		return false
	}
	for i := range c.Filters {
		f := &c.Filters[i]
		if f.HasAction(android.ActionView) &&
			f.HasCategory(android.CategoryBrowsable) &&
			f.AcceptsWebScheme() {
			return true
		}
	}
	return false
}

// Manifest is the parsed AndroidManifest.
type Manifest struct {
	Package     string
	VersionCode int
	VersionName string
	MinSDK      int
	TargetSDK   int
	Components  []Component
}

// Activities returns the activity components.
func (m *Manifest) Activities() []Component {
	return m.byKind(KindActivity)
}

// ComponentByName returns the component declared with the given class name,
// or nil.
func (m *Manifest) ComponentByName(name string) *Component {
	for i := range m.Components {
		if m.Components[i].Name == name {
			return &m.Components[i]
		}
	}
	return nil
}

// DeepLinkActivities returns the names of activities that handle web deep
// links (see Component.IsDeepLinkHandler).
func (m *Manifest) DeepLinkActivities() []string {
	var out []string
	for i := range m.Components {
		if m.Components[i].IsDeepLinkHandler() {
			out = append(out, m.Components[i].Name)
		}
	}
	return out
}

// LauncherActivity returns the name of the MAIN/LAUNCHER activity, or "".
func (m *Manifest) LauncherActivity() string {
	for i := range m.Components {
		c := &m.Components[i]
		if c.Kind != KindActivity {
			continue
		}
		for j := range c.Filters {
			f := &c.Filters[j]
			if f.HasAction(android.ActionMain) && f.HasCategory(android.CategoryLauncher) {
				return c.Name
			}
		}
	}
	return ""
}

func (m *Manifest) byKind(k ComponentKind) []Component {
	var out []Component
	for _, c := range m.Components {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks that the manifest names a package and that every
// component has a class name.
func (m *Manifest) Validate() error {
	if m.Package == "" {
		return fmt.Errorf("manifest: empty package")
	}
	for i, c := range m.Components {
		if c.Name == "" {
			return fmt.Errorf("manifest: component %d (%s) has empty name", i, c.Kind)
		}
	}
	return nil
}

// xmlManifest is the wire representation. Components serialise under their
// kind-specific element names inside <application>, as on Android.
type xmlManifest struct {
	XMLName     xml.Name       `xml:"manifest"`
	Package     string         `xml:"package,attr"`
	VersionCode int            `xml:"versionCode,attr"`
	VersionName string         `xml:"versionName,attr,omitempty"`
	UsesSDK     *xmlUsesSDK    `xml:"uses-sdk"`
	Application xmlApplication `xml:"application"`
}

type xmlUsesSDK struct {
	Min    int `xml:"minSdkVersion,attr,omitempty"`
	Target int `xml:"targetSdkVersion,attr,omitempty"`
}

type xmlApplication struct {
	Activities []Component `xml:"activity"`
	Services   []Component `xml:"service"`
	Receivers  []Component `xml:"receiver"`
	Providers  []Component `xml:"provider"`
}

// Encode serialises the manifest as XML.
func Encode(m *Manifest) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	x := xmlManifest{
		Package:     m.Package,
		VersionCode: m.VersionCode,
		VersionName: m.VersionName,
	}
	if m.MinSDK != 0 || m.TargetSDK != 0 {
		x.UsesSDK = &xmlUsesSDK{Min: m.MinSDK, Target: m.TargetSDK}
	}
	for _, c := range m.Components {
		switch c.Kind {
		case KindActivity:
			x.Application.Activities = append(x.Application.Activities, c)
		case KindService:
			x.Application.Services = append(x.Application.Services, c)
		case KindReceiver:
			x.Application.Receivers = append(x.Application.Receivers, c)
		case KindProvider:
			x.Application.Providers = append(x.Application.Providers, c)
		default:
			return nil, fmt.Errorf("manifest: unknown component kind %q", c.Kind)
		}
	}
	out, err := xml.MarshalIndent(&x, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Decode parses a manifest produced by Encode (or hand-written XML of the
// same shape).
func Decode(data []byte) (*Manifest, error) {
	var x xmlManifest
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	m := &Manifest{
		Package:     x.Package,
		VersionCode: x.VersionCode,
		VersionName: x.VersionName,
	}
	if x.UsesSDK != nil {
		m.MinSDK, m.TargetSDK = x.UsesSDK.Min, x.UsesSDK.Target
	}
	add := func(kind ComponentKind, cs []Component) {
		for _, c := range cs {
			c.Kind = kind
			m.Components = append(m.Components, c)
		}
	}
	add(KindActivity, x.Application.Activities)
	add(KindService, x.Application.Services)
	add(KindReceiver, x.Application.Receivers)
	add(KindProvider, x.Application.Providers)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
