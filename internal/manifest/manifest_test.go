package manifest

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/android"
)

func sample() *Manifest {
	return &Manifest{
		Package:     "com.example.app",
		VersionCode: 42,
		VersionName: "4.2.0",
		MinSDK:      21,
		TargetSDK:   33,
		Components: []Component{
			{
				Kind:     KindActivity,
				Name:     "com.example.app.MainActivity",
				Exported: true,
				Filters: []IntentFilter{{
					Actions:    []string{android.ActionMain},
					Categories: []string{android.CategoryLauncher},
				}},
			},
			{
				Kind:     KindActivity,
				Name:     "com.example.app.LinkActivity",
				Exported: true,
				Filters: []IntentFilter{{
					Actions:    []string{android.ActionView},
					Categories: []string{android.CategoryBrowsable, android.CategoryDefault},
					Data:       []DataSpec{{Scheme: "https", Host: "example.com"}},
				}},
			},
			{
				Kind: KindActivity,
				Name: "com.example.app.WebActivity",
			},
			{
				Kind: KindService,
				Name: "com.example.app.SyncService",
			},
			{
				Kind:     KindReceiver,
				Name:     "com.example.app.BootReceiver",
				Exported: true,
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestDeepLinkDetection(t *testing.T) {
	m := sample()
	got := m.DeepLinkActivities()
	want := []string{"com.example.app.LinkActivity"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DeepLinkActivities = %v, want %v", got, want)
	}
}

func TestDeepLinkRequiresExported(t *testing.T) {
	m := sample()
	m.Components[1].Exported = false
	if got := m.DeepLinkActivities(); got != nil {
		t.Errorf("non-exported activity classified as deep link: %v", got)
	}
}

func TestDeepLinkRequiresWebScheme(t *testing.T) {
	m := sample()
	m.Components[1].Filters[0].Data = []DataSpec{{Scheme: "myapp"}}
	if got := m.DeepLinkActivities(); got != nil {
		t.Errorf("custom-scheme activity classified as deep link: %v", got)
	}
}

func TestDeepLinkRequiresBrowsable(t *testing.T) {
	m := sample()
	m.Components[1].Filters[0].Categories = []string{android.CategoryDefault}
	if got := m.DeepLinkActivities(); got != nil {
		t.Errorf("non-BROWSABLE activity classified as deep link: %v", got)
	}
}

func TestLauncherActivity(t *testing.T) {
	m := sample()
	if got := m.LauncherActivity(); got != "com.example.app.MainActivity" {
		t.Errorf("LauncherActivity = %q", got)
	}
	m.Components[0].Filters = nil
	if got := m.LauncherActivity(); got != "" {
		t.Errorf("LauncherActivity without filter = %q, want empty", got)
	}
}

func TestComponentByName(t *testing.T) {
	m := sample()
	if c := m.ComponentByName("com.example.app.SyncService"); c == nil || c.Kind != KindService {
		t.Errorf("ComponentByName returned %+v", c)
	}
	if c := m.ComponentByName("nope"); c != nil {
		t.Errorf("ComponentByName(nope) = %+v, want nil", c)
	}
}

func TestValidateRejectsEmptyPackage(t *testing.T) {
	if err := (&Manifest{}).Validate(); err == nil {
		t.Error("Validate accepted empty package")
	}
}

func TestValidateRejectsUnnamedComponent(t *testing.T) {
	m := &Manifest{Package: "a", Components: []Component{{Kind: KindActivity}}}
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted unnamed component")
	}
}

func TestEncodeProducesXMLHeader(t *testing.T) {
	data, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<?xml") {
		t.Error("Encode output missing XML header")
	}
	if !strings.Contains(string(data), `package="com.example.app"`) {
		t.Error("Encode output missing package attribute")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not xml at all")); err == nil {
		t.Error("Decode accepted garbage")
	}
}

func TestActivitiesFilter(t *testing.T) {
	m := sample()
	if n := len(m.Activities()); n != 3 {
		t.Errorf("Activities() returned %d, want 3", n)
	}
}
