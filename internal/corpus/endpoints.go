package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/android"
	"repro/internal/dalvik"
)

// Endpoint ground truth. Each eligible app draws, from its own "urls"
// random stream (independent of the "static", "lint" and "obfuscate"
// streams so adding the URL-extraction study never perturbs any existing
// assignment), the set of network endpoints its first-party ApiClient
// class constructs. The APK builder turns each planted endpoint into real
// bytecode in one of four shapes of increasing difficulty; the extraction
// stage has to run its interprocedural dataflow to recover them all.

// endpointRate is the fraction of eligible apps whose first-party code
// builds java.net.URL endpoints directly (beyond whatever WebView / Custom
// Tabs URLs their planted usage code already carries).
const endpointRate = 0.45

// thirdPartyAPIHosts are backend hosts apps commonly talk to from
// first-party code (analytics uploads, graph APIs, push registration).
// Planted URLs alternate between these and the app's own api host, so the
// static↔dynamic agreement tables see both matching and static-only hosts.
var thirdPartyAPIHosts = []string{
	"api.segment.io",
	"graph.facebook.com",
	"events.appsflyer.com",
	"api.onesignal.com",
	"firebaselogging.googleapis.com",
	"cdn.branch.io",
}

// endpointVias orders the code shapes; the draw cycles so every shape
// appears corpus-wide at any scale.
var endpointVias = []string{"direct", "helper", "concat", "prefix"}

// assignEndpoints plants the app's URL ground truth. Broken APKs never
// parse and obfuscated apps hide their call surface behind reflection, so
// neither carries endpoints the extractor could be held to.
func assignEndpoints(s *Spec, seed int64) {
	if s.Broken || s.Obfuscated {
		return
	}
	rng := appRNG(seed, s.Package, "urls")
	if rng.Float64() >= endpointRate {
		return
	}
	n := 1 + rng.Intn(3)
	cls := s.Package + ".net.ApiClient"
	first := rng.Intn(len(endpointVias))
	for i := 0; i < n; i++ {
		via := endpointVias[(first+i)%len(endpointVias)]
		host := "api." + appHost(s.Package)
		if rng.Float64() < 0.5 {
			host = thirdPartyAPIHosts[rng.Intn(len(thirdPartyAPIHosts))]
		}
		s.Endpoints = append(s.Endpoints, plantEndpoint(cls, via, host, i, rng))
	}
}

// plantEndpoint fixes one endpoint's record. URLs are generated already in
// normalized form (lowercase, no default port), so the extractor's output
// must match the planted string byte for byte.
func plantEndpoint(cls, via, host string, i int, rng *rand.Rand) PlantedEndpoint {
	ep := PlantedEndpoint{
		Kind:   "full",
		Class:  cls,
		Method: fmt.Sprintf("open%d", i),
		API:    "URL.<init>",
		Via:    via,
	}
	switch via {
	case "direct":
		ep.URL = fmt.Sprintf("https://%s/v%d/config", host, 1+rng.Intn(3))
	case "helper":
		// The sink lives in the helper; the caller's constant grounds it
		// there, so the ground truth points at the helper method.
		ep.Method = fmt.Sprintf("fetch%d", i)
		ep.URL = fmt.Sprintf("https://%s/ingest/%d", host, rng.Intn(10))
	case "concat":
		ep.URL = fmt.Sprintf("https://%s/assets/", host) + fmt.Sprintf("bundle%d.js", i)
	case "prefix":
		// The tail is caller-supplied; only the constant prefix is
		// statically recoverable.
		ep.Kind = "prefix"
		ep.Method = fmt.Sprintf("track%d", i)
		ep.URL = fmt.Sprintf("https://%s/e/%d?id=", host, rng.Intn(10))
	}
	return ep
}

// buildEndpointClasses emits the first-party networking class carrying the
// planted endpoints. Every sink is a java.net.URL constructor reached from
// ApiClient.init (which MainActivity.onCreate invokes), so the endpoints
// sit behind real call-graph edges; none of the methods touch WebView APIs,
// leaving the usage analysis and the lint stage unaffected.
func buildEndpointClasses(b *dalvik.Builder, s *Spec) {
	if len(s.Endpoints) == 0 {
		return
	}
	cls := b.Class(s.Package+".net.ApiClient", android.ObjectClass, dalvik.AccPublic|dalvik.AccFinal).
		Source("ApiClient.java")
	acc := dalvik.AccPublic | dalvik.AccStatic
	var initBody []dalvik.Instruction
	for i, ep := range s.Endpoints {
		open := fmt.Sprintf("open%d", i)
		initBody = append(initBody, dalvik.InvokeStatic(s.Package+".net.ApiClient", open, "()void"))
		switch ep.Via {
		case "direct":
			cls.Method(open, "()void", acc,
				dalvik.ConstString(ep.URL),
				dalvik.NewInstance("java.net.URL"),
				dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
				dalvik.Return(),
			)
		case "helper":
			// The URL constant crosses a static call; the extractor's
			// parameter-passthrough summary must carry it into the helper.
			cls.Method(open, "()void", acc,
				dalvik.ConstString(ep.URL),
				dalvik.InvokeStatic(s.Package+".net.ApiClient", ep.Method, "(String)void"),
				dalvik.Return(),
			).Method(ep.Method, "(String)void", acc,
				dalvik.NewInstance("java.net.URL"),
				dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
				dalvik.Return(),
			)
		case "concat":
			// StringBuilder assembles the URL from two constants; only the
			// abstract concat model recovers the full string.
			pre := ep.URL[:len(ep.URL)-len(fmt.Sprintf("bundle%d.js", i))]
			suf := ep.URL[len(pre):]
			cls.Method(open, "()void", acc,
				dalvik.NewInstance("java.lang.StringBuilder"),
				dalvik.InvokeDirect("java.lang.StringBuilder", "<init>", "()void"),
				dalvik.ConstString(pre),
				dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
				dalvik.Instruction{Op: dalvik.OpMoveResult},
				dalvik.ConstString(suf),
				dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
				dalvik.Instruction{Op: dalvik.OpMoveResult},
				dalvik.InvokeVirtual("java.lang.StringBuilder", "toString", "()String"),
				dalvik.Instruction{Op: dalvik.OpMoveResult},
				dalvik.NewInstance("java.net.URL"),
				dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
				dalvik.Return(),
			)
		case "prefix":
			// The second append has nothing on the operand stack, so it
			// consumes the method's own parameter — a caller-supplied tail
			// the extractor can only report as a partial prefix.
			cls.Method(open, "()void", acc,
				dalvik.InvokeStatic(s.Package+".net.ApiClient", ep.Method, "(String)void"),
				dalvik.Return(),
			).Method(ep.Method, "(String)void", acc,
				dalvik.NewInstance("java.lang.StringBuilder"),
				dalvik.InvokeDirect("java.lang.StringBuilder", "<init>", "()void"),
				dalvik.ConstString(ep.URL),
				dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
				dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
				dalvik.InvokeVirtual("java.lang.StringBuilder", "toString", "()String"),
				dalvik.Instruction{Op: dalvik.OpMoveResult},
				dalvik.NewInstance("java.net.URL"),
				dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
				dalvik.Return(),
			)
		}
	}
	initBody = append(initBody, dalvik.Return())
	cls.Method("init", "()void", acc, initBody...)
}
