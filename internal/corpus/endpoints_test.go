package corpus_test

// End-to-end URL ground truth: the corpus plants endpoints per spec in four
// bytecode shapes, the APK builder emits real call chains behind them, and
// the urlextract stage must recover every planted entry — 100% recall at
// the recorded class, method, API and kind — including the interprocedural
// helper and StringBuilder-concat cases.

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/sdkindex"
	"repro/internal/urlextract"
)

func epKey(class, method, api, kind, url string) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s", class, method, api, kind, url)
}

func TestEndpointGroundTruthEndToEnd(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 1000})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	idx := sdkindex.Default()
	ex := urlextract.New(urlextract.Config{})

	viaSeen := make(map[string]int)
	apps, planted := 0, 0
	for _, s := range c.Filtered() {
		if s.Broken || len(s.Endpoints) == 0 {
			continue
		}
		apps++
		img, err := corpus.BuildAPK(s)
		if err != nil {
			t.Fatalf("BuildAPK(%s): %v", s.Package, err)
		}
		an, err := pipeline.AnalyzeAndExtract(idx, nil, ex, img)
		if err != nil {
			t.Fatalf("AnalyzeAndExtract(%s): %v", s.Package, err)
		}
		got := make(map[string]bool, len(an.Endpoints))
		for _, ep := range an.Endpoints {
			got[epKey(ep.Class, ep.Method, ep.API, ep.Kind, ep.URL)] = true
			if !ep.FirstParty {
				if ep.Class == s.Package+".net.ApiClient" {
					t.Errorf("%s: planted endpoint misattributed to SDK %q: %+v", s.Package, ep.SDK, ep)
				}
			}
		}
		for _, p := range s.Endpoints {
			planted++
			viaSeen[p.Via]++
			if !got[epKey(p.Class, p.Method, p.API, p.Kind, p.URL)] {
				t.Errorf("%s: planted endpoint (via %s) not extracted: %+v\nextracted: %+v",
					s.Package, p.Via, p, an.Endpoints)
			}
		}
	}
	if apps < 20 || planted < 40 {
		t.Fatalf("corpus too small for coverage: %d apps with endpoints, %d planted", apps, planted)
	}
	// Every code shape must have at least one instance corpus-wide, or the
	// recall claim above is vacuous for that shape.
	for _, via := range []string{"direct", "helper", "concat", "prefix"} {
		if viaSeen[via] == 0 {
			t.Errorf("no %q-shaped endpoint planted corpus-wide", via)
		}
	}
}

// TestEndpointStreamIndependent pins the zero-drift guarantee: the "urls"
// random stream is salted independently, so the static, lint and dynamic
// assignments of every app are byte-identical whether or not endpoints
// exist — here checked against specs regenerated at the same seed.
func TestEndpointStreamIndependent(t *testing.T) {
	a, err := corpus.Generate(corpus.Config{Seed: 11, Scale: 1500})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := corpus.Generate(corpus.Config{Seed: 11, Scale: 1500})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	withEndpoints := 0
	for i, s := range a.Apps {
		o := b.Apps[i]
		if len(s.Endpoints) > 0 {
			withEndpoints++
		}
		if s.Broken || s.Obfuscated {
			if len(s.Endpoints) != 0 {
				t.Fatalf("%s: broken/obfuscated app carries endpoints %+v", s.Package, s.Endpoints)
			}
		}
		if fmt.Sprintf("%+v", s) != fmt.Sprintf("%+v", o) {
			t.Fatalf("%s: regeneration drift:\n%+v\nvs\n%+v", s.Package, s, o)
		}
	}
	if withEndpoints == 0 {
		t.Fatal("no app drew endpoints")
	}
}
