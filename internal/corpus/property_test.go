package corpus

import (
	"testing"
	"testing/quick"
)

// Property: the funnel is monotone and self-consistent at every scale.
func TestQuickFunnelInvariants(t *testing.T) {
	prop := func(raw uint16) bool {
		scale := int(raw)%5000 + 1
		c := ScaledCounts(scale)
		return c.Total >= c.OnPlay &&
			c.OnPlay >= c.Popular &&
			c.Popular >= c.Filtered &&
			c.Filtered >= c.Analyzed &&
			c.Analyzed == c.Filtered-c.Broken &&
			c.Analyzed >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: generation is a pure function of (seed, scale) — regenerating
// yields byte-identical APKs for sampled apps.
func TestQuickGenerationPure(t *testing.T) {
	prop := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		a, err := Generate(Config{Seed: seed, Scale: 2500})
		if err != nil {
			return false
		}
		b, err := Generate(Config{Seed: seed, Scale: 2500})
		if err != nil {
			return false
		}
		fa, fb := a.Filtered(), b.Filtered()
		if len(fa) != len(fb) {
			return false
		}
		for i := 0; i < len(fa); i += 7 {
			ia, err := BuildAPK(fa[i])
			if err != nil {
				return false
			}
			ib, err := BuildAPK(fb[i])
			if err != nil {
				return false
			}
			if string(ia) != string(ib) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: every generated spec with SDKs yields a parseable APK whose
// package matches, at any seed.
func TestQuickAPKsAlwaysWellFormed(t *testing.T) {
	prop := func(seedRaw uint8) bool {
		c, err := Generate(Config{Seed: int64(seedRaw) + 100, Scale: 3000})
		if err != nil {
			return false
		}
		for _, s := range c.Filtered() {
			img, err := BuildAPK(s)
			if err != nil {
				return false
			}
			if s.Broken {
				continue
			}
			if len(img) < 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// Property: downloads never increase with rank.
func TestQuickDownloadsMonotone(t *testing.T) {
	prop := func(a, b uint16) bool {
		r1, r2 := int(a)%5000+1, int(b)%5000+1
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return downloadsBand(r1) >= downloadsBand(r2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
