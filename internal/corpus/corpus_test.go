package corpus

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/sdkindex"
)

func gen(t *testing.T, scale int) *Corpus {
	t.Helper()
	c, err := Generate(Config{Seed: 1, Scale: scale})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return c
}

func TestScaledCountsFullScale(t *testing.T) {
	c := ScaledCounts(1)
	if c.Total != PaperAndrozooApps || c.OnPlay != PaperOnPlayApps ||
		c.Popular != PaperPopularApps || c.Filtered != PaperFilteredApps ||
		c.Broken != PaperBrokenAPKs || c.Analyzed != PaperAnalyzedApps {
		t.Errorf("ScaledCounts(1) = %+v", c)
	}
}

func TestScaledCountsMonotone(t *testing.T) {
	for _, scale := range []int{1, 10, 100, 500, 2000} {
		c := ScaledCounts(scale)
		if !(c.Total >= c.OnPlay && c.OnPlay >= c.Popular && c.Popular >= c.Filtered && c.Filtered >= c.Analyzed) {
			t.Errorf("scale %d: funnel not monotone: %+v", scale, c)
		}
		if c.Analyzed < 1 {
			t.Errorf("scale %d: no analyzable apps", scale)
		}
	}
}

func TestGenerateFunnelExact(t *testing.T) {
	for _, scale := range []int{100, 500, 2000} {
		c := gen(t, scale)
		counts := ScaledCounts(scale)
		if len(c.Apps) != counts.Total {
			t.Errorf("scale %d: apps = %d, want %d", scale, len(c.Apps), counts.Total)
		}
		onPlay, popular, filtered, broken := 0, 0, 0, 0
		for _, s := range c.Apps {
			if s.OnPlayStore {
				onPlay++
				if s.Downloads >= MinDownloads {
					popular++
				}
			}
			if s.Eligible(MinDownloads, UpdateCutoff) {
				filtered++
				if s.Broken {
					broken++
				}
			}
		}
		if onPlay != counts.OnPlay || popular != counts.Popular || filtered != counts.Filtered || broken != counts.Broken {
			t.Errorf("scale %d: funnel = (%d, %d, %d, %d), want (%d, %d, %d, %d)",
				scale, onPlay, popular, filtered, broken,
				counts.OnPlay, counts.Popular, counts.Filtered, counts.Broken)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := gen(t, 500)
	b := gen(t, 500)
	if len(a.Apps) != len(b.Apps) {
		t.Fatal("lengths differ")
	}
	for i := range a.Apps {
		x, y := a.Apps[i], b.Apps[i]
		if x.Package != y.Package || x.Downloads != y.Downloads || len(x.SDKs) != len(y.SDKs) {
			t.Fatalf("app %d differs: %+v vs %+v", i, x, y)
		}
	}
	// Different seed changes SDK assignment somewhere.
	c, err := Generate(Config{Seed: 2, Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Apps {
		if len(a.Apps[i].SDKs) != len(c.Apps[i].SDKs) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed change did not alter the corpus")
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	if _, err := Generate(Config{Scale: 0}); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestNamedAppsLeadRanking(t *testing.T) {
	c := gen(t, 100)
	top := c.Top(len(NamedApps))
	for i, n := range NamedApps {
		if top[i].Package != n.Package {
			t.Errorf("rank %d = %s, want %s", i+1, top[i].Package, n.Package)
		}
		if top[i].Downloads != n.Downloads {
			t.Errorf("%s downloads = %d", n.Package, top[i].Downloads)
		}
	}
}

func TestDownloadsMonotoneNonIncreasing(t *testing.T) {
	c := gen(t, 100)
	f := c.Filtered()
	for i := 1; i < len(f); i++ {
		if f[i].Downloads > f[i-1].Downloads {
			t.Fatalf("rank %d (%d) > rank %d (%d)", i+1, f[i].Downloads, i, f[i-1].Downloads)
		}
	}
	// Paper: every top-1K app has at least 86M downloads.
	if len(f) >= 1000 && f[999].Downloads < 86_000_000 {
		t.Errorf("rank 1000 downloads = %d, want >= 86M", f[999].Downloads)
	}
}

func TestTop1KBehaviorComposition(t *testing.T) {
	c := gen(t, 100) // filtered ≈ 1468 ≥ 1000
	top := c.Top(1000)
	if len(top) != 1000 {
		t.Fatalf("top = %d", len(top))
	}
	var wv, ct, browserLink, noUGC, browsers, phone, incompat, paid int
	for _, s := range top {
		d := s.Dynamic
		switch {
		case d.HasUserContent && d.LinkOpens == LinkWebView:
			wv++
		case d.HasUserContent && d.LinkOpens == LinkCustomTab:
			ct++
		case d.HasUserContent && d.LinkOpens == LinkBrowser:
			browserLink++
		case d.IsBrowser:
			browsers++
		case d.RequiresPhone:
			phone++
		case d.Incompatible:
			incompat++
		case d.PaidOnly:
			paid++
		default:
			noUGC++
		}
	}
	// Table 6, exactly.
	if wv != 10 || ct != 1 || browserLink != 27 || noUGC != 905 || browsers != 9 ||
		phone != 24 || incompat != 22 || paid != 2 {
		t.Errorf("composition = wv:%d ct:%d browser:%d noUGC:%d browsers:%d phone:%d incompat:%d paid:%d",
			wv, ct, browserLink, noUGC, browsers, phone, incompat, paid)
	}
}

func TestAdoptionRatesMatchPaper(t *testing.T) {
	c := gen(t, 100)
	var analyzed, wv, ct, both int
	for _, s := range c.Filtered() {
		if s.Broken {
			continue
		}
		analyzed++
		if s.UsesWebView() {
			wv++
		}
		if s.UsesCT() {
			ct++
		}
		if s.UsesWebView() && s.UsesCT() {
			both++
		}
	}
	rate := func(n int) float64 { return float64(n) / float64(analyzed) }
	if r := rate(wv); r < 0.50 || r > 0.62 {
		t.Errorf("WebView rate = %.3f, want ≈0.558", r)
	}
	if r := rate(ct); r < 0.15 || r > 0.25 {
		t.Errorf("CT rate = %.3f, want ≈0.199", r)
	}
	if r := rate(both); r < 0.10 || r > 0.20 {
		t.Errorf("both rate = %.3f, want ≈0.150", r)
	}
}

func TestSDKPackagesResolveInIndex(t *testing.T) {
	c := gen(t, 500)
	idx := sdkindex.Default()
	for _, s := range c.Filtered() {
		for _, u := range s.SDKs {
			if _, ok := idx.Lookup(u.Package + ".internal"); !ok {
				t.Fatalf("%s: SDK package %q not resolvable", s.Package, u.Package)
			}
			if len(u.WebViewMethods) == 0 && !u.UsesCT {
				t.Fatalf("%s: SDK %q assigned with no usage", s.Package, u.Package)
			}
		}
	}
}

func TestBuildAPKRoundTrip(t *testing.T) {
	c := gen(t, 500)
	var tested int
	for _, s := range c.Filtered() {
		if s.Broken || tested >= 25 {
			continue
		}
		tested++
		img, err := BuildAPK(s)
		if err != nil {
			t.Fatalf("BuildAPK(%s): %v", s.Package, err)
		}
		a, err := apk.Open(img)
		if err != nil {
			t.Fatalf("Open(%s): %v", s.Package, err)
		}
		if a.Package() != s.Package {
			t.Errorf("package = %q, want %q", a.Package(), s.Package)
		}

		// The planted ground truth must be recoverable by real analysis,
		// applying the same deep-link exclusion as the pipeline (§3.1.3).
		excl := map[string]bool{}
		for _, dl := range a.Manifest.DeepLinkActivities() {
			excl[dl] = true
		}
		g := callgraph.Build(a.Dex)
		u := g.AnalyzeUsage(excl)
		if u.UsesWebView() != s.UsesWebView() {
			t.Errorf("%s: UsesWebView analysis=%v spec=%v", s.Package, u.UsesWebView(), s.UsesWebView())
		}
		if u.UsesCT() != s.UsesCT() {
			t.Errorf("%s: UsesCT analysis=%v spec=%v", s.Package, u.UsesCT(), s.UsesCT())
		}
		// Every planted method must be observed (deep-link extras aside).
		want := map[string]bool{}
		for _, m := range s.OwnMethods {
			want[m] = true
		}
		for _, use := range s.SDKs {
			for _, m := range use.WebViewMethods {
				want[m] = true
			}
		}
		got := map[string]bool{}
		for _, m := range u.MethodsCalled() {
			got[m] = true
		}
		for m := range want {
			if !got[m] {
				t.Errorf("%s: planted method %s not recovered", s.Package, m)
			}
		}
	}
	if tested == 0 {
		t.Fatal("no apps tested")
	}
}

func TestBuildAPKDeterministic(t *testing.T) {
	c := gen(t, 500)
	s := c.Filtered()[0]
	a, err := BuildAPK(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildAPK(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("BuildAPK not deterministic")
	}
}

func TestBrokenAPKFailsToParse(t *testing.T) {
	s := &Spec{Package: "com.broken.app", Broken: true}
	img, err := BuildAPK(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apk.Open(img); !errors.Is(err, apk.ErrBroken) {
		t.Errorf("Open(broken) err = %v, want ErrBroken", err)
	}
}

func TestDeepLinkActivityExcludable(t *testing.T) {
	s := &Spec{
		Package:     "com.dl.app",
		OnPlayStore: true,
		HasDeepLink: true,
	}
	img, err := BuildAPK(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := apk.Open(img)
	if err != nil {
		t.Fatal(err)
	}
	dls := a.Manifest.DeepLinkActivities()
	if len(dls) != 1 {
		t.Fatalf("deep links = %v", dls)
	}
	g := callgraph.Build(a.Dex)
	// Without exclusion the deep-link host's loadUrl is visible...
	if !g.AnalyzeUsage(nil).UsesWebView() {
		t.Fatal("deep-link WebView call not planted")
	}
	// ...and excluded it disappears (the app has no other WebView code).
	excl := map[string]bool{dls[0]: true}
	if g.AnalyzeUsage(excl).UsesWebView() {
		t.Error("deep-link call not excluded")
	}
}

func TestIABAppsPlantWebViewCode(t *testing.T) {
	c := gen(t, 100)
	for _, n := range NamedApps {
		s := c.AppByPackage(n.Package)
		if s == nil {
			t.Fatalf("%s missing from corpus", n.Package)
		}
		if n.Dynamic.LinkOpens == LinkWebView && !s.UsesWebView() {
			t.Errorf("%s: WebView IAB app without WebView code", n.Package)
		}
		if n.Dynamic.LinkOpens == LinkCustomTab && !s.UsesCT() {
			t.Errorf("%s: CT IAB app without CT code", n.Package)
		}
	}
}

func TestMethodMarginalsShape(t *testing.T) {
	c := gen(t, 100)
	counts := map[string]int{}
	wvApps := 0
	for _, s := range c.Filtered() {
		if s.Broken || !s.UsesWebView() {
			continue
		}
		wvApps++
		seen := map[string]bool{}
		for _, m := range s.OwnMethods {
			seen[m] = true
		}
		for _, u := range s.SDKs {
			for _, m := range u.WebViewMethods {
				seen[m] = true
			}
		}
		for m := range seen {
			counts[m]++
		}
	}
	// Table 7 shape: loadUrl dominates; ordering of the big methods holds.
	if counts[android.MethodLoadURL] < counts[android.MethodAddJavascriptInterface] {
		t.Errorf("loadUrl (%d) < addJavascriptInterface (%d)",
			counts[android.MethodLoadURL], counts[android.MethodAddJavascriptInterface])
	}
	if counts[android.MethodAddJavascriptInterface] < counts[android.MethodLoadData] {
		t.Errorf("addJavascriptInterface (%d) < loadData (%d)",
			counts[android.MethodAddJavascriptInterface], counts[android.MethodLoadData])
	}
	if r := float64(counts[android.MethodLoadURL]) / float64(wvApps); r < 0.85 {
		t.Errorf("loadUrl rate = %.2f, want ≳0.95", r)
	}
}

func TestPlayCategoriesAssigned(t *testing.T) {
	c := gen(t, 500)
	cats := map[string]int{}
	for _, s := range c.Filtered() {
		if s.PlayCategory == "" {
			t.Fatalf("%s: empty Play category", s.Package)
		}
		cats[s.PlayCategory]++
	}
	if len(cats) < 10 {
		t.Errorf("only %d Play categories in use", len(cats))
	}
}
