// Package corpus generates the synthetic Android app population the
// reproduction measures. Ground truth is planted from the paper's published
// marginals (SDK adoption, API-method rates, category mixes, the dataset
// funnel of Table 2); the static pipeline then re-derives every statistic by
// actually decompiling and traversing the generated APKs. Absolute counts
// scale with Config.Scale; proportions are what the benchmarks compare
// against the paper.
package corpus

import (
	"time"
)

// LinkBehavior describes what an app does when the user taps an http(s)
// link in user-generated content (§3.2.1, Table 6).
type LinkBehavior int

// Link behaviours.
const (
	LinkNone      LinkBehavior = iota // app has no user-generated links
	LinkBrowser                       // raises a Web URI intent (default)
	LinkWebView                       // opens a WebView-based IAB
	LinkCustomTab                     // opens a CT-based IAB
)

func (b LinkBehavior) String() string {
	switch b {
	case LinkBrowser:
		return "browser"
	case LinkWebView:
		return "webview"
	case LinkCustomTab:
		return "customtab"
	default:
		return "none"
	}
}

// InjectionKind classifies the behaviour of a WebView-based IAB's injected
// code (Table 8).
type InjectionKind int

// Injection kinds observed in the wild.
const (
	InjectNone         InjectionKind = iota
	InjectMetaCommerce               // FB/IG: autofill SDK, DOM counts, simHash, perf metrics, pay bridges
	InjectRadar                      // LinkedIn: Cedexis Radar network measurement
	InjectAdsGoogle                  // Moj/Chingari: Google Ads video-ad insertion
	InjectAdsMulti                   // Kik: multi-network ad insertion (Google, MoPub, InMobi)
	InjectObfuscated                 // Pinterest: obfuscated JS bridge
)

// Dynamic captures the runtime behaviour of an app needed by the
// semi-manual analysis: whether users can post links, where, and what
// happens on click. For the 10 WebView IABs it also fixes the injection
// behaviour the runtime executes.
type Dynamic struct {
	HasUserContent bool
	LinkSurface    string // "Post", "DM", "Story", "Bio", "Profile"
	LinkOpens      LinkBehavior
	Injection      InjectionKind
	UsesRedirector string // e.g. "lm.facebook.com/l.php"; "" for direct loads
	// Classification obstacles (Table 6's "could not classify" rows).
	RequiresPhone bool
	Incompatible  bool
	PaidOnly      bool
	IsBrowser     bool
}

// SDKUse is one SDK embedded in an app, with the WebView API methods its
// copy calls (drawn from the SDK category's method profile) and whether the
// integration drives WebViews, CTs or both.
type SDKUse struct {
	Package        string // the SDK's package prefix
	WebViewMethods []string
	UsesCT         bool
	// Misconfigs lists the webviewlint rule IDs this SDK copy's code
	// violates (settings rules only); the APK builder plants matching
	// WebSettings calls inside the SDK's own package.
	Misconfigs []string
}

// Spec fully determines one generated app: its metadata and the code the
// APK builder will synthesise. Every field is fixed by the generator so
// that APK construction is reproducible from the spec alone.
type Spec struct {
	Package      string
	Title        string
	PlayCategory string
	Downloads    int64
	LastUpdated  time.Time
	OnPlayStore  bool
	Broken       bool // APK downloads but cannot be parsed
	// Obfuscated routes the app's WebView calls through reflection so
	// name-based static analysis cannot see them (§3.1.5).
	Obfuscated bool

	// Static ground truth.
	SDKs        []SDKUse
	OwnMethods  []string // WebView methods called by first-party app code
	OwnCT       bool     // first-party Custom Tabs use
	HasDeepLink bool     // exported BROWSABLE activity (excluded, §3.1.3)
	// Misconfigs lists the webviewlint rule IDs the app's first-party
	// WebView code violates. The APK builder plants the matching
	// misconfiguration code (WebSettings calls, a proceed-ing
	// WebViewClient, an intent-to-loadUrl flow) so the lint stage has real
	// code to find; obfuscated apps never carry misconfigs (their WebView
	// surface is hidden behind reflection).
	Misconfigs []string

	// Dynamic ground truth (top apps only).
	Dynamic Dynamic
}

// UsesWebView reports whether any planted code path uses a WebView.
func (s *Spec) UsesWebView() bool {
	if len(s.OwnMethods) > 0 {
		return true
	}
	for _, u := range s.SDKs {
		if len(u.WebViewMethods) > 0 {
			return true
		}
	}
	return false
}

// UsesCT reports whether any planted code path uses Custom Tabs.
func (s *Spec) UsesCT() bool {
	if s.OwnCT {
		return true
	}
	for _, u := range s.SDKs {
		if u.UsesCT {
			return true
		}
	}
	return false
}

// Eligible reports whether the app passes the paper's selection filter:
// found on the Play Store, 100K+ downloads, updated after cutoff.
func (s *Spec) Eligible(minDownloads int64, updatedAfter time.Time) bool {
	return s.OnPlayStore && s.Downloads >= minDownloads && s.LastUpdated.After(updatedAfter)
}
