package corpus

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/dalvik"
	"repro/internal/manifest"
	"repro/internal/webviewlint"
)

// BuildAPK synthesises the APK image for a spec. The build is a pure
// function of the spec: the manifest declares the app's components (launcher
// activity, optional deep-link activity) and the dex contains real call
// chains from Android entry points down to the planted WebView / Custom
// Tabs API calls — the static pipeline has to decompile and traverse to
// find them. Broken specs yield a deterministically corrupt archive.
func BuildAPK(s *Spec) ([]byte, error) {
	if s.Broken {
		// A truncated ZIP: enough bytes to be fetched and stored, never
		// enough to parse. Deterministic per package.
		return []byte("PK\x03\x04broken-apk:" + s.Package), nil
	}

	m := buildManifest(s)
	dex, err := buildDex(s)
	if err != nil {
		return nil, fmt.Errorf("corpus: build %s: %w", s.Package, err)
	}
	return apk.Pack(m, dex, nil)
}

func buildManifest(s *Spec) *manifest.Manifest {
	m := &manifest.Manifest{
		Package:     s.Package,
		VersionCode: 1 + int(pkgHash(s.Package)%900),
		VersionName: "1.0",
		MinSDK:      21,
		TargetSDK:   33,
		Components: []manifest.Component{{
			Kind:     manifest.KindActivity,
			Name:     s.Package + ".MainActivity",
			Exported: true,
			Filters: []manifest.IntentFilter{{
				Actions:    []string{android.ActionMain},
				Categories: []string{android.CategoryLauncher},
			}},
		}},
	}
	if len(s.OwnMethods) > 0 {
		m.Components = append(m.Components, manifest.Component{
			Kind: manifest.KindActivity,
			Name: s.Package + ".web.WebActivity",
		})
	}
	if s.HasDeepLink {
		m.Components = append(m.Components, manifest.Component{
			Kind:     manifest.KindActivity,
			Name:     s.Package + ".link.DeepLinkActivity",
			Exported: true,
			Filters: []manifest.IntentFilter{{
				Actions:    []string{android.ActionView},
				Categories: []string{android.CategoryBrowsable, android.CategoryDefault},
				Data:       []manifest.DataSpec{{Scheme: "https", Host: appHost(s.Package)}},
			}},
		})
	}
	return m
}

func buildDex(s *Spec) (*dalvik.File, error) {
	b := dalvik.NewBuilder()

	// Launcher activity: the root every traversal starts from. onCreate
	// boots each SDK's WebView side; onClick drives the Custom Tabs sides.
	var onCreate, onClick []dalvik.Instruction
	for _, use := range s.SDKs {
		if len(use.WebViewMethods) > 0 {
			onCreate = append(onCreate,
				dalvik.InvokeStatic(use.Package+".Bootstrap", "start", "()void"))
		}
		if use.UsesCT {
			onClick = append(onClick,
				dalvik.InvokeStatic(use.Package+".Bootstrap", "openTab", "()void"))
		}
	}
	if len(s.OwnMethods) > 0 {
		onCreate = append(onCreate,
			dalvik.InvokeStatic(s.Package+".web.WebActivity", "preload", "()void"))
	}
	if s.OwnCT {
		onClick = append(onClick,
			dalvik.InvokeStatic(s.Package+".web.TabHelper", "open", "()void"))
	}
	if len(s.Endpoints) > 0 {
		onCreate = append(onCreate,
			dalvik.InvokeStatic(s.Package+".net.ApiClient", "init", "()void"))
	}
	b.Class(s.Package+".MainActivity", android.ActivityClass, dalvik.AccPublic).
		Source("MainActivity.java").
		VoidMethod("onCreate", onCreate...).
		VoidMethod("onClick", onClick...).
		VoidMethod("onResume")

	// SDK code, under each SDK's own package.
	for _, use := range s.SDKs {
		buildSDKClasses(b, s, use)
	}

	// First-party WebView activity. Planted misconfigurations append their
	// WebSettings calls after the API calls so the operand stack feeding the
	// existing call arguments is untouched.
	if len(s.OwnMethods) > 0 {
		body := []dalvik.Instruction{
			dalvik.ConstString("https://" + appHost(s.Package) + "/home"),
		}
		if s.Obfuscated {
			body = append(body, reflectiveWebViewCalls(s.OwnMethods)...)
		} else {
			body = append(body, webViewCalls(android.WebViewClass, s.OwnMethods)...)
		}
		body = append(body, misconfigSettings(android.WebViewClass, s.Misconfigs)...)
		b.Class(s.Package+".web.WebActivity", android.ActivityClass, dalvik.AccPublic).
			Source("WebActivity.java").
			Method("preload", "()void", dalvik.AccPublic|dalvik.AccStatic, dalvik.Return()).
			VoidMethod("onCreate", body...)
		buildMisconfigClasses(b, s)
	}
	if s.OwnCT {
		b.Class(s.Package+".web.TabHelper", android.ObjectClass, dalvik.AccPublic).
			Method("open", "()void", dalvik.AccPublic|dalvik.AccStatic,
				dalvik.NewInstance(android.CustomTabsIntentBuilderClass),
				dalvik.InvokeDirect(android.CustomTabsIntentBuilderClass, "<init>", "()void"),
				dalvik.InvokeVirtual(android.CustomTabsIntentBuilderClass, "build", "()CustomTabsIntent"),
				dalvik.ConstString("https://"+appHost(s.Package)+"/tab"),
				dalvik.InvokeVirtual(android.CustomTabsIntentClass, android.MethodLaunchURL, "(Context,Uri)void"),
				dalvik.Return(),
			)
	}

	// First-party networking class carrying the planted URL ground truth.
	buildEndpointClasses(b, s)

	// Deep-link activity hosting first-party content: the pipeline must
	// exclude these call sites (§3.1.3).
	if s.HasDeepLink {
		b.Class(s.Package+".link.DeepLinkActivity", android.ActivityClass, dalvik.AccPublic).
			Source("DeepLinkActivity.java").
			VoidMethod("onCreate",
				dalvik.ConstString("https://"+appHost(s.Package)+"/content"),
				dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			)
	}

	// A deterministic minority of apps carries dead code exercising the
	// analysis' reachability precision: WebView calls no entry point reaches.
	if pkgHash(s.Package)%7 == 0 {
		b.Class(s.Package+".internal.Unused", android.ObjectClass, dalvik.AccPublic).
			VoidMethod("neverCalled",
				dalvik.ConstString("https://dead.code/"),
				dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			)
	}

	// Filler utility classes give the decompiler and parser realistic bulk.
	n := 2 + int(pkgHash(s.Package)%3)
	for i := 0; i < n; i++ {
		b.Class(fmt.Sprintf("%s.util.Util%d", s.Package, i), android.ObjectClass, dalvik.AccPublic).
			VoidMethod("run",
				dalvik.ConstInt(int64(i)),
				dalvik.InvokeStatic("java.lang.System", "nanoTime", "()long"),
			)
	}

	return b.Build()
}

// buildSDKClasses emits the embedded SDK's code: a Bootstrap facade called
// from the host app, and internal controller classes whose package names the
// labeling step attributes (§3.1.4). SDKs deterministically alternate
// between driving the framework WebView directly and shipping a custom
// WebView subclass (detected via decompile-and-parse, §3.1.2).
func buildSDKClasses(b *dalvik.Builder, s *Spec, use SDKUse) {
	custom := pkgHash(use.Package+s.Package)%2 == 0
	webViewClass := android.WebViewClass
	var bootstrap []dalvik.Instruction

	if len(use.WebViewMethods) > 0 {
		if custom {
			webViewClass = use.Package + ".widget.SdkWebView"
			b.Class(webViewClass, android.WebViewClass, dalvik.AccPublic).
				Source("SdkWebView.java").
				VoidMethod("configure")
		}
		body := []dalvik.Instruction{
			dalvik.ConstString("https://cdn." + strings.TrimPrefix(use.Package, "com.") + "/content"),
		}
		if custom {
			body = append(body, dalvik.NewInstance(webViewClass),
				dalvik.InvokeDirect(webViewClass, "<init>", "(Context)void"))
		}
		if s.Obfuscated {
			body = append(body, reflectiveWebViewCalls(use.WebViewMethods)...)
		} else {
			body = append(body, webViewCalls(webViewClass, use.WebViewMethods)...)
		}
		body = append(body, misconfigSettings(webViewClass, use.Misconfigs)...)
		b.Class(use.Package+".internal.WebController", android.ObjectClass, dalvik.AccPublic).
			Source("WebController.java").
			VoidMethod("open", body...)
		bootstrap = append(bootstrap,
			dalvik.NewInstance(use.Package+".internal.WebController"),
			dalvik.InvokeDirect(use.Package+".internal.WebController", "<init>", "()void"),
			dalvik.InvokeVirtual(use.Package+".internal.WebController", "open", "()void"),
		)
	}

	if use.UsesCT {
		b.Class(use.Package+".ct.TabLauncher", android.ObjectClass, dalvik.AccPublic).
			Source("TabLauncher.java").
			Method("launch", "()void", dalvik.AccPublic|dalvik.AccStatic,
				dalvik.NewInstance(android.CustomTabsIntentBuilderClass),
				dalvik.InvokeDirect(android.CustomTabsIntentBuilderClass, "<init>", "()void"),
				dalvik.InvokeVirtual(android.CustomTabsIntentBuilderClass, "build", "()CustomTabsIntent"),
				dalvik.ConstString("https://auth."+strings.TrimPrefix(use.Package, "com.")+"/flow"),
				dalvik.InvokeVirtual(android.CustomTabsIntentClass, android.MethodLaunchURL, "(Context,Uri)void"),
				dalvik.Return(),
			)
	}

	// Bootstrap last: Builder methods attach to the most recent class.
	cls := b.Class(use.Package+".Bootstrap", android.ObjectClass, dalvik.AccPublic|dalvik.AccFinal).
		Source("Bootstrap.java")
	start := append([]dalvik.Instruction{}, bootstrap...)
	start = append(start, dalvik.Return())
	cls.Method("start", "()void", dalvik.AccPublic|dalvik.AccStatic, start...)
	if use.UsesCT {
		cls.Method("openTab", "()void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.InvokeStatic(use.Package+".ct.TabLauncher", "launch", "()void"),
			dalvik.Return(),
		)
	}
}

// misconfigSettings renders the WebSettings-style misconfiguration calls
// for the planted rules: a getSettings() lookup followed by one enabling
// setter per settings rule, plus the static remote-debugging switch. The
// sequence is self-contained on the operand stack (every setter consumes
// the constant pushed just before it), so it composes with any body.
func misconfigSettings(webViewClass string, planted []string) []dalvik.Instruction {
	var setters, statics []dalvik.Instruction
	setter := func(name string) {
		setters = append(setters,
			dalvik.ConstInt(1),
			dalvik.InvokeVirtual(android.WebSettingsClass, name, "(boolean)void"))
	}
	for _, rule := range planted {
		switch rule {
		case webviewlint.RuleJSEnabled:
			setter(android.MethodSetJavaScriptEnabled)
		case webviewlint.RuleFileAccess:
			setter(android.MethodSetAllowFileAccess)
		case webviewlint.RuleFileURLAccess:
			setter(android.MethodSetAllowFileAccessFromFileURLs)
		case webviewlint.RuleUniversalFileAccess:
			setter(android.MethodSetAllowUniversalAccessFromFileURLs)
		case webviewlint.RuleMixedContent:
			setters = append(setters,
				dalvik.ConstInt(0), // MIXED_CONTENT_ALWAYS_ALLOW
				dalvik.InvokeVirtual(android.WebSettingsClass, android.MethodSetMixedContentMode, "(int)void"))
		case webviewlint.RuleDebuggableWebView:
			statics = append(statics,
				dalvik.ConstInt(1),
				dalvik.InvokeStatic(android.WebViewClass, android.MethodSetWebContentsDebuggingEnabled, "(boolean)void"))
		}
	}
	var out []dalvik.Instruction
	if len(setters) > 0 {
		out = append(out,
			dalvik.InvokeVirtual(webViewClass, android.MethodGetSettings, "()WebSettings"),
			dalvik.Instruction{Op: dalvik.OpMoveResult})
		out = append(out, setters...)
	}
	return append(out, statics...)
}

// buildMisconfigClasses emits the first-party misconfiguration idioms that
// live in their own classes: a WebViewClient that swallows TLS errors and an
// intent-data-to-loadUrl deep-link flow. Apps without the planted rule get a
// safe variant at a deterministic stride — the lint rules need real negative
// code (a cancel()ing handler, a constant-URL router), not just absence.
// Neither class is reachable from an entry point, so the §3.1.3 usage
// traversal and every existing table are unaffected.
func buildMisconfigClasses(b *dalvik.Builder, s *Spec) {
	switch {
	case hasMisconfig(s.Misconfigs, webviewlint.RuleSSLErrorProceed):
		sslGuard(b, s, "proceed")
	case !s.Obfuscated && pkgHash(s.Package)%3 == 1:
		sslGuard(b, s, "cancel")
	}
	switch {
	case hasMisconfig(s.Misconfigs, webviewlint.RuleUnsafeLoadURL):
		deepLinkFlow(b, s, false)
	case !s.Obfuscated && pkgHash(s.Package)%5 == 2:
		deepLinkFlow(b, s, true)
	}
}

// sslGuard plants a WebViewClient subclass whose onReceivedSslError either
// proceeds (the ssl-error-proceed violation) or cancels (the safe negative).
func sslGuard(b *dalvik.Builder, s *Spec, action string) {
	b.Class(s.Package+".web.SslGuard", android.WebViewClientClass, dalvik.AccPublic).
		Source("SslGuard.java").
		VoidMethod(android.MethodOnReceivedSslError,
			dalvik.InvokeVirtual(android.SslErrorHandlerClass, action, "()void"),
		)
}

// deepLinkFlow plants the interprocedural unsafe-load-url chain: an opener
// method reads the intent's data string and passes it across a static call
// into Router.route, whose loadUrl sink the lint's taint walk must reach by
// following the call-graph edge. The safe variant routes a constant URL
// instead, leaving the intent read as a decoy.
func deepLinkFlow(b *dalvik.Builder, s *Spec, safe bool) {
	b.Class(s.Package+".link.LinkOpener", android.ActivityClass, dalvik.AccPublic).
		Source("LinkOpener.java").
		VoidMethod("openDeepLink",
			dalvik.InvokeVirtual(android.ActivityClass, "getIntent", "()Intent"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeVirtual(android.IntentClass, "getDataString", "()String"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeStatic(s.Package+".link.Router", "route", "(String)void"),
		)
	route := []dalvik.Instruction{}
	if safe {
		route = append(route, dalvik.ConstString("https://"+appHost(s.Package)+"/landing"))
	}
	route = append(route,
		dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
		dalvik.Return(),
	)
	b.Class(s.Package+".link.Router", android.ObjectClass, dalvik.AccPublic).
		Source("Router.java").
		Method("route", "(String)void", dalvik.AccPublic|dalvik.AccStatic, route...)
}

// webViewCalls renders one invoke per planted method, each preceded by a
// representative argument constant.
func webViewCalls(class string, methods []string) []dalvik.Instruction {
	var out []dalvik.Instruction
	for _, m := range methods {
		switch m {
		case android.MethodEvaluateJavascript:
			out = append(out, dalvik.ConstString("(function(){return document.title})()"))
		case android.MethodAddJavascriptInterface:
			out = append(out, dalvik.ConstString("NativeBridge"))
		}
		out = append(out, dalvik.InvokeVirtual(class, m, signatureOf(m)))
	}
	return out
}

// reflectiveWebViewCalls hides the same calls behind java.lang.reflect:
// the method name exists only as a string constant, so detection keyed on
// invoke targets (the paper's, and ours) cannot see it — the §3.1.5
// obfuscation limitation made concrete.
func reflectiveWebViewCalls(methods []string) []dalvik.Instruction {
	var out []dalvik.Instruction
	for _, m := range methods {
		out = append(out,
			dalvik.ConstString(m), // the only trace of the real target
			dalvik.InvokeVirtual("java.lang.Class", "getMethod", "(String,Class[])Method"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeVirtual("java.lang.reflect.Method", "invoke", "(Object,Object[])Object"),
		)
	}
	return out
}

func signatureOf(method string) string {
	switch method {
	case android.MethodLoadURL:
		return "(String)void"
	case android.MethodLoadData:
		return "(String,String,String)void"
	case android.MethodLoadDataWithBaseURL:
		return "(String,String,String,String,String)void"
	case android.MethodPostURL:
		return "(String,byte[])void"
	case android.MethodEvaluateJavascript:
		return "(String,ValueCallback)void"
	case android.MethodAddJavascriptInterface:
		return "(Object,String)void"
	case android.MethodRemoveJavascriptInterface:
		return "(String)void"
	default:
		return "()void"
	}
}

func appHost(pkg string) string {
	parts := strings.Split(pkg, ".")
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ".")
}

func pkgHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
