package corpus

import (
	"repro/internal/webviewlint"
)

// Misconfiguration ground truth. Each eligible app draws, from its own
// "lint" random stream (independent of the "static" stream so adding the
// lint study never perturbs the SDK/method assignment), the set of
// webviewlint rules its planted code violates. The APK builder turns each
// planted rule ID into real misconfiguration code; the lint stage has to
// decompile, parse and traverse to find it again.

// ownMisconfigRules are the rules plantable in first-party code, with the
// prevalence each occurs at among apps that ship their own WebView code.
// js-interface is deliberately absent: it fires organically whenever the
// app's OwnMethods include addJavascriptInterface.
var ownMisconfigRules = []struct {
	ID   string
	Rate float64
}{
	{webviewlint.RuleJSEnabled, 0.55},
	{webviewlint.RuleFileAccess, 0.12},
	{webviewlint.RuleFileURLAccess, 0.05},
	{webviewlint.RuleUniversalFileAccess, 0.03},
	{webviewlint.RuleMixedContent, 0.10},
	{webviewlint.RuleDebuggableWebView, 0.04},
	{webviewlint.RuleSSLErrorProceed, 0.06},
	{webviewlint.RuleUnsafeLoadURL, 0.08},
}

// sdkMisconfigRules are the rules plantable inside an embedded SDK's own
// package: the WebSettings-style rules only (SDKs configure the WebViews
// they drive; the ssl/deep-link patterns are app-component idioms).
var sdkMisconfigRules = []struct {
	ID   string
	Rate float64
}{
	{webviewlint.RuleJSEnabled, 0.40},
	{webviewlint.RuleFileAccess, 0.08},
	{webviewlint.RuleFileURLAccess, 0.03},
	{webviewlint.RuleUniversalFileAccess, 0.02},
	{webviewlint.RuleMixedContent, 0.12},
	{webviewlint.RuleDebuggableWebView, 0.02},
}

// namedMisconfigs fixes the named top apps' first-party misconfigurations
// as a deterministic showcase: across the ranks every plantable rule has at
// least one positive instance at any corpus scale, and Reddit/Discord stay
// clean as whole-app negatives.
var namedMisconfigs = map[string][]string{
	"com.facebook.katana":   {webviewlint.RuleJSEnabled, webviewlint.RuleMixedContent},
	"com.instagram.android": {webviewlint.RuleFileAccess, webviewlint.RuleUnsafeLoadURL},
	"com.snapchat.android":  {webviewlint.RuleSSLErrorProceed},
	"com.twitter.android":   {webviewlint.RuleJSEnabled, webviewlint.RuleDebuggableWebView},
	"com.linkedin.android":  {webviewlint.RuleFileURLAccess, webviewlint.RuleUnsafeLoadURL},
	"com.pinterest":         {webviewlint.RuleUniversalFileAccess},
	"in.mohalla.video":      {webviewlint.RuleJSEnabled, webviewlint.RuleSSLErrorProceed},
	"kik.android":           {webviewlint.RuleFileAccess},
	"io.chingari.app":       {webviewlint.RuleMixedContent},
	// com.discord (no first-party WebView) and com.reddit.frontpage stay
	// misconfiguration-free on purpose.
	"com.reddit.frontpage": nil,
	"com.discord":          nil,
}

// assignMisconfigs plants the app's lint ground truth. Obfuscated apps are
// skipped: their WebView surface is reflective, so planting direct
// misconfiguration calls would leak findings the usage analysis cannot see.
func assignMisconfigs(s *Spec, seed int64) {
	if s.Obfuscated {
		return
	}
	rng := appRNG(seed, s.Package, "lint")
	if len(s.OwnMethods) > 0 {
		if fixed, ok := namedMisconfigs[s.Package]; ok {
			s.Misconfigs = append([]string(nil), fixed...)
		} else {
			for _, r := range ownMisconfigRules {
				if rng.Float64() < r.Rate {
					s.Misconfigs = append(s.Misconfigs, r.ID)
				}
			}
		}
	}
	for i := range s.SDKs {
		use := &s.SDKs[i]
		if len(use.WebViewMethods) == 0 {
			continue
		}
		for _, r := range sdkMisconfigRules {
			if rng.Float64() < r.Rate {
				use.Misconfigs = append(use.Misconfigs, r.ID)
			}
		}
	}
}

// hasMisconfig reports whether a planted rule list contains the rule.
func hasMisconfig(rules []string, id string) bool {
	for _, r := range rules {
		if r == id {
			return true
		}
	}
	return false
}
