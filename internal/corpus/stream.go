package corpus

import (
	"strconv"
	"strings"
)

// Source is the read surface the repository and store servers consume:
// snapshot iteration in download-rank order plus per-package spec lookup.
// It is implemented by the fully materialized *Corpus and by the
// bounded-memory *Snapshot.
type Source interface {
	// Each calls fn for every snapshot entry in rank order, stopping at
	// the first error.
	Each(fn func(*Spec) error) error
	// ByPackage returns the spec for pkg, or nil when the snapshot does
	// not contain it.
	ByPackage(pkg string) *Spec
	// Total reports the number of repository snapshot entries.
	Total() int
}

// Snapshot is a bounded-memory view of a generated corpus: specs are
// synthesized on demand from their download rank instead of being
// materialized up front, so a full paper-scale snapshot (6.5M repository
// entries, 146.5K analyzable APKs at Scale 1) is served in a few kilobytes
// of resident state — the dynamic-study behaviour prefix (≤1K entries) and
// a named-app rank table. Snapshot and Generate produce byte-identical
// specs for the same Config.
//
// Package names encode their rank (com.genapp%07d and friends), so
// ByPackage runs in O(1): parse the rank, regenerate the spec, verify the
// round trip. A Snapshot is safe for concurrent use: synthesis is pure.
type Snapshot struct {
	g         *generator
	namedRank map[string]int
}

// NewSnapshot builds the streaming view for the configuration.
func NewSnapshot(cfg Config) (*Snapshot, error) {
	g, err := newGenerator(cfg)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{g: g, namedRank: make(map[string]int, len(NamedApps))}
	// Named packages occupy the top ranks only while the dynamic prefix
	// covers them; smaller prefixes fall through to generated names.
	for i := 0; i < len(NamedApps) && i < g.topK; i++ {
		s.namedRank[NamedApps[i].Package] = i + 1
	}
	return s, nil
}

// Config returns the generating configuration.
func (s *Snapshot) Config() Config { return s.g.cfg }

// Counts returns the dataset funnel at the snapshot's scale.
func (s *Snapshot) Counts() Counts { return s.g.counts }

// Total reports the number of repository snapshot entries.
func (s *Snapshot) Total() int { return s.g.counts.Total }

// At synthesizes the spec at 1-based download rank r, or nil out of range.
func (s *Snapshot) At(r int) *Spec {
	if r < 1 || r > s.g.counts.Total {
		return nil
	}
	return s.g.specAt(r)
}

// Each streams every snapshot entry in rank order. Memory stays bounded:
// each spec is synthesized, handed to fn, and dropped.
func (s *Snapshot) Each(fn func(*Spec) error) error {
	for r := 1; r <= s.g.counts.Total; r++ {
		if err := fn(s.g.specAt(r)); err != nil {
			return err
		}
	}
	return nil
}

// ByPackage synthesizes the spec for pkg, or nil when the snapshot does
// not contain it.
func (s *Snapshot) ByPackage(pkg string) *Spec {
	r, ok := s.rankOf(pkg)
	if !ok {
		return nil
	}
	spec := s.At(r)
	if spec == nil || spec.Package != pkg {
		// The rank parsed but regenerates under a different name (e.g. a
		// genapp rank that actually belongs to the long tail): unknown.
		return nil
	}
	return spec
}

// rankOf recovers the download rank encoded in a package name.
func (s *Snapshot) rankOf(pkg string) (int, bool) {
	if r, ok := s.namedRank[pkg]; ok {
		return r, true
	}
	for _, prefix := range [...]string{"com.genapp", "com.longtail", "org.offplay"} {
		rest, ok := strings.CutPrefix(pkg, prefix)
		if !ok {
			continue
		}
		if len(rest) != 7 {
			return 0, false
		}
		r, err := strconv.Atoi(rest)
		if err != nil || r < 1 {
			return 0, false
		}
		return r, true
	}
	return 0, false
}
