package corpus

import (
	"repro/internal/sdkindex"
)

// Dataset funnel constants, straight from Table 2. Scale divides all of
// them when generating a reduced corpus.
const (
	PaperAndrozooApps = 6507222
	PaperOnPlayApps   = 2454488
	PaperPopularApps  = 198324 // 100K+ downloads
	PaperFilteredApps = 146800 // 100K+ downloads and updated after 2021
	PaperBrokenAPKs   = 242
	PaperAnalyzedApps = PaperFilteredApps - PaperBrokenAPKs // 146,558
)

// Headline app-level adoption rates (§4.1 / Table 7), as fractions of the
// analyzed population.
const (
	paperWebViewRate = 81720.0 / PaperAnalyzedApps // ~55.76%
	paperCTRate      = 29130.0 / PaperAnalyzedApps // ~19.88%
)

// playCategory is one Play Store category with its share of the analyzed
// population and its SDK-type affinity multipliers (Figure 3: gaming
// categories lean on CT social SDKs, education on WebView payment SDKs and
// away from WebView ad SDKs).
type playCategory struct {
	Name   string
	Weight float64
	// Affinity multiplies the inclusion probability of SDKs of a given
	// category; missing keys default to 1.0.
	WVAffinity map[sdkindex.Category]float64
	CTAffinity map[sdkindex.Category]float64
}

var playCategories = []playCategory{
	{Name: "Puzzle", Weight: 0.06,
		WVAffinity: map[sdkindex.Category]float64{sdkindex.Advertising: 1.25},
		CTAffinity: map[sdkindex.Category]float64{sdkindex.Social: 1.45}},
	{Name: "Simulation", Weight: 0.05,
		WVAffinity: map[sdkindex.Category]float64{sdkindex.Advertising: 1.25},
		CTAffinity: map[sdkindex.Category]float64{sdkindex.Social: 1.40}},
	{Name: "Action", Weight: 0.05,
		WVAffinity: map[sdkindex.Category]float64{sdkindex.Advertising: 1.20},
		CTAffinity: map[sdkindex.Category]float64{sdkindex.Social: 1.40}},
	{Name: "Arcade", Weight: 0.05,
		WVAffinity: map[sdkindex.Category]float64{sdkindex.Advertising: 1.20},
		CTAffinity: map[sdkindex.Category]float64{sdkindex.Social: 1.35}},
	{Name: "Education", Weight: 0.08,
		WVAffinity: map[sdkindex.Category]float64{
			sdkindex.Advertising: 0.72, // 44% vs the corpus-wide ~61% of WV apps
			sdkindex.Payments:    2.60, // ~16.2% payment-SDK share
		}},
	{Name: "Entertainment", Weight: 0.08},
	{Name: "Tools", Weight: 0.10,
		WVAffinity: map[sdkindex.Category]float64{sdkindex.Engagement: 1.10}},
	{Name: "Social", Weight: 0.04,
		CTAffinity: map[sdkindex.Category]float64{sdkindex.Social: 1.20}},
	{Name: "Communication", Weight: 0.04},
	{Name: "Finance", Weight: 0.05,
		WVAffinity: map[sdkindex.Category]float64{
			sdkindex.Payments:       2.2,
			sdkindex.Authentication: 1.8,
			sdkindex.Advertising:    0.6,
		},
		CTAffinity: map[sdkindex.Category]float64{sdkindex.Authentication: 1.5}},
	{Name: "Shopping", Weight: 0.05,
		WVAffinity: map[sdkindex.Category]float64{sdkindex.Payments: 2.0}},
	{Name: "Music & Audio", Weight: 0.05},
	{Name: "News & Magazines", Weight: 0.04},
	{Name: "Productivity", Weight: 0.06},
	{Name: "Lifestyle", Weight: 0.06},
	{Name: "Health & Fitness", Weight: 0.05},
	{Name: "Travel & Local", Weight: 0.04},
	{Name: "Photography", Weight: 0.05},
}

// methodProfile maps a WebView API method to the probability that one app's
// copy of an SDK (or the app's own code) calls it. Profiles are calibrated
// to Figure 4's heatmap and Table 7's marginals.
type methodProfile map[string]float64

var categoryProfiles = map[sdkindex.Category]methodProfile{
	sdkindex.Advertising: {
		"loadUrl": 0.97, "addJavascriptInterface": 0.46, "loadDataWithBaseURL": 0.55,
		"evaluateJavascript": 0.32, "removeJavascriptInterface": 0.25, "loadData": 0.08, "postUrl": 0.05,
	},
	sdkindex.Engagement: {
		"loadUrl": 0.90, "addJavascriptInterface": 0.50, "loadDataWithBaseURL": 0.30,
		"evaluateJavascript": 0.38, "removeJavascriptInterface": 0.30, "loadData": 0.05, "postUrl": 0.02,
	},
	sdkindex.DevTools: {
		"loadUrl": 0.98, "addJavascriptInterface": 0.35, "loadDataWithBaseURL": 0.25,
		"evaluateJavascript": 0.30, "removeJavascriptInterface": 0.15, "loadData": 0.10, "postUrl": 0.05,
	},
	sdkindex.Payments: {
		"loadUrl": 0.95, "addJavascriptInterface": 0.485, "loadDataWithBaseURL": 0.30,
		"evaluateJavascript": 0.35, "removeJavascriptInterface": 0.20, "loadData": 0.08, "postUrl": 0.30,
	},
	sdkindex.UserSupport: {
		"loadUrl": 0.459, "addJavascriptInterface": 0.40, "loadDataWithBaseURL": 1.00,
		"evaluateJavascript": 0.25, "removeJavascriptInterface": 0.20, "loadData": 0.10, "postUrl": 0.02,
	},
	sdkindex.Social: {
		"loadUrl": 0.96, "addJavascriptInterface": 0.30, "loadDataWithBaseURL": 0.20,
		"evaluateJavascript": 0.25, "removeJavascriptInterface": 0.15, "loadData": 0.05, "postUrl": 0.05,
	},
	sdkindex.Utility: {
		"loadUrl": 0.90, "addJavascriptInterface": 0.35, "loadDataWithBaseURL": 0.50,
		"evaluateJavascript": 0.25, "removeJavascriptInterface": 0.10, "loadData": 0.15, "postUrl": 0.02,
	},
	sdkindex.Authentication: {
		"loadUrl": 0.97, "addJavascriptInterface": 0.30, "loadDataWithBaseURL": 0.15,
		"evaluateJavascript": 0.30, "removeJavascriptInterface": 0.20, "loadData": 0.03, "postUrl": 0.10,
	},
	sdkindex.Hybrid: {
		"loadUrl": 0.95, "addJavascriptInterface": 0.70, "loadDataWithBaseURL": 0.60,
		"evaluateJavascript": 0.50, "removeJavascriptInterface": 0.30, "loadData": 0.20, "postUrl": 0.05,
	},
	sdkindex.Unknown: {
		"loadUrl": 0.90, "addJavascriptInterface": 0.40, "loadDataWithBaseURL": 0.30,
		"evaluateJavascript": 0.30, "removeJavascriptInterface": 0.20, "loadData": 0.10, "postUrl": 0.05,
	},
}

// ownProfile drives first-party (non-SDK) WebView code; tuned so that the
// all-apps marginals land on Table 7.
var ownProfile = methodProfile{
	"loadUrl": 0.95, "addJavascriptInterface": 0.24, "loadDataWithBaseURL": 0.26,
	"evaluateJavascript": 0.14, "removeJavascriptInterface": 0.11, "loadData": 0.06, "postUrl": 0.04,
}
