package corpus

// The 11 named top apps whose In-App-Browser behaviour the paper studies
// (Table 8 plus Discord, the lone CT-based IAB). They occupy the top
// download ranks of every generated corpus, with their real download counts
// and runtime behaviours.

// NamedApp fixes one real-world app's identity and dynamic behaviour.
type NamedApp struct {
	Package   string
	Title     string
	Category  string
	Downloads int64
	Dynamic   Dynamic
	// OwnMethods lists the WebView methods the app's own IAB code calls;
	// IAB apps necessarily use WebViews first-party.
	OwnMethods []string
	OwnCT      bool
}

// NamedApps lists the fixed top-ranked apps in download order.
var NamedApps = []NamedApp{
	{
		Package: "com.facebook.katana", Title: "Facebook", Category: "Social", Downloads: 8_400_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "Post", LinkOpens: LinkWebView,
			Injection: InjectMetaCommerce, UsesRedirector: "lm.facebook.com/l.php",
		},
		OwnMethods: []string{"loadUrl", "evaluateJavascript", "addJavascriptInterface"},
	},
	{
		Package: "com.instagram.android", Title: "Instagram", Category: "Social", Downloads: 4_600_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "DM", LinkOpens: LinkWebView,
			Injection: InjectMetaCommerce, UsesRedirector: "l.instagram.com",
		},
		OwnMethods: []string{"loadUrl", "evaluateJavascript", "addJavascriptInterface"},
	},
	{
		Package: "com.snapchat.android", Title: "Snapchat", Category: "Social", Downloads: 2_340_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "Story", LinkOpens: LinkWebView,
			Injection: InjectNone,
		},
		OwnMethods: []string{"loadUrl"},
	},
	{
		Package: "com.twitter.android", Title: "Twitter", Category: "Social", Downloads: 1_380_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "DM", LinkOpens: LinkWebView,
			Injection: InjectNone, UsesRedirector: "t.co",
		},
		OwnMethods: []string{"loadUrl"},
	},
	{
		Package: "com.linkedin.android", Title: "LinkedIn", Category: "Social", Downloads: 1_200_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "Post", LinkOpens: LinkWebView,
			Injection: InjectRadar,
		},
		OwnMethods: []string{"loadUrl", "evaluateJavascript"},
	},
	{
		Package: "com.pinterest", Title: "Pinterest", Category: "Lifestyle", Downloads: 840_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "DM", LinkOpens: LinkWebView,
			Injection: InjectObfuscated,
		},
		OwnMethods: []string{"loadUrl", "addJavascriptInterface"},
	},
	{
		Package: "com.discord", Title: "Discord", Category: "Communication", Downloads: 551_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "DM", LinkOpens: LinkCustomTab,
		},
		OwnCT: true,
	},
	{
		Package: "in.mohalla.video", Title: "Moj", Category: "Entertainment", Downloads: 289_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "Profile", LinkOpens: LinkWebView,
			Injection: InjectAdsGoogle,
		},
		OwnMethods: []string{"loadUrl", "evaluateJavascript", "addJavascriptInterface"},
	},
	{
		Package: "kik.android", Title: "Kik", Category: "Communication", Downloads: 176_500_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "DM", LinkOpens: LinkWebView,
			Injection: InjectAdsMulti,
		},
		OwnMethods: []string{"loadUrl", "evaluateJavascript", "addJavascriptInterface"},
	},
	{
		Package: "com.reddit.frontpage", Title: "Reddit", Category: "Social", Downloads: 124_000_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "DM", LinkOpens: LinkWebView,
			Injection: InjectNone,
		},
		OwnMethods: []string{"loadUrl"},
	},
	{
		Package: "io.chingari.app", Title: "Chingari", Category: "Entertainment", Downloads: 97_500_000,
		Dynamic: Dynamic{
			HasUserContent: true, LinkSurface: "Bio", LinkOpens: LinkWebView,
			Injection: InjectAdsGoogle,
		},
		OwnMethods: []string{"loadUrl", "evaluateJavascript", "addJavascriptInterface"},
	},
}

// Table 6 composition of the top 1K apps beyond the named ones. The counts
// sum with the 11 named apps to exactly 1000.
const (
	top1kBrowserLinkApps = 27  // users post links; link opens in a browser
	top1kNoUserContent   = 905 // predominantly utility apps
	top1kBrowserApps     = 9   // the app itself is a browser
	top1kRequiresPhone   = 24  // unclassifiable: needs a phone number
	top1kIncompatible    = 22  // unclassifiable: app incompatibility error
	top1kPaidOnly        = 2   // unclassifiable: needs a paid account
)
