package corpus

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/sdkindex"
)

// Config controls corpus generation.
type Config struct {
	// Seed drives every random choice; identical configs generate
	// identical corpora.
	Seed int64
	// Scale divides the paper's population sizes: Scale 1 reproduces the
	// full 6.5M-app AndroZoo snapshot (memory-hungry), Scale 100 a 65K-app
	// corpus. Must be >= 1.
	Scale int
	// ObfuscationRate is the fraction of analyzable apps whose WebView
	// calls are routed through reflection, hiding them from static
	// analysis — the §3.1.5 limitation ("our method may fall short in
	// detecting obfuscated method calls"). Zero (the default) matches the
	// paper's observation that Play Store obfuscation is uncommon.
	ObfuscationRate float64
}

// Counts is the dataset funnel (Table 2) at a given scale.
type Counts struct {
	Total    int // Play Store apps in the AndroZoo snapshot
	OnPlay   int // apps found on the Play Store
	Popular  int // 100K+ downloads
	Filtered int // 100K+ downloads and updated after the cutoff
	Broken   int // APKs that fail to parse
	Analyzed int // Filtered - Broken
}

// ScaledCounts returns the funnel at the given scale.
func ScaledCounts(scale int) Counts {
	div := func(n int) int {
		v := (n + scale/2) / scale
		if v < 1 {
			v = 1
		}
		return v
	}
	c := Counts{
		Total:    div(PaperAndrozooApps),
		OnPlay:   div(PaperOnPlayApps),
		Popular:  div(PaperPopularApps),
		Filtered: div(PaperFilteredApps),
		Broken:   (PaperBrokenAPKs + scale/2) / scale,
	}
	if c.Filtered > c.Popular {
		c.Filtered = c.Popular
	}
	if c.Broken > c.Filtered-1 {
		c.Broken = 0
	}
	c.Analyzed = c.Filtered - c.Broken
	return c
}

// UpdateCutoff is the maintenance filter: apps must have been updated after
// this date (§3.1.1).
var UpdateCutoff = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)

// MinDownloads is the popularity filter.
const MinDownloads = 100_000

// Corpus is a generated app population, ordered with on-Play apps first by
// descending downloads, then off-Play apps.
type Corpus struct {
	Config Config
	Counts Counts
	Apps   []*Spec
}

// Generate builds the corpus for the configuration. Generation is
// deterministic in cfg.
func Generate(cfg Config) (*Corpus, error) {
	if cfg.Scale < 1 {
		return nil, fmt.Errorf("corpus: scale %d < 1", cfg.Scale)
	}
	counts := ScaledCounts(cfg.Scale)
	c := &Corpus{Config: cfg, Counts: counts}
	c.Apps = make([]*Spec, 0, counts.OnPlay+64)

	idx := sdkindex.Default()
	// The dynamic-study prefix: the top-1K apps (or the whole filtered set
	// when the scale shrinks it below 1000). Everything in the prefix is
	// kept updated so it survives the maintenance filter.
	topK := counts.Filtered
	if topK > 1000 {
		topK = 1000
	}
	behaviors := topBehaviors(cfg.Seed, topK)

	// On-Play apps by download rank. The first Popular ranks pass the
	// download filter; the update filter is applied by exact Bresenham
	// stride so the funnel counts match ScaledCounts precisely.
	beyondPopular := counts.Popular - topK
	beyondFiltered := counts.Filtered - topK
	if beyondFiltered < 0 {
		beyondFiltered = 0
	}
	updatedSoFar := 0
	filteredSeen := 0
	brokenAssigned := 0
	brokenStride := 0
	if counts.Broken > 0 {
		brokenStride = (counts.Filtered - topK) / counts.Broken
		if brokenStride < 1 {
			brokenStride = 1
		}
	}

	for r := 1; r <= counts.OnPlay; r++ {
		spec := &Spec{OnPlayStore: true}
		switch {
		case r <= len(NamedApps) && r <= topK:
			n := NamedApps[r-1]
			spec.Package, spec.Title = n.Package, n.Title
			spec.PlayCategory = n.Category
			spec.Downloads = n.Downloads
			spec.LastUpdated = UpdateCutoff.AddDate(1, 6, 0)
			spec.Dynamic = n.Dynamic
			spec.OwnMethods = append(spec.OwnMethods, n.OwnMethods...)
			spec.OwnCT = n.OwnCT
		case r <= counts.Popular:
			spec.Package = fmt.Sprintf("com.genapp%07d", r)
			spec.Title = fmt.Sprintf("Gen App %d", r)
			spec.Downloads = scaledDownloads(r, topK, cfg.Scale)
			if r <= topK {
				spec.Dynamic = behaviors[r-1]
				spec.LastUpdated = UpdateCutoff.AddDate(1, 0, r%300)
			} else {
				// Exact-count update filter over the remaining popular apps.
				k := r - topK
				updated := beyondPopular > 0 &&
					(k*beyondFiltered)/beyondPopular > ((k-1)*beyondFiltered)/beyondPopular
				if updated {
					spec.LastUpdated = UpdateCutoff.AddDate(0, 6, r%500)
					updatedSoFar++
				} else {
					spec.LastUpdated = UpdateCutoff.AddDate(-2, 0, -(r % 300))
				}
			}
		default:
			spec.Package = fmt.Sprintf("com.longtail%07d", r)
			spec.Title = fmt.Sprintf("Long Tail %d", r)
			spec.Downloads = longTailDownloads(r, counts.OnPlay)
			spec.LastUpdated = UpdateCutoff.AddDate(-1, 0, -(r % 700))
		}

		if spec.Eligible(MinDownloads, UpdateCutoff) {
			filteredSeen++
			// Named top apps stay clear (the dynamic study probes their
			// behaviour); any other app may ship obfuscated.
			if cfg.ObfuscationRate > 0 && r > len(NamedApps) &&
				appRNG(cfg.Seed, spec.Package, "obfuscate").Float64() < cfg.ObfuscationRate {
				spec.Obfuscated = true
			}
			// Mark broken APKs at a fixed stride, skipping the dynamic
			// top apps so the semi-manual study always installs cleanly.
			if brokenStride > 0 && r > topK && brokenAssigned < counts.Broken &&
				(filteredSeen-topK) > 0 && (filteredSeen-topK)%brokenStride == 0 {
				spec.Broken = true
				brokenAssigned++
			}
			assignStatic(spec, idx, cfg.Seed)
			assignMisconfigs(spec, cfg.Seed)
			assignEndpoints(spec, cfg.Seed)
		}
		c.Apps = append(c.Apps, spec)
	}

	// Off-Play apps: present in AndroZoo, absent from the Play Store.
	for r := counts.OnPlay + 1; r <= counts.Total; r++ {
		c.Apps = append(c.Apps, &Spec{
			Package: fmt.Sprintf("org.offplay%07d", r),
			Title:   fmt.Sprintf("Off Play %d", r),
		})
	}
	return c, nil
}

// Filtered returns the apps passing the paper's selection filter, in rank
// order (the analysis population plus broken APKs).
func (c *Corpus) Filtered() []*Spec {
	var out []*Spec
	for _, s := range c.Apps {
		if s.Eligible(MinDownloads, UpdateCutoff) {
			out = append(out, s)
		}
	}
	return out
}

// Top returns the n highest-download filtered apps.
func (c *Corpus) Top(n int) []*Spec {
	f := c.Filtered()
	if n > len(f) {
		n = len(f)
	}
	return f[:n]
}

// AppByPackage finds a spec by package name, or nil.
func (c *Corpus) AppByPackage(pkg string) *Spec {
	for _, s := range c.Apps {
		if s.Package == pkg {
			return s
		}
	}
	return nil
}

// scaledDownloads maps a reduced-corpus rank to a paper-scale rank and
// evaluates the install-count model there, clamped to the popularity band.
func scaledDownloads(r, topK, scale int) int64 {
	paperRank := r
	if r > topK {
		paperRank = topK + (r-topK)*scale
	}
	d := downloadsBand(paperRank)
	if d < MinDownloads {
		d = MinDownloads
	}
	return d
}

// downloadsBand implements the piecewise install model: the named top apps'
// real counts at ranks 1-11, a flat 97.4M→86M band through rank 1000 (the
// paper notes every top-1K app has ≥86M installs), then a power-law decay
// hitting the 100K threshold at the paper's popular-app count.
func downloadsBand(rank int) int64 {
	if rank <= len(NamedApps) {
		return NamedApps[rank-1].Downloads
	}
	if rank <= 1000 {
		frac := float64(rank-len(NamedApps)) / float64(1000-len(NamedApps))
		return int64(97_400_000 - frac*(97_400_000-86_000_000))
	}
	// Geometric interpolation 86M → 100K over ranks 1000..PaperPopularApps.
	frac := float64(rank-1000) / float64(PaperPopularApps-1000)
	if frac > 1 {
		frac = 1
	}
	return int64(86_000_000 * math.Pow(100_000.0/86_000_000.0, frac))
}

func longTailDownloads(r, onPlay int) int64 {
	// Below the popularity threshold: 99,999 down to ~500.
	span := onPlay - r + 1
	d := int64(500 + span%99_000)
	if d >= MinDownloads {
		d = MinDownloads - 1
	}
	return d
}

// appRNG derives a per-app random stream independent of generation order.
func appRNG(seed int64, pkg string, salt string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, pkg, salt)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// pickPlayCategory draws a Play category from the weighted list.
func pickPlayCategory(rng *rand.Rand) playCategory {
	total := 0.0
	for _, pc := range playCategories {
		total += pc.Weight
	}
	x := rng.Float64() * total
	for _, pc := range playCategories {
		x -= pc.Weight
		if x <= 0 {
			return pc
		}
	}
	return playCategories[len(playCategories)-1]
}

func playCategoryByName(name string) playCategory {
	for _, pc := range playCategories {
		if pc.Name == name {
			return pc
		}
	}
	return playCategory{Name: name, Weight: 0}
}

// PlayCategories lists the modelled Play Store categories.
func PlayCategories() []string {
	out := make([]string, len(playCategories))
	for i, pc := range playCategories {
		out[i] = pc.Name
	}
	return out
}
