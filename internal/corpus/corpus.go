package corpus

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/sdkindex"
)

// Config controls corpus generation.
type Config struct {
	// Seed drives every random choice; identical configs generate
	// identical corpora.
	Seed int64
	// Scale divides the paper's population sizes: Scale 1 reproduces the
	// full 6.5M-app AndroZoo snapshot (memory-hungry), Scale 100 a 65K-app
	// corpus. Must be >= 1.
	Scale int
	// ObfuscationRate is the fraction of analyzable apps whose WebView
	// calls are routed through reflection, hiding them from static
	// analysis — the §3.1.5 limitation ("our method may fall short in
	// detecting obfuscated method calls"). Zero (the default) matches the
	// paper's observation that Play Store obfuscation is uncommon.
	ObfuscationRate float64
}

// Counts is the dataset funnel (Table 2) at a given scale.
type Counts struct {
	Total    int // Play Store apps in the AndroZoo snapshot
	OnPlay   int // apps found on the Play Store
	Popular  int // 100K+ downloads
	Filtered int // 100K+ downloads and updated after the cutoff
	Broken   int // APKs that fail to parse
	Analyzed int // Filtered - Broken
}

// ScaledCounts returns the funnel at the given scale.
func ScaledCounts(scale int) Counts {
	div := func(n int) int {
		v := (n + scale/2) / scale
		if v < 1 {
			v = 1
		}
		return v
	}
	c := Counts{
		Total:    div(PaperAndrozooApps),
		OnPlay:   div(PaperOnPlayApps),
		Popular:  div(PaperPopularApps),
		Filtered: div(PaperFilteredApps),
		Broken:   (PaperBrokenAPKs + scale/2) / scale,
	}
	if c.Filtered > c.Popular {
		c.Filtered = c.Popular
	}
	if c.Broken > c.Filtered-1 {
		c.Broken = 0
	}
	c.Analyzed = c.Filtered - c.Broken
	return c
}

// UpdateCutoff is the maintenance filter: apps must have been updated after
// this date (§3.1.1).
var UpdateCutoff = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)

// MinDownloads is the popularity filter.
const MinDownloads = 100_000

// Corpus is a generated app population, ordered with on-Play apps first by
// descending downloads, then off-Play apps.
type Corpus struct {
	Config Config
	Counts Counts
	Apps   []*Spec

	idxOnce sync.Once
	byPkg   map[string]*Spec
}

// Generate builds the corpus for the configuration, materializing every
// spec. Generation is deterministic in cfg. For paper-scale corpora —
// millions of snapshot entries — prefer NewSnapshot, which synthesizes the
// identical specs on demand with bounded memory.
func Generate(cfg Config) (*Corpus, error) {
	g, err := newGenerator(cfg)
	if err != nil {
		return nil, err
	}
	c := &Corpus{Config: cfg, Counts: g.counts}
	c.Apps = make([]*Spec, 0, g.counts.Total)
	for r := 1; r <= g.counts.Total; r++ {
		c.Apps = append(c.Apps, g.specAt(r))
	}
	return c, nil
}

// generator synthesizes specs rank by rank. Every piece of the original
// generation loop's running state (the Bresenham update filter, the
// broken-APK stride, the obfuscation draw) has a closed form in the rank,
// so any spec can be produced on demand without materializing its
// predecessors — the foundation of the bounded-memory Snapshot view.
type generator struct {
	cfg    Config
	counts Counts
	idx    *sdkindex.Index
	// topK is the dynamic-study prefix: the top-1K apps (or the whole
	// filtered set when the scale shrinks it below 1000). Everything in
	// the prefix is kept updated so it survives the maintenance filter.
	topK      int
	behaviors []Dynamic
	// beyondPopular/beyondFiltered drive the exact-count update filter
	// over the popular apps beyond the prefix.
	beyondPopular  int
	beyondFiltered int
	brokenStride   int
}

func newGenerator(cfg Config) (*generator, error) {
	if cfg.Scale < 1 {
		return nil, fmt.Errorf("corpus: scale %d < 1", cfg.Scale)
	}
	g := &generator{cfg: cfg, counts: ScaledCounts(cfg.Scale), idx: sdkindex.Default()}
	g.topK = g.counts.Filtered
	if g.topK > 1000 {
		g.topK = 1000
	}
	g.behaviors = topBehaviors(cfg.Seed, g.topK)
	g.beyondPopular = g.counts.Popular - g.topK
	g.beyondFiltered = g.counts.Filtered - g.topK
	if g.beyondFiltered < 0 {
		g.beyondFiltered = 0
	}
	if g.counts.Broken > 0 {
		g.brokenStride = (g.counts.Filtered - g.topK) / g.counts.Broken
		if g.brokenStride < 1 {
			g.brokenStride = 1
		}
	}
	return g, nil
}

// filteredBeyond counts how many of the first k popular apps beyond the
// dynamic prefix pass the update filter (exact Bresenham stride, so the
// funnel counts match ScaledCounts precisely).
func (g *generator) filteredBeyond(k int) int {
	if g.beyondPopular <= 0 {
		return 0
	}
	return k * g.beyondFiltered / g.beyondPopular
}

// eligibleBeyondTopK is the number of filter-passing apps beyond the
// dynamic prefix among ranks 1..r — the closed form of the generation
// loop's filteredSeen-topK counter.
func (g *generator) eligibleBeyondTopK(r int) int {
	if r <= g.topK {
		return 0
	}
	return g.filteredBeyond(r - g.topK)
}

// specAt synthesizes the spec at 1-based download rank r (off-Play apps
// occupy the ranks past counts.OnPlay). specAt(r) is byte-identical to
// Generate(cfg).Apps[r-1].
func (g *generator) specAt(r int) *Spec {
	// Off-Play apps: present in AndroZoo, absent from the Play Store.
	if r > g.counts.OnPlay {
		return &Spec{
			Package: fmt.Sprintf("org.offplay%07d", r),
			Title:   fmt.Sprintf("Off Play %d", r),
		}
	}
	spec := &Spec{OnPlayStore: true}
	switch {
	case r <= len(NamedApps) && r <= g.topK:
		n := NamedApps[r-1]
		spec.Package, spec.Title = n.Package, n.Title
		spec.PlayCategory = n.Category
		spec.Downloads = n.Downloads
		spec.LastUpdated = UpdateCutoff.AddDate(1, 6, 0)
		spec.Dynamic = n.Dynamic
		spec.OwnMethods = append(spec.OwnMethods, n.OwnMethods...)
		spec.OwnCT = n.OwnCT
	case r <= g.counts.Popular:
		spec.Package = fmt.Sprintf("com.genapp%07d", r)
		spec.Title = fmt.Sprintf("Gen App %d", r)
		spec.Downloads = scaledDownloads(r, g.topK, g.cfg.Scale)
		if r <= g.topK {
			spec.Dynamic = g.behaviors[r-1]
			spec.LastUpdated = UpdateCutoff.AddDate(1, 0, r%300)
		} else {
			// Exact-count update filter over the remaining popular apps.
			k := r - g.topK
			if g.filteredBeyond(k) > g.filteredBeyond(k-1) {
				spec.LastUpdated = UpdateCutoff.AddDate(0, 6, r%500)
			} else {
				spec.LastUpdated = UpdateCutoff.AddDate(-2, 0, -(r % 300))
			}
		}
	default:
		spec.Package = fmt.Sprintf("com.longtail%07d", r)
		spec.Title = fmt.Sprintf("Long Tail %d", r)
		spec.Downloads = longTailDownloads(r, g.counts.OnPlay)
		spec.LastUpdated = UpdateCutoff.AddDate(-1, 0, -(r % 700))
	}

	if spec.Eligible(MinDownloads, UpdateCutoff) {
		// Named top apps stay clear (the dynamic study probes their
		// behaviour); any other app may ship obfuscated.
		if g.cfg.ObfuscationRate > 0 && r > len(NamedApps) &&
			appRNG(g.cfg.Seed, spec.Package, "obfuscate").Float64() < g.cfg.ObfuscationRate {
			spec.Obfuscated = true
		}
		// Mark broken APKs at a fixed stride, skipping the dynamic
		// top apps so the semi-manual study always installs cleanly.
		if e := g.eligibleBeyondTopK(r); g.brokenStride > 0 && e > 0 &&
			e%g.brokenStride == 0 && e/g.brokenStride <= g.counts.Broken {
			spec.Broken = true
		}
		assignStatic(spec, g.idx, g.cfg.Seed)
		assignMisconfigs(spec, g.cfg.Seed)
		assignEndpoints(spec, g.cfg.Seed)
	}
	return spec
}

// Filtered returns the apps passing the paper's selection filter, in rank
// order (the analysis population plus broken APKs).
func (c *Corpus) Filtered() []*Spec {
	var out []*Spec
	for _, s := range c.Apps {
		if s.Eligible(MinDownloads, UpdateCutoff) {
			out = append(out, s)
		}
	}
	return out
}

// Top returns the n highest-download filtered apps.
func (c *Corpus) Top(n int) []*Spec {
	f := c.Filtered()
	if n > len(f) {
		n = len(f)
	}
	return f[:n]
}

// AppByPackage finds a spec by package name, or nil.
func (c *Corpus) AppByPackage(pkg string) *Spec {
	c.idxOnce.Do(func() {
		c.byPkg = make(map[string]*Spec, len(c.Apps))
		for _, s := range c.Apps {
			c.byPkg[s.Package] = s
		}
	})
	return c.byPkg[pkg]
}

// ByPackage implements Source over the materialized corpus.
func (c *Corpus) ByPackage(pkg string) *Spec { return c.AppByPackage(pkg) }

// Each implements Source: specs in snapshot (download-rank) order.
func (c *Corpus) Each(fn func(*Spec) error) error {
	for _, s := range c.Apps {
		if err := fn(s); err != nil {
			return err
		}
	}
	return nil
}

// Total reports the number of repository snapshot entries.
func (c *Corpus) Total() int { return c.Counts.Total }

// scaledDownloads maps a reduced-corpus rank to a paper-scale rank and
// evaluates the install-count model there, clamped to the popularity band.
func scaledDownloads(r, topK, scale int) int64 {
	paperRank := r
	if r > topK {
		paperRank = topK + (r-topK)*scale
	}
	d := downloadsBand(paperRank)
	if d < MinDownloads {
		d = MinDownloads
	}
	return d
}

// downloadsBand implements the piecewise install model: the named top apps'
// real counts at ranks 1-11, a flat 97.4M→86M band through rank 1000 (the
// paper notes every top-1K app has ≥86M installs), then a power-law decay
// hitting the 100K threshold at the paper's popular-app count.
func downloadsBand(rank int) int64 {
	if rank <= len(NamedApps) {
		return NamedApps[rank-1].Downloads
	}
	if rank <= 1000 {
		frac := float64(rank-len(NamedApps)) / float64(1000-len(NamedApps))
		return int64(97_400_000 - frac*(97_400_000-86_000_000))
	}
	// Geometric interpolation 86M → 100K over ranks 1000..PaperPopularApps.
	frac := float64(rank-1000) / float64(PaperPopularApps-1000)
	if frac > 1 {
		frac = 1
	}
	return int64(86_000_000 * math.Pow(100_000.0/86_000_000.0, frac))
}

func longTailDownloads(r, onPlay int) int64 {
	// Below the popularity threshold: 99,999 down to ~500.
	span := onPlay - r + 1
	d := int64(500 + span%99_000)
	if d >= MinDownloads {
		d = MinDownloads - 1
	}
	return d
}

// appRNG derives a per-app random stream independent of generation order.
func appRNG(seed int64, pkg string, salt string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, pkg, salt)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// pickPlayCategory draws a Play category from the weighted list.
func pickPlayCategory(rng *rand.Rand) playCategory {
	total := 0.0
	for _, pc := range playCategories {
		total += pc.Weight
	}
	x := rng.Float64() * total
	for _, pc := range playCategories {
		x -= pc.Weight
		if x <= 0 {
			return pc
		}
	}
	return playCategories[len(playCategories)-1]
}

func playCategoryByName(name string) playCategory {
	for _, pc := range playCategories {
		if pc.Name == name {
			return pc
		}
	}
	return playCategory{Name: name, Weight: 0}
}

// PlayCategories lists the modelled Play Store categories.
func PlayCategories() []string {
	out := make([]string, len(playCategories))
	for i, pc := range playCategories {
		out[i] = pc.Name
	}
	return out
}
