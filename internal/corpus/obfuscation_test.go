package corpus

import (
	"strings"
	"testing"

	"repro/internal/apk"
	"repro/internal/callgraph"
)

func TestObfuscationOffByDefault(t *testing.T) {
	c, err := Generate(Config{Seed: 1, Scale: 800})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Filtered() {
		if s.Obfuscated {
			t.Fatalf("%s obfuscated with rate 0", s.Package)
		}
	}
}

func TestObfuscatedCallsEvadeStaticAnalysis(t *testing.T) {
	c, err := Generate(Config{Seed: 1, Scale: 800, ObfuscationRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var obfWithWV, missed, checkedClear int
	for _, s := range c.Filtered() {
		if s.Broken || !s.UsesWebView() {
			continue
		}
		img, err := BuildAPK(s)
		if err != nil {
			t.Fatal(err)
		}
		a, err := apk.Open(img)
		if err != nil {
			t.Fatal(err)
		}
		g := callgraph.Build(a.Dex)
		excl := map[string]bool{}
		for _, dl := range a.Manifest.DeepLinkActivities() {
			excl[dl] = true
		}
		detected := g.AnalyzeUsage(excl).UsesWebView()
		if s.Obfuscated {
			obfWithWV++
			if !detected {
				missed++
			}
			// Reflection leaves only string constants behind; the dex must
			// still carry the planted method names as data, not as invoke
			// targets.
			for _, u := range s.SDKs {
				for _, m := range u.WebViewMethods {
					if !strings.Contains(string(img), m) {
						t.Errorf("%s: method-name string %q missing from obfuscated APK", s.Package, m)
					}
				}
			}
		} else {
			checkedClear++
			if !detected {
				t.Errorf("%s: unobfuscated app not detected", s.Package)
			}
		}
	}
	if obfWithWV == 0 || checkedClear == 0 {
		t.Fatalf("unbalanced sample: obf=%d clear=%d", obfWithWV, checkedClear)
	}
	// Apps whose ONLY WebView use is obfuscated must be missed; apps can
	// still be caught through a deep-link activity (excluded) — so demand
	// a substantial false-negative rate, not 100%.
	if missed == 0 {
		t.Errorf("static analysis detected all %d obfuscated apps — reflection not hiding calls", obfWithWV)
	}
	t.Logf("obfuscation recall gap: %d/%d obfuscated WebView apps missed", missed, obfWithWV)
}

func TestObfuscationDeterministic(t *testing.T) {
	a, _ := Generate(Config{Seed: 5, Scale: 1500, ObfuscationRate: 0.2})
	b, _ := Generate(Config{Seed: 5, Scale: 1500, ObfuscationRate: 0.2})
	fa, fb := a.Filtered(), b.Filtered()
	for i := range fa {
		if fa[i].Obfuscated != fb[i].Obfuscated {
			t.Fatalf("obfuscation assignment not deterministic at %s", fa[i].Package)
		}
	}
}
