package corpus_test

// End-to-end lint ground truth: the corpus plants WebView misconfigurations
// per spec, the APK builder turns them into real decompilable code, and the
// webviewlint stage must rediscover exactly the planted set — no more (the
// safe variants and constant-URL loads must stay silent), no less.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/android"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/sdkindex"
	"repro/internal/webviewlint"
)

func has(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// attrOf mirrors the engine's attribution: the SDK name of the longest
// catalog prefix of the class's package, or "" for first-party/unlabeled.
func attrOf(idx *sdkindex.Index, class string) string {
	pkg := class
	if i := strings.LastIndexByte(pkg, '.'); i >= 0 {
		pkg = pkg[:i]
	}
	if sdk, ok := idx.Lookup(pkg); ok && !sdk.Excluded {
		return sdk.Name
	}
	return ""
}

// expectedFindings derives the exact (rule, attribution) multiset the lint
// stage must report for a spec, from the planted ground truth alone.
func expectedFindings(idx *sdkindex.Index, s *corpus.Spec) map[string]int {
	exp := make(map[string]int)
	key := func(rule, sdk string) string { return rule + "|" + sdk }
	if s.Obfuscated {
		return exp
	}
	if len(s.OwnMethods) > 0 {
		for _, r := range s.Misconfigs {
			class := s.Package + ".web.WebActivity"
			switch r {
			case webviewlint.RuleSSLErrorProceed:
				class = s.Package + ".web.SslGuard"
			case webviewlint.RuleUnsafeLoadURL:
				class = s.Package + ".link.Router"
			}
			exp[key(r, attrOf(idx, class))]++
		}
		if has(s.OwnMethods, android.MethodAddJavascriptInterface) {
			exp[key(webviewlint.RuleJSInterface, attrOf(idx, s.Package+".web.WebActivity"))]++
		}
	}
	for _, use := range s.SDKs {
		if len(use.WebViewMethods) == 0 {
			continue
		}
		class := use.Package + ".internal.WebController"
		for _, r := range use.Misconfigs {
			exp[key(r, attrOf(idx, class))]++
		}
		if has(use.WebViewMethods, android.MethodAddJavascriptInterface) {
			exp[key(webviewlint.RuleJSInterface, attrOf(idx, class))]++
		}
	}
	return exp
}

func lintApp(t *testing.T, idx *sdkindex.Index, lint *webviewlint.Analyzer, s *corpus.Spec) []webviewlint.Finding {
	t.Helper()
	img, err := corpus.BuildAPK(s)
	if err != nil {
		t.Fatalf("BuildAPK(%s): %v", s.Package, err)
	}
	an, err := pipeline.AnalyzeAndLint(idx, lint, img)
	if err != nil {
		t.Fatalf("AnalyzeAndLint(%s): %v", s.Package, err)
	}
	return an.Lint
}

// TestLintGroundTruthEndToEnd builds every filtered app at a mid scale,
// runs the full analyze+lint path and checks the findings equal the
// planted ground truth app by app, then that every plantable rule has both
// positive and negative instances corpus-wide.
func TestLintGroundTruthEndToEnd(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 1000})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	idx := sdkindex.Default()
	lint, err := webviewlint.New(webviewlint.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	rulePos := make(map[string]int) // planted occurrences per rule
	ruleNeg := make(map[string]int) // WebView apps without the rule
	apps := 0
	for _, s := range c.Filtered() {
		if s.Broken {
			continue
		}
		apps++
		got := make(map[string]int)
		for _, f := range lintApp(t, idx, lint, s) {
			got[f.Rule+"|"+f.SDK]++
		}
		want := expectedFindings(idx, s)
		if len(want) == 0 {
			want = make(map[string]int)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: lint findings = %v, planted ground truth %v", s.Package, got, want)
		}
		if len(s.OwnMethods) > 0 && !s.Obfuscated {
			for _, pr := range plantableOwnRules(t) {
				if has(s.Misconfigs, pr) {
					rulePos[pr]++
				} else {
					ruleNeg[pr]++
				}
			}
		}
	}
	if apps < 50 {
		t.Fatalf("only %d analyzable apps at scale 1000; corpus too small for coverage checks", apps)
	}
	for _, pr := range plantableOwnRules(t) {
		if rulePos[pr] == 0 {
			t.Errorf("rule %s: no positive instance planted corpus-wide", pr)
		}
		if ruleNeg[pr] == 0 {
			t.Errorf("rule %s: no negative instance (WebView app without the rule)", pr)
		}
	}
}

// plantableOwnRules lists the rules the corpus can plant in first-party
// code; derived from the registry minus js-interface (emergent from the
// OwnMethods draw) so registry growth is flagged here.
func plantableOwnRules(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, r := range webviewlint.Rules() {
		if r.ID == webviewlint.RuleJSInterface {
			continue
		}
		out = append(out, r.ID)
	}
	if len(out) < 8 {
		t.Fatalf("registry shrank: %d plantable rules", len(out))
	}
	return out
}

// TestLintDeterministic rebuilds and re-lints the misconfiguration
// showcase apps several times and requires byte-identical findings.
func TestLintDeterministic(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 7, Scale: 2000})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	idx := sdkindex.Default()
	lint, err := webviewlint.New(webviewlint.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, pkg := range []string{"com.facebook.katana", "com.linkedin.android", "com.snapchat.android"} {
		s := c.AppByPackage(pkg)
		if s == nil {
			t.Fatalf("named app %s missing", pkg)
		}
		first := lintApp(t, idx, lint, s)
		if len(first) == 0 {
			t.Fatalf("%s: showcase app produced no findings", pkg)
		}
		for run := 1; run < 4; run++ {
			if again := lintApp(t, idx, lint, s); !reflect.DeepEqual(first, again) {
				t.Fatalf("%s: run %d findings differ:\n%v\nvs\n%v", pkg, run, first, again)
			}
		}
	}
}

// TestLintShowcaseCoversInterprocedural pins the hardest rule: the named
// showcase must produce unsafe-load-url findings located in the Router
// class, reached only through the call-graph edge from LinkOpener.
func TestLintShowcaseCoversInterprocedural(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 2000})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	idx := sdkindex.Default()
	lint, err := webviewlint.New(webviewlint.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := c.AppByPackage("com.instagram.android")
	if s == nil {
		t.Fatal("instagram missing from corpus")
	}
	found := false
	for _, f := range lintApp(t, idx, lint, s) {
		if f.Rule == webviewlint.RuleUnsafeLoadURL {
			found = true
			if want := "com.instagram.android.link.Router"; f.Class != want {
				t.Errorf("unsafe-load-url located in %s, want %s", f.Class, want)
			}
		}
	}
	if !found {
		t.Error("showcase unsafe-load-url finding missing")
	}
}

// TestObfuscatedAppsCarryNoMisconfigs: reflective apps hide their WebView
// surface, so the generator must not plant misconfigs and the lint stage
// must come back empty on them.
func TestObfuscatedAppsCarryNoMisconfigs(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 2000, ObfuscationRate: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	idx := sdkindex.Default()
	lint, err := webviewlint.New(webviewlint.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	checked := 0
	for _, s := range c.Filtered() {
		if !s.Obfuscated || s.Broken {
			continue
		}
		if len(s.Misconfigs) > 0 {
			t.Fatalf("%s: obfuscated app has planted misconfigs %v", s.Package, s.Misconfigs)
		}
		if checked < 10 { // lint a sample; building every APK is covered elsewhere
			if fs := lintApp(t, idx, lint, s); len(fs) != 0 {
				t.Errorf("%s: obfuscated app produced findings %v", s.Package, fs)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no obfuscated apps generated")
	}
}
