package corpus

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// TestSnapshotMatchesGenerate proves the streaming view synthesizes exactly
// the specs the materializing generator produces, rank for rank, at both the
// default fixture scale and the chaos-corpus scale.
func TestSnapshotMatchesGenerate(t *testing.T) {
	for _, scale := range []int{200, 2500} {
		scale := scale
		t.Run(fmt.Sprintf("scale%d", scale), func(t *testing.T) {
			cfg := Config{Seed: 1, Scale: scale}
			full, err := Generate(cfg)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			snap, err := NewSnapshot(cfg)
			if err != nil {
				t.Fatalf("NewSnapshot: %v", err)
			}
			if snap.Total() != full.Total() {
				t.Fatalf("Total: snapshot %d, generate %d", snap.Total(), full.Total())
			}
			if snap.Counts() != full.Counts {
				t.Fatalf("Counts: snapshot %+v, generate %+v", snap.Counts(), full.Counts)
			}
			for i, want := range full.Apps {
				r := i + 1
				got := snap.At(r)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("rank %d:\n  snapshot %+v\n  generate %+v", r, got, want)
				}
				// ByPackage must round-trip every package name.
				if by := snap.ByPackage(want.Package); !reflect.DeepEqual(by, want) {
					t.Fatalf("ByPackage(%q): got %+v, want %+v", want.Package, by, want)
				}
			}
			if snap.At(0) != nil || snap.At(snap.Total()+1) != nil {
				t.Fatal("At out of range should be nil")
			}
			if snap.ByPackage("com.nonexistent.app") != nil {
				t.Fatal("ByPackage of unknown package should be nil")
			}
			// A rank-encoded name whose rank regenerates under a different
			// prefix must not leak a mismatched spec.
			if s := snap.ByPackage("com.longtail0000001"); s != nil {
				t.Fatalf("ByPackage of misprefixed rank should be nil, got %+v", s)
			}
			// Each must stream the same sequence.
			r := 0
			err = snap.Each(func(s *Spec) error {
				if !reflect.DeepEqual(s, full.Apps[r]) {
					return fmt.Errorf("rank %d mismatch", r+1)
				}
				r++
				return nil
			})
			if err != nil {
				t.Fatalf("Each: %v", err)
			}
			if r != full.Total() {
				t.Fatalf("Each visited %d of %d", r, full.Total())
			}
		})
	}
}

// TestSnapshotEachStopsOnError checks error propagation from the callback.
func TestSnapshotEachStopsOnError(t *testing.T) {
	snap, err := NewSnapshot(Config{Seed: 1, Scale: 2500})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	n := 0
	if got := snap.Each(func(*Spec) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	}); got != boom {
		t.Fatalf("Each error: got %v, want %v", got, boom)
	}
	if n != 3 {
		t.Fatalf("Each visited %d entries after error, want 3", n)
	}
}

// TestSnapshotPaperScaleBoundedMemory streams through the entire eligible
// band of the full paper-scale snapshot (Scale 1: 6.5M repository entries,
// 146.8K filtered apps) and asserts the heap stays bounded — the point of
// the streaming generator is that paper scale costs kilobytes, not the
// ~gigabytes a materialized []*Spec would.
func TestSnapshotPaperScaleBoundedMemory(t *testing.T) {
	snap, err := NewSnapshot(Config{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := snap.Counts()
	if counts.Filtered != PaperFilteredApps {
		t.Fatalf("paper-scale filtered = %d, want %d", counts.Filtered, PaperFilteredApps)
	}
	if counts.Total != PaperAndrozooApps {
		t.Fatalf("paper-scale total = %d, want %d", counts.Total, PaperAndrozooApps)
	}

	// Cover every filtered (analyzable) app — they all live in the popular
	// band — plus a slice of the long tail. In short mode sample the same
	// band sparsely to keep the test fast.
	limit := counts.Popular + 1000
	if limit > counts.Total {
		limit = counts.Total
	}
	step := 1
	if testing.Short() {
		step = 97 // prime stride: still samples every branch of specAt
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	eligible := 0
	for r := 1; r <= limit; r += step {
		s := snap.At(r)
		if s == nil {
			t.Fatalf("rank %d: nil spec", r)
		}
		if s.Eligible(MinDownloads, UpdateCutoff) {
			eligible++
		}
	}
	if step == 1 && eligible != counts.Filtered {
		t.Fatalf("streamed %d eligible apps over the popular band, want the full funnel %d", eligible, counts.Filtered)
	}
	if eligible == 0 {
		t.Fatal("no eligible specs seen in paper-scale band")
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	const maxGrowth = 64 << 20 // 64 MiB: orders below materializing 6.5M specs
	if after.HeapAlloc > before.HeapAlloc && after.HeapAlloc-before.HeapAlloc > maxGrowth {
		t.Fatalf("heap grew %d bytes streaming paper-scale snapshot (limit %d)",
			after.HeapAlloc-before.HeapAlloc, uint64(maxGrowth))
	}
}
