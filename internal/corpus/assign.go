package corpus

import (
	"math/rand"
	"sort"

	"repro/internal/android"
	"repro/internal/sdkindex"
)

// Rates derived in DESIGN.md from Table 7: first-party (non-SDK) WebView and
// CT code rates chosen so that, combined with SDK-driven usage, overall
// adoption lands on 55.76% WebView / 19.88% CT. The overlap adjustments
// shrink per-category inclusion probabilities because the paper's category
// unions overlap (apps use SDKs of several categories) more than independent
// draws would produce.
const (
	ownWebViewRate  = 0.2932
	ownCTRate       = 0.0105
	deepLinkRate    = 0.12
	wvOverlapAdjust = 1.22
	ctOverlapAdjust = 0.855
)

// Web-adoption is correlated across surfaces: apps that embed web content
// tend to do so through both WebViews and CTs (the paper's 15% "both"
// exceeds the ~11% independence would give). A two-point per-app factor
// with mean 1 induces the needed positive correlation without shifting the
// marginals.
const (
	webbyHigh = 1.68
	webbyLow  = 0.32
)

// Affinity multipliers are normalised so their population-weighted mean is
// 1: Play-category affinities shift adoption between categories without
// changing the corpus-wide rate.
var (
	wvAffinityNorm = affinityNorms(func(pc playCategory) map[sdkindex.Category]float64 { return pc.WVAffinity })
	ctAffinityNorm = affinityNorms(func(pc playCategory) map[sdkindex.Category]float64 { return pc.CTAffinity })
)

func affinityNorms(get func(playCategory) map[sdkindex.Category]float64) map[sdkindex.Category]float64 {
	norms := make(map[sdkindex.Category]float64, len(sdkindex.Categories))
	var totalW float64
	for _, pc := range playCategories {
		totalW += pc.Weight
	}
	for _, cat := range sdkindex.Categories {
		sum := 0.0
		for _, pc := range playCategories {
			sum += pc.Weight * affinity(get(pc), cat)
		}
		norms[cat] = sum / totalW
	}
	return norms
}

// assignStatic plants the app's static ground truth: which SDKs it embeds
// (per-category inclusion calibrated to the Tables 4/5 unions, modulated by
// the app's Play-category affinities), which WebView API methods each SDK
// copy calls (category method profiles, Figure 4), first-party WebView/CT
// code, and whether the app exposes a deep-link activity.
func assignStatic(s *Spec, idx *sdkindex.Index, seed int64) {
	rng := appRNG(seed, s.Package, "static")
	if s.PlayCategory == "" {
		s.PlayCategory = pickPlayCategory(rng).Name
	}
	pc := playCategoryByName(s.PlayCategory)
	webby := webbyLow
	if rng.Float64() < 0.5 {
		webby = webbyHigh
	}

	for _, cat := range sdkindex.Categories {
		target := sdkindex.TargetFor(cat)
		sdks := idx.ByCategory(cat)

		// WebView side of the category. One method set is drawn per
		// (app, category) and shared by every SDK of the category:
		// Figure 4's heatmap is app-level, and unioning independent
		// per-SDK draws (~2 ad SDKs per ad app) would inflate the rates.
		if target.WebViewApps > 0 {
			p := float64(target.WebViewApps) / float64(PaperAnalyzedApps) *
				wvOverlapAdjust * webby * affinity(pc.WVAffinity, cat) / wvAffinityNorm[cat]
			if rng.Float64() < p {
				methods := drawMethods(rng, categoryProfiles[cat])
				includeCategorySDKs(s, rng, sdks, cat, target.WebViewApps, false, methods)
			}
		}
		// Custom Tabs side.
		if target.CTApps > 0 {
			p := float64(target.CTApps) / float64(PaperAnalyzedApps) *
				ctOverlapAdjust * webby * affinity(pc.CTAffinity, cat) / ctAffinityNorm[cat]
			if rng.Float64() < p {
				includeCategorySDKs(s, rng, sdks, cat, target.CTApps, true, nil)
			}
		}
	}

	// First-party code (independent of SDKs). Named apps arrive with fixed
	// OwnMethods; leave those untouched.
	if len(s.OwnMethods) == 0 && rng.Float64() < ownWebViewRate*webby {
		s.OwnMethods = drawMethods(rng, ownProfile)
	}
	if !s.OwnCT && rng.Float64() < ownCTRate*webby {
		s.OwnCT = true
	}
	if rng.Float64() < deepLinkRate {
		s.HasDeepLink = true
	}
}

func affinity(m map[sdkindex.Category]float64, cat sdkindex.Category) float64 {
	if m == nil {
		return 1
	}
	if v, ok := m[cat]; ok {
		return v
	}
	return 1
}

// includeCategorySDKs adds SDKs of one category to the app. Conditional on
// the app using the category at all, each SDK is included with probability
// marginal/union — reproducing both the per-SDK marginals (Tables 4/5) and
// the category unions. At least one SDK is always included (weighted pick)
// so the category union is respected.
func includeCategorySDKs(s *Spec, rng *rand.Rand, sdks []sdkindex.SDK, cat sdkindex.Category, union int, ct bool, methods []string) {
	picked := false
	for i := range sdks {
		sdk := &sdks[i]
		marginal := sdk.WebViewApps
		if ct {
			marginal = sdk.CTApps
		}
		if marginal == 0 {
			continue
		}
		p := float64(marginal) / float64(union)
		if p > 0.97 {
			p = 0.97
		}
		if rng.Float64() < p {
			addSDKUse(s, sdk, ct, methods)
			picked = true
		}
	}
	if !picked {
		if sdk := weightedPick(rng, sdks, ct); sdk != nil {
			addSDKUse(s, sdk, ct, methods)
		}
	}
}

func weightedPick(rng *rand.Rand, sdks []sdkindex.SDK, ct bool) *sdkindex.SDK {
	total := 0
	for i := range sdks {
		if ct {
			total += sdks[i].CTApps
		} else {
			total += sdks[i].WebViewApps
		}
	}
	if total == 0 {
		return nil
	}
	x := rng.Intn(total)
	for i := range sdks {
		w := sdks[i].WebViewApps
		if ct {
			w = sdks[i].CTApps
		}
		if x -= w; x < 0 {
			return &sdks[i]
		}
	}
	return nil
}

// addSDKUse merges an SDK into the app's SDK list. The WebView side adopts
// the app's per-category method set; the CT side flips UsesCT.
func addSDKUse(s *Spec, sdk *sdkindex.SDK, ct bool, methods []string) {
	var use *SDKUse
	for i := range s.SDKs {
		if s.SDKs[i].Package == sdk.Package {
			use = &s.SDKs[i]
			break
		}
	}
	if use == nil {
		s.SDKs = append(s.SDKs, SDKUse{Package: sdk.Package})
		use = &s.SDKs[len(s.SDKs)-1]
	}
	if ct {
		use.UsesCT = true
		return
	}
	if len(use.WebViewMethods) == 0 {
		use.WebViewMethods = append([]string(nil), methods...)
	}
}

// drawMethods samples a method set from a profile, guaranteeing at least
// one content-populating method (an SDK that loads nothing would be
// invisible to the attribution step, §3.1.4).
func drawMethods(rng *rand.Rand, profile methodProfile) []string {
	var out []string
	hasLoad := false
	for _, m := range android.WebViewMethods {
		if rng.Float64() < profile[m] {
			out = append(out, m)
			if android.IsLoadMethod(m) {
				hasLoad = true
			}
		}
	}
	if !hasLoad {
		out = append(out, android.MethodLoadURL)
	}
	sort.Strings(out)
	return out
}

// topBehaviors assigns Table 6's composition to the top-K download ranks:
// the named apps keep their fixed behaviours; the remaining slots are a
// deterministic shuffle of 27 browser-opening link apps, 9 browser apps,
// 24 phone-gated, 22 incompatible, 2 paid-only and no-user-content fillers.
// When K < 1000 the non-named counts shrink proportionally.
func topBehaviors(seed int64, k int) []Dynamic {
	out := make([]Dynamic, k)
	named := len(NamedApps)
	if k <= named {
		for i := 0; i < k; i++ {
			out[i] = NamedApps[i].Dynamic
		}
		return out
	}
	for i := 0; i < named; i++ {
		out[i] = NamedApps[i].Dynamic
	}
	rest := k - named
	scaleOf := func(n int) int {
		if k >= 1000 {
			return n
		}
		return n * rest / (1000 - named)
	}
	var tags []Dynamic
	push := func(n int, d Dynamic) {
		for i := 0; i < n; i++ {
			tags = append(tags, d)
		}
	}
	push(scaleOf(top1kBrowserLinkApps), Dynamic{HasUserContent: true, LinkSurface: "Post", LinkOpens: LinkBrowser})
	push(scaleOf(top1kBrowserApps), Dynamic{IsBrowser: true})
	push(scaleOf(top1kRequiresPhone), Dynamic{RequiresPhone: true})
	push(scaleOf(top1kIncompatible), Dynamic{Incompatible: true})
	push(scaleOf(top1kPaidOnly), Dynamic{PaidOnly: true})
	for len(tags) < rest {
		tags = append(tags, Dynamic{}) // no user-generated content
	}
	tags = tags[:rest]
	rng := rand.New(rand.NewSource(seed ^ 0x746f7031303030))
	rng.Shuffle(len(tags), func(i, j int) { tags[i], tags[j] = tags[j], tags[i] })
	copy(out[named:], tags)
	return out
}
