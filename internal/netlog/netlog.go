// Package netlog records per-context network events, standing in for
// Chrome's NetLog on the rooted measurement device (§3.2.2): every request
// a WebView (or Custom Tab) issues is logged with its URL, method, headers
// and status, attributable to the specific browsing context that made it —
// the property that let the paper separate a page's own requests from an
// IAB's injected traffic.
package netlog

import (
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one logged network request.
type Event struct {
	Context string // the browsing context (WebView instance, CT session)
	URL     string
	Host    string
	Method  string
	Status  int
	Header  map[string]string
	// Initiator distinguishes page-driven loads from injected code.
	Initiator string // "page", "subresource", "injection", "redirector"
	Seq       int
	Time      time.Time
}

// Log is a concurrency-safe event recorder.
type Log struct {
	mu     sync.Mutex
	events []Event
	seq    int
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Record appends an event, stamping sequence order. The host is derived
// from the URL when unset.
func (l *Log) Record(e Event) {
	if e.Host == "" {
		if u, err := url.Parse(e.URL); err == nil {
			e.Host = u.Host
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	l.events = append(l.events, e)
}

// Events returns a copy of all events in record order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// ByContext returns the events of one browsing context.
func (l *Log) ByContext(ctx string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Context == ctx {
			out = append(out, e)
		}
	}
	return out
}

// Hosts returns the distinct hosts contacted (optionally by one context),
// sorted.
func (l *Log) Hosts(ctx string) []string {
	set := make(map[string]bool)
	for _, e := range l.Events() {
		if ctx != "" && e.Context != ctx {
			continue
		}
		if e.Host != "" {
			set[e.Host] = true
		}
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Purge clears the log (the crawler purges device logs between visits).
func (l *Log) Purge() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.seq = 0
}

// PurgeContext removes only the events of one browsing context. Parallel
// crawl lanes sharing a device purge their own visit's context so they
// cannot wipe another lane's in-flight log.
func (l *Log) PurgeContext(ctx string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.events[:0]
	for _, e := range l.events {
		if e.Context != ctx {
			kept = append(kept, e)
		}
	}
	l.events = kept
}

// Len reports the number of events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// HostsNotUnder returns the distinct hosts that are neither the given
// first-party host nor one of its subdomains — the "endpoints contacted
// beyond the visited site" series of Figure 6.
func (l *Log) HostsNotUnder(ctx, firstParty string) []string {
	var out []string
	for _, h := range l.Hosts(ctx) {
		if h == firstParty || strings.HasSuffix(h, "."+firstParty) {
			continue
		}
		out = append(out, h)
	}
	return out
}
