package netlog

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestRecordAndQuery(t *testing.T) {
	l := New()
	l.Record(Event{Context: "wv-1", URL: "https://example.com/page", Method: "GET", Status: 200, Initiator: "page"})
	l.Record(Event{Context: "wv-1", URL: "https://cdn.example.com/x.js", Status: 200, Initiator: "subresource"})
	l.Record(Event{Context: "wv-2", URL: "https://ads.tracker.net/pixel", Status: 204, Initiator: "injection"})

	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	if got := len(l.ByContext("wv-1")); got != 2 {
		t.Errorf("ByContext(wv-1) = %d", got)
	}
	if got := l.Hosts("wv-1"); !reflect.DeepEqual(got, []string{"cdn.example.com", "example.com"}) {
		t.Errorf("Hosts = %v", got)
	}
	if got := l.Hosts(""); len(got) != 3 {
		t.Errorf("all hosts = %v", got)
	}
	events := l.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Error("sequence numbers not increasing")
		}
	}
}

func TestHostsNotUnder(t *testing.T) {
	l := New()
	l.Record(Event{Context: "c", URL: "https://example.com/"})
	l.Record(Event{Context: "c", URL: "https://static.example.com/app.js"})
	l.Record(Event{Context: "c", URL: "https://cedexis-radar.net/probe"})
	l.Record(Event{Context: "c", URL: "https://ads.mopub.com/bid"})
	got := l.HostsNotUnder("c", "example.com")
	want := []string{"ads.mopub.com", "cedexis-radar.net"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HostsNotUnder = %v, want %v", got, want)
	}
}

func TestPurge(t *testing.T) {
	l := New()
	l.Record(Event{URL: "https://a.example/"})
	l.Purge()
	if l.Len() != 0 {
		t.Error("Purge left events")
	}
	l.Record(Event{URL: "https://b.example/"})
	if l.Events()[0].Seq != 1 {
		t.Error("Purge did not reset sequence")
	}
}

func TestConcurrentRecording(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(Event{Context: fmt.Sprintf("c%d", w), URL: "https://x.example/"})
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("Len = %d, want 800", l.Len())
	}
}

func TestHostDerivedFromURL(t *testing.T) {
	l := New()
	l.Record(Event{URL: "https://sub.domain.example:8443/path?q=1"})
	if got := l.Events()[0].Host; got != "sub.domain.example:8443" {
		t.Errorf("Host = %q", got)
	}
}

func TestPurgeContextKeepsOtherContexts(t *testing.T) {
	l := New()
	l.Record(Event{Context: "wv-1", URL: "https://a.example/"})
	l.Record(Event{Context: "wv-2", URL: "https://b.example/"})
	l.Record(Event{Context: "wv-1", URL: "https://c.example/"})

	l.PurgeContext("wv-1")
	if got := l.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	ev := l.Events()[0]
	if ev.Context != "wv-2" || ev.Host != "b.example" {
		t.Errorf("survivor = %+v, want wv-2/b.example", ev)
	}
	// Purging an unknown context is a no-op.
	l.PurgeContext("wv-404")
	if l.Len() != 1 {
		t.Error("purging an unknown context dropped events")
	}
}
