package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the staticscan -faults value: comma-separated k=v
// pairs, e.g. "seed=7,err=0.1,latrate=0.05,lat=2ms,trunc=0.02,corrupt=0.02".
// Keys: seed (int64), err, latrate, trunc, corrupt (rates in [0,1]),
// lat (duration). Unknown keys, malformed values and out-of-range rates
// are errors. The empty string yields the zero Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: malformed spec entry %q (want key=value)", part)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "lat":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("faults: bad latency %q: %v", v, err)
			}
			cfg.Latency = d
		case "err", "latrate", "trunc", "corrupt":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r < 0 || r > 1 {
				return cfg, fmt.Errorf("faults: bad rate %s=%q (want a number in [0,1])", k, v)
			}
			switch k {
			case "err":
				cfg.ErrorRate = r
			case "latrate":
				cfg.LatencyRate = r
			case "trunc":
				cfg.TruncateRate = r
			case "corrupt":
				cfg.CorruptRate = r
			}
		default:
			return cfg, fmt.Errorf("faults: unknown spec key %q", k)
		}
	}
	return cfg, nil
}
