package faults

import (
	"bytes"
	"context"
	"io"
	"net/http"

	"repro/internal/playstore"
)

// APKRepository is the repository surface the pipeline consumes
// (structurally identical to pipeline.Repository, redeclared to avoid an
// import cycle with pipeline tests).
type APKRepository interface {
	List(ctx context.Context) ([]string, error)
	Download(ctx context.Context, pkg string) ([]byte, error)
}

// Repository injects faults in front of an APK repository. ErrorRate and
// LatencyRate apply to List and Download; TruncateRate and CorruptRate
// damage downloaded images in place — undetectably at this layer, so use
// them only to exercise broken-APK handling, not output-invariance runs
// (put payload damage in Transport instead, beneath the client's
// integrity checks).
type Repository struct {
	inner APKRepository
	in    *injector
}

// NewRepository wraps inner with the given fault configuration.
func NewRepository(inner APKRepository, cfg Config) *Repository {
	return &Repository{inner: inner, in: newInjector(cfg)}
}

// List implements the repository interface with injected faults.
func (r *Repository) List(ctx context.Context) ([]string, error) {
	d := r.in.next("list", "snapshot")
	if err := d.delay(ctx); err != nil {
		return nil, err
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	return r.inner.List(ctx)
}

// Download implements the repository interface with injected faults.
func (r *Repository) Download(ctx context.Context, pkg string) ([]byte, error) {
	d := r.in.next("download", pkg)
	if err := d.delay(ctx); err != nil {
		return nil, err
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	img, err := r.inner.Download(ctx, pkg)
	if err != nil {
		return nil, err
	}
	return d.corrupt(d.truncate(img)), nil
}

// Metadataer is the metadata surface the pipeline consumes.
type Metadataer interface {
	Metadata(ctx context.Context, pkg string) (playstore.Metadata, error)
}

// MetadataSource injects transient errors and latency in front of a
// store-metadata service.
type MetadataSource struct {
	inner Metadataer
	in    *injector
}

// NewMetadataSource wraps inner with the given fault configuration.
func NewMetadataSource(inner Metadataer, cfg Config) *MetadataSource {
	return &MetadataSource{inner: inner, in: newInjector(cfg)}
}

// Metadata implements the metadata interface with injected faults.
func (m *MetadataSource) Metadata(ctx context.Context, pkg string) (playstore.Metadata, error) {
	d := m.in.next("metadata", pkg)
	if err := d.delay(ctx); err != nil {
		return playstore.Metadata{}, err
	}
	if err := d.err(); err != nil {
		return playstore.Metadata{}, err
	}
	return m.inner.Metadata(ctx, pkg)
}

// blobStore matches resultcache.BlobStore structurally.
type blobStore interface {
	Load(key string) ([]byte, bool, error)
	Store(key string, blob []byte) error
}

// Store injects faults in front of a result-cache blob store: ErrorRate
// fails loads, CorruptRate damages the first blob byte (guaranteed to
// break JSON decoding, so the cache detects it, purges the entry and
// recomputes — output stays correct), LatencyRate delays loads. Stores
// and deletes pass through untouched so recomputed entries persist.
type Store struct {
	inner blobStore
	in    *injector
}

// NewStore wraps inner with the given fault configuration.
func NewStore(inner blobStore, cfg Config) *Store {
	return &Store{inner: inner, in: newInjector(cfg)}
}

// Load implements resultcache.BlobStore with injected faults.
func (s *Store) Load(key string) ([]byte, bool, error) {
	d := s.in.next("load", key)
	d.delay(context.Background())
	if err := d.err(); err != nil {
		return nil, false, err
	}
	blob, ok, err := s.inner.Load(key)
	if err != nil || !ok {
		return blob, ok, err
	}
	if d.cfg.CorruptRate > 0 && d.uniform("corrupt") < d.cfg.CorruptRate && len(blob) > 0 {
		d.injected("corrupt")
		out := append([]byte(nil), blob...)
		out[0] ^= 0xff
		return out, true, nil
	}
	return blob, ok, nil
}

// Store implements resultcache.BlobStore; writes pass through.
func (s *Store) Store(key string, blob []byte) error { return s.inner.Store(key, blob) }

// Delete forwards to the inner store when it supports deletion, so the
// cache's purge-on-corrupt path works through the fault layer.
func (s *Store) Delete(key string) error {
	if d, ok := s.inner.(interface{ Delete(key string) error }); ok {
		return d.Delete(key)
	}
	return nil
}

// Transport injects payload damage beneath an HTTP client: TruncateRate
// cuts response bodies short of the advertised Content-Length and
// CorruptRate flips a body byte, both of which the androzoo client's
// length/digest verification detects and classifies as retryable. A
// retried request draws a fresh decision, so retries recover.
type Transport struct {
	inner http.RoundTripper
	in    *injector
}

// NewTransport wraps inner (nil means http.DefaultTransport).
func NewTransport(inner http.RoundTripper, cfg Config) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, in: newInjector(cfg)}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.inner.RoundTrip(req)
	if err != nil || resp.Body == nil {
		return resp, err
	}
	d := t.in.next("roundtrip", req.URL.Path)
	wantTrunc := d.cfg.TruncateRate > 0 && d.uniform("truncate") < d.cfg.TruncateRate
	wantCorrupt := d.cfg.CorruptRate > 0 && d.uniform("corrupt") < d.cfg.CorruptRate
	if !wantTrunc && !wantCorrupt {
		return resp, nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if wantTrunc {
		d.injected("truncate")
		body = d.truncateAlways(body)
	}
	if wantCorrupt && len(body) > 0 {
		d.injected("corrupt")
		body = append([]byte(nil), body...)
		body[int(d.uniform("corrupt-at")*float64(len(body)))%len(body)] ^= 0xff
	}
	// The headers (including Content-Length) still describe the original
	// payload: the damage is on the wire, exactly what a client-side
	// integrity check exists to catch.
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp, nil
}

// truncateAlways cuts b unconditionally (the rate draw already passed).
func (d draw) truncateAlways(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	n := int(d.uniform("truncate-point") * float64(len(b)))
	if n >= len(b) {
		n = len(b) - 1
	}
	return b[:n]
}
