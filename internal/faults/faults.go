// Package faults injects deterministic, seed-driven faults into the
// pipeline's service edges for chaos testing. Wrappers exist for the APK
// repository and metadata-source interfaces (transient errors, latency,
// truncated or corrupted downloads), for the result cache's blob store
// (load errors, corrupt blobs), and for an http.RoundTripper (truncated
// or bit-flipped response bodies beneath the client's integrity checks).
//
// Every fault decision is a pure function of (seed, operation, key,
// attempt number): the same seed replays the same faults regardless of
// goroutine scheduling, and a retried operation draws a fresh decision —
// so a transient-error rate r makes the k-th retry succeed with
// probability 1-r independently, exactly like a real flaky backend. That
// determinism is what lets the chaos tests assert byte-identical output
// between a faulted and a fault-free run.
package faults

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/retry"
	"repro/internal/telemetry"
)

// Config sets per-operation fault probabilities (each in [0,1]).
// Which rates apply depends on the wrapper: interface wrappers use
// ErrorRate and LatencyRate; the transport and blob-store wrappers add
// TruncateRate and CorruptRate, where damage is detectable downstream.
type Config struct {
	// Seed drives every fault decision; runs with equal seeds inject
	// identical faults.
	Seed int64
	// ErrorRate is the probability an operation fails with an injected
	// transient error.
	ErrorRate float64
	// LatencyRate is the probability an operation is delayed by Latency.
	LatencyRate float64
	Latency     time.Duration
	// TruncateRate is the probability a payload is cut short.
	TruncateRate float64
	// CorruptRate is the probability a payload is damaged in place.
	CorruptRate float64
	// Telemetry, when non-nil, counts every fault that actually fires into
	// faults_injected_total{class=error|latency|truncate|corrupt}. The
	// counts are as deterministic as the draws: same seed, same counters.
	Telemetry *telemetry.Hub
}

// injector derives per-(op, key, attempt) fault decisions.
type injector struct {
	cfg      Config
	mu       sync.Mutex
	attempts map[string]int
}

func newInjector(cfg Config) *injector {
	return &injector{cfg: cfg, attempts: make(map[string]int)}
}

// next advances the attempt counter for (op, key) and returns a draw
// bound to that attempt.
func (in *injector) next(op, key string) draw {
	in.mu.Lock()
	k := op + "\x00" + key
	in.attempts[k]++
	n := in.attempts[k]
	in.mu.Unlock()
	return draw{cfg: in.cfg, op: op, key: key, attempt: n}
}

// draw computes independent uniforms per fault class for one attempt.
type draw struct {
	cfg     Config
	op, key string
	attempt int
}

// injected counts one fired fault of the given class.
func (d draw) injected(class string) {
	d.cfg.Telemetry.Counter("faults_injected_total",
		"faults fired by the chaos injector, by class", "class", class).Inc()
}

// uniform hashes (seed, op, key, attempt, class) into [0, 1).
func (d draw) uniform(class string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%s", d.cfg.Seed, d.op, d.key, d.attempt, class)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// delay sleeps the configured latency when this attempt drew one,
// honouring ctx.
func (d draw) delay(ctx context.Context) error {
	if d.cfg.LatencyRate <= 0 || d.uniform("latency") >= d.cfg.LatencyRate {
		return nil
	}
	d.injected("latency")
	lat := d.cfg.Latency
	if lat <= 0 {
		lat = time.Millisecond
	}
	if ctx == nil {
		time.Sleep(lat)
		return nil
	}
	t := time.NewTimer(lat)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// err returns the injected transient error for this attempt, or nil.
func (d draw) err() error {
	if d.cfg.ErrorRate > 0 && d.uniform("error") < d.cfg.ErrorRate {
		d.injected("error")
		return retry.Transient(fmt.Errorf("faults: injected failure (%s %s attempt %d)", d.op, d.key, d.attempt))
	}
	return nil
}

// truncate cuts b when this attempt drew a truncation; the cut point is
// hash-derived but always strictly shorter than the input.
func (d draw) truncate(b []byte) []byte {
	if d.cfg.TruncateRate <= 0 || d.uniform("truncate") >= d.cfg.TruncateRate || len(b) == 0 {
		return b
	}
	d.injected("truncate")
	n := int(d.uniform("truncate-point") * float64(len(b)))
	if n >= len(b) {
		n = len(b) - 1
	}
	return b[:n]
}

// corrupt flips one hash-chosen byte of a copy of b when this attempt
// drew a corruption.
func (d draw) corrupt(b []byte) []byte {
	if d.cfg.CorruptRate <= 0 || d.uniform("corrupt") >= d.cfg.CorruptRate || len(b) == 0 {
		return b
	}
	d.injected("corrupt")
	out := append([]byte(nil), b...)
	out[int(d.uniform("corrupt-at")*float64(len(out)))%len(out)] ^= 0xff
	return out
}
