package faults

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/playstore"
	"repro/internal/retry"
)

// memRepo is a trivial in-memory repository.
type memRepo struct{ imgs map[string][]byte }

func (r *memRepo) List(ctx context.Context) ([]string, error) {
	var out []string
	for k := range r.imgs {
		out = append(out, k)
	}
	return out, nil
}

func (r *memRepo) Download(ctx context.Context, pkg string) ([]byte, error) {
	img, ok := r.imgs[pkg]
	if !ok {
		return nil, errors.New("unknown")
	}
	return append([]byte(nil), img...), nil
}

func TestErrorRateApproximatesConfig(t *testing.T) {
	in := newInjector(Config{Seed: 1, ErrorRate: 0.1})
	fails := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if in.next("download", fmt.Sprintf("pkg%d", i)).err() != nil {
			fails++
		}
	}
	if fails < n/20 || fails > n/5 {
		t.Errorf("10%% error rate produced %d/%d failures", fails, n)
	}
}

func TestDecisionsDeterministicAcrossInjectors(t *testing.T) {
	outcomes := func() []bool {
		in := newInjector(Config{Seed: 42, ErrorRate: 0.3})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.next("metadata", fmt.Sprintf("p%d", i%50)).err() != nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs between identically seeded injectors", i)
		}
	}
}

func TestRetriesDrawFreshDecisions(t *testing.T) {
	// With a 50% error rate, some key must fail on attempt 1 and succeed
	// on a later attempt — the per-attempt counter decorrelates retries.
	in := newInjector(Config{Seed: 7, ErrorRate: 0.5})
	recovered := false
	for i := 0; i < 100 && !recovered; i++ {
		key := fmt.Sprintf("pkg%d", i)
		if in.next("download", key).err() == nil {
			continue // first attempt passed; irrelevant
		}
		for a := 0; a < 5; a++ {
			if in.next("download", key).err() == nil {
				recovered = true
				break
			}
		}
	}
	if !recovered {
		t.Error("no key recovered on retry at 50% error rate — attempts are not independent")
	}
}

func TestRepositoryFaultsAreTransient(t *testing.T) {
	repo := NewRepository(&memRepo{imgs: map[string][]byte{"a": []byte("x")}},
		Config{Seed: 3, ErrorRate: 1})
	_, err := repo.Download(context.Background(), "a")
	if err == nil {
		t.Fatal("100% error rate produced no error")
	}
	if !retry.IsRetryable(err) {
		t.Errorf("injected fault %v is not retryable", err)
	}
}

func TestRepositoryTruncateAndCorruptDamagePayload(t *testing.T) {
	img := bytes.Repeat([]byte("payload"), 100)
	base := &memRepo{imgs: map[string][]byte{"a": img}}
	trunc := NewRepository(base, Config{Seed: 3, TruncateRate: 1})
	got, err := trunc.Download(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(img) {
		t.Errorf("truncation left %d of %d bytes", len(got), len(img))
	}
	corr := NewRepository(base, Config{Seed: 3, CorruptRate: 1})
	got, err = corr.Download(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(img) || bytes.Equal(got, img) {
		t.Error("corruption did not flip a byte in place")
	}
}

func TestMetadataSourceInjectsLatency(t *testing.T) {
	inner := &fakeMeta{}
	m := NewMetadataSource(inner, Config{Seed: 1, LatencyRate: 1, Latency: 10 * time.Millisecond})
	start := time.Now()
	if _, err := m.Metadata(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("latency fault did not delay the call")
	}
	// A cancelled context cuts the delay short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Metadata(ctx, "b"); err == nil {
		t.Error("cancelled context did not interrupt latency fault")
	}
}

type fakeMeta struct{}

func (fakeMeta) Metadata(ctx context.Context, pkg string) (playstore.Metadata, error) {
	return playstore.Metadata{Package: pkg}, nil
}

type memBlobs struct{ m map[string][]byte }

func (s *memBlobs) Load(key string) ([]byte, bool, error) { b, ok := s.m[key]; return b, ok, nil }
func (s *memBlobs) Store(key string, b []byte) error      { s.m[key] = b; return nil }
func (s *memBlobs) Delete(key string) error               { delete(s.m, key); return nil }

func TestStoreCorruptionBreaksFirstByte(t *testing.T) {
	inner := &memBlobs{m: map[string][]byte{"k": []byte(`{"a":1}`)}}
	s := NewStore(inner, Config{Seed: 5, CorruptRate: 1})
	blob, ok, err := s.Load("k")
	if err != nil || !ok {
		t.Fatalf("Load = %v, %v", ok, err)
	}
	if blob[0] == '{' {
		t.Error("corrupt load kept a valid JSON first byte")
	}
	if inner.m["k"][0] != '{' {
		t.Error("corruption mutated the underlying store")
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Load("k"); ok {
		t.Error("Delete did not reach the inner store")
	}
}

func TestTransportTruncationDetectableByLength(t *testing.T) {
	payload := bytes.Repeat([]byte("z"), 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		w.Write(payload)
	}))
	defer srv.Close()
	hc := srv.Client()
	hc.Transport = NewTransport(hc.Transport, Config{Seed: 2, TruncateRate: 1})
	resp, err := hc.Get(srv.URL + "/apk/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if int64(len(body)) == resp.ContentLength {
		t.Errorf("truncated body still matches Content-Length %d", resp.ContentLength)
	}
}

func TestTransportCorruptionDetectableByDigest(t *testing.T) {
	payload := bytes.Repeat([]byte("q"), 1024)
	sum := sha256.Sum256(payload)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Payload-Sha256", hex.EncodeToString(sum[:]))
		w.Write(payload)
	}))
	defer srv.Close()
	hc := srv.Client()
	hc.Transport = NewTransport(hc.Transport, Config{Seed: 2, CorruptRate: 1})
	resp, err := hc.Get(srv.URL + "/apk/y")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	got := sha256.Sum256(body)
	if hex.EncodeToString(got[:]) == resp.Header.Get("X-Payload-Sha256") {
		t.Error("corrupted body still matches the digest header")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7, err=0.1, latrate=0.05, lat=2ms, trunc=0.02, corrupt=0.03")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, ErrorRate: 0.1, LatencyRate: 0.05, Latency: 2 * time.Millisecond,
		TruncateRate: 0.02, CorruptRate: 0.03}
	if cfg != want {
		t.Errorf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if _, err := ParseSpec("err=2"); err == nil {
		t.Error("out-of-range rate accepted")
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseSpec("err"); err == nil {
		t.Error("malformed entry accepted")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Errorf("empty spec = %+v, %v", cfg, err)
	}
}
