package playstore

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/retry"
)

func testServer(t *testing.T) (*httptest.Server, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(c).Handler())
	t.Cleanup(srv.Close)
	return srv, c
}

func TestMetadataFound(t *testing.T) {
	srv, c := testServer(t)
	client := NewClient(srv.URL, srv.Client())
	want := c.Filtered()[0]
	md, err := client.Metadata(context.Background(), want.Package)
	if err != nil {
		t.Fatalf("Metadata: %v", err)
	}
	if md.Package != want.Package || md.Downloads != want.Downloads ||
		md.Category != want.PlayCategory || !md.LastUpdated.Equal(want.LastUpdated) {
		t.Errorf("metadata = %+v, want spec %+v", md, want)
	}
}

func TestMetadataNotFound(t *testing.T) {
	srv, _ := testServer(t)
	client := NewClient(srv.URL, srv.Client())
	_, err := client.Metadata(context.Background(), "com.never.existed")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestOffPlayAppsAreNotFound(t *testing.T) {
	srv, c := testServer(t)
	client := NewClient(srv.URL, srv.Client())
	var offPlay string
	for _, s := range c.Apps {
		if !s.OnPlayStore {
			offPlay = s.Package
			break
		}
	}
	if offPlay == "" {
		t.Skip("corpus has no off-play apps at this scale")
	}
	if _, err := client.Metadata(context.Background(), offPlay); !errors.Is(err, ErrNotFound) {
		t.Errorf("off-play app err = %v, want ErrNotFound", err)
	}
}

func TestMetadataContextCancel(t *testing.T) {
	srv, c := testServer(t)
	client := NewClient(srv.URL, srv.Client())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Metadata(ctx, c.Apps[0].Package); err == nil {
		t.Error("cancelled context did not fail")
	}
}

func TestMetadataBadBase(t *testing.T) {
	client := NewClient("http://127.0.0.1:1", nil)
	if _, err := client.Metadata(context.Background(), "x"); err == nil {
		t.Error("unreachable server did not fail")
	}
}

// flakyStore 503s the first n requests per path, then proxies to real.
type flakyStore struct {
	mu       sync.Mutex
	failures map[string]int
	n        int
	real     http.Handler
}

func (h *flakyStore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.failures[r.URL.Path]++
	misbehave := h.failures[r.URL.Path] <= h.n
	h.mu.Unlock()
	if misbehave {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
		return
	}
	h.real.ServeHTTP(w, r)
}

func TestMetadataServerErrorRetried(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	h := &flakyStore{failures: make(map[string]int), n: 2, real: NewServer(c).Handler()}
	srv := httptest.NewServer(h)
	defer srv.Close()

	var onPlay string
	for _, app := range c.Apps {
		if app.OnPlayStore {
			onPlay = app.Package
			break
		}
	}
	m := &retry.Metrics{}
	client := NewClient(srv.URL, srv.Client()).WithRetry(&retry.Policy{
		MaxAttempts: 4, Seed: 1, Metrics: m,
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})
	md, err := client.Metadata(context.Background(), onPlay)
	if err != nil {
		t.Fatalf("Metadata did not outlast 2 consecutive 503s: %v", err)
	}
	if md.Package != onPlay {
		t.Errorf("md.Package = %q, want %q", md.Package, onPlay)
	}
	if m.Retries.Load() != 2 {
		t.Errorf("retries = %d, want 2", m.Retries.Load())
	}
}

func TestMetadataNotFoundIsNotRetried(t *testing.T) {
	srv, _ := testServer(t)
	m := &retry.Metrics{}
	client := NewClient(srv.URL, srv.Client()).WithRetry(&retry.Policy{
		MaxAttempts: 5, Seed: 1, Metrics: m,
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})
	_, err := client.Metadata(context.Background(), "com.definitely.absent")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if m.Retries.Load() != 0 {
		t.Errorf("a 404 was retried %d times; absence is an answer", m.Retries.Load())
	}
	if m.Attempts.Load() != 1 {
		t.Errorf("attempts = %d, want 1", m.Attempts.Load())
	}
}
