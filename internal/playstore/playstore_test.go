package playstore

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/corpus"
)

func testServer(t *testing.T) (*httptest.Server, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(c).Handler())
	t.Cleanup(srv.Close)
	return srv, c
}

func TestMetadataFound(t *testing.T) {
	srv, c := testServer(t)
	client := NewClient(srv.URL, srv.Client())
	want := c.Filtered()[0]
	md, err := client.Metadata(context.Background(), want.Package)
	if err != nil {
		t.Fatalf("Metadata: %v", err)
	}
	if md.Package != want.Package || md.Downloads != want.Downloads ||
		md.Category != want.PlayCategory || !md.LastUpdated.Equal(want.LastUpdated) {
		t.Errorf("metadata = %+v, want spec %+v", md, want)
	}
}

func TestMetadataNotFound(t *testing.T) {
	srv, _ := testServer(t)
	client := NewClient(srv.URL, srv.Client())
	_, err := client.Metadata(context.Background(), "com.never.existed")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestOffPlayAppsAreNotFound(t *testing.T) {
	srv, c := testServer(t)
	client := NewClient(srv.URL, srv.Client())
	var offPlay string
	for _, s := range c.Apps {
		if !s.OnPlayStore {
			offPlay = s.Package
			break
		}
	}
	if offPlay == "" {
		t.Skip("corpus has no off-play apps at this scale")
	}
	if _, err := client.Metadata(context.Background(), offPlay); !errors.Is(err, ErrNotFound) {
		t.Errorf("off-play app err = %v, want ErrNotFound", err)
	}
}

func TestMetadataContextCancel(t *testing.T) {
	srv, c := testServer(t)
	client := NewClient(srv.URL, srv.Client())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Metadata(ctx, c.Apps[0].Package); err == nil {
		t.Error("cancelled context did not fail")
	}
}

func TestMetadataBadBase(t *testing.T) {
	client := NewClient("http://127.0.0.1:1", nil)
	if _, err := client.Metadata(context.Background(), "x"); err == nil {
		t.Error("unreachable server did not fail")
	}
}
