// Package playstore simulates the Google Play Store metadata service the
// paper scrapes (step 1 of Figure 1): install counts, category and
// last-update time per app. It exposes an HTTP server over a generated
// corpus and a typed client, so the pipeline performs real network fetches
// with real not-found handling (2.45M of the 6.5M AndroZoo apps are not on
// the Play Store).
package playstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/retry"
)

// Metadata is the Play Store listing data the pipeline filters on.
type Metadata struct {
	Package     string    `json:"package"`
	Title       string    `json:"title"`
	Category    string    `json:"category"`
	Downloads   int64     `json:"downloads"`
	LastUpdated time.Time `json:"lastUpdated"`
}

// ErrNotFound reports that an app is not listed on the store.
var ErrNotFound = errors.New("playstore: app not found")

// Server serves store metadata for a corpus.
type Server struct {
	src corpus.Source
}

// NewServer serves the materialized corpus.
func NewServer(c *corpus.Corpus) *Server {
	return NewServerFrom(c)
}

// NewServerFrom serves any corpus source, including the bounded-memory
// *corpus.Snapshot for full paper-scale listings.
func NewServerFrom(src corpus.Source) *Server {
	return &Server{src: src}
}

// Handler returns the HTTP handler: GET /v1/apps/{package}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/apps/", s.handleApp)
	return mux
}

func (s *Server) handleApp(w http.ResponseWriter, r *http.Request) {
	pkg := strings.TrimPrefix(r.URL.Path, "/v1/apps/")
	if pkg == "" {
		http.Error(w, "missing package", http.StatusBadRequest)
		return
	}
	spec := s.src.ByPackage(pkg)
	if spec == nil || !spec.OnPlayStore {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(Metadata{
		Package:     spec.Package,
		Title:       spec.Title,
		Category:    spec.PlayCategory,
		Downloads:   spec.Downloads,
		LastUpdated: spec.LastUpdated,
	}); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
}

// Client fetches metadata from a Server (or anything with its API).
type Client struct {
	base  string
	hc    *http.Client
	retry *retry.Policy
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// WithRetry wraps every Metadata call in the given retry policy (nil
// disables retrying) and returns the client. Not-found responses are
// classified permanent — an app's absence is an answer, not a failure —
// so they are never retried and never trip a circuit breaker into
// mistaking 2.45M honest 404s for an outage.
func (c *Client) WithRetry(p *retry.Policy) *Client {
	c.retry = p
	return c
}

// Metadata fetches one app's listing. Returns ErrNotFound for apps absent
// from the store. Server errors and truncated responses are retryable;
// with a WithRetry policy they are re-attempted with backoff.
func (c *Client) Metadata(ctx context.Context, pkg string) (Metadata, error) {
	return retry.Do(ctx, c.retry, func(ctx context.Context) (Metadata, error) {
		return c.metadata(ctx, pkg)
	})
}

func (c *Client) metadata(ctx context.Context, pkg string) (Metadata, error) {
	var md Metadata
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/apps/"+pkg, nil)
	if err != nil {
		return md, retry.Permanent(fmt.Errorf("playstore: %w", err))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return md, retry.Transient(fmt.Errorf("playstore: %w", err))
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&md); err != nil {
			// A decode failure on a 200 is a truncated or garbled body —
			// the transfer failed, not the request.
			return md, retry.Transient(fmt.Errorf("playstore: decode %s: %w", pkg, err))
		}
		return md, nil
	case resp.StatusCode == http.StatusNotFound:
		return md, retry.Permanent(fmt.Errorf("%w: %s", ErrNotFound, pkg))
	case resp.StatusCode >= 500:
		return md, retry.Transient(fmt.Errorf("playstore: %s: unexpected status %s", pkg, resp.Status))
	default:
		return md, retry.Permanent(fmt.Errorf("playstore: %s: unexpected status %s", pkg, resp.Status))
	}
}
