package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and hands out atomic handles. Handles are
// resolved once (a lock and a map lookup) and then updated lock-free, so
// hot paths pay one atomic add per event. All exposition orders are
// canonical — families by name, series by label signature — so equal
// traffic produces byte-equal output.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram upper bounds, ascending
	series  map[string]any
}

// Counter is a monotonically increasing series. Nil receivers are no-ops.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down. Nil receivers are no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (negative to decrement) and returns the new value.
func (g *Gauge) Add(n int64) int64 {
	if g == nil {
		return 0
	}
	return g.v.Add(n)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observations are counted into
// the first bucket whose upper bound is >= the value, plus an implicit
// +Inf bucket; the sum is kept in integer nano-units so updates stay
// atomic and exposition stays deterministic. Nil receivers are no-ops.
type Histogram struct {
	bounds   []float64
	counts   []atomic.Int64 // len(bounds)+1, last = +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(math.Round(v * 1e9)))
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNanos.Load()) / 1e9
}

// DefaultLatencyBuckets covers 100µs–10s, the span of every operation the
// pipeline and crawl time (values in seconds).
var DefaultLatencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// DefaultSizeBuckets covers 1KiB–64MiB, the span of APK images and blobs
// (values in bytes).
var DefaultSizeBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Counter returns (creating on first use) the counter series of the named
// family with the given label key/value pairs. The family's kind is fixed
// by its first registration; a kind or label-arity mismatch panics — it is
// a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.series(name, help, kindCounter, nil, labels)
	return s.(*Counter)
}

// Gauge returns (creating on first use) the gauge series of the named
// family with the given label key/value pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.series(name, help, kindGauge, nil, labels)
	return s.(*Gauge)
}

// Histogram returns (creating on first use) the histogram series of the
// named family. The bucket upper bounds are fixed by the family's first
// registration; nil buckets default to DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	s := r.series(name, help, kindHistogram, buckets, labels)
	return s.(*Histogram)
}

func (r *Registry) series(name, help string, k kind, buckets []float64, labels []string) any {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: %s: odd label pairs %v", name, labels))
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]any)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, k))
	}
	if s, ok := f.series[sig]; ok {
		return s
	}
	var s any
	switch k {
	case kindCounter:
		s = &Counter{}
	case kindGauge:
		s = &Gauge{}
	default:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Int64, len(f.buckets)+1)
		s = h
	}
	f.series[sig] = s
	return s
}

// labelSignature canonicalises label pairs: sorted by key, joined with
// unprintable separators so values containing '=' or ',' cannot collide.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(1)
		}
		sb.WriteString(p.k)
		sb.WriteByte(2)
		sb.WriteString(p.v)
	}
	return sb.String()
}

// parseSignature splits a canonical signature back into ordered pairs.
func parseSignature(sig string) [][2]string {
	if sig == "" {
		return nil
	}
	var out [][2]string
	for _, part := range strings.Split(sig, "\x01") {
		k, v, _ := strings.Cut(part, "\x02")
		out = append(out, [2]string{k, v})
	}
	return out
}
