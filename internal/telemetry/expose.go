package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time, canonically ordered view of a registry —
// the unit the -metrics-out flag persists and the smoke jobs assert over.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family in a Snapshot.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Type    string           `json:"type"`
	Help    string           `json:"help,omitempty"`
	Metrics []SeriesSnapshot `json:"metrics"`
}

// SeriesSnapshot is one labeled series. Value is set for counters and
// gauges; Count, Sum and Buckets for histograms.
type SeriesSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *int64            `json:"value,omitempty"`
	Count   *int64            `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket; Le is the upper
// bound formatted as Prometheus would ("+Inf" for the last).
type BucketSnapshot struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Family returns the named family, or nil.
func (s *Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Total sums a family's counter/gauge values, or its histogram counts,
// across all series — the "is this family non-zero" smoke check.
func (f *FamilySnapshot) Total() int64 {
	if f == nil {
		return 0
	}
	var total int64
	for _, m := range f.Metrics {
		if m.Value != nil {
			total += *m.Value
		}
		if m.Count != nil {
			total += *m.Count
		}
	}
	return total
}

// Snapshot captures the registry in canonical order. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Families: []FamilySnapshot{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.kind.String(), Help: f.help, Metrics: []SeriesSnapshot{}}
		r.mu.Lock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		series := make([]any, len(sigs))
		for i, sig := range sigs {
			series[i] = f.series[sig]
		}
		r.mu.Unlock()
		for i, sig := range sigs {
			ss := SeriesSnapshot{}
			if pairs := parseSignature(sig); len(pairs) > 0 {
				ss.Labels = make(map[string]string, len(pairs))
				for _, p := range pairs {
					ss.Labels[p[0]] = p[1]
				}
			}
			switch m := series[i].(type) {
			case *Counter:
				v := m.Value()
				ss.Value = &v
			case *Gauge:
				v := m.Value()
				ss.Value = &v
			case *Histogram:
				count := m.Count()
				sum := m.Sum()
				ss.Count = &count
				ss.Sum = &sum
				cum := int64(0)
				for bi := range m.counts {
					cum += m.counts[bi].Load()
					le := "+Inf"
					if bi < len(m.bounds) {
						le = formatFloat(m.bounds[bi])
					}
					ss.Buckets = append(ss.Buckets, BucketSnapshot{Le: le, Count: cum})
				}
			}
			fs.Metrics = append(fs.Metrics, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// WriteJSON writes the canonical JSON snapshot: two-space indented, keys
// in struct order, map keys sorted by encoding/json — byte-stable for
// equal metric state.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers, one line per series, canonical
// family and label order.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.Snapshot().Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			switch f.Type {
			case "counter", "gauge":
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, promLabels(m.Labels, "", ""), *m.Value); err != nil {
					return err
				}
			case "histogram":
				for _, b := range m.Buckets {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, promLabels(m.Labels, "le", b.Le), b.Count); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, promLabels(m.Labels, "", ""), formatFloat(*m.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, promLabels(m.Labels, "", ""), *m.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// promLabels renders a label set (plus an optional extra pair, used for
// histogram "le") in canonical sorted order.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		keys = append(keys, k)
	}
	if extraKey != "" {
		keys = append(keys, extraKey)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := labels[k]
		if k == extraKey {
			v = extraVal
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
