package telemetry

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func fetch(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServerEndpoints(t *testing.T) {
	h := New(Options{Timing: SeededTiming{Seed: 4}, Tracing: true})
	h.Counter("ops_total", "ops", "kind", "x").Add(2)
	h.Trace("t1").Start("step").End()

	srv, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, ctype, body := fetch(t, base+"/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	_ = ctype

	code, ctype, body = fetch(t, base+"/metrics")
	if code != 200 || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics = %d %q", code, ctype)
	}
	fams, err := ParseProm(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if fams["ops_total"] == nil || fams["ops_total"].Samples[`kind="x"`] != 2 {
		t.Errorf("/metrics missing ops_total: %s", body)
	}

	code, ctype, body = fetch(t, base+"/metrics.json")
	if code != 200 || !strings.Contains(ctype, "application/json") || !strings.Contains(body, `"ops_total"`) {
		t.Errorf("/metrics.json = %d %q %q", code, ctype, body)
	}

	code, ctype, body = fetch(t, base+"/trace")
	if code != 200 || !strings.Contains(ctype, "x-ndjson") || !strings.Contains(body, `"span": "step"`) && !strings.Contains(body, `"span":"step"`) {
		t.Errorf("/trace = %d %q %q", code, ctype, body)
	}

	code, _, body = fetch(t, base+"/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestFlagsLifecycle(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.jsonl")

	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{
		"-telemetry-addr", "127.0.0.1:0",
		"-metrics-out", metrics,
		"-trace-out", trace,
	}); err != nil {
		t.Fatal(err)
	}
	if !f.Enabled() {
		t.Fatal("flags set but Enabled() == false")
	}
	h := f.Hub(11)
	if h == nil {
		t.Fatal("enabled flags returned nil hub")
	}
	if h2 := f.Hub(99); h2 != h {
		t.Error("second Hub call built a new hub")
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	h.Counter("runs_total", "runs").Inc()
	h.Trace("t").Start("s").End()

	code, _, _ := fetch(t, "http://"+f.server.Addr+"/healthz")
	if code != 200 {
		t.Errorf("live server /healthz = %d", code)
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	m, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(m), `"runs_total"`) {
		t.Errorf("metrics-out missing runs_total: %s", m)
	}
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), `"span":"s"`) && !strings.Contains(string(tr), `"span": "s"`) {
		t.Errorf("trace-out missing span: %s", tr)
	}
	if _, err := http.Get("http://" + f.server.Addr + "/healthz"); err == nil {
		t.Error("server still up after Finish")
	}
}

func TestFlagsDisabled(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Enabled() {
		t.Error("no flags set but Enabled() == true")
	}
	if f.Hub(1) != nil {
		t.Error("disabled flags returned a hub")
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestServerHardening(t *testing.T) {
	h := New(Options{Timing: SeededTiming{Seed: 4}})
	srv, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.srv.ReadHeaderTimeout <= 0 || srv.srv.WriteTimeout <= 0 ||
		srv.srv.IdleTimeout <= 0 || srv.srv.MaxHeaderBytes <= 0 {
		t.Errorf("debug server missing hardening: %+v", srv.srv)
	}
	// A request with an oversized header block is rejected, not served.
	req, _ := http.NewRequest("GET", "http://"+srv.Addr+"/healthz", nil)
	req.Header.Set("X-Padding", strings.Repeat("a", 64<<10))
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		if resp.StatusCode == 200 {
			t.Error("64KiB header request served despite MaxHeaderBytes")
		}
		resp.Body.Close()
	}
}

func TestServerSurfacesServeError(t *testing.T) {
	h := New(Options{Timing: SeededTiming{Seed: 4}})
	srv, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	// Yank the listener out from under the serve loop: the error must be
	// observable, not swallowed in a bare goroutine.
	srv.ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Err() == nil {
		t.Fatal("serve-loop death after listener close was swallowed")
	}
	if err := srv.Close(); err == nil {
		t.Error("Close returned nil after the serve loop died")
	}
}

func TestServerCloseIsGraceful(t *testing.T) {
	h := New(Options{Timing: SeededTiming{Seed: 4}})
	srv, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	if code, _, _ := fetch(t, "http://"+srv.Addr+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("orderly Close = %v, want nil", err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/healthz"); err == nil {
		t.Error("server still accepting after Close")
	}
}
