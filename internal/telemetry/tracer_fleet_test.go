package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// span records one trace's worth of work on a hub: two spans, the second
// a child, with one attribute — enough to exercise every SpanLine field.
func recordTrace(h *Hub, id string) {
	tr := h.Trace(id)
	sp := tr.Start("download", "pkg", id)
	sp.End()
	tr.Child("download", "verify").End()
}

// TestTracerMarkAndWriteJSONLSince covers the partition-delta export: a
// mark taken mid-run bounds WriteJSONLSince to the spans appended after
// it, and prefix+suffix exports concatenate to the full export per trace.
func TestTracerMarkAndWriteJSONLSince(t *testing.T) {
	h := New(Options{Timing: SeededTiming{Seed: 7}, Tracing: true})
	recordTrace(h, "apk:a")
	mark := h.Tracer().Mark()
	recordTrace(h, "apk:a") // more spans on a marked trace
	recordTrace(h, "apk:b") // a trace born after the mark

	var since strings.Builder
	if err := h.Tracer().WriteJSONLSince(&since, mark); err != nil {
		t.Fatal(err)
	}
	lines, err := ParseTraceJSONL(strings.NewReader(since.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("since-export has %d spans, want 4 (2 late on apk:a + 2 on apk:b)", len(lines))
	}
	for _, l := range lines {
		if l.Trace == "apk:a" && l.Seq < 2 {
			t.Errorf("span seq %d of apk:a predates the mark", l.Seq)
		}
	}

	// A nil mark is the full export: every span of every trace.
	var full strings.Builder
	if err := h.Tracer().WriteJSONL(&full); err != nil {
		t.Fatal(err)
	}
	fullLines, err := ParseTraceJSONL(strings.NewReader(full.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(fullLines) != 6 {
		t.Fatalf("full export has %d spans, want 6", len(fullLines))
	}
}

// TestStitchedTraceMatchesSingleProcess is the trace half of the fleet
// determinism contract at unit scale: the same seeded work recorded on two
// hubs (two workers), exported as partition deltas and stitched with
// WriteTraceJSONL, is byte-identical to one hub recording everything.
func TestStitchedTraceMatchesSingleProcess(t *testing.T) {
	one := New(Options{Timing: SeededTiming{Seed: 3}, Tracing: true})
	for _, id := range []string{"apk:a", "apk:b", "apk:c", "apk:d"} {
		recordTrace(one, id)
	}
	var want strings.Builder
	if err := one.Tracer().WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}

	wa := New(Options{Timing: SeededTiming{Seed: 3}, Tracing: true})
	wb := New(Options{Timing: SeededTiming{Seed: 3}, Tracing: true})
	recordTrace(wa, "apk:c")
	recordTrace(wa, "apk:a")
	recordTrace(wb, "apk:d")
	recordTrace(wb, "apk:b")
	var lines []SpanLine
	for _, w := range []*Hub{wa, wb} {
		var sb strings.Builder
		if err := w.Tracer().WriteJSONL(&sb); err != nil {
			t.Fatal(err)
		}
		part, err := ParseTraceJSONL(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, part...)
	}
	var got strings.Builder
	if err := WriteTraceJSONL(&got, lines); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("stitched trace diverged from single-process export:\n--- single ---\n%s--- stitched ---\n%s", want.String(), got.String())
	}
}

// TestTraceEndpointUnderFederation pins satellite 6: a worker's debug
// server answers /trace with 404 pointing at the coordinator's stitched
// /fleet/trace, and serves it normally when not federated.
func TestTraceEndpointUnderFederation(t *testing.T) {
	h := New(Options{Timing: SeededTiming{Seed: 1}, Tracing: true})
	recordTrace(h, "apk:x")

	fed := httptest.NewServer(NewHandler(h, HandlerOptions{FleetTraceURL: "http://coord:9090/fleet/trace"}))
	defer fed.Close()
	code, _, body := fetch(t, fed.URL+"/trace")
	if code != http.StatusNotFound {
		t.Errorf("federated /trace answered %d, want 404", code)
	}
	if !strings.Contains(body, "/fleet/trace") {
		t.Errorf("federated /trace body does not point at the fleet trace:\n%s", body)
	}

	solo := httptest.NewServer(NewHandler(h, HandlerOptions{}))
	defer solo.Close()
	code, _, body = fetch(t, solo.URL+"/trace")
	if code != http.StatusOK {
		t.Errorf("solo /trace answered %d, want 200", code)
	}
	if !strings.Contains(body, `"trace":"apk:x"`) {
		t.Errorf("solo /trace missing recorded span:\n%s", body)
	}
}
