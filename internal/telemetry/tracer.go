package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records lightweight spans grouped into traces — one trace per
// unit of work whose path through the system should be reconstructable
// (one APK through fetch→decompile→parse→callgraph→lint→cache, one crawl
// visit through lane→device→pageload→netlog). Spans within a trace are
// appended in the order the work happened, which the pipeline's hand-off
// discipline makes sequential per item, so exported traces are
// deterministic whenever the Timing source is.
type Tracer struct {
	timing Timing
	epoch  int64

	mu     sync.Mutex
	traces map[string]*Trace
}

// NewTracer returns an empty tracer drawing durations from timing (nil
// means RealTiming).
func NewTracer(timing Timing) *Tracer {
	if timing == nil {
		timing = RealTiming{}
	}
	return &Tracer{timing: timing, epoch: timing.Start(), traces: make(map[string]*Trace)}
}

// Trace returns the trace with the given id, creating it on first use.
// Safe on a nil tracer (returns a nil, no-op trace).
func (t *Tracer) Trace(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.traces[id]
	if tr == nil {
		tr = &Trace{tracer: t, id: id}
		t.traces[id] = tr
	}
	return tr
}

// Len reports the number of traces recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Trace is one unit of work's span collection. A nil *Trace is a no-op.
type Trace struct {
	tracer *Tracer
	id     string

	mu    sync.Mutex
	spans []spanRecord
	next  int           // next span sequence number
	clock time.Duration // deterministic mode: cumulative start offset
}

type spanRecord struct {
	name    string
	parent  string
	seq     int
	startUS int64
	durUS   int64
	attrs   map[string]string
}

// Span is one in-flight operation within a trace. A nil *Span is a no-op.
type Span struct {
	trace  *Trace
	name   string
	parent string
	seq    int
	stamp  int64
	attrs  map[string]string
	done   bool
}

// Start begins a root-level span. attrs are key/value pairs attached to
// the span at creation.
func (tr *Trace) Start(name string, attrs ...string) *Span {
	return tr.start(name, "", attrs)
}

// Child begins a span parented under the named span.
func (tr *Trace) Child(parent, name string, attrs ...string) *Span {
	return tr.start(name, parent, attrs)
}

func (tr *Trace) start(name, parent string, attrs []string) *Span {
	if tr == nil {
		return nil
	}
	sp := &Span{trace: tr, name: name, parent: parent}
	if len(attrs) > 0 {
		sp.attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			sp.attrs[attrs[i]] = attrs[i+1]
		}
	}
	tr.mu.Lock()
	sp.seq = tr.next
	tr.next++
	tr.mu.Unlock()
	sp.stamp = tr.tracer.timing.Start()
	return sp
}

// SetAttr attaches (or overwrites) one attribute on an unfinished span.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil || sp.done {
		return
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]string, 2)
	}
	sp.attrs[k] = v
}

// End finishes the span, records it into the trace, and returns its
// duration (so callers can Observe it into a histogram). Ending twice or
// ending a nil span is a no-op returning 0.
func (sp *Span) End() time.Duration {
	if sp == nil || sp.done {
		return 0
	}
	sp.done = true
	tr := sp.trace
	timing := tr.tracer.timing
	d := timing.Since(sp.stamp, tr.id, sp.name, sp.seq)
	rec := spanRecord{name: sp.name, parent: sp.parent, seq: sp.seq, durUS: d.Microseconds(), attrs: sp.attrs}
	tr.mu.Lock()
	if timing.Deterministic() {
		// Logical time: spans within a trace abut, so a trace reads as a
		// contiguous timeline however the run was scheduled.
		rec.startUS = tr.clock.Microseconds()
		tr.clock += d
	} else {
		rec.startUS = (sp.stamp - tr.tracer.epoch) / int64(time.Microsecond)
	}
	tr.spans = append(tr.spans, rec)
	tr.mu.Unlock()
	return d
}

// SpanLine is the exported JSONL line for one span — the wire schema the
// trace endpoints speak and the fleet stitcher re-parses. Field order is
// the schema; attrs marshal with sorted keys, so output is byte-stable.
type SpanLine struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Seq     int               `json:"seq"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL exports every finished span, one JSON object per line:
// traces in sorted id order, spans in completion order within each trace.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return t.WriteJSONLSince(w, nil)
}

// Mark snapshots how many spans each trace currently holds. Pair with
// WriteJSONLSince to export only the spans one bounded stretch of work
// (a leased partition) appended to a long-lived tracer.
func (t *Tracer) Mark() map[string]int {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	mark := make(map[string]int, len(t.traces))
	for id, tr := range t.traces {
		tr.mu.Lock()
		mark[id] = len(tr.spans)
		tr.mu.Unlock()
	}
	return mark
}

// WriteJSONLSince exports every finished span appended after mark (all
// spans when mark is nil), in WriteJSONL's order: traces sorted by id,
// spans in completion order within each trace.
func (t *Tracer) WriteJSONLSince(w io.Writer, mark map[string]int) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ids := make([]string, 0, len(t.traces))
	for id := range t.traces {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	traces := make([]*Trace, len(ids))
	for i, id := range ids {
		traces[i] = t.traces[id]
	}
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	for i, tr := range traces {
		skip := mark[ids[i]]
		tr.mu.Lock()
		var spans []spanRecord
		if skip < len(tr.spans) {
			spans = make([]spanRecord, len(tr.spans)-skip)
			copy(spans, tr.spans[skip:])
		}
		tr.mu.Unlock()
		for _, rec := range spans {
			line := SpanLine{
				Trace: ids[i], Span: rec.name, Parent: rec.parent,
				Seq: rec.seq, StartUS: rec.startUS, DurUS: rec.durUS, Attrs: rec.attrs,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParseTraceJSONL decodes a JSONL span export back into lines, in input
// order. Blank lines are skipped; a malformed line fails the parse.
func ParseTraceJSONL(r io.Reader) ([]SpanLine, error) {
	dec := json.NewDecoder(r)
	var lines []SpanLine
	for {
		var line SpanLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return lines, nil
			}
			return nil, err
		}
		lines = append(lines, line)
	}
}

// WriteTraceJSONL stitches span lines gathered from many processes into
// one canonical export: traces sorted by id, spans within a trace ordered
// by sequence number (the per-trace order the emitting process assigned),
// one JSON object per line — the same layout WriteJSONL produces, so a
// stitched fleet trace is byte-comparable with a single-process one.
func WriteTraceJSONL(w io.Writer, lines []SpanLine) error {
	byTrace := make(map[string][]SpanLine)
	ids := make([]string, 0)
	for _, line := range lines {
		if _, seen := byTrace[line.Trace]; !seen {
			ids = append(ids, line.Trace)
		}
		byTrace[line.Trace] = append(byTrace[line.Trace], line)
	}
	sort.Strings(ids)
	enc := json.NewEncoder(w)
	for _, id := range ids {
		spans := byTrace[id]
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
		for _, line := range spans {
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return nil
}
