package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the debug mux for a hub:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   canonical JSON snapshot
//	/healthz        liveness ("ok")
//	/trace          span export as JSONL (empty when tracing is off)
//	/debug/pprof/*  the standard runtime profiles
//
// The handler is safe to serve while a run is mutating the hub: metric
// reads are atomic and trace export copies under the trace locks.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.Registry().WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		h.Registry().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		h.Tracer().WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug endpoint.
type Server struct {
	Addr string // the bound address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// Serve starts the debug server on addr (e.g. "127.0.0.1:9090" or
// "127.0.0.1:0") and returns immediately; the listener runs until Close.
func Serve(addr string, h *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: Handler(h)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
