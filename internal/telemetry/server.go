package telemetry

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// HandlerOptions adjusts how the debug mux is assembled.
type HandlerOptions struct {
	// FleetTraceURL, when set, marks this process as one shard of a
	// federated fleet: /trace answers 404 pointing operators at the
	// coordinator's stitched /fleet/trace instead of serving a partial,
	// single-shard span export that reads like the whole story.
	FleetTraceURL string
}

// Handler builds the debug mux for a hub:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   canonical JSON snapshot
//	/healthz        liveness ("ok")
//	/trace          span export as JSONL (empty when tracing is off)
//	/debug/pprof/*  the standard runtime profiles
//
// The handler is safe to serve while a run is mutating the hub: metric
// reads are atomic and trace export copies under the trace locks.
func Handler(h *Hub) http.Handler {
	return NewHandler(h, HandlerOptions{})
}

// NewHandler is Handler with options.
func NewHandler(h *Hub, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.Registry().WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		h.Registry().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if opts.FleetTraceURL != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, "this process is one shard of a federated run; its local trace is partial.\nfetch the stitched fleet trace from %s\n", opts.FleetTraceURL)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		h.Tracer().WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug endpoint.
type Server struct {
	Addr string // the bound address (useful with ":0")
	srv  *http.Server
	ln   net.Listener

	mu       sync.Mutex
	serveErr error
	done     chan struct{}
}

// drainTimeout bounds how long Close waits for in-flight debug requests
// (a /debug/pprof/profile scrape can run for seconds) before cutting them.
const drainTimeout = 5 * time.Second

// Serve starts the debug server on addr (e.g. "127.0.0.1:9090" or
// "127.0.0.1:0") and returns immediately; the listener runs until Close.
// The server carries header/write/idle timeouts and a header-size cap so a
// slow or hostile scraper cannot wedge a measurement run.
func Serve(addr string, h *Hub) (*Server, error) {
	return ServeOpts(addr, h, HandlerOptions{})
}

// ServeOpts is Serve with handler options.
func ServeOpts(addr string, h *Hub, opts HandlerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           NewHandler(h, opts),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       15 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       60 * time.Second,
			MaxHeaderBytes:    16 << 10,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Err reports the serve-loop error, if any: non-nil when the accept loop
// died for a reason other than an orderly Close (e.g. the listener was
// yanked). Nil while the server is healthy.
func (s *Server) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}

// Close gracefully drains the server: it stops accepting, waits (bounded)
// for in-flight requests, then closes, and returns the first error the
// serve loop or the shutdown hit.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutErr := s.srv.Shutdown(ctx)
	if shutErr != nil {
		// Past the drain budget: cut the stragglers.
		s.srv.Close()
	}
	<-s.done
	if err := s.Err(); err != nil {
		return err
	}
	return shutErr
}
