package fleet

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestTraceIDSeedDerived pins the fleet trace-id contract: stable for a
// seed (every process derives the same id independently), distinct across
// seeds, and carrying the fleet- prefix the stitcher and tests key on.
func TestTraceIDSeedDerived(t *testing.T) {
	a, b := TraceID(42), TraceID(42)
	if a != b {
		t.Errorf("TraceID(42) unstable: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "fleet-") || len(a) != len("fleet-")+16 {
		t.Errorf("TraceID(42) = %q, want fleet-<16 hex>", a)
	}
	if TraceID(43) == a {
		t.Errorf("TraceID(43) collides with TraceID(42): %q", a)
	}
}

// TestQuantilesFromHistogram covers the quantile helper shared by
// /fleet/status and -shard-bench: known observations into the stage
// latency histogram yield ordered, plausible percentiles.
func TestQuantilesFromHistogram(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.Histogram("pipeline_stage_latency_seconds", "stage latency",
		[]float64{0.1, 0.5, 1, 5}, "stage", "download")
	for i := 0; i < 90; i++ {
		h.Observe(0.05) // bulk of the traffic in the first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(2.0) // slow tail in the (1, 5] bucket
	}
	fams, err := telemetry.RegistryFams(r)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := QuantilesOf(fams["pipeline_stage_latency_seconds"], telemetry.LabelString("stage", "download"))
	if !ok {
		t.Fatal("QuantilesOf reported no data")
	}
	if !(q.P50 <= q.P95 && q.P95 <= q.P99) {
		t.Errorf("quantiles out of order: %+v", q)
	}
	if q.P50 > 0.1 {
		t.Errorf("p50 = %v, want within the first bucket (≤0.1)", q.P50)
	}
	if q.P99 <= 1 || q.P99 > 5 {
		t.Errorf("p99 = %v, want in the slow-tail bucket (1, 5]", q.P99)
	}

	byStage := StageQuantiles(fams)
	if _, ok := byStage["download"]; !ok {
		t.Errorf("StageQuantiles missing download stage: %v", byStage)
	}
	if _, ok := byStage["lint"]; ok {
		t.Error("StageQuantiles invented a stage with no data")
	}
}

// TestQuantilesOfMissingSeries covers the no-data path.
func TestQuantilesOfMissingSeries(t *testing.T) {
	if _, ok := QuantilesOf(&telemetry.PromFamily{}, ""); ok {
		t.Error("QuantilesOf on an empty family reported data")
	}
	if StageQuantiles(telemetry.Fams{}) != nil {
		t.Error("StageQuantiles without the latency family should be nil")
	}
}

// TestRenderStatusText smoke-tests the -fleet-status rendering: every
// section of a busy fleet shows up, including lease detail and staleness.
func TestRenderStatusText(t *testing.T) {
	doc := &StatusDoc{
		Shards: 4, Seed: 42, TraceID: TraceID(42), CorpusSize: 2500,
		Done: 2, Leased: 1, Pending: 1,
		Fleet:      Counts{APKs: 1200, CacheHits: 300, Retries: 2, Quarantined: 1},
		APKsPerSec: 12.5, ElapsedS: 96, ETASeconds: 104,
		StageLatency: map[string]Quantiles{
			"download": {P50: 0.05, P95: 0.4, P99: 1.8},
		},
		Partitions: []PartitionStatus{
			{Partition: 0, Tag: "0/4", State: "done", Worker: "w-1", APKs: 600, WallS: 48, APKsPerSec: 12.5},
			{Partition: 1, Tag: "1/4", State: "leased", Worker: "w-2", LeaseExpiresInS: 21, RenewAgeS: 9},
			{Partition: 2, Tag: "2/4", State: "pending"},
		},
		Workers: []WorkerStatus{
			{Name: "w-1", LastSeenAgoS: 2, APKs: 600, Flushed: true},
			{Name: "w-2", LastSeenAgoS: 45, Stale: true, ScrapeErr: "connection refused"},
		},
	}
	var sb strings.Builder
	if err := RenderStatus(&sb, doc); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fleet running · 2/4 partitions done · 1 leased · 1 pending",
		"1200 apks of 2500 corpus entries",
		"12.5 apks/s",
		"eta",
		"cache hits 300 · retries 2 · quarantined 1",
		"download 0.050s/0.400s/1.800s",
		"lease expires in",
		"[STALE]",
		"[flushed]",
		"scrape error: connection refused",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status text missing %q:\n%s", want, out)
		}
	}

	// A finished fleet drops the ETA and flips the headline state.
	doc.Finished, doc.ETASeconds = true, 0
	sb.Reset()
	if err := RenderStatus(&sb, doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fleet finished") || strings.Contains(sb.String(), "eta") {
		t.Errorf("finished rendering wrong:\n%s", sb.String())
	}
}
