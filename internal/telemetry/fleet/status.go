package fleet

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// PartitionStatus is one partition's row in the status document.
type PartitionStatus struct {
	Partition int    `json:"partition"`
	Tag       string `json:"tag"`
	State     string `json:"state"` // pending | leased | done
	Worker    string `json:"worker,omitempty"`
	// LeaseExpiresInS / RenewAgeS describe a live lease.
	LeaseExpiresInS float64 `json:"leaseExpiresInS,omitempty"`
	RenewAgeS       float64 `json:"renewAgeS,omitempty"`
	// APKs / WallS / APKsPerSec describe a completed partition.
	APKs       int64   `json:"apks,omitempty"`
	WallS      float64 `json:"wallS,omitempty"`
	APKsPerSec float64 `json:"apksPerSec,omitempty"`
}

// WorkerStatus is one worker's row in the status document. Staleness is
// measured from the worker's last control-plane contact; a worker silent
// for longer than the lease TTL is flagged stale — by then any lease it
// held has been re-issued.
type WorkerStatus struct {
	Name         string  `json:"name"`
	MetricsURL   string  `json:"metricsUrl,omitempty"`
	LastSeenAgoS float64 `json:"lastSeenAgoS"`
	Stale        bool    `json:"stale,omitempty"`
	Flushed      bool    `json:"flushed,omitempty"`
	ScrapeErr    string  `json:"scrapeErr,omitempty"`
	APKs         int64   `json:"apks,omitempty"`
}

// StatusDoc is the GET /fleet/status payload: the coordinator's ledger,
// the federated counters, and the derived progress estimates, in one
// document an operator (or the -fleet-status subcommand) can render.
type StatusDoc struct {
	Shards       int                  `json:"shards"`
	Seed         int64                `json:"seed"`
	TraceID      string               `json:"traceId,omitempty"`
	CorpusSize   int                  `json:"corpusSize,omitempty"`
	Done         int                  `json:"done"`
	Leased       int                  `json:"leased"`
	Pending      int                  `json:"pending"`
	Finished     bool                 `json:"finished"`
	Fleet        Counts               `json:"fleet"`
	APKsPerSec   float64              `json:"apksPerSec,omitempty"`
	ElapsedS     float64              `json:"elapsedS,omitempty"`
	ETASeconds   float64              `json:"etaSeconds,omitempty"`
	StageLatency map[string]Quantiles `json:"stageLatency,omitempty"`
	Partitions   []PartitionStatus    `json:"partitions"`
	Workers      []WorkerStatus       `json:"workers,omitempty"`
}

// RenderStatus writes the human-readable form of a status document — the
// text `staticscan -fleet-status` prints.
func RenderStatus(w io.Writer, d *StatusDoc) error {
	var sb strings.Builder
	state := "running"
	if d.Finished {
		state = "finished"
	}
	fmt.Fprintf(&sb, "fleet %s · %d/%d partitions done · %d leased · %d pending\n",
		state, d.Done, d.Shards, d.Leased, d.Pending)
	fmt.Fprintf(&sb, "scan: %d apks", d.Fleet.APKs)
	if d.CorpusSize > 0 {
		fmt.Fprintf(&sb, " of %d corpus entries", d.CorpusSize)
	}
	if d.APKsPerSec > 0 {
		fmt.Fprintf(&sb, " · %.1f apks/s", d.APKsPerSec)
	}
	if d.ElapsedS > 0 {
		fmt.Fprintf(&sb, " · elapsed %s", renderDur(d.ElapsedS))
	}
	if d.ETASeconds > 0 && !d.Finished {
		fmt.Fprintf(&sb, " · eta %s", renderDur(d.ETASeconds))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "health: cache hits %d · retries %d · quarantined %d\n",
		d.Fleet.CacheHits, d.Fleet.Retries, d.Fleet.Quarantined)

	if len(d.StageLatency) > 0 {
		stages := make([]string, 0, len(d.StageLatency))
		for s := range d.StageLatency {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		sb.WriteString("stage latency p50/p95/p99:")
		for _, s := range stages {
			q := d.StageLatency[s]
			fmt.Fprintf(&sb, " %s %.3fs/%.3fs/%.3fs", s, q.P50, q.P95, q.P99)
		}
		sb.WriteByte('\n')
	}

	sb.WriteString("partitions:\n")
	for _, p := range d.Partitions {
		fmt.Fprintf(&sb, "  %3d  %-7s", p.Partition, p.State)
		switch p.State {
		case "done":
			fmt.Fprintf(&sb, " %-20s apks %-6d", p.Worker, p.APKs)
			if p.WallS > 0 {
				fmt.Fprintf(&sb, " wall %-8s", renderDur(p.WallS))
			}
			if p.APKsPerSec > 0 {
				fmt.Fprintf(&sb, " %.1f apks/s", p.APKsPerSec)
			}
		case "leased":
			fmt.Fprintf(&sb, " %-20s lease expires in %s", p.Worker, renderDur(p.LeaseExpiresInS))
			if p.RenewAgeS > 0 {
				fmt.Fprintf(&sb, " · renewed %s ago", renderDur(p.RenewAgeS))
			}
		}
		sb.WriteByte('\n')
	}

	if len(d.Workers) > 0 {
		sb.WriteString("workers:\n")
		for _, wk := range d.Workers {
			fmt.Fprintf(&sb, "  %-20s last seen %s ago", wk.Name, renderDur(wk.LastSeenAgoS))
			if wk.APKs > 0 {
				fmt.Fprintf(&sb, " · %d apks", wk.APKs)
			}
			if wk.Stale {
				sb.WriteString(" [STALE]")
			}
			if wk.Flushed {
				sb.WriteString(" [flushed]")
			}
			if wk.ScrapeErr != "" {
				fmt.Fprintf(&sb, " [scrape error: %s]", wk.ScrapeErr)
			}
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// renderDur formats a duration in seconds at operator granularity.
func renderDur(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d >= time.Hour:
		return d.Round(time.Minute).String()
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(100 * time.Millisecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
