// Package fleet is the cross-process observability plane for the sharded
// scan: it federates per-worker metrics registries into one fleet view,
// stitches per-APK traces from every shard into a single JSONL export,
// and assembles the live status document behind GET /fleet/status.
//
// The determinism discipline extends across processes. The fleet trace id
// is derived from the run seed alone; the rollup is the sum of
// per-partition registry *deltas* (each accepted exactly once, with its
// /v1/result payload), combined with integer-exact arithmetic — so two
// same-seed runs produce byte-identical rollups and stitched traces no
// matter how many shards or workers the corpus was spread over. Live
// per-worker scrapes and final-flush snapshots feed the status surface
// only; they never enter the rollup, which is how a killed worker's
// partial counters can't double-count after its partition is re-leased.
package fleet

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// TraceID derives the deterministic fleet trace id for a run seed. Every
// process in the run — coordinator and workers alike — addresses the same
// fleet trace through this id, and per-APK trace ids are prefixed with it
// (`<fleet-id>/apk:<pkg>`), which is what lets spans recorded by
// different OS processes stitch into one export.
func TraceID(seed int64) string {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	return fmt.Sprintf("fleet-%016x", h.Sum64())
}

// Pipeline metric families the status surface reads. These names are the
// public /metrics wire format (registered in internal/pipeline and
// internal/retry's mirror); the fleet plane consumes them like any other
// scraper would.
const (
	famStageItems   = "pipeline_stage_items_total"
	famStageQuar    = "pipeline_stage_quarantined_total"
	famStageLatency = "pipeline_stage_latency_seconds"
	famCache        = "pipeline_cache_total"
	famRetries      = "retry_retries_total"
)

// famSnapshots counts every snapshot the federator ingests, by source:
// result (per-partition delta with an accepted /v1/result), scrape (live
// /metrics pull), final (graceful-shutdown flush).
const famSnapshots = "fleet_snapshot_total"

// Config parameterises a Federator.
type Config struct {
	// Hub receives the federator's own metric families (fleet_snapshot_total).
	Hub *telemetry.Hub
	// Now is the staleness/scrape clock (nil = time.Now); injectable so
	// tests steer it like the coordinator's lease clock.
	Now func() time.Time
	// Client performs live /metrics scrapes (nil = 5s-timeout default).
	Client *http.Client
	// ScrapeGap is the minimum interval between scrape sweeps; /fleet/*
	// requests arriving faster than this reuse the previous scrape
	// (0 = 2s). Scrapes happen on demand — the federator runs no
	// background timers.
	ScrapeGap time.Duration
	// TraceID is the run's fleet trace id (TraceID(seed)). Span lines
	// submitted under this exact id are control-plane spans and are kept
	// out of the deterministic per-APK export.
	TraceID string
}

// partitionData is one accepted partition's contribution: the registry
// delta its run added to the worker's hub, and the spans it recorded.
type partitionData struct {
	worker   string
	fams     telemetry.Fams
	apkSpans []telemetry.SpanLine
	ctl      []telemetry.SpanLine
	wall     time.Duration
}

// workerData is the live (non-rollup) view of one worker process.
type workerData struct {
	metricsURL string
	lastSeen   time.Time
	fams       telemetry.Fams // cumulative, from scrape or final flush
	scrapeErr  string
	finalFlush bool
}

// Federator accumulates snapshots and serves the merged views. All
// methods are safe for concurrent use.
type Federator struct {
	cfg                               Config
	now                               func() time.Time
	client                            *http.Client
	snapResult, snapScrape, snapFinal *telemetry.Counter

	mu         sync.Mutex
	partitions map[int]*partitionData
	workers    map[string]*workerData
	lastScrape time.Time
	scraped    bool
}

// New builds a Federator.
func New(cfg Config) *Federator {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.ScrapeGap <= 0 {
		cfg.ScrapeGap = 2 * time.Second
	}
	snap := func(source string) *telemetry.Counter {
		return cfg.Hub.Counter(famSnapshots, "worker registry snapshots ingested, by source", "source", source)
	}
	return &Federator{
		cfg:        cfg,
		now:        now,
		client:     client,
		snapResult: snap("result"),
		snapScrape: snap("scrape"),
		snapFinal:  snap("final"),
		partitions: make(map[int]*partitionData),
		workers:    make(map[string]*workerData),
	}
}

// AcceptResult ingests the metrics delta and trace spans a worker
// submitted alongside an accepted /v1/result. Call it only for accepted
// results — the lease check upstream is what makes the rollup
// exactly-once. Span lines on the fleet trace id itself are control-plane
// spans and are routed to the control view, not the per-APK export.
func (f *Federator) AcceptResult(partition int, worker string, prom, trace []byte, wall time.Duration) error {
	fams, err := telemetry.ParseProm(bytes.NewReader(prom))
	if err != nil {
		return fmt.Errorf("fleet: partition %d metrics: %w", partition, err)
	}
	lines, err := telemetry.ParseTraceJSONL(bytes.NewReader(trace))
	if err != nil {
		return fmt.Errorf("fleet: partition %d trace: %w", partition, err)
	}
	pd := &partitionData{worker: worker, fams: fams, wall: wall}
	for _, line := range lines {
		if line.Trace == f.cfg.TraceID {
			pd.ctl = append(pd.ctl, line)
		} else {
			pd.apkSpans = append(pd.apkSpans, line)
		}
	}
	f.mu.Lock()
	f.partitions[partition] = pd
	f.mu.Unlock()
	f.snapResult.Inc()
	return nil
}

// RegisterWorker records (or refreshes) a worker's live /metrics URL and
// marks it seen. Workers re-announce the URL on every lease request, so
// restarts re-register naturally.
func (f *Federator) RegisterWorker(name, metricsURL string) {
	if name == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	wd := f.workers[name]
	if wd == nil {
		wd = &workerData{}
		f.workers[name] = wd
	}
	if metricsURL != "" {
		wd.metricsURL = metricsURL
	}
	wd.lastSeen = f.now()
}

// Heartbeat marks a worker seen (renewals, result posts).
func (f *Federator) Heartbeat(name string) { f.RegisterWorker(name, "") }

// FinalFlush ingests the cumulative registry snapshot a worker pushes on
// graceful shutdown. It feeds the live worker view only — the rollup is
// built from per-partition deltas, so a final flush can never
// double-count work that was already accepted.
func (f *Federator) FinalFlush(worker string, prom []byte) error {
	fams, err := telemetry.ParseProm(bytes.NewReader(prom))
	if err != nil {
		return fmt.Errorf("fleet: final snapshot from %s: %w", worker, err)
	}
	f.mu.Lock()
	wd := f.workers[worker]
	if wd == nil {
		wd = &workerData{}
		f.workers[worker] = wd
	}
	wd.fams = fams
	wd.lastSeen = f.now()
	wd.finalFlush = true
	f.mu.Unlock()
	f.snapFinal.Inc()
	return nil
}

// Scrape pulls /metrics from every registered worker, rate-limited by
// ScrapeGap. It is called on demand when a /fleet/* view is requested;
// failures are recorded per worker and surfaced in the status document
// rather than failing the request.
func (f *Federator) Scrape(ctx context.Context) {
	f.mu.Lock()
	if f.scraped && f.now().Sub(f.lastScrape) < f.cfg.ScrapeGap {
		f.mu.Unlock()
		return
	}
	f.lastScrape = f.now()
	f.scraped = true
	type target struct{ name, url string }
	var targets []target
	for name, wd := range f.workers {
		if wd.metricsURL != "" && !wd.finalFlush {
			targets = append(targets, target{name, wd.metricsURL})
		}
	}
	f.mu.Unlock()

	for _, t := range targets {
		fams, err := f.scrapeOne(ctx, t.url)
		f.mu.Lock()
		if wd := f.workers[t.name]; wd != nil {
			if err != nil {
				wd.scrapeErr = err.Error()
			} else {
				wd.scrapeErr = ""
				wd.fams = fams
			}
		}
		f.mu.Unlock()
		if err == nil {
			f.snapScrape.Inc()
		}
	}
}

func (f *Federator) scrapeOne(ctx context.Context, url string) (telemetry.Fams, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return telemetry.ParseProm(io.LimitReader(resp.Body, 64<<20))
}

// Rollup merges every accepted partition delta into one exposition — the
// deterministic fleet totals. Partitions merge in index order; the
// arithmetic is commutative, the order just keeps iteration observable.
func (f *Federator) Rollup() telemetry.Fams {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rollupLocked()
}

func (f *Federator) rollupLocked() telemetry.Fams {
	rollup := make(telemetry.Fams)
	for _, p := range f.partitionOrder() {
		telemetry.MergeFams(rollup, f.partitions[p].fams)
	}
	return rollup
}

func (f *Federator) partitionOrder() []int {
	parts := make([]int, 0, len(f.partitions))
	for p := range f.partitions {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	return parts
}

// FleetFams builds the full federated exposition: every accepted
// partition's delta labeled shard="<index>", plus the rollup labeled
// shard="fleet" — so `fleet == Σ shards` holds series-wise for every
// counter family and is checkable straight off /fleet/metrics.
func (f *Federator) FleetFams() telemetry.Fams {
	f.mu.Lock()
	defer f.mu.Unlock()
	fleet := make(telemetry.Fams)
	for _, p := range f.partitionOrder() {
		telemetry.MergeFams(fleet, telemetry.FamsWithLabel(f.partitions[p].fams, "shard", strconv.Itoa(p)))
	}
	telemetry.MergeFams(fleet, telemetry.FamsWithLabel(f.rollupLocked(), "shard", "fleet"))
	return fleet
}

// WriteRollupProm writes the deterministic rollup as Prometheus text —
// the byte-identity surface the fleet determinism test asserts.
func (f *Federator) WriteRollupProm(w io.Writer) error {
	return telemetry.WriteFams(w, f.Rollup())
}

// WriteFleetProm writes the shard-labeled + rollup exposition.
func (f *Federator) WriteFleetProm(w io.Writer) error {
	return telemetry.WriteFams(w, f.FleetFams())
}

// WriteFleetJSON writes the same exposition as structured JSON, keyed by
// family name.
func (f *Federator) WriteFleetJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.FleetFams())
}

// WriteTraceJSONL writes the stitched fleet-wide per-APK trace: every
// span every shard recorded, grouped by trace id in sorted order. The
// topology-dependent control spans (partition and run spans on the fleet
// trace id) are deliberately excluded — they live in the control view —
// so this export is byte-identical for the same seed at any shard/worker
// count.
func (f *Federator) WriteTraceJSONL(w io.Writer) error {
	f.mu.Lock()
	var lines []telemetry.SpanLine
	for _, p := range f.partitionOrder() {
		lines = append(lines, f.partitions[p].apkSpans...)
	}
	f.mu.Unlock()
	return telemetry.WriteTraceJSONL(w, lines)
}

// ControlSpans returns the fleet-trace control spans workers submitted
// (their per-partition run spans), for merging with the coordinator's own
// partition spans into the control-trace view.
func (f *Federator) ControlSpans() []telemetry.SpanLine {
	f.mu.Lock()
	defer f.mu.Unlock()
	var lines []telemetry.SpanLine
	for _, p := range f.partitionOrder() {
		lines = append(lines, f.partitions[p].ctl...)
	}
	return lines
}

// Counts are the headline pipeline counters extracted from an exposition.
type Counts struct {
	APKs        int64 `json:"apks"`
	CacheHits   int64 `json:"cacheHits"`
	Retries     int64 `json:"retries"`
	Quarantined int64 `json:"quarantined"`
}

func countsOf(fams telemetry.Fams) Counts {
	return Counts{
		APKs:        counterSeries(fams, famStageItems, telemetry.LabelString("stage", "download", "dir", "out")),
		CacheHits:   counterSeries(fams, famCache, telemetry.LabelString("result", "hit")),
		Retries:     counterTotal(fams, famRetries),
		Quarantined: counterTotal(fams, famStageQuar),
	}
}

// RollupCounts extracts the fleet-wide headline counters.
func (f *Federator) RollupCounts() Counts { return countsOf(f.Rollup()) }

// PartitionCounts extracts one accepted partition's headline counters,
// the worker that completed it, and the coordinator-measured wall time.
func (f *Federator) PartitionCounts(partition int) (c Counts, worker string, wall time.Duration, ok bool) {
	f.mu.Lock()
	pd := f.partitions[partition]
	f.mu.Unlock()
	if pd == nil {
		return Counts{}, "", 0, false
	}
	return countsOf(pd.fams), pd.worker, pd.wall, true
}

// WorkerCounts extracts a worker's live headline counters from its latest
// scraped or flushed snapshot. ok reports whether any snapshot exists.
func (f *Federator) WorkerCounts(name string) (Counts, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	wd := f.workers[name]
	if wd == nil || wd.fams == nil {
		return Counts{}, false
	}
	return countsOf(wd.fams), true
}

// WorkerInfo is the live view of one worker process.
type WorkerInfo struct {
	Name       string
	MetricsURL string
	LastSeen   time.Time
	ScrapeErr  string
	Flushed    bool
}

// Workers lists registered workers sorted by name.
func (f *Federator) Workers() []WorkerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	infos := make([]WorkerInfo, 0, len(f.workers))
	for name, wd := range f.workers {
		infos = append(infos, WorkerInfo{
			Name: name, MetricsURL: wd.metricsURL, LastSeen: wd.lastSeen,
			ScrapeErr: wd.scrapeErr, Flushed: wd.finalFlush,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// StageQuantiles estimates p50/p95/p99 per-item latency per pipeline
// stage from the rollup's fixed-bucket histograms.
func (f *Federator) StageQuantiles() map[string]Quantiles {
	return StageQuantiles(f.Rollup())
}

// StageQuantiles extracts per-stage latency quantiles from any exposition
// carrying pipeline_stage_latency_seconds.
func StageQuantiles(fams telemetry.Fams) map[string]Quantiles {
	fam := fams[famStageLatency]
	if fam == nil {
		return nil
	}
	out := make(map[string]Quantiles)
	for _, stage := range []string{"metadata", "download", "analyze", "lint", "urls"} {
		series := telemetry.LabelString("stage", stage)
		q, ok := QuantilesOf(fam, series)
		if ok {
			out[stage] = q
		}
	}
	return out
}

// Quantiles is one latency distribution summarised at the conventional
// operator percentiles.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// QuantilesOf summarises one histogram series. ok reports whether the
// series exists and is non-empty.
func QuantilesOf(fam *telemetry.PromFamily, series string) (Quantiles, bool) {
	p50, ok1 := fam.Quantile(series, 0.50)
	p95, ok2 := fam.Quantile(series, 0.95)
	p99, ok3 := fam.Quantile(series, 0.99)
	if !ok1 || !ok2 || !ok3 {
		return Quantiles{}, false
	}
	return Quantiles{P50: p50, P95: p95, P99: p99}, true
}

// counterTotal sums every series of a counter family.
func counterTotal(fams telemetry.Fams, name string) int64 {
	fam := fams[name]
	if fam == nil {
		return 0
	}
	var total float64
	for _, v := range fam.Samples {
		total += v
	}
	return int64(total)
}

// counterSeries reads one series of a counter family by its canonical
// label set.
func counterSeries(fams telemetry.Fams, name, series string) int64 {
	fam := fams[name]
	if fam == nil {
		return 0
	}
	return int64(fam.Samples[series])
}
