package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Flags wires the shared telemetry command-line surface into a binary:
//
//	-telemetry-addr ADDR   serve /metrics, /metrics.json, /healthz, /trace
//	                       and /debug/pprof live during the run
//	-metrics-out FILE      write the canonical JSON metrics snapshot on exit
//	-trace-out FILE        write the span trace as JSONL on exit
//	-telemetry-wallclock   record real wall-clock durations instead of the
//	                       seed-derived deterministic timings
//
// By default durations are seed-derived (SeededTiming), so two same-seed
// runs write byte-identical snapshots and traces — the property the
// determinism tests and the CI smoke job assert. Pass
// -telemetry-wallclock to trade that for real latencies.
type Flags struct {
	Addr       string
	MetricsOut string
	TraceOut   string
	Wallclock  bool

	// FleetTraceURL marks this process as one shard of a federated run:
	// the debug server's /trace answers 404 pointing at the coordinator's
	// stitched export instead of a misleading partial trace. Set by the
	// binary (not a flag) once it knows it is running as a worker.
	FleetTraceURL string

	hub    *Hub
	server *Server
}

// Register installs the telemetry flags on fs (the default set when nil).
func (f *Flags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.Addr, "telemetry-addr", "", "serve /metrics, /healthz, /trace and pprof on this address during the run")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the JSON metrics snapshot to this file on exit (\"-\" for stdout)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the span trace as JSONL to this file on exit (\"-\" for stdout)")
	fs.BoolVar(&f.Wallclock, "telemetry-wallclock", false, "record wall-clock durations instead of deterministic seed-derived timings")
}

// Enabled reports whether any telemetry output was requested.
func (f *Flags) Enabled() bool {
	return f.Addr != "" || f.MetricsOut != "" || f.TraceOut != ""
}

// Hub returns the run's hub, building it on first call: nil when no
// telemetry flag was set (instrumented code treats a nil hub as a no-op),
// otherwise a hub with seed-derived timing (or wall clock when requested)
// and tracing enabled iff a trace consumer exists.
func (f *Flags) Hub(seed int64) *Hub {
	if !f.Enabled() {
		return nil
	}
	if f.hub == nil {
		var timing Timing = SeededTiming{Seed: seed}
		if f.Wallclock {
			timing = RealTiming{}
		}
		f.hub = New(Options{Timing: timing, Tracing: f.TraceOut != "" || f.Addr != ""})
	}
	return f.hub
}

// Start launches the -telemetry-addr debug server when requested. Call
// after Hub; the bound address is logged to stderr.
func (f *Flags) Start() error {
	if f.Addr == "" || f.hub == nil {
		return nil
	}
	srv, err := ServeOpts(f.Addr, f.hub, HandlerOptions{FleetTraceURL: f.FleetTraceURL})
	if err != nil {
		return err
	}
	f.server = srv
	fmt.Fprintf(os.Stderr, "telemetry: serving /metrics /metrics.json /healthz /trace /debug/pprof on http://%s\n", srv.Addr)
	return nil
}

// Finish writes -metrics-out and -trace-out and stops the debug server.
// Safe to call unconditionally (defer it right after Register/parse).
func (f *Flags) Finish() error {
	defer f.server.Close()
	if f.hub == nil {
		return nil
	}
	if f.MetricsOut != "" {
		if err := writeTo(f.MetricsOut, f.hub.Registry().WriteJSON); err != nil {
			return fmt.Errorf("telemetry: metrics-out: %w", err)
		}
	}
	if f.TraceOut != "" {
		if err := writeTo(f.TraceOut, f.hub.Tracer().WriteJSONL); err != nil {
			return fmt.Errorf("telemetry: trace-out: %w", err)
		}
	}
	return nil
}

func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
