package telemetry

import (
	"strings"
	"testing"
)

// workload drives a registry through a representative mix of counter,
// gauge and histogram traffic. n scales the volume so two invocations can
// play the roles of two partitions of one larger run.
func workload(r *Registry, n int) {
	c := r.Counter("apks_total", "analysed APKs", "stage", "download")
	g := r.Gauge("inflight", "in-flight items")
	h := r.Histogram("latency_seconds", "per-item latency", []float64{0.1, 0.5, 1, 5})
	for i := 0; i < n; i++ {
		c.Inc()
		g.Set(int64(i % 3))
		h.Observe(0.05 + float64(i%7)*0.2)
	}
	r.Counter("apks_total", "analysed APKs", "stage", "analyze").Add(int64(n / 2))
}

func promText(t *testing.T, fams Fams) string {
	t.Helper()
	var sb strings.Builder
	if err := WriteFams(&sb, fams); err != nil {
		t.Fatalf("WriteFams: %v", err)
	}
	return sb.String()
}

// TestFederationRoundTripByteIdentical pins the wire contract: a registry
// exposition parsed with ParseProm and re-rendered with WriteFams is
// byte-identical to the original WriteProm text.
func TestFederationRoundTripByteIdentical(t *testing.T) {
	r := NewRegistry()
	workload(r, 57)
	var orig strings.Builder
	if err := r.WriteProm(&orig); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(orig.String()))
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	if got := promText(t, fams); got != orig.String() {
		t.Errorf("round trip diverged:\n--- WriteProm ---\n%s--- WriteFams ---\n%s", orig.String(), got)
	}
}

// TestDiffMergePartitionIdentity is the federation arithmetic tentpole in
// miniature: splitting one run into two leased stretches, diffing each
// against its start mark, and merging the deltas must reproduce the
// whole-run exposition byte-for-byte — histograms included, whose sums
// diff and merge on integer-nanosecond accumulators.
func TestDiffMergePartitionIdentity(t *testing.T) {
	whole := NewRegistry()
	workload(whole, 40)
	workload(whole, 23)
	want, err := RegistryFams(whole)
	if err != nil {
		t.Fatal(err)
	}

	split := NewRegistry()
	mark0, err := RegistryFams(split)
	if err != nil {
		t.Fatal(err)
	}
	workload(split, 40)
	mark1, err := RegistryFams(split)
	if err != nil {
		t.Fatal(err)
	}
	workload(split, 23)
	mark2, err := RegistryFams(split)
	if err != nil {
		t.Fatal(err)
	}

	merged := make(Fams)
	MergeFams(merged, DiffFams(mark1, mark0))
	MergeFams(merged, DiffFams(mark2, mark1))

	// Gauges are last-write-wins in a registry but add under MergeFams
	// (fleet semantics); for the identity check compare on the counter and
	// histogram families, which are the federated surface.
	delete(merged, "inflight")
	delete(want, "inflight")
	if got, wantText := promText(t, merged), promText(t, want); got != wantText {
		t.Errorf("merged deltas diverged from whole run:\n--- whole ---\n%s--- merged ---\n%s", wantText, got)
	}
}

// TestDiffFamsDropsNothingNew covers the boundary rules: series absent
// from before subtract zero, families absent from after are dropped.
func TestDiffFamsDropsNothingNew(t *testing.T) {
	before := NewRegistry()
	before.Counter("old_total", "old").Add(5)
	b, err := RegistryFams(before)
	if err != nil {
		t.Fatal(err)
	}
	after := NewRegistry()
	after.Counter("new_total", "new").Add(7)
	a, err := RegistryFams(after)
	if err != nil {
		t.Fatal(err)
	}
	delta := DiffFams(a, b)
	if delta["old_total"] != nil {
		t.Error("family absent from after survived the diff")
	}
	if got := delta["new_total"].Samples[""]; got != 7 {
		t.Errorf("new series delta = %v, want 7", got)
	}
}

// TestFamsWithLabelCanonical checks the shard-stamping relabel: the
// injected pair lands sorted among existing labels with canonical
// escaping, and histogram bucket keys keep their le pair.
func TestFamsWithLabelCanonical(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", "zone", `we"ird\z`).Inc()
	r.Histogram("h_seconds", "h", []float64{1}, "stage", "dl").Observe(0.5)
	fams, err := RegistryFams(r)
	if err != nil {
		t.Fatal(err)
	}
	out := FamsWithLabel(fams, "shard", "3/4")
	cKey := LabelString("shard", "3/4", "zone", `we"ird\z`)
	if _, ok := out["c_total"].Samples[cKey]; !ok {
		t.Errorf("relabeled counter key missing; have %v", keysOf(out["c_total"].Samples))
	}
	hKey := LabelString("shard", "3/4", "stage", "dl")
	if _, ok := out["h_seconds"].Counts[hKey]; !ok {
		t.Errorf("relabeled histogram count key missing; have %v", keysOf(out["h_seconds"].Counts))
	}
	found := false
	for k := range out["h_seconds"].Buckets {
		if strings.Contains(k, `le="1"`) && strings.Contains(k, `shard="3/4"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("relabeled bucket keys lost le or shard: %v", keysOf(out["h_seconds"].Buckets))
	}
}

func keysOf(m map[string]float64) []string {
	return sortedKeys(m)
}

// TestParseLabelPairsErrors pins the malformed-label failure modes.
func TestParseLabelPairsErrors(t *testing.T) {
	for _, bad := range []string{
		"noequals",
		`k=unquoted`,
		`k="unterminated`,
		`k="v" extra`,
	} {
		if _, err := ParseLabelPairs(bad); err == nil {
			t.Errorf("ParseLabelPairs(%q) succeeded, want error", bad)
		}
	}
	pairs, err := ParseLabelPairs(`b="2",a="x\"y\\z\n"`)
	if err != nil {
		t.Fatalf("ParseLabelPairs: %v", err)
	}
	if len(pairs) != 2 || pairs[1][1] != "x\"y\\z\n" {
		t.Errorf("unexpected pairs: %v", pairs)
	}
}

// FuzzParseProm hammers the exposition parser — the one surface that
// consumes bytes from another process. Invariants: no panic on arbitrary
// input, and for any input that parses, WriteFams∘ParseProm is a
// canonicalisation fixpoint (a second round trip is byte-identical).
func FuzzParseProm(f *testing.F) {
	r := NewRegistry()
	workload(r, 11)
	var sb strings.Builder
	_ = r.WriteProm(&sb)
	f.Add(sb.String())
	f.Add("# HELP a_total counts\n# TYPE a_total counter\na_total{x=\"1\"} 4\n")
	f.Add("h_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.75\nh_count 2\n")
	f.Add("weird{a=\"quote \\\" brace } comma ,\"} 1\n")
	f.Add("bare 1e3\nnolabels_total 0\n")
	f.Add("# garbage comment\nbroken{ 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		fams, err := ParseProm(strings.NewReader(input))
		if err != nil {
			return
		}
		var w1 strings.Builder
		if err := WriteFams(&w1, fams); err != nil {
			t.Fatalf("WriteFams on parsed input: %v", err)
		}
		again, err := ParseProm(strings.NewReader(w1.String()))
		if err != nil {
			t.Fatalf("re-parse of canonical output failed: %v\noutput:\n%s", err, w1.String())
		}
		var w2 strings.Builder
		if err := WriteFams(&w2, again); err != nil {
			t.Fatalf("WriteFams on re-parse: %v", err)
		}
		if w1.String() != w2.String() {
			t.Fatalf("canonicalisation not a fixpoint:\n--- first ---\n%s--- second ---\n%s", w1.String(), w2.String())
		}
		// Relabeling arbitrary parsed input must never panic either.
		_ = FamsWithLabel(fams, "shard", "0/1")
	})
}
