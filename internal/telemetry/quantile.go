package telemetry

import (
	"math"
	"sort"
)

// HistogramQuantile estimates the q-quantile (0 ≤ q ≤ 1) of a fixed-bucket
// histogram from its cumulative bucket counts, Prometheus
// histogram_quantile style: find the bucket the target rank falls in and
// interpolate linearly within it. bounds are the ascending upper bucket
// bounds and cumulative the matching cumulative counts; both must include
// the +Inf bucket last. Ranks landing in the +Inf bucket clamp to the
// highest finite bound (the honest answer for an unbounded bucket), and
// ranks in the first bucket interpolate from zero. Reports false for an
// empty histogram or malformed inputs.
func HistogramQuantile(q float64, bounds, cumulative []float64) (float64, bool) {
	if len(bounds) == 0 || len(bounds) != len(cumulative) || q < 0 || q > 1 || math.IsNaN(q) {
		return 0, false
	}
	total := cumulative[len(cumulative)-1]
	if total <= 0 {
		return 0, false
	}
	rank := q * total
	idx := sort.Search(len(cumulative), func(i int) bool { return cumulative[i] >= rank })
	if idx == len(cumulative) {
		idx = len(cumulative) - 1
	}
	if math.IsInf(bounds[idx], 1) {
		// The tail bucket has no upper edge; the best defensible point
		// estimate is the largest finite bound.
		for i := idx - 1; i >= 0; i-- {
			if !math.IsInf(bounds[i], 1) {
				return bounds[i], true
			}
		}
		return 0, false
	}
	var lower, below float64
	if idx > 0 {
		lower = bounds[idx-1]
		below = cumulative[idx-1]
	}
	inBucket := cumulative[idx] - below
	if inBucket <= 0 {
		return bounds[idx], true
	}
	return lower + (bounds[idx]-lower)*(rank-below)/inBucket, true
}

// Quantile estimates the q-quantile of one histogram series in a parsed
// family, identified by its rendered label set without the "le" pair (""
// for an unlabeled histogram). Reports false when the series is missing
// or empty.
func (f *PromFamily) Quantile(series string, q float64) (float64, bool) {
	if f == nil {
		return 0, false
	}
	type bkt struct {
		le    float64
		count float64
	}
	var bkts []bkt
	for bk, v := range f.Buckets {
		rest, le, ok := splitLe(bk)
		if !ok || rest != series {
			continue
		}
		bkts = append(bkts, bkt{le: le, count: v})
	}
	if len(bkts) == 0 {
		return 0, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	bounds := make([]float64, len(bkts))
	cumulative := make([]float64, len(bkts))
	for i, b := range bkts {
		bounds[i] = b.le
		cumulative[i] = b.count
	}
	return HistogramQuantile(q, bounds, cumulative)
}

// Quantile estimates the q-quantile of a live histogram from its current
// bucket counts. Reports false on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	if h == nil {
		return 0, false
	}
	bounds := make([]float64, 0, len(h.bounds)+1)
	cumulative := make([]float64, 0, len(h.bounds)+1)
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		if i < len(h.bounds) {
			bounds = append(bounds, h.bounds[i])
		} else {
			bounds = append(bounds, math.Inf(1))
		}
		cumulative = append(cumulative, float64(running))
	}
	return HistogramQuantile(q, bounds, cumulative)
}
