package telemetry

import (
	"hash/fnv"
	"math"
	"time"
)

// Timing supplies every duration the telemetry layer records. The two
// implementations trade truth for reproducibility:
//
//   - RealTiming measures wall clock — what a production run wants on its
//     live /metrics endpoint.
//   - SeededTiming derives each duration from a hash of (seed, scope,
//     name, seq), so a duration depends only on *what* was measured,
//     never on scheduling — what a deterministic snapshot wants.
//
// Callers obtain a stamp from Start when the operation begins and hand it
// back to Since when it ends, together with a stable identity for the
// operation: scope (e.g. a package or visit id), name (e.g. "download"),
// and a sequence number disambiguating repeats within the scope.
type Timing interface {
	// Start returns an opaque stamp marking the beginning of an operation.
	Start() int64
	// Since returns the operation's duration given its start stamp and
	// stable identity.
	Since(start int64, scope, name string, seq int) time.Duration
	// Deterministic reports whether durations are scheduling-independent.
	Deterministic() bool
}

// RealTiming measures wall-clock time.
type RealTiming struct{}

// Start returns the current nanosecond reading.
func (RealTiming) Start() int64 { return time.Now().UnixNano() }

// Since returns wall time elapsed since start; identity is ignored.
func (RealTiming) Since(start int64, _, _ string, _ int) time.Duration {
	return time.Duration(time.Now().UnixNano() - start)
}

// Deterministic reports false: wall clock varies run to run.
func (RealTiming) Deterministic() bool { return false }

// SeededTiming derives durations from a hash of (seed, scope, name, seq),
// mapped log-uniformly into [100µs, 250ms). Runs with equal seeds and
// equal work report byte-identical timings regardless of goroutine
// interleaving — the seeded-determinism discipline the fault injectors
// established, applied to the clock.
type SeededTiming struct {
	// Seed drives every derived duration; equal seeds replay equal
	// timings. Zero is a valid (and the conventional default) seed.
	Seed int64
}

const (
	seededMinDur = 100 * time.Microsecond
	seededMaxDur = 250 * time.Millisecond
)

// Start returns 0: seeded durations do not depend on when they started.
func (SeededTiming) Start() int64 { return 0 }

// Since hashes the operation's identity into a stable duration.
func (s SeededTiming) Since(_ int64, scope, name string, seq int) time.Duration {
	h := fnv.New64a()
	var buf [8]byte
	putInt64(&buf, s.Seed)
	h.Write(buf[:])
	h.Write([]byte(scope))
	h.Write([]byte{0})
	h.Write([]byte(name))
	h.Write([]byte{0})
	putInt64(&buf, int64(seq))
	h.Write(buf[:])
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53) // uniform [0,1)
	// Log-uniform between the bounds: most operations are fast, a few are
	// slow — the shape a latency histogram exists to capture.
	d := float64(seededMinDur) * math.Pow(float64(seededMaxDur)/float64(seededMinDur), u)
	return time.Duration(d)
}

// Deterministic reports true.
func (SeededTiming) Deterministic() bool { return true }

func putInt64(buf *[8]byte, v int64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}
