package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Federation arithmetic over parsed Prometheus expositions. The fleet
// plane moves metrics between processes as Prometheus text (WriteProm on
// the worker, ParseProm on the coordinator) and merges them here:
// per-partition deltas are computed with DiffFams, folded into the fleet
// rollup with MergeFams, and labeled per shard with FamsWithLabel.
//
// Determinism contract: all values our registries expose are either
// integers (counters, gauges, bucket/series counts — exact in float64) or
// histogram sums that were accumulated in integer nanoseconds and exposed
// as nanos/1e9. sumNanos recovers the exact integer, so diffs and merges
// are performed on integers and re-exposed the same way — a rollup of N
// per-shard sums is byte-identical however the work was partitioned.

// Fams is one parsed exposition: family name → family.
type Fams = map[string]*PromFamily

// sumNanos recovers the exact integer-nanosecond accumulator behind an
// exposed histogram sum. Histogram.Observe stores math.Round(v*1e9) and
// exposes nanos/1e9 through a round-tripping float format, so rounding the
// product recovers the integer exactly for any realistic magnitude
// (absolute error stays below 0.5 up to ~5e15 nanos ≈ 57 days).
func sumNanos(sum float64) int64 { return int64(math.Round(sum * 1e9)) }

func nanosToSum(n int64) float64 { return float64(n) / 1e9 }

// CloneFams deep-copies a parsed exposition.
func CloneFams(src Fams) Fams {
	dst := make(Fams, len(src))
	for name, f := range src {
		dst[name] = cloneFamily(f)
	}
	return dst
}

func cloneFamily(f *PromFamily) *PromFamily {
	c := &PromFamily{
		Name: f.Name, Type: f.Type, Help: f.Help,
		Samples: make(map[string]float64, len(f.Samples)),
		Buckets: make(map[string]float64, len(f.Buckets)),
		Sums:    make(map[string]float64, len(f.Sums)),
		Counts:  make(map[string]float64, len(f.Counts)),
	}
	for k, v := range f.Samples {
		c.Samples[k] = v
	}
	for k, v := range f.Buckets {
		c.Buckets[k] = v
	}
	for k, v := range f.Sums {
		c.Sums[k] = v
	}
	for k, v := range f.Counts {
		c.Counts[k] = v
	}
	return c
}

// DiffFams returns after − before, series-wise: the delta one bounded
// stretch of work (a leased partition) contributed to a live registry.
// Families or series absent from before subtract zero; families absent
// from after are dropped (a registry never loses families). Histogram
// sums subtract on the integer-nanosecond accumulators, so a delta of two
// deterministic snapshots is itself deterministic.
func DiffFams(after, before Fams) Fams {
	delta := CloneFams(after)
	for name, f := range delta {
		b := before[name]
		if b == nil {
			continue
		}
		for k := range f.Samples {
			f.Samples[k] -= b.Samples[k]
		}
		for k := range f.Buckets {
			f.Buckets[k] -= b.Buckets[k]
		}
		for k := range f.Counts {
			f.Counts[k] -= b.Counts[k]
		}
		for k := range f.Sums {
			f.Sums[k] = nanosToSum(sumNanos(f.Sums[k]) - sumNanos(b.Sums[k]))
		}
	}
	return delta
}

// MergeFams folds src into dst: counters and gauges add (the fleet
// semantics — every shard's traffic is real traffic), histogram buckets
// and counts add bucket-wise, and sums add on the integer-nanosecond
// accumulators. Families or series new to dst are deep-copied in; Type
// and Help stick to the first registration, as in the live registry.
func MergeFams(dst, src Fams) {
	for name, sf := range src {
		df := dst[name]
		if df == nil {
			dst[name] = cloneFamily(sf)
			continue
		}
		for k, v := range sf.Samples {
			df.Samples[k] += v
		}
		for k, v := range sf.Buckets {
			df.Buckets[k] += v
		}
		for k, v := range sf.Counts {
			df.Counts[k] += v
		}
		for k, v := range sf.Sums {
			df.Sums[k] = nanosToSum(sumNanos(df.Sums[k]) + sumNanos(v))
		}
	}
}

// FamsWithLabel returns a copy of src with one label pair injected into
// every series — how the fleet registry stamps each shard's families with
// shard="<partition>". Series whose label sets cannot be parsed are
// passed through unchanged rather than dropped.
func FamsWithLabel(src Fams, key, val string) Fams {
	relabel := func(m map[string]float64) map[string]float64 {
		out := make(map[string]float64, len(m))
		for k, v := range m {
			out[insertLabel(k, key, val)] = v
		}
		return out
	}
	dst := make(Fams, len(src))
	for name, f := range src {
		dst[name] = &PromFamily{
			Name: f.Name, Type: f.Type, Help: f.Help,
			Samples: relabel(f.Samples),
			Buckets: relabel(f.Buckets),
			Sums:    relabel(f.Sums),
			Counts:  relabel(f.Counts),
		}
	}
	return dst
}

// insertLabel adds key="val" to a rendered label set and re-renders it
// canonically (sorted keys, escaped values). Unparseable inputs are
// returned unchanged.
func insertLabel(rendered, key, val string) string {
	pairs, err := ParseLabelPairs(rendered)
	if err != nil {
		return rendered
	}
	pairs = append(pairs, [2]string{key, val})
	return renderLabelPairs(pairs)
}

// ParseLabelPairs splits a rendered Prometheus label set (the text inside
// the braces, e.g. `a="x",le="0.5"`) into key/value pairs, honouring
// quoted values with backslash escapes. An empty string yields nil.
func ParseLabelPairs(s string) ([][2]string, error) {
	if s == "" {
		return nil, nil
	}
	var pairs [][2]string
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("telemetry: label set %q: missing '='", s)
		}
		key := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("telemetry: label set %q: unquoted value", s)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i+1])
				default:
					val.WriteByte(c)
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("telemetry: label set %q: unterminated value", s)
		}
		pairs = append(pairs, [2]string{key, val.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("telemetry: label set %q: expected ',' at %d", s, i)
			}
			i++
		}
	}
	return pairs, nil
}

// renderLabelPairs renders pairs sorted by key with canonical escaping —
// the same form promLabels emits, minus the braces.
func renderLabelPairs(pairs [][2]string) string {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p[0])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p[1]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// LabelString renders key/value pairs as a canonical label set string
// (sorted keys, escaped values, no braces) — the series-key form Samples,
// Sums and Counts are indexed by.
func LabelString(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	pairs := make([][2]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, [2]string{kv[i], kv[i+1]})
	}
	return renderLabelPairs(pairs)
}

// labelsSuffix wraps a rendered label set in braces, or returns "" for an
// unlabeled series.
func labelsSuffix(rendered string) string {
	if rendered == "" {
		return ""
	}
	return "{" + rendered + "}"
}

// WriteFams renders a parsed exposition back to canonical Prometheus
// text: families sorted by name, series sorted by label signature, and —
// for our own registries' output — byte-identical to the WriteProm text
// the families were parsed from. It is the serialization half of the
// federation round trip.
func WriteFams(w io.Writer, fams Fams) error {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if f.Type != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
				return err
			}
		}
		if err := writeFamilySeries(w, f); err != nil {
			return err
		}
	}
	return nil
}

func writeFamilySeries(w io.Writer, f *PromFamily) error {
	if len(f.Samples) > 0 {
		keys := sortedKeys(f.Samples)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelsSuffix(k), formatFloat(f.Samples[k])); err != nil {
				return err
			}
		}
	}
	// Histogram series are grouped by the label set without "le", in
	// sorted order, with buckets in ascending bound order — the layout
	// WriteProm produces.
	series := sortedKeys(f.Counts)
	for _, sk := range series {
		type bkt struct {
			le    float64
			key   string
			count float64
		}
		var bkts []bkt
		for bk, v := range f.Buckets {
			rest, le, ok := splitLe(bk)
			if !ok || rest != sk {
				continue
			}
			bkts = append(bkts, bkt{le: le, key: bk, count: v})
		}
		if len(bkts) == 0 && f.Type == "" {
			// Orphan _sum/_count series with no parseable bucket and no TYPE
			// comment: rendering them would emit lines a re-parse cannot
			// attribute to a histogram family. Not representable; drop.
			continue
		}
		sort.Slice(bkts, func(i, j int) bool {
			if bkts[i].le != bkts[j].le {
				return bkts[i].le < bkts[j].le
			}
			// Distinct keys can render the same bound ("0" vs "000");
			// tie-break on the key so output order is deterministic.
			return bkts[i].key < bkts[j].key
		})
		for _, b := range bkts {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n", f.Name, labelsSuffix(b.key), formatFloat(b.count)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelsSuffix(sk), formatFloat(f.Sums[sk])); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %s\n", f.Name, labelsSuffix(sk), formatFloat(f.Counts[sk])); err != nil {
			return err
		}
	}
	return nil
}

// splitLe strips the "le" pair out of a rendered bucket label set,
// returning the remaining canonical label set and the bound ("+Inf" maps
// to math.Inf(1)). Reports false when no parseable le is present.
func splitLe(rendered string) (rest string, le float64, ok bool) {
	pairs, err := ParseLabelPairs(rendered)
	if err != nil {
		return "", 0, false
	}
	kept := pairs[:0]
	found := false
	for _, p := range pairs {
		if p[0] == "le" && !found {
			found = true
			if p[1] == "+Inf" {
				le = math.Inf(1)
			} else if v, err := strconv.ParseFloat(p[1], 64); err == nil {
				le = v
			} else {
				return "", 0, false
			}
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return "", 0, false
	}
	return renderLabelPairs(kept), le, true
}

// RegistryFams snapshots a registry as a parsed exposition — the
// render/parse round trip the wire protocol performs, done in-process.
func RegistryFams(r *Registry) (Fams, error) {
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		return nil, err
	}
	return ParseProm(strings.NewReader(sb.String()))
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
