// Package telemetry is the measurement pipeline's unified observability
// layer: a metrics registry (atomic counters, gauges and fixed-bucket
// histograms with Prometheus-style text exposition and a canonical JSON
// snapshot), a lightweight span tracer that reconstructs one APK's or one
// crawl visit's path through the system as JSONL, and a debug HTTP server
// exposing both live alongside net/http/pprof.
//
// The package is dependency-free and deterministic by design. Everything
// time-shaped flows through an injectable Timing source: RealTiming
// measures wall clock, SeededTiming derives every duration from a hash of
// (seed, scope, name, seq) — the same discipline internal/faults uses for
// fault decisions — so two same-seed runs emit byte-identical metric
// snapshots and trace files no matter how goroutines interleave. Metric
// handles are nil-safe: a nil *Hub, *Counter, *Gauge, *Histogram, *Trace
// or *Span is a no-op, so instrumented code never branches on whether
// telemetry is enabled.
package telemetry

import "time"

// Hub bundles the three telemetry facilities a run shares: the metrics
// Registry, the span Tracer (nil unless Options.Tracing), and the Timing
// source both draw durations from. A nil *Hub is a valid no-op hub.
type Hub struct {
	reg    *Registry
	tracer *Tracer
	timing Timing
}

// Options parameterises New.
type Options struct {
	// Timing supplies durations for histograms and spans; nil means
	// RealTiming (wall clock).
	Timing Timing
	// Tracing enables the span tracer. Off by default: traces retain every
	// span until exported, which only pays for itself when a -trace-out or
	// debug endpoint will consume them.
	Tracing bool
}

// New builds a Hub. New(Options{}) is a real-clock, metrics-only hub.
func New(opts Options) *Hub {
	t := opts.Timing
	if t == nil {
		t = RealTiming{}
	}
	h := &Hub{reg: NewRegistry(), timing: t}
	if opts.Tracing {
		h.tracer = NewTracer(t)
	}
	return h
}

// Registry returns the hub's metrics registry (nil for a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Tracer returns the hub's tracer, nil when tracing is disabled.
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer
}

// Counter returns the counter registered under name with the given label
// pairs, creating it on first use.
func (h *Hub) Counter(name, help string, labels ...string) *Counter {
	if h == nil {
		return nil
	}
	return h.reg.Counter(name, help, labels...)
}

// Gauge returns the gauge registered under name with the given label
// pairs, creating it on first use.
func (h *Hub) Gauge(name, help string, labels ...string) *Gauge {
	if h == nil {
		return nil
	}
	return h.reg.Gauge(name, help, labels...)
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds and label pairs, creating it on first use. The
// bucket layout is fixed by the first registration of the family.
func (h *Hub) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if h == nil {
		return nil
	}
	return h.reg.Histogram(name, help, buckets, labels...)
}

// Trace returns the trace with the given id, creating it on first use.
// Returns nil (a no-op trace) when tracing is disabled.
func (h *Hub) Trace(id string) *Trace {
	if h == nil || h.tracer == nil {
		return nil
	}
	return h.tracer.Trace(id)
}

// Timer starts timing one operation identified by (scope, name); see
// Timing for how the elapsed duration is derived. Safe on a nil hub.
func (h *Hub) Timer(scope, name string) Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{timing: h.timing, scope: scope, name: name, stamp: h.timing.Start()}
}

// Timer measures one operation through the hub's Timing source.
type Timer struct {
	timing Timing
	scope  string
	name   string
	stamp  int64
}

// Elapsed returns the operation's duration (0 for a zero Timer).
func (t Timer) Elapsed() time.Duration {
	if t.timing == nil {
		return 0
	}
	return t.timing.Since(t.stamp, t.scope, t.name, 0)
}

// ObserveInto records the elapsed duration, in seconds, into hist (which
// may be nil) and returns it.
func (t Timer) ObserveInto(hist *Histogram) time.Duration {
	d := t.Elapsed()
	if t.timing != nil {
		hist.Observe(d.Seconds())
	}
	return d
}
