package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTrace records the same two-trace workload against a fresh hub.
func buildTrace(seed int64) *Tracer {
	h := New(Options{Timing: SeededTiming{Seed: seed}, Tracing: true})
	tr := h.Trace("apk:com.example")
	root := tr.Start("analyze", "app", "com.example")
	fetch := tr.Child("analyze", "fetch")
	fetch.SetAttr("bytes", "1024")
	fetch.End()
	tr.Child("analyze", "parse").End()
	root.End()

	visit := h.Trace("visit:com.other/0")
	visit.Start("pageload").End()
	return h.Tracer()
}

func TestTraceJSONLByteStableAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace(7).WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace(7).WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("same-seed traces differ:\n%s----\n%s", a.String(), b.String())
	}
	var c bytes.Buffer
	if err := buildTrace(8).WriteJSONL(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different seeds produced identical traces")
	}
}

func TestTraceJSONLShape(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace(7).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d span lines, want 4:\n%s", len(lines), buf.String())
	}
	type row struct {
		Trace   string            `json:"trace"`
		Span    string            `json:"span"`
		Parent  string            `json:"parent"`
		Seq     int               `json:"seq"`
		StartUS int64             `json:"start_us"`
		DurUS   int64             `json:"dur_us"`
		Attrs   map[string]string `json:"attrs"`
	}
	rows := make([]row, len(lines))
	for i, ln := range lines {
		if err := json.Unmarshal([]byte(ln), &rows[i]); err != nil {
			t.Fatalf("line %d: %v: %s", i, err, ln)
		}
	}
	// Traces sorted by id: apk:... before visit:...
	if rows[0].Trace != "apk:com.example" || rows[3].Trace != "visit:com.other/0" {
		t.Errorf("trace order wrong: %+v", rows)
	}
	// Spans within a trace are in completion order: fetch, parse, analyze.
	if rows[0].Span != "fetch" || rows[1].Span != "parse" || rows[2].Span != "analyze" {
		t.Errorf("span order wrong: %+v", rows)
	}
	if rows[0].Parent != "analyze" || rows[2].Parent != "" {
		t.Errorf("parents wrong: %+v", rows)
	}
	if rows[0].Attrs["bytes"] != "1024" || rows[2].Attrs["app"] != "com.example" {
		t.Errorf("attrs lost: %+v", rows)
	}
	// Deterministic mode: spans abut — each start is the previous start+dur.
	if rows[1].StartUS != rows[0].StartUS+rows[0].DurUS {
		t.Errorf("spans do not abut: %+v then %+v", rows[0], rows[1])
	}
	for i, r := range rows {
		if r.DurUS <= 0 {
			t.Errorf("row %d has non-positive duration: %+v", i, r)
		}
	}
}

func TestTracerDisabledIsNoOp(t *testing.T) {
	h := New(Options{Timing: SeededTiming{Seed: 1}}) // Tracing: false
	sp := h.Trace("x").Start("work")
	if d := sp.End(); d != 0 {
		t.Errorf("disabled tracer returned duration %v", d)
	}
	var buf bytes.Buffer
	if err := h.Tracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("disabled tracer exported spans: %s", buf.String())
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	h := New(Options{Timing: SeededTiming{Seed: 1}, Tracing: true})
	tr := h.Trace("t")
	sp := tr.Start("once")
	first := sp.End()
	if first == 0 {
		t.Fatal("first End returned 0")
	}
	if again := sp.End(); again != 0 {
		t.Errorf("second End returned %v, want 0", again)
	}
	if n := h.Tracer().Len(); n != 1 {
		t.Errorf("trace count = %d, want 1", n)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) != 1 {
		t.Errorf("span recorded %d times", len(tr.spans))
	}
}
