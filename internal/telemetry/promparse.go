package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromFamily is one parsed metric family from a text exposition. Sample
// keys are the rendered label sets exactly as exposed (sorted, escaped),
// without the surrounding braces — "" for an unlabeled series.
type PromFamily struct {
	Name string
	Type string
	Help string
	// Samples holds counter/gauge values.
	Samples map[string]float64
	// Buckets, Sums and Counts hold histogram series; Buckets keys include
	// the "le" label.
	Buckets map[string]float64
	Sums    map[string]float64
	Counts  map[string]float64
}

// ParseProm parses a Prometheus text exposition (the subset WriteProm
// emits: HELP/TYPE comments, counter, gauge and histogram samples). It is
// the round-trip half of the exposition contract — tests and the smoke
// tool use it to assert a scrape is well-formed and complete.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	get := func(name string) *PromFamily {
		f := fams[name]
		if f == nil {
			f = &PromFamily{
				Name:    name,
				Samples: make(map[string]float64),
				Buckets: make(map[string]float64),
				Sums:    make(map[string]float64),
				Counts:  make(map[string]float64),
			}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "HELP" {
				get(fields[2]).Help = fields[3]
			}
			if len(fields) >= 4 && fields[1] == "TYPE" {
				get(fields[2]).Type = fields[3]
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: parse line %d: %w", ln, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			get(strings.TrimSuffix(name, "_bucket")).Buckets[labels] = value
		case strings.HasSuffix(name, "_sum") && fams[strings.TrimSuffix(name, "_sum")] != nil:
			get(strings.TrimSuffix(name, "_sum")).Sums[labels] = value
		case strings.HasSuffix(name, "_count") && fams[strings.TrimSuffix(name, "_count")] != nil:
			get(strings.TrimSuffix(name, "_count")).Counts[labels] = value
		default:
			get(name).Samples[labels] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return fams, nil
}

// parsePromSample splits `name{labels} value` (labels optional) without
// breaking on '}' or spaces inside quoted label values.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		end := closingBrace(line, i)
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = line[i+1 : end]
		rest = strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("bad metric name in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, v, nil
}

// validMetricName enforces the Prometheus metric-name charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*). Accepting looser names would break the
// federation round trip: a name with spaces (or an empty one) renders
// into a line that cannot be re-parsed.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// closingBrace finds the index of the '}' matching the '{' at open,
// honouring quoted label values with backslash escapes.
func closingBrace(line string, open int) int {
	inQuote := false
	for i := open + 1; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}
