package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests", "code", "200")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("requests_total", "requests", "code", "200"); c2 != c {
		t.Error("same name+labels did not return the same handle")
	}
	if c3 := r.Counter("requests_total", "requests", "code", "500"); c3 == c {
		t.Error("different labels returned the same handle")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}

	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1}, "stage", "dl")
	h.Observe(0.05)
	h.Observe(0.1) // boundary: le="0.1" bucket
	h.Observe(0.5)
	h.Observe(5)
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); got < 5.64 || got > 5.66 {
		t.Errorf("sum = %v, want ~5.65", got)
	}
	if got := h.counts[0].Load(); got != 2 {
		t.Errorf("bucket[0.1] = %d, want 2 (0.05 and the 0.1 boundary)", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("bucket[+Inf] = %d, want 1", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var h *Hub
	h.Counter("x", "").Inc()
	h.Gauge("x", "").Set(1)
	h.Histogram("x", "", nil).Observe(1)
	h.Trace("t").Start("s").End()
	if d := h.Timer("a", "b").Elapsed(); d != 0 {
		t.Errorf("nil hub timer = %v", d)
	}
	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
	var g *Gauge
	g.Add(1)
	var hist *Histogram
	hist.Observe(1)
	var tr *Trace
	tr.Start("x").End()
	var sp *Span
	sp.SetAttr("a", "b")
	sp.End()
	if h.Registry().Snapshot() == nil {
		t.Error("nil registry snapshot is nil")
	}
}

func TestSnapshotCanonicalOrderAndTotals(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last", "b", "2").Add(2)
	r.Counter("zz_total", "last", "a", "1").Add(3)
	r.Counter("aa_total", "first").Add(1)
	snap := r.Snapshot()
	if len(snap.Families) != 2 || snap.Families[0].Name != "aa_total" || snap.Families[1].Name != "zz_total" {
		t.Fatalf("families out of order: %+v", snap.Families)
	}
	zz := snap.Family("zz_total")
	if zz.Total() != 5 {
		t.Errorf("zz total = %d, want 5", zz.Total())
	}
	// Series sorted by label signature: a=1 before b=2.
	if zz.Metrics[0].Labels["a"] != "1" || zz.Metrics[1].Labels["b"] != "2" {
		t.Errorf("series out of order: %+v", zz.Metrics)
	}
	if snap.Family("absent") != nil {
		t.Error("absent family found")
	}
}

func TestJSONSnapshotByteStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("c_total", "help", "k", "v").Add(3)
		r.Gauge("g", "help").Set(-2)
		h := r.Histogram("h_seconds", "help", []float64{0.01, 0.1}, "stage", "x")
		h.Observe(0.004)
		h.Observe(0.2)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("snapshots differ:\n%s\n----\n%s", a.String(), b.String())
	}
	for _, want := range []string{`"c_total"`, `"value": 3`, `"le": "+Inf"`, `"sum":`} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("snapshot missing %s:\n%s", want, a.String())
		}
	}
}

// TestPromExpositionRoundTrips renders a registry as Prometheus text,
// parses it back, and checks every series and histogram bucket survived —
// the exposition contract a scraper relies on.
func TestPromExpositionRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests served", "code", "200", "path", `with"quote`).Add(12)
	r.Gauge("inflight", "in-flight ops").Set(3)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1}, "stage", "dl")
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, buf.String())
	}

	if fams["req_total"].Type != "counter" {
		t.Errorf("req_total type = %q", fams["req_total"].Type)
	}
	if got := fams["req_total"].Samples[`code="200",path="with\"quote"`]; got != 12 {
		t.Errorf("req_total = %v, want 12 (samples: %v)", got, fams["req_total"].Samples)
	}
	if got := fams["inflight"].Samples[""]; got != 3 {
		t.Errorf("inflight = %v", got)
	}
	lat := fams["lat_seconds"]
	if lat.Type != "histogram" {
		t.Fatalf("lat type = %q", lat.Type)
	}
	checks := map[string]float64{
		`le="0.1",stage="dl"`:  1,
		`le="1",stage="dl"`:    1,
		`le="+Inf",stage="dl"`: 2,
	}
	for labels, want := range checks {
		if got := lat.Buckets[labels]; got != want {
			t.Errorf("bucket{%s} = %v, want %v (buckets: %v)", labels, got, want, lat.Buckets)
		}
	}
	if got := lat.Counts[`stage="dl"`]; got != 2 {
		t.Errorf("count = %v", got)
	}
	if got := lat.Sums[`stage="dl"`]; got < 2.04 || got > 2.06 {
		t.Errorf("sum = %v", got)
	}
}

func TestHubTimerSeededDeterministic(t *testing.T) {
	h1 := New(Options{Timing: SeededTiming{Seed: 9}})
	h2 := New(Options{Timing: SeededTiming{Seed: 9}})
	d1 := h1.Timer("pkg.a", "download").Elapsed()
	d2 := h2.Timer("pkg.a", "download").Elapsed()
	if d1 != d2 {
		t.Errorf("same identity, different durations: %v vs %v", d1, d2)
	}
	if d1 < 100*time.Microsecond || d1 >= 250*time.Millisecond {
		t.Errorf("duration %v outside [100µs, 250ms)", d1)
	}
	if other := h1.Timer("pkg.b", "download").Elapsed(); other == d1 {
		t.Errorf("different scopes hashed to the same duration %v", d1)
	}
	if diff := New(Options{Timing: SeededTiming{Seed: 10}}).Timer("pkg.a", "download").Elapsed(); diff == d1 {
		t.Errorf("different seeds hashed to the same duration %v", d1)
	}
}

func TestRealTimingMeasuresWallClock(t *testing.T) {
	h := New(Options{})
	timer := h.Timer("x", "y")
	time.Sleep(2 * time.Millisecond)
	if d := timer.Elapsed(); d < time.Millisecond {
		t.Errorf("elapsed %v, want >= 1ms", d)
	}
}

// TestRegistryConcurrentUse hammers one registry from many goroutines —
// meaningful under -race, which CI runs for this package.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", "h", "w", string(rune('a'+w%4))).Inc()
				r.Gauge("g", "h").Add(1)
				r.Histogram("h_seconds", "h", nil, "w", string(rune('a'+w%2))).Observe(float64(i) / 100)
				if i%100 == 0 {
					r.Snapshot()
					var buf bytes.Buffer
					r.WriteProm(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Snapshot().Family("c_total").Total(); got != 8*500 {
		t.Errorf("c_total = %d, want %d", got, 8*500)
	}
}
