// Package intern deduplicates frequently-repeated strings across the
// static-analysis hot path. Decompiling and parsing thousands of APKs
// produces the same class names, method names and package prefixes over and
// over ("android.webkit.WebView", "onCreate", "com.applovin", …); interning
// collapses every occurrence to one shared string, cutting retained memory
// for in-flight analyses and cached results.
//
// The pool is sharded to keep lock contention negligible under the
// pipeline's worker parallelism, and every stored string is cloned so that
// interning a substring never pins its (much larger) parent — e.g. an
// identifier sliced out of a whole decompiled source file.
package intern

import (
	"strings"
	"sync"
)

const shardCount = 64

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

var shards [shardCount]shard

func init() {
	for i := range shards {
		shards[i].m = make(map[string]string)
	}
}

// fnv32a hashes s with 32-bit FNV-1a (inlined to avoid a hash.Hash alloc).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// String returns the canonical copy of s, storing a clone on first sight.
func String(s string) string {
	if s == "" {
		return ""
	}
	sh := &shards[fnv32a(s)&(shardCount-1)]
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m[s]; ok {
		return v
	}
	// Clone so the pool never pins a larger backing array (s is often a
	// slice of a decompiled source file).
	c := strings.Clone(s)
	sh.m[c] = c
	return c
}

// Len reports the number of distinct strings interned, for tests and
// observability.
func Len() int {
	n := 0
	for i := range shards {
		shards[i].mu.RLock()
		n += len(shards[i].m)
		shards[i].mu.RUnlock()
	}
	return n
}
