package intern

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestStringCanonical(t *testing.T) {
	a := String("android.webkit.WebView")
	b := String("android.webkit." + "WebView")
	if a != b {
		t.Fatalf("values differ: %q vs %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Error("interned copies do not share backing data")
	}
	if String("") != "" {
		t.Error("empty string not identity")
	}
}

func TestSubstringDoesNotPinParent(t *testing.T) {
	parent := "package com.example; class Foo extends WebView {}"
	i := strings.Index(parent, "WebView")
	sub := parent[i : i+len("WebView")]
	got := String(sub)
	if got != "WebView" {
		t.Fatalf("got %q", got)
	}
	if unsafe.StringData(got) == unsafe.StringData(sub) {
		t.Error("interned string shares backing array with parent slice")
	}
}

func TestConcurrentIntern(t *testing.T) {
	var wg sync.WaitGroup
	results := make([][]string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]string, 100)
			for i := range out {
				out[i] = String(fmt.Sprintf("com.sdk%d.ads", i))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range results[g] {
			if unsafe.StringData(results[g][i]) != unsafe.StringData(results[0][i]) {
				t.Fatalf("goroutine %d entry %d not canonical", g, i)
			}
		}
	}
}
