package resultcache

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

type result struct {
	Pkg     string
	Methods []string
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d, %v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: nothing evicted
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("a = %d, want 10", v)
	}
}

func TestPersistentTierPromotion(t *testing.T) {
	store := NewMemStore()
	c1 := NewPersistent[result](10, store, nil)
	want := result{Pkg: "com.example", Methods: []string{"loadUrl", "postUrl"}}
	c1.Put("k", want)

	// A fresh cache over the same store — as after a process restart.
	c2 := NewPersistent[result](10, store, nil)
	got, ok := c2.Get("k")
	if !ok {
		t.Fatal("persistent tier missed")
	}
	if got.Pkg != want.Pkg || len(got.Methods) != 2 || got.Methods[0] != "loadUrl" {
		t.Errorf("got %+v", got)
	}
	st := c2.Stats()
	if st.StoreHits != 1 || st.MemHits != 0 {
		t.Errorf("first lookup stats = %+v", st)
	}
	// Promoted: the second lookup is a memory hit.
	if _, ok := c2.Get("k"); !ok {
		t.Fatal("promoted entry missed")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Errorf("post-promotion stats = %+v", st)
	}
}

func TestEvictionKeepsPersistentCopy(t *testing.T) {
	store := NewMemStore()
	c := NewPersistent[int](1, store, nil)
	c.Put("a", 1)
	c.Put("b", 2) // evicts a from the LRU only
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a not recovered from store: %d, %v", v, ok)
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "0a1b2c@fp/../weird key"
	if _, ok, err := store.Load(key); err != nil || ok {
		t.Fatalf("empty load = %v, %v", ok, err)
	}
	if err := store.Store(key, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	b, ok, err := store.Load(key)
	if err != nil || !ok || string(b) != `{"x":1}` {
		t.Fatalf("load = %q, %v, %v", b, ok, err)
	}

	c := NewPersistent[result](4, store, nil)
	c.Put("digest@fp", result{Pkg: "p"})
	c2 := NewPersistent[result](4, store, nil)
	if v, ok := c2.Get("digest@fp"); !ok || v.Pkg != "p" {
		t.Errorf("dir-backed roundtrip = %+v, %v", v, ok)
	}
}

type failingStore struct{ err error }

func (s failingStore) Load(string) ([]byte, bool, error) { return nil, false, s.err }
func (s failingStore) Store(string, []byte) error        { return s.err }

func TestStoreFailuresAreMisses(t *testing.T) {
	c := NewPersistent[int](4, failingStore{err: errors.New("disk on fire")}, nil)
	c.Put("k", 7)
	// Memory tier still works despite the failing store.
	if v, ok := c.Get("k"); !ok || v != 7 {
		t.Fatalf("mem tier broken: %d, %v", v, ok)
	}
	if _, ok := c.Get("other"); ok {
		t.Error("failing store produced a hit")
	}
	st := c.Stats()
	if st.Errors == 0 || st.Misses == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHitRate(t *testing.T) {
	c := New[int](4)
	if r := c.Stats().HitRate(); r != 0 {
		t.Errorf("empty hit rate = %v", r)
	}
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	c.Get("missing")
	if r := c.Stats().HitRate(); r != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", r)
	}
	c.ResetStats()
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("reset stats = %+v", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewPersistent[int](32, NewMemStore(), nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%50)
				if v, ok := c.Get(key); ok && v != i%50 {
					t.Errorf("key %s = %d", key, v)
					return
				}
				c.Put(key, i%50)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 32 {
		t.Errorf("len = %d, want bound 32", c.Len())
	}
}

func TestCorruptDirStoreBlobIsPurgedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewPersistent[result](8, store, nil)
	warm.Put("k", result{Pkg: "com.app", Methods: []string{"loadUrl"}})

	// Smash the on-disk blob the way a crashed writer or bit rot would.
	if err := os.WriteFile(store.path("k"), []byte(`{"Pkg": truncat`), 0o644); err != nil {
		t.Fatal(err)
	}

	cold := NewPersistent[result](8, store, nil)
	if _, ok := cold.Get("k"); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	st := cold.Stats()
	if st.Purged != 1 {
		t.Errorf("Purged = %d, want 1", st.Purged)
	}
	if _, err := os.Stat(store.path("k")); !os.IsNotExist(err) {
		t.Errorf("corrupt blob still on disk (stat err %v)", err)
	}
	// The recompute path stores cleanly and the next lookup hits.
	cold.Put("k", result{Pkg: "com.app", Methods: []string{"loadUrl"}})
	third := NewPersistent[result](8, store, nil)
	if v, ok := third.Get("k"); !ok || v.Pkg != "com.app" {
		t.Errorf("recomputed value not durable: %+v, %v", v, ok)
	}
}

func TestUnreadableBlobIsPurged(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewPersistent[result](8, store, nil)
	warm.Put("k", result{Pkg: "com.app"})
	// A directory where the blob file should be makes ReadFile error
	// without os.IsNotExist, exercising the Load-error purge path.
	if err := os.Remove(store.path("k")); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(store.path("k"), 0o755); err != nil {
		t.Fatal(err)
	}
	cold := NewPersistent[result](8, store, nil)
	if _, ok := cold.Get("k"); ok {
		t.Fatal("unreadable blob served as a hit")
	}
	st := cold.Stats()
	if st.Errors == 0 {
		t.Error("Load error not counted")
	}
	if st.Purged != 1 {
		t.Errorf("Purged = %d, want 1", st.Purged)
	}
	cold.Put("k", result{Pkg: "com.app"})
	if v, ok := NewPersistent[result](8, store, nil).Get("k"); !ok || v.Pkg != "com.app" {
		t.Errorf("slot not reusable after purge: %+v, %v", v, ok)
	}
}

// deleterStore records Delete calls and can fail them.
type deleterStore struct {
	MemStore
	deleted   []string
	deleteErr error
}

func (s *deleterStore) Delete(key string) error {
	if s.deleteErr != nil {
		return s.deleteErr
	}
	s.deleted = append(s.deleted, key)
	return s.MemStore.Delete(key)
}

func TestCorruptMemBlobPurgeUsesDeleter(t *testing.T) {
	store := &deleterStore{MemStore: MemStore{m: map[string][]byte{"k": []byte("not json")}}}
	c := NewPersistent[result](8, store, nil)
	if _, ok := c.Get("k"); ok {
		t.Fatal("garbage blob served as a hit")
	}
	if len(store.deleted) != 1 || store.deleted[0] != "k" {
		t.Errorf("deleted = %v, want [k]", store.deleted)
	}
	if st := c.Stats(); st.Purged != 1 {
		t.Errorf("Purged = %d, want 1", st.Purged)
	}
}

func TestPurgeDeleteFailureCountsError(t *testing.T) {
	store := &deleterStore{
		MemStore:  MemStore{m: map[string][]byte{"k": []byte("not json")}},
		deleteErr: errors.New("store is read-only"),
	}
	c := NewPersistent[result](8, store, nil)
	if _, ok := c.Get("k"); ok {
		t.Fatal("garbage blob served as a hit")
	}
	st := c.Stats()
	if st.Purged != 0 {
		t.Errorf("Purged = %d, want 0 when Delete fails", st.Purged)
	}
	if st.Errors < 2 {
		t.Errorf("Errors = %d, want >= 2 (load fault + delete failure)", st.Errors)
	}
}

func TestMemStoreDelete(t *testing.T) {
	s := NewMemStore()
	s.Store("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Load("k"); ok {
		t.Error("blob survived Delete")
	}
	if err := s.Delete("absent"); err != nil {
		t.Errorf("deleting an absent key errored: %v", err)
	}
}

func TestDirStoreDeleteAbsentKey(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("never-stored"); err != nil {
		t.Errorf("deleting an absent key errored: %v", err)
	}
}
