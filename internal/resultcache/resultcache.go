// Package resultcache is a content-addressed cache for expensive analysis
// results. Keys are content digests (the pipeline uses the APK signing
// digest plus an SDK-index fingerprint), so a cached value is valid for as
// long as the bytes it was computed from exist anywhere — across runs,
// snapshots and machines.
//
// The cache is two-tiered: a bounded in-memory LRU tier answers hot
// lookups without decoding, and an optional persistent BlobStore tier
// (e.g. a directory of files) survives process restarts. Values found only
// in the persistent tier are decoded and promoted into the LRU. Eviction
// from the LRU never removes the persistent copy, so the memory bound and
// the durable corpus size are independent.
package resultcache

import (
	"container/list"
	"encoding/json"
	"sync"

	"repro/internal/telemetry"
)

// BlobStore is the persistent tier: a durable key → blob map. Implementations
// must be safe for concurrent use.
type BlobStore interface {
	// Load returns the blob for key, reporting whether it exists.
	Load(key string) ([]byte, bool, error)
	// Store durably writes the blob for key.
	Store(key string, blob []byte) error
}

// BlobDeleter is implemented by stores that can remove a blob. When the
// persistent tier returns a corrupt or unreadable blob, the cache purges
// it through this interface so the entry becomes an honest miss — the
// value is recomputed and re-stored — instead of a permanent error.
type BlobDeleter interface {
	// Delete removes the blob for key; deleting an absent key is a no-op.
	Delete(key string) error
}

// Codec converts cached values to and from persistent blobs.
type Codec[V any] interface {
	Marshal(v V) ([]byte, error)
	Unmarshal(blob []byte) (V, error)
}

// JSONCodec persists values as JSON.
type JSONCodec[V any] struct{}

// Marshal encodes v as JSON.
func (JSONCodec[V]) Marshal(v V) ([]byte, error) { return json.Marshal(v) }

// Unmarshal decodes a JSON blob.
func (JSONCodec[V]) Unmarshal(blob []byte) (V, error) {
	var v V
	err := json.Unmarshal(blob, &v)
	return v, err
}

// Stats counts cache traffic. Hits = MemHits + StoreHits.
type Stats struct {
	Hits      uint64
	Misses    uint64
	MemHits   uint64 // answered by the LRU tier
	StoreHits uint64 // answered by the persistent tier (and promoted)
	Evictions uint64 // LRU entries dropped to respect MaxEntries
	Errors    uint64 // persistent-tier failures (treated as misses)
	Purged    uint64 // corrupt/undecodable persistent blobs deleted on read
	Entries   int    // current LRU population
}

// Hooks mirrors cache traffic into telemetry counters as it happens, so a
// live /metrics scrape sees the same numbers Stats reports at the end.
// Every field is optional: nil counters are no-ops, so a zero Hooks is
// valid (and is the default).
type Hooks struct {
	Hits      *telemetry.Counter
	Misses    *telemetry.Counter
	MemHits   *telemetry.Counter
	StoreHits *telemetry.Counter
	Evictions *telemetry.Counter
	Errors    *telemetry.Counter
	Purged    *telemetry.Counter
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry[V any] struct {
	key string
	val V
}

// Cache is the two-tier content-addressed cache. The zero value is not
// usable; construct with New or NewPersistent.
type Cache[V any] struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	store      BlobStore
	codec      Codec[V]
	stats      Stats
	hooks      Hooks
}

// SetHooks installs telemetry mirrors for the traffic counters. Call
// before sharing the cache across goroutines.
func (c *Cache[V]) SetHooks(h Hooks) {
	c.mu.Lock()
	c.hooks = h
	c.mu.Unlock()
}

// New returns a memory-only cache holding at most maxEntries values
// (<= 0 means unbounded).
func New[V any](maxEntries int) *Cache[V] {
	return &Cache[V]{
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// NewPersistent returns a cache backed by a durable BlobStore tier. A nil
// codec defaults to JSON.
func NewPersistent[V any](maxEntries int, store BlobStore, codec Codec[V]) *Cache[V] {
	c := New[V](maxEntries)
	c.store = store
	if codec == nil {
		codec = JSONCodec[V]{}
	}
	c.codec = codec
	return c
}

// Get returns the cached value for key. A persistent-tier hit decodes the
// blob and promotes it into the LRU tier.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		c.stats.MemHits++
		c.hooks.Hits.Inc()
		c.hooks.MemHits.Inc()
		v := el.Value.(*entry[V]).val
		c.mu.Unlock()
		return v, true
	}
	store := c.store
	c.mu.Unlock()

	var zero V
	if store == nil {
		c.miss()
		return zero, false
	}
	// The persistent tier is consulted outside the lock: Load may touch a
	// disk or the network, and concurrent lookups of different keys must
	// not serialise on it.
	blob, ok, err := store.Load(key)
	if err != nil {
		// An unreadable blob must not keep failing every future lookup:
		// purge it so the recomputed value can be stored cleanly.
		c.purge(store, key)
		return zero, false
	}
	if !ok {
		c.miss()
		return zero, false
	}
	v, err := c.codec.Unmarshal(blob)
	if err != nil {
		// Corrupt on disk — same treatment: a miss, not a poison pill.
		c.purge(store, key)
		return zero, false
	}
	c.mu.Lock()
	c.stats.Hits++
	c.stats.StoreHits++
	c.hooks.Hits.Inc()
	c.hooks.StoreHits.Inc()
	c.insertLocked(key, v)
	c.mu.Unlock()
	return v, true
}

// Put inserts or refreshes the value for key in both tiers.
func (c *Cache[V]) Put(key string, v V) {
	c.mu.Lock()
	c.insertLocked(key, v)
	store := c.store
	c.mu.Unlock()
	if store == nil {
		return
	}
	blob, err := c.codec.Marshal(v)
	if err == nil {
		err = store.Store(key, blob)
	}
	if err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.hooks.Errors.Inc()
		c.mu.Unlock()
	}
}

func (c *Cache[V]) insertLocked(key string, v V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: v})
	for c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry[V]).key)
		c.stats.Evictions++
		c.hooks.Evictions.Inc()
	}
}

func (c *Cache[V]) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.hooks.Misses.Inc()
	c.mu.Unlock()
}

func (c *Cache[V]) fault() {
	c.mu.Lock()
	c.stats.Misses++
	c.stats.Errors++
	c.hooks.Misses.Inc()
	c.hooks.Errors.Inc()
	c.mu.Unlock()
}

// purge counts a persistent-tier fault and, when the store supports
// deletion, removes the offending blob so the slot is clean for the
// recompute's Put.
func (c *Cache[V]) purge(store BlobStore, key string) {
	c.fault()
	d, ok := store.(BlobDeleter)
	if !ok {
		return
	}
	if err := d.Delete(key); err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.hooks.Errors.Inc()
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	c.stats.Purged++
	c.hooks.Purged.Inc()
	c.mu.Unlock()
}

// Len reports the LRU tier's population.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// ResetStats zeroes the traffic counters (population is unaffected), so
// callers can attribute hit rates to one run at a time.
func (c *Cache[V]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}
