package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// MemStore is an in-memory BlobStore, useful for tests and for modelling a
// remote blob service without I/O.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Load implements BlobStore.
func (s *MemStore) Load(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.m[key]
	return b, ok, nil
}

// Store implements BlobStore.
func (s *MemStore) Store(key string, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), blob...)
	return nil
}

// Delete implements BlobDeleter.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// Len reports the number of stored blobs.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// DirStore is a BlobStore that keeps one file per key under a root
// directory — the simplest durable tier for warm re-runs of the pipeline.
type DirStore struct {
	root string
}

// NewDirStore creates the directory if needed and returns a store over it.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &DirStore{root: root}, nil
}

// path maps a key to a file name, escaping anything outside [A-Za-z0-9._-]
// so digest-shaped keys ("<hex>@<fingerprint>") stay readable and arbitrary
// keys stay safe.
func (s *DirStore) path(key string) string {
	var sb strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
			sb.WriteByte(c)
		default:
			fmt.Fprintf(&sb, "%%%02x", c)
		}
	}
	return filepath.Join(s.root, sb.String()+".blob")
}

// Load implements BlobStore.
func (s *DirStore) Load(key string) ([]byte, bool, error) {
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("resultcache: %w", err)
	}
	return b, true, nil
}

// Delete implements BlobDeleter; an absent key is not an error.
func (s *DirStore) Delete(key string) error {
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}

// Store implements BlobStore. The blob is written to a temp file and
// renamed so concurrent readers never observe a partial write.
func (s *DirStore) Store(key string, blob []byte) error {
	dst := s.path(key)
	tmp, err := os.CreateTemp(s.root, ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}
