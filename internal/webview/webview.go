// Package webview simulates android.webkit.WebView: the embeddable web
// renderer whose API surface the paper measures. It exposes exactly the
// methods of Table 7 — loadUrl (including the javascript: scheme),
// loadData, loadDataWithBaseURL, postUrl, evaluateJavascript,
// addJavascriptInterface, removeJavascriptInterface — over the browser
// simulation, with the properties that make WebViews risky for third-party
// content: the app can inject script into any page, expose Java objects to
// page JavaScript, intercept requests, and the cookie store is per-app
// rather than shared with the user's browser.
package webview

import (
	"context"
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"sync"

	"repro/internal/android"
	"repro/internal/browsersim"
	"repro/internal/jsvm"
	"repro/internal/netlog"
	"repro/internal/safebrowsing"
)

// Settings mirrors the WebSettings knobs the paper discusses: apps can
// enable JS (required for injection) and disable Safe Browsing — something
// a Custom Tab never allows.
type Settings struct {
	JavaScriptEnabled   bool
	SafeBrowsingEnabled bool
	DOMStorageEnabled   bool
}

// MethodCall is one WebView API invocation, as observed by attached hooks
// (package frida records these).
type MethodCall struct {
	Method string
	Args   []string
}

// Hook observes API calls; hooks run before the call executes.
type Hook func(MethodCall)

// WebView is one WebView instance embedded in an app.
type WebView struct {
	// ID names the instance in network logs.
	ID string
	// AppPackage stamps the X-Requested-With header on every request (§5).
	AppPackage string

	mu            sync.Mutex
	settings      Settings
	loader        *browsersim.Loader
	page          *browsersim.Page
	bridges       map[string]*jsvm.Object
	hooks         []Hook
	history       []string
	client        *http.Client
	safeBrowsing  *safebrowsing.List
	webViewClient *WebViewClient
}

// Config creates a WebView.
type Config struct {
	ID         string
	AppPackage string
	// Client issues requests; nil uses a fresh client with an isolated
	// cookie jar (the WebView cookie store is per-app, not the browser's).
	Client *http.Client
	// Log receives network events; nil disables logging.
	Log *netlog.Log
	// SafeBrowsing is the device threat list; consulted only while the
	// app leaves Settings.SafeBrowsingEnabled on — the asymmetry §4.1.1
	// warns about (a Custom Tab cannot opt out).
	SafeBrowsing *safebrowsing.List
}

// New constructs a WebView with default (Android-like) settings:
// JavaScript disabled until the app enables it, Safe Browsing on.
func New(cfg Config) *WebView {
	client := cfg.Client
	if client == nil {
		jar, _ := cookiejar.New(nil)
		client = &http.Client{Jar: jar}
	}
	wv := &WebView{
		ID:           cfg.ID,
		AppPackage:   cfg.AppPackage,
		settings:     Settings{SafeBrowsingEnabled: true},
		bridges:      make(map[string]*jsvm.Object),
		client:       client,
		safeBrowsing: cfg.SafeBrowsing,
	}
	wv.loader = &browsersim.Loader{
		Client:  client,
		Log:     cfg.Log,
		Context: cfg.ID,
		Headers: map[string]string{android.XRequestedWithHeader: cfg.AppPackage},
		UserAgent: "Mozilla/5.0 (Linux; Android 12; Pixel 3) AppleWebKit/537.36 " +
			"(KHTML, like Gecko) Version/4.0 Chrome/110.0 Mobile Safari/537.36; wv",
	}
	return wv
}

// GetSettings returns the mutable settings (as on Android).
func (w *WebView) GetSettings() *Settings {
	return &w.settings
}

// AddHook attaches a method-call observer.
func (w *WebView) AddHook(h Hook) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hooks = append(w.hooks, h)
}

func (w *WebView) fire(method string, args ...string) {
	w.mu.Lock()
	hooks := append([]Hook(nil), w.hooks...)
	w.mu.Unlock()
	for _, h := range hooks {
		h(MethodCall{Method: method, Args: args})
	}
}

// Page returns the currently loaded page (nil before any load).
func (w *WebView) Page() *browsersim.Page {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.page
}

// History returns the visited URLs in order.
func (w *WebView) History() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.history...)
}

// LoadURL implements WebView.loadUrl. A "javascript:" URL executes script
// in the current page — the second injection channel the paper measures
// (§3.2.2).
func (w *WebView) LoadURL(ctx context.Context, rawURL string) error {
	w.fire(android.MethodLoadURL, rawURL)
	if len(rawURL) > len("javascript:") && rawURL[:len("javascript:")] == "javascript:" {
		if !w.settings.JavaScriptEnabled {
			return nil // silently ignored, as on Android
		}
		page := w.Page()
		if page == nil {
			return fmt.Errorf("webview: javascript: URL with no page loaded")
		}
		_, err := page.Execute(rawURL[len("javascript:"):])
		return err
	}
	if c := w.client0(); c != nil && c.ShouldOverrideURLLoading != nil && c.ShouldOverrideURLLoading(rawURL) {
		return nil // the app consumed the navigation
	}
	if w.settings.SafeBrowsingEnabled && w.safeBrowsing != nil {
		if v := w.safeBrowsing.Check(rawURL); v.Blocked() {
			return &safebrowsing.BlockedError{URL: rawURL, Verdict: v}
		}
	}
	if c := w.client0(); c != nil && c.OnPageStarted != nil {
		c.OnPageStarted(rawURL)
	}
	w.mu.Lock()
	w.loader.Globals = make(map[string]*jsvm.Object, len(w.bridges))
	for k, v := range w.bridges {
		w.loader.Globals[k] = v
	}
	w.mu.Unlock()
	page, err := w.loader.LoadWithScripts(ctx, rawURL, w.settings.JavaScriptEnabled)
	if err != nil {
		if c := w.client0(); c != nil && c.OnReceivedError != nil {
			c.OnReceivedError(rawURL, err)
		}
		return fmt.Errorf("webview: %w", err)
	}
	w.mu.Lock()
	w.page = page
	w.history = append(w.history, rawURL)
	bridges := make(map[string]*jsvm.Object, len(w.bridges))
	for k, v := range w.bridges {
		bridges[k] = v
	}
	w.mu.Unlock()
	// Re-expose registered bridges on the new page's VM.
	for name, obj := range bridges {
		page.VM.Global.Set(name, jsvm.ObjectValue(obj))
	}
	if c := w.client0(); c != nil && c.OnPageFinished != nil {
		c.OnPageFinished(rawURL)
	}
	return nil
}

// LoadData implements WebView.loadData: renders in-memory HTML with no
// base URL (subresources cannot resolve).
func (w *WebView) LoadData(data, mimeType, encoding string) error {
	w.fire(android.MethodLoadData, data, mimeType, encoding)
	return w.loadLocal(data, "about:blank")
}

// LoadDataWithBaseURL implements WebView.loadDataWithBaseURL: local HTML
// rendered as if it came from baseURL — how user-support SDKs blend app
// data into web UI (§4.1.5).
func (w *WebView) LoadDataWithBaseURL(baseURL, data, mimeType, encoding, historyURL string) error {
	w.fire(android.MethodLoadDataWithBaseURL, baseURL, data, mimeType, encoding, historyURL)
	if baseURL == "" {
		baseURL = "about:blank"
	}
	return w.loadLocal(data, baseURL)
}

func (w *WebView) loadLocal(data, baseURL string) error {
	w.mu.Lock()
	w.loader.Globals = make(map[string]*jsvm.Object, len(w.bridges))
	for k, v := range w.bridges {
		w.loader.Globals[k] = v
	}
	w.mu.Unlock()
	page := browsersim.NewLocalPage(w.loader, baseURL, data, w.settings.JavaScriptEnabled)
	w.mu.Lock()
	w.page = page
	w.history = append(w.history, baseURL)
	bridges := make(map[string]*jsvm.Object, len(w.bridges))
	for k, v := range w.bridges {
		bridges[k] = v
	}
	w.mu.Unlock()
	for name, obj := range bridges {
		page.VM.Global.Set(name, jsvm.ObjectValue(obj))
	}
	return nil
}

// CanGoBack reports whether back navigation is possible
// (WebView.canGoBack).
func (w *WebView) CanGoBack() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.history) > 1
}

// GoBack re-navigates to the previous history entry (WebView.goBack). It
// is a no-op when there is nothing to go back to, as on Android.
func (w *WebView) GoBack(ctx context.Context) error {
	w.fire("goBack")
	w.mu.Lock()
	if len(w.history) < 2 {
		w.mu.Unlock()
		return nil
	}
	prev := w.history[len(w.history)-2]
	w.history = w.history[:len(w.history)-2] // LoadURL re-appends prev
	w.mu.Unlock()
	return w.LoadURL(ctx, prev)
}

// PostURL implements WebView.postUrl (the body is recorded but, like the
// paper's pipeline, we only observe the navigation).
func (w *WebView) PostURL(ctx context.Context, rawURL string, body []byte) error {
	w.fire(android.MethodPostURL, rawURL, string(body))
	return w.LoadURL(ctx, rawURL)
}

// EvaluateJavascript implements WebView.evaluateJavascript: runs script in
// the page and delivers the result asynchronously via callback (here:
// synchronously, there is no looper).
func (w *WebView) EvaluateJavascript(script string, callback func(result string)) error {
	w.fire(android.MethodEvaluateJavascript, script)
	if !w.settings.JavaScriptEnabled {
		return fmt.Errorf("webview: JavaScript disabled")
	}
	page := w.Page()
	if page == nil {
		return fmt.Errorf("webview: no page loaded")
	}
	out, err := page.Execute(script)
	if err != nil {
		return err
	}
	if callback != nil {
		callback(out)
	}
	return nil
}

// AddJavascriptInterface implements WebView.addJavascriptInterface: the
// app-side object becomes reachable from page JavaScript under the given
// name — the JS bridge whose exposure Figure 4 quantifies.
func (w *WebView) AddJavascriptInterface(obj *jsvm.Object, name string) {
	w.fire(android.MethodAddJavascriptInterface, name)
	w.mu.Lock()
	w.bridges[name] = obj
	page := w.page
	w.mu.Unlock()
	if page != nil {
		page.VM.Global.Set(name, jsvm.ObjectValue(obj))
	}
}

// RemoveJavascriptInterface implements WebView.removeJavascriptInterface.
func (w *WebView) RemoveJavascriptInterface(name string) {
	w.fire(android.MethodRemoveJavascriptInterface, name)
	w.mu.Lock()
	delete(w.bridges, name)
	page := w.page
	w.mu.Unlock()
	if page != nil {
		page.VM.Global.Set(name, jsvm.Undefined())
	}
}

// Bridges lists the currently exposed JS bridge names.
func (w *WebView) Bridges() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.bridges))
	for name := range w.bridges {
		out = append(out, name)
	}
	return out
}
