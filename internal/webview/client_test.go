package webview

import (
	"context"
	"errors"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jsvm"
)

func clientSite(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.SetCookie(w, &http.Cookie{Name: "sid", Value: "secret-session-token"})
		w.Write([]byte(`<html><head><title>Bank</title></head><body><p>balance</p></body></html>`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestWebViewClientCallbacks(t *testing.T) {
	srv := clientSite(t)
	wv := New(Config{ID: "wv", AppPackage: "app", Client: srv.Client()})
	var events []string
	wv.SetWebViewClient(&WebViewClient{
		OnPageStarted:  func(u string) { events = append(events, "started:"+u) },
		OnPageFinished: func(u string) { events = append(events, "finished:"+u) },
	})
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "started:"+srv.URL+"/" || events[1] != "finished:"+srv.URL+"/" {
		t.Errorf("events = %v", events)
	}
}

func TestShouldOverrideURLLoading(t *testing.T) {
	srv := clientSite(t)
	wv := New(Config{ID: "wv", AppPackage: "app", Client: srv.Client()})
	intercepted := []string{}
	wv.SetWebViewClient(&WebViewClient{
		ShouldOverrideURLLoading: func(u string) bool {
			intercepted = append(intercepted, u)
			return true // app consumes every navigation
		},
	})
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if wv.Page() != nil {
		t.Error("overridden navigation still loaded a page")
	}
	if len(intercepted) != 1 {
		t.Errorf("intercepted = %v", intercepted)
	}
}

func TestOnReceivedError(t *testing.T) {
	wv := New(Config{ID: "wv", AppPackage: "app"})
	var failed string
	wv.SetWebViewClient(&WebViewClient{
		OnReceivedError: func(u string, err error) { failed = u },
	})
	if err := wv.LoadURL(context.Background(), "http://127.0.0.1:1/x"); err == nil {
		t.Fatal("load succeeded")
	}
	if failed != "http://127.0.0.1:1/x" {
		t.Errorf("OnReceivedError url = %q", failed)
	}
}

// Table 1's cookie-theft vector: the embedding app reads the session
// cookie a third-party site set inside its WebView — the capability a
// Custom Tab structurally withholds from apps.
func TestCookieManagerExposesThirdPartySessions(t *testing.T) {
	srv := clientSite(t)
	jar, _ := cookiejar.New(nil)
	wv := New(Config{ID: "wv", AppPackage: "com.host.app",
		Client: &http.Client{Jar: jar, Transport: srv.Client().Transport}})
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	got := wv.CookieManager().GetCookie(srv.URL + "/")
	if got != "sid=secret-session-token" {
		t.Errorf("GetCookie = %q — the app should see the site's session", got)
	}
}

func TestCookieManagerSetCookie(t *testing.T) {
	srv := clientSite(t)
	jar, _ := cookiejar.New(nil)
	wv := New(Config{ID: "wv", AppPackage: "app",
		Client: &http.Client{Jar: jar, Transport: srv.Client().Transport}})
	cm := wv.CookieManager()
	if !cm.SetCookie(srv.URL+"/", "planted", "by-app") {
		t.Fatal("SetCookie failed")
	}
	if got := cm.GetCookie(srv.URL + "/"); got != "planted=by-app" {
		t.Errorf("GetCookie = %q", got)
	}
	if cm.SetCookie("::bad::", "a", "b") {
		t.Error("SetCookie accepted malformed URL")
	}
}

func TestCookieManagerNoJar(t *testing.T) {
	srv := clientSite(t)
	// srv.Client() has no jar: GetCookie must degrade to "".
	wv := New(Config{ID: "wv", AppPackage: "app", Client: srv.Client()})
	if got := wv.CookieManager().GetCookie(srv.URL + "/"); got != "" {
		t.Errorf("GetCookie without jar = %q", got)
	}
}

// The Luo et al. threat model inverted: a MALICIOUS PAGE calling an
// over-privileged bridge a benign app exposed. The page's own script (not
// injected code) reaches the app's Java object.
func TestMaliciousPageCallsExposedBridge(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>evil</title></head><body>
<script>
if (typeof UserDataBridge !== "undefined") {
    var stolen = UserDataBridge.getContactInfo();
    window.__exfil = stolen;
}
</script></body></html>`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	wv := New(Config{ID: "wv", AppPackage: "com.benign.app", Client: srv.Client()})
	wv.GetSettings().JavaScriptEnabled = true
	bridge := jsvm.NewObject()
	bridge.SetFunc("getContactInfo", func(c jsvm.Call) (jsvm.Value, error) {
		return jsvm.String("alice@example.com"), nil
	})
	wv.AddJavascriptInterface(bridge, "UserDataBridge")

	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if got := wv.Page().VM.Global.Get("__exfil").StringValue(); got != "alice@example.com" {
		t.Errorf("__exfil = %q — page script should reach the bridge", got)
	}
}

func TestErrorsPreserveSentinelWrapping(t *testing.T) {
	wv := New(Config{ID: "wv", AppPackage: "app"})
	err := wv.LoadURL(context.Background(), "http://127.0.0.1:1/x")
	var urlErr error = err
	if urlErr == nil || errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestGoBack(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/a", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>A</title></head><body><a href="/b">b</a></body></html>`))
	})
	mux.HandleFunc("/b", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>B</title></head><body>second</body></html>`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	wv := New(Config{ID: "wv", AppPackage: "app", Client: srv.Client()})
	ctx := context.Background()
	if wv.CanGoBack() {
		t.Error("CanGoBack before any load")
	}
	if err := wv.GoBack(ctx); err != nil {
		t.Fatalf("no-op GoBack errored: %v", err)
	}
	if err := wv.LoadURL(ctx, srv.URL+"/a"); err != nil {
		t.Fatal(err)
	}
	if err := wv.LoadURL(ctx, srv.URL+"/b"); err != nil {
		t.Fatal(err)
	}
	if !wv.CanGoBack() {
		t.Fatal("CanGoBack = false with two entries")
	}
	if err := wv.GoBack(ctx); err != nil {
		t.Fatal(err)
	}
	if wv.Page().Doc.Title != "A" {
		t.Errorf("after GoBack title = %q", wv.Page().Doc.Title)
	}
	// The simple history model drops the forward entry on back-navigation.
	if got := wv.History(); len(got) != 1 || !strings.HasSuffix(got[0], "/a") {
		t.Errorf("history = %v", got)
	}
	if wv.CanGoBack() {
		t.Error("CanGoBack after returning to the first entry")
	}
}
