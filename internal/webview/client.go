package webview

import (
	"net/http"
	"net/url"
)

// WebViewClient mirrors android.webkit.WebViewClient: the callback object
// through which the embedding app observes and intercepts navigation.
// shouldOverrideUrlLoading is how real IABs capture link taps, and
// onPageFinished is where they trigger their injections — the control
// points the paper's threat model turns on.
type WebViewClient struct {
	// ShouldOverrideURLLoading returns true when the app consumes the
	// navigation itself (the WebView then does not load it).
	ShouldOverrideURLLoading func(url string) bool
	// OnPageStarted fires before a page load begins.
	OnPageStarted func(url string)
	// OnPageFinished fires after the page (and its resources) loaded.
	OnPageFinished func(url string)
	// OnReceivedError fires when a load fails.
	OnReceivedError func(url string, err error)
}

// SetWebViewClient installs the navigation callback object
// (WebView.setWebViewClient).
func (w *WebView) SetWebViewClient(c *WebViewClient) {
	w.fire("setWebViewClient")
	w.mu.Lock()
	w.webViewClient = c
	w.mu.Unlock()
}

func (w *WebView) client0() *WebViewClient {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.webViewClient
}

// CookieManager mirrors android.webkit.CookieManager: the embedding app
// can read (and plant) every cookie its WebView holds — including session
// cookies set by third-party sites the user logs into. This is the
// cookie/credential-theft vector of Table 1 that a Custom Tab structurally
// prevents (the app never sees the browser's jar).
type CookieManager struct {
	jar http.CookieJar
}

// CookieManager returns the app-visible cookie store of this WebView.
func (w *WebView) CookieManager() *CookieManager {
	return &CookieManager{jar: w.client.Jar}
}

// GetCookie returns the Cookie header value the WebView would send to the
// URL ("" when none or the store is absent), as CookieManager.getCookie.
func (cm *CookieManager) GetCookie(rawURL string) string {
	if cm.jar == nil {
		return ""
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return ""
	}
	cookies := cm.jar.Cookies(u)
	out := ""
	for i, c := range cookies {
		if i > 0 {
			out += "; "
		}
		out += c.Name + "=" + c.Value
	}
	return out
}

// SetCookie plants a cookie for the URL's host, as CookieManager.setCookie.
func (cm *CookieManager) SetCookie(rawURL, name, value string) bool {
	if cm.jar == nil {
		return false
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return false
	}
	cm.jar.SetCookies(u, []*http.Cookie{{Name: name, Value: value}})
	return true
}
