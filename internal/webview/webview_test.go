package webview

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jsvm"
	"repro/internal/netlog"
)

func site(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.SetCookie(w, &http.Cookie{Name: "session", Value: "abc"})
		w.Write([]byte(`<html><head><title>Home</title></head>
<body><h1 id="h">Hi</h1><a href="/next">next</a></body></html>`))
	})
	mux.HandleFunc("/whoami", func(w http.ResponseWriter, r *http.Request) {
		if c, err := r.Cookie("session"); err == nil {
			w.Write([]byte("<html><body>cookie:" + c.Value + "</body></html>"))
			return
		}
		w.Write([]byte("<html><body>no-cookie</body></html>"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newWV(t *testing.T, srv *httptest.Server, log *netlog.Log) *WebView {
	t.Helper()
	wv := New(Config{ID: "wv-test", AppPackage: "com.example.host", Client: srv.Client(), Log: log})
	wv.GetSettings().JavaScriptEnabled = true
	return wv
}

func TestLoadURL(t *testing.T) {
	srv := site(t)
	log := netlog.New()
	wv := newWV(t, srv, log)
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatalf("LoadURL: %v", err)
	}
	if wv.Page() == nil || wv.Page().Doc.Title != "Home" {
		t.Error("page not loaded")
	}
	if got := wv.History(); len(got) != 1 {
		t.Errorf("history = %v", got)
	}
	// Every request carries the app's X-Requested-With.
	for _, e := range log.Events() {
		if e.Header["X-Requested-With"] != "com.example.host" {
			t.Errorf("missing X-Requested-With on %s", e.URL)
		}
	}
}

func TestEvaluateJavascript(t *testing.T) {
	srv := site(t)
	wv := newWV(t, srv, nil)
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	var result string
	err := wv.EvaluateJavascript(`document.getElementById("h").tagName`, func(r string) { result = r })
	if err != nil {
		t.Fatalf("EvaluateJavascript: %v", err)
	}
	if result != "H1" {
		t.Errorf("result = %q", result)
	}
}

func TestEvaluateJavascriptRequiresJSEnabled(t *testing.T) {
	srv := site(t)
	wv := New(Config{ID: "x", AppPackage: "p", Client: srv.Client()})
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if err := wv.EvaluateJavascript("1+1", nil); err == nil {
		t.Error("evaluateJavascript succeeded with JS disabled")
	}
}

func TestJavascriptSchemeLoadURL(t *testing.T) {
	srv := site(t)
	wv := newWV(t, srv, nil)
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if err := wv.LoadURL(context.Background(), `javascript:window.__inj = document.title;`); err != nil {
		t.Fatalf("javascript: load: %v", err)
	}
	if got := wv.Page().VM.Global.Get("__inj").StringValue(); got != "Home" {
		t.Errorf("__inj = %q", got)
	}
	// History must not record the javascript: pseudo-navigation.
	if got := wv.History(); len(got) != 1 {
		t.Errorf("history = %v", got)
	}
}

func TestJSBridgeExposure(t *testing.T) {
	srv := site(t)
	wv := newWV(t, srv, nil)

	var fromPage []string
	bridge := jsvm.NewObject()
	bridge.SetFunc("postMessage", func(c jsvm.Call) (jsvm.Value, error) {
		fromPage = append(fromPage, c.Arg(0).StringValue())
		return jsvm.Undefined(), nil
	})
	// Bridge registered before load must survive navigation.
	wv.AddJavascriptInterface(bridge, "NativeBridge")
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if err := wv.EvaluateJavascript(`NativeBridge.postMessage("hello-from-page")`, nil); err != nil {
		t.Fatalf("bridge call: %v", err)
	}
	if len(fromPage) != 1 || fromPage[0] != "hello-from-page" {
		t.Errorf("bridge messages = %v", fromPage)
	}

	wv.RemoveJavascriptInterface("NativeBridge")
	if err := wv.EvaluateJavascript(`typeof NativeBridge`, func(r string) {
		if r != "undefined" {
			t.Errorf("bridge still visible after removal: %s", r)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := wv.Bridges(); len(got) != 0 {
		t.Errorf("Bridges = %v", got)
	}
}

func TestLoadDataWithBaseURL(t *testing.T) {
	srv := site(t)
	wv := newWV(t, srv, nil)
	html := `<html><body><div id="local">support chat</div>
<script>window.__localRan = 1;</script></body></html>`
	if err := wv.LoadDataWithBaseURL(srv.URL+"/support", html, "text/html", "utf-8", ""); err != nil {
		t.Fatalf("LoadDataWithBaseURL: %v", err)
	}
	if wv.Page().Doc.GetElementByID("local") == nil {
		t.Error("local content not rendered")
	}
	if got := wv.Page().VM.Global.Get("__localRan").NumberValue(); got != 1 {
		t.Error("local script did not run")
	}
}

func TestLoadData(t *testing.T) {
	srv := site(t)
	wv := newWV(t, srv, nil)
	if err := wv.LoadData("<html><body><p>inline</p></body></html>", "text/html", "utf-8"); err != nil {
		t.Fatal(err)
	}
	if len(wv.Page().Doc.GetElementsByTagName("p")) != 1 {
		t.Error("loadData content missing")
	}
}

func TestCookieIsolationPerWebView(t *testing.T) {
	srv := site(t)
	// First WebView gets a session cookie.
	wv1 := newWV(t, srv, nil)
	// Fresh client with its own jar per WebView: construct without the
	// test server client (which shares a jar-less transport).
	wv1 = New(Config{ID: "wv1", AppPackage: "app1"})
	wv1.GetSettings().JavaScriptEnabled = true
	swapTransport(wv1, srv)
	if err := wv1.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if err := wv1.LoadURL(context.Background(), srv.URL+"/whoami"); err != nil {
		t.Fatal(err)
	}
	if got := wv1.Page().Doc.Body().Text(); got != "cookie:abc" {
		t.Errorf("wv1 sees %q, want its own cookie", got)
	}
	// A different WebView (different app) has no cookie: stores are
	// isolated per instance, unlike CT's shared browser jar.
	wv2 := New(Config{ID: "wv2", AppPackage: "app2"})
	wv2.GetSettings().JavaScriptEnabled = true
	swapTransport(wv2, srv)
	if err := wv2.LoadURL(context.Background(), srv.URL+"/whoami"); err != nil {
		t.Fatal(err)
	}
	if got := wv2.Page().Doc.Body().Text(); got != "no-cookie" {
		t.Errorf("wv2 sees %q, want no-cookie", got)
	}
}

// swapTransport points the WebView's own cookie-jar client at the test TLS
// server.
func swapTransport(wv *WebView, srv *httptest.Server) {
	wv.client.Transport = srv.Client().Transport
}

func TestPostURL(t *testing.T) {
	srv := site(t)
	wv := newWV(t, srv, nil)
	if err := wv.PostURL(context.Background(), srv.URL+"/", []byte("k=v")); err != nil {
		t.Fatal(err)
	}
	if wv.Page() == nil {
		t.Error("postUrl did not navigate")
	}
}

func TestHooksObserveCalls(t *testing.T) {
	srv := site(t)
	wv := newWV(t, srv, nil)
	var calls []string
	wv.AddHook(func(c MethodCall) { calls = append(calls, c.Method) })
	_ = wv.LoadURL(context.Background(), srv.URL+"/")
	_ = wv.EvaluateJavascript("1", nil)
	wv.AddJavascriptInterface(jsvm.NewObject(), "B")
	joined := strings.Join(calls, ",")
	for _, want := range []string{"loadUrl", "evaluateJavascript", "addJavascriptInterface"} {
		if !strings.Contains(joined, want) {
			t.Errorf("hook missed %s (saw %s)", want, joined)
		}
	}
}

func TestLoadFailures(t *testing.T) {
	wv := New(Config{ID: "x", AppPackage: "p"})
	wv.GetSettings().JavaScriptEnabled = true
	if err := wv.LoadURL(context.Background(), "http://127.0.0.1:1/nope"); err == nil {
		t.Error("unreachable load succeeded")
	}
	if err := wv.EvaluateJavascript("1", nil); err == nil {
		t.Error("evaluate with no page succeeded")
	}
	if err := wv.LoadURL(context.Background(), "javascript:1"); err == nil {
		t.Error("javascript: with no page succeeded")
	}
}
