package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func failN(b *Breaker, n int, err error) {
	for i := 0; i < n; i++ {
		b.Record(err)
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, time.Minute).WithClock(clk.now)
	boom := errors.New("boom")
	failN(b, 2, boom)
	if err := b.Allow(); err != nil {
		t.Fatalf("breaker open before threshold: %v", err)
	}
	b.Record(boom)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow = %v, want ErrOpen", err)
	}
	if IsRetryable(b.Allow()) {
		t.Error("breaker-open error must be permanent")
	}
	if b.Opens() != 1 {
		t.Errorf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(2, time.Minute).WithClock(clk.now)
	boom := errors.New("boom")
	failN(b, 2, boom)
	if b.Allow() == nil {
		t.Fatal("breaker not open")
	}
	clk.advance(61 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not allowed after cooldown: %v", err)
	}
	// Failed probe re-opens immediately.
	b.Record(boom)
	if b.Allow() == nil {
		t.Fatal("failed probe did not re-open the breaker")
	}
	// Successful probe closes it.
	clk.advance(61 * time.Second)
	b.Record(nil)
	if err := b.Allow(); err != nil {
		t.Fatalf("breaker still open after successful probe: %v", err)
	}
}

func TestBreakerIgnoresContextErrors(t *testing.T) {
	b := NewBreaker(1, time.Minute)
	b.Record(context.Canceled)
	b.Record(context.DeadlineExceeded)
	if b.Allow() != nil {
		t.Error("context errors tripped the breaker")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	boom := errors.New("boom")
	failN(b, 2, boom)
	b.Record(nil)
	failN(b, 2, boom)
	if b.Allow() != nil {
		t.Error("streak not reset by success")
	}
}

func TestDoWithOpenBreakerFailsFast(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Minute).WithClock(clk.now)
	m := &Metrics{}
	p := &Policy{MaxAttempts: 3, Sleep: func(ctx context.Context, d time.Duration) error { return nil }, Breaker: b, Metrics: m}
	calls := 0
	// First Do exhausts the breaker (threshold 1 trips on first failure;
	// later attempts inside the same Do are rejected fast).
	_, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 0, Transient(errors.New("down"))
	})
	if err == nil {
		t.Fatal("Do against tripped breaker succeeded")
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (breaker rejects retries)", calls)
	}
	// Subsequent Do calls never reach the endpoint.
	_, err = Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 0, nil
	})
	if !errors.Is(err, ErrOpen) || calls != 1 {
		t.Errorf("err = %v, calls = %d; want fast ErrOpen rejection", err, calls)
	}
	if m.BreakerRejects.Load() == 0 {
		t.Error("breaker rejects not counted")
	}
}
