package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// recordingSleeper captures requested delays without sleeping.
type recordingSleeper struct{ delays []time.Duration }

func (r *recordingSleeper) sleep(ctx context.Context, d time.Duration) error {
	r.delays = append(r.delays, d)
	return ctx.Err()
}

func TestNilPolicySingleAttempt(t *testing.T) {
	calls := 0
	_, err := Do(context.Background(), nil, func(context.Context) (int, error) {
		calls++
		return 0, errors.New("boom")
	})
	if err == nil || calls != 1 {
		t.Fatalf("calls = %d, err = %v; want one failing attempt", calls, err)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	rs := &recordingSleeper{}
	p := &Policy{MaxAttempts: 5, Seed: 42, Sleep: rs.sleep, Metrics: &Metrics{}}
	calls := 0
	v, err := Do(context.Background(), p, func(context.Context) (string, error) {
		calls++
		if calls < 3 {
			return "", Transient(errors.New("flaky"))
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do = %q, %v", v, err)
	}
	if calls != 3 || len(rs.delays) != 2 {
		t.Errorf("calls = %d, sleeps = %d; want 3 and 2", calls, len(rs.delays))
	}
	if got := p.Metrics.Attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := p.Metrics.Retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := p.Metrics.Failures.Load(); got != 0 {
		t.Errorf("failures = %d, want 0", got)
	}
}

func TestBackoffWithinJitterCap(t *testing.T) {
	rs := &recordingSleeper{}
	p := &Policy{
		MaxAttempts: 6, BaseDelay: 100 * time.Millisecond,
		MaxDelay: 400 * time.Millisecond, Seed: 7, Sleep: rs.sleep,
	}
	_, err := Do(context.Background(), p, func(context.Context) (int, error) {
		return 0, Transient(errors.New("always"))
	})
	if err == nil {
		t.Fatal("exhausted retries should fail")
	}
	caps := []time.Duration{100, 200, 400, 400, 400} // ms, clamped at MaxDelay
	if len(rs.delays) != len(caps) {
		t.Fatalf("sleeps = %d, want %d", len(rs.delays), len(caps))
	}
	for i, d := range rs.delays {
		if d < 0 || d >= caps[i]*time.Millisecond {
			t.Errorf("delay[%d] = %v outside [0, %v)", i, d, caps[i]*time.Millisecond)
		}
	}
}

func TestDeterministicJitterSchedule(t *testing.T) {
	schedule := func() []time.Duration {
		rs := &recordingSleeper{}
		p := &Policy{MaxAttempts: 5, Seed: 99, Sleep: rs.sleep}
		Do(context.Background(), p, func(context.Context) (int, error) {
			return 0, Transient(errors.New("always"))
		})
		return rs.delays
	}
	a, b := schedule(), schedule()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("delay[%d] differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	p := &Policy{MaxAttempts: 5, Sleep: (&recordingSleeper{}).sleep, Metrics: &Metrics{}}
	calls := 0
	want := errors.New("bad request")
	_, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 0, Permanent(want)
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want wrapped %v", err, want)
	}
	if got := p.Metrics.Failures.Load(); got != 1 {
		t.Errorf("failures = %d, want 1", got)
	}
}

func TestWrappedClassificationSurvivesFmtErrorf(t *testing.T) {
	inner := Transient(errors.New("reset"))
	wrapped := fmt.Errorf("download foo: %w", inner)
	if !IsRetryable(wrapped) {
		t.Error("fmt-wrapped transient error lost its classification")
	}
	if IsRetryable(fmt.Errorf("x: %w", Permanent(errors.New("nope")))) {
		t.Error("fmt-wrapped permanent error became retryable")
	}
}

func TestContextErrorsNeverRetryable(t *testing.T) {
	if IsRetryable(context.Canceled) || IsRetryable(fmt.Errorf("op: %w", context.DeadlineExceeded)) {
		t.Error("context errors must not be retryable")
	}
}

func TestCancelledContextStopsRetrying(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Policy{MaxAttempts: 10, Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() }}
	calls := 0
	_, err := Do(ctx, p, func(context.Context) (int, error) {
		calls++
		if calls == 2 {
			cancel()
		}
		return 0, Transient(errors.New("flaky"))
	})
	if err == nil {
		t.Fatal("cancelled Do succeeded")
	}
	if calls > 3 {
		t.Errorf("calls = %d after cancellation, want <= 3", calls)
	}
}

func TestUnclassifiedErrorsRetryByDefault(t *testing.T) {
	p := &Policy{MaxAttempts: 3, Sleep: (&recordingSleeper{}).sleep}
	calls := 0
	Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 0, errors.New("plain")
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (plain errors retry)", calls)
	}
}
