// Package retry implements the fault-tolerance primitives the pipeline's
// network edges share: a generic retrying executor with exponential
// backoff and full jitter, error classification (transient failures are
// retried, permanent ones surface immediately), per-endpoint circuit
// breaking, and atomic metrics.
//
// Everything nondeterministic is injectable — the jitter RNG is seeded
// and the sleeper is a function value — so tests drive the exact retry
// schedule without wall-clock time, and a seeded chaos run replays the
// same schedule every time.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Default backoff parameters, used when the corresponding Policy field is
// zero. They follow the "full jitter" scheme: attempt n sleeps a uniform
// random duration in [0, min(MaxDelay, BaseDelay·Multiplier^n)).
const (
	DefaultBaseDelay  = 100 * time.Millisecond
	DefaultMaxDelay   = 5 * time.Second
	DefaultMultiplier = 2.0
)

// Metrics counts retry traffic across every Do call sharing the struct.
// All fields are atomic, so one Metrics can be shared by concurrent
// policies (e.g. one per backend) to observe a whole run.
type Metrics struct {
	// Attempts counts operation invocations, including first tries.
	Attempts atomic.Int64
	// Retries counts re-invocations after a retryable failure.
	Retries atomic.Int64
	// Failures counts operations that gave up (exhausted attempts, hit a
	// permanent error, or lost their context).
	Failures atomic.Int64
	// BreakerRejects counts calls refused by an open circuit breaker.
	BreakerRejects atomic.Int64

	// Mirror, when its counters are set, duplicates every increment into a
	// telemetry registry so a live scrape sees retry traffic as it happens.
	// Set before the Metrics is shared; nil counters are no-ops.
	Mirror Mirror
}

// Mirror holds the telemetry counters Metrics duplicates into.
type Mirror struct {
	Attempts       *telemetry.Counter
	Retries        *telemetry.Counter
	Failures       *telemetry.Counter
	BreakerRejects *telemetry.Counter
}

func (m *Metrics) attempt() {
	if m != nil {
		m.Attempts.Add(1)
		m.Mirror.Attempts.Inc()
	}
}

func (m *Metrics) retried() {
	if m != nil {
		m.Retries.Add(1)
		m.Mirror.Retries.Inc()
	}
}

func (m *Metrics) failed() {
	if m != nil {
		m.Failures.Add(1)
		m.Mirror.Failures.Inc()
	}
}

func (m *Metrics) rejected() {
	if m != nil {
		m.BreakerRejects.Add(1)
		m.Mirror.BreakerRejects.Inc()
	}
}

// Policy parameterises Do. The zero value (or a nil pointer) means a
// single attempt with no backoff; set MaxAttempts > 1 to retry.
// A Policy is safe for concurrent use.
type Policy struct {
	// MaxAttempts is the total number of invocations allowed, first try
	// included; values <= 1 mean exactly one attempt.
	MaxAttempts int
	// BaseDelay, MaxDelay and Multiplier shape the exponential backoff;
	// zero values take the package defaults.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Seed seeds the jitter RNG, making the backoff schedule reproducible.
	Seed int64
	// Sleep waits between attempts; nil uses a context-aware timer.
	// Injecting a recorder here makes retry schedules testable without
	// wall-clock time.
	Sleep func(ctx context.Context, d time.Duration) error
	// Classify reports whether an error is worth retrying; nil uses
	// IsRetryable (transient unless marked Permanent or context-related).
	Classify func(error) bool
	// Metrics, when non-nil, accumulates attempt/retry/failure counts.
	Metrics *Metrics
	// Breaker, when non-nil, is consulted before each attempt and fed the
	// outcome; an open breaker fails calls fast instead of hammering a
	// down endpoint.
	Breaker *Breaker

	mu  sync.Mutex
	rng *rand.Rand
}

// Do invokes fn until it succeeds, a non-retryable error occurs, the
// context is done, or the policy's attempts are exhausted; it returns
// fn's last value. A nil policy performs exactly one attempt.
func Do[T any](ctx context.Context, p *Policy, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	if p == nil {
		return fn(ctx)
	}
	attempts := p.MaxAttempts
	if attempts <= 1 {
		attempts = 1
	}
	classify := p.Classify
	if classify == nil {
		classify = IsRetryable
	}
	for i := 0; ; i++ {
		if p.Breaker != nil {
			if err := p.Breaker.Allow(); err != nil {
				p.Metrics.rejected()
				return zero, err
			}
		}
		p.Metrics.attempt()
		v, err := fn(ctx)
		if p.Breaker != nil {
			p.Breaker.Record(err)
		}
		if err == nil {
			return v, nil
		}
		if i+1 >= attempts || ctx.Err() != nil || !classify(err) {
			p.Metrics.failed()
			return zero, err
		}
		p.Metrics.retried()
		delay := p.backoff(i)
		if advised, ok := AdvisedDelay(err); ok {
			// The server told us when to come back (Retry-After on a 429 or
			// 503): obey it instead of the jittered schedule, clamped to the
			// policy's MaxDelay so a hostile header cannot park us for hours.
			delay = advised
			if maxd := p.maxDelay(); delay > maxd {
				delay = maxd
			}
		}
		if serr := p.sleep(ctx, delay); serr != nil {
			// The wait was cut short by the context; the operation's own
			// error is the informative one.
			p.Metrics.failed()
			return zero, err
		}
	}
}

// maxDelay returns the policy's delay ceiling, defaulted.
func (p *Policy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return DefaultMaxDelay
}

// backoff returns the jittered delay before retry number i (0-based):
// uniform in [0, min(MaxDelay, BaseDelay·Multiplier^i)).
func (p *Policy) backoff(i int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	maxd := p.maxDelay()
	mult := p.Multiplier
	if mult <= 1 {
		mult = DefaultMultiplier
	}
	cap := float64(base)
	for j := 0; j < i; j++ {
		cap *= mult
		if cap >= float64(maxd) {
			cap = float64(maxd)
			break
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		p.rng = rand.New(rand.NewSource(seed))
	}
	return time.Duration(p.rng.Float64() * cap)
}

func (p *Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// classified wraps an error with an explicit retryability verdict and,
// optionally, a server-advised retry delay.
type classified struct {
	err       error
	retryable bool
	advised   time.Duration
	hasDelay  bool
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// Transient marks err as retryable: a failure expected to resolve on its
// own (5xx, connection reset, truncated body). Returns nil for nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, retryable: true}
}

// Permanent marks err as not worth retrying: the same request will keep
// failing (4xx, malformed input). Returns nil for nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, retryable: false}
}

// TransientAfter marks err as retryable with a server-advised delay: the
// class a 429 or 503 carrying a Retry-After header maps to. Do obeys the
// advised delay (clamped to the policy's MaxDelay) instead of its own
// jittered backoff. A negative delay is treated as zero. Returns nil for
// nil.
func TransientAfter(err error, delay time.Duration) error {
	if err == nil {
		return nil
	}
	if delay < 0 {
		delay = 0
	}
	return &classified{err: err, retryable: true, advised: delay, hasDelay: true}
}

// AdvisedDelay reports the server-advised retry delay attached to err by
// TransientAfter, walking wrapped errors.
func AdvisedDelay(err error) (time.Duration, bool) {
	var c *classified
	if errors.As(err, &c) && c.hasDelay {
		return c.advised, true
	}
	return 0, false
}

// IsRetryable is the default classifier: context errors and errors marked
// Permanent are final; errors marked Transient — and, conservatively,
// unclassified ones — are retryable.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var c *classified
	if errors.As(err, &c) {
		return c.retryable
	}
	return true
}
