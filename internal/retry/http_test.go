package retry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

var parseAnchor = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want time.Duration
		ok   bool
	}{
		{"absent", "", 0, false},
		{"delta seconds", "7", 7 * time.Second, true},
		{"zero delta", "0", 0, true},
		{"negative delta", "-3", 0, false},
		{"http date future", parseAnchor.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"http date past", parseAnchor.Add(-time.Minute).Format(http.TimeFormat), 0, true},
		{"garbage", "soon", 0, false},
		{"float seconds", "1.5", 0, false},
		{"trailing junk", "10s", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseRetryAfter(tc.in, parseAnchor)
			if got != tc.want || ok != tc.ok {
				t.Errorf("ParseRetryAfter(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestClassifyHTTPStatus(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		retryAfter string
		wantNil    bool
		retryable  bool
		advised    time.Duration
		hasAdvised bool
	}{
		{name: "200 ok", status: 200, wantNil: true},
		{name: "204 ok", status: 204, wantNil: true},
		{name: "429 with Retry-After", status: 429, retryAfter: "2", retryable: true, advised: 2 * time.Second, hasAdvised: true},
		{name: "429 without Retry-After", status: 429, retryable: true},
		{name: "429 malformed Retry-After", status: 429, retryAfter: "whenever", retryable: true},
		{name: "503 with Retry-After", status: 503, retryAfter: "1", retryable: true, advised: time.Second, hasAdvised: true},
		{name: "503 negative Retry-After", status: 503, retryAfter: "-1", retryable: true},
		{name: "500 transient", status: 500, retryable: true},
		{name: "408 transient", status: 408, retryable: true},
		{name: "400 permanent", status: 400},
		{name: "404 permanent", status: 404},
		{name: "413 permanent", status: 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ClassifyHTTPStatus(tc.status, tc.retryAfter, parseAnchor)
			if tc.wantNil {
				if err != nil {
					t.Fatalf("err = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatal("err = nil, want classified error")
			}
			if got := IsRetryable(err); got != tc.retryable {
				t.Errorf("IsRetryable = %v, want %v", got, tc.retryable)
			}
			d, ok := AdvisedDelay(err)
			if d != tc.advised || ok != tc.hasAdvised {
				t.Errorf("AdvisedDelay = %v, %v; want %v, %v", d, ok, tc.advised, tc.hasAdvised)
			}
		})
	}
}

func TestAdvisedDelaySurvivesWrapping(t *testing.T) {
	inner := TransientAfter(errors.New("throttled"), 3*time.Second)
	wrapped := errors.Join(errors.New("post batch"), inner)
	d, ok := AdvisedDelay(wrapped)
	if !ok || d != 3*time.Second {
		t.Errorf("AdvisedDelay(wrapped) = %v, %v; want 3s, true", d, ok)
	}
	if _, ok := AdvisedDelay(Transient(errors.New("plain"))); ok {
		t.Error("plain Transient reports an advised delay")
	}
}

func TestDoHonorsAdvisedDelay(t *testing.T) {
	rs := &recordingSleeper{}
	p := &Policy{MaxAttempts: 4, Seed: 5, Sleep: rs.sleep, MaxDelay: 10 * time.Second}
	calls := 0
	_, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, TransientAfter(errors.New("throttled"), 2*time.Second)
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.delays) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(rs.delays))
	}
	for i, d := range rs.delays {
		if d != 2*time.Second {
			t.Errorf("delay[%d] = %v, want the advised 2s", i, d)
		}
	}
}

func TestDoClampsAdvisedDelayToMaxDelay(t *testing.T) {
	rs := &recordingSleeper{}
	p := &Policy{MaxAttempts: 2, Seed: 5, Sleep: rs.sleep, MaxDelay: 500 * time.Millisecond}
	Do(context.Background(), p, func(context.Context) (int, error) {
		return 0, TransientAfter(errors.New("throttled"), time.Hour)
	})
	if len(rs.delays) != 1 || rs.delays[0] != 500*time.Millisecond {
		t.Errorf("delays = %v, want one clamped 500ms sleep", rs.delays)
	}
}
