package retry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrOpen is returned (wrapped) by Breaker.Allow while the breaker is
// open. It is marked permanent: retrying into an open breaker is exactly
// what the breaker exists to prevent.
var ErrOpen = errors.New("retry: circuit breaker open")

// Breaker is a per-endpoint circuit breaker. After Threshold consecutive
// failures it opens and rejects calls for Cooldown; the first call after
// the cooldown is a probe — its success closes the breaker, its failure
// re-opens it for another cooldown. A Breaker is safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	fails     int
	openUntil time.Time
	opens     int64

	openCount  *telemetry.Counter
	closeCount *telemetry.Counter
}

// NewBreaker returns a breaker tripping after threshold consecutive
// failures and cooling down for the given duration. threshold <= 0
// defaults to 5, cooldown <= 0 to 30s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Instrument mirrors the breaker's state transitions into telemetry
// counters: opens increments each time the breaker trips, closes each time
// a probe succeeds and closes it. Nil counters are no-ops. Note these are
// scheduling-dependent under concurrency — which goroutine's failure trips
// the threshold varies — so they belong on a live dashboard, not in a
// deterministic snapshot comparison.
func (b *Breaker) Instrument(opens, closes *telemetry.Counter) *Breaker {
	b.mu.Lock()
	b.openCount = opens
	b.closeCount = closes
	b.mu.Unlock()
	return b
}

// WithClock replaces the breaker's clock (for deterministic tests) and
// returns the breaker.
func (b *Breaker) WithClock(now func() time.Time) *Breaker {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
	return b
}

// Allow reports whether a call may proceed; while open it returns an
// error wrapping ErrOpen. After the cooldown elapses the next call is
// allowed through as a probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openUntil.IsZero() && b.now().Before(b.openUntil) {
		return Permanent(fmt.Errorf("%w (until %s)", ErrOpen, b.openUntil.Format(time.RFC3339)))
	}
	return nil
}

// Record feeds a call outcome into the breaker. Success closes it and
// resets the failure streak; failure extends the streak and trips the
// breaker at the threshold. Context cancellations are ignored — they say
// nothing about endpoint health.
func (b *Breaker) Record(err error) {
	if err == nil {
		b.mu.Lock()
		if !b.openUntil.IsZero() {
			b.closeCount.Inc()
		}
		b.fails = 0
		b.openUntil = time.Time{}
		b.mu.Unlock()
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	b.mu.Lock()
	b.fails++
	if b.fails >= b.threshold {
		if b.openUntil.IsZero() {
			b.openCount.Inc()
		}
		b.openUntil = b.now().Add(b.cooldown)
		b.opens++
	}
	b.mu.Unlock()
}

// Opens reports how many times the breaker has tripped.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
