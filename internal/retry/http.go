package retry

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// ClassifyHTTPStatus maps an HTTP response status plus its Retry-After
// header to a classified error:
//
//   - 2xx → nil (success)
//   - 429 and 503 → transient; a parseable Retry-After becomes the advised
//     delay (TransientAfter), a malformed or absent one falls back to the
//     policy's own backoff (plain Transient)
//   - 408 and the remaining 5xx → transient
//   - every other status (the remaining 4xx, 3xx the client chose not to
//     follow) → permanent: resending the same request cannot help
//
// now anchors HTTP-date Retry-After values; pass time.Now outside tests.
func ClassifyHTTPStatus(status int, retryAfter string, now time.Time) error {
	switch {
	case status >= 200 && status < 300:
		return nil
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		err := fmt.Errorf("retry: http status %d", status)
		if d, ok := ParseRetryAfter(retryAfter, now); ok {
			return TransientAfter(err, d)
		}
		return Transient(err)
	case status == http.StatusRequestTimeout || status >= 500:
		return Transient(fmt.Errorf("retry: http status %d", status))
	default:
		return Permanent(fmt.Errorf("retry: http status %d", status))
	}
}

// ClassifyHTTPResponse is ClassifyHTTPStatus applied to a response, using
// the wall clock for HTTP-date headers. The body is not touched.
func ClassifyHTTPResponse(resp *http.Response) error {
	return ClassifyHTTPStatus(resp.StatusCode, resp.Header.Get("Retry-After"), time.Now())
}

// ParseRetryAfter parses a Retry-After header value, which RFC 9110 allows
// as either non-negative delta-seconds or an HTTP-date. Malformed values
// (including negative deltas) report ok == false so callers fall back to
// their own backoff; an HTTP-date in the past parses as a zero delay.
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
