// Package webviewlint is a configurable, interprocedural static-analysis
// engine for WebView security misconfigurations, run by the pipeline as its
// own streaming stage over each APK's decompiled-and-parsed sources
// (javaparser.CompilationUnit) and call graph (callgraph.Graph).
//
// The paper's static pipeline (§3.1) records which WebView APIs apps call;
// its security discussion (§5) hinges on how those WebViews are configured
// — JavaScript bridges, file-access flags, SSL-error handling. This package
// makes that concrete as a rule registry in the style of BabelView and
// Gadient et al.: each rule has a stable ID and severity, findings carry
// exact class/method/line positions, and every finding is attributed to
// first-party or SDK code via the sdkindex package-prefix catalog — so
// misconfiguration prevalence is reported per app and per SDK, mirroring
// the paper's SDK-labeling style.
package webviewlint

// Severity ranks a rule's security impact.
type Severity string

// Severities, weakest to strongest.
const (
	Info     Severity = "info"
	Warning  Severity = "warning"
	High     Severity = "high"
	Critical Severity = "critical"
)

// Rule IDs.
const (
	RuleJSEnabled           = "js-enabled"
	RuleJSInterface         = "js-interface"
	RuleFileAccess          = "file-access"
	RuleFileURLAccess       = "file-url-access"
	RuleUniversalFileAccess = "universal-file-access"
	RuleMixedContent        = "mixed-content-allow"
	RuleSSLErrorProceed     = "ssl-error-proceed"
	RuleUnsafeLoadURL       = "unsafe-load-url"
	RuleDebuggableWebView   = "debuggable-webview"
)

// Rule is one registry entry. The registry is part of the engine's
// configuration fingerprint: editing a rule invalidates cached lint
// results (and nothing else).
type Rule struct {
	ID          string
	Severity    Severity
	Description string
}

// rules is the built-in registry, in report order.
var rules = []Rule{
	{RuleJSEnabled, Warning,
		"setJavaScriptEnabled(true): JavaScript enabled for loaded content"},
	{RuleJSInterface, High,
		"addJavascriptInterface: native bridge exposed to page JavaScript"},
	{RuleFileAccess, Warning,
		"setAllowFileAccess(true): file:// URLs readable by the WebView"},
	{RuleFileURLAccess, High,
		"setAllowFileAccessFromFileURLs(true): file:// content can read other files"},
	{RuleUniversalFileAccess, Critical,
		"setAllowUniversalAccessFromFileURLs(true): file:// content escapes the same-origin policy"},
	{RuleMixedContent, Warning,
		"setMixedContentMode(MIXED_CONTENT_ALWAYS_ALLOW): HTTPS pages may load HTTP subresources"},
	{RuleSSLErrorProceed, Critical,
		"onReceivedSslError handler calls proceed(): TLS errors silently ignored"},
	{RuleUnsafeLoadURL, High,
		"intent/deep-link data reaches loadUrl or evaluateJavascript unvalidated"},
	{RuleDebuggableWebView, Info,
		"setWebContentsDebuggingEnabled(true): remote debugging left on"},
}

// Rules returns the full registry in report order.
func Rules() []Rule { return append([]Rule(nil), rules...) }

// RuleByID looks a registry entry up, reporting whether the ID exists.
func RuleByID(id string) (Rule, bool) {
	for _, r := range rules {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}
