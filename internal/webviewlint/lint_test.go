package webviewlint

import (
	"strings"
	"testing"

	"repro/internal/android"
	"repro/internal/callgraph"
	"repro/internal/dalvik"
	"repro/internal/decompiler"
	"repro/internal/javaparser"
	"repro/internal/sdkindex"
)

func mustParse(t *testing.T, srcs ...string) []*javaparser.CompilationUnit {
	t.Helper()
	var units []*javaparser.CompilationUnit
	for _, s := range srcs {
		u, err := javaparser.Parse(s)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, s)
		}
		units = append(units, u)
	}
	return units
}

func analyzeAll(t *testing.T, app App) []Finding {
	t.Helper()
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return a.Analyze(app)
}

func ruleSet(fs []Finding) map[string]int {
	m := make(map[string]int)
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

func TestNewValidatesRules(t *testing.T) {
	if _, err := New(Config{Rules: []string{"no-such-rule"}}); err == nil {
		t.Error("unknown rule accepted")
	}
	a, err := New(Config{Rules: []string{RuleJSEnabled}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Enabled(RuleJSEnabled) || a.Enabled(RuleJSInterface) {
		t.Error("enablement wrong for subset config")
	}
}

func TestFingerprintTracksConfig(t *testing.T) {
	all1, _ := New(Config{})
	all2, _ := New(Config{})
	sub, _ := New(Config{Rules: []string{RuleJSEnabled}})
	if all1.Fingerprint() != all2.Fingerprint() {
		t.Error("same config, different fingerprint")
	}
	if all1.Fingerprint() == sub.Fingerprint() {
		t.Error("different config, same fingerprint")
	}
	if len(all1.Fingerprint()) != 16 {
		t.Errorf("fingerprint length = %d", len(all1.Fingerprint()))
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Rules()) < 8 {
		t.Fatalf("registry has %d rules, want >= 8", len(Rules()))
	}
	seen := map[string]bool{}
	for _, r := range Rules() {
		if r.ID == "" || r.Description == "" || r.Severity == "" {
			t.Errorf("incomplete rule %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		seen[r.ID] = true
	}
}

const settingsSrc = `package com.example.app;

class WebSetup {
    void configure() {
        Object v1 = this.getSettings();
        v1.setJavaScriptEnabled(true);
        v1.setAllowFileAccess(true);
        v1.setAllowFileAccessFromFileURLs(true);
        v1.setAllowUniversalAccessFromFileURLs(true);
        v1.setMixedContentMode(0);
        WebView.setWebContentsDebuggingEnabled(true);
        view.addJavascriptInterface(bridge, "Native");
    }
}
`

func TestConfigurationRules(t *testing.T) {
	fs := analyzeAll(t, App{Units: mustParse(t, settingsSrc)})
	got := ruleSet(fs)
	for _, want := range []string{
		RuleJSEnabled, RuleFileAccess, RuleFileURLAccess,
		RuleUniversalFileAccess, RuleMixedContent,
		RuleDebuggableWebView, RuleJSInterface,
	} {
		if got[want] != 1 {
			t.Errorf("rule %s: %d findings, want 1 (%v)", want, got[want], got)
		}
	}
	for _, f := range fs {
		if !f.FirstParty || f.SDK != "" {
			t.Errorf("no index: finding not first-party: %+v", f)
		}
		if f.Line == 0 {
			t.Errorf("finding without line: %+v", f)
		}
		def, _ := RuleByID(f.Rule)
		if f.Severity != def.Severity {
			t.Errorf("severity mismatch: %+v", f)
		}
	}
}

func TestNegativeConfigurations(t *testing.T) {
	src := `package com.example.app;
class Safe {
    void configure() {
        Object v1 = this.getSettings();
        v1.setJavaScriptEnabled(false);
        v1.setAllowFileAccess(false);
        v1.setMixedContentMode(1);
        WebView.setWebContentsDebuggingEnabled(false);
        v1.loadUrl("https://example.com");
    }
}
`
	if fs := analyzeAll(t, App{Units: mustParse(t, src)}); len(fs) != 0 {
		t.Errorf("safe configuration flagged: %+v", fs)
	}
}

func TestRuleSubsetFilters(t *testing.T) {
	a, err := New(Config{Rules: []string{RuleJSEnabled}})
	if err != nil {
		t.Fatal(err)
	}
	fs := a.Analyze(App{Units: mustParse(t, settingsSrc)})
	if len(fs) != 1 || fs[0].Rule != RuleJSEnabled {
		t.Errorf("subset config findings = %+v", fs)
	}
}

func TestSSLErrorProceed(t *testing.T) {
	pos := `package com.example.app;
import android.webkit.WebViewClient;
class Guard extends WebViewClient {
    void onReceivedSslError(WebView a0, SslErrorHandler a1, SslError a2) {
        a1.proceed();
    }
}
`
	neg := `package com.example.app;
import android.webkit.WebViewClient;
class Guard extends WebViewClient {
    void onReceivedSslError(WebView a0, SslErrorHandler a1, SslError a2) {
        a1.cancel();
    }
}
`
	notClient := `package com.example.app;
class Guard {
    void onReceivedSslError(WebView a0, SslErrorHandler a1, SslError a2) {
        a1.proceed();
    }
}
`
	if got := ruleSet(analyzeAll(t, App{Units: mustParse(t, pos)})); got[RuleSSLErrorProceed] != 1 {
		t.Errorf("proceed() in WebViewClient not flagged: %v", got)
	}
	if got := ruleSet(analyzeAll(t, App{Units: mustParse(t, neg)})); got[RuleSSLErrorProceed] != 0 {
		t.Errorf("cancel() flagged: %v", got)
	}
	if got := ruleSet(analyzeAll(t, App{Units: mustParse(t, notClient)})); got[RuleSSLErrorProceed] != 0 {
		t.Errorf("non-WebViewClient flagged: %v", got)
	}
}

func TestTaintIntraMethod(t *testing.T) {
	src := `package com.example.app;
class Deep {
    void onCreate() {
        Object v1 = this.getIntent();
        Object v2 = v1.getDataString();
        view.loadUrl(v2);
    }
}
`
	fs := analyzeAll(t, App{Units: mustParse(t, src)})
	got := ruleSet(fs)
	if got[RuleUnsafeLoadURL] != 1 {
		t.Fatalf("intent → loadUrl not flagged: %v", fs)
	}
	var f Finding
	for _, x := range fs {
		if x.Rule == RuleUnsafeLoadURL {
			f = x
		}
	}
	if f.Class != "com.example.app.Deep" || f.Method != "onCreate" {
		t.Errorf("finding position = %+v", f)
	}
	if !strings.Contains(f.Detail, "loadUrl") {
		t.Errorf("detail = %q", f.Detail)
	}
}

func TestTaintInlineChainAndSanitizer(t *testing.T) {
	tainted := `package com.example.app;
class Deep {
    void onCreate() {
        Object v1 = this.getIntent();
        view.loadUrl(v1.getDataString());
    }
}
`
	sanitized := `package com.example.app;
class Deep {
    void onCreate() {
        Object v1 = this.getIntent();
        Object v2 = v1.getDataString();
        view.loadUrl(Sanitizer.clean(v2));
    }
}
`
	literal := `package com.example.app;
class Deep {
    void onCreate() {
        Object v1 = this.getIntent();
        view.loadUrl("https://fixed.example");
    }
}
`
	if got := ruleSet(analyzeAll(t, App{Units: mustParse(t, tainted)})); got[RuleUnsafeLoadURL] != 1 {
		t.Errorf("inline deriver chain not flagged: %v", got)
	}
	if got := ruleSet(analyzeAll(t, App{Units: mustParse(t, sanitized)})); got[RuleUnsafeLoadURL] != 0 {
		t.Errorf("sanitized flow flagged: %v", got)
	}
	if got := ruleSet(analyzeAll(t, App{Units: mustParse(t, literal)})); got[RuleUnsafeLoadURL] != 0 {
		t.Errorf("literal URL flagged: %v", got)
	}
}

// interprocDex builds the deep-link flow in bytecode so the callgraph edge
// DeepLinkActivity.openDeepLink → LinkRouter.route exists.
func interprocDex(t *testing.T) *dalvik.File {
	t.Helper()
	b := dalvik.NewBuilder()
	b.Class("com.example.app.DeepLinkActivity", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.InvokeVirtual("com.example.app.DeepLinkActivity", "openDeepLink", "()void"),
		).
		VoidMethod("openDeepLink",
			dalvik.InvokeVirtual("com.example.app.DeepLinkActivity", "getIntent", "()Intent"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeVirtual(android.IntentClass, "getDataString", "()String"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeStatic("com.example.app.LinkRouter", "route", "(String)void"),
		)
	b.Class("com.example.app.LinkRouter", android.ObjectClass, dalvik.AccPublic).
		Method("route", "(String)void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			dalvik.Return(),
		)
	return b.MustBuild()
}

// TestInterproceduralRoundTrip is the full-pipeline check: build bytecode,
// decompile it, parse the decompiled source, and lint with the call graph —
// the tainted intent datum must be tracked through the static route() call
// into the loadUrl sink in the other class.
func TestInterproceduralRoundTrip(t *testing.T) {
	dex := interprocDex(t)
	g := callgraph.Build(dex)
	var units []*javaparser.CompilationUnit
	for _, du := range decompiler.Decompile(dex) {
		u, err := javaparser.Parse(du.Source)
		if err != nil {
			t.Fatalf("parse decompiled %s: %v\n%s", du.Path, err, du.Source)
		}
		units = append(units, u)
	}
	fs := analyzeAll(t, App{Units: units, Graph: g})
	var hit *Finding
	for i := range fs {
		if fs[i].Rule == RuleUnsafeLoadURL {
			hit = &fs[i]
		}
	}
	if hit == nil {
		t.Fatalf("interprocedural flow not found; findings = %+v", fs)
	}
	if hit.Class != "com.example.app.LinkRouter" || hit.Method != "route" {
		t.Errorf("sink attributed to %s.%s, want LinkRouter.route", hit.Class, hit.Method)
	}
}

// TestInterproceduralNeedsGraph pins that the cross-class step genuinely
// rides on the callgraph edge: same sources, no graph, no finding.
func TestInterproceduralNeedsGraph(t *testing.T) {
	dex := interprocDex(t)
	var units []*javaparser.CompilationUnit
	for _, du := range decompiler.Decompile(dex) {
		u, err := javaparser.Parse(du.Source)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, u)
	}
	fs := analyzeAll(t, App{Units: units})
	if got := ruleSet(fs); got[RuleUnsafeLoadURL] != 0 {
		t.Errorf("cross-class taint without graph: %+v", fs)
	}
}

func TestSDKAttribution(t *testing.T) {
	idx := sdkindex.NewIndex([]sdkindex.SDK{
		{Name: "AppLovin", Package: "com.applovin", Category: sdkindex.Advertising, WebViewApps: 1},
		{Name: "Google", Package: "com.google.android", Category: sdkindex.Utility, Excluded: true},
	})
	src := []string{
		`package com.applovin.adview;
class Ad { void show() { Object v1 = this.getSettings(); v1.setJavaScriptEnabled(true); } }`,
		`package com.google.android.gms;
class G { void show() { Object v1 = this.getSettings(); v1.setJavaScriptEnabled(true); } }`,
		`package com.example.app;
class A { void show() { Object v1 = this.getSettings(); v1.setJavaScriptEnabled(true); } }`,
	}
	fs := analyzeAll(t, App{Units: mustParse(t, src...), Index: idx})
	if len(fs) != 3 {
		t.Fatalf("findings = %+v", fs)
	}
	byClass := map[string]Finding{}
	for _, f := range fs {
		byClass[f.Class] = f
	}
	if f := byClass["com.applovin.adview.Ad"]; f.SDK != "AppLovin" || f.FirstParty ||
		f.SDKCategory != string(sdkindex.Advertising) {
		t.Errorf("SDK attribution wrong: %+v", f)
	}
	if f := byClass["com.google.android.gms.G"]; f.SDK != "" || !f.FirstParty {
		t.Errorf("excluded entry must attribute first-party: %+v", f)
	}
	if f := byClass["com.example.app.A"]; f.SDK != "" || !f.FirstParty {
		t.Errorf("unlabeled package must attribute first-party: %+v", f)
	}
}

func TestDeterministicOrder(t *testing.T) {
	units := mustParse(t, settingsSrc,
		`package com.aaa; class Z { void m() { Object v1 = this.getSettings(); v1.setJavaScriptEnabled(true); } }`)
	app := App{Units: units}
	first := analyzeAll(t, app)
	for i := 0; i < 5; i++ {
		again := analyzeAll(t, app)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d findings vs %d", i, len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("run %d: finding %d differs: %+v vs %+v", i, j, again[j], first[j])
			}
		}
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Class > b.Class || (a.Class == b.Class && a.Line > b.Line) {
			t.Errorf("findings unsorted: %+v before %+v", a, b)
		}
	}
}
