package webviewlint

import (
	"fmt"
	"strings"
)

// The unsafe-load-url rule is a def-use taint walk over the decompiled
// sources. Sources are intent accessors (attacker-controlled deep-link
// data), derivers propagate taint through value-preserving transformations,
// and sinks are the WebView content-loading methods. Within a method the
// walk follows assignment chains (`Object v1 = this.getIntent(); Object v2
// = v1.getDataString();`); across methods it follows the bytecode call
// graph: a tainted argument at position k taints the callee's k-th declared
// parameter, and the callee is re-analysed until a fixpoint.

// taintSources start a taint chain when their result is assigned.
var taintSources = map[string]bool{
	"getIntent": true,
}

// taintDerivers propagate taint from receiver or argument to result.
var taintDerivers = map[string]bool{
	"getData": true, "getDataString": true, "getStringExtra": true,
	"getExtras": true, "getString": true, "getQueryParameter": true,
	"toString": true, "trim": true, "concat": true,
}

// taintSinks load attacker-controllable strings into a WebView.
var taintSinks = map[string]bool{
	"loadUrl": true, "evaluateJavascript": true, "loadData": true,
	"loadDataWithBaseURL": true, "postUrl": true,
}

type methodKey struct{ class, method string }

// taintFindings runs the interprocedural walk and returns a finding for
// every sink call receiving a tainted argument.
func (a *Analyzer) taintFindings(app App, classes map[string]*classInfo, order []string) []Finding {
	if !a.enabled[RuleUnsafeLoadURL] {
		return nil
	}
	// paramTaint accumulates interprocedurally-tainted parameter names.
	paramTaint := make(map[methodKey]map[string]bool)
	reported := make(map[methodKey]map[int]bool) // sink lines already emitted

	var work []methodKey
	queued := make(map[methodKey]bool)
	push := func(k methodKey) {
		if !queued[k] {
			queued[k] = true
			work = append(work, k)
		}
	}
	// Seed: every method runs once; only methods containing a source or a
	// tainted parameter produce anything, the rest are a cheap linear scan.
	for _, name := range order {
		for _, m := range classes[name].td.Methods {
			push(methodKey{name, m.Name})
		}
	}

	var out []Finding
	for len(work) > 0 {
		k := work[0]
		work = work[1:]
		queued[k] = false
		ci := classes[k.class]
		if ci == nil {
			continue
		}
		for mi := range ci.td.Methods {
			m := &ci.td.Methods[mi]
			if m.Name != k.method {
				continue
			}
			tainted := make(map[string]bool, 4)
			for p := range paramTaint[k] {
				tainted[p] = true
			}
			// calleeByName resolves source-level call names to in-file
			// classes through the bytecode call graph, lazily per method.
			var calleeByName map[string]string
			callees := func() map[string]string {
				if calleeByName != nil {
					return calleeByName
				}
				calleeByName = make(map[string]string, 4)
				if app.Graph != nil {
					for _, ref := range app.Graph.Callees(k.class, k.method) {
						if _, in := classes[ref.Class]; !in {
							continue
						}
						if _, dup := calleeByName[ref.Name]; !dup {
							calleeByName[ref.Name] = ref.Class
						}
					}
				}
				return calleeByName
			}
			for ci2 := range m.Calls {
				c := &m.Calls[ci2]
				switch {
				case taintSources[c.Name]:
					if c.Assign != "" {
						tainted[c.Assign] = true
					}
				case taintDerivers[c.Name]:
					src := rootTainted(c.Receiver, tainted)
					for _, arg := range c.Args {
						src = src || exprTainted(arg, tainted)
					}
					if src && c.Assign != "" {
						tainted[c.Assign] = true
					}
				}
				for ai, arg := range c.Args {
					if !exprTainted(arg, tainted) {
						continue
					}
					if taintSinks[c.Name] {
						if reported[k] == nil {
							reported[k] = make(map[int]bool, 1)
						}
						if reported[k][c.Line] {
							continue
						}
						reported[k][c.Line] = true
						def, _ := RuleByID(RuleUnsafeLoadURL)
						out = append(out, Finding{
							Rule: RuleUnsafeLoadURL, Severity: def.Severity,
							Class: k.class, Method: k.method, Line: c.Line,
							Detail: fmt.Sprintf("%s(%s): argument derived from intent data", c.Name, arg),
						})
						continue
					}
					// Interprocedural edge: taint the callee's parameter.
					if cls, ok := callees()[c.Name]; ok {
						ck := methodKey{cls, c.Name}
						if cci := classes[cls]; cci != nil {
							for _, cm := range cci.td.Methods {
								if cm.Name != c.Name || ai >= len(cm.Params) {
									continue
								}
								p := cm.Params[ai]
								if paramTaint[ck] == nil {
									paramTaint[ck] = make(map[string]bool, 2)
								}
								if !paramTaint[ck][p] {
									paramTaint[ck][p] = true
									push(ck)
								}
								break
							}
						}
					}
				}
			}
		}
	}
	return out
}

// rootTainted reports whether the leading identifier of a receiver chain
// ("v1" in "v1.getExtras") is tainted.
func rootTainted(recv string, tainted map[string]bool) bool {
	if recv == "" {
		return false
	}
	if i := strings.IndexByte(recv, '.'); i >= 0 {
		recv = recv[:i]
	}
	return tainted[recv]
}

// exprTainted reports whether an argument expression carries taint: its
// root identifier is tainted and every method applied in the chain is a
// value-preserving deriver ("v1.getDataString().trim()" stays tainted,
// "Sanitizer.clean(v1)" does not — its root is the sanitizer class).
func exprTainted(expr string, tainted map[string]bool) bool {
	root := leadingIdent(expr)
	if root == "" || !tainted[root] {
		return false
	}
	// Every name immediately preceding a '(' must be a deriver.
	rest := expr[len(root):]
	for i := 0; i < len(rest); i++ {
		if rest[i] != '(' {
			continue
		}
		j := i
		for j > 0 && isIdentByte(rest[j-1]) {
			j--
		}
		if name := rest[j:i]; name != "" && !taintDerivers[name] {
			return false
		}
	}
	return true
}

func leadingIdent(s string) string {
	i := 0
	for i < len(s) && isIdentByte(s[i]) {
		i++
	}
	return s[:i]
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '$' ||
		'a' <= b && b <= 'z' || 'A' <= b && b <= 'Z' || '0' <= b && b <= '9'
}
