package webviewlint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dalvik"
	"repro/internal/urlextract"
)

// The unsafe-load-url rule is a def-use taint walk over the decompiled
// sources. Sources are intent accessors (attacker-controlled deep-link
// data), derivers propagate taint through value-preserving transformations,
// and sinks are the WebView content-loading methods. Within a method the
// walk follows assignment chains (`Object v1 = this.getIntent(); Object v2
// = v1.getDataString();`); across methods it delegates to the urlextract
// engine's interprocedural parameter-taint fixpoint over the bytecode call
// graph, whose per-method walk mirrors the decompiler's rendering exactly —
// a tainted argument at position k taints the callee's k-th declared
// parameter, and the source-level pass here picks the result up by name.

// taintSources start a taint chain when their result is assigned.
var taintSources = map[string]bool{
	"getIntent": true,
}

// taintDerivers propagate taint from receiver or argument to result.
var taintDerivers = map[string]bool{
	"getData": true, "getDataString": true, "getStringExtra": true,
	"getExtras": true, "getString": true, "getQueryParameter": true,
	"toString": true, "trim": true, "concat": true,
}

// taintSinks load attacker-controllable strings into a WebView.
var taintSinks = map[string]bool{
	"loadUrl": true, "evaluateJavascript": true, "loadData": true,
	"loadDataWithBaseURL": true, "postUrl": true,
}

type methodKey struct{ class, method string }

// taintFindings seeds each method's tainted parameter names from the
// bytecode fixpoint, then walks every method's source body once and emits a
// finding for every sink call receiving a tainted argument. Without a call
// graph only intra-method flows are visible.
func (a *Analyzer) taintFindings(app App, classes map[string]*classInfo, order []string) []Finding {
	if !a.enabled[RuleUnsafeLoadURL] {
		return nil
	}
	paramTaint := a.seedParamTaint(app, classes)
	reported := make(map[methodKey]map[int]bool) // sink lines already emitted

	var out []Finding
	for _, name := range order {
		ci := classes[name]
		for mi := range ci.td.Methods {
			m := &ci.td.Methods[mi]
			k := methodKey{name, m.Name}
			tainted := make(map[string]bool, 4)
			for p := range paramTaint[k] {
				tainted[p] = true
			}
			for ci2 := range m.Calls {
				c := &m.Calls[ci2]
				switch {
				case taintSources[c.Name]:
					if c.Assign != "" {
						tainted[c.Assign] = true
					}
				case taintDerivers[c.Name]:
					src := rootTainted(c.Receiver, tainted)
					for _, arg := range c.Args {
						src = src || exprTainted(arg, tainted)
					}
					if src && c.Assign != "" {
						tainted[c.Assign] = true
					}
				}
				if !taintSinks[c.Name] {
					continue
				}
				for _, arg := range c.Args {
					if !exprTainted(arg, tainted) {
						continue
					}
					if reported[k] == nil {
						reported[k] = make(map[int]bool, 1)
					}
					if !reported[k][c.Line] {
						reported[k][c.Line] = true
						def, _ := RuleByID(RuleUnsafeLoadURL)
						out = append(out, Finding{
							Rule: RuleUnsafeLoadURL, Severity: def.Severity,
							Class: name, Method: m.Name, Line: c.Line,
							Detail: fmt.Sprintf("%s(%s): argument derived from intent data", c.Name, arg),
						})
					}
					break
				}
			}
		}
	}
	return out
}

// seedParamTaint maps the engine's per-ref tainted parameter indices onto
// source-level parameter names, keyed the way the source walk looks methods
// up (class + method name; overloads share a key, as their decompiled
// parameter names do).
func (a *Analyzer) seedParamTaint(app App, classes map[string]*classInfo) map[methodKey]map[string]bool {
	paramTaint := make(map[methodKey]map[string]bool)
	if app.Graph == nil {
		return paramTaint
	}
	engine := urlextract.ParamTaint(app.Graph, urlextract.TaintConfig{
		Sources: taintSources, Derivers: taintDerivers, Sinks: taintSinks,
	})
	refs := make([]dalvik.MethodRef, 0, len(engine))
	for ref := range engine {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Class != refs[j].Class {
			return refs[i].Class < refs[j].Class
		}
		if refs[i].Name != refs[j].Name {
			return refs[i].Name < refs[j].Name
		}
		return refs[i].Signature < refs[j].Signature
	})
	for _, ref := range refs {
		ci := classes[ref.Class]
		if ci == nil {
			continue
		}
		k := methodKey{ref.Class, ref.Name}
		for _, idx := range engine[ref] {
			for mi := range ci.td.Methods {
				cm := &ci.td.Methods[mi]
				if cm.Name != ref.Name || idx >= len(cm.Params) {
					continue
				}
				if paramTaint[k] == nil {
					paramTaint[k] = make(map[string]bool, 2)
				}
				paramTaint[k][cm.Params[idx]] = true
				break
			}
		}
	}
	return paramTaint
}

// rootTainted reports whether the leading identifier of a receiver chain
// ("v1" in "v1.getExtras") is tainted.
func rootTainted(recv string, tainted map[string]bool) bool {
	if recv == "" {
		return false
	}
	if i := strings.IndexByte(recv, '.'); i >= 0 {
		recv = recv[:i]
	}
	return tainted[recv]
}

// exprTainted reports whether an argument expression carries taint: its
// root identifier is tainted and every method applied in the chain is a
// value-preserving deriver ("v1.getDataString().trim()" stays tainted,
// "Sanitizer.clean(v1)" does not — its root is the sanitizer class).
func exprTainted(expr string, tainted map[string]bool) bool {
	root := leadingIdent(expr)
	if root == "" || !tainted[root] {
		return false
	}
	// Every name immediately preceding a '(' must be a deriver.
	rest := expr[len(root):]
	for i := 0; i < len(rest); i++ {
		if rest[i] != '(' {
			continue
		}
		j := i
		for j > 0 && isIdentByte(rest[j-1]) {
			j--
		}
		if name := rest[j:i]; name != "" && !taintDerivers[name] {
			return false
		}
	}
	return true
}

func leadingIdent(s string) string {
	i := 0
	for i < len(s) && isIdentByte(s[i]) {
		i++
	}
	return s[:i]
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '$' ||
		'a' <= b && b <= 'z' || 'A' <= b && b <= 'Z' || '0' <= b && b <= '9'
}
