package webviewlint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/android"
	"repro/internal/callgraph"
	"repro/internal/javaparser"
	"repro/internal/sdkindex"
)

// engineVersion is mixed into Fingerprint so that semantic changes to the
// engine (not just the rule registry) can invalidate cached results.
// Version 2: interprocedural taint propagation moved onto the urlextract
// engine's bytecode fixpoint (findings unchanged; caches conservatively
// invalidated).
const engineVersion = 2

// Config selects which rules run. A nil Rules slice enables the whole
// registry; naming an unknown rule is a configuration error surfaced by New.
type Config struct {
	Rules []string
}

// Analyzer is a configured lint engine. It is immutable after New and safe
// for concurrent use by multiple pipeline workers.
type Analyzer struct {
	enabled map[string]bool
	fp      string
}

// New validates the configuration and builds an analyzer.
func New(cfg Config) (*Analyzer, error) {
	a := &Analyzer{enabled: make(map[string]bool, len(rules))}
	if cfg.Rules == nil {
		for _, r := range rules {
			a.enabled[r.ID] = true
		}
	} else {
		for _, id := range cfg.Rules {
			if _, ok := RuleByID(id); !ok {
				return nil, fmt.Errorf("webviewlint: unknown rule %q", id)
			}
			a.enabled[id] = true
		}
	}
	h := sha256.New()
	fmt.Fprintf(h, "engine=%d\n", engineVersion)
	for _, r := range rules { // registry order: deterministic
		if a.enabled[r.ID] {
			fmt.Fprintf(h, "%s\x00%s\x00%s\n", r.ID, r.Severity, r.Description)
		}
	}
	a.fp = hex.EncodeToString(h.Sum(nil))[:16]
	return a, nil
}

// Fingerprint returns a short stable hash over the enabled rule definitions
// and engine version. Content-addressed result caches mix it into their
// keys, so changing the lint configuration invalidates cached lint results
// instead of silently serving findings from the old rule set.
func (a *Analyzer) Fingerprint() string { return a.fp }

// Enabled reports whether the rule runs under this configuration.
func (a *Analyzer) Enabled(id string) bool { return a.enabled[id] }

// App is one APK's analysis inputs: the parsed decompiled sources, the
// bytecode call graph (for interprocedural edges and class-hierarchy
// queries) and the SDK index used for attribution. Graph and Index may be
// nil — hierarchy checks then fall back to source-level resolution and
// every finding is attributed first-party.
type App struct {
	Units []*javaparser.CompilationUnit
	Graph *callgraph.Graph
	Index *sdkindex.Index
}

// Finding is one rule violation at a source position, attributed to the
// first-party app or an SDK by the package prefix of the containing class.
type Finding struct {
	Rule        string   `json:"rule"`
	Severity    Severity `json:"severity"`
	Class       string   `json:"class"` // fully-qualified containing class
	Method      string   `json:"method"`
	Line        int      `json:"line"`
	Detail      string   `json:"detail"`
	SDK         string   `json:"sdk,omitempty"`         // SDK name, "" for first-party
	SDKCategory string   `json:"sdkCategory,omitempty"` // SDK category, "" for first-party
	FirstParty  bool     `json:"firstParty"`
}

// classInfo pairs a type declaration with its enclosing unit so methods can
// be looked up by fully-qualified class name during the taint walk.
type classInfo struct {
	unit *javaparser.CompilationUnit
	td   *javaparser.TypeDecl
}

// fqn returns the class's fully-qualified name.
func fqn(u *javaparser.CompilationUnit, td *javaparser.TypeDecl) string {
	if u.Package == "" {
		return td.Name
	}
	return u.Package + "." + td.Name
}

func packageOf(class string) string {
	if i := strings.LastIndexByte(class, '.'); i >= 0 {
		return class[:i]
	}
	return ""
}

// settingRules maps a WebSettings/WebView configuration method to the rule
// its misuse triggers; matched when the first argument enables the feature.
var settingRules = map[string]string{
	android.MethodSetJavaScriptEnabled:                RuleJSEnabled,
	android.MethodSetAllowFileAccess:                  RuleFileAccess,
	android.MethodSetAllowFileAccessFromFileURLs:      RuleFileURLAccess,
	android.MethodSetAllowUniversalAccessFromFileURLs: RuleUniversalFileAccess,
	android.MethodSetWebContentsDebuggingEnabled:      RuleDebuggableWebView,
}

// Analyze runs every enabled rule over the app and returns the findings
// sorted by (class, line, rule). The result is deterministic for a given
// input: identical parsed sources and graph always yield identical findings.
func (a *Analyzer) Analyze(app App) []Finding {
	classes := make(map[string]*classInfo, len(app.Units))
	var order []string // class iteration order = unit order, deterministic
	for _, u := range app.Units {
		for i := range u.Types {
			td := &u.Types[i]
			name := fqn(u, td)
			if _, dup := classes[name]; !dup {
				classes[name] = &classInfo{unit: u, td: td}
				order = append(order, name)
			}
		}
	}

	var out []Finding
	emit := func(rule, class, method string, line int, detail string) {
		if !a.enabled[rule] {
			return
		}
		def, _ := RuleByID(rule)
		out = append(out, Finding{
			Rule: rule, Severity: def.Severity,
			Class: class, Method: method, Line: line, Detail: detail,
		})
	}

	for _, name := range order {
		ci := classes[name]
		sslHandler := a.isWebViewClient(app, ci)
		for mi := range ci.td.Methods {
			m := &ci.td.Methods[mi]
			for ci2 := range m.Calls {
				c := &m.Calls[ci2]
				a.checkCall(c, name, m.Name, emit)
				if sslHandler && isSSLErrorHandler(m.Name) && c.Name == "proceed" {
					emit(RuleSSLErrorProceed, name, m.Name, c.Line,
						"onReceivedSslError calls proceed()")
				}
			}
		}
	}

	out = append(out, a.taintFindings(app, classes, order)...)

	for i := range out {
		attribute(&out[i], app.Index)
	}
	return dedupeSort(out)
}

// checkCall applies the single-call configuration rules.
func (a *Analyzer) checkCall(c *javaparser.Call, class, method string, emit func(string, string, string, int, string)) {
	switch c.Name {
	case android.MethodAddJavascriptInterface:
		detail := "addJavascriptInterface(…)"
		if len(c.Args) >= 2 {
			detail = fmt.Sprintf("addJavascriptInterface(…, %s)", c.Args[len(c.Args)-1])
		}
		emit(RuleJSInterface, class, method, c.Line, detail)
	case android.MethodSetMixedContentMode:
		if len(c.Args) == 1 && (c.Args[0] == "0" || strings.Contains(c.Args[0], "MIXED_CONTENT_ALWAYS_ALLOW")) {
			emit(RuleMixedContent, class, method, c.Line,
				fmt.Sprintf("setMixedContentMode(%s)", c.Args[0]))
		}
	default:
		if rule, ok := settingRules[c.Name]; ok && len(c.Args) == 1 && c.Args[0] == "true" {
			emit(rule, class, method, c.Line, c.Name+"(true)")
		}
	}
}

// isSSLErrorHandler matches the handler method, including the flattened
// "Inner.onReceivedSslError" form the parser produces for nested types.
func isSSLErrorHandler(method string) bool {
	return method == android.MethodOnReceivedSslError ||
		strings.HasSuffix(method, "."+android.MethodOnReceivedSslError)
}

// isWebViewClient reports whether the class is a WebViewClient subclass,
// preferring the bytecode hierarchy and falling back to source-level import
// resolution when no graph is available.
func (a *Analyzer) isWebViewClient(app App, ci *classInfo) bool {
	if ci.td.Extends == "" {
		return false
	}
	if app.Graph != nil {
		if app.Graph.IsSubclassOf(fqn(ci.unit, ci.td), android.WebViewClientClass) {
			return true
		}
	}
	return ci.unit.Resolve(ci.td.Extends) == android.WebViewClientClass
}

// attribute labels a finding first-party or SDK by its class's package.
// Excluded catalog entries (com.google.android) count as neither SDK nor
// first-party-suppressed: they attribute first-party like unlabeled code.
func attribute(f *Finding, idx *sdkindex.Index) {
	if idx != nil {
		if s, ok := idx.Lookup(packageOf(f.Class)); ok && !s.Excluded {
			f.SDK = s.Name
			f.SDKCategory = string(s.Category)
			return
		}
	}
	f.FirstParty = true
}

// dedupeSort orders findings by (class, line, rule, method) and drops exact
// positional duplicates — the taint fixpoint can rediscover a sink when a
// method is re-analysed with a grown parameter-taint set.
func dedupeSort(fs []Finding) []Finding {
	if len(fs) == 0 {
		return nil
	}
	sortFindings(fs)
	out := fs[:1]
	for _, f := range fs[1:] {
		p := out[len(out)-1]
		if f.Rule == p.Rule && f.Class == p.Class && f.Method == p.Method && f.Line == p.Line {
			continue
		}
		out = append(out, f)
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Method < b.Method
	})
}
