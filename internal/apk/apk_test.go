package apk

import (
	"archive/zip"
	"bytes"
	"errors"
	"testing"

	"repro/internal/android"
	"repro/internal/dalvik"
	"repro/internal/manifest"
)

func sampleInputs(t *testing.T) (*manifest.Manifest, *dalvik.File) {
	t.Helper()
	m := &manifest.Manifest{
		Package:     "com.example.pack",
		VersionCode: 1,
		Components: []manifest.Component{{
			Kind: manifest.KindActivity,
			Name: "com.example.pack.MainActivity",
		}},
	}
	dex := dalvik.NewBuilder().
		Class("com.example.pack.MainActivity", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("https://example.com"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
		).
		MustBuild()
	return m, dex
}

func TestPackOpenRoundTrip(t *testing.T) {
	m, dex := sampleInputs(t)
	assets := map[string][]byte{"config.json": []byte(`{"k":1}`)}
	data, err := Pack(m, dex, assets)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if a.Package() != "com.example.pack" {
		t.Errorf("Package = %q", a.Package())
	}
	if a.Dex.ClassByName("com.example.pack.MainActivity") == nil {
		t.Error("dex lost MainActivity")
	}
	if string(a.Assets["config.json"]) != `{"k":1}` {
		t.Errorf("asset = %q", a.Assets["config.json"])
	}
	if a.Digest == "" {
		t.Error("empty digest")
	}
}

func TestPackDeterministic(t *testing.T) {
	m, dex := sampleInputs(t)
	a, err := Pack(m, dex, map[string][]byte{"b": []byte("2"), "a": []byte("1")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(m, dex, map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Pack output depends on asset map iteration order")
	}
}

func TestDigestOfMatchesOpen(t *testing.T) {
	m, dex := sampleInputs(t)
	data, err := Pack(m, dex, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := DigestOf(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != a.Digest {
		t.Errorf("DigestOf = %s, Open digest = %s", d1, a.Digest)
	}
}

func TestOpenRejectsNonZip(t *testing.T) {
	if _, err := Open([]byte("definitely not a zip")); !errors.Is(err, ErrBroken) {
		t.Errorf("err = %v, want ErrBroken", err)
	}
}

func TestOpenRejectsMissingEntries(t *testing.T) {
	for _, drop := range []string{ManifestEntry, DexEntry, DigestEntry} {
		m, dex := sampleInputs(t)
		data, err := Pack(m, dex, nil)
		if err != nil {
			t.Fatal(err)
		}
		stripped := rezipWithout(t, data, drop)
		if _, err := Open(stripped); !errors.Is(err, ErrBroken) {
			t.Errorf("Open without %s: err = %v, want ErrBroken", drop, err)
		}
	}
}

func TestOpenRejectsDigestMismatch(t *testing.T) {
	m, dex := sampleInputs(t)
	data, err := Pack(m, dex, nil)
	if err != nil {
		t.Fatal(err)
	}
	tampered := rewriteEntry(t, data, DigestEntry, []byte("deadbeef"))
	if _, err := Open(tampered); !errors.Is(err, ErrBroken) {
		t.Errorf("err = %v, want ErrBroken", err)
	}
}

func TestOpenRejectsCorruptDex(t *testing.T) {
	m, dex := sampleInputs(t)
	data, err := Pack(m, dex, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the dex with garbage and fix up the digest so that only the
	// dex decode fails.
	manifestXML, _ := manifest.Encode(m)
	garbage := []byte("SDEXgarbage")
	tampered := rewriteEntry(t, data, DexEntry, garbage)
	tampered = rewriteEntry(t, tampered, DigestEntry, []byte(payloadDigest(manifestXML, garbage)))
	if _, err := Open(tampered); !errors.Is(err, ErrBroken) {
		t.Errorf("err = %v, want ErrBroken", err)
	}
}

// rezipWithout rebuilds the archive leaving out one entry.
func rezipWithout(t *testing.T, data []byte, drop string) []byte {
	t.Helper()
	return rebuild(t, data, func(name string, b []byte) ([]byte, bool) {
		if name == drop {
			return nil, false
		}
		return b, true
	})
}

// rewriteEntry rebuilds the archive replacing one entry's contents.
func rewriteEntry(t *testing.T, data []byte, name string, contents []byte) []byte {
	t.Helper()
	return rebuild(t, data, func(n string, b []byte) ([]byte, bool) {
		if n == name {
			return contents, true
		}
		return b, true
	})
}

func rebuild(t *testing.T, data []byte, f func(string, []byte) ([]byte, bool)) []byte {
	t.Helper()
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, zf := range zr.File {
		rc, err := zf.Open()
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if _, err := b.ReadFrom(rc); err != nil {
			t.Fatal(err)
		}
		rc.Close()
		out, keep := f(zf.Name, b.Bytes())
		if !keep {
			continue
		}
		w, err := zw.Create(zf.Name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(out); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
