// Package apk reads and writes Android Package (APK) archives for the
// synthetic corpus. An APK here is, as on Android, a ZIP archive with a
// fixed internal layout:
//
//	AndroidManifest.xml   the manifest (see package manifest)
//	classes.sdex          the bytecode (see package dalvik)
//	META-INF/DIGEST       SHA-256 of the two payload entries (stand-in for
//	                      APK signing; AndroZoo indexes APKs by digest)
//	assets/...            optional asset files
//
// Pack and Open are the two halves; Open tolerates and reports the kinds of
// damage the paper's pipeline encountered ("242 APKs were discovered to be
// broken") via ErrBroken so that the pipeline can count rather than crash.
package apk

import (
	"archive/zip"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/dalvik"
	"repro/internal/manifest"
)

// Well-known entry names.
const (
	ManifestEntry = "AndroidManifest.xml"
	DexEntry      = "classes.sdex"
	DigestEntry   = "META-INF/DIGEST"
)

// ErrBroken wraps every structural failure Open can hit, so callers can
// classify a file as a broken APK with errors.Is(err, ErrBroken).
var ErrBroken = errors.New("apk: broken archive")

// APK is a fully parsed package.
type APK struct {
	Manifest *manifest.Manifest
	Dex      *dalvik.File
	Assets   map[string][]byte
	Digest   string // hex SHA-256 of manifest+dex payloads
}

// Package returns the app's package name.
func (a *APK) Package() string { return a.Manifest.Package }

// Pack assembles an APK archive from a manifest, bytecode and optional
// assets, returning the ZIP image. Entries are written in a deterministic
// order so identical inputs produce identical bytes (and digests).
func Pack(m *manifest.Manifest, dex *dalvik.File, assets map[string][]byte) ([]byte, error) {
	manifestXML, err := manifest.Encode(m)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	dexBytes, err := dalvik.Encode(dex)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}

	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)

	write := func(name string, data []byte) error {
		// Store uncompressed: the corpus round-trips thousands of archives
		// and the sdex payload is already compact.
		w, err := zw.CreateHeader(&zip.FileHeader{Name: name, Method: zip.Store})
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}

	if err := write(ManifestEntry, manifestXML); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	if err := write(DexEntry, dexBytes); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	if err := write(DigestEntry, []byte(payloadDigest(manifestXML, dexBytes))); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}

	names := make([]string, 0, len(assets))
	for name := range assets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := write("assets/"+name, assets[name]); err != nil {
			return nil, fmt.Errorf("apk: %w", err)
		}
	}

	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	return buf.Bytes(), nil
}

// Open parses an APK archive image. Any structural problem — unreadable
// ZIP, missing entries, corrupt bytecode or manifest, digest mismatch — is
// reported wrapped in ErrBroken.
func Open(data []byte) (*APK, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBroken, err)
	}

	entries := make(map[string][]byte)
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("%w: entry %s: %v", ErrBroken, f.Name, err)
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("%w: entry %s: %v", ErrBroken, f.Name, err)
		}
		entries[f.Name] = b
	}

	manifestXML, ok := entries[ManifestEntry]
	if !ok {
		return nil, fmt.Errorf("%w: missing %s", ErrBroken, ManifestEntry)
	}
	dexBytes, ok := entries[DexEntry]
	if !ok {
		return nil, fmt.Errorf("%w: missing %s", ErrBroken, DexEntry)
	}
	wantDigest, ok := entries[DigestEntry]
	if !ok {
		return nil, fmt.Errorf("%w: missing %s", ErrBroken, DigestEntry)
	}
	digest := payloadDigest(manifestXML, dexBytes)
	if digest != string(wantDigest) {
		return nil, fmt.Errorf("%w: digest mismatch", ErrBroken)
	}

	m, err := manifest.Decode(manifestXML)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBroken, err)
	}
	dex, err := dalvik.Decode(dexBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBroken, err)
	}

	a := &APK{Manifest: m, Dex: dex, Digest: digest}
	for name, b := range entries {
		if len(name) > len("assets/") && name[:len("assets/")] == "assets/" {
			if a.Assets == nil {
				a.Assets = make(map[string][]byte)
			}
			a.Assets[name[len("assets/"):]] = b
		}
	}
	return a, nil
}

// DigestOf computes the digest of a packed APK image without fully parsing
// the payloads; it is what repository servers index by.
func DigestOf(data []byte) (string, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBroken, err)
	}
	for _, f := range zr.File {
		if f.Name != DigestEntry {
			continue
		}
		rc, err := f.Open()
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrBroken, err)
		}
		defer rc.Close()
		b, err := io.ReadAll(rc)
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrBroken, err)
		}
		return string(b), nil
	}
	return "", fmt.Errorf("%w: missing %s", ErrBroken, DigestEntry)
}

// ComputeDigest hashes the archive's manifest and dex payloads directly,
// yielding the same digest Pack records in META-INF/DIGEST — but derived
// from the actual content rather than trusted from the archive. It is the
// content address used to key analysis-result caches: it never lies about
// the payload, so a digest mismatch (a broken APK) still maps to a key of
// its own instead of poisoning the entry of the APK it claims to be.
// ComputeDigest does not validate the manifest or bytecode structure.
func ComputeDigest(data []byte) (string, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBroken, err)
	}
	var manifestXML, dexBytes []byte
	read := func(f *zip.File) ([]byte, error) {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("%w: entry %s: %v", ErrBroken, f.Name, err)
		}
		defer rc.Close()
		b, err := io.ReadAll(rc)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %s: %v", ErrBroken, f.Name, err)
		}
		return b, nil
	}
	for _, f := range zr.File {
		switch f.Name {
		case ManifestEntry:
			if manifestXML, err = read(f); err != nil {
				return "", err
			}
		case DexEntry:
			if dexBytes, err = read(f); err != nil {
				return "", err
			}
		}
	}
	if manifestXML == nil {
		return "", fmt.Errorf("%w: missing %s", ErrBroken, ManifestEntry)
	}
	if dexBytes == nil {
		return "", fmt.Errorf("%w: missing %s", ErrBroken, DexEntry)
	}
	return payloadDigest(manifestXML, dexBytes), nil
}

func payloadDigest(manifestXML, dexBytes []byte) string {
	h := sha256.New()
	h.Write(manifestXML)
	h.Write(dexBytes)
	return hex.EncodeToString(h.Sum(nil))
}
