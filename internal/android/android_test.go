package android

import "testing"

func TestMethodPredicates(t *testing.T) {
	for _, m := range WebViewMethods {
		if !IsWebViewMethod(m) {
			t.Errorf("IsWebViewMethod(%q) = false", m)
		}
	}
	if IsWebViewMethod("setWebViewClient") || IsWebViewMethod("") {
		t.Error("non-measured method classified as measured")
	}
	for _, m := range LoadMethods {
		if !IsLoadMethod(m) {
			t.Errorf("IsLoadMethod(%q) = false", m)
		}
		if !IsWebViewMethod(m) {
			t.Errorf("load method %q not in the measured surface", m)
		}
	}
	if IsLoadMethod(MethodEvaluateJavascript) {
		t.Error("evaluateJavascript classified as a load method")
	}
}

func TestSurfaceMatchesTable7(t *testing.T) {
	// Table 7 measures exactly seven WebView methods.
	if len(WebViewMethods) != 7 {
		t.Errorf("measured surface = %d methods, want 7", len(WebViewMethods))
	}
	if WebViewMethods[0] != MethodLoadURL {
		t.Errorf("first measured method = %q, want loadUrl (Table 7 order)", WebViewMethods[0])
	}
}

func TestEntryPointsIncludeAllComponents(t *testing.T) {
	want := map[string]bool{
		"onCreate": false, "onClick": false, "onReceive": false,
		"onStartCommand": false, "query": false,
	}
	for _, ep := range LifecycleEntryPoints {
		if _, ok := want[ep]; ok {
			want[ep] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("entry point %q missing", name)
		}
	}
}
