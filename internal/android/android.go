// Package android centralises the names of the Android framework classes,
// methods and intent constants that the measurement pipeline looks for.
// Keeping them in one place guarantees the corpus generator (which plants
// calls) and the static analyses (which detect them) agree exactly on the
// API surface, the same way the paper anchors its detection on Android's
// documented class and method names.
package android

// Framework class names.
const (
	WebViewClass                 = "android.webkit.WebView"
	WebViewClientClass           = "android.webkit.WebViewClient"
	WebChromeClientClass         = "android.webkit.WebChromeClient"
	CustomTabsIntentClass        = "androidx.browser.customtabs.CustomTabsIntent"
	CustomTabsIntentBuilderClass = "androidx.browser.customtabs.CustomTabsIntent$Builder"
	CustomTabsCallbackClass      = "androidx.browser.customtabs.CustomTabsCallback"
	ActivityClass                = "android.app.Activity"
	ServiceClass                 = "android.app.Service"
	BroadcastReceiverClass       = "android.content.BroadcastReceiver"
	ContentProviderClass         = "android.content.ContentProvider"
	IntentClass                  = "android.content.Intent"
	ContextClass                 = "android.content.Context"
	ViewClass                    = "android.view.View"
	ObjectClass                  = "java.lang.Object"
)

// WebView content-loading and modification methods the paper measures
// (Table 7). LoadMethods are the subset whose presence marks an SDK package
// as "populating content" into a WebView (§3.1.4).
var (
	// WebViewMethods is the full measured WebView API-method surface, in
	// the order Table 7 reports it.
	WebViewMethods = []string{
		MethodLoadURL,
		MethodAddJavascriptInterface,
		MethodLoadDataWithBaseURL,
		MethodEvaluateJavascript,
		MethodRemoveJavascriptInterface,
		MethodLoadData,
		MethodPostURL,
	}

	// LoadMethods are the WebView methods that populate web content; a
	// package calling one of these is attributed as the WebView's driver.
	LoadMethods = []string{MethodLoadURL, MethodLoadData, MethodLoadDataWithBaseURL}
)

// Individual WebView method names.
const (
	MethodLoadURL                   = "loadUrl"
	MethodAddJavascriptInterface    = "addJavascriptInterface"
	MethodLoadDataWithBaseURL       = "loadDataWithBaseURL"
	MethodEvaluateJavascript        = "evaluateJavascript"
	MethodRemoveJavascriptInterface = "removeJavascriptInterface"
	MethodLoadData                  = "loadData"
	MethodPostURL                   = "postUrl"

	// MethodLaunchURL populates content into a Custom Tab (§3.1.4).
	MethodLaunchURL = "launchUrl"
)

// WebView configuration surface the misconfiguration lint audits (§5
// security discussion): the WebSettings toggles, the remote-debugging
// switch and the SslErrorHandler callback protocol.
const (
	WebSettingsClass     = "android.webkit.WebSettings"
	SslErrorHandlerClass = "android.webkit.SslErrorHandler"

	MethodGetSettings                         = "getSettings"
	MethodSetJavaScriptEnabled                = "setJavaScriptEnabled"
	MethodSetAllowFileAccess                  = "setAllowFileAccess"
	MethodSetAllowFileAccessFromFileURLs      = "setAllowFileAccessFromFileURLs"
	MethodSetAllowUniversalAccessFromFileURLs = "setAllowUniversalAccessFromFileURLs"
	MethodSetMixedContentMode                 = "setMixedContentMode"
	MethodSetWebContentsDebuggingEnabled      = "setWebContentsDebuggingEnabled"
	MethodOnReceivedSslError                  = "onReceivedSslError"
)

// Intent actions and categories used in deep-link / Web-URI handling.
const (
	ActionView        = "android.intent.action.VIEW"
	ActionMain        = "android.intent.action.MAIN"
	CategoryBrowsable = "android.intent.category.BROWSABLE"
	CategoryDefault   = "android.intent.category.DEFAULT"
	CategoryLauncher  = "android.intent.category.LAUNCHER"
)

// Activity lifecycle methods that act as call-graph entry points, plus the
// common GUI callback. An Android app has no main(); traversal starts from
// every component's lifecycle and event surface (§3.1.3).
var LifecycleEntryPoints = []string{
	"onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy",
	"onRestart", "onNewIntent",
	"onClick", "onTouch", "onItemClick", "onMenuItemSelected",
	"onReceive",      // BroadcastReceiver
	"onStartCommand", // Service
	"onBind",         // Service
	"query",          // ContentProvider
}

// IsWebViewMethod reports whether name is one of the measured WebView API
// methods.
func IsWebViewMethod(name string) bool {
	for _, m := range WebViewMethods {
		if m == name {
			return true
		}
	}
	return false
}

// IsLoadMethod reports whether name is a WebView content-populating method.
func IsLoadMethod(name string) bool {
	for _, m := range LoadMethods {
		if m == name {
			return true
		}
	}
	return false
}

// XRequestedWithHeader is the header WebView stamps on every request with
// the embedding app's package name (§5).
const XRequestedWithHeader = "X-Requested-With"
