package shard

import (
	"sort"

	"repro/internal/pipeline"
)

// Merge folds per-partition results into the canonical single-process
// report. Everything user-visible is a pure function of the merged fields:
// funnel counts are additive across partitions (every package lands in
// exactly one), apps and quarantines are concatenated and re-sorted into
// the pipeline's canonical orders, so the merged report renders
// byte-identically to a sequential run over the whole snapshot.
//
// Stats are merged for observability — counters add, stage walls take the
// per-shard maximum (shards overlap in time) — but carry no report-visible
// data.
func Merge(parts []*pipeline.Result) *pipeline.Result {
	merged := &pipeline.Result{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		merged.Funnel.Snapshot += p.Funnel.Snapshot
		merged.Funnel.OnPlay += p.Funnel.OnPlay
		merged.Funnel.Popular += p.Funnel.Popular
		merged.Funnel.Filtered += p.Funnel.Filtered
		merged.Funnel.Broken += p.Funnel.Broken
		merged.Funnel.Analyzed += p.Funnel.Analyzed
		merged.Apps = append(merged.Apps, p.Apps...)
		merged.Quarantined = append(merged.Quarantined, p.Quarantined...)
		mergeStats(&merged.Stats, &p.Stats)
	}
	sort.Slice(merged.Apps, func(i, j int) bool {
		return merged.Apps[i].Package < merged.Apps[j].Package
	})
	sort.Slice(merged.Quarantined, func(i, j int) bool {
		a, b := merged.Quarantined[i], merged.Quarantined[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Stage < b.Stage
	})
	return merged
}

func mergeStats(dst, src *pipeline.Stats) {
	mergeStage(&dst.List, &src.List)
	mergeStage(&dst.Metadata, &src.Metadata)
	mergeStage(&dst.Download, &src.Download)
	mergeStage(&dst.Analyze, &src.Analyze)
	mergeStage(&dst.Lint, &src.Lint)
	mergeStage(&dst.URLs, &src.URLs)
	dst.LintFindings += src.LintFindings
	dst.URLEndpoints += src.URLEndpoints
	if src.Total > dst.Total {
		dst.Total = src.Total
	}
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.Retries += src.Retries
	dst.JournalSkips += src.JournalSkips
	dst.JournalErrors += src.JournalErrors
	// Shards are separate processes: their in-flight high-water marks add
	// up to the plane's worst-case memory footprint.
	dst.PeakInFlightBytes += src.PeakInFlightBytes
}

func mergeStage(dst, src *pipeline.StageStats) {
	if src.Wall > dst.Wall {
		dst.Wall = src.Wall
	}
	dst.In += src.In
	dst.Out += src.Out
	dst.Quarantined += src.Quarantined
}
