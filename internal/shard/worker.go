package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/androzoo"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/playstore"
	"repro/internal/resultcache"
	"repro/internal/retry"
	"repro/internal/telemetry"
	"repro/internal/urlextract"
	"repro/internal/webviewlint"
)

// WorkerConfig parameterises one worker process.
type WorkerConfig struct {
	// Coordinator is the control-plane base URL (-join ADDR).
	Coordinator string
	// Name identifies this worker on leases; it must be unique within the
	// run (the CLI defaults to host+pid).
	Name string
	// HTTP is the control-plane client (nil = a 60s-timeout default).
	HTTP *http.Client
	// Retry, when non-nil, wraps control-plane calls and — through the
	// default service constructors — repository/store calls in retries
	// with backoff.
	Retry *retry.Policy
	// Telemetry, when non-nil, receives the per-shard pipeline metrics.
	Telemetry *telemetry.Hub
	// Poll is the wait between lease polls when every partition is leased
	// out (0 = 100ms).
	Poll time.Duration
	// Services constructs the repository and metadata source for a run
	// spec. Nil uses the androzoo/playstore HTTP clients against
	// spec.RepoURL/StoreURL; tests inject in-process fakes here.
	Services func(spec RunSpec) (pipeline.Repository, pipeline.MetadataSource, error)
	// CacheEntries bounds the in-memory tier of the shared persistent
	// result cache (0 = 4096). The blob tier under spec.CacheDir is
	// unbounded either way.
	CacheEntries int
	// MetricsAddr, when non-empty and the spec enables Federation, is the
	// listen address for this worker's /metrics endpoint (e.g.
	// "127.0.0.1:0"); the bound URL is announced to the coordinator for
	// live scrapes. The endpoint's /trace answers 404 pointing at the
	// coordinator's stitched /fleet/trace.
	MetricsAddr string
}

// Worker executes partitions leased from a coordinator until the run is
// done. Workers are stateless between leases: everything durable lives in
// the shared cache directory and the per-partition journals, which is what
// lets a re-issued partition resume on any peer.
type Worker struct {
	cfg  WorkerConfig
	hc   *http.Client
	base string

	// hub is the worker's telemetry hub under Federation: WorkerConfig's
	// when provided, otherwise built from the spec (seed-derived timing,
	// tracing per spec.Trace) so every worker process observes with the
	// same clock discipline. metricsURL is the announced live endpoint.
	hub        *telemetry.Hub
	metricsURL string

	// Completed counts partitions this worker finished (read after Run for
	// tests and CLI reporting).
	completed atomic.Int64
}

// NewWorker validates the configuration.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("shard: worker needs a coordinator address")
	}
	if cfg.Name == "" {
		return nil, errors.New("shard: worker needs a name")
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Worker{cfg: cfg, hc: hc, base: trimSlash(cfg.Coordinator)}, nil
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// Completed reports how many partitions this worker finished.
func (w *Worker) Completed() int { return int(w.completed.Load()) }

// errLeaseLost marks a partition abandoned because the coordinator expired
// or re-issued its lease; the worker moves on to the next lease.
var errLeaseLost = errors.New("shard: lease lost")

// Run joins the coordinator and executes leased partitions until the
// coordinator reports the scan done, the context is cancelled, or a
// non-recoverable error occurs. Losing a lease is not an error — the
// partition is someone else's now.
func (w *Worker) Run(ctx context.Context) error {
	var spec RunSpec
	if _, err := w.call(ctx, "GET", "/v1/spec", nil, &spec); err != nil {
		return fmt.Errorf("shard: fetch spec: %w", err)
	}
	if spec.Federation {
		w.hub = w.cfg.Telemetry
		if w.hub == nil {
			var timing telemetry.Timing = telemetry.SeededTiming{Seed: spec.Seed}
			if spec.Wallclock {
				timing = telemetry.RealTiming{}
			}
			w.hub = telemetry.New(telemetry.Options{Timing: timing, Tracing: spec.Trace})
		}
		if w.cfg.MetricsAddr != "" {
			srv, err := telemetry.ServeOpts(w.cfg.MetricsAddr, w.hub,
				telemetry.HandlerOptions{FleetTraceURL: w.base + "/fleet/trace"})
			if err != nil {
				return fmt.Errorf("shard: worker metrics endpoint: %w", err)
			}
			defer srv.Close()
			w.metricsURL = "http://" + srv.Addr + "/metrics"
		}
		// Graceful-shutdown flush: however Run exits — done, cancelled,
		// failed — push the final registry snapshot so workers that exit
		// between leases still report. A fresh short-lived context keeps
		// the flush alive through the cancellation that ended the run.
		defer func() {
			flushCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			w.flushSnapshot(flushCtx)
		}()
	}
	poll := w.cfg.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		var grant LeaseGrant
		code, err := w.call(ctx, "POST", "/v1/lease",
			leaseRequest{Worker: w.cfg.Name, MetricsURL: w.metricsURL}, &grant)
		if err != nil {
			return fmt.Errorf("shard: lease: %w", err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("shard: lease: unexpected status %d", code)
		}
		switch {
		case grant.Done:
			return nil
		case grant.Wait:
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if err := w.runPartition(ctx, spec, grant); err != nil {
			if errors.Is(err, errLeaseLost) {
				continue
			}
			return err
		}
		w.completed.Add(1)
	}
}

// runPartition scans one leased partition and streams the result back.
func (w *Worker) runPartition(ctx context.Context, spec RunSpec, grant LeaseGrant) error {
	services := w.cfg.Services
	if services == nil {
		services = w.defaultServices()
	}
	repo, meta, err := services(spec)
	if err != nil {
		return fmt.Errorf("shard: partition %d services: %w", grant.Partition, err)
	}
	repo = &partitionRepository{
		inner:   repo,
		part:    grant.Partition,
		shards:  spec.Shards,
		latency: spec.DownloadLatency,
	}

	// Under Federation the partition runs against the worker hub and its
	// contribution is captured as a registry delta + trace spans, snapped
	// against marks taken here. The pipeline gets its own retry policy
	// (same schedule, fresh metrics) so the federated retry counters carry
	// only the deterministic per-package traffic, never this worker's
	// scheduling-dependent lease and renew calls.
	hub := w.cfg.Telemetry
	retryPolicy := w.cfg.Retry
	var fedBefore telemetry.Fams
	var traceMark map[string]int
	var runSpan *telemetry.Span
	tracePrefix := ""
	if spec.Federation {
		hub = w.hub
		retryPolicy = pipelinePolicy(w.cfg.Retry)
		if fedBefore, err = telemetry.RegistryFams(hub.Registry()); err != nil {
			return fmt.Errorf("shard: partition %d snapshot: %w", grant.Partition, err)
		}
		traceMark = hub.Tracer().Mark()
		if grant.TraceID != "" {
			tracePrefix = grant.TraceID + "/"
			runSpan = hub.Trace(grant.TraceID).Child(grant.Parent, "run:"+grant.Tag, "worker", w.cfg.Name)
		}
	}

	cfg := pipeline.Config{
		MinDownloads: spec.MinDownloads,
		UpdatedAfter: spec.UpdatedAfter,
		// (defaults below mirror core.NewStaticStudy, so a spec with the
		// zero filter scans the paper's selection, not the whole snapshot)
		Workers:        spec.Workers,
		MaxFailureFrac: spec.MaxFailureFrac,
		Retry:          retryPolicy,
		Telemetry:      hub,
		TracePrefix:    tracePrefix,
		Partition:      grant.Tag,
	}
	if cfg.MinDownloads == 0 {
		cfg.MinDownloads = corpus.MinDownloads
	}
	if cfg.UpdatedAfter.IsZero() {
		cfg.UpdatedAfter = corpus.UpdateCutoff
	}
	if spec.Lint || spec.LintRules != nil {
		if cfg.Lint, err = webviewlint.New(webviewlint.Config{Rules: spec.LintRules}); err != nil {
			return fmt.Errorf("shard: partition %d lint config: %w", grant.Partition, err)
		}
	}
	if spec.URLs {
		cfg.URLs = urlextract.New(urlextract.Config{})
	}
	if spec.CacheDir != "" {
		store, err := resultcache.NewDirStore(spec.CacheDir)
		if err != nil {
			return fmt.Errorf("shard: partition %d cache: %w", grant.Partition, err)
		}
		entries := w.cfg.CacheEntries
		if entries <= 0 {
			entries = 4096
		}
		cfg.Cache = resultcache.NewPersistent[pipeline.Analysis](entries, store, resultcache.JSONCodec[pipeline.Analysis]{})
	}
	if spec.JournalDir != "" {
		j, err := pipeline.OpenJournal(filepath.Join(spec.JournalDir,
			fmt.Sprintf("shard-%d-of-%d.journal", grant.Partition, spec.Shards)))
		if err != nil {
			return fmt.Errorf("shard: partition %d journal: %w", grant.Partition, err)
		}
		defer j.Close()
		cfg.Journal = j
	}

	pipe := pipeline.New(repo, meta, cfg)
	if spec.ConfigKey != "" && pipe.ConfigKey() != spec.ConfigKey {
		return fmt.Errorf("shard: partition %d: analysis configuration fingerprint %q does not match coordinator's %q",
			grant.Partition, pipe.ConfigKey(), spec.ConfigKey)
	}

	// Renew at TTL/3 for as long as the scan runs; a rejected renewal
	// means the lease expired under us — cancel the scan, the partition
	// belongs to a peer now.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	renewDone := make(chan struct{})
	var leaseLost atomic.Bool
	ttl := grant.TTL
	if ttl <= 0 {
		ttl = spec.TTL()
	}
	go func() {
		defer close(renewDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				var ok map[string]bool
				code, err := w.call(runCtx, "POST", "/v1/renew",
					renewRequest{Worker: w.cfg.Name, Partition: grant.Partition}, &ok)
				if err == nil && code == http.StatusGone {
					leaseLost.Store(true)
					cancelRun()
					return
				}
			}
		}
	}()

	res, runErr := pipe.Run(runCtx)
	cancelRun()
	<-renewDone
	if leaseLost.Load() {
		runSpan.SetAttr("outcome", "lease-lost")
		runSpan.End()
		return errLeaseLost
	}
	if runErr != nil {
		runSpan.SetAttr("outcome", "error")
		runSpan.End()
		return fmt.Errorf("shard: partition %d: %w", grant.Partition, runErr)
	}
	runSpan.SetAttr("outcome", "ok")
	runSpan.End()

	req := resultRequest{
		Worker:    w.cfg.Name,
		Partition: grant.Partition,
		ConfigKey: pipe.ConfigKey(),
		Result:    res,
	}
	if spec.Federation {
		after, err := telemetry.RegistryFams(hub.Registry())
		if err != nil {
			return fmt.Errorf("shard: partition %d snapshot: %w", grant.Partition, err)
		}
		var mb bytes.Buffer
		if err := telemetry.WriteFams(&mb, telemetry.DiffFams(after, fedBefore)); err != nil {
			return fmt.Errorf("shard: partition %d snapshot: %w", grant.Partition, err)
		}
		req.MetricsProm = mb.Bytes()
		var tb bytes.Buffer
		if err := hub.Tracer().WriteJSONLSince(&tb, traceMark); err != nil {
			return fmt.Errorf("shard: partition %d trace: %w", grant.Partition, err)
		}
		req.TraceJSONL = tb.Bytes()
	}

	code, err := w.call(ctx, "POST", "/v1/result", req, &struct{}{})
	switch {
	case err != nil:
		return fmt.Errorf("shard: partition %d submit: %w", grant.Partition, err)
	case code == http.StatusGone:
		return errLeaseLost
	case code != http.StatusOK:
		return fmt.Errorf("shard: partition %d submit: unexpected status %d", grant.Partition, code)
	}
	return nil
}

// flushSnapshot pushes the worker's cumulative registry to the
// coordinator — the graceful-shutdown path of the federation plane. Best
// effort: a dead coordinator just means the snapshot is lost with it.
func (w *Worker) flushSnapshot(ctx context.Context) {
	if w.hub == nil {
		return
	}
	var buf bytes.Buffer
	if err := w.hub.Registry().WriteProm(&buf); err != nil {
		return
	}
	w.call(ctx, "POST", "/v1/snapshot",
		snapshotRequest{Worker: w.cfg.Name, MetricsProm: buf.Bytes()}, &struct{}{})
}

// pipelinePolicy derives a partition's retry policy from the worker's
// control-plane policy: same schedule and classifier, fresh Metrics so
// the federated retry counters carry only the pipeline's deterministic
// per-package traffic. The Breaker pointer is shared — both paths talk to
// the same upstream. Policy embeds a mutex, so fields copy explicitly.
func pipelinePolicy(p *retry.Policy) *retry.Policy {
	if p == nil {
		return nil
	}
	return &retry.Policy{
		MaxAttempts: p.MaxAttempts,
		BaseDelay:   p.BaseDelay,
		MaxDelay:    p.MaxDelay,
		Multiplier:  p.Multiplier,
		Seed:        p.Seed,
		Sleep:       p.Sleep,
		Classify:    p.Classify,
		Metrics:     &retry.Metrics{},
		Breaker:     p.Breaker,
	}
}

// defaultServices dials the repository and store over HTTP, the way a
// standalone worker process reaches the real services.
func (w *Worker) defaultServices() func(RunSpec) (pipeline.Repository, pipeline.MetadataSource, error) {
	return func(spec RunSpec) (pipeline.Repository, pipeline.MetadataSource, error) {
		if spec.RepoURL == "" || spec.StoreURL == "" {
			return nil, nil, errors.New("spec names no repoUrl/storeUrl and the worker has no injected services")
		}
		repo := androzoo.NewClient(spec.RepoURL, w.hc).WithRetry(w.cfg.Retry)
		meta := playstore.NewClient(spec.StoreURL, w.hc).WithRetry(w.cfg.Retry)
		return repo, meta, nil
	}
}

// call performs one control-plane request, retrying transient failures
// under the worker's policy. Non-5xx statuses are outcomes, not errors:
// the caller branches on the returned code (e.g. 410 Gone = lease lost).
func (w *Worker) call(ctx context.Context, method, path string, in, out any) (int, error) {
	type outcome struct{ code int }
	res, err := retry.Do(ctx, w.cfg.Retry, func(ctx context.Context) (outcome, error) {
		code, err := w.callOnce(ctx, method, path, in, out)
		if err != nil {
			return outcome{}, retry.Transient(err)
		}
		if code >= 500 {
			return outcome{code}, retry.Transient(fmt.Errorf("shard: %s %s: status %d", method, path, code))
		}
		return outcome{code}, nil
	})
	if err != nil {
		return 0, err
	}
	return res.code, nil
}

func (w *Worker) callOnce(ctx context.Context, method, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(out); err != nil {
			return 0, fmt.Errorf("decode %s: %w", path, err)
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	}
	return resp.StatusCode, nil
}

// partitionRepository restricts a repository to one hash partition of its
// snapshot and models the per-APK transfer latency of the real network
// repository, so shard counts trade off against genuine download wait.
type partitionRepository struct {
	inner   pipeline.Repository
	part    int
	shards  int
	latency time.Duration
}

// WithDownloadLatency wraps repo so every Download sleeps d first — the
// modeled AndroZoo transfer time. Used by the unsharded benchmark baseline
// so 1-shard and N-shard runs face the same repository.
func WithDownloadLatency(repo pipeline.Repository, d time.Duration) pipeline.Repository {
	return &partitionRepository{inner: repo, part: 0, shards: 1, latency: d}
}

func (r *partitionRepository) List(ctx context.Context) ([]string, error) {
	pkgs, err := r.inner.List(ctx)
	if err != nil || r.shards <= 1 {
		return pkgs, err
	}
	kept := pkgs[:0]
	for _, pkg := range pkgs {
		if PartitionOf(pkg, r.shards) == r.part {
			kept = append(kept, pkg)
		}
	}
	return kept, nil
}

func (r *partitionRepository) Download(ctx context.Context, pkg string) ([]byte, error) {
	if r.latency > 0 {
		select {
		case <-time.After(r.latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return r.inner.Download(ctx, pkg)
}
