package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/androzoo"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/playstore"
	"repro/internal/resultcache"
	"repro/internal/retry"
	"repro/internal/telemetry"
	"repro/internal/urlextract"
	"repro/internal/webviewlint"
)

// WorkerConfig parameterises one worker process.
type WorkerConfig struct {
	// Coordinator is the control-plane base URL (-join ADDR).
	Coordinator string
	// Name identifies this worker on leases; it must be unique within the
	// run (the CLI defaults to host+pid).
	Name string
	// HTTP is the control-plane client (nil = a 60s-timeout default).
	HTTP *http.Client
	// Retry, when non-nil, wraps control-plane calls and — through the
	// default service constructors — repository/store calls in retries
	// with backoff.
	Retry *retry.Policy
	// Telemetry, when non-nil, receives the per-shard pipeline metrics.
	Telemetry *telemetry.Hub
	// Poll is the wait between lease polls when every partition is leased
	// out (0 = 100ms).
	Poll time.Duration
	// Services constructs the repository and metadata source for a run
	// spec. Nil uses the androzoo/playstore HTTP clients against
	// spec.RepoURL/StoreURL; tests inject in-process fakes here.
	Services func(spec RunSpec) (pipeline.Repository, pipeline.MetadataSource, error)
	// CacheEntries bounds the in-memory tier of the shared persistent
	// result cache (0 = 4096). The blob tier under spec.CacheDir is
	// unbounded either way.
	CacheEntries int
}

// Worker executes partitions leased from a coordinator until the run is
// done. Workers are stateless between leases: everything durable lives in
// the shared cache directory and the per-partition journals, which is what
// lets a re-issued partition resume on any peer.
type Worker struct {
	cfg  WorkerConfig
	hc   *http.Client
	base string

	// Completed counts partitions this worker finished (read after Run for
	// tests and CLI reporting).
	completed atomic.Int64
}

// NewWorker validates the configuration.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("shard: worker needs a coordinator address")
	}
	if cfg.Name == "" {
		return nil, errors.New("shard: worker needs a name")
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Worker{cfg: cfg, hc: hc, base: trimSlash(cfg.Coordinator)}, nil
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// Completed reports how many partitions this worker finished.
func (w *Worker) Completed() int { return int(w.completed.Load()) }

// errLeaseLost marks a partition abandoned because the coordinator expired
// or re-issued its lease; the worker moves on to the next lease.
var errLeaseLost = errors.New("shard: lease lost")

// Run joins the coordinator and executes leased partitions until the
// coordinator reports the scan done, the context is cancelled, or a
// non-recoverable error occurs. Losing a lease is not an error — the
// partition is someone else's now.
func (w *Worker) Run(ctx context.Context) error {
	var spec RunSpec
	if _, err := w.call(ctx, "GET", "/v1/spec", nil, &spec); err != nil {
		return fmt.Errorf("shard: fetch spec: %w", err)
	}
	poll := w.cfg.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		var grant LeaseGrant
		code, err := w.call(ctx, "POST", "/v1/lease", leaseRequest{Worker: w.cfg.Name}, &grant)
		if err != nil {
			return fmt.Errorf("shard: lease: %w", err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("shard: lease: unexpected status %d", code)
		}
		switch {
		case grant.Done:
			return nil
		case grant.Wait:
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if err := w.runPartition(ctx, spec, grant); err != nil {
			if errors.Is(err, errLeaseLost) {
				continue
			}
			return err
		}
		w.completed.Add(1)
	}
}

// runPartition scans one leased partition and streams the result back.
func (w *Worker) runPartition(ctx context.Context, spec RunSpec, grant LeaseGrant) error {
	services := w.cfg.Services
	if services == nil {
		services = w.defaultServices()
	}
	repo, meta, err := services(spec)
	if err != nil {
		return fmt.Errorf("shard: partition %d services: %w", grant.Partition, err)
	}
	repo = &partitionRepository{
		inner:   repo,
		part:    grant.Partition,
		shards:  spec.Shards,
		latency: spec.DownloadLatency,
	}

	cfg := pipeline.Config{
		MinDownloads: spec.MinDownloads,
		UpdatedAfter: spec.UpdatedAfter,
		// (defaults below mirror core.NewStaticStudy, so a spec with the
		// zero filter scans the paper's selection, not the whole snapshot)
		Workers:        spec.Workers,
		MaxFailureFrac: spec.MaxFailureFrac,
		Retry:          w.cfg.Retry,
		Telemetry:      w.cfg.Telemetry,
		Partition:      grant.Tag,
	}
	if cfg.MinDownloads == 0 {
		cfg.MinDownloads = corpus.MinDownloads
	}
	if cfg.UpdatedAfter.IsZero() {
		cfg.UpdatedAfter = corpus.UpdateCutoff
	}
	if spec.Lint || spec.LintRules != nil {
		if cfg.Lint, err = webviewlint.New(webviewlint.Config{Rules: spec.LintRules}); err != nil {
			return fmt.Errorf("shard: partition %d lint config: %w", grant.Partition, err)
		}
	}
	if spec.URLs {
		cfg.URLs = urlextract.New(urlextract.Config{})
	}
	if spec.CacheDir != "" {
		store, err := resultcache.NewDirStore(spec.CacheDir)
		if err != nil {
			return fmt.Errorf("shard: partition %d cache: %w", grant.Partition, err)
		}
		entries := w.cfg.CacheEntries
		if entries <= 0 {
			entries = 4096
		}
		cfg.Cache = resultcache.NewPersistent[pipeline.Analysis](entries, store, resultcache.JSONCodec[pipeline.Analysis]{})
	}
	if spec.JournalDir != "" {
		j, err := pipeline.OpenJournal(filepath.Join(spec.JournalDir,
			fmt.Sprintf("shard-%d-of-%d.journal", grant.Partition, spec.Shards)))
		if err != nil {
			return fmt.Errorf("shard: partition %d journal: %w", grant.Partition, err)
		}
		defer j.Close()
		cfg.Journal = j
	}

	pipe := pipeline.New(repo, meta, cfg)
	if spec.ConfigKey != "" && pipe.ConfigKey() != spec.ConfigKey {
		return fmt.Errorf("shard: partition %d: analysis configuration fingerprint %q does not match coordinator's %q",
			grant.Partition, pipe.ConfigKey(), spec.ConfigKey)
	}

	// Renew at TTL/3 for as long as the scan runs; a rejected renewal
	// means the lease expired under us — cancel the scan, the partition
	// belongs to a peer now.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	renewDone := make(chan struct{})
	var leaseLost atomic.Bool
	ttl := grant.TTL
	if ttl <= 0 {
		ttl = spec.TTL()
	}
	go func() {
		defer close(renewDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				var ok map[string]bool
				code, err := w.call(runCtx, "POST", "/v1/renew",
					renewRequest{Worker: w.cfg.Name, Partition: grant.Partition}, &ok)
				if err == nil && code == http.StatusGone {
					leaseLost.Store(true)
					cancelRun()
					return
				}
			}
		}
	}()

	res, runErr := pipe.Run(runCtx)
	cancelRun()
	<-renewDone
	if leaseLost.Load() {
		return errLeaseLost
	}
	if runErr != nil {
		return fmt.Errorf("shard: partition %d: %w", grant.Partition, runErr)
	}

	code, err := w.call(ctx, "POST", "/v1/result", resultRequest{
		Worker:    w.cfg.Name,
		Partition: grant.Partition,
		ConfigKey: pipe.ConfigKey(),
		Result:    res,
	}, &struct{}{})
	switch {
	case err != nil:
		return fmt.Errorf("shard: partition %d submit: %w", grant.Partition, err)
	case code == http.StatusGone:
		return errLeaseLost
	case code != http.StatusOK:
		return fmt.Errorf("shard: partition %d submit: unexpected status %d", grant.Partition, code)
	}
	return nil
}

// defaultServices dials the repository and store over HTTP, the way a
// standalone worker process reaches the real services.
func (w *Worker) defaultServices() func(RunSpec) (pipeline.Repository, pipeline.MetadataSource, error) {
	return func(spec RunSpec) (pipeline.Repository, pipeline.MetadataSource, error) {
		if spec.RepoURL == "" || spec.StoreURL == "" {
			return nil, nil, errors.New("spec names no repoUrl/storeUrl and the worker has no injected services")
		}
		repo := androzoo.NewClient(spec.RepoURL, w.hc).WithRetry(w.cfg.Retry)
		meta := playstore.NewClient(spec.StoreURL, w.hc).WithRetry(w.cfg.Retry)
		return repo, meta, nil
	}
}

// call performs one control-plane request, retrying transient failures
// under the worker's policy. Non-5xx statuses are outcomes, not errors:
// the caller branches on the returned code (e.g. 410 Gone = lease lost).
func (w *Worker) call(ctx context.Context, method, path string, in, out any) (int, error) {
	type outcome struct{ code int }
	res, err := retry.Do(ctx, w.cfg.Retry, func(ctx context.Context) (outcome, error) {
		code, err := w.callOnce(ctx, method, path, in, out)
		if err != nil {
			return outcome{}, retry.Transient(err)
		}
		if code >= 500 {
			return outcome{code}, retry.Transient(fmt.Errorf("shard: %s %s: status %d", method, path, code))
		}
		return outcome{code}, nil
	})
	if err != nil {
		return 0, err
	}
	return res.code, nil
}

func (w *Worker) callOnce(ctx context.Context, method, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(out); err != nil {
			return 0, fmt.Errorf("decode %s: %w", path, err)
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	}
	return resp.StatusCode, nil
}

// partitionRepository restricts a repository to one hash partition of its
// snapshot and models the per-APK transfer latency of the real network
// repository, so shard counts trade off against genuine download wait.
type partitionRepository struct {
	inner   pipeline.Repository
	part    int
	shards  int
	latency time.Duration
}

// WithDownloadLatency wraps repo so every Download sleeps d first — the
// modeled AndroZoo transfer time. Used by the unsharded benchmark baseline
// so 1-shard and N-shard runs face the same repository.
func WithDownloadLatency(repo pipeline.Repository, d time.Duration) pipeline.Repository {
	return &partitionRepository{inner: repo, part: 0, shards: 1, latency: d}
}

func (r *partitionRepository) List(ctx context.Context) ([]string, error) {
	pkgs, err := r.inner.List(ctx)
	if err != nil || r.shards <= 1 {
		return pkgs, err
	}
	kept := pkgs[:0]
	for _, pkg := range pkgs {
		if PartitionOf(pkg, r.shards) == r.part {
			kept = append(kept, pkg)
		}
	}
	return kept, nil
}

func (r *partitionRepository) Download(ctx context.Context, pkg string) ([]byte, error) {
	if r.latency > 0 {
		select {
		case <-time.After(r.latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return r.inner.Download(ctx, pkg)
}
