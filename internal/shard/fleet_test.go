// Fleet observability invariants of the scan plane:
//
//   - Determinism: the federated rollup and the stitched fleet trace are
//     byte-identical for the same seed at any shard/worker topology —
//     {1,1}, {4,2} and {4,4} all produce the same /fleet/metrics?view=rollup
//     and /fleet/trace bytes.
//   - Exactly-once: a worker killed mid-lease may flush its partial
//     cumulative snapshot (the graceful-shutdown path), but that data feeds
//     the live worker view only; after the partition is re-leased and
//     completed by a peer, the rollup counts every package exactly once.
package shard_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/retry"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/telemetry/fleet"
)

// fleetSpec is the federated scan configuration shared by the fleet tests.
func fleetSpec(shards int, seed int64) shard.RunSpec {
	return shard.RunSpec{
		Shards:       shards,
		MinDownloads: corpus.MinDownloads,
		UpdatedAfter: corpus.UpdateCutoff,
		Lint:         true,
		URLs:         true,
		LeaseTTL:     time.Minute,
		Seed:         seed,
		Federation:   true,
		Trace:        true,
	}
}

// fleetRun drives a full federated scan in process: coordinator on a real
// listener, nWorkers workers each building its own telemetry hub from the
// spec (exactly like separate worker OS processes would). Returns the
// coordinator for reading the federated views.
func fleetRun(t *testing.T, c *corpus.Corpus, shards, nWorkers int, seed int64) (*shard.Coordinator, *pipeline.Result) {
	t.Helper()
	repo := newTestRepo(c)
	coord, srv := startCoordinator(t, shard.CoordinatorConfig{Spec: fleetSpec(shards, seed)})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		w, err := shard.NewWorker(shard.WorkerConfig{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("worker-%d", i),
			Poll:        10 * time.Millisecond,
			Services:    inProcessServices(repo, &testMeta{c: c}),
			// A retry policy like the CLI's, so the federated exposition
			// carries the mirrored retry families (all zero on a clean run).
			Retry: &retry.Policy{MaxAttempts: 2, Metrics: &retry.Metrics{}},
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	merged, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator wait: %v", err)
	}
	return coord, merged
}

// rollupAndTrace snapshots the two byte-identity surfaces.
func rollupAndTrace(t *testing.T, coord *shard.Coordinator) (string, string) {
	t.Helper()
	fed := coord.Fleet()
	var prom, trace bytes.Buffer
	if err := fed.WriteRollupProm(&prom); err != nil {
		t.Fatal(err)
	}
	if err := fed.WriteTraceJSONL(&trace); err != nil {
		t.Fatal(err)
	}
	return prom.String(), trace.String()
}

// TestFleetRollupAndTraceDeterministicAcrossTopologies is the federation
// determinism tentpole: same seed, three topologies, byte-identical
// federated metrics rollup and stitched fleet trace.
func TestFleetRollupAndTraceDeterministicAcrossTopologies(t *testing.T) {
	c := testCorpus(t)
	const seed = 3

	refCoord, refMerged := fleetRun(t, c, 1, 1, seed)
	refProm, refTrace := rollupAndTrace(t, refCoord)
	if refProm == "" {
		t.Fatal("reference rollup is empty")
	}
	if !strings.Contains(refTrace, fleet.TraceID(seed)+"/apk:") {
		t.Fatalf("stitched trace carries no fleet-prefixed per-APK spans:\n%.400s", refTrace)
	}
	// The rollup accounts for every analysed APK.
	if got := refCoord.Fleet().RollupCounts().APKs; got != int64(refMerged.Funnel.Filtered) {
		t.Fatalf("rollup counted %d APKs, funnel has %d", got, refMerged.Funnel.Filtered)
	}

	for _, tc := range []struct{ shards, workers int }{
		{4, 2},
		{4, 4},
	} {
		t.Run(fmt.Sprintf("%dshards_%dworkers", tc.shards, tc.workers), func(t *testing.T) {
			coord, _ := fleetRun(t, c, tc.shards, tc.workers, seed)
			prom, trace := rollupAndTrace(t, coord)
			if prom != refProm {
				t.Fatalf("federated rollup diverged from the 1-shard reference:\n--- %d/%d ---\n%.800s\n--- reference ---\n%.800s",
					tc.shards, tc.workers, prom, refProm)
			}
			if trace != refTrace {
				t.Fatalf("stitched fleet trace diverged from the 1-shard reference (%d vs %d bytes)",
					len(trace), len(refTrace))
			}
		})
	}
}

// TestFleetEndpointsServeFederatedViews covers the HTTP surface: the
// /fleet/* endpoints answer with the expected families, the shard-labeled
// exposition reconciles (fleet == Σ shards), and the status document
// reflects the finished run.
func TestFleetEndpointsServeFederatedViews(t *testing.T) {
	c := testCorpus(t)
	coord, merged := fleetRun(t, c, 4, 2, 3)
	srv := startFleetServer(t, coord)

	get := func(path string) string {
		resp, err := http.Get(srv + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/fleet/metrics")
	for _, fam := range []string{
		"pipeline_stage_items_total", "pipeline_stage_latency_seconds",
		"pipeline_cache_total", "retry_retries_total",
	} {
		if !strings.Contains(metrics, fam) {
			t.Fatalf("/fleet/metrics missing family %s:\n%.600s", fam, metrics)
		}
	}
	// Reconciliation: the shard="fleet" rollup series equals the sum of the
	// per-shard series for the download-out counter.
	fams, err := telemetry.ParseProm(strings.NewReader(metrics))
	if err != nil {
		t.Fatalf("parse /fleet/metrics: %v", err)
	}
	items := fams["pipeline_stage_items_total"]
	if items == nil {
		t.Fatal("no pipeline_stage_items_total family")
	}
	var shardSum, fleetVal float64
	for series, v := range items.Samples {
		if !strings.Contains(series, `stage="download"`) || !strings.Contains(series, `dir="out"`) {
			continue
		}
		if strings.Contains(series, `shard="fleet"`) {
			fleetVal = v
		} else {
			shardSum += v
		}
	}
	if fleetVal == 0 || fleetVal != shardSum {
		t.Fatalf("fleet != sum(shards): fleet=%v sum=%v", fleetVal, shardSum)
	}
	if int(fleetVal) != merged.Funnel.Filtered {
		t.Fatalf("fleet download-out %v, funnel filtered %d", fleetVal, merged.Funnel.Filtered)
	}

	if rollup := get("/fleet/metrics?view=rollup"); strings.Contains(rollup, `shard="`) {
		t.Fatalf("rollup view carries shard labels:\n%.400s", rollup)
	}
	if js := get("/fleet/metrics.json"); !strings.Contains(js, "pipeline_stage_items_total") {
		t.Fatalf("/fleet/metrics.json missing families:\n%.400s", js)
	}

	status := get("/fleet/status")
	for _, want := range []string{`"finished":true`, `"shards":4`, `"stageLatency"`} {
		if !strings.Contains(status, want) {
			t.Fatalf("/fleet/status missing %s:\n%s", want, status)
		}
	}
	text := get("/fleet/status?format=text")
	if !strings.Contains(text, "fleet finished · 4/4 partitions done") {
		t.Fatalf("text status unexpected:\n%s", text)
	}

	trace := get("/fleet/trace")
	if !strings.Contains(trace, "/apk:") {
		t.Fatalf("/fleet/trace carries no per-APK spans:\n%.400s", trace)
	}
	if strings.Contains(trace, `"span":"partition:`) || strings.Contains(trace, `"span":"run:`) {
		t.Fatalf("/fleet/trace leaked control spans:\n%.400s", trace)
	}
	control := get("/fleet/trace?view=control")
	if !strings.Contains(control, `"span":"run:`) {
		t.Fatalf("control view missing worker run spans:\n%.400s", control)
	}
}

// TestFleetChaosPartialSnapshotNeverDoubleCounts is the federation chaos
// invariant: a worker killed mid-lease flushes its partial cumulative
// snapshot on the way down; after its partition is re-leased and completed
// by a peer, the rollup counts every package exactly once — the partial
// data lives in the live worker view only.
func TestFleetChaosPartialSnapshotNeverDoubleCounts(t *testing.T) {
	c := testCorpus(t)
	const shards = 4
	const seed = 3

	part0 := 0
	for _, s := range c.Apps {
		if s.Eligible(corpus.MinDownloads, corpus.UpdateCutoff) && shard.PartitionOf(s.Package, shards) == 0 {
			part0++
		}
	}
	if part0 < 6 {
		t.Fatalf("partition 0 has only %d eligible apps; corpus too small for a mid-lease kill", part0)
	}
	killAfter := part0 - 3

	clock := newFakeClock()
	hub := telemetry.New(telemetry.Options{})
	ttl := time.Hour
	dir := t.TempDir()
	spec := fleetSpec(shards, seed)
	spec.Lint, spec.URLs = false, false
	spec.JournalDir = dir
	spec.CacheDir = filepath.Join(dir, "cache")
	spec.LeaseTTL = ttl
	coord, srv := startCoordinator(t, shard.CoordinatorConfig{
		Spec:      spec,
		Telemetry: hub,
		Now:       clock.Now,
	})

	repo := newTestRepo(c)
	ctxA, killA := context.WithCancel(context.Background())
	defer killA()
	var downloads atomic.Int64
	repo.setOnDownload(func(pkg string, nth int) {
		if downloads.Add(1) == int64(killAfter) {
			killA()
		}
	})
	wA, err := shard.NewWorker(shard.WorkerConfig{
		Coordinator: srv.URL,
		Name:        "doomed",
		Poll:        10 * time.Millisecond,
		Services:    inProcessServices(repo, &testMeta{c: c}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wA.Run(ctxA); err == nil {
		t.Fatal("killed worker reported a clean run")
	}
	repo.setOnDownload(nil)

	// The dying worker's graceful-shutdown flush reached the coordinator
	// with its partial counters — in the worker view, not the rollup.
	fed := coord.Fleet()
	doomedCounts, ok := fed.WorkerCounts("doomed")
	if !ok || doomedCounts.APKs == 0 {
		t.Fatalf("doomed worker's final flush not recorded (counts %+v, ok %v)", doomedCounts, ok)
	}
	if got := fed.RollupCounts().APKs; got != 0 {
		t.Fatalf("rollup counted %d APKs from an unaccepted partition", got)
	}

	journaled := journalLen(t, filepath.Join(dir, "shard-0-of-4.journal"))
	if journaled == 0 || journaled >= part0 {
		t.Fatalf("kill landed outside mid-partition: %d of %d journaled", journaled, part0)
	}

	clock.Advance(ttl + time.Second)

	wB, err := shard.NewWorker(shard.WorkerConfig{
		Coordinator: srv.URL,
		Name:        "survivor",
		Poll:        10 * time.Millisecond,
		Services:    inProcessServices(repo, &testMeta{c: c}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := wB.Run(ctx); err != nil {
		t.Fatalf("surviving worker: %v", err)
	}
	merged, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly-once fleet accounting: every filtered package was either
	// downloaded by an accepted partition run or replayed from the dead
	// worker's journal — never both, never twice.
	rollup := fed.Rollup()
	dlOut := sampleOf(rollup, "pipeline_stage_items_total", telemetry.LabelString("stage", "download", "dir", "out"))
	skips := sampleOf(rollup, "pipeline_journal_total", telemetry.LabelString("event", "skip"))
	if int(skips) != journaled {
		t.Fatalf("rollup journal skips = %v, journaled = %d", skips, journaled)
	}
	if int(dlOut)+journaled != merged.Funnel.Filtered {
		t.Fatalf("double-count: rollup downloads %v + journal replays %d != filtered %d",
			dlOut, journaled, merged.Funnel.Filtered)
	}

	// The snapshot ledger: two final flushes (the doomed worker on its way
	// down, the survivor on clean exit) and four accepted result deltas
	// (the survivor's partitions).
	var prom bytes.Buffer
	if err := hub.Registry().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fleet_snapshot_total{source="final"} 2`,
		`fleet_snapshot_total{source="result"} 4`,
	} {
		if !bytes.Contains(prom.Bytes(), []byte(want)) {
			t.Fatalf("snapshot ledger missing %q in:\n%s", want, prom.String())
		}
	}
}

// --- helpers -------------------------------------------------------------

// startFleetServer mounts an already-finished coordinator's handler and
// returns its base URL.
func startFleetServer(t *testing.T, coord *shard.Coordinator) string {
	t.Helper()
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

func journalLen(t *testing.T, path string) int {
	t.Helper()
	j, err := pipeline.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	return j.Len()
}

// sampleOf reads one counter series from an exposition (0 when absent).
func sampleOf(fams telemetry.Fams, fam, series string) float64 {
	f := fams[fam]
	if f == nil {
		return 0
	}
	return f.Samples[series]
}
